(** Deep Q-learning (§3.2.6, after Mnih et al. 2015).

    An MLP estimates Q(s, a); the policy is greedy over actions (Eq. 4);
    training minimizes the temporal-difference loss of Eq. (5) against
    a periodically synchronized target network, with epsilon-greedy
    exploration and experience replay.

    Agents may be shared across domains: every entry point that touches
    the agent's mutable state (RNG, replay buffer, counters, networks)
    is serialized on an internal mutex. *)

type config = {
  state_dim : int;
  num_actions : int;
  hidden : int array;       (** hidden layer widths *)
  gamma : float;            (** discount (paper: 0.98) *)
  lr : float;
  batch_size : int;         (** paper: 32 *)
  buffer_capacity : int;
  target_sync : int;        (** copy to target every k training steps *)
  eps_start : float;
  eps_end : float;
  eps_decay_steps : int;
  seed : int;
}

val default_config : config

type t

val create : config -> t
val config : t -> config

val q_values : t -> float array -> float array

val select_action : t -> ?explore:bool -> float array -> int
(** Greedy action; with [explore] (default false) epsilon-greedy, the
    epsilon annealed linearly over [eps_decay_steps] action selections. *)

val observe : t -> Replay.transition -> unit
(** Store a transition and, once the buffer holds a batch, perform one
    training step (and possibly a target sync). *)

val training_steps : t -> int
val last_loss : t -> float

(** A generic episodic environment. *)
type env = {
  reset : unit -> float array;
  step : int -> float array * float * bool;
      (** [step a] returns (next state, reward, terminal). *)
}

val run_episode : t -> env -> max_steps:int -> learn:bool -> float
(** Runs one episode, returning the cumulative reward.  With [learn]
    the transitions are fed through {!observe}. *)

val save_string : t -> string
val load_weights_string : t -> string -> unit
(** Restores Q-network weights into an agent of matching shape. *)
