(** Multilayer perceptrons with ReLU hidden layers and a linear output
    layer, trained by Adam — the Q-network of Eq. (4).

    The only loss needed by Deep Q-learning is the squared error on a
    single output coordinate (the taken action), so training takes
    [(input, output index, target)] triples. *)

type t

val create : sizes:int array -> seed:int -> t
(** [create ~sizes] with [sizes = [| in; h1; ...; out |]],
    Xavier-initialized.  @raise Invalid_argument on fewer than two
    sizes. *)

val forward : t -> float array -> float array

val input_dim : t -> int
val output_dim : t -> int

val train_batch : t -> lr:float -> (float array * int * float) array -> float
(** One Adam step on the mean of per-sample losses
    [0.5 (forward x).(a) - target)^2]; returns the mean loss. *)

val gradients :
  t ->
  (float array * int * float) array ->
  float array array array * float array array * float
(** Backprop only: [(grads_w, grads_b, mean_loss)] of the batch loss
    with respect to every weight and bias, without touching parameters
    or Adam state.  [grads_w.(l).(o).(i)] pairs with weight
    [(l, o, i)], [grads_b.(l).(o)] with the matching bias.  Exposed so
    tests can finite-difference-check the backward pass. *)

val loss_batch : t -> (float array * int * float) array -> float
(** Mean per-sample loss of the batch under the current parameters —
    the scalar whose gradient [gradients] computes. *)

val nudge_weight : t -> layer:int -> out:int -> idx:int -> float -> unit
(** Add a delta to weight [(layer, out, idx)] in place (test hook for
    finite differences). *)

val nudge_bias : t -> layer:int -> out:int -> float -> unit
(** Add a delta to bias [(layer, out)] in place (test hook). *)

val copy_weights : src:t -> dst:t -> unit
(** Target-network synchronization.  Shapes must match. *)

val clone : t -> t

val parameter_count : t -> int

val save_string : t -> string
(** Text serialization (sizes + weights).  Weights are written as hex
    float literals, so [load_string (save_string net)] reproduces every
    parameter bit-for-bit. *)

val load_string : string -> t
(** Inverse of [save_string]; also accepts the legacy decimal format.
    @raise Failure on malformed input. *)
