(* Dense MLP with per-parameter Adam state.  Layer l maps dimension
   sizes.(l) to sizes.(l+1); hidden layers apply ReLU, the final layer
   is linear (Q-values are unbounded). *)

type layer = {
  w : float array array; (* out x in *)
  b : float array;
  (* Adam moments *)
  mw : float array array;
  vw : float array array;
  mb : float array;
  vb : float array;
}

type t = { sizes : int array; layers : layer array; mutable tstep : int }

let create ~sizes ~seed =
  if Array.length sizes < 2 then invalid_arg "Mlp.create: need >= 2 sizes";
  Array.iter (fun s -> if s <= 0 then invalid_arg "Mlp.create: bad size") sizes;
  let rng = Aig.Rng.create seed in
  let layers =
    Array.init
      (Array.length sizes - 1)
      (fun l ->
        let nin = sizes.(l) and nout = sizes.(l + 1) in
        let scale = sqrt (2.0 /. float_of_int (nin + nout)) in
        {
          w =
            Array.init nout (fun _ ->
                Array.init nin (fun _ -> scale *. Aig.Rng.gaussian rng));
          b = Array.make nout 0.0;
          mw = Array.init nout (fun _ -> Array.make nin 0.0);
          vw = Array.init nout (fun _ -> Array.make nin 0.0);
          mb = Array.make nout 0.0;
          vb = Array.make nout 0.0;
        })
      ;
  in
  { sizes; layers; tstep = 0 }

let input_dim net = net.sizes.(0)
let output_dim net = net.sizes.(Array.length net.sizes - 1)

let layer_forward layer v =
  Array.mapi
    (fun o row ->
      let acc = ref layer.b.(o) in
      Array.iteri (fun i x -> acc := !acc +. (x *. v.(i))) row;
      !acc)
    layer.w

let relu v = Array.map (fun x -> if x > 0.0 then x else 0.0) v

let forward net x =
  if Array.length x <> input_dim net then
    invalid_arg "Mlp.forward: input dimension mismatch";
  let nlayers = Array.length net.layers in
  let v = ref x in
  Array.iteri
    (fun l layer ->
      let z = layer_forward layer !v in
      v := if l = nlayers - 1 then z else relu z)
    net.layers;
  !v

(* Forward with caches: returns (activations per layer incl. input,
   pre-activations per layer). *)
let forward_cached net x =
  let nlayers = Array.length net.layers in
  let acts = Array.make (nlayers + 1) [||] in
  let pre = Array.make nlayers [||] in
  acts.(0) <- x;
  for l = 0 to nlayers - 1 do
    let z = layer_forward net.layers.(l) acts.(l) in
    pre.(l) <- z;
    acts.(l + 1) <- (if l = nlayers - 1 then z else relu z)
  done;
  (acts, pre)

let adam_update net ~lr grads_w grads_b =
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  net.tstep <- net.tstep + 1;
  let t = float_of_int net.tstep in
  let corr1 = 1.0 -. (beta1 ** t) and corr2 = 1.0 -. (beta2 ** t) in
  Array.iteri
    (fun l layer ->
      let gw = grads_w.(l) and gb = grads_b.(l) in
      Array.iteri
        (fun o row ->
          Array.iteri
            (fun i g ->
              layer.mw.(o).(i) <-
                (beta1 *. layer.mw.(o).(i)) +. ((1.0 -. beta1) *. g);
              layer.vw.(o).(i) <-
                (beta2 *. layer.vw.(o).(i)) +. ((1.0 -. beta2) *. g *. g);
              let mhat = layer.mw.(o).(i) /. corr1
              and vhat = layer.vw.(o).(i) /. corr2 in
              row.(i) <- row.(i) -. (lr *. mhat /. (sqrt vhat +. eps)))
            gw.(o);
          let g = gb.(o) in
          layer.mb.(o) <- (beta1 *. layer.mb.(o)) +. ((1.0 -. beta1) *. g);
          layer.vb.(o) <- (beta2 *. layer.vb.(o)) +. ((1.0 -. beta2) *. g *. g);
          let mhat = layer.mb.(o) /. corr1 and vhat = layer.vb.(o) /. corr2 in
          layer.b.(o) <- layer.b.(o) -. (lr *. mhat /. (sqrt vhat +. eps)))
        layer.w)
    net.layers

(* Backprop over a batch: accumulated weight/bias gradients of the
   mean per-sample loss, plus that mean loss.  Pure with respect to the
   network (no parameter or Adam-state mutation), so the same code
   serves both [train_batch] and the finite-difference gradient
   check. *)
let gradients net batch =
  let nlayers = Array.length net.layers in
  let grads_w =
    Array.map
      (fun layer ->
        Array.init (Array.length layer.w) (fun o ->
            Array.make (Array.length layer.w.(o)) 0.0))
      net.layers
  and grads_b =
    Array.map (fun layer -> Array.make (Array.length layer.b) 0.0) net.layers
  in
  let total_loss = ref 0.0 in
  let bsize = float_of_int (max 1 (Array.length batch)) in
  Array.iter
    (fun (x, action, target) ->
      let acts, pre = forward_cached net x in
      let out = acts.(nlayers) in
      let err = out.(action) -. target in
      total_loss := !total_loss +. (0.5 *. err *. err);
      (* Delta at the output layer: only the taken action. *)
      let delta = ref (Array.make (Array.length out) 0.0) in
      !delta.(action) <- err /. bsize;
      for l = nlayers - 1 downto 0 do
        let layer = net.layers.(l) in
        let d = !delta in
        (* Accumulate gradients for this layer. *)
        Array.iteri
          (fun o dout ->
            if dout <> 0.0 then begin
              grads_b.(l).(o) <- grads_b.(l).(o) +. dout;
              let input = acts.(l) in
              let gw = grads_w.(l).(o) in
              Array.iteri
                (fun i xi -> gw.(i) <- gw.(i) +. (dout *. xi))
                input
            end)
          d;
        (* Propagate to the previous layer. *)
        if l > 0 then begin
          let din = Array.make net.sizes.(l) 0.0 in
          Array.iteri
            (fun o dout ->
              if dout <> 0.0 then
                Array.iteri
                  (fun i wij -> din.(i) <- din.(i) +. (dout *. wij))
                  layer.w.(o))
            d;
          (* Through the ReLU of layer l-1. *)
          let z = pre.(l - 1) in
          Array.iteri
            (fun i zi -> if zi <= 0.0 then din.(i) <- 0.0)
            z;
          delta := din
        end
      done)
    batch;
  (grads_w, grads_b, !total_loss /. bsize)

let loss_batch net batch =
  if Array.length batch = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun (x, action, target) ->
        let out = forward net x in
        let err = out.(action) -. target in
        total := !total +. (0.5 *. err *. err))
      batch;
    !total /. float_of_int (Array.length batch)
  end

let train_batch net ~lr batch =
  if Array.length batch = 0 then 0.0
  else begin
    let grads_w, grads_b, loss = gradients net batch in
    adam_update net ~lr grads_w grads_b;
    loss
  end

let nudge_weight net ~layer ~out ~idx delta =
  let l = net.layers.(layer) in
  l.w.(out).(idx) <- l.w.(out).(idx) +. delta

let nudge_bias net ~layer ~out delta =
  let l = net.layers.(layer) in
  l.b.(out) <- l.b.(out) +. delta

let copy_weights ~src ~dst =
  if src.sizes <> dst.sizes then
    invalid_arg "Mlp.copy_weights: shape mismatch";
  Array.iteri
    (fun l layer ->
      let s = src.layers.(l) in
      Array.iteri (fun o row -> Array.blit s.w.(o) 0 row 0 (Array.length row))
        layer.w;
      Array.blit s.b 0 layer.b 0 (Array.length layer.b))
    dst.layers

let clone net =
  let c = create ~sizes:net.sizes ~seed:0 in
  copy_weights ~src:net ~dst:c;
  c

let parameter_count net =
  Array.fold_left
    (fun acc layer ->
      acc
      + Array.fold_left (fun a row -> a + Array.length row) 0 layer.w
      + Array.length layer.b)
    0 net.layers

let save_string net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (String.concat " " (Array.to_list (Array.map string_of_int net.sizes)));
  Buffer.add_char buf '\n';
  (* Hex float literals (%h) round-trip every finite double exactly;
     [float_of_string] parses both this and the legacy %.17g decimal
     form, so models saved before the switch still load. *)
  Array.iter
    (fun layer ->
      Array.iter
        (fun row ->
          Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf "%h " x)) row;
          Buffer.add_char buf '\n')
        layer.w;
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf "%h " x))
        layer.b;
      Buffer.add_char buf '\n')
    net.layers;
  Buffer.contents buf

let load_string s =
  match String.split_on_char '\n' s with
  | [] -> failwith "Mlp.load_string: empty"
  | header :: rest ->
    let sizes =
      try
        String.split_on_char ' ' (String.trim header)
        |> List.filter (fun t -> t <> "")
        |> List.map int_of_string
        |> Array.of_list
      with Failure _ -> failwith "Mlp.load_string: bad header"
    in
    let net = create ~sizes ~seed:0 in
    let lines = ref rest in
    let next_line () =
      match !lines with
      | [] -> failwith "Mlp.load_string: truncated"
      | l :: tl ->
        lines := tl;
        l
    in
    let floats_of_line line n =
      let parts =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      in
      if List.length parts <> n then failwith "Mlp.load_string: bad row";
      Array.of_list (List.map float_of_string parts)
    in
    Array.iter
      (fun layer ->
        Array.iteri
          (fun o _ ->
            let row = floats_of_line (next_line ()) (Array.length layer.w.(o)) in
            Array.blit row 0 layer.w.(o) 0 (Array.length row))
          layer.w;
        let b = floats_of_line (next_line ()) (Array.length layer.b) in
        Array.blit b 0 layer.b 0 (Array.length b))
      net.layers;
    net
