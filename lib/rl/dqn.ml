type config = {
  state_dim : int;
  num_actions : int;
  hidden : int array;
  gamma : float;
  lr : float;
  batch_size : int;
  buffer_capacity : int;
  target_sync : int;
  eps_start : float;
  eps_end : float;
  eps_decay_steps : int;
  seed : int;
}

let default_config =
  {
    state_dim = 22;
    num_actions = 5;
    hidden = [| 64; 64 |];
    gamma = 0.98;
    lr = 1e-3;
    batch_size = 32;
    buffer_capacity = 10_000;
    target_sync = 100;
    eps_start = 1.0;
    eps_end = 0.05;
    eps_decay_steps = 2_000;
    seed = 7;
  }

type t = {
  cfg : config;
  qnet : Mlp.t;
  target : Mlp.t;
  replay : Replay.t;
  rng : Aig.Rng.t;
  (* The agent is shared across worker domains at serving time; every
     entry point that touches the RNG, the replay buffer, the counters
     or the networks takes this lock.  Single-domain behavior is
     unchanged (an uncontended Mutex.lock is a few ns). *)
  m : Mutex.t;
  mutable action_count : int;
  mutable train_count : int;
  mutable loss : float;
}

let create cfg =
  let sizes =
    Array.concat [ [| cfg.state_dim |]; cfg.hidden; [| cfg.num_actions |] ]
  in
  let qnet = Mlp.create ~sizes ~seed:cfg.seed in
  let target = Mlp.clone qnet in
  {
    cfg;
    qnet;
    target;
    replay = Replay.create ~capacity:cfg.buffer_capacity ~seed:(cfg.seed + 1);
    rng = Aig.Rng.create (cfg.seed + 2);
    m = Mutex.create ();
    action_count = 0;
    train_count = 0;
    loss = 0.0;
  }

let locked agent f =
  Mutex.lock agent.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock agent.m) f

let config agent = agent.cfg
let q_values_unlocked agent state = Mlp.forward agent.qnet state
let q_values agent state = locked agent (fun () -> q_values_unlocked agent state)
let training_steps agent = locked agent (fun () -> agent.train_count)
let last_loss agent = locked agent (fun () -> agent.loss)

let argmax v =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
  !best

let epsilon agent =
  let cfg = agent.cfg in
  let progress =
    min 1.0 (float_of_int agent.action_count /. float_of_int cfg.eps_decay_steps)
  in
  cfg.eps_start +. ((cfg.eps_end -. cfg.eps_start) *. progress)

let select_action agent ?(explore = false) state =
  locked agent (fun () ->
      agent.action_count <- agent.action_count + 1;
      if explore && Aig.Rng.float agent.rng < epsilon agent then
        Aig.Rng.int agent.rng agent.cfg.num_actions
      else argmax (q_values_unlocked agent state))

let train_step agent =
  let cfg = agent.cfg in
  let batch = Replay.sample agent.replay cfg.batch_size in
  let samples =
    Array.map
      (fun tr ->
        let target_value =
          match tr.Replay.next_state with
          | None -> tr.Replay.reward
          | Some s' ->
            let qs' = Mlp.forward agent.target s' in
            tr.Replay.reward +. (cfg.gamma *. qs'.(argmax qs'))
        in
        (tr.Replay.state, tr.Replay.action, target_value))
      batch
  in
  agent.loss <- Mlp.train_batch agent.qnet ~lr:cfg.lr samples;
  agent.train_count <- agent.train_count + 1;
  if agent.train_count mod cfg.target_sync = 0 then
    Mlp.copy_weights ~src:agent.qnet ~dst:agent.target

let observe agent tr =
  locked agent (fun () ->
      Replay.push agent.replay tr;
      if Replay.size agent.replay >= agent.cfg.batch_size then train_step agent)

type env = {
  reset : unit -> float array;
  step : int -> float array * float * bool;
}

let run_episode agent env ~max_steps ~learn =
  let total = ref 0.0 in
  let state = ref (env.reset ()) in
  let steps = ref 0 in
  let finished = ref false in
  while (not !finished) && !steps < max_steps do
    incr steps;
    let a = select_action agent ~explore:learn !state in
    let s', r, terminal = env.step a in
    total := !total +. r;
    if learn then
      observe agent
        {
          Replay.state = !state;
          action = a;
          reward = r;
          next_state = (if terminal then None else Some s');
        };
    state := s';
    finished := terminal
  done;
  !total

let save_string agent = locked agent (fun () -> Mlp.save_string agent.qnet)

let load_weights_string agent s =
  let net = Mlp.load_string s in
  locked agent (fun () ->
      Mlp.copy_weights ~src:net ~dst:agent.qnet;
      Mlp.copy_weights ~src:net ~dst:agent.target)
