type t = Aig.Tt.t -> int

let conventional _ = 1

(* The memo is a process-wide table shared by every portfolio worker
   domain mapping concurrently; the mutex only covers the lookup and
   the insertion, never the (pure) cost computation itself. *)
let memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096
let memo_lock = Mutex.create ()

let branching_raw f =
  List.length (Aig.Isop.compute f)
  + List.length (Aig.Isop.compute (Aig.Tt.not_ f))

let branching f =
  let n = Aig.Tt.num_vars f in
  if n <= 6 then begin
    let key = (n, Aig.Tt.to_int f) in
    let cached =
      Mutex.lock memo_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock memo_lock)
        (fun () -> Hashtbl.find_opt memo key)
    in
    match cached with
    | Some c -> c
    | None ->
      let c = branching_raw f in
      Mutex.lock memo_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock memo_lock)
        (fun () -> if not (Hashtbl.mem memo key) then Hashtbl.add memo key c);
      c
  end
  else branching_raw f

let branching_of_int64 ~nvars bits =
  branching (Aig.Cut.cut_tt { Aig.Cut.leaves = Array.make nvars 0; tt = bits })

let table_for_arity n =
  if n > 4 then invalid_arg "Cost.table_for_arity: arity above 4";
  List.map
    (fun f -> (Aig.Tt.to_int f, branching f))
    (Aig.Npn.all_class_representatives n)
