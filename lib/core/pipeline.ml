let log_src = Logs.Src.create "eda4sat.pipeline" ~doc:"Algorithm 1 pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type recipe_source =
  | No_preprocessing
  | Fixed of Synth.Recipe.op list
  | Random_policy of { seed : int; steps : int }
  | Agent of Rl.Dqn.t * int

type config = {
  recipe : recipe_source;
  mapper : Lutmap.Mapper.config;
  embed : Deepgate.Embedding.config;
  advanced_recovery : bool;
}

type report = {
  instance : string;
  recipe_used : Synth.Recipe.op list;
  vars : int;
  clauses : int;
  t_agent : float;
  t_trans : float;
  t_solve : float;
  result : Sat.Solver.result;
  solver_stats : Sat.Solver.stats;
  aig_before : Aig.Stats.snapshot option;
  aig_after : Aig.Stats.snapshot option;
  netlist_luts : int;
  netlist_levels : int;
}

let t_all r = r.t_agent +. r.t_trans +. r.t_solve

(* Wall-clock timing (monotonic): the paper's T_agent/T_trans/T_solve
   decomposition is about elapsed time, and under the portfolio several
   domains share the process, so [Sys.time] (process CPU) would
   over-count by the domain fan-out. *)
let timed f =
  let t0 = Sat.Wall.now () in
  let x = f () in
  (x, Sat.Wall.now () -. t0)

let empty_stats =
  {
    Sat.Solver.decisions = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    reduces = 0;
    probed = 0;
    vivified = 0;
    inproc_subsumed = 0;
    max_decision_level = 0;
    time = 0.0;
    cpu_time = 0.0;
    minor_words = 0.0;
    major_collections = 0;
  }

(* The final solve, optionally through the proof-carrying CNF-level
   simplifier (the paper keeps Kissat's own preprocessing on under the
   circuit pipeline; [Cnf.Simplify] is that layer here).  The same
   recorder observes simplification and search, so an [Unsat] answer
   carries one end-to-end DRAT stream checkable against [f], and a
   [Sat] model is lifted back over [f]'s variables with
   [Cnf.Simplify.reconstruct]. *)
let solve_formula ~limits ?proof ?interrupt ~simplify f =
  if not simplify then Sat.Solver.solve ~limits ?proof ?interrupt f
  else
    match Cnf.Simplify.run ?proof f with
    | Cnf.Simplify.Proved_unsat -> (Sat.Solver.Unsat, empty_stats)
    | Cnf.Simplify.Simplified simp ->
      let result, stats =
        Sat.Solver.solve ~limits ?proof ?interrupt (Cnf.Simplify.formula simp)
      in
      (match result with
       | Sat.Solver.Sat m ->
         (Sat.Solver.Sat (Cnf.Simplify.reconstruct simp m), stats)
       | r -> (r, stats))

let solve_direct ?(limits = Sat.Solver.no_limits) ?proof ?interrupt
    ?(simplify = false) inst =
  let f = Instance.direct_formula inst in
  let (result, stats), t_solve =
    timed (fun () -> solve_formula ~limits ?proof ?interrupt ~simplify f)
  in
  {
    instance = inst.Instance.name;
    recipe_used = [];
    vars = f.Cnf.Formula.num_vars;
    clauses = Cnf.Formula.num_clauses f;
    t_agent = 0.0;
    t_trans = 0.0;
    t_solve;
    result;
    solver_stats = stats;
    aig_before = None;
    aig_after = None;
    netlist_luts = 0;
    netlist_levels = 0;
  }

exception Interrupted

(* Apply a recipe one operation at a time, polling the cancellation
   hook between operations so a portfolio lane that already lost the
   race can abandon an expensive synthesis run. *)
let apply_ops ~should_stop ops g0 =
  List.fold_left
    (fun g op ->
      if should_stop () then raise Interrupted;
      Synth.Recipe.apply op g)
    g0 ops

(* Select the synthesis recipe, charging Q-network/embedding time to
   t_agent and synthesis time to t_trans. *)
let run_recipe ~should_stop config g0 =
  match config.recipe with
  | No_preprocessing -> (g0, [], 0.0, 0.0)
  | Fixed ops ->
    let g, t_synth = timed (fun () -> apply_ops ~should_stop ops g0) in
    (g, ops, 0.0, t_synth)
  | Random_policy { seed; steps } ->
    let rng = Aig.Rng.create seed in
    let ops =
      List.init steps (fun _ ->
          (* Random over the non-End operations, as in §4.3 (the random
             agent always runs T operations). *)
          Synth.Recipe.op_of_index (Aig.Rng.int rng 4))
    in
    let g, t_synth = timed (fun () -> apply_ops ~should_stop ops g0) in
    (g, ops, 0.0, t_synth)
  | Agent (agent, max_steps) ->
    let st, t_embed =
      timed (fun () -> State.of_initial ~embed_config:config.embed g0)
    in
    let t_agent = ref t_embed and t_synth = ref 0.0 in
    let g = ref g0 and ops = ref [] in
    (try
       for _t = 1 to max_steps do
         if should_stop () then raise Interrupted;
         let action, t_sel =
           timed (fun () ->
               Rl.Dqn.select_action agent (State.observe st !g))
         in
         t_agent := !t_agent +. t_sel;
         let op = Synth.Recipe.op_of_index action in
         if op = Synth.Recipe.End then raise Exit;
         ops := op :: !ops;
         let g', t_op = timed (fun () -> Synth.Recipe.apply op !g) in
         t_synth := !t_synth +. t_op;
         g := g'
       done
     with Exit -> ());
    (!g, List.rev !ops, !t_agent, !t_synth)

let transform ?(should_stop = fun () -> false) config inst =
  let check () = if should_stop () then raise Interrupted in
  match config.recipe with
  | No_preprocessing ->
    let f = Instance.direct_formula inst in
    ( f,
      {
        instance = inst.Instance.name;
        recipe_used = [];
        vars = f.Cnf.Formula.num_vars;
        clauses = Cnf.Formula.num_clauses f;
        t_agent = 0.0;
        t_trans = 0.0;
        t_solve = 0.0;
        result = Unknown;
        solver_stats = empty_stats;
        aig_before = None;
        aig_after = None;
        netlist_luts = 0;
        netlist_levels = 0;
      } )
  | Fixed _ | Random_policy _ | Agent _ ->
    let g0, t_to_aig =
      timed (fun () -> Instance.to_aig ~advanced:config.advanced_recovery inst)
    in
    check ();
    let before = Aig.Stats.snapshot g0 in
    Log.debug (fun m ->
        m "%s: G0 has %d ANDs, depth %d (to_aig %.3fs)" inst.Instance.name
          before.Aig.Stats.area before.Aig.Stats.depth t_to_aig);
    let g, recipe_used, t_agent, t_synth = run_recipe ~should_stop config g0 in
    check ();
    let after = Aig.Stats.snapshot g in
    Log.debug (fun m ->
        m "%s: recipe [%s] -> %d ANDs, depth %d (synth %.3fs)"
          inst.Instance.name
          (Synth.Recipe.to_string recipe_used)
          after.Aig.Stats.area after.Aig.Stats.depth t_synth);
    let nl, t_map =
      timed (fun () -> Lutmap.Mapper.run ~config:config.mapper g)
    in
    check ();
    let enc, t_enc = timed (fun () -> Lutmap.Encode.encode nl) in
    let f = enc.Lutmap.Encode.formula in
    Log.debug (fun m ->
        m "%s: mapped to %d LUTs / %d levels; CNF %d vars, %d clauses \
           (map %.3fs, encode %.3fs)"
          inst.Instance.name
          (Lutmap.Netlist.num_luts nl)
          (Lutmap.Netlist.depth nl) f.Cnf.Formula.num_vars
          (Cnf.Formula.num_clauses f) t_map t_enc);
    ( f,
      {
        instance = inst.Instance.name;
        recipe_used;
        vars = f.Cnf.Formula.num_vars;
        clauses = Cnf.Formula.num_clauses f;
        t_agent;
        t_trans = t_to_aig +. t_synth +. t_map +. t_enc;
        t_solve = 0.0;
        result = Unknown;
        solver_stats = empty_stats;
        aig_before = Some before;
        aig_after = Some after;
        netlist_luts = Lutmap.Netlist.num_luts nl;
        netlist_levels = Lutmap.Netlist.depth nl;
      } )

let run ?(limits = Sat.Solver.no_limits) ?proof ?interrupt ?(simplify = false)
    config inst =
  match config.recipe with
  | No_preprocessing -> solve_direct ~limits ?proof ?interrupt ~simplify inst
  | Fixed _ | Random_policy _ | Agent _ ->
    let f, rep = transform config inst in
    let (result, stats), t_solve =
      timed (fun () -> solve_formula ~limits ?proof ?interrupt ~simplify f)
    in
    { rep with t_solve; result; solver_stats = stats }

let default_embed = Deepgate.Embedding.default_config

let baseline =
  {
    recipe = No_preprocessing;
    mapper = Lutmap.Mapper.default_config;
    embed = default_embed;
    advanced_recovery = false;
  }

(* The flow of Eén, Mishchenko & Sörensson 2007: DAG-aware minimization
   plus FRAIGing (our resub), then conventional minimum-area
   technology mapping into CNF.  Differs from [ours] in both knobs the
   paper ablates: no learned recipe, no branching-aware mapping. *)
let een2007 =
  {
    recipe = Fixed (Synth.Recipe.compress2 @ [ Synth.Recipe.Resub ]);
    mapper = Lutmap.Mapper.default_config;
    embed = default_embed;
    advanced_recovery = false;
  }

(* Without a trained agent, the framework's best fixed recipe.  Balance
   first: CNF-recovered circuits arrive as deep constraint chains
   (§4.6) and every later pass is dramatically cheaper on the balanced
   form — the same signal the RL agent reads from the balance-ratio
   feature.  Resub (FRAIG) is the big hammer on miters, bracketed by
   rewriting. *)
let default_recipe =
  [ Synth.Recipe.Balance; Synth.Recipe.Rewrite; Synth.Recipe.Resub;
    Synth.Recipe.Rewrite; Synth.Recipe.Balance ]

let ours ?agent ?(max_steps = 10) () =
  {
    recipe =
      (match agent with
       | Some a -> Agent (a, max_steps)
       | None -> Fixed default_recipe);
    mapper = Lutmap.Mapper.cost_customized_config;
    embed = default_embed;
    advanced_recovery = false;
  }

let ours_without_rl ~seed =
  {
    recipe = Random_policy { seed; steps = 10 };
    mapper = Lutmap.Mapper.cost_customized_config;
    embed = default_embed;
    advanced_recovery = false;
  }

let ours_conventional_mapper ?agent () =
  { (ours ?agent ()) with mapper = Lutmap.Mapper.default_config }

(* --- portfolio ------------------------------------------------------ *)

(* The racing lanes.  Direct lanes (solving the instance's own CNF,
   share group 0) interleave with EDA lanes that run Algorithm 1 first:
   preprocessing itself is a portfolio member, paying its T_trans
   inside its own lane while the direct lanes already solve.  A lane's
   transformed CNF is equisatisfiable with — but different from — the
   input, so EDA lanes never exchange clauses with direct lanes
   (distinct share groups; see {!Portfolio.Strategy}).

   CNF-simplification lanes run [Cnf.Simplify] on the direct formula
   as their preparation.  Like the EDA lanes they must not share with
   group 0 (a BVE resolvent set has different models than the input),
   but unlike them the simplifier is deterministic over the same
   input, so all simplify lanes solve the identical formula and form
   their own share group (1).  Their preparation also returns
   [Cnf.Simplify.reconstruct] as the model lift, so a winning [Sat]
   answer is reported over the input formula's variables. *)
let simplify_share_group = 1

let simplify_lane inst heuristic restarts name =
  Portfolio.Strategy.prepared_lifted ~heuristic ~restarts
    ~share_group:simplify_share_group name (fun ~stop:_ ->
      let f = Instance.direct_formula inst in
      match Cnf.Simplify.run f with
      | Cnf.Simplify.Proved_unsat ->
        (* Refuted during preparation: hand the solver a trivially
           unsatisfiable stand-in so the lane answers [Unsat]
           immediately. *)
        (Cnf.Formula.create ~num_vars:f.Cnf.Formula.num_vars [ [||] ], None)
      | Cnf.Simplify.Simplified simp ->
        (Cnf.Simplify.formula simp, Some (Cnf.Simplify.reconstruct simp)))

let portfolio_strategies ?(jobs = 4) config inst =
  let open Portfolio.Strategy in
  let lane name cfg heuristic restarts =
    prepared ~heuristic ~restarts name (fun ~stop ->
        fst (transform ~should_stop:stop cfg inst))
  in
  match config.recipe with
  | No_preprocessing -> default_pool ~jobs:(max 1 jobs)
  | Fixed _ | Random_policy _ | Agent _ ->
    let eda_conventional =
      { config with mapper = Lutmap.Mapper.default_config }
    in
    let fixed =
      [
        direct ~heuristic:`Evsids ~restarts:`Luby "direct/evsids/luby";
        lane "eda/evsids/luby" config `Evsids `Luby;
        simplify_lane inst `Lrb `Glucose "simplify/lrb/glucose";
        direct ~heuristic:`Lrb ~restarts:`Glucose "direct/lrb/glucose";
        lane "een2007/evsids/glucose" een2007 `Evsids `Glucose;
        simplify_lane inst `Evsids `Glucose "simplify/evsids/glucose";
        direct ~heuristic:`Evsids ~restarts:`Glucose "direct/evsids/glucose";
        lane "eda-conventional/lrb/luby" eda_conventional `Lrb `Luby;
        direct ~heuristic:`Lrb ~restarts:`Luby "direct/lrb/luby";
        lane "een2007/lrb/glucose" een2007 `Lrb `Glucose;
      ]
    in
    let jobs = max 1 jobs in
    if jobs <= List.length fixed then List.filteri (fun i _ -> i < jobs) fixed
    else
      fixed
      @ List.map
          (fun (name, h, r) ->
            direct ~heuristic:h ~restarts:r ("extra/" ^ name))
          (grid (jobs - List.length fixed))

let run_portfolio ?(limits = Sat.Solver.no_limits) ?(jobs = 4)
    ?(share_lbd = 4) ?proof ?log config inst =
  let f = Instance.direct_formula inst in
  let strategies = portfolio_strategies ~jobs config inst in
  let outcome =
    Portfolio.Runner.run ~jobs ~share_lbd ~limits ?proof ?log strategies f
  in
  let report =
    {
      instance = inst.Instance.name;
      recipe_used = [];
      vars = f.Cnf.Formula.num_vars;
      clauses = Cnf.Formula.num_clauses f;
      t_agent = 0.0;
      t_trans = 0.0;
      t_solve = outcome.Portfolio.Runner.wall;
      result = outcome.Portfolio.Runner.result;
      solver_stats = outcome.Portfolio.Runner.stats;
      aig_before = None;
      aig_after = None;
      netlist_luts = 0;
      netlist_levels = 0;
    }
  in
  (report, outcome)

let solve_cube ?(limits = Sat.Solver.no_limits) ?cubes ?probe_limit ?jobs
    ?proof ?interrupt ?log inst =
  let f = Instance.direct_formula inst in
  let cr =
    Portfolio.Cuber.solve ?cubes ?probe_limit ?jobs ~limits ?proof ?interrupt
      ?log f
  in
  let report =
    {
      instance = inst.Instance.name;
      recipe_used = [];
      vars = f.Cnf.Formula.num_vars;
      clauses = Cnf.Formula.num_clauses f;
      t_agent = 0.0;
      t_trans = 0.0;
      t_solve = cr.Portfolio.Cuber.wall;
      result = cr.Portfolio.Cuber.result;
      solver_stats = cr.Portfolio.Cuber.stats;
      aig_before = None;
      aig_after = None;
      netlist_luts = 0;
      netlist_levels = 0;
    }
  in
  (report, cr)

let reduction ~baseline r =
  let tb = t_all baseline in
  if tb <= 0.0 then 0.0 else 100.0 *. (tb -. t_all r) /. tb

let pp_report ppf r =
  Format.fprintf ppf
    "%s: vars=%d clauses=%d t_agent=%.3f t_trans=%.3f t_solve=%.3f t_all=%.3f %s"
    r.instance r.vars r.clauses r.t_agent r.t_trans r.t_solve (t_all r)
    (match r.result with
     | Sat.Solver.Sat _ -> "SAT"
     | Sat.Solver.Unsat -> "UNSAT"
     | Sat.Solver.Unknown -> "UNKNOWN")
