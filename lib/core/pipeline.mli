(** The EDA-driven preprocessing pipeline (Algorithm 1) and the
    experiment presets built on it.

    Every run produces a {!report} carrying the timing decomposition of
    the paper's tables: T_agent (embedding + Q-network inference),
    T_trans (CNF-to-circuit recovery, logic synthesis, LUT mapping and
    CNF re-encoding) and T_solve, with T_all their sum. *)

type recipe_source =
  | No_preprocessing
      (** Solve the instance's direct formula — the Baseline columns. *)
  | Fixed of Synth.Recipe.op list
  | Random_policy of { seed : int; steps : int }
      (** The "w/o RL" ablation of §4.3. *)
  | Agent of Rl.Dqn.t * int
      (** Trained agent and maximum step count T. *)

type config = {
  recipe : recipe_source;
  mapper : Lutmap.Mapper.config;
  embed : Deepgate.Embedding.config;
  advanced_recovery : bool;
      (** use the order-independent cnf2aig when the input is CNF *)
}

type report = {
  instance : string;
  recipe_used : Synth.Recipe.op list;
  vars : int;
  clauses : int;
  t_agent : float;
  t_trans : float;
  t_solve : float;
  result : Sat.Solver.result;
  solver_stats : Sat.Solver.stats;
  aig_before : Aig.Stats.snapshot option;
  aig_after : Aig.Stats.snapshot option;
  netlist_luts : int;
  netlist_levels : int;
}

val t_all : report -> float

val run :
  ?limits:Sat.Solver.limits -> ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t -> ?simplify:bool ->
  config -> Instance.t -> report
(** Full Algorithm 1 (or a direct solve for [No_preprocessing]).

    [interrupt] cancels the {e solve} phase cooperatively (the result
    is [Unknown], as in {!Sat.Solver.solve}); the solve service wires
    per-job deadlines and shutdown to it.  The transformation phases
    do not poll it — callers racing the whole pipeline use
    {!transform}'s [should_stop] instead.

    With [~simplify:true] (default false), the CNF leaving the circuit
    pipeline additionally passes through the proof-carrying CNF-level
    simplifier ({!Cnf.Simplify}) before the solver — the
    paper's framework keeps the solver's CNF preprocessing enabled
    underneath the circuit transformations.  A [Sat] model is lifted
    back over the solved formula's variables with
    [Cnf.Simplify.reconstruct]; a refutation found during
    simplification yields [Unsat] with zeroed solver stats.

    With [?proof], learned clauses — and, under [~simplify:true],
    every clause the simplifier derives or removes — are DRAT-logged
    into the recorder, so an [Unsat] answer seals one end-to-end
    stream that {!Sat.Proof.check} validates against the CNF entering
    the simplifier (the transformed formula, or the direct formula
    under [No_preprocessing]). *)

exception Interrupted
(** Raised out of {!transform} when its [should_stop] poll answers
    true — between synthesis operations and between pipeline phases. *)

val transform :
  ?should_stop:(unit -> bool) -> config -> Instance.t -> Cnf.Formula.t * report
(** Algorithm 1 without the final solve: returns the simplified CNF
    \phi_out for an external solver.  The report's solver fields are
    zeroed and [result] is [Unknown].  With [No_preprocessing] the
    instance's direct formula is returned unchanged.  [should_stop]
    (default never) is polled between operations and phases; answering
    true aborts the transformation with {!Interrupted} — the portfolio
    uses this so a lane whose race is already lost stops preprocessing
    early. *)

val solve_direct :
  ?limits:Sat.Solver.limits -> ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t -> ?simplify:bool ->
  Instance.t -> report
(** Solve the instance's direct formula, with the same [?proof],
    [?interrupt] and [?simplify] semantics as {!run}. *)

(** {1 Experiment presets} *)

val baseline : config
(** Solve directly, no preprocessing. *)

val een2007 : config
(** The comparison approach "[15]" (Eén, Mishchenko & Sörensson 2007):
    synthesis for size (a compress2-style script) followed by
    conventional minimum-area LUT mapping. *)

val ours : ?agent:Rl.Dqn.t -> ?max_steps:int -> unit -> config
(** The full framework: RL-guided recipe (or, without an agent, the
    best fixed recipe) + cost-customized mapping. *)

val ours_without_rl : seed:int -> config
(** Random synthesis policy, cost-customized mapping (§4.3 ablation). *)

val ours_conventional_mapper : ?agent:Rl.Dqn.t -> unit -> config
(** RL recipe with the conventional mapper (§4.4 ablation). *)

(** {1 Portfolio racing} *)

val portfolio_strategies :
  ?jobs:int -> config -> Instance.t -> Portfolio.Strategy.t list
(** The diversified lane pool raced by {!run_portfolio}: direct lanes
    (heuristic × restart-schedule grid over the instance's own CNF,
    exchanging low-LBD learnt clauses) interleaved with EDA lanes that
    run [transform config] — and the Eén-2007 recipe — as their
    preparation step, so Algorithm 1 preprocessing competes as a
    portfolio member instead of a mandatory prefix, and with
    CNF-simplification lanes that run {!Cnf.Simplify} on the direct
    formula.  The simplify lanes form their own clause-sharing group
    (they all solve the identical deterministic simplification, which
    has different models than the input, so they share with each other
    but never with the direct group) and lift winning models back to
    the input variables via [Cnf.Simplify.reconstruct].  With
    [No_preprocessing] the pool is direct-only.  At least [jobs]
    (default 4) strategies are returned. *)

val run_portfolio :
  ?limits:Sat.Solver.limits ->
  ?jobs:int ->
  ?share_lbd:int ->
  ?proof:Sat.Proof.t ->
  ?log:(string -> unit) ->
  config ->
  Instance.t ->
  report * Portfolio.Runner.outcome
(** Race {!portfolio_strategies} on the instance with
    {!Portfolio.Runner.run}.  The report's [t_solve] is the race's
    wall-clock time and its solver fields are the winner's; [vars] and
    [clauses] describe the direct formula.  See {!Portfolio.Runner}
    for proof semantics ([proof] is completed only when a direct lane
    refutes the input formula) and the [jobs = 1] deterministic
    sequential fallback. *)

(** {1 Cube-and-conquer} *)

val solve_cube :
  ?limits:Sat.Solver.limits ->
  ?cubes:int ->
  ?probe_limit:int ->
  ?jobs:int ->
  ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t ->
  ?log:(string -> unit) ->
  Instance.t ->
  report * Portfolio.Cuber.report
(** Cube-and-conquer the instance's direct formula with
    {!Portfolio.Cuber.solve}: lookahead-split into up to [cubes]
    cubes, conquer them on [jobs] domains with work stealing and
    first-SAT sibling cancellation, and — with [proof] — stitch each
    refuted cube's [¬cube] clause into one RUP-checkable DRAT stream
    closed by the empty clause.  [limits] bound each cube job
    separately.  The report's [t_solve] is the whole
    cube→conquer→stitch wall time; [jobs = 1] is deterministic. *)

val reduction : baseline:report -> report -> float
(** Percentage reduction of T_all versus the baseline ("Red." columns). *)

val pp_report : Format.formatter -> report -> unit
