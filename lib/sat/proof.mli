(** DRAT proof logging and checking.

    This is a transparent re-export of {!Cnf.Proof} — the
    implementation lives in the [cnf] library so that
    {!Cnf.Simplify.run} can log its preprocessing steps into the same
    recorder the solver appends to, yielding one end-to-end
    RUP-checkable stream for [transform → simplify → solve].
    [Sat.Proof.t] and [Cnf.Proof.t] are the same type; see
    {!Cnf.Proof} for the full documentation of sealing, the
    deletion-free portfolio mode and the RUP checker. *)

include module type of struct
  include Cnf.Proof
end
