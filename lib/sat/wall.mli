(** Monotonic wall-clock time.

    [Sys.time] measures {e process CPU} time, which advances roughly
    N times faster than real time when N domains are running — so a
    CPU-clocked [max_seconds] fires N times early under the portfolio.
    Every wall-clock measurement in the solver and the pipeline goes
    through {!now} instead.

    The OCaml 5.1 standard library exposes no monotonic clock, so
    [now] is [Unix.gettimeofday] made monotone by clamping against the
    largest value returned so far (shared across domains through an
    [Atomic.t]): a backwards NTP step can stall the clock briefly but
    never make an elapsed-time difference negative. *)

val now : unit -> float
(** Monotonic wall-clock seconds since an arbitrary epoch.  Safe to
    call concurrently from any domain. *)
