let last = Atomic.make 0.0

let rec clamp t =
  let l = Atomic.get last in
  if t <= l then l
  else if Atomic.compare_and_set last l t then t
  else clamp t

let now () = clamp (Unix.gettimeofday ())
