(* CDCL solver.  Literal encoding: variable v (0-based) gives literals
   2v (positive) and 2v+1 (negative); [neg l = l lxor 1].  The
   implementation follows the MiniSat/Kissat lineage:

   - all long clauses (length >= 3) live in one flat int {e arena}: a
     clause reference ("cref") is an offset into a single growable
     [int array]; a one-word header packs size, learnt/deleted flags
     and LBD, a second word holds the clause activity as a scaled int,
     and the literals follow inline.  Propagation therefore reads
     literals with zero pointer dereferences and metadata with one;
   - two-watched-literal propagation over flat watcher pairs
     [(cref, blocker)] packed into one int array per literal, so a
     satisfied clause is skipped with a single assignment lookup and
     no clause access;
   - specialized binary-clause watch lists (literal pairs, no clause
     storage at all) consulted before the long-clause watchers;
   - first-UIP conflict analysis with recursive minimization, with the
     clause LBD computed *before* backjumping (all literals still
     assigned);
   - learnt-database reduction that marks the worse half deleted and
     then compacts the arena with a copying collector, relocating
     every live reference (watchers, reasons, learnt index) through
     forwarding pointers written into the old arena;
   - Luby or Glucose (LBD moving-average) restarts.

   Both the batch and the incremental entry points drive the same
   [search] engine; assumptions are placed as pseudo-decisions on the
   first decision levels, and a final conflict against an assumption
   yields an assumption core. *)

type result = Sat of bool array | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
  reduces : int;
  probed : int;
  vivified : int;
  inproc_subsumed : int;
  max_decision_level : int;
  time : float;
  cpu_time : float;
  minor_words : float;
  major_collections : int;
}

type limits = {
  max_conflicts : int option;
  max_decisions : int option;
  max_seconds : float option;
  deadline : float option;
}

(* Cooperative cancellation, after minisat's interrupt /
   clearInterrupt.  The flag is an [Atomic.t] so another domain can
   raise it asynchronously; the search probes it on every budget tick
   (one per conflict or decision) and gives up with [Unknown]. *)
module Interrupt = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let set t = Atomic.set t true
  let clear t = Atomic.set t false
  let is_set t = Atomic.get t
end

let no_limits =
  { max_conflicts = None; max_decisions = None; max_seconds = None;
    deadline = None }

(* --- clause arena --------------------------------------------------

   Layout of a clause at cref [c] (offsets in words):

     arena.(c)       header: size | lbd | deleted | learnt
     arena.(c + 1)   activity (scaled int; see below)
     arena.(c + 2..) the [size] literals, inline

   Header word, low bits to high:

     bit 0         learnt flag
     bit 1         deleted flag
     bits 2..27    LBD (clamped to 26 bits)
     bits 28..     size (number of literals)

   cref 0 is the null reference — arena slot 0 is a sentinel — so an
   [int] reason can encode "no reason" as 0 (see [reason] below).

   Activities are stored as scaled ints rather than floats: this
   solver bumps a clause by exactly 1.0 and never decays clause
   activities, so an int counter represents the float value exactly
   (no rounding, identical sort order) while keeping the arena a
   homogeneous unboxed int array. *)

let hdr_learnt = 1
let hdr_deleted = 2
let lbd_shift = 2
let lbd_width = 26
let lbd_mask = (1 lsl lbd_width) - 1
let size_shift = lbd_shift + lbd_width

let mk_header ~size ~learnt ~lbd =
  (size lsl size_shift)
  lor (min lbd lbd_mask lsl lbd_shift)
  lor (if learnt then hdr_learnt else 0)

(* Growable vector.  Fresh vectors share an empty backing array so
   that per-literal structures cost nothing until first use — a solver
   over n variables creates 2n of them up front. *)
type 'a vec = { mutable data : 'a array; mutable size : int; dummy : 'a }

let vec_create dummy = { data = [||]; size = 0; dummy }

let vec_push v x =
  if v.size >= Array.length v.data then begin
    let d = Array.make (max 4 (2 * Array.length v.data)) v.dummy in
    Array.blit v.data 0 d 0 v.size;
    v.data <- d
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

(* Watcher list for clauses of length >= 3: flat (cref, blocker) int
   pairs packed into one array, [wn] counting used slots (2 per pair).
   The blocker is some other literal of the clause; if it is currently
   true the clause is satisfied and propagation skips it without
   touching the arena. *)
type watchlist = { mutable w : int array; mutable wn : int }

let no_ints : int array = [||]

let wl_create () = { w = no_ints; wn = 0 }

let wl_push wl c b =
  if wl.wn + 2 > Array.length wl.w then begin
    let d = Array.make (max 8 (2 * Array.length wl.w)) 0 in
    Array.blit wl.w 0 d 0 wl.wn;
    wl.w <- d
  end;
  wl.w.(wl.wn) <- c;
  wl.w.(wl.wn + 1) <- b;
  wl.wn <- wl.wn + 2

(* Assignment reasons, one int per variable:
     0    no reason (decision / assumption / level-0 unit)
     > 0  cref of the propagating long clause
     < 0  binary clause; the (false) partner literal is [-r - 1]. *)
let reason_none = 0
let reason_binary w = -w - 1
let binary_partner r = -r - 1

(* A conflict, viewed as the clause that is falsified.  Binary
   conflicts carry their two literals directly. *)
type conflict = Confl_clause of int | Confl_binary of int * int

type t = {
  mutable nvars : int;
  (* Assignment: -1 unassigned, 0 false, 1 true; per variable. *)
  mutable assigns : int array;
  mutable level : int array;
  mutable reason : int array;
  (* Trail of assigned literals, with decision-level boundaries. *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;
  mutable ntrail_lim : int;
  mutable qhead : int;
  (* The clause arena; [arena_size] is the next free word and
     [arena_wasted] counts words held by deleted clauses.  [arena_spare]
     is the compaction target, ping-ponged with [arena] so steady-state
     reductions allocate nothing. *)
  mutable arena : int array;
  mutable arena_size : int;
  mutable arena_spare : int array;
  mutable arena_wasted : int;
  (* Watches, indexed by literal: [watches.(l)] holds the long clauses
     to visit when [l] becomes true (i.e. clauses watching [neg l]);
     [bin_watches.(l)] holds the partner literals of binary clauses
     containing [neg l]. *)
  mutable watches : watchlist array;
  mutable bin_watches : int vec array;
  (* Decision heuristic. *)
  mutable var_activity : float array;
  mutable var_inc : float;
  mutable heap : int array;       (* binary max-heap of variables *)
  mutable heap_pos : int array;   (* position in heap, -1 if absent *)
  mutable heap_size : int;
  mutable polarity : bool array;  (* saved phases *)
  (* Learnt-clause index: crefs of long learnt clauses (learnt binaries
     live in the binary watch lists and are never deleted). *)
  learnts : int vec;
  (* Conflict analysis scratch. *)
  mutable seen : bool array;
  (* Scratch buffer for the clause being learned; slot 0 is reserved
     for the UIP. *)
  mutable learnt_buf : int array;
  mutable learnt_n : int;
  (* LBD computation scratch: per-level generation stamps. *)
  mutable lbd_mark : int array;
  mutable lbd_gen : int;
  (* Learning-rate branching (Liang et al. 2016) bookkeeping. *)
  mutable lrb : bool;
  mutable lrb_alpha : float;
  mutable assigned_at : int array;   (* conflict counter at assignment *)
  mutable participated : int array;
  (* Statistics. *)
  mutable st_decisions : int;
  mutable st_conflicts : int;
  mutable st_props : int;
  mutable st_restarts : int;
  mutable st_learned : int;
  mutable st_reduces : int;
  mutable st_probed : int;
  mutable st_vivified : int;
  mutable st_inproc_subsumed : int;
  mutable st_max_level : int;
  (* Failed-literal probing resumes its variable scan here, so
     successive inprocessing passes cover different variables. *)
  mutable inproc_head : int;
}

let var l = l lsr 1
let neg l = l lxor 1
let lit_of_var v sign = (v lsl 1) lor (if sign then 1 else 0)

(* Value of a literal: -1 unassigned, 0 false, 1 true.  Hot-path
   callers index [assigns] with internal literals whose variables are
   in range by construction. *)
let lit_value s l =
  let a = Array.unsafe_get s.assigns (l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let clause_size s c = Array.unsafe_get s.arena c lsr size_shift
let clause_lbd s c = (Array.unsafe_get s.arena c lsr lbd_shift) land lbd_mask
let clause_learnt s c = Array.unsafe_get s.arena c land hdr_learnt <> 0
let clause_lit s c i = Array.unsafe_get s.arena (c + 2 + i)

(* Copy a clause's literals out of the arena: anything that escapes the
   solver (proof steps, exports, telemetry) must be a fresh array, never
   a view into the arena, because compaction moves clauses. *)
let clause_lits s c =
  Array.init (clause_size s c) (fun i -> s.arena.(c + 2 + i))

let grow_array a n default =
  let a' = Array.make n default in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let create nvars =
  {
    nvars;
    assigns = Array.make nvars (-1);
    level = Array.make nvars 0;
    reason = Array.make nvars reason_none;
    trail = Array.make (max 1 nvars) 0;
    trail_size = 0;
    trail_lim = Array.make (max 1 nvars) 0;
    ntrail_lim = 0;
    qhead = 0;
    arena = Array.make 256 0;
    arena_size = 1;   (* slot 0 is the null-cref sentinel *)
    arena_spare = no_ints;
    arena_wasted = 0;
    watches = Array.init (2 * max 1 nvars) (fun _ -> wl_create ());
    bin_watches = Array.init (2 * max 1 nvars) (fun _ -> vec_create 0);
    var_activity = Array.make nvars 0.0;
    var_inc = 1.0;
    heap = Array.make (max 1 nvars) 0;
    heap_pos = Array.make nvars (-1);
    heap_size = 0;
    polarity = Array.make nvars false;
    learnts = vec_create 0;
    seen = Array.make nvars false;
    learnt_buf = Array.make 16 0;
    learnt_n = 0;
    lbd_mark = Array.make (max 1 nvars + 1) 0;
    lbd_gen = 0;
    lrb = false;
    lrb_alpha = 0.4;
    assigned_at = Array.make nvars 0;
    participated = Array.make nvars 0;
    st_decisions = 0;
    st_conflicts = 0;
    st_props = 0;
    st_restarts = 0;
    st_learned = 0;
    st_reduces = 0;
    st_probed = 0;
    st_vivified = 0;
    st_inproc_subsumed = 0;
    st_max_level = 0;
    inproc_head = 0;
  }

(* --- arena allocation ---------------------------------------------- *)

let arena_ensure s extra =
  let need = s.arena_size + extra in
  if need > Array.length s.arena then begin
    let cap = ref (max 256 (2 * Array.length s.arena)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let a = Array.make !cap 0 in
    Array.blit s.arena 0 a 0 s.arena_size;
    s.arena <- a
  end

(* Append a clause to the arena; returns its cref. *)
let alloc_clause s lits learnt lbd =
  let n = Array.length lits in
  arena_ensure s (n + 2);
  let c = s.arena_size in
  let a = s.arena in
  a.(c) <- mk_header ~size:n ~learnt ~lbd;
  a.(c + 1) <- 0;
  Array.blit lits 0 a (c + 2) n;
  s.arena_size <- c + 2 + n;
  c

(* --- variable heap (max-heap on activity) ------------------------- *)

let heap_less s a b = s.var_activity.(a) > s.var_activity.(b)

let rec heap_sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      let tmp = s.heap.(i) in
      s.heap.(i) <- s.heap.(p);
      s.heap.(p) <- tmp;
      s.heap_pos.(s.heap.(i)) <- i;
      s.heap_pos.(s.heap.(p)) <- p;
      heap_sift_up s p
    end
  end

let rec heap_sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = s.heap.(i) in
    s.heap.(i) <- s.heap.(!best);
    s.heap.(!best) <- tmp;
    s.heap_pos.(s.heap.(i)) <- i;
    s.heap_pos.(s.heap.(!best)) <- !best;
    heap_sift_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_sift_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_sift_down s 0
  end;
  v

let bump_var s v =
  s.var_activity.(v) <- s.var_activity.(v) +. s.var_inc;
  if s.var_activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.var_activity.(i) <- s.var_activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

let decay_activities s =
  if s.lrb then s.lrb_alpha <- max 0.06 (s.lrb_alpha -. 3e-6)
  else s.var_inc <- s.var_inc /. 0.95

(* --- assignment --------------------------------------------------- *)

let decision_level s = s.ntrail_lim

let enqueue s l reason =
  let v = l lsr 1 in
  if s.lrb then begin
    s.assigned_at.(v) <- s.st_conflicts;
    s.participated.(v) <- 0
  end;
  Array.unsafe_set s.assigns v (1 - (l land 1));
  Array.unsafe_set s.level v (decision_level s);
  Array.unsafe_set s.reason v reason;
  Array.unsafe_set s.polarity v (l land 1 = 0);
  Array.unsafe_set s.trail s.trail_size l;
  s.trail_size <- s.trail_size + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = var s.trail.(i) in
      s.assigns.(v) <- -1;
      s.reason.(v) <- reason_none;
      if s.lrb then begin
        let interval = s.st_conflicts - s.assigned_at.(v) in
        if interval > 0 then begin
          let rate = float_of_int s.participated.(v) /. float_of_int interval in
          s.var_activity.(v) <-
            ((1.0 -. s.lrb_alpha) *. s.var_activity.(v))
            +. (s.lrb_alpha *. rate)
        end
      end;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.ntrail_lim <- lvl
  end

(* --- propagation --------------------------------------------------- *)

exception Found_conflict of conflict

(* The innermost loop of the solver.  All clause accesses go straight
   into the flat arena with unsafe reads: the watcher invariants keep
   every index in range (crefs come from [alloc_clause], literal slots
   from the clause's own header), and the arena array itself is only
   replaced between propagation calls (allocation happens in [search],
   compaction in [reduce_db]), so caching it in a local is sound. *)
let propagate s =
  try
    while s.qhead < s.trail_size do
      let l = Array.unsafe_get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.st_props <- s.st_props + 1;
      (* Binary clauses containing (neg l): the partner must hold. *)
      let bw = Array.unsafe_get s.bin_watches l in
      let bdata = bw.data in
      for i = 0 to bw.size - 1 do
        let other = Array.unsafe_get bdata i in
        let v = lit_value s other in
        if v = 0 then raise (Found_conflict (Confl_binary (neg l, other)))
        else if v < 0 then enqueue s other (reason_binary (neg l))
      done;
      (* Long clauses watching (neg l). *)
      let wl = Array.unsafe_get s.watches l in
      let wdata = wl.w in
      let wn = wl.wn in
      let arena = s.arena in
      let false_lit = neg l in
      let j = ref 0 in
      let i = ref 0 in
      while !i < wn do
        let blocker = Array.unsafe_get wdata (!i + 1) in
        if lit_value s blocker = 1 then begin
          (* Satisfied via the blocker: keep, no arena access. *)
          Array.unsafe_set wdata !j (Array.unsafe_get wdata !i);
          Array.unsafe_set wdata (!j + 1) blocker;
          j := !j + 2;
          i := !i + 2
        end
        else begin
          let c = Array.unsafe_get wdata !i in
          i := !i + 2;
          (* Ensure the false literal is at position 1. *)
          let l0 = Array.unsafe_get arena (c + 2) in
          let first =
            if l0 = false_lit then begin
              let l1 = Array.unsafe_get arena (c + 3) in
              Array.unsafe_set arena (c + 2) l1;
              Array.unsafe_set arena (c + 3) false_lit;
              l1
            end
            else l0
          in
          if first <> blocker && lit_value s first = 1 then begin
            Array.unsafe_set wdata !j c;
            Array.unsafe_set wdata (!j + 1) first;
            j := !j + 2
          end
          else begin
            (* Look for a new literal to watch. *)
            let stop = c + 2 + (Array.unsafe_get arena c lsr size_shift) in
            let k = ref (c + 4) in
            while
              !k < stop && lit_value s (Array.unsafe_get arena !k) = 0
            do
              incr k
            done;
            if !k < stop then begin
              let lk = Array.unsafe_get arena !k in
              Array.unsafe_set arena (c + 3) lk;
              Array.unsafe_set arena !k false_lit;
              wl_push s.watches.(neg lk) c first
              (* watch moved: not kept in this list *)
            end
            else if lit_value s first = 0 then begin
              (* Conflict: restore the remaining watchers. *)
              Array.unsafe_set wdata !j c;
              Array.unsafe_set wdata (!j + 1) first;
              j := !j + 2;
              while !i < wn do
                Array.unsafe_set wdata !j (Array.unsafe_get wdata !i);
                Array.unsafe_set wdata (!j + 1)
                  (Array.unsafe_get wdata (!i + 1));
                j := !j + 2;
                i := !i + 2
              done;
              wl.wn <- !j;
              raise (Found_conflict (Confl_clause c))
            end
            else begin
              (* Unit: propagate first. *)
              Array.unsafe_set wdata !j c;
              Array.unsafe_set wdata (!j + 1) first;
              j := !j + 2;
              enqueue s first c
            end
          end
        end
      done;
      wl.wn <- !j
    done;
    None
  with Found_conflict c -> Some c

(* --- conflict analysis --------------------------------------------- *)

let clause_bump_activity s c = s.arena.(c + 1) <- s.arena.(c + 1) + 1

(* Number of distinct decision levels among [lits], via generation
   stamps (all literals must currently be assigned). *)
let compute_lbd s lits =
  s.lbd_gen <- s.lbd_gen + 1;
  let g = s.lbd_gen in
  let n = ref 0 in
  for i = 0 to Array.length lits - 1 do
    let lev = s.level.(var lits.(i)) in
    if lev >= Array.length s.lbd_mark then
      s.lbd_mark <- grow_array s.lbd_mark (2 * (lev + 1)) 0;
    if s.lbd_mark.(lev) <> g then begin
      s.lbd_mark.(lev) <- g;
      incr n
    end
  done;
  !n

(* Is l redundant given the current learned clause (seen marks)?  A
   literal is redundant when its reason literals are all seen or
   themselves redundant (bounded recursive minimization). *)
let rec lit_redundant s depth l =
  depth < 32
  &&
  let r = s.reason.(var l) in
  if r = reason_none then false
  else if r < 0 then begin
    let w = binary_partner r in
    s.level.(var w) = 0 || s.seen.(var w) || lit_redundant s (depth + 1) w
  end
  else begin
    let n = clause_size s r in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let l' = clause_lit s r !i in
      if
        not
          (var l' = var l
          || s.level.(var l') = 0
          || s.seen.(var l')
          || lit_redundant s (depth + 1) l')
      then ok := false;
      incr i
    done;
    !ok
  end

(* First-UIP learning.  Returns the learned clause (UIP first), the
   backjump level and the clause LBD — computed here, while every
   literal of the clause is still assigned, so the glue classification
   used by [reduce_db] is trustworthy. *)
let analyze s confl =
  (* Collected lower-level literals go into the scratch buffer; the
     only per-conflict allocations left are the learned clause itself
     (which must escape this call anyway) and a handful of loop refs.
     The antecedent being resolved is held as plain ints: a cref when
     positive, otherwise the binary pair (ba, bb). *)
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_size - 1) in
  let cref = ref 0 and ba = ref 0 and bb = ref 0 in
  (match confl with
   | Confl_clause c -> cref := c
   | Confl_binary (a, b) ->
     ba := a;
     bb := b);
  s.learnt_n <- 1;
  let visit q =
    let v = var q in
    if (!p < 0 || q <> !p) && (not s.seen.(v)) && s.level.(v) > 0 then begin
      s.seen.(v) <- true;
      if s.lrb then s.participated.(v) <- s.participated.(v) + 1
      else bump_var s v;
      if s.level.(v) >= decision_level s then incr path
      else begin
        if s.learnt_n >= Array.length s.learnt_buf then
          s.learnt_buf <- grow_array s.learnt_buf (2 * s.learnt_n) 0;
        s.learnt_buf.(s.learnt_n) <- q;
        s.learnt_n <- s.learnt_n + 1
      end
    end
  in
  let continue = ref true in
  while !continue do
    if !cref > 0 then begin
      let c = !cref in
      if clause_learnt s c then clause_bump_activity s c;
      let n = clause_size s c in
      for i = 0 to n - 1 do
        visit (clause_lit s c i)
      done
    end
    else begin
      visit !ba;
      visit !bb
    end;
    (* Find the next seen literal on the trail. *)
    while not (Array.unsafe_get s.seen (Array.unsafe_get s.trail !idx lsr 1))
    do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    s.seen.(var q) <- false;
    decr path;
    p := q;
    if !path = 0 then continue := false
    else begin
      let r = s.reason.(var q) in
      if r > 0 then cref := r
      else begin
        assert (r < 0);
        cref := 0;
        ba := q;
        bb := binary_partner r
      end
    end
  done;
  let uip = neg !p in
  (* Minimize: drop collected literals whose antecedents are covered by
     the rest of the clause.  All collected literals keep their [seen]
     marks during the scan (redundancy may be justified by a literal
     that is itself redundant), and are unmarked afterwards. *)
  let n = s.learnt_n in
  let lits = Array.make n uip in
  let j = ref 1 in
  (* Most-recently collected first: keeps the literal order (and hence
     the watched literals and the search trajectory) identical to the
     historical list-based implementation. *)
  for i = n - 1 downto 1 do
    let l = s.learnt_buf.(i) in
    if not (lit_redundant s 0 l) then begin
      lits.(!j) <- l;
      incr j
    end
  done;
  for i = 1 to n - 1 do
    s.seen.(var s.learnt_buf.(i)) <- false
  done;
  let lits = if !j = n then lits else Array.sub lits 0 !j in
  (* Backtrack level: second highest level in the clause. *)
  let blevel =
    if Array.length lits = 1 then 0
    else begin
      (* Move the literal with the highest level (below the current) to
         position 1. *)
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if s.level.(var lits.(i)) > s.level.(var lits.(!best)) then best := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      s.level.(var lits.(1))
    end
  in
  let lbd = compute_lbd s lits in
  (lits, blevel, lbd)

(* Internal literal -> DIMACS literal. *)
let dimacs_of_lit l =
  let v = (l lsr 1) + 1 in
  if l land 1 = 1 then -v else v

let log_add proof lits =
  match proof with
  | None -> ()
  | Some p -> Proof.add p (Array.map dimacs_of_lit lits)

(* Log the deletion of an arena clause; the literals are copied out of
   the arena first, so the proof never aliases relocatable storage. *)
let log_delete_clause proof s c =
  match proof with
  | None -> ()
  | Some p ->
    Proof.delete p (Array.map dimacs_of_lit (clause_lits s c))

(* Assumption core: the conflicting assumption [p] plus every
   pseudo-decision (assumption) reachable from it through the
   implication graph, as DIMACS literals.  Called while the trail still
   holds only assumption levels, so any reasonless assignment above
   level 0 is an assumption. *)
let analyze_final s p =
  let core = ref [ dimacs_of_lit p ] in
  let stack = ref [ var p ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        let r = s.reason.(v) in
        if r = reason_none then
          core := dimacs_of_lit (lit_of_var v (s.assigns.(v) = 0)) :: !core
        else if r < 0 then stack := var (binary_partner r) :: !stack
        else
          for i = 0 to clause_size s r - 1 do
            let l = clause_lit s r i in
            if var l <> v then stack := var l :: !stack
          done
      end
  done;
  for i = 0 to s.trail_size - 1 do
    s.seen.(var s.trail.(i)) <- false
  done;
  s.seen.(var p) <- false;
  Array.of_list !core

(* --- clause management --------------------------------------------- *)

(* Binary clause (a \/ b): no clause storage, just the two watch
   entries. *)
let add_binary s a b =
  vec_push s.bin_watches.(neg a) b;
  vec_push s.bin_watches.(neg b) a

(* Long clause (length >= 3), allocated in the arena and watched on its
   first two literals with the opposite watched literal as blocker. *)
let add_long s lits learnt lbd =
  let c = alloc_clause s lits learnt lbd in
  wl_push s.watches.(neg lits.(0)) c lits.(1);
  wl_push s.watches.(neg lits.(1)) c lits.(0);
  if learnt then begin
    vec_push s.learnts c;
    s.st_learned <- s.st_learned + 1
  end;
  c

(* [add_long] over the first [n] entries of a reusable scratch buffer:
   the literals are blitted straight into the arena, so the flat-ingest
   path ([prepare_flat]) attaches every clause with zero per-clause
   allocation. *)
let add_long_slice s b n learnt lbd =
  arena_ensure s (n + 2);
  let c = s.arena_size in
  let a = s.arena in
  a.(c) <- mk_header ~size:n ~learnt ~lbd;
  a.(c + 1) <- 0;
  Array.blit b 0 a (c + 2) n;
  s.arena_size <- c + 2 + n;
  wl_push s.watches.(neg b.(0)) c b.(1);
  wl_push s.watches.(neg b.(1)) c b.(0);
  if learnt then begin
    vec_push s.learnts c;
    s.st_learned <- s.st_learned + 1
  end;
  c

(* A clause currently used as a reason must survive reduction. *)
let is_reason s c =
  let n = clause_size s c in
  let rec go i =
    i < n && (s.reason.(var (clause_lit s c i)) = c || go (i + 1))
  in
  go 0

(* Compact the arena with a copying collector.  Live clauses are moved
   into [arena_spare] in reference order; the first relocation of a
   cref writes a forwarding pointer (the negated new cref) over the old
   header, so the other watcher of the same clause — and any reason
   pointing at it — lands on the same copy.  Everything that can hold a
   cref is rewritten: the flat watcher lists (dropping deleted
   clauses), the reasons of trail literals, and the learnt index.
   Clauses reachable from none of those are dropped with the old
   arena.  The buffers then swap, so steady-state compactions allocate
   nothing. *)
let arena_gc s =
  let old = s.arena in
  if Array.length s.arena_spare < s.arena_size then
    s.arena_spare <- Array.make (Array.length old) 0;
  let dst = s.arena_spare in
  let next = ref 1 in
  let reloc c =
    let h = old.(c) in
    if h < 0 then -h
    else begin
      let len = (h lsr size_shift) + 2 in
      let nc = !next in
      Array.blit old c dst nc len;
      next := nc + len;
      old.(c) <- -nc;
      nc
    end
  in
  let deleted c =
    let h = old.(c) in
    h >= 0 && h land hdr_deleted <> 0
  in
  Array.iter
    (fun wl ->
      let j = ref 0 in
      let i = ref 0 in
      while !i < wl.wn do
        let c = wl.w.(!i) in
        if not (deleted c) then begin
          wl.w.(!j) <- reloc c;
          wl.w.(!j + 1) <- wl.w.(!i + 1);
          j := !j + 2
        end;
        i := !i + 2
      done;
      wl.wn <- !j)
    s.watches;
  for i = 0 to s.trail_size - 1 do
    let v = var s.trail.(i) in
    let r = s.reason.(v) in
    if r > 0 then s.reason.(v) <- reloc r
  done;
  let lv = s.learnts in
  let j = ref 0 in
  for i = 0 to lv.size - 1 do
    let c = lv.data.(i) in
    if not (deleted c) then begin
      lv.data.(!j) <- reloc c;
      incr j
    end
  done;
  lv.size <- !j;
  s.arena <- dst;
  s.arena_spare <- old;
  s.arena_size <- !next;
  s.arena_wasted <- 0

let reduce_db ?proof s =
  (* Keep glue clauses (binaries never enter [learnts]); sort the rest
     in place by (lbd, activity) and mark the worse half deleted,
     except clauses currently locked as reasons; then compact. *)
  let lv = s.learnts in
  let n = lv.size in
  let p = ref 0 in
  for i = 0 to n - 1 do
    let c = lv.data.(i) in
    if clause_lbd s c <= 2 then begin
      lv.data.(i) <- lv.data.(!p);
      lv.data.(!p) <- c;
      incr p
    end
  done;
  let ncand = n - !p in
  if ncand > 0 then begin
    let cand = Array.sub lv.data !p ncand in
    Array.sort
      (fun a b ->
        let d = compare (clause_lbd s a) (clause_lbd s b) in
        if d <> 0 then d else compare s.arena.(b + 1) s.arena.(a + 1))
      cand;
    Array.blit cand 0 lv.data !p ncand;
    let limit = !p + (ncand / 2) in
    for i = !p to n - 1 do
      let c = lv.data.(i) in
      if not (i < limit || is_reason s c) then begin
        s.arena.(c) <- s.arena.(c) lor hdr_deleted;
        s.arena_wasted <- s.arena_wasted + clause_size s c + 2;
        log_delete_clause proof s c
      end
    done;
    s.st_reduces <- s.st_reduces + 1;
    (* Deleted clauses are filtered out of the learnt index and every
       watch list during compaction. *)
    arena_gc s
  end

(* --- restart-boundary inprocessing ---------------------------------- *)

(* Knobs for the level-0 inprocessing pass that fires every
   [inproc_interval] restarts: failed-literal probing, learnt-clause
   vivification and learnt-vs-learnt subsumption / self-subsuming
   strengthening.  Every derived clause is DRAT-logged before the
   clause it replaces is deleted, so proofs stay RUP-checkable with
   inprocessing enabled.  With [?inprocess] absent none of this code
   runs and the search trajectory is bit-identical to a solver without
   it. *)
type inprocess = {
  inproc_interval : int;  (** fire the pass every this many restarts *)
  probe_limit : int;      (** max literals probed per pass *)
  vivify_limit : int;     (** max learnt clauses vivified per pass *)
  subsume_window : int;
      (** pairwise subsumption window over the most recent learnt
          clauses *)
}

let default_inprocess =
  { inproc_interval = 4; probe_limit = 64; vivify_limit = 32;
    subsume_window = 32 }

exception Unsat_at_level0

let push_pseudo_level s =
  s.trail_lim.(s.ntrail_lim) <- s.trail_size;
  s.ntrail_lim <- s.ntrail_lim + 1

(* Propagate at decision level 0; a conflict there refutes the
   formula outright. *)
let confirm_level0 s ~proof =
  if propagate s <> None then begin
    log_add proof [||];
    raise Unsat_at_level0
  end

let wl_remove wl c =
  let i = ref 0 and found = ref false in
  while (not !found) && !i < wl.wn do
    if wl.w.(!i) = c then begin
      wl.w.(!i) <- wl.w.(wl.wn - 2);
      wl.w.(!i + 1) <- wl.w.(wl.wn - 1);
      wl.wn <- wl.wn - 2;
      found := true
    end
    else i := !i + 2
  done

(* Delete a long clause outside reduce-db: log the deletion, unhook
   both watchers (the watch invariant keeps the watched literals at
   positions 0 and 1), mark the header deleted.  The next [arena_gc]
   drops the storage and filters the learnt index.  Must not be called
   on a clause currently used as a reason. *)
let delete_long s ~proof c =
  log_delete_clause proof s c;
  wl_remove s.watches.(neg (clause_lit s c 0)) c;
  wl_remove s.watches.(neg (clause_lit s c 1)) c;
  s.arena.(c) <- s.arena.(c) lor hdr_deleted;
  s.arena_wasted <- s.arena_wasted + clause_size s c + 2

(* Attach a shrunk replacement clause (internal literals, none false
   at level 0).  The caller has already logged the addition.  Units
   join the level-0 trail and propagate immediately. *)
let attach_shrunk s ~proof lits lbd =
  match Array.length lits with
  | 0 -> raise Unsat_at_level0 (* the logged empty clause sealed the proof *)
  | 1 -> (
    match lit_value s lits.(0) with
    | -1 ->
      enqueue s lits.(0) reason_none;
      confirm_level0 s ~proof
    | 0 ->
      log_add proof [||];
      raise Unsat_at_level0
    | _ -> ())
  | 2 -> add_binary s lits.(0) lits.(1)
  | _ -> ignore (add_long s lits true (max 1 lbd))

(* Failed-literal probing: assume a candidate literal at a pseudo
   decision level and propagate; a conflict means its negation is
   implied at level 0.  The derived unit is RUP (negating it reruns
   the very propagation that conflicted), so it is logged as an
   addition. *)
let probe_pass s ~proof ~limit =
  let n = s.nvars in
  if n > 0 then begin
    let probes = ref 0 and scanned = ref 0 in
    let cursor = ref s.inproc_head in
    let probe_lit l =
      incr probes;
      s.st_probed <- s.st_probed + 1;
      push_pseudo_level s;
      enqueue s l reason_none;
      match propagate s with
      | None -> cancel_until s 0
      | Some _ ->
        cancel_until s 0;
        log_add proof [| neg l |];
        enqueue s (neg l) reason_none;
        confirm_level0 s ~proof
    in
    while !probes < limit && !scanned < n do
      let v = !cursor mod n in
      incr cursor;
      incr scanned;
      if s.assigns.(v) < 0 then probe_lit (lit_of_var v false);
      if s.assigns.(v) < 0 && !probes < limit then
        probe_lit (lit_of_var v true)
    done;
    s.inproc_head <- !cursor mod n
  end

(* Learnt-clause vivification: walk the clause, assuming the negation
   of each still-unassigned literal.  A conflict or a satisfied
   literal mid-way truncates the clause to the scanned prefix; a
   falsified literal is dropped.  The shrunk clause is RUP against the
   database that still contains the original — unit propagation
   re-derives the same conflict — so it is added before the original
   is deleted. *)
let vivify_clause s ~proof c =
  let k = clause_size s c in
  let lits = clause_lits s c in
  let lbd = clause_lbd s c in
  push_pseudo_level s;
  let kept = ref [] and nkept = ref 0 in
  let stopped = ref false in
  let i = ref 0 in
  while (not !stopped) && !i < k do
    let l = lits.(!i) in
    (match lit_value s l with
     | 1 ->
       kept := l :: !kept;
       incr nkept;
       stopped := true
     | 0 -> () (* implied false under the assumed prefix: drop *)
     | _ ->
       kept := l :: !kept;
       incr nkept;
       if !i < k - 1 then begin
         (* assuming the last literal cannot shorten anything *)
         enqueue s (neg l) reason_none;
         if propagate s <> None then stopped := true
       end);
    incr i
  done;
  cancel_until s 0;
  if !nkept < k then begin
    s.st_vivified <- s.st_vivified + 1;
    if List.exists (fun l -> lit_value s l = 1) !kept then
      (* satisfied at level 0: the clause is garbage *)
      delete_long s ~proof c
    else begin
      let arr =
        Array.of_list
          (List.filter (fun l -> lit_value s l <> 0) (List.rev !kept))
      in
      log_add proof arr;
      delete_long s ~proof c;
      attach_shrunk s ~proof arr (min lbd (max 1 (Array.length arr - 1)))
    end;
    true
  end
  else false

let vivify_pass s ~proof ~limit =
  let lv = s.learnts in
  let hi = lv.size - 1 in
  let lo = max 0 (lv.size - limit) in
  let changed = ref false in
  for i = lo to hi do
    let c = lv.data.(i) in
    if s.arena.(c) land hdr_deleted = 0 && not (is_reason s c) then
      if vivify_clause s ~proof c then changed := true
  done;
  !changed

let sorted_lits s c =
  let a = clause_lits s c in
  Array.sort compare a;
  a

(* Does [a] subsume [b] (subset), or self-subsume it (subset after
   flipping exactly one literal)?  Sorted internal-literal arrays; the
   two literals of a variable are the adjacent ints 2v and 2v+1, and
   no clause contains both (tautologies never enter the database). *)
let subsume_check a b =
  let la = Array.length a and lb = Array.length b in
  if la > lb then `No
  else begin
    let flips = ref 0 and fliplit = ref 0 in
    let j = ref 0 and ok = ref true and i = ref 0 in
    while !ok && !i < la do
      let x = a.(!i) in
      let base = x land lnot 1 in
      while !j < lb && b.(!j) < base do
        incr j
      done;
      if !j >= lb then ok := false
      else if b.(!j) = x then incr j
      else if b.(!j) = x lxor 1 then
        if !flips > 0 then ok := false
        else begin
          incr flips;
          fliplit := x lxor 1;
          incr j
        end
      else ok := false;
      incr i
    done;
    if not !ok then `No
    else if !flips = 0 then `Subsumed
    else `Strengthen !fliplit
  end

(* Pairwise subsumption / self-subsuming strengthening over a window
   of the most recent long learnt clauses.  [`Strengthen l] removes
   [l] from the victim: the shrunk clause is RUP while both the
   subsumer and the victim are present, so it is added first. *)
let subsume_pass s ~proof ~window =
  let lv = s.learnts in
  let n = min window lv.size in
  let lo = lv.size - n in
  let hi = lv.size - 1 in
  let changed = ref false in
  let live c = s.arena.(c) land hdr_deleted = 0 in
  for ia = lo to hi do
    let a = lv.data.(ia) in
    if live a then begin
      let sa = sorted_lits s a in
      for ib = lo to hi do
        let b = lv.data.(ib) in
        if ib <> ia && live a && live b && not (is_reason s b) then
          match subsume_check sa (sorted_lits s b) with
          | `No -> ()
          | `Subsumed ->
            delete_long s ~proof b;
            s.st_inproc_subsumed <- s.st_inproc_subsumed + 1;
            changed := true
          | `Strengthen l ->
            let shrunk =
              Array.of_list
                (List.filter
                   (fun x -> x <> l)
                   (Array.to_list (clause_lits s b)))
            in
            s.st_inproc_subsumed <- s.st_inproc_subsumed + 1;
            changed := true;
            if Array.exists (fun x -> lit_value s x = 1) shrunk then
              (* satisfied at level 0: drop the victim outright *)
              delete_long s ~proof b
            else begin
              let arr =
                Array.of_list
                  (List.filter
                     (fun x -> lit_value s x <> 0)
                     (Array.to_list shrunk))
              in
              let lbd = min (clause_lbd s b) (max 1 (Array.length arr - 1)) in
              log_add proof arr;
              delete_long s ~proof b;
              attach_shrunk s ~proof arr lbd
            end
      done
    end
  done;
  !changed

(* One inprocessing pass, at decision level 0 (restart boundary).
   Deletions leave marked clauses behind, so the pass ends with an
   arena compaction whenever anything was removed — [arena_gc] also
   filters the learnt index and relocates level-0 trail reasons. *)
let inprocess_pass s ~proof cfg =
  probe_pass s ~proof ~limit:cfg.probe_limit;
  let v = vivify_pass s ~proof ~limit:cfg.vivify_limit in
  let b = subsume_pass s ~proof ~window:cfg.subsume_window in
  if v || b then arena_gc s

(* --- search engine -------------------------------------------------- *)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby_simple i =
  let rec find k = if (1 lsl k) - 1 >= i + 1 then k else find (k + 1) in
  let k = find 1 in
  if (1 lsl k) - 1 = i + 1 then 1 lsl (k - 1)
  else luby_simple (i + 1 - (1 lsl (k - 1)))

type search_outcome =
  | S_sat of bool array
  | S_unsat_final  (* conflict at level 0: unsatisfiable outright *)
  | S_unsat_assumptions of int array  (* DIMACS assumption core *)
  | S_unknown

(* The CDCL main loop shared by [solve] and [Incremental.solve].
   Assumptions (internal literals) are placed as pseudo-decisions on
   the first decision levels; learned units always backjump to level 0
   (assumptions are re-placed afterwards), so a reasonless assignment
   above level 0 during assumption placement is always an assumption.

   [t0] is a {e wall-clock} origin ({!Wall.now}): with several domains
   racing, process CPU time advances N times faster than real time, so
   [max_seconds] must be measured against the wall.

   [reduce_base]/[reduce_inc] set the initial learnt-database cap and
   its growth per reduction (defaults preserve the historical 2000/512
   schedule; tests shrink them to force many arena compactions).

   [interrupt] is probed on every budget tick; [export] is called (in
   DIMACS literals) for every learned clause whose LBD is at most
   [export_lbd], after the clause has been logged to [proof]; [import]
   is polled at every restart (and once on entry), at decision level 0,
   and its clauses join the learnt database. *)
let search s ~limits ~proof ~restarts ~reduce_base ~reduce_inc ~inprocess
    ~assumption_lits ~on_learnt ~interrupt ~export ~export_lbd ~import ~t0 =
  let nassum = Array.length assumption_lits in
  let since_inproc = ref 0 in
  let conflicts_since_restart = ref 0 in
  let restart_num = ref 0 in
  let restart_limit = ref (100 * luby_simple 0) in
  let reduce_limit = ref (reduce_base + s.learnts.size) in
  (* Glucose: moving average of the last 50 LBDs vs the global mean. *)
  let win = Array.make 50 0 in
  let win_size = ref 0 and win_pos = ref 0 and win_sum = ref 0 in
  let lbd_total = ref 0 and lbd_count = ref 0 in
  let note_lbd lbd =
    lbd_total := !lbd_total + lbd;
    incr lbd_count;
    if !win_size >= 50 then win_sum := !win_sum - win.(!win_pos)
    else incr win_size;
    win_sum := !win_sum + lbd;
    win.(!win_pos) <- lbd;
    win_pos := (!win_pos + 1) mod 50
  in
  let want_restart () =
    match restarts with
    | `Luby -> !conflicts_since_restart >= !restart_limit
    | `Glucose ->
      !conflicts_since_restart >= 50
      && !win_size >= 50
      && float_of_int !win_sum *. 0.8 /. 50.0
         > float_of_int !lbd_total /. float_of_int (max 1 !lbd_count)
  in
  let exception Out of search_outcome in
  (* Attach a clause shared by another portfolio worker.  Runs at
     decision level 0 only; the clause was learned from (a CNF
     equisatisfiable derivation of) the same formula, so it joins the
     learnt database like any locally derived clause.  It is NOT logged
     to [proof]: the exporting worker already logged it into the shared
     recorder before publishing (see {!Proof}). *)
  let import_clause (clause, lbd) =
    if Array.for_all (fun l -> l <> 0 && abs l <= s.nvars) clause then begin
      let lits =
        Array.to_list clause
        |> List.map (fun l -> lit_of_var (abs l - 1) (l < 0))
        |> List.sort_uniq compare
      in
      let taut =
        let rec chk = function
          | a :: (b :: _ as rest) -> a lxor b = 1 || chk rest
          | _ -> false
        in
        chk lits
      in
      if (not taut) && not (List.exists (fun l -> lit_value s l = 1) lits)
      then
        match List.filter (fun l -> lit_value s l <> 0) lits with
        | [] ->
          (* Falsified under the level-0 assignment: refuted. *)
          log_add proof [||];
          raise (Out S_unsat_final)
        | [ l ] -> enqueue s l reason_none
        | [ a; b ] ->
          add_binary s a b;
          s.st_learned <- s.st_learned + 1
        | lits -> ignore (add_long s (Array.of_list lits) true (max 1 lbd))
    end
  in
  let do_import () =
    match import with
    | None -> ()
    | Some f -> List.iter import_clause (f ())
  in
  let do_restart () =
    conflicts_since_restart := 0;
    (match restarts with
     | `Luby ->
       incr restart_num;
       restart_limit := 100 * luby_simple !restart_num
     | `Glucose ->
       win_size := 0;
       win_pos := 0;
       win_sum := 0);
    s.st_restarts <- s.st_restarts + 1;
    cancel_until s 0;
    do_import ();
    match inprocess with
    | None -> ()
    | Some cfg ->
      incr since_inproc;
      if !since_inproc >= cfg.inproc_interval then begin
        since_inproc := 0;
        inprocess_pass s ~proof cfg
      end
  in
  (* The wall-clock check is gated on a counter that advances on every
     budget probe (one per conflict or decision), never on the conflict
     count alone — a decision-heavy run must still honor
     [max_seconds].  The interrupt flag is probed on every tick so a
     portfolio loser stops within one conflict/decision of the race
     being decided. *)
  let budget_ticks = ref 0 in
  let out_of_budget () =
    incr budget_ticks;
    (match interrupt with
     | Some i when Interrupt.is_set i -> true
     | _ -> false)
    || (match limits.max_conflicts with
        | Some m when s.st_conflicts >= m -> true
        | _ -> false)
    || (match limits.max_decisions with
        | Some m when s.st_decisions >= m -> true
        | _ -> false)
    || (match limits.max_seconds with
        | Some m when !budget_ticks land 255 = 0 -> Wall.now () -. t0 > m
        | _ -> false)
    ||
    (* Absolute wall-clock deadline (the solve service's per-job
       budget): unlike [max_seconds] it does not restart at solve
       entry, so a portfolio lane that begins late — after a queued
       wait or an expensive preparation — still stops at the same
       instant as its siblings. *)
    match limits.deadline with
    | Some d when !budget_ticks land 255 = 255 -> Wall.now () > d
    | _ -> false
  in
  try
    do_import ();
    while true do
      match propagate s with
      | Some confl ->
        s.st_conflicts <- s.st_conflicts + 1;
        incr conflicts_since_restart;
        if decision_level s = 0 then begin
          log_add proof [||];
          raise (Out S_unsat_final)
        end;
        let lits, blevel, lbd = analyze s confl in
        (match on_learnt with None -> () | Some f -> f lits lbd);
        note_lbd lbd;
        log_add proof lits;
        (* Export after logging: the shared-proof invariant is that a
           clause reaches the recorder before any other worker can
           import it.  The exported array is freshly mapped, never a
           view into the arena. *)
        (match export with
         | Some f when lbd <= export_lbd ->
           f (Array.map dimacs_of_lit lits) lbd
         | _ -> ());
        cancel_until s blevel;
        (match Array.length lits with
         | 1 -> enqueue s lits.(0) reason_none
         | 2 ->
           add_binary s lits.(0) lits.(1);
           s.st_learned <- s.st_learned + 1;
           enqueue s lits.(0) (reason_binary lits.(1))
         | _ ->
           let c = add_long s lits true lbd in
           enqueue s lits.(0) c);
        decay_activities s;
        if out_of_budget () then raise (Out S_unknown)
      | None ->
        if want_restart () then do_restart ()
        else if decision_level s < nassum then begin
          (* Place the next assumption as a pseudo-decision. *)
          let p = assumption_lits.(decision_level s) in
          match lit_value s p with
          | 1 ->
            (* Already true: open an empty pseudo-decision level. *)
            s.trail_lim.(s.ntrail_lim) <- s.trail_size;
            s.ntrail_lim <- s.ntrail_lim + 1
          | 0 -> raise (Out (S_unsat_assumptions (analyze_final s p)))
          | _ ->
            s.trail_lim.(s.ntrail_lim) <- s.trail_size;
            s.ntrail_lim <- s.ntrail_lim + 1;
            enqueue s p reason_none
        end
        else begin
          if s.learnts.size >= !reduce_limit then begin
            reduce_db ?proof s;
            reduce_limit := !reduce_limit + reduce_inc
          end;
          (* Pick a branching variable. *)
          let v = ref (-1) in
          while !v < 0 && s.heap_size > 0 do
            let cand = heap_pop s in
            if s.assigns.(cand) < 0 then v := cand
          done;
          if !v < 0 then begin
            (* All variables assigned: model found. *)
            let model = Array.init s.nvars (fun v -> s.assigns.(v) = 1) in
            raise (Out (S_sat model))
          end;
          s.st_decisions <- s.st_decisions + 1;
          s.trail_lim.(s.ntrail_lim) <- s.trail_size;
          s.ntrail_lim <- s.ntrail_lim + 1;
          s.st_max_level <- max s.st_max_level s.ntrail_lim;
          enqueue s (lit_of_var !v (not s.polarity.(!v))) reason_none;
          if out_of_budget () then raise (Out S_unknown)
        end
    done;
    assert false
  with
  | Out r -> r
  | Unsat_at_level0 -> S_unsat_final

(* --- top level ------------------------------------------------------ *)

type prepared = Ready of t * int list (* units *) | Trivially_unsat

let prepare f =
  let nvars = f.Cnf.Formula.num_vars in
  let s = create nvars in
  let units = ref [] in
  let ok = ref true in
  Array.iter
    (fun clause ->
      if !ok then begin
        (* Normalize: dedupe, detect tautology. *)
        let lits =
          Array.to_list clause
          |> List.map (fun l ->
                 let v = abs l - 1 in
                 lit_of_var v (l < 0))
          |> List.sort_uniq compare
        in
        let taut =
          let rec check = function
            | a :: (b :: _ as rest) -> (a lxor b) = 1 || check rest
            | _ -> false
          in
          check lits
        in
        if not taut then
          match lits with
          | [] -> ok := false
          | [ l ] -> units := l :: !units
          | [ a; b ] -> add_binary s a b
          | lits -> ignore (add_long s (Array.of_list lits) false 0)
      end)
    f.Cnf.Formula.clauses;
  if !ok then Ready (s, !units) else Trivially_unsat

(* [prepare] over a flat CSR store: the same normalization (internal
   encoding, per-clause sort + dedupe, tautology drop) runs in one
   reusable scratch buffer and long clauses are blitted straight into
   the arena via [add_long_slice] — zero allocation per clause, and a
   solver state identical to [prepare (Flat.to_formula fl)]. *)
let prepare_flat (fl : Cnf.Flat.t) =
  let nvars = fl.Cnf.Flat.num_vars in
  let s = create nvars in
  let units = ref [] in
  let ok = ref true in
  let offsets = fl.Cnf.Flat.offsets in
  let lits = fl.Cnf.Flat.lits in
  let nc = Array.length offsets - 1 in
  let buf = ref (Array.make 64 0) in
  let i = ref 0 in
  while !ok && !i < nc do
    let st = offsets.(!i) and en = offsets.(!i + 1) in
    let len = en - st in
    if Array.length !buf < len then
      buf := Array.make (max len (2 * Array.length !buf)) 0;
    let b = !buf in
    (* Sorted-insert each literal, skipping duplicates: clauses are
       short, and the result matches [List.sort_uniq compare]. *)
    let n = ref 0 in
    for k = st to en - 1 do
      let dl = Array.unsafe_get lits k in
      let l = lit_of_var (abs dl - 1) (dl < 0) in
      let j = ref !n in
      while !j > 0 && Array.unsafe_get b (!j - 1) > l do
        Array.unsafe_set b !j (Array.unsafe_get b (!j - 1));
        decr j
      done;
      if !j > 0 && Array.unsafe_get b (!j - 1) = l then begin
        let k' = ref !j in
        while !k' < !n do
          Array.unsafe_set b !k' (Array.unsafe_get b (!k' + 1));
          incr k'
        done
      end
      else begin
        Array.unsafe_set b !j l;
        incr n
      end
    done;
    let n = !n in
    let taut =
      let rec chk j = j + 1 < n && (b.(j) lxor b.(j + 1) = 1 || chk (j + 1)) in
      chk 0
    in
    if not taut then begin
      match n with
      | 0 -> ok := false
      | 1 -> units := b.(0) :: !units
      | 2 -> add_binary s b.(0) b.(1)
      | _ -> ignore (add_long_slice s b n false 0)
    end;
    incr i
  done;
  if !ok then Ready (s, !units) else Trivially_unsat

(* --- warm-start snapshots ------------------------------------------ *)

type seed = {
  seed_clauses : (int array * int) array;
  seed_phases : bool array;
  seed_order : int array;
}

(* Capture policy: the snapshot is bounded — at most
   [snapshot_max_clauses] long learnt clauses, preferring the lowest
   LBDs (the threshold is tightened until the budget fits) while
   keeping learn order, plus every level-0 trail literal as a unit
   clause.  Learnt binaries live in the watch lists unindexed and are
   not captured. *)
let snapshot_max_lbd = 6
let snapshot_max_clauses = 4096

let capture_seed s =
  let seed_phases = Array.init s.nvars (fun v -> s.polarity.(v)) in
  let seed_order = Array.init s.nvars (fun v -> v) in
  Array.sort
    (fun a b ->
      let c = compare s.var_activity.(b) s.var_activity.(a) in
      if c <> 0 then c else compare a b)
    seed_order;
  let units = ref [] in
  for i = s.trail_size - 1 downto 0 do
    let l = s.trail.(i) in
    if s.level.(var l) = 0 then
      units := ([| dimacs_of_lit l |], 1) :: !units
  done;
  let counts = Array.make (snapshot_max_lbd + 1) 0 in
  for i = 0 to s.learnts.size - 1 do
    let c = s.learnts.data.(i) in
    if s.arena.(c) land hdr_deleted = 0 then begin
      let lbd = clause_lbd s c in
      if lbd <= snapshot_max_lbd then counts.(lbd) <- counts.(lbd) + 1
    end
  done;
  let cap_lbd = ref snapshot_max_lbd in
  let total = ref (Array.fold_left ( + ) 0 counts) in
  while !total > snapshot_max_clauses && !cap_lbd > 1 do
    total := !total - counts.(!cap_lbd);
    decr cap_lbd
  done;
  let taken = ref 0 in
  let acc = ref [] in
  for i = 0 to s.learnts.size - 1 do
    let c = s.learnts.data.(i) in
    if !taken < snapshot_max_clauses && s.arena.(c) land hdr_deleted = 0
    then begin
      let lbd = clause_lbd s c in
      if lbd <= !cap_lbd then begin
        acc := (Array.map dimacs_of_lit (clause_lits s c), max 1 lbd) :: !acc;
        incr taken
      end
    end
  done;
  { seed_clauses = Array.of_list (!units @ List.rev !acc);
    seed_phases; seed_order }

(* Saved phases and the activity order are pure heuristics: phases are
   copied in, and activities get a decreasing ramp in (0, 1] so the
   donor's branching order survives until live bumps take over. *)
let apply_seed_heuristics s sd =
  let n = min (Array.length sd.seed_phases) s.nvars in
  for v = 0 to n - 1 do
    s.polarity.(v) <- sd.seed_phases.(v)
  done;
  let m = Array.length sd.seed_order in
  let denom = float_of_int (max 1 m) in
  Array.iteri
    (fun rank v ->
      if v >= 0 && v < s.nvars then
        s.var_activity.(v) <- float_of_int (m - rank) /. denom)
    sd.seed_order

(* Attach one snapshot clause at decision level 0, with the same
   normalization as a portfolio import.  Seed clauses are trusted to be
   implied by the formula (the warm cache keys snapshots by canonical
   fingerprint, and equal fingerprints mean equal model sets) — except
   when a DRAT [proof] is being recorded: then [rup_only] admits a
   clause only if it is RUP against the current database, logging it
   before attaching, so the proof stays checkable end to end; the rest
   are silently dropped and the search re-derives what it needs. *)
let seed_clause s ~proof ~rup_only (clause, lbd) =
  if Array.for_all (fun l -> l <> 0 && abs l <= s.nvars) clause then begin
    let lits =
      Array.to_list clause
      |> List.map (fun l -> lit_of_var (abs l - 1) (l < 0))
      |> List.sort_uniq compare
    in
    let taut =
      let rec chk = function
        | a :: (b :: _ as rest) -> a lxor b = 1 || chk rest
        | _ -> false
      in
      chk lits
    in
    if (not taut) && not (List.exists (fun l -> lit_value s l = 1) lits)
    then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      if not rup_only then
        match lits with
        | [] ->
          (* Falsified under the level-0 assignment: refuted.  [proof]
             is [None] on this path, so no logging is needed. *)
          raise Unsat_at_level0
        | [ l ] ->
          enqueue s l reason_none;
          confirm_level0 s ~proof
        | [ a; b ] ->
          add_binary s a b;
          s.st_learned <- s.st_learned + 1
        | lits -> ignore (add_long s (Array.of_list lits) true (max 1 lbd))
      else
        match lits with
        | [] -> ()
        | lits ->
          (* RUP probe: assume the negations on a pseudo level and
             propagate; a conflict certifies the clause. *)
          push_pseudo_level s;
          List.iter
            (fun l -> if lit_value s l < 0 then enqueue s (neg l) reason_none)
            lits;
          let conflict = propagate s <> None in
          cancel_until s 0;
          if conflict then begin
            let arr = Array.of_list lits in
            log_add proof arr;
            match Array.length arr with
            | 1 ->
              enqueue s arr.(0) reason_none;
              confirm_level0 s ~proof
            | 2 ->
              add_binary s arr.(0) arr.(1);
              s.st_learned <- s.st_learned + 1
            | _ -> ignore (add_long s arr true (max 1 lbd))
          end
    end
  end

let make_stats s ~wall ~cpu ~minor_words ~major_collections =
  {
    decisions = s.st_decisions;
    conflicts = s.st_conflicts;
    propagations = s.st_props;
    restarts = s.st_restarts;
    learned = s.st_learned;
    reduces = s.st_reduces;
    probed = s.st_probed;
    vivified = s.st_vivified;
    inproc_subsumed = s.st_inproc_subsumed;
    max_decision_level = s.st_max_level;
    time = wall;
    cpu_time = cpu;
    minor_words;
    major_collections;
  }

(* Allocation telemetry: deltas of the GC counters across the call, so
   the arena's effect on minor-heap churn is measured, not asserted.
   [Gc.minor_words] is a cheap counter read; [Gc.quick_stat] runs twice
   per solve. *)
let gc_origin () = (Gc.minor_words (), (Gc.quick_stat ()).Gc.major_collections)

let gc_deltas (mw0, mc0) =
  (Gc.minor_words () -. mw0, (Gc.quick_stat ()).Gc.major_collections - mc0)

let solve_core ~limits ~proof ~heuristic ~restarts ~reduce_base ~reduce_inc
    ~inprocess ~on_learnt ~interrupt ~export ~export_lbd ~import ~seed
    ~snapshot prep =
  let t0 = Wall.now () in
  let c0 = Sys.time () in
  let gc0 = gc_origin () in
  let stats_of s =
    let minor_words, major_collections = gc_deltas gc0 in
    make_stats s ~wall:(Wall.now () -. t0) ~cpu:(Sys.time () -. c0)
      ~minor_words ~major_collections
  in
  match prep () with
  | Trivially_unsat ->
    log_add proof [||];
    (Unsat, stats_of (create 0))
  | Ready (s, units) ->
    s.lrb <- (heuristic = `Lrb);
    (* The snapshot is taken on every exit — Sat, Unsat, Unknown — so
       an interrupted or deadline-cut solve still donates its learnt
       clauses, phases and activity order to a later warm start. *)
    let finish r =
      (match snapshot with None -> () | Some f -> f (capture_seed s));
      (r, stats_of s)
    in
    let exception Done of result in
    (try
       (* Level-0 units. *)
       List.iter
         (fun l ->
           match lit_value s l with
           | 1 -> ()
           | 0 ->
             log_add proof [||];
             raise (Done Unsat)
           | _ -> enqueue s l reason_none)
         units;
       if propagate s <> None then begin
         log_add proof [||];
         raise (Done Unsat)
       end;
       (match seed with
        | None -> ()
        | Some sd ->
          apply_seed_heuristics s sd;
          let rup_only = proof <> None in
          Array.iter (seed_clause s ~proof ~rup_only) sd.seed_clauses;
          confirm_level0 s ~proof);
       for v = 0 to s.nvars - 1 do
         if s.assigns.(v) < 0 then heap_insert s v
       done;
       let r =
         match
           search s ~limits ~proof ~restarts ~reduce_base ~reduce_inc
             ~inprocess ~assumption_lits:[||] ~on_learnt ~interrupt ~export
             ~export_lbd ~import ~t0
         with
         | S_sat m -> Sat m
         | S_unsat_final -> Unsat
         | S_unsat_assumptions _ -> assert false
         | S_unknown -> Unknown
       in
       raise (Done r)
     with
     | Done r -> finish r
     | Unsat_at_level0 -> finish Unsat)

let solve ?(limits = no_limits) ?proof ?(heuristic = `Evsids)
    ?(restarts = `Luby) ?(reduce_base = 2000) ?(reduce_inc = 512) ?inprocess
    ?on_learnt ?interrupt ?export ?(export_lbd = max_int) ?import ?seed
    ?snapshot f =
  solve_core ~limits ~proof ~heuristic ~restarts ~reduce_base ~reduce_inc
    ~inprocess ~on_learnt ~interrupt ~export ~export_lbd ~import ~seed
    ~snapshot (fun () -> prepare f)

let solve_flat ?(limits = no_limits) ?proof ?(heuristic = `Evsids)
    ?(restarts = `Luby) ?(reduce_base = 2000) ?(reduce_inc = 512) ?inprocess
    ?on_learnt ?interrupt ?export ?(export_lbd = max_int) ?import ?seed
    ?snapshot fl =
  solve_core ~limits ~proof ~heuristic ~restarts ~reduce_base ~reduce_inc
    ~inprocess ~on_learnt ~interrupt ~export ~export_lbd ~import ~seed
    ~snapshot (fun () -> prepare_flat fl)

let decisions_or_max ?(limits = no_limits) f =
  let result, st = solve ~limits f in
  match (result, limits.max_decisions) with
  | Unknown, Some m -> max st.decisions m
  | _ -> st.decisions

let pp_stats ppf st =
  Format.fprintf ppf
    "decisions=%d conflicts=%d propagations=%d restarts=%d learned=%d \
     reduces=%d probed=%d vivified=%d inproc_subsumed=%d time=%.3fs \
     cpu=%.3fs minor_words=%.0f major_gcs=%d"
    st.decisions st.conflicts st.propagations st.restarts st.learned
    st.reduces st.probed st.vivified st.inproc_subsumed st.time st.cpu_time
    st.minor_words st.major_collections

(* ------------------------------------------------------------------ *)
(* Incremental interface *)

module Incremental = struct
  type session = {
    s : t;
    mutable broken : bool;
    mutable core : int array; (* DIMACS assumption core of the last
                                 Unsat-under-assumptions answer *)
  }

  let ensure_capacity session n =
    let s = session.s in
    if n > s.nvars then begin
      let cap = Array.length s.assigns in
      if n > cap then begin
        let cap' = max n (2 * max 1 cap) in
        s.assigns <- grow_array s.assigns cap' (-1);
        s.level <- grow_array s.level cap' 0;
        s.reason <- grow_array s.reason cap' reason_none;
        s.trail <- grow_array s.trail cap' 0;
        s.trail_lim <- grow_array s.trail_lim cap' 0;
        s.var_activity <- grow_array s.var_activity cap' 0.0;
        s.heap <- grow_array s.heap cap' 0;
        s.heap_pos <- grow_array s.heap_pos cap' (-1);
        s.polarity <- grow_array s.polarity cap' false;
        s.seen <- grow_array s.seen cap' false;
        s.assigned_at <- grow_array s.assigned_at cap' 0;
        s.participated <- grow_array s.participated cap' 0;
        s.watches <-
          Array.init (2 * cap') (fun i ->
              if i < Array.length s.watches then s.watches.(i)
              else wl_create ());
        s.bin_watches <-
          Array.init (2 * cap') (fun i ->
              if i < Array.length s.bin_watches then s.bin_watches.(i)
              else vec_create 0)
      end;
      s.nvars <- n
    end

  let create () = { s = create 0; broken = false; core = [||] }

  (* A fresh copy: the stored core is solver-internal state and must
     not be mutable by the caller (see the aliasing regression tests). *)
  let last_core session = Array.copy session.core

  let num_vars session = session.s.nvars

  let new_var session =
    ensure_capacity session (session.s.nvars + 1);
    session.s.nvars

  (* Add a clause in DIMACS literals at decision level 0. *)
  let add_clause session clause =
    let s = session.s in
    if not session.broken then begin
      assert (s.ntrail_lim = 0);
      Array.iter (fun l -> ensure_capacity session (abs l)) clause;
      let lits =
        Array.to_list clause
        |> List.map (fun l -> lit_of_var (abs l - 1) (l < 0))
        |> List.sort_uniq compare
      in
      let taut =
        let rec chk = function
          | a :: (b :: _ as rest) -> a lxor b = 1 || chk rest
          | _ -> false
        in
        chk lits
      in
      if not taut then begin
        (* Evaluate under the level-0 assignment. *)
        let lits = List.filter (fun l -> lit_value s l <> 0) lits in
        if List.exists (fun l -> lit_value s l = 1) lits then ()
        else
          match lits with
          | [] -> session.broken <- true
          | [ l ] ->
            enqueue s l reason_none;
            if propagate s <> None then session.broken <- true
          | [ a; b ] -> add_binary s a b
          | lits -> ignore (add_long s (Array.of_list lits) false 0)
      end
    end

  let add_formula session f =
    Array.iter (add_clause session) f.Cnf.Formula.clauses

  let solve ?(limits = no_limits) ?proof ?(heuristic = `Evsids)
      ?(restarts = `Luby) ?(reduce_base = 2000) ?(reduce_inc = 512) ?inprocess
      ?interrupt ?(assumptions = [||]) session =
    let t0 = Wall.now () in
    let c0 = Sys.time () in
    let gc0 = gc_origin () in
    let s = session.s in
    s.lrb <- (heuristic = `Lrb);
    let assumption_lits =
      Array.map
        (fun l ->
          ensure_capacity session (abs l);
          lit_of_var (abs l - 1) (l < 0))
        assumptions
    in
    (* Assumption levels can be empty, so decision levels may exceed
       the variable count; give the level stack headroom. *)
    let needed = s.nvars + Array.length assumption_lits + 1 in
    if Array.length s.trail_lim < needed then
      s.trail_lim <- grow_array s.trail_lim needed 0;
    let finish r =
      cancel_until s 0;
      let minor_words, major_collections = gc_deltas gc0 in
      ( r,
        make_stats s ~wall:(Wall.now () -. t0) ~cpu:(Sys.time () -. c0)
          ~minor_words ~major_collections )
    in
    session.core <- [||];
    (* A recorder sealed by an earlier refutation (its empty clause is
       already logged) must not absorb steps from a later solve on a
       reused session: disable logging for this call explicitly by
       dropping the recorder, instead of relying on every log site to
       probe the seal.  The broken path below keeps its recorder — its
       re-seal of an already-sealed log is a documented no-op. *)
    let proof =
      match proof with
      | Some p when Proof.sealed p && not session.broken -> None
      | p -> p
    in
    if session.broken then begin
      (* The contradiction arose from level-0 unit propagation over the
         accumulated clauses (in {!add_clause} or an earlier call), so
         the empty clause is RUP here; sealing keeps the log checkable
         even when the breaking step predates this call.  A second seal
         of an already-sealed recorder is a no-op. *)
      log_add proof [||];
      finish Unsat
    end
    else if propagate s <> None then begin
      session.broken <- true;
      log_add proof [||];
      finish Unsat
    end
    else begin
      for v = 0 to s.nvars - 1 do
        if s.assigns.(v) < 0 then heap_insert s v
      done;
      match
        search s ~limits ~proof ~restarts ~reduce_base ~reduce_inc ~inprocess
          ~assumption_lits ~on_learnt:None ~interrupt ~export:None
          ~export_lbd:max_int ~import:None ~t0
      with
      | S_sat m -> finish (Sat m)
      | S_unknown -> finish Unknown
      | S_unsat_final ->
        session.broken <- true;
        finish Unsat
      | S_unsat_assumptions core ->
        session.core <- core;
        finish Unsat
    end
end

(* ------------------------------------------------------------------ *)
(* Cube-and-conquer surface: lookahead probing and assumption jobs *)

type prober = { ps : t; order : int array }

let prober f =
  match prepare f with
  | Trivially_unsat -> `Unsat
  | Ready (s, units) -> (
    try
      List.iter
        (fun l ->
          match lit_value s l with
          | 1 -> ()
          | 0 -> raise Unsat_at_level0
          | _ -> enqueue s l reason_none)
        units;
      if propagate s <> None then raise Unsat_at_level0;
      (* Candidates most-occurring-first, ties on the variable index,
         so the order — and every split derived from it — is
         deterministic for a given formula. *)
      let occ = Array.make (max 1 s.nvars) 0 in
      Array.iter
        (fun clause ->
          Array.iter
            (fun l ->
              let v = abs l - 1 in
              if v >= 0 && v < s.nvars then occ.(v) <- occ.(v) + 1)
            clause)
        f.Cnf.Formula.clauses;
      let order = Array.init s.nvars (fun v -> v) in
      Array.sort
        (fun a b ->
          if occ.(a) <> occ.(b) then compare occ.(b) occ.(a)
          else compare a b)
        order;
      `Prober { ps = s; order }
    with Unsat_at_level0 -> `Unsat)

exception Probe_dead
exception Probe_model of bool array

let probe_split p ~prefix ~limit =
  let s = p.ps in
  let limit = max 1 limit in
  cancel_until s 0;
  let model () = Array.init s.nvars (fun v -> s.assigns.(v) = 1) in
  try
    (* Place the cube prefix on pseudo decision levels, propagating
       after each literal.  A falsified literal or a conflict refutes
       the prefix by unit propagation alone — [¬prefix] is RUP against
       the original formula. *)
    Array.iter
      (fun dl ->
        let v = abs dl - 1 in
        if v < 0 || v >= s.nvars then
          invalid_arg "Solver.probe_split: literal out of range";
        let l = lit_of_var v (dl < 0) in
        match lit_value s l with
        | 1 -> ()
        | 0 -> raise Probe_dead
        | _ ->
          push_pseudo_level s;
          enqueue s l reason_none;
          if propagate s <> None then raise Probe_dead)
      prefix;
    if s.trail_size >= s.nvars then raise (Probe_model (model ()));
    let plevel = decision_level s in
    let base = s.trail_size in
    let best = ref (-1) and best_score = ref min_int in
    let probed = ref 0 and i = ref 0 in
    let n = Array.length p.order in
    while !probed < limit && !i < n do
      let v = p.order.(!i) in
      incr i;
      if s.assigns.(v) < 0 then begin
        incr probed;
        (* Propagation lookahead on both phases: the trail growth is
           the clause-reduction proxy; a conflicting phase means the
           split hands one child a free UP refutation. *)
        let gain sign =
          push_pseudo_level s;
          enqueue s (lit_of_var v sign) reason_none;
          let g =
            match propagate s with
            | Some _ -> -1
            | None ->
              if s.trail_size >= s.nvars then raise (Probe_model (model ()));
              s.trail_size - base
          in
          cancel_until s plevel;
          g
        in
        let gp = gain false in
        let gn = gain true in
        let score =
          if gp < 0 && gn < 0 then max_int
          else if gp < 0 || gn < 0 then max_int - 1
          else (gp * gn * 64) + gp + gn
        in
        if score > !best_score then begin
          best_score := score;
          best := v
        end
      end
    done;
    cancel_until s 0;
    let v =
      match !best with
      | -1 ->
        (* Unreachable (an unfilled trail leaves a probe candidate),
           but fall back to the first unassigned variable. *)
        let rec first i =
          if s.assigns.(p.order.(i)) < 0 then p.order.(i) else first (i + 1)
        in
        first 0
      | v -> v
    in
    `Split (v + 1)
  with
  | Probe_dead ->
    cancel_until s 0;
    `Unsat
  | Probe_model m ->
    cancel_until s 0;
    `Sat m

let solve_assuming ?limits ?proof ?heuristic ?restarts ?reduce_base
    ?reduce_inc ?interrupt ?snapshot ~assumptions f =
  let session = Incremental.create () in
  Incremental.ensure_capacity session f.Cnf.Formula.num_vars;
  Incremental.add_formula session f;
  let result, stats =
    Incremental.solve ?limits ?proof ?heuristic ?restarts ?reduce_base
      ?reduce_inc ?interrupt ~assumptions session
  in
  (* Cube-aware snapshot guard: a seed captured under assumptions bakes
     the cube's phases and activity order into what a warm start would
     replay on the *base* formula, so the hook only fires for an
     assumption-free call. *)
  (match snapshot with
   | Some hook when Array.length assumptions = 0 ->
     hook (capture_seed session.Incremental.s)
   | _ -> ());
  (result, stats, Incremental.last_core session)
