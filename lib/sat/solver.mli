(** CDCL SAT solver (the Kissat stand-in of the reproduction).

    Implements the standard modern architecture: two-watched-literal
    propagation with blocker literals and specialized binary-clause
    watch lists, EVSIDS decision heuristic with phase saving, first-UIP
    clause learning with recursive minimization, Luby or Glucose
    (LBD moving-average) restarts and LBD-driven
    learned-clause-database reduction.

    Long clauses live in a single flat {e arena} (one growable
    [int array]; a clause reference is an offset, a one-word header
    packs size/flags/LBD and the literals follow inline), so
    propagation reads literals with zero pointer dereferences and the
    clause database costs the GC nothing beyond one flat array.
    Database reduction compacts the arena with a copying collector
    that relocates every live reference; see DESIGN.md for the layout
    and the compaction protocol.  Anything that leaves the solver —
    models, assumption cores, exported clauses, proof steps — is a
    fresh array, never a view into the arena.

    The solver exposes its {e decision count} ("branching times"): the
    paper's RL reward and LUT cost metric both approximate solving
    complexity by the number of variable branching decisions (§3.2.5,
    §3.3.1), so this counter is the central observable. *)

type result =
  | Sat of bool array  (** model, indexed by variable - 1 *)
  | Unsat
  | Unknown            (** a resource limit was hit, or interrupted *)

type stats = {
  decisions : int;     (** branching times *)
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
  reduces : int;
      (** learnt-database reductions performed (each one compacts the
          clause arena) *)
  probed : int;
      (** inprocessing: literals probed for failed-literal detection
          (0 unless [?inprocess] was given) *)
  vivified : int;
      (** inprocessing: learnt clauses shortened or discarded by
          vivification *)
  inproc_subsumed : int;
      (** inprocessing: learnt clauses deleted or strengthened by the
          subsumption pass *)
  max_decision_level : int;
  time : float;
      (** monotonic {e wall-clock} seconds ({!Wall.now}).  This is
          what [max_seconds] is measured against: with N portfolio
          domains running, process CPU time advances ~N times faster
          than real time, so a CPU-clocked limit would fire N times
          early.  The CPU side is kept separately in [cpu_time]. *)
  cpu_time : float;
      (** process CPU seconds ([Sys.time]) consumed during the call.
          [Sys.time] measures the {e whole process}: under a portfolio
          this aggregates the work of every domain that ran
          concurrently, so [cpu_time] can exceed [time] — and a
          per-lane reading over-attributes the other lanes' work to
          each lane.  The portfolio runner therefore reports one
          race-level CPU figure (the winner outcome's [cpu_time]) and
          zeroes the field in the losing lanes' stats. *)
  minor_words : float;
      (** allocation telemetry: delta of [Gc.minor_words] across the
          call.  Divide by [conflicts] for the per-conflict figure the
          arena is meant to shrink.  Under a portfolio the counter is
          per-domain, so this measures only the reporting worker. *)
  major_collections : int;
      (** delta of major GC cycles across the call *)
}

type limits = {
  max_conflicts : int option;
  max_decisions : int option;
  max_seconds : float option;  (** wall-clock seconds, see {!stats.time} *)
  deadline : float option;
      (** absolute {!Wall.now} instant at which the search gives up
          with [Unknown].  Unlike [max_seconds] — which measures from
          solve entry — a deadline is a property of the {e job}: the
          solve service stamps one deadline per submitted query, and
          every solver call made on the job's behalf (a portfolio
          lane starting late, a solve after an expensive preparation)
          stops at the same instant.  Probed on the budget tick like
          [max_seconds]. *)
}

val no_limits : limits

(** Cooperative cancellation, mirroring minisat's [interrupt] /
    [clearInterrupt].  A flag is an [Atomic.t] under the hood: any
    domain may {!Interrupt.set} it while a solve is running; the search
    probes it on every budget tick (one per conflict or decision) and
    returns [Unknown] within one tick.  The flag is not cleared by the
    solver — {!Interrupt.clear} re-arms it for reuse. *)
module Interrupt : sig
  type t

  val create : unit -> t

  val set : t -> unit
  (** Request cancellation; may be called from any domain. *)

  val clear : t -> unit
  val is_set : t -> bool
end

(** Restart-boundary inprocessing knobs.  Every [inproc_interval]
    restarts the solver runs, at decision level 0: failed-literal
    probing (up to [probe_limit] literals per pass; a probe whose
    propagation conflicts yields a level-0 unit), vivification of the
    [vivify_limit] most recent long learnt clauses (re-deriving each
    clause literal by literal under assumption of its negated prefix,
    shortening on a conflict, a satisfied or a falsified literal), and
    pairwise subsumption / self-subsuming strengthening over a
    [subsume_window] of the most recent long learnt clauses.  All
    derived clauses and deletions are DRAT-logged with the derived
    clause added {e before} its original is deleted, so a proof
    recorded with inprocessing enabled still validates under
    {!Proof.check}.  See DESIGN.md for the protocol and the arena
    interaction. *)
type inprocess = {
  inproc_interval : int;  (** fire the pass every this many restarts *)
  probe_limit : int;      (** max literals probed per pass *)
  vivify_limit : int;     (** max learnt clauses vivified per pass *)
  subsume_window : int;
      (** pairwise subsumption window over the most recent learnt
          clauses *)
}

val default_inprocess : inprocess
(** [{ inproc_interval = 4; probe_limit = 64; vivify_limit = 32;
      subsume_window = 32 }] *)

(** A warm-start snapshot: the transferable part of a finished (or
    interrupted) solve's state.  [seed_clauses] are (DIMACS literals,
    LBD) pairs — level-0 units first, then the lowest-LBD long learnt
    clauses in learn order, bounded (at most 4096 clauses of glue at
    most 6, tightening the glue threshold first when over budget).
    [seed_phases.(v)] is the saved phase of 0-based variable [v];
    [seed_order] lists variables most-active-first.

    A snapshot is only sound to seed into a solve of a formula with
    the {e same canonical fingerprint} ({!Cnf.Fingerprint}): equal
    fingerprints mean equal model sets, so every captured clause is
    implied by the receiving formula.  The seeding path re-validates
    shape (range, tautology, satisfaction at level 0) like a portfolio
    import, but implication is by construction, not re-checked —
    except under a DRAT recorder, where each seed clause is admitted
    only if RUP (see {!solve}). *)
type seed = {
  seed_clauses : (int array * int) array;
  seed_phases : bool array;
  seed_order : int array;
}

val solve :
  ?limits:limits -> ?proof:Proof.t -> ?heuristic:[ `Evsids | `Lrb ] ->
  ?restarts:[ `Luby | `Glucose ] ->
  ?reduce_base:int ->
  ?reduce_inc:int ->
  ?inprocess:inprocess ->
  ?on_learnt:(int array -> int -> unit) ->
  ?interrupt:Interrupt.t ->
  ?export:(int array -> int -> unit) ->
  ?export_lbd:int ->
  ?import:(unit -> (int array * int) list) ->
  ?seed:seed ->
  ?snapshot:(seed -> unit) ->
  Cnf.Formula.t -> result * stats
(** Solve a formula from scratch.  When the result is [Sat m], [m]
    satisfies the formula (checked cheaply by the caller via
    {!Cnf.Formula.eval} if desired).  With [proof], every learned
    clause and every learned-clause deletion is logged in DRAT; an
    [Unsat] answer ends the log with the empty clause, and the whole
    log validates under {!Proof.check}.  [heuristic] selects the
    branching scheme: exponential VSIDS (default) or the learning-rate
    heuristic of Liang et al. 2016 — the paper's reference [23].
    [restarts] selects the restart schedule: Luby with unit 100
    (default) or Glucose-style, firing when the moving average of the
    last 50 learned-clause LBDs exceeds 0.8 times the running mean.
    [reduce_base] (default 2000) and [reduce_inc] (default 512) set
    the initial learnt-database size cap and its growth after each
    reduction; tests shrink them to force frequent arena compactions.
    [inprocess] enables restart-boundary inprocessing (see
    {!inprocess}); when absent — the default — none of that code runs
    and the search trajectory is bit-identical to the solver without
    it, preserving the jobs=1 portfolio bit-identity guarantee.
    [on_learnt lits lbd] is an instrumentation hook invoked for every
    learned clause at learn time — before backjumping, while all of
    [lits] (internal literal encoding, first-UIP first) are still
    assigned — with the glue value [lbd] stored for that clause.

    The remaining hooks are the portfolio surface (see
    [lib/portfolio]):

    - [interrupt] cancels the search cooperatively; the answer is
      [Unknown].
    - [export clause lbd] is invoked at learn time, with {e DIMACS}
      literals, for every learned clause whose glue is at most
      [export_lbd] (default: export everything when [export] is
      given).  When a shared [proof] is in use the clause is logged
      before it is exported, so an importer can rely on finding it in
      the recorder.
    - [import] is polled at every restart (and once on entry), at
      decision level 0; it returns [(clause, lbd)] pairs in DIMACS
      literals which join the learnt database.  Imported clauses must
      be implied by the formula (e.g. learned by another solver on the
      same formula); they are {e not} re-logged to [proof], because
      under the shared recorder discipline the exporting worker
      already logged them.

    The hooks run in the solving domain; [export]/[import] callbacks
    must themselves be safe to call from that domain (the portfolio's
    clause bus is mutex-guarded).

    [seed] warm-starts the solve from a {!seed} snapshot captured on
    an earlier solve of a formula with the same canonical fingerprint:
    phases and activity order are installed, and the snapshot clauses
    join the learnt database at level 0 before the first decision.
    Without [proof], seed clauses are attached as implied (the
    fingerprint contract); with [proof], each is admitted only if RUP
    against the current database — logged, then attached — and
    silently dropped otherwise, so an UNSAT answer's DRAT log still
    validates under {!Proof.check}.  [snapshot] is invoked once, with
    the state captured at exit, on {e every} outcome — including
    [Unknown] from an interrupt or deadline, which is what lets a
    timed-out job resume on resubmission.  With both absent the
    trajectory is bit-identical to the solver without this feature. *)

val solve_flat :
  ?limits:limits -> ?proof:Proof.t -> ?heuristic:[ `Evsids | `Lrb ] ->
  ?restarts:[ `Luby | `Glucose ] ->
  ?reduce_base:int ->
  ?reduce_inc:int ->
  ?inprocess:inprocess ->
  ?on_learnt:(int array -> int -> unit) ->
  ?interrupt:Interrupt.t ->
  ?export:(int array -> int -> unit) ->
  ?export_lbd:int ->
  ?import:(unit -> (int array * int) list) ->
  ?seed:seed ->
  ?snapshot:(seed -> unit) ->
  Cnf.Flat.t -> result * stats
(** {!solve} over a flat CSR store ({!Cnf.Flat}), loading clauses
    straight from the CSR arrays into the clause arena with zero
    per-clause allocation.  Produces a solver state — and therefore a
    search trajectory and stats — identical to
    [solve (Flat.to_formula fl)]. *)

val decisions_or_max : ?limits:limits -> Cnf.Formula.t -> int
(** Convenience for the RL reward: the decision count of a solve, or
    the configured decision cap when the limit was hit. *)

val pp_stats : Format.formatter -> stats -> unit

(** Incremental solving under assumptions: one persistent solver that
    accumulates clauses across queries, so learned clauses are reused —
    the mode SAT sweeping engines drive their solver in. *)
module Incremental : sig
  type session

  val create : unit -> session
  (** An empty session with no variables. *)

  val num_vars : session -> int

  val new_var : session -> int
  (** Allocate the next variable; returns its (1-based) DIMACS index.
      Variables are also allocated implicitly by {!add_clause}. *)

  val add_clause : session -> int array -> unit
  (** Add a clause (DIMACS literals) permanently.  Must not be called
      while a solve is in progress. *)

  val add_formula : session -> Cnf.Formula.t -> unit

  val solve :
    ?limits:limits -> ?proof:Proof.t -> ?heuristic:[ `Evsids | `Lrb ] ->
    ?restarts:[ `Luby | `Glucose ] ->
    ?reduce_base:int -> ?reduce_inc:int ->
    ?inprocess:inprocess ->
    ?interrupt:Interrupt.t ->
    ?assumptions:int array -> session ->
    result * stats
  (** Solve the accumulated clauses under the given assumption
      literals.  [interrupt] cancels the query cooperatively (answer
      [Unknown]), as in the batch {!solve}.
      [Unsat] means unsatisfiable {e under the assumptions}
      (permanently unsatisfiable once it occurs with none).  Models
      cover all variables allocated so far.  Statistics are cumulative
      across the session's queries.

      With [proof], clauses learned {e during this call} (and
      learned-clause deletions) are logged in DRAT.  Learned clauses
      are implied by the accumulated clause database alone — never by
      the assumptions, which enter learned clauses as ordinary
      literals — so a log accumulated by passing the {e same} [proof]
      to every [solve] call of the session validates under
      {!Proof.check} against the conjunction of all clauses added so
      far.  The log is terminated with the empty clause only when a
      call answers [Unsat] with no assumptions involved in the
      conflict; an [Unsat] {e under assumptions} is not a DRAT-provable
      fact and leaves the log open.  A [proof] that is already
      {!Proof.sealed} when [solve] is called (a completed refutation
      reused across queries) is left untouched: logging for that call
      is an explicit no-op, so the sealed log stays exactly the
      checkable refutation it was. *)

  val last_core : session -> int array
  (** After an [Unsat] answer under assumptions: a subset of the
      assumption literals sufficient for the contradiction (empty when
      the formula is unsatisfiable outright or the last answer was not
      [Unsat]).  Returns a fresh array on every call — the caller may
      mutate it freely. *)
end

(** {1 Cube-and-conquer surface}

    The lookahead prober and the assumption-job entry point the
    portfolio cuber builds on (see [lib/portfolio/cuber.ml]). *)

type prober
(** A prepared solver specialized for level-0 lookahead: clauses loaded
    and level-0 units propagated, plus a deterministic candidate order
    (most-occurring variables first, ties on index).  Not thread-safe —
    one domain at a time. *)

val prober : Cnf.Formula.t -> [ `Prober of prober | `Unsat ]
(** Prepare a formula for probing.  [`Unsat] when the formula is
    refuted by normalization or level-0 unit propagation alone (the
    empty clause is RUP against it). *)

val probe_split :
  prober -> prefix:int array -> limit:int ->
  [ `Sat of bool array | `Split of int | `Unsat ]
(** Score a split variable for the cube [prefix] (DIMACS literals).
    The prefix is placed on pseudo decision levels with unit
    propagation after each literal; then up to [limit] unassigned
    candidate variables are probed in both phases, scoring each by
    propagation lookahead (march-style product of the two trail
    growths, a conflicting phase scoring highest — splitting there
    hands one child a free UP refutation).

    - [`Unsat]: the prefix is refuted by unit propagation alone, so
      the clause [¬prefix] is RUP against the original formula.
    - [`Sat m]: propagation completed the assignment with no conflict;
      [m] is a model of the formula.
    - [`Split v]: the chosen split variable, as a positive DIMACS
      index.

    Deterministic for a given (prober, prefix, limit).  The prober is
    reset to level 0 before and after each call, so calls may be made
    in any prefix order. *)

val solve_assuming :
  ?limits:limits -> ?proof:Proof.t -> ?heuristic:[ `Evsids | `Lrb ] ->
  ?restarts:[ `Luby | `Glucose ] ->
  ?reduce_base:int -> ?reduce_inc:int ->
  ?interrupt:Interrupt.t ->
  ?snapshot:(seed -> unit) ->
  assumptions:int array -> Cnf.Formula.t ->
  result * stats * int array
(** Solve [f] under the assumption literals (DIMACS) in a fresh
    one-shot session — the cube-job entry point.  Returns
    [(result, stats, core)] where [core] is {!Incremental.last_core}'s
    answer: on [Unsat] {e under the assumptions}, a subset of them
    sufficient for the contradiction; empty when the formula is
    unsatisfiable outright (in which case a supplied [proof] has been
    sealed with the empty clause by the solver itself).

    Proof discipline is the incremental one: learned clauses logged to
    [proof] never depend on the assumptions, so one shared recorder
    accumulating the logs of many cube jobs over the same formula
    stays RUP-checkable against that formula; an [Unsat] under
    assumptions leaves the log open for the caller to stitch (log
    [¬core], which is RUP given this call's learned clauses).

    {b Cube-aware snapshot guard}: [snapshot] fires only when
    [assumptions] is empty.  A seed captured mid-cube would bake
    cube-local phases and activity into a warm start of the {e base}
    formula — silently skipping the capture keeps the warm cache
    sound (see the warm-start contract on {!seed}). *)
