(* The recorder implementation lives in {!Cnf.Proof} so that the
   CNF-level simplifier can log into the same DRAT stream as the
   solver; this module re-exports it under its historical name. *)
include Cnf.Proof
