type op =
  | Add of int array list
  | Assume of int array
  | Push
  | Pop
  | Solve of { deadline : float option }
  | Close

type outcome =
  | Ok_done
  | Sat of bool array
  | Unsat of int array
  | Timeout
  | Evicted
  | Failed of string

type answer = {
  outcome : outcome;
  wall : float;
  solve_wall : float;
  stats : Sat.Solver.stats;
}

let empty_stats =
  {
    Sat.Solver.decisions = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    reduces = 0;
    probed = 0;
    vivified = 0;
    inproc_subsumed = 0;
    max_decision_level = 0;
    time = 0.0;
    cpu_time = 0.0;
    minor_words = 0.0;
    major_collections = 0;
  }

type ticket = {
  op : op;
  tm : Mutex.t;
  tc : Condition.t;
  mutable result : answer option;
  submitted_at : float;
  mutable callbacks : (answer -> unit) list;
      (* async-completion hooks (under tm); run once, after [resolve]
         releases the ticket mutex, on the resolving domain *)
}

(* A pushed frame: its activation variable (internal solver numbering,
   never client-visible) and the client clauses it guards, kept for
   model verification until the frame pops. *)
type frame = {
  act : int;
  mutable frame_clauses : int array list;
}

type state = Live | Closed_ | Evicted_

type t = {
  sid : int;
  m : Mutex.t;  (* guards everything below except the solver state *)
  max_pending : int;
  pending : ticket Queue.t;
  mutable scheduled : bool;   (* a token for this session is in flight *)
  mutable checked_out : bool; (* a worker is executing an op right now *)
  mutable state : state;
  mutable last : float;
  mutable running : (float option * Sat.Solver.Interrupt.t) option;
  mutable timed_out : bool;
  (* Solver state: touched only by the single executing worker (the
     token discipline is the lock), never under [m]. *)
  inc : Sat.Solver.Incremental.session;
  int_of_user : (int, int) Hashtbl.t;  (* client var -> solver var *)
  user_of_int : (int, int) Hashtbl.t;
  mutable num_user_vars : int;
  mutable frames : frame list;         (* innermost first *)
  mutable base_clauses : int array list;
  mutable assumptions : int array;     (* client literals, next solve *)
}

let create ?(max_pending = 1024) ~id () =
  {
    sid = id;
    m = Mutex.create ();
    max_pending;
    pending = Queue.create ();
    scheduled = false;
    checked_out = false;
    state = Live;
    last = Sat.Wall.now ();
    running = None;
    timed_out = false;
    inc = Sat.Solver.Incremental.create ();
    int_of_user = Hashtbl.create 64;
    user_of_int = Hashtbl.create 64;
    num_user_vars = 0;
    frames = [];
    base_clauses = [];
    assumptions = [||];
  }

let id t = t.sid

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let resolve ticket outcome ~solve_wall ~stats =
  Mutex.lock ticket.tm;
  let run, answer =
    if ticket.result = None then begin
      let a =
        {
          outcome;
          wall = Sat.Wall.now () -. ticket.submitted_at;
          solve_wall;
          stats;
        }
      in
      ticket.result <- Some a;
      Condition.broadcast ticket.tc;
      let ks = ticket.callbacks in
      ticket.callbacks <- [];
      (ks, Some a)
    end
    else ([], None)
  in
  Mutex.unlock ticket.tm;
  (* Outside the ticket mutex so a callback may await/poll freely; a
     raising callback must not starve the rest. *)
  match answer with
  | Some a -> List.iter (fun k -> try k a with _ -> ()) run
  | None -> ()

let resolve_plain ticket outcome =
  resolve ticket outcome ~solve_wall:0.0 ~stats:empty_stats

let fresh_ticket op =
  {
    op;
    tm = Mutex.create ();
    tc = Condition.create ();
    result = None;
    submitted_at = Sat.Wall.now ();
    callbacks = [];
  }

let resolved_ticket op outcome =
  let ticket = fresh_ticket op in
  resolve_plain ticket outcome;
  ticket

let await ticket =
  Mutex.lock ticket.tm;
  while ticket.result = None do
    Condition.wait ticket.tc ticket.tm
  done;
  let a = Option.get ticket.result in
  Mutex.unlock ticket.tm;
  a

let poll ticket =
  Mutex.lock ticket.tm;
  let r = ticket.result in
  Mutex.unlock ticket.tm;
  r

let on_answer ticket k =
  Mutex.lock ticket.tm;
  match ticket.result with
  | Some a ->
    Mutex.unlock ticket.tm;
    k a
  | None ->
    ticket.callbacks <- k :: ticket.callbacks;
    Mutex.unlock ticket.tm

let enqueue t op =
  let ticket = fresh_ticket op in
  locked t (fun () ->
      match t.state with
      | Evicted_ ->
        resolve_plain ticket Evicted;
        `Queued ticket
      | Closed_ ->
        resolve_plain ticket (Failed "session closed");
        `Queued ticket
      | Live ->
        if Queue.length t.pending >= t.max_pending then `Full
        else begin
          Queue.push ticket t.pending;
          t.last <- Sat.Wall.now ();
          if t.scheduled then `Queued ticket
          else begin
            t.scheduled <- true;
            `Scheduled ticket
          end
        end)

(* --- client-variable renaming ---------------------------------------- *)

let intern t v =
  match Hashtbl.find_opt t.int_of_user v with
  | Some iv -> iv
  | None ->
    let iv = Sat.Solver.Incremental.new_var t.inc in
    Hashtbl.replace t.int_of_user v iv;
    Hashtbl.replace t.user_of_int iv v;
    if v > t.num_user_vars then t.num_user_vars <- v;
    iv

let intern_lit t l =
  let iv = intern t (abs l) in
  if l < 0 then -iv else iv

let user_model t m =
  Array.init t.num_user_vars (fun i ->
      match Hashtbl.find_opt t.int_of_user (i + 1) with
      | Some iv when iv <= Array.length m -> m.(iv - 1)
      | _ -> false)

(* The internal core contains the assumptions as passed: client
   assumptions (mapped) and activation literals.  Only the former are
   client-visible. *)
let user_core t core =
  Array.to_list core
  |> List.filter_map (fun l ->
         match Hashtbl.find_opt t.user_of_int (abs l) with
         | Some v -> Some (if l < 0 then -v else v)
         | None -> None)
  |> Array.of_list

let eval_clause model c =
  Array.exists
    (fun l ->
      let v = abs l in
      let value = v <= Array.length model && model.(v - 1) in
      if l < 0 then not value else value)
    c

let verify_model t model =
  List.for_all (eval_clause model) t.base_clauses
  && List.for_all
       (fun f -> List.for_all (eval_clause model) f.frame_clauses)
       t.frames

(* --- op execution ----------------------------------------------------- *)

let add_user_clause t clause =
  if Array.exists (fun l -> l = 0) clause then
    Error "clause contains literal 0"
  else begin
    let internal = Array.map (intern_lit t) clause in
    (match t.frames with
     | [] ->
       t.base_clauses <- clause :: t.base_clauses;
       Sat.Solver.Incremental.add_clause t.inc internal
     | f :: _ ->
       (* Guard with the frame's activation literal so POP can retire
          the clause with one unit. *)
       f.frame_clauses <- clause :: f.frame_clauses;
       let guarded = Array.append internal [| -f.act |] in
       Sat.Solver.Incremental.add_clause t.inc guarded);
    Ok ()
  end

let deadline_passed deadline now =
  match deadline with Some d -> now >= d | None -> false

let exec_solve t ~limits ~stopping ~deadline =
  if deadline_passed deadline (Sat.Wall.now ()) then
    (Timeout, 0.0, empty_stats)
  else begin
    let interrupt = Sat.Solver.Interrupt.create () in
    locked t (fun () ->
        t.running <- Some (deadline, interrupt);
        t.timed_out <- false);
    let assumptions =
      Array.append
        (Array.map (intern_lit t) t.assumptions)
        (Array.of_list (List.rev_map (fun f -> f.act) t.frames))
    in
    let limits = { limits with Sat.Solver.deadline } in
    let t0 = Sat.Wall.now () in
    (* A raising solve propagates to [run_one], which resolves the
       ticket [Failed] and clears the running marker. *)
    let result, stats =
      Sat.Solver.Incremental.solve ~limits ~interrupt ~assumptions t.inc
    in
    let solve_wall = Sat.Wall.now () -. t0 in
    let timed_out = locked t (fun () -> t.running <- None; t.timed_out) in
    t.assumptions <- [||];
    let outcome =
      match result with
      | Sat.Solver.Sat m ->
        let um = user_model t m in
        if verify_model t um then Sat um
        else Failed "model verification failed"
      | Sat.Solver.Unsat ->
        Unsat (user_core t (Sat.Solver.Incremental.last_core t.inc))
      | Sat.Solver.Unknown ->
        if timed_out || deadline_passed deadline (Sat.Wall.now ()) then
          Timeout
        else if stopping () then Failed "server shutdown"
        else Timeout (* a configured base limit: a resource answer *)
    in
    (outcome, solve_wall, stats)
  end

let execute t ticket ~limits ~stopping =
  let state = locked t (fun () -> t.state) in
  match state with
  | Evicted_ -> resolve_plain ticket Evicted
  | Closed_ -> resolve_plain ticket (Failed "session closed")
  | Live ->
    if stopping () then resolve_plain ticket (Failed "server shutdown")
    else (
      match ticket.op with
      | Add clauses ->
        let rec add = function
          | [] -> resolve_plain ticket Ok_done
          | c :: rest -> (
            match add_user_clause t c with
            | Ok () -> add rest
            | Error msg -> resolve_plain ticket (Failed msg))
        in
        add clauses
      | Assume lits ->
        if Array.exists (fun l -> l = 0) lits then
          resolve_plain ticket (Failed "assumption literal 0")
        else begin
          t.assumptions <- Array.copy lits;
          Array.iter (fun l -> ignore (intern t (abs l))) lits;
          resolve_plain ticket Ok_done
        end
      | Push ->
        let act = Sat.Solver.Incremental.new_var t.inc in
        t.frames <- { act; frame_clauses = [] } :: t.frames;
        resolve_plain ticket Ok_done
      | Pop -> (
        match t.frames with
        | [] -> resolve_plain ticket (Failed "POP without a matching PUSH")
        | f :: rest ->
          (* Retire the frame: the negated activation unit satisfies
             every clause the frame guarded, permanently. *)
          Sat.Solver.Incremental.add_clause t.inc [| -f.act |];
          t.frames <- rest;
          resolve_plain ticket Ok_done)
      | Solve { deadline } ->
        let outcome, solve_wall, stats =
          exec_solve t ~limits ~stopping ~deadline
        in
        resolve ticket outcome ~solve_wall ~stats
      | Close ->
        locked t (fun () -> t.state <- Closed_);
        resolve_plain ticket Ok_done)

type step = {
  executed : (op * answer) option;
  next : [ `More | `Idle | `Closed ];
}

let run_one ~limits ~stopping t =
  Mutex.lock t.m;
  t.checked_out <- true;
  let ticket =
    if Queue.is_empty t.pending then None else Some (Queue.pop t.pending)
  in
  Mutex.unlock t.m;
  (match ticket with
   | None -> ()
   | Some ticket -> (
     try execute t ticket ~limits ~stopping
     with e ->
       resolve_plain ticket (Failed (Printexc.to_string e))));
  Mutex.lock t.m;
  t.checked_out <- false;
  t.running <- None;
  t.last <- Sat.Wall.now ();
  let next =
    if not (Queue.is_empty t.pending) then `More
    else begin
      t.scheduled <- false;
      if t.state = Closed_ then `Closed else `Idle
    end
  in
  Mutex.unlock t.m;
  let executed =
    Option.bind ticket (fun tk ->
        Option.map (fun a -> (tk.op, a)) (poll tk))
  in
  { executed; next }

let drain_pending t =
  let ps = ref [] in
  Queue.iter (fun p -> ps := p :: !ps) t.pending;
  Queue.clear t.pending;
  List.rev !ps

let evict t =
  let ps =
    locked t (fun () ->
        t.state <- Evicted_;
        drain_pending t)
  in
  List.iter (fun p -> resolve_plain p Evicted) ps

let kill t msg =
  let ps =
    locked t (fun () ->
        (match t.running with
         | Some (_, i) -> Sat.Solver.Interrupt.set i
         | None -> ());
        drain_pending t)
  in
  List.iter (fun p -> resolve_plain p (Failed msg)) ps

let interrupt_if_overdue t ~now =
  locked t (fun () ->
      match t.running with
      | Some (Some d, i) when now >= d ->
        t.timed_out <- true;
        Sat.Solver.Interrupt.set i
      | _ -> ())

let is_idle t =
  locked t (fun () -> Queue.is_empty t.pending && not t.checked_out)

let last_use t = locked t (fun () -> t.last)
let depth t = List.length t.frames
let pending_ops t = locked t (fun () -> Queue.length t.pending)
