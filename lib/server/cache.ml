type verdict =
  | Sat of bool array
  | Unsat

type entry = {
  verdict : verdict;
  stats : Sat.Solver.stats;
  solve_wall : float;
}

module Tbl = Hashtbl.Make (struct
  type t = Cnf.Fingerprint.t

  let equal = Cnf.Fingerprint.equal
  let hash = Cnf.Fingerprint.hash
end)

(* One mutex-guarded LRU over fingerprints, generic in the payload: it
   backs both the verdict cache ([entry] below) and the warm-start
   snapshot cache ([Warm], payload [Sat.Solver.seed]).  Recency is a
   doubly-linked list threaded through the table's nodes: head = most
   recent, tail = eviction candidate. *)
module Lru = struct
  type 'v node = {
    key : Cnf.Fingerprint.t;
    mutable entry : 'v;
    mutable prev : 'v node option;
    mutable next : 'v node option;
  }

  type 'v t = {
    cap : int;
    tbl : 'v node Tbl.t;
    mutable head : 'v node option;
    mutable tail : 'v node option;
    m : Mutex.t;
  }

  let create ~capacity () =
    if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
    { cap = capacity; tbl = Tbl.create 64; head = None; tail = None;
      m = Mutex.create () }

  let unlink t n =
    (match n.prev with
     | Some p -> p.next <- n.next
     | None -> t.head <- n.next);
    (match n.next with
     | Some s -> s.prev <- n.prev
     | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.head;
    n.prev <- None;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let find t key =
    locked t (fun () ->
        match Tbl.find_opt t.tbl key with
        | None -> None
        | Some n ->
          unlink t n;
          push_front t n;
          Some n.entry)

  let add t key entry =
    locked t (fun () ->
        match Tbl.find_opt t.tbl key with
        | Some n ->
          n.entry <- entry;
          unlink t n;
          push_front t n
        | None ->
          if Tbl.length t.tbl >= t.cap then (
            match t.tail with
            | Some lru ->
              unlink t lru;
              Tbl.remove t.tbl lru.key
            | None -> ());
          let n = { key; entry; prev = None; next = None } in
          push_front t n;
          Tbl.replace t.tbl key n)

  let remove t key =
    locked t (fun () ->
        match Tbl.find_opt t.tbl key with
        | None -> ()
        | Some n ->
          unlink t n;
          Tbl.remove t.tbl key)

  let length t = locked t (fun () -> Tbl.length t.tbl)
end

type t = entry Lru.t

let create = Lru.create
let find = Lru.find
let add = Lru.add
let remove = Lru.remove
let length = Lru.length

module Warm = struct
  type t = Sat.Solver.seed Lru.t

  let create = Lru.create
  let find = Lru.find
  let add = Lru.add
  let remove = Lru.remove
  let length = Lru.length
end
