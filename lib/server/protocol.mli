(** The `eda4sat serve` wire protocol: a line-oriented request stream
    with pipelined answers.

    {2 One-shot requests} (one per line, whitespace-separated)

    - [SOLVE <file> [deadline_ms] [prio]] — submit the DIMACS (or
      [.aag] AIGER) file.  [deadline_ms] bounds the job's wall clock
      (a negative or NaN value answers [REJECTED bad-deadline]);
      [prio] (integer, higher first) orders admission.
    - [STATS] — emit the metrics snapshot as one JSON line, computed
      {e after} every earlier request has been answered.
    - [SYNC] — barrier: block the request stream until every earlier
      answer has been printed (emits [c sync]).  A scripted session
      uses it to guarantee a later duplicate is a cache hit rather
      than an in-flight join.
    - [QUIT] — drain pending answers and return.  EOF does the same,
      including for a final command without a trailing newline.
    - empty lines and lines starting with [c] or [#] are ignored.

    {2 Session requests}

    - [OPEN] — allocate an incremental session; answers [OPENED <sid>]
      (or [REJECTED] when the session table is full).
    - [ADD <sid> <lits...>] — append 0-terminated clauses, DIMACS
      style: [ADD 0 1 2 0 -1 3 0].
    - [ASSUME <sid> <lits...>] — assumption literals for the next
      solve of the session (optional trailing 0).
    - [SOLVE <sid> [deadline_ms]] — solve the session's accumulated
      clauses under the pending assumptions.  A first operand that is
      all digits addresses a session; name files with a path prefix
      ("./42") to disambiguate.
    - [PUSH <sid>] / [POP <sid>] — open / retire an activation frame
      (clauses added under the frame retire with it).
    - [CLOSE <sid>] — close the session; later ops on the id answer
      [FAILED session closed].

    {2 Answers}

    Requests are submitted as they are read — the engine solves them
    concurrently — but answers are printed in request order.  One-shot
    answers are

    {[
    c job <seq> file=<file> source=<solved|cache|join> wall_ms=<w> solve_ms=<s> fingerprint=<hex>
    SAT            (followed by a DIMACS "v ... 0" model line)
    UNSAT
    TIMEOUT
    REJECTED <reason>
    ERROR <message>
    ]}

    and session answers

    {[
    c session <sid> job <seq> op=<verb> wall_ms=<w> solve_ms=<s>
    OK                          (ADD / ASSUME / PUSH / POP / CLOSE)
    SAT                         (followed by a "v ... 0" model line)
    UNSAT                       (followed by "c core <lits> 0", the
                                 failed-assumption core)
    TIMEOUT
    EVICTED                     (the session was LRU/TTL-evicted)
    FAILED <message>
    ]}

    [REJECTED] is the admission-control answer (queue full, bad
    deadline, unknown session, server stopping); [ERROR] covers
    unreadable files and malformed requests.  SAT models are verified
    by the engine against the submitted formula (one-shot) or the
    session's live clauses before being printed — cached answers
    included. *)

val model_line : num_vars:int -> bool array -> string
(** The DIMACS ["v ... 0"] model line, clamped/padded to exactly
    [num_vars] literals (missing entries print as the negative
    phase) — a model array longer or shorter than the formula's
    declared variable count never produces a malformed line. *)

(** {2 Shared grammar and renderers}

    One parser and one set of answer renderers for every transport:
    the channel loop below and the socket front-end ({!Net.Event_loop})
    both go through these, so a command means the same thing — and an
    answer is byte-identical — over a pipe, a TCP connection and a
    Unix socket. *)

type request =
  | Solve_file of {
      file : string;
      deadline : float option;  (** seconds from now, may be non-finite *)
      priority : int option;
    }
  | Session_solve of { sid : int; deadline : float option }
  | Session_op of { sid : int; verb : string; op : Session.op }
  | Open_session
  | Client of string
      (** declare this connection's client (tenant) id *)
  | Stats
  | Metrics_now  (** [METRICS]: immediate snapshot, no barrier *)
  | Sync
  | Ping
  | Quit
  | Comment
  | Bad of string  (** the ERROR line to answer *)

val parse_request : string -> request

val default_load : string -> Cnf.Formula.t
(** DIMACS for [.cnf]/[.dimacs], AIGER for [.aag] — the classic
    array-of-arrays loader. *)

val default_load_input : string -> Engine.input
(** The default [SOLVE] operand loader of both transports: AIGER files
    load through the circuit pipeline as [Formula]; everything else is
    treated as DIMACS and loads through the zero-copy mmap parser
    ({!Cnf.Dimacs.read_flat_file}) as [Flat]. *)

val job_header : seq:int -> file:string -> string
val open_header : seq:int -> string
val session_header : sid:int -> seq:int -> verb:string -> string
(** The pre-answer headers used for REJECTED/ERROR lines, where no
    engine answer exists to render timing from. *)

val answer_lines :
  seq:int -> file:string -> num_vars:int -> Engine.answer -> string list
(** Render a one-shot answer: header, verdict, model line for SAT. *)

val session_answer_lines :
  seq:int -> sid:int -> verb:string -> Session.answer -> string list
(** Render a session answer: header, outcome, model or core line. *)

val serve :
  ?load:(string -> Engine.input) ->
  Engine.t -> in_channel -> out_channel -> unit
(** Run the protocol until EOF or [QUIT].  [load] (default
    {!default_load_input}) maps a [SOLVE] operand to an engine input;
    each successful load is timed into {!Metrics.record_parse}.  Does
    {e not} shut the engine down — the caller owns its lifecycle. *)
