(** The `eda4sat serve` wire protocol: a line-oriented request stream
    with pipelined answers.

    {2 Requests} (one per line, whitespace-separated)

    - [SOLVE <file> [deadline_ms] [prio]] — submit the DIMACS (or
      [.aag] AIGER) file.  [deadline_ms] bounds the job's wall clock;
      [prio] (integer, higher first) orders admission.
    - [STATS] — emit the metrics snapshot as one JSON line, computed
      {e after} every earlier request has been answered.
    - [SYNC] — barrier: block the request stream until every earlier
      answer has been printed (emits [c sync]).  A scripted session
      uses it to guarantee a later duplicate is a cache hit rather
      than an in-flight join.
    - [QUIT] — drain pending answers and return (EOF does the same).
    - empty lines and lines starting with [c] or [#] are ignored.

    {2 Answers}

    Requests are submitted as they are read — the engine solves them
    concurrently — but answers are printed in request order, each as

    {[
    c job <seq> file=<file> source=<solved|cache|join> wall_ms=<w> solve_ms=<s> fingerprint=<hex>
    SAT            (followed by a DIMACS "v ... 0" model line)
    UNSAT
    TIMEOUT
    REJECTED <reason>
    ERROR <message>
    ]}

    [REJECTED] is the admission-control answer (queue full, server
    stopping); [ERROR] covers unreadable files and malformed
    requests.  SAT models are verified by the engine against the
    submitted formula before being printed — cached answers
    included. *)

val serve :
  ?load:(string -> Cnf.Formula.t) ->
  Engine.t -> in_channel -> out_channel -> unit
(** Run the protocol until EOF or [QUIT].  [load] (default: DIMACS
    for [.cnf]/[.dimacs], AIGER for [.aag], via
    {!Eda4sat.Instance.direct_formula}) maps a [SOLVE] operand to a
    formula.  Does {e not} shut the engine down — the caller owns its
    lifecycle. *)
