type verdict =
  | Sat of bool array
  | Unsat
  | Timeout
  | Failed of string

type source =
  | Solved
  | Cache_hit
  | Dedup_join

type answer = {
  verdict : verdict;
  source : source;
  wall : float;
  solve_wall : float;
  stats : Sat.Solver.stats;
  fingerprint : Cnf.Fingerprint.t;
}

type mode =
  | Direct
  | Simplify
  | Portfolio of { jobs : int; share_lbd : int }

(* Hardness-triggered cube-and-conquer (Direct mode): a job whose
   first solve slice hits [cube_trigger] conflicts without an answer
   escalates to [Portfolio.Cuber] on the worker's cube pool.  Small
   jobs answer inside the slice and never pay for the machinery. *)
type cube_config = {
  cube_trigger : int;     (* conflicts before a job escalates *)
  cube_count : int;       (* max cubes per escalated job *)
  cube_jobs : int;        (* cube pool domains per worker *)
  cube_probe_limit : int; (* lookahead probes per split node *)
}

let default_cube_config =
  { cube_trigger = 10_000; cube_count = 8; cube_jobs = 4;
    cube_probe_limit = 32 }

(* Learned dispatch (Direct mode): a policy picks per-job decisions at
   submit time — lanes to race, simplify on/off, cube-trigger override
   — from cheap features of the clause store, and (with [admission]
   on) predicts hopeless jobs out of the queue.  [trace] logs every
   one-shot completion for offline training, model or not. *)
type dispatch_config = {
  policy : Dispatch.Policy.t option;
  trace : Dispatch.Tracelog.t option;
  admission : bool;
}

(* A predicted-timeout rejection needs high confidence: only jobs whose
   predicted latency exceeds this multiple of their deadline are
   refused admission. *)
let admission_margin = 4.0

type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  warm_capacity : int;
  mode : mode;
  limits : Sat.Solver.limits;
  default_deadline : float option;
  session_capacity : int;
  session_ttl : float option;
  cube : cube_config option;
  dispatch : dispatch_config option;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    cache_capacity = 512;
    warm_capacity = 256;
    mode = Direct;
    limits = Sat.Solver.no_limits;
    default_deadline = None;
    session_capacity = 64;
    session_ttl = Some 600.0;
    cube = None;
    dispatch = None;
  }

(* A submitted formula: the classic array-of-arrays view, or the flat
   CSR store the mmap parser emits.  Flat submissions solve through
   [Sat.Solver.solve_flat] (bytes -> arena, no per-clause allocation);
   the Formula view is materialized only where a consumer needs it
   (the Simplify/Portfolio pipelines). *)
type input =
  | Formula of Cnf.Formula.t
  | Flat of Cnf.Flat.t

let input_num_vars = function
  | Formula f -> f.Cnf.Formula.num_vars
  | Flat fl -> fl.Cnf.Flat.num_vars

let input_eval input m =
  match input with
  | Formula f -> Cnf.Formula.eval f m
  | Flat fl -> Cnf.Flat.eval fl m

let input_formula = function
  | Formula f -> f
  | Flat fl -> Cnf.Flat.to_formula fl

let input_fingerprint = function
  | Formula f -> Cnf.Fingerprint.of_formula f
  | Flat fl -> Cnf.Fingerprint.of_flat fl

(* A relative deadline must compose into a meaningful absolute instant:
   [now +. nan] poisons every later comparison ([deadline_passed] is
   never true, so the job runs unbounded — the monitor cannot save it),
   and a negative deadline is a caller unit mistake (ms passed as s,
   or vice versa) better rejected loudly than answered [Timeout]. *)
let valid_deadline = function
  | None -> true
  | Some s -> Float.is_finite s && s >= 0.0

let empty_stats =
  {
    Sat.Solver.decisions = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    reduces = 0;
    probed = 0;
    vivified = 0;
    inproc_subsumed = 0;
    max_decision_level = 0;
    time = 0.0;
    cpu_time = 0.0;
    minor_words = 0.0;
    major_collections = 0;
  }

(* A resolved job's payload, shared by every ticket attached to it. *)
type done_core = {
  d_verdict : verdict;
  d_stats : Sat.Solver.stats;
  d_solve_wall : float;
  d_done_at : float;
}

type job = {
  id : int;
  input : input;
  fp : Cnf.Fingerprint.t;
  warm : Sat.Solver.seed option;  (* snapshot found at submit time *)
  features : float array option;  (* extracted when dispatch is on *)
  decision : Dispatch.Policy.decision option;  (* model's pick, if any *)
  deadline : float option;  (* absolute Wall.now instant *)
  submitted_at : float;
  interrupt : Sat.Solver.Interrupt.t;
  jm : Mutex.t;
  jc : Condition.t;
  mutable state : done_core option;  (* None = waiting/running *)
  mutable claimed : bool;  (* a resolver owns this job's completion *)
  mutable running : bool;      (* set by the worker at dequeue (under jm) *)
  mutable timed_out : bool;    (* set by the monitor with the interrupt *)
  mutable join_subs : float list;  (* dedup joiners' submit times *)
  mutable waiters : (done_core -> unit) list;
      (* async-completion callbacks (under jm); run once, after
         [publish] releases the job mutex, on the resolver's domain *)
}

type ticket =
  | T_ready of answer
  | T_job of { job : job; source : source; t_submit : float }

module Fp_tbl = Hashtbl.Make (struct
  type t = Cnf.Fingerprint.t

  let equal = Cnf.Fingerprint.equal
  let hash = Cnf.Fingerprint.hash
end)

(* The shared work queue carries both one-shot jobs and session
   scheduling tokens.  A token makes a worker run exactly one of that
   session's pending ops and then re-enqueue the token (if more ops
   wait) — so a session with a thousand queued ops interleaves with
   one-shot jobs and other sessions at op granularity instead of
   holding a worker until drained. *)
type work =
  | W_job of job
  | W_session of Session.t

type t = {
  cfg : config;
  queue : work Job_queue.t;
  cache : Cache.t;
  (* Warm-start snapshots; [None] when disabled ([warm_capacity = 0])
     or when the mode cannot seed (Simplify transforms the formula,
     Portfolio lanes race diversified configurations — neither takes a
     snapshot today, so keeping a warm cache there would only miss). *)
  warm : Cache.Warm.t option;
  metrics : Metrics.t;
  inflight : job Fp_tbl.t;  (* guarded by [gm] *)
  sessions : (int, Session.t) Hashtbl.t;  (* guarded by [gm] *)
  retired : (int, [ `Closed | `Evicted ]) Hashtbl.t;  (* guarded by [gm] *)
  gm : Mutex.t;
  stopping : bool Atomic.t;
  monitor_stop : bool Atomic.t;
  mutable next_id : int;  (* guarded by [gm] *)
  mutable next_sid : int;  (* guarded by [gm] *)
  mutable domains : unit Domain.t list;  (* workers + monitor *)
}

(* --- job resolution -------------------------------------------------

   Exactly one resolver wins [try_claim] (worker vs. deadline monitor
   vs. shutdown drain); only the winner touches the cache, the
   in-flight table and the metrics, and it does so {e before}
   [publish] wakes the awaiters — an observer that holds an answer can
   rely on the stats already accounting for it.  Lock order is
   strictly job-then-global, never nested the other way. *)

let try_claim job =
  Mutex.lock job.jm;
  let first = not job.claimed in
  job.claimed <- true;
  Mutex.unlock job.jm;
  first

let publish job core =
  Mutex.lock job.jm;
  job.state <- Some core;
  Condition.broadcast job.jc;
  let waiters = job.waiters in
  job.waiters <- [];
  Mutex.unlock job.jm;
  (* Callbacks run outside every engine lock, so they may re-enter the
     engine (submit a follow-up, read stats) without deadlocking.  A
     raising callback must not take the resolver down with it — the
     other waiters still deserve their wake-up. *)
  List.iter (fun k -> try k core with _ -> ()) waiters

(* What an engine without a model does with a job — recorded in trace
   entries so a model-less serving fleet still produces labeled
   training data for exactly the decisions it took. *)
let static_decision t =
  {
    Dispatch.Policy.lanes =
      (match t.cfg.mode with Portfolio { jobs; _ } -> jobs | _ -> 1);
    simplify = t.cfg.mode = Simplify;
    cube_trigger = Option.map (fun cc -> cc.cube_trigger) t.cfg.cube;
    predicted_ms = Float.nan;
  }

let trace_completion t job core =
  match t.cfg.dispatch with
  | Some { trace = Some tl; _ } -> (
    match job.features with
    | None -> ()
    | Some feat ->
      let d =
        match job.decision with Some d -> d | None -> static_decision t
      in
      let outcome =
        match core.d_verdict with
        | Sat _ -> "sat"
        | Unsat -> "unsat"
        | Timeout -> "timeout"
        | Failed _ -> "failed"
      in
      Dispatch.Tracelog.append tl
        {
          Dispatch.Tracelog.fingerprint = Cnf.Fingerprint.to_hex job.fp;
          features = feat;
          lanes = d.Dispatch.Policy.lanes;
          simplify = d.Dispatch.Policy.simplify;
          cube_trigger =
            (match d.Dispatch.Policy.cube_trigger with
            | Some n -> n
            | None -> 0);
          outcome;
          conflicts = core.d_stats.Sat.Solver.conflicts;
          solve_ms = 1000.0 *. core.d_solve_wall;
          wall_ms = 1000.0 *. (core.d_done_at -. job.submitted_at);
          decided = job.decision <> None;
        })
  | _ -> ()

let finalize t job ?snapshot ~verdict ~stats ~solve_wall () =
  if try_claim job then begin
    let core =
      { d_verdict = verdict; d_stats = stats; d_solve_wall = solve_wall;
        d_done_at = Sat.Wall.now () }
    in
    (match verdict with
     | Sat m ->
       Cache.add t.cache job.fp
         { Cache.verdict = Cache.Sat m; stats; solve_wall }
     | Unsat ->
       Cache.add t.cache job.fp
         { Cache.verdict = Cache.Unsat; stats; solve_wall }
     | Timeout | Failed _ -> ());
    (* The warm cache keeps snapshots for every outcome that produced
       one — crucially including [Timeout], which the verdict cache
       never stores: a resubmitted timed-out job resumes from the
       interrupted state instead of restarting, and repeated deadline
       slices accumulate progress. *)
    (match (t.warm, snapshot) with
     | Some w, Some sd -> Cache.Warm.add w job.fp sd
     | _ -> ());
    Mutex.lock t.gm;
    Fp_tbl.remove t.inflight job.fp;
    let joins = job.join_subs in
    Mutex.unlock t.gm;
    let outcome =
      match verdict with
      | Sat _ -> `Sat
      | Unsat -> `Unsat
      | Timeout -> `Timeout
      | Failed _ -> `Failed
    in
    Metrics.record_completed t.metrics ~outcome
      ~latency_s:(core.d_done_at -. job.submitted_at);
    List.iter
      (fun ts ->
        Metrics.record_join_latency t.metrics
          ~latency_s:(core.d_done_at -. ts))
      joins;
    trace_completion t job core;
    publish job core
  end

(* --- solving --------------------------------------------------------- *)

let deadline_passed job now =
  match job.deadline with Some d -> now >= d | None -> false

(* Run one job's solve.  In [Direct] mode the solve is warm-start
   aware: a snapshot found at submit time seeds it, and the state at
   exit is captured for the warm cache (returned as the third
   component).  Flat inputs load through [solve_flat]'s zero-copy
   path.  [Simplify]/[Portfolio] solve a transformed formula or race
   diversified lanes; neither seeds nor captures.  The fourth
   component is the cube report when the job escalated to
   cube-and-conquer. *)
(* The plain CDCL lane, warm-start aware, with optional hardness-
   triggered cube-and-conquer escalation.  [cube] is per-job: the
   static config in plain Direct mode, possibly overridden by a
   dispatch decision. *)
let direct_leg t pool (job : job) limits ~cube =
  (match job.warm with
   | Some _ -> Metrics.record_warm_seeded t.metrics
   | None -> ());
  let snap = ref None in
  let snapshot =
    match t.warm with
    | Some _ -> Some (fun sd -> snap := Some sd)
    | None -> None
  in
  (* With cubing configured, the first slice is capped at the
     hardness trigger: a job that answers inside the slice took the
     exact path it would have without cubing. *)
  let trigger_limits =
    match cube with
    | None -> limits
    | Some cc ->
      let cap =
        match limits.Sat.Solver.max_conflicts with
        | Some m -> min m cc.cube_trigger
        | None -> cc.cube_trigger
      in
      { limits with Sat.Solver.max_conflicts = Some cap }
  in
  let result, stats =
    match job.input with
    | Formula f ->
      Sat.Solver.solve ~limits:trigger_limits ~interrupt:job.interrupt
        ?seed:job.warm ?snapshot f
    | Flat fl ->
      Sat.Solver.solve_flat ~limits:trigger_limits
        ~interrupt:job.interrupt ?seed:job.warm ?snapshot fl
  in
  match (result, cube) with
  | Sat.Solver.Unknown, Some cc
    when stats.Sat.Solver.conflicts >= cc.cube_trigger
         && (match limits.Sat.Solver.max_conflicts with
             | Some m -> cc.cube_trigger < m
             | None -> true)
         && (not job.timed_out)
         && (not (deadline_passed job (Sat.Wall.now ())))
         && (not (Sat.Solver.Interrupt.is_set job.interrupt))
         && not (Atomic.get t.stopping) ->
    (* Hardness trigger crossed: escalate to cube-and-conquer under
       the job's own deadline and interrupt.  The slice's snapshot
       is dropped — a cube job must not feed the warm cache (the
       cube solves bake assumption-local phases and activity into
       their state; see the warm-start soundness contract). *)
    let rep =
      let f = input_formula job.input in
      match pool with
      | Some p ->
        Portfolio.Cuber.solve_in ~cubes:cc.cube_count
          ~probe_limit:cc.cube_probe_limit ~limits
          ~interrupt:job.interrupt p f
      | None ->
        Portfolio.Cuber.solve ~cubes:cc.cube_count
          ~probe_limit:cc.cube_probe_limit ~jobs:1 ~limits
          ~interrupt:job.interrupt f
    in
    Metrics.record_cubed t.metrics
      ~cubes_solved:rep.Portfolio.Cuber.solved
      ~steals:rep.Portfolio.Cuber.steals;
    (rep.Portfolio.Cuber.result, rep.Portfolio.Cuber.stats, None,
     Some rep)
  | _ -> (result, stats, !snap, None)

let simplify_leg (job : job) limits =
  let inst =
    Eda4sat.Instance.of_cnf
      ~name:(Printf.sprintf "job-%d" job.id)
      (input_formula job.input)
  in
  let rep =
    Eda4sat.Pipeline.solve_direct ~limits ~interrupt:job.interrupt
      ~simplify:true inst
  in
  (rep.Eda4sat.Pipeline.result, rep.Eda4sat.Pipeline.solver_stats, None,
   None)

(* Race [lanes] diversified strategies on the worker's pool (a
   dispatch decision in Direct mode, or Portfolio mode racing the full
   pool).  No warm seeding or snapshot capture — lanes run diversified
   configurations the snapshot contract does not cover. *)
let race_leg ?share_lbd (job : job) limits ~lanes ~pool =
  let strategies = Portfolio.Strategy.default_pool ~jobs:lanes in
  let f = input_formula job.input in
  let o =
    match pool with
    | Some p ->
      Portfolio.Runner.run_in ?share_lbd ~limits ~interrupt:job.interrupt
        p strategies f
    | None ->
      Portfolio.Runner.run ?share_lbd ~jobs:lanes ~limits
        ~interrupt:job.interrupt strategies f
  in
  (o.Portfolio.Runner.result, o.Portfolio.Runner.stats, None, None)

(* Per-job cube config under a dispatch decision: the decision's
   trigger overrides the static one, inheriting the remaining knobs. *)
let decided_cube t (d : Dispatch.Policy.decision) =
  match d.Dispatch.Policy.cube_trigger with
  | None -> t.cfg.cube
  | Some trig ->
    let base = Option.value t.cfg.cube ~default:default_cube_config in
    Some { base with cube_trigger = trig }

let solve_job t pool job =
  let limits = { t.cfg.limits with Sat.Solver.deadline = job.deadline } in
  match t.cfg.mode with
  | Direct -> (
    match job.decision with
    | Some d when d.Dispatch.Policy.lanes > 1 ->
      race_leg job limits ~lanes:d.Dispatch.Policy.lanes ~pool
    | Some d when d.Dispatch.Policy.simplify -> simplify_leg job limits
    | Some d -> direct_leg t pool job limits ~cube:(decided_cube t d)
    | None -> direct_leg t pool job limits ~cube:t.cfg.cube)
  | Simplify -> simplify_leg job limits
  | Portfolio { share_lbd; _ } ->
    let lanes = Portfolio.Runner.pool_size (Option.get pool) in
    race_leg ~share_lbd job limits ~lanes ~pool

let classify t job result stats solve_wall snapshot ~cube =
  let verdict =
    match result with
    | Sat.Solver.Sat m ->
      (* Normalize the model to exactly [num_vars] entries first —
         reconstruction paths (Simplify, Portfolio) may answer with
         auxiliary variables appended, and [Formula.eval] raises on a
         size mismatch.  Then never serve an unverified model: the
         check is linear in the formula and turns any would-be wrong
         answer (a solver bug, a lane mix-up, a corrupt warm seed)
         into an explicit failure. *)
      let nv = input_num_vars job.input in
      let m =
        if Array.length m = nv then m
        else Array.init nv (fun i -> i < Array.length m && m.(i))
      in
      if input_eval job.input m then Sat m
      else Failed "model verification failed"
    | Sat.Solver.Unsat -> (
      (* Claim→publish soundness guard: an UNSAT assembled from cube
         jobs is only publishable — and verdict-cacheable — for the
         base fingerprint when every cube was refuted (equivalently,
         when the stitched proof could be sealed).  A partial conquest
         must never launder an assumption-relative UNSAT into a cached
         verdict. *)
      match cube with
      | Some rep when not rep.Portfolio.Cuber.refutation_complete ->
        Failed "incomplete cube refutation"
      | _ -> Unsat)
    | Sat.Solver.Unknown -> (
      match cube with
      | Some rep
        when rep.Portfolio.Cuber.failure <> None
             && not (job.timed_out || deadline_passed job (Sat.Wall.now ()))
        ->
        (* A cube race that died mid-way resolves FAILED, not a
           resource answer — and certainly not UNSAT. *)
        Failed
          (Printf.sprintf "cube job failed: %s"
             (Option.value ~default:"?" rep.Portfolio.Cuber.failure))
      | _ ->
        if job.timed_out || deadline_passed job (Sat.Wall.now ()) then
          Timeout
        else if Atomic.get t.stopping then Failed "server shutdown"
        else Timeout (* a configured base limit: still a resource answer *))
  in
  finalize t job ?snapshot ~verdict ~stats ~solve_wall ()

(* Remove a self-closed session from the live table.  The session may
   already be gone (evicted by the monitor in the same instant); the
   retired mark keeps later ops on its id answering deterministically. *)
let retire_closed t s =
  let sid = Session.id s in
  Mutex.lock t.gm;
  let was_live = Hashtbl.mem t.sessions sid in
  if was_live then begin
    Hashtbl.remove t.sessions sid;
    Hashtbl.replace t.retired sid `Closed
  end;
  Mutex.unlock t.gm;
  if was_live then Metrics.record_session_closed t.metrics

let note_session_step t (step : Session.step) =
  match step.Session.executed with
  | Some (Session.Solve _, a) ->
    Metrics.record_session_solve t.metrics ~latency_s:a.Session.wall
  | _ -> ()

let run_session_token t s =
  let step =
    Session.run_one ~limits:t.cfg.limits
      ~stopping:(fun () -> Atomic.get t.stopping)
      s
  in
  note_session_step t step;
  match step.Session.next with
  | `More ->
    (* Session tokens ride at priority 0 — the one-shot default — so
       round-robin fairness falls out of the queue's FIFO-within-
       priority order.  [push_force] cannot bounce off the admission
       cap; it fails only on a closed queue (shutdown), where the
       pending ops are failed by the shutdown sweep. *)
    if not (Job_queue.push_force t.queue ~priority:0 (W_session s)) then
      Session.kill s "server shutdown"
  | `Idle -> ()
  | `Closed -> retire_closed t s

let worker_loop t () =
  let pool =
    match t.cfg.mode with
    | Portfolio { jobs; _ } -> Some (Portfolio.Runner.create_pool ~jobs ())
    | Direct ->
      (* The worker's auxiliary pool: idle until a job crosses the
         cube hardness trigger or a dispatch decision races lanes, so
         small-job throughput is untouched.  Sized for the larger of
         the two consumers. *)
      let cube_jobs =
        match t.cfg.cube with Some cc -> cc.cube_jobs | None -> 1
      in
      let lane_jobs =
        match t.cfg.dispatch with
        | Some { policy = Some _; _ } -> Dispatch.Policy.max_lanes
        | _ -> 1
      in
      let jobs = max cube_jobs lane_jobs in
      if jobs > 1 then Some (Portfolio.Runner.create_pool ~jobs ())
      else None
    | Simplify -> None
  in
  let rec loop () =
    match Job_queue.pop t.queue with
    | None -> ()
    | Some (W_session s) ->
      run_session_token t s;
      loop ()
    | Some (W_job job) ->
      Mutex.lock job.jm;
      let already_done = job.claimed in
      if not already_done then job.running <- true;
      Mutex.unlock job.jm;
      (if already_done then () (* e.g. timed out while queued *)
       else if Atomic.get t.stopping then
         finalize t job ~verdict:(Failed "server shutdown")
           ~stats:empty_stats ~solve_wall:0.0 ()
       else if deadline_passed job (Sat.Wall.now ()) then
         finalize t job ~verdict:Timeout ~stats:empty_stats ~solve_wall:0.0
           ()
       else begin
         let t0 = Sat.Wall.now () in
         match solve_job t pool job with
         | result, stats, snapshot, cube ->
           classify t job result stats (Sat.Wall.now () -. t0) snapshot ~cube
         | exception e ->
           finalize t job
             ~verdict:(Failed (Printexc.to_string e))
             ~stats:empty_stats
             ~solve_wall:(Sat.Wall.now () -. t0)
             ()
       end);
      loop ()
  in
  loop ();
  Option.iter Portfolio.Runner.shutdown_pool pool

(* Idle-TTL sweep: evict sessions idle past the configured TTL.
   Re-checked under [gm] so a session that just accepted an op is
   spared; the [Session.evict] call itself runs outside [gm] (lock
   order is gm before the session mutex, and evict takes the latter). *)
let evict_expired_sessions t ~now =
  match t.cfg.session_ttl with
  | None -> ()
  | Some ttl ->
    let expired =
      Mutex.lock t.gm;
      let es =
        Hashtbl.fold
          (fun sid s acc ->
            if Session.is_idle s && now -. Session.last_use s >= ttl then
              (sid, s) :: acc
            else acc)
          t.sessions []
      in
      List.iter
        (fun (sid, _) ->
          Hashtbl.remove t.sessions sid;
          Hashtbl.replace t.retired sid `Evicted)
        es;
      Mutex.unlock t.gm;
      es
    in
    List.iter
      (fun (_, s) ->
        Session.evict s;
        Metrics.record_session_evicted t.metrics)
      expired

(* The deadline monitor: a few-millisecond heartbeat that scans the
   in-flight table and the session table.  A queued job whose deadline
   passed resolves to [Timeout] immediately (it never waits for a
   worker); a running one — one-shot or mid-session — gets its
   interrupt set and resolves within one solver budget tick. *)
let monitor_loop t () =
  while not (Atomic.get t.monitor_stop) do
    Unix.sleepf 0.002;
    let jobs, sessions =
      Mutex.lock t.gm;
      let js = Fp_tbl.fold (fun _ j acc -> j :: acc) t.inflight [] in
      let ss = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
      Mutex.unlock t.gm;
      (js, ss)
    in
    let now = Sat.Wall.now () in
    List.iter
      (fun job ->
        if deadline_passed job now then begin
          Mutex.lock job.jm;
          let queued = (not job.claimed) && not job.running in
          Mutex.unlock job.jm;
          if queued then
            finalize t job ~verdict:Timeout ~stats:empty_stats
              ~solve_wall:0.0 ()
          else begin
            job.timed_out <- true;
            Sat.Solver.Interrupt.set job.interrupt
          end
        end)
      jobs;
    List.iter (fun s -> Session.interrupt_if_overdue s ~now) sessions;
    evict_expired_sessions t ~now
  done

(* --- public API ------------------------------------------------------ *)

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Engine.create: workers < 1";
  if config.warm_capacity < 0 then
    invalid_arg "Engine.create: warm_capacity < 0";
  if config.session_capacity < 1 then
    invalid_arg "Engine.create: session_capacity < 1";
  if not (valid_deadline config.default_deadline) then
    invalid_arg "Engine.create: bad default_deadline";
  (match config.session_ttl with
   | Some ttl when not (Float.is_finite ttl && ttl > 0.0) ->
     invalid_arg "Engine.create: bad session_ttl"
   | _ -> ());
  (* A policy only routes Direct-mode jobs (the other modes are a
     fixed leg already); a trace may be attached to any mode. *)
  (match config.dispatch with
   | Some { policy = Some _; _ } when config.mode <> Direct ->
     invalid_arg "Engine.create: dispatch policy requires Direct mode"
   | _ -> ());
  let t =
    {
      cfg = config;
      queue = Job_queue.create ~capacity:config.queue_capacity ();
      cache = Cache.create ~capacity:config.cache_capacity ();
      warm =
        (if config.warm_capacity > 0 && config.mode = Direct then
           Some (Cache.Warm.create ~capacity:config.warm_capacity ())
         else None);
      metrics = Metrics.create ();
      inflight = Fp_tbl.create 64;
      sessions = Hashtbl.create 64;
      retired = Hashtbl.create 64;
      gm = Mutex.create ();
      stopping = Atomic.make false;
      monitor_stop = Atomic.make false;
      next_id = 0;
      next_sid = 0;
      domains = [];
    }
  in
  let workers =
    List.init config.workers (fun _ -> Domain.spawn (worker_loop t))
  in
  let monitor = Domain.spawn (monitor_loop t) in
  t.domains <- monitor :: workers;
  t

let submit_live t ?deadline ~priority input =
  let now = Sat.Wall.now () in
  let fp = input_fingerprint input in
  let cached =
    match Cache.find t.cache fp with
    | None -> None
    | Some e -> (
      match e.Cache.verdict with
      | Cache.Unsat -> Some (Unsat, e)
      | Cache.Sat m ->
        (* Verify against the formula actually submitted — equal
           fingerprints guarantee equal model sets, so a failure here
           is a detected hash collision: drop the entry and fall
           through to a real solve. *)
        if input_eval input m then Some (Sat (Array.copy m), e)
        else begin
          Cache.remove t.cache fp;
          None
        end)
  in
  match cached with
  | Some (verdict, e) ->
    let wall = Sat.Wall.now () -. now in
    Metrics.record_cache_hit t.metrics ~latency_s:wall;
    Ok
      (T_ready
         {
           verdict;
           source = Cache_hit;
           wall;
           solve_wall = e.Cache.solve_wall;
           stats = e.Cache.stats;
           fingerprint = fp;
         })
  | None ->
    (* Learned dispatch: features and the model's decision are
       computed after the cache lookup (a hit never needs them) and
       outside every engine lock — O(|F|) work must not serialize
       concurrent submits. *)
    let t_feat = Sat.Wall.now () in
    let features =
      match t.cfg.dispatch with
      | Some _ ->
        Some
          (match input with
          | Formula f -> Dispatch.Features.of_formula f
          | Flat fl -> Dispatch.Features.of_flat fl)
      | None -> None
    in
    let decision, infer_s =
      match t.cfg.dispatch with
      | Some { policy = Some p; _ } ->
        let d = Dispatch.Policy.decide p (Option.get features) in
        (Some d, Sat.Wall.now () -. t_feat)
      | _ -> (None, 0.0)
    in
    (* Deadline-aware admission: refuse a job whose predicted latency
       exceeds [admission_margin] times its (explicit or default)
       deadline — it would only burn a queue slot on the way to
       [Timeout].  Conservative by construction: an untrained hardness
       head predicts [nan], which never rejects. *)
    let admission_reject =
      match (t.cfg.dispatch, decision) with
      | Some { admission = true; _ }, Some d -> (
        match
          (match deadline with
          | Some s -> Some s
          | None -> t.cfg.default_deadline)
        with
        | Some dl ->
          Float.is_finite d.Dispatch.Policy.predicted_ms
          && d.Dispatch.Policy.predicted_ms
             > admission_margin *. dl *. 1000.0
        | None -> false)
      | _ -> false
    in
    if admission_reject then begin
      Metrics.record_dispatch t.metrics ~leg:`Rejected ~infer_s;
      Metrics.record_rejected t.metrics;
      Error "predicted-timeout"
    end
    else begin
    (* Every decision lands on exactly one leg counter here at submit
       time, so [dispatch_decided = direct + simplify + raced +
       rejected] holds whatever later happens to the job (dedup join,
       queue-full bounce, shutdown drain). *)
    (match decision with
    | Some d ->
      let leg =
        if d.Dispatch.Policy.lanes > 1 then `Raced
        else if d.Dispatch.Policy.simplify then `Simplify
        else `Direct
      in
      Metrics.record_dispatch t.metrics ~leg ~infer_s
    | None -> ());
    Mutex.lock t.gm;
    if Atomic.get t.stopping then begin
      Mutex.unlock t.gm;
      Metrics.record_rejected t.metrics;
      Error "server shutting down"
    end
    else begin
      match Fp_tbl.find_opt t.inflight fp with
      | Some job ->
        job.join_subs <- now :: job.join_subs;
        Mutex.unlock t.gm;
        Metrics.record_dedup_join t.metrics;
        Ok (T_job { job; source = Dedup_join; t_submit = now })
      | None ->
        let id = t.next_id in
        t.next_id <- id + 1;
        (* Warm lookup happens at submit time (not solve time) so the
           snapshot travels with the job even if the warm cache evicts
           the entry while the job is queued. *)
        let warm =
          match t.warm with
          | Some w -> Cache.Warm.find w fp
          | None -> None
        in
        let job =
          {
            id;
            input;
            fp;
            warm;
            features;
            decision;
            deadline =
              (match deadline with
               | Some s -> Some (now +. s)
               | None ->
                 Option.map (fun s -> now +. s) t.cfg.default_deadline);
            submitted_at = now;
            interrupt = Sat.Solver.Interrupt.create ();
            jm = Mutex.create ();
            jc = Condition.create ();
            state = None;
            claimed = false;
            running = false;
            timed_out = false;
            join_subs = [];
            waiters = [];
          }
        in
        (* In-flight before enqueue, so a concurrent identical submit
           joins this job even while it is still queued. *)
        Fp_tbl.replace t.inflight fp job;
        if Job_queue.push t.queue ~priority (W_job job) then begin
          Mutex.unlock t.gm;
          (* A warm-started submit counts as [warm_hits], not
             [submitted] — the two are disjoint legs of the request
             reconciliation. *)
          (match job.warm with
           | Some _ -> Metrics.record_warm_hit t.metrics
           | None -> Metrics.record_submitted t.metrics);
          Ok (T_job { job; source = Solved; t_submit = now })
        end
        else begin
          Fp_tbl.remove t.inflight fp;
          Mutex.unlock t.gm;
          Metrics.record_rejected t.metrics;
          Error
            (Printf.sprintf "queue full (capacity %d)"
               (Job_queue.capacity t.queue))
        end
    end
    end

(* The stopping check comes before the cache lookup: a shut-down
   server rejects every submit, even one it could answer from memory
   — [shutdown] means "this instance no longer answers". *)
let submit_input t ?deadline ?(priority = 0) input =
  if Atomic.get t.stopping then begin
    Metrics.record_rejected t.metrics;
    Error "server shutting down"
  end
  else if not (valid_deadline deadline) then begin
    Metrics.record_rejected t.metrics;
    Error "bad-deadline"
  end
  else submit_live t ?deadline ~priority input

let submit t ?deadline ?priority formula =
  submit_input t ?deadline ?priority (Formula formula)

let submit_flat t ?deadline ?priority fl =
  submit_input t ?deadline ?priority (Flat fl)

(* Drop a fingerprint's {e verdict} while keeping its warm snapshot —
   the next identical submit re-solves, seeded.  This is the knob the
   warm-start bench turns to measure resume-vs-restart without the
   verdict cache short-circuiting the resubmit; it is also useful when
   a client wants a fresh model for a formula it already solved. *)
let forget_verdict t fp = Cache.remove t.cache fp

let answer_of_core job core ~source ~t_submit =
  {
    verdict = core.d_verdict;
    source;
    wall = core.d_done_at -. t_submit;
    solve_wall = core.d_solve_wall;
    stats = core.d_stats;
    fingerprint = job.fp;
  }

let await _t = function
  | T_ready a -> a
  | T_job { job; source; t_submit } ->
    Mutex.lock job.jm;
    while job.state = None do
      Condition.wait job.jc job.jm
    done;
    let core = Option.get job.state in
    Mutex.unlock job.jm;
    answer_of_core job core ~source ~t_submit

let poll _t = function
  | T_ready a -> Some a
  | T_job { job; source; t_submit } ->
    Mutex.lock job.jm;
    let core = job.state in
    Mutex.unlock job.jm;
    Option.map (fun c -> answer_of_core job c ~source ~t_submit) core

let on_answer _t ticket k =
  match ticket with
  | T_ready a -> k a
  | T_job { job; source; t_submit } ->
    Mutex.lock job.jm;
    (match job.state with
     | Some core ->
       Mutex.unlock job.jm;
       k (answer_of_core job core ~source ~t_submit)
     | None ->
       job.waiters <-
         (fun core -> k (answer_of_core job core ~source ~t_submit))
         :: job.waiters;
       Mutex.unlock job.jm)

let solve t ?deadline ?priority formula =
  Result.map (await t) (submit t ?deadline ?priority formula)

let solve_flat t ?deadline ?priority fl =
  Result.map (await t) (submit_flat t ?deadline ?priority fl)

(* --- sessions -------------------------------------------------------- *)

(* LRU victim among the idle live sessions; caller holds [gm]. *)
let lru_idle_session t =
  Hashtbl.fold
    (fun sid s best ->
      if not (Session.is_idle s) then best
      else
        match best with
        | Some (_, bs) when Session.last_use bs <= Session.last_use s ->
          best
        | _ -> Some (sid, s))
    t.sessions None

let open_session t =
  if Atomic.get t.stopping then begin
    Metrics.record_rejected t.metrics;
    Error "server shutting down"
  end
  else begin
    Mutex.lock t.gm;
    let victim =
      if Hashtbl.length t.sessions >= t.cfg.session_capacity then begin
        match lru_idle_session t with
        | Some (vsid, vs) ->
          Hashtbl.remove t.sessions vsid;
          Hashtbl.replace t.retired vsid `Evicted;
          Some vs
        | None -> None
      end
      else None
    in
    let full = Hashtbl.length t.sessions >= t.cfg.session_capacity in
    let opened =
      if full then None
      else begin
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        let s = Session.create ~id:sid () in
        Hashtbl.replace t.sessions sid s;
        Some sid
      end
    in
    Mutex.unlock t.gm;
    (match victim with
     | Some vs ->
       Session.evict vs;
       Metrics.record_session_evicted t.metrics
     | None -> ());
    match opened with
    | Some sid ->
      Metrics.record_session_opened t.metrics;
      Ok sid
    | None ->
      (* At capacity with every session busy — admission control at
         the session-table edge, same refusal shape as a full queue. *)
      Metrics.record_rejected t.metrics;
      Error
        (Printf.sprintf "session table full (capacity %d)"
           t.cfg.session_capacity)
  end

let session_submit t sid op =
  if Atomic.get t.stopping then begin
    Metrics.record_rejected t.metrics;
    Error "server shutting down"
  end
  else begin
    Mutex.lock t.gm;
    let found =
      match Hashtbl.find_opt t.sessions sid with
      | Some s -> `Live s
      | None -> (
        match Hashtbl.find_opt t.retired sid with
        | Some r -> `Retired r
        | None -> `Unknown)
    in
    Mutex.unlock t.gm;
    match found with
    | `Unknown ->
      Metrics.record_rejected t.metrics;
      Error "unknown session"
    | `Retired r ->
      (* A deterministic answer for the id's afterlife: ops on a
         closed or evicted session resolve immediately instead of
         erroring — the client learns the lifecycle state. *)
      Metrics.record_session_op t.metrics;
      let outcome =
        match r with
        | `Evicted -> Session.Evicted
        | `Closed -> Session.Failed "session closed"
      in
      Ok (Session.resolved_ticket op outcome)
    | `Live s -> (
      match Session.enqueue s op with
      | `Full ->
        Metrics.record_rejected t.metrics;
        Error "session queue full"
      | `Queued ticket ->
        Metrics.record_session_op t.metrics;
        Ok ticket
      | `Scheduled ticket ->
        Metrics.record_session_op t.metrics;
        if not (Job_queue.push_force t.queue ~priority:0 (W_session s))
        then Session.kill s "server shutdown";
        Ok ticket)
  end

let session_await _t ticket = Session.await ticket
let session_poll _t ticket = Session.poll ticket

let session_op t sid op = Result.map (Session.await) (session_submit t sid op)
let session_add t sid clauses = session_op t sid (Session.Add clauses)
let session_assume t sid lits = session_op t sid (Session.Assume lits)
let session_push t sid = session_op t sid Session.Push
let session_pop t sid = session_op t sid Session.Pop
let close_session t sid = session_op t sid Session.Close

let submit_session_solve t ?deadline sid =
  if not (valid_deadline deadline) then begin
    Metrics.record_rejected t.metrics;
    Error "bad-deadline"
  end
  else begin
    let deadline = Option.map (fun s -> Sat.Wall.now () +. s) deadline in
    session_submit t sid (Session.Solve { deadline })
  end

let solve_session t ?deadline ?assumptions sid =
  if not (valid_deadline deadline) then begin
    Metrics.record_rejected t.metrics;
    Error "bad-deadline"
  end
  else begin
    (match assumptions with
     | Some lits -> ignore (session_submit t sid (Session.Assume lits))
     | None -> ());
    Result.map Session.await (submit_session_solve t ?deadline sid)
  end

let sessions_live t =
  Mutex.lock t.gm;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.gm;
  n

let stats t =
  let inflight, live =
    Mutex.lock t.gm;
    let n = Fp_tbl.length t.inflight in
    let l = Hashtbl.length t.sessions in
    Mutex.unlock t.gm;
    (n, l)
  in
  Metrics.snapshot t.metrics
    ~queue_depth:(Job_queue.length t.queue)
    ~inflight
    ~cache_entries:(Cache.length t.cache)
    ~sessions_live:live

let stats_json t = Metrics.to_json (stats t)
let metrics t = t.metrics

let shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Cancel running solves; queued jobs are drained by the workers,
       which answer them [Failed "server shutdown"] without solving.
       Sessions are killed the same way: their running solve is
       interrupted and every queued op answers [Failed] — [resolve] is
       idempotent, so racing an executing worker is harmless. *)
    Mutex.lock t.gm;
    let jobs = Fp_tbl.fold (fun _ j acc -> j :: acc) t.inflight [] in
    let sessions = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
    Mutex.unlock t.gm;
    List.iter (fun job -> Sat.Solver.Interrupt.set job.interrupt) jobs;
    List.iter (fun s -> Session.kill s "server shutdown") sessions;
    Job_queue.close t.queue;
    let domains = t.domains in
    t.domains <- [];
    Atomic.set t.monitor_stop true;
    List.iter Domain.join domains
  end
