type client_counts = {
  requests : int;
  answered : int;
  rejected : int;
}

type snapshot = {
  submitted : int;
  completed : int;
  solved_sat : int;
  solved_unsat : int;
  timeouts : int;
  failures : int;
  rejected : int;
  cache_hits : int;
  warm_hits : int;
  warm_seeded : int;
  cubed : int;         (** jobs escalated to cube-and-conquer *)
  cubes_solved : int;  (** cubes refuted or satisfied across those jobs *)
  cube_steals : int;   (** cube claims by a non-owner pool worker *)
  dispatch_decided : int;
      (** submits a dispatch policy decided (= sum of the four legs) *)
  dispatch_direct : int;
  dispatch_simplify : int;
  dispatch_raced : int;
  dispatch_rejected : int;  (** admission refusals: predicted-timeout *)
  dispatch_infer_max_ms : float;
  dedup_joins : int;
  session_ops : int;
  sessions_opened : int;
  sessions_closed : int;
  sessions_evicted : int;
  session_solves : int;
  sessions_live : int;
  queue_depth : int;
  inflight : int;
  cache_entries : int;
  latency_count : int;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  parse_count : int;
  parse_p50_ms : float;
  parse_p95_ms : float;
  parse_max_ms : float;
  clients : (string * client_counts) list;
}

let ring_capacity = 4096

type client_cell = {
  mutable c_requests : int;
  mutable c_answered : int;
  mutable c_rejected : int;
}

type t = {
  m : Mutex.t;
  mutable submitted : int;
  mutable solved_sat : int;
  mutable solved_unsat : int;
  mutable timeouts : int;
  mutable failures : int;
  mutable rejected : int;
  mutable cache_hits : int;
  mutable warm_hits : int;
  mutable warm_seeded : int;
  mutable cubed : int;
  mutable cubes_solved : int;
  mutable cube_steals : int;
  mutable dispatch_direct : int;
  mutable dispatch_simplify : int;
  mutable dispatch_raced : int;
  mutable dispatch_rejected : int;
  mutable dispatch_infer_max : float; (* seconds *)
  mutable dedup_joins : int;
  mutable session_ops : int;
  mutable sessions_opened : int;
  mutable sessions_closed : int;
  mutable sessions_evicted : int;
  mutable session_solves : int;
  (* Latency ring (seconds): the most recent [ring_capacity]
     request-level latencies, plus a lifetime count and max. *)
  ring : float array;
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable lat_count : int;
  mutable lat_max : float;
  (* Parse-latency ring (seconds): per-load DIMACS/AIGER ingest times
     recorded by the transport front-ends, same shape as [ring]. *)
  parse_ring : float array;
  mutable parse_len : int;
  mutable parse_pos : int;
  mutable parse_count : int;
  mutable parse_max : float;
  (* Per-client (tenant) counters, recorded by transport front-ends.
     Client ids are free-form strings chosen at the wire edge. *)
  clients : (string, client_cell) Hashtbl.t;
}

let create () =
  {
    m = Mutex.create ();
    submitted = 0;
    solved_sat = 0;
    solved_unsat = 0;
    timeouts = 0;
    failures = 0;
    rejected = 0;
    cache_hits = 0;
    warm_hits = 0;
    warm_seeded = 0;
    cubed = 0;
    cubes_solved = 0;
    cube_steals = 0;
    dispatch_direct = 0;
    dispatch_simplify = 0;
    dispatch_raced = 0;
    dispatch_rejected = 0;
    dispatch_infer_max = 0.0;
    dedup_joins = 0;
    session_ops = 0;
    sessions_opened = 0;
    sessions_closed = 0;
    sessions_evicted = 0;
    session_solves = 0;
    ring = Array.make ring_capacity 0.0;
    ring_len = 0;
    ring_pos = 0;
    lat_count = 0;
    lat_max = 0.0;
    parse_ring = Array.make ring_capacity 0.0;
    parse_len = 0;
    parse_pos = 0;
    parse_count = 0;
    parse_max = 0.0;
    clients = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let note_latency t s =
  let s = if s < 0.0 then 0.0 else s in
  t.ring.(t.ring_pos) <- s;
  t.ring_pos <- (t.ring_pos + 1) mod ring_capacity;
  if t.ring_len < ring_capacity then t.ring_len <- t.ring_len + 1;
  t.lat_count <- t.lat_count + 1;
  if s > t.lat_max then t.lat_max <- s

let record_rejected t = locked t (fun () -> t.rejected <- t.rejected + 1)

let record_cache_hit t ~latency_s =
  locked t (fun () ->
      t.cache_hits <- t.cache_hits + 1;
      note_latency t latency_s)

let record_warm_hit t = locked t (fun () -> t.warm_hits <- t.warm_hits + 1)

let record_warm_seeded t =
  locked t (fun () -> t.warm_seeded <- t.warm_seeded + 1)

let record_cubed t ~cubes_solved ~steals =
  locked t (fun () ->
      t.cubed <- t.cubed + 1;
      t.cubes_solved <- t.cubes_solved + max 0 cubes_solved;
      t.cube_steals <- t.cube_steals + max 0 steals)

let record_parse t ~latency_s =
  locked t (fun () ->
      let s = if latency_s < 0.0 then 0.0 else latency_s in
      t.parse_ring.(t.parse_pos) <- s;
      t.parse_pos <- (t.parse_pos + 1) mod ring_capacity;
      if t.parse_len < ring_capacity then t.parse_len <- t.parse_len + 1;
      t.parse_count <- t.parse_count + 1;
      if s > t.parse_max then t.parse_max <- s)

let record_dispatch t ~leg ~infer_s =
  locked t (fun () ->
      (match leg with
      | `Direct -> t.dispatch_direct <- t.dispatch_direct + 1
      | `Simplify -> t.dispatch_simplify <- t.dispatch_simplify + 1
      | `Raced -> t.dispatch_raced <- t.dispatch_raced + 1
      | `Rejected -> t.dispatch_rejected <- t.dispatch_rejected + 1);
      if infer_s > t.dispatch_infer_max then t.dispatch_infer_max <- infer_s)

let record_dedup_join t =
  locked t (fun () -> t.dedup_joins <- t.dedup_joins + 1)

let record_session_op t =
  locked t (fun () -> t.session_ops <- t.session_ops + 1)

let record_session_opened t =
  locked t (fun () -> t.sessions_opened <- t.sessions_opened + 1)

let record_session_closed t =
  locked t (fun () -> t.sessions_closed <- t.sessions_closed + 1)

let record_session_evicted t =
  locked t (fun () -> t.sessions_evicted <- t.sessions_evicted + 1)

let record_session_solve t ~latency_s =
  locked t (fun () ->
      t.session_solves <- t.session_solves + 1;
      note_latency t latency_s)

let record_submitted t = locked t (fun () -> t.submitted <- t.submitted + 1)

let record_completed t ~outcome ~latency_s =
  locked t (fun () ->
      (match outcome with
       | `Sat -> t.solved_sat <- t.solved_sat + 1
       | `Unsat -> t.solved_unsat <- t.solved_unsat + 1
       | `Timeout -> t.timeouts <- t.timeouts + 1
       | `Failed -> t.failures <- t.failures + 1);
      note_latency t latency_s)

let record_join_latency t ~latency_s =
  locked t (fun () -> note_latency t latency_s)

(* --- per-client counters --------------------------------------------- *)

let client_cell t client =
  match Hashtbl.find_opt t.clients client with
  | Some c -> c
  | None ->
    let c = { c_requests = 0; c_answered = 0; c_rejected = 0 } in
    Hashtbl.replace t.clients client c;
    c

let record_client_request t ~client =
  locked t (fun () ->
      let c = client_cell t client in
      c.c_requests <- c.c_requests + 1)

let record_client_answered t ~client =
  locked t (fun () ->
      let c = client_cell t client in
      c.c_answered <- c.c_answered + 1)

let record_client_rejected t ~client =
  locked t (fun () ->
      let c = client_cell t client in
      c.c_rejected <- c.c_rejected + 1)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let snapshot t ~queue_depth ~inflight ~cache_entries ~sessions_live =
  locked t (fun () ->
      let window = Array.sub t.ring 0 t.ring_len in
      Array.sort compare window;
      let parse_window = Array.sub t.parse_ring 0 t.parse_len in
      Array.sort compare parse_window;
      {
        submitted = t.submitted;
        completed = t.solved_sat + t.solved_unsat + t.timeouts + t.failures;
        solved_sat = t.solved_sat;
        solved_unsat = t.solved_unsat;
        timeouts = t.timeouts;
        failures = t.failures;
        rejected = t.rejected;
        cache_hits = t.cache_hits;
        warm_hits = t.warm_hits;
        warm_seeded = t.warm_seeded;
        cubed = t.cubed;
        cubes_solved = t.cubes_solved;
        cube_steals = t.cube_steals;
        dispatch_decided =
          t.dispatch_direct + t.dispatch_simplify + t.dispatch_raced
          + t.dispatch_rejected;
        dispatch_direct = t.dispatch_direct;
        dispatch_simplify = t.dispatch_simplify;
        dispatch_raced = t.dispatch_raced;
        dispatch_rejected = t.dispatch_rejected;
        dispatch_infer_max_ms = 1000.0 *. t.dispatch_infer_max;
        dedup_joins = t.dedup_joins;
        session_ops = t.session_ops;
        sessions_opened = t.sessions_opened;
        sessions_closed = t.sessions_closed;
        sessions_evicted = t.sessions_evicted;
        session_solves = t.session_solves;
        sessions_live;
        queue_depth;
        inflight;
        cache_entries;
        latency_count = t.lat_count;
        p50_ms = 1000.0 *. percentile window 0.50;
        p95_ms = 1000.0 *. percentile window 0.95;
        max_ms = 1000.0 *. t.lat_max;
        parse_count = t.parse_count;
        parse_p50_ms = 1000.0 *. percentile parse_window 0.50;
        parse_p95_ms = 1000.0 *. percentile parse_window 0.95;
        parse_max_ms = 1000.0 *. t.parse_max;
        clients =
          Hashtbl.fold
            (fun name c acc ->
              ( name,
                {
                  requests = c.c_requests;
                  answered = c.c_answered;
                  rejected = c.c_rejected;
                } )
              :: acc)
            t.clients []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
      })

let json_escape name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf ch
      | '\x00' .. '\x1f' -> Buffer.add_string buf "_"
      | ch -> Buffer.add_char buf ch)
    name;
  Buffer.contents buf

(* The clients object comes last so flat "key": N scanners keep
   resolving the top-level counters to their first (top-level)
   occurrence. *)
let clients_json clients =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (name, c) ->
           Printf.sprintf
             "\"%s\": {\"requests\": %d, \"answered\": %d, \
              \"rejected\": %d}"
             (json_escape name) c.requests c.answered c.rejected)
         clients)
  ^ "}"

let to_json (s : snapshot) =
  Printf.sprintf
    "{\"submitted\": %d, \"completed\": %d, \"solved_sat\": %d, \
     \"solved_unsat\": %d, \"timeouts\": %d, \"failures\": %d, \
     \"rejected\": %d, \"cache_hits\": %d, \"warm_hits\": %d, \
     \"warm_seeded\": %d, \"cubed\": %d, \"cubes_solved\": %d, \
     \"cube_steals\": %d, \"dispatch_decided\": %d, \
     \"dispatch_direct\": %d, \"dispatch_simplify\": %d, \
     \"dispatch_raced\": %d, \"dispatch_rejected\": %d, \
     \"dispatch_infer_max_ms\": %.3f, \"dedup_joins\": %d, \
     \"session_ops\": %d, \"sessions_opened\": %d, \
     \"sessions_closed\": %d, \"sessions_evicted\": %d, \
     \"session_solves\": %d, \"sessions_live\": %d, \
     \"queue_depth\": %d, \"inflight\": %d, \"cache_entries\": %d, \
     \"latency_count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
     \"max_ms\": %.3f, \"parse_count\": %d, \"parse_p50_ms\": %.3f, \
     \"parse_p95_ms\": %.3f, \"parse_max_ms\": %.3f, \
     \"clients\": %s}"
    s.submitted s.completed s.solved_sat s.solved_unsat s.timeouts s.failures
    s.rejected s.cache_hits s.warm_hits s.warm_seeded s.cubed s.cubes_solved
    s.cube_steals s.dispatch_decided s.dispatch_direct s.dispatch_simplify
    s.dispatch_raced s.dispatch_rejected s.dispatch_infer_max_ms
    s.dedup_joins s.session_ops s.sessions_opened
    s.sessions_closed s.sessions_evicted s.session_solves s.sessions_live
    s.queue_depth s.inflight s.cache_entries s.latency_count s.p50_ms
    s.p95_ms s.max_ms s.parse_count s.parse_p50_ms s.parse_p95_ms
    s.parse_max_ms (clients_json s.clients)

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "submitted=%d completed=%d sat=%d unsat=%d timeout=%d failed=%d \
     rejected=%d cache_hits=%d warm=%d/%d cubed=%d/%d/%d dedup_joins=%d \
     session_ops=%d sessions=%d/%d/%d queue=%d inflight=%d p50=%.1fms \
     p95=%.1fms"
    s.submitted s.completed s.solved_sat s.solved_unsat s.timeouts s.failures
    s.rejected s.cache_hits s.warm_hits s.warm_seeded s.cubed s.cubes_solved
    s.cube_steals s.dedup_joins s.session_ops s.sessions_opened
    s.sessions_closed s.sessions_evicted s.queue_depth s.inflight s.p50_ms
    s.p95_ms
