(* Binary max-heap over (priority, -seq): higher priority first, FIFO
   within equal priorities.  The heap array is allocated at capacity
   once; push/pop are O(log n) under one mutex. *)

type 'a cell = { prio : int; seq : int; item : 'a }

type 'a t = {
  cap : int;  (* admission bound for [push]; [push_force] may exceed it *)
  mutable heap : 'a cell option array;
  mutable size : int;
  mutable next_seq : int;
  mutable closed : bool;
  m : Mutex.t;
  c : Condition.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Job_queue.create: capacity < 1";
  {
    cap = capacity;
    heap = Array.make capacity None;
    size = 0;
    next_seq = 0;
    closed = false;
    m = Mutex.create ();
    c = Condition.create ();
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.m;
  let n = t.size in
  Mutex.unlock t.m;
  n

(* [a] comes out before [b]? *)
let before a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

let get h i = match h.(i) with Some c -> c | None -> assert false

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get h i) (get h parent) then begin
      let tmp = h.(i) in
      h.(i) <- h.(parent);
      h.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < size && before (get h l) (get h !best) then best := l;
  if r < size && before (get h r) (get h !best) then best := r;
  if !best <> i then begin
    let tmp = h.(i) in
    h.(i) <- h.(!best);
    h.(!best) <- tmp;
    sift_down h size !best
  end

let push_cell t ~priority item =
  if t.size >= Array.length t.heap then begin
    let grown = Array.make (2 * Array.length t.heap) None in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end;
  t.heap.(t.size) <- Some { prio = priority; seq = t.next_seq; item };
  t.next_seq <- t.next_seq + 1;
  sift_up t.heap t.size;
  t.size <- t.size + 1;
  Condition.signal t.c

let push t ~priority item =
  Mutex.lock t.m;
  let ok = (not t.closed) && t.size < t.cap in
  if ok then push_cell t ~priority item;
  Mutex.unlock t.m;
  ok

(* Scheduling tokens (one per live session) must never bounce off the
   admission bound — a bounced token would strand the session's
   pending ops.  Their population is bounded by the session table, not
   by [cap], so the heap grows past [cap] when needed. *)
let push_force t ~priority item =
  Mutex.lock t.m;
  let ok = not t.closed in
  if ok then push_cell t ~priority item;
  Mutex.unlock t.m;
  ok

let pop t =
  Mutex.lock t.m;
  while t.size = 0 && not t.closed do
    Condition.wait t.c t.m
  done;
  let out =
    if t.size = 0 then None (* closed and drained *)
    else begin
      let top = get t.heap 0 in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- None;
      if t.size > 0 then sift_down t.heap t.size 0;
      Some top.item
    end
  in
  Mutex.unlock t.m;
  out

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
