(** One persistent incremental solve session of the service.

    A session wraps a {!Sat.Solver.Incremental.session} plus the
    bookkeeping that makes it safe to drive over the shared worker
    pool: a FIFO of pending operations, a checkout flag so at most one
    worker domain touches the solver at a time, a client-variable
    renaming (client variables map to internal solver variables in
    first-use order, so activation variables never collide with later
    client variables), and a PUSH/POP stack implemented with
    activation literals — every clause added under a pushed frame
    carries the negation of the frame's activation variable, the
    frame's activation variable is assumed at solve time, and POP
    retires the frame by adding the negated activation unit.

    Scheduling contract (enforced together with {!Engine}): a session
    appears {e at most once} in the engine's work queue, as a token
    that makes a worker execute exactly one pending operation
    ({!run_one}) before the token is re-enqueued — so a chatty session
    round-robins with one-shot jobs and with other sessions instead of
    starving them.  Operations of one session execute in submission
    order; {!enqueue} tells the caller whether it just became
    responsible for scheduling the token.

    All functions may be called from any domain. *)

type op =
  | Add of int array list
      (** clauses in the client's DIMACS literals; rejected
          ([Failed]) if any literal is 0 *)
  | Assume of int array
      (** assumption literals for the {e next} [Solve]; cleared after
          it answers (IPASIR convention).  A second [Assume] before the
          solve replaces the first. *)
  | Push  (** open an activation frame *)
  | Pop   (** retire the innermost frame and its clauses *)
  | Solve of { deadline : float option }
      (** absolute {!Sat.Wall.now} instant, already validated and
          composed by the engine *)
  | Close  (** mark the session closed; later ops answer [Failed] *)

type outcome =
  | Ok_done            (** [Add]/[Assume]/[Push]/[Pop]/[Close] applied *)
  | Sat of bool array  (** model over the client's variables, verified
                           against every live client clause *)
  | Unsat of int array
      (** failed-assumption core in client literals (activation
          literals are filtered out); empty when the accumulated
          clauses are unsatisfiable outright *)
  | Timeout            (** deadline or configured resource limit *)
  | Evicted            (** the session was evicted before the op ran *)
  | Failed of string

type answer = {
  outcome : outcome;
  wall : float;        (** op latency, submit to answer, seconds *)
  solve_wall : float;  (** wall seconds of the underlying solve; 0 for
                           non-solve ops *)
  stats : Sat.Solver.stats;
      (** cumulative session solver statistics (solve answers only) *)
}

type ticket
type t

val create : ?max_pending:int -> id:int -> unit -> t
(** A fresh live session.  [max_pending] (default 1024) bounds the
    per-session op FIFO — the session-level backpressure edge. *)

val id : t -> int

val enqueue : t -> op -> [ `Scheduled of ticket | `Queued of ticket | `Full ]
(** Append an op to the session's FIFO.  [`Scheduled] means the caller
    must push the session's token onto the work queue (the FIFO was
    empty and no token is in flight); [`Queued] means a token already
    exists and will drain this op too.  On a closed or evicted session
    the ticket comes back already resolved ([Failed] / [Evicted]).
    [`Full] is the per-session backpressure answer: nothing was
    enqueued. *)

val await : ticket -> answer
val poll : ticket -> answer option

val on_answer : ticket -> (answer -> unit) -> unit
(** Asynchronous [await]: run the callback once, when (or if already)
    the ticket resolves.  Same contract as {!Engine.on_answer}: an
    unresolved ticket's callback runs on the resolving domain with no
    session lock held and must return quickly; a resolved ticket's
    callback runs synchronously on the calling domain. *)

val resolved_ticket : op -> outcome -> ticket
(** A ticket already carrying [outcome] — the engine's deterministic
    answer for ops addressed to a retired (closed/evicted) session
    id. *)

type step = {
  executed : (op * answer) option;
      (** the op this call ran and how it answered (for metrics) *)
  next : [ `More | `Idle | `Closed ];
      (** [`More]: re-enqueue the token; [`Idle]: the FIFO drained;
          [`Closed]: the FIFO drained and the session closed itself —
          the engine should retire it *)
}

val run_one :
  limits:Sat.Solver.limits -> stopping:(unit -> bool) -> t -> step
(** Execute at most one pending op (worker-domain entry point).  The
    checkout flag guarantees exclusive access to the solver state; the
    token discipline guarantees a single caller.  [limits] is the
    engine's base per-op limit record; a [Solve] op's deadline is
    layered on top.  [stopping] is probed before running an op — a
    stopping server answers [Failed "server shutdown"] without
    solving. *)

val evict : t -> unit
(** Mark the session evicted and resolve every pending op with
    [Evicted].  Only idle sessions are evicted by the engine, but the
    call is safe at any time. *)

val kill : t -> string -> unit
(** Shutdown path: resolve every pending op with [Failed msg] and
    interrupt a running solve. *)

val interrupt_if_overdue : t -> now:float -> unit
(** Monitor hook: if a solve is running past its deadline, flag it
    timed-out and set its interrupt. *)

val is_idle : t -> bool
(** No pending ops and not checked out — the only state eligible for
    eviction. *)

val last_use : t -> float
(** {!Sat.Wall.now} instant of the last submitted or completed op. *)

val depth : t -> int
(** Current PUSH nesting depth. *)

val pending_ops : t -> int
