(** LRU result cache keyed by canonical CNF fingerprint.

    Stores {e decisive} answers only — a [Sat] model or an [Unsat]
    verdict with the solving stats that produced it.  Timeouts are
    never cached: they are a property of the job's deadline, not of
    the formula.

    Keys are {!Cnf.Fingerprint.t}, so a resubmitted formula hits even
    when its clauses are permuted, duplicated or carry repeated
    literals (any formula with the same sorted-clause normal form —
    see {!Cnf.Fingerprint}).  The engine re-checks a cached model
    against the {e submitted} formula before serving it, so the
    ~128-bit fingerprint never silently serves a wrong model.

    All operations take one internal mutex: safe from any domain. *)

type verdict =
  | Sat of bool array  (** a verified model of the fingerprinted formula *)
  | Unsat

type entry = {
  verdict : verdict;
  stats : Sat.Solver.stats;  (** the original (cold) solve's stats *)
  solve_wall : float;        (** the original solve's wall seconds *)
}

type t

val create : capacity:int -> unit -> t
(** Capacity in entries; [capacity < 1] raises [Invalid_argument]. *)

val find : t -> Cnf.Fingerprint.t -> entry option
(** Lookup; a hit refreshes the entry's recency. *)

val add : t -> Cnf.Fingerprint.t -> entry -> unit
(** Insert (or overwrite), evicting the least-recently-used entry when
    at capacity. *)

val remove : t -> Cnf.Fingerprint.t -> unit
(** Drop an entry (used when a cached model fails re-verification —
    i.e. a detected fingerprint collision). *)

val length : t -> int
