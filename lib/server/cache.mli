(** LRU caches keyed by canonical CNF fingerprint: verdicts (the main
    type below) and warm-start solver snapshots ({!Warm}).

    The verdict cache stores {e decisive} answers only — a [Sat] model
    or an [Unsat] verdict with the solving stats that produced it.
    Timeouts are never cached: they are a property of the job's
    deadline, not of the formula.  The {!Warm} cache is the
    complement: it keeps bounded {!Sat.Solver.seed} snapshots of
    solver {e state} (low-LBD learnt clauses, saved phases, activity
    order) for every solve — including interrupted and timed-out ones
    — so a resubmitted formula resumes instead of restarting.

    Keys are {!Cnf.Fingerprint.t}, so a resubmitted formula hits even
    when its clauses are permuted, duplicated or carry repeated
    literals (any formula with the same sorted-clause normal form —
    see {!Cnf.Fingerprint}).  The engine re-checks a cached model
    against the {e submitted} formula before serving it, so the
    ~128-bit fingerprint never silently serves a wrong model.

    All operations take one internal mutex: safe from any domain. *)

type verdict =
  | Sat of bool array  (** a verified model of the fingerprinted formula *)
  | Unsat

type entry = {
  verdict : verdict;
  stats : Sat.Solver.stats;  (** the original (cold) solve's stats *)
  solve_wall : float;        (** the original solve's wall seconds *)
}

type t

val create : capacity:int -> unit -> t
(** Capacity in entries; [capacity < 1] raises [Invalid_argument]. *)

val find : t -> Cnf.Fingerprint.t -> entry option
(** Lookup; a hit refreshes the entry's recency. *)

val add : t -> Cnf.Fingerprint.t -> entry -> unit
(** Insert (or overwrite), evicting the least-recently-used entry when
    at capacity. *)

val remove : t -> Cnf.Fingerprint.t -> unit
(** Drop an entry (used when a cached model fails re-verification —
    i.e. a detected fingerprint collision). *)

val length : t -> int

(** LRU of warm-start snapshots, same recency/eviction discipline and
    the same key type as the verdict cache.  A snapshot is only sound
    to seed into a formula with the {e same} fingerprint (equal
    fingerprints mean equal model sets, so the captured clauses are
    implied); the engine guarantees this by construction — it looks
    snapshots up under the exact fingerprint of the submitted
    formula. *)
module Warm : sig
  type t

  val create : capacity:int -> unit -> t
  val find : t -> Cnf.Fingerprint.t -> Sat.Solver.seed option
  val add : t -> Cnf.Fingerprint.t -> Sat.Solver.seed -> unit
  val remove : t -> Cnf.Fingerprint.t -> unit
  val length : t -> int
end
