(** The concurrent solve service: bounded priority queue, persistent
    domain workers, fingerprint result cache, in-flight deduplication
    and per-job deadlines.

    {2 Life of a request}

    [submit] fingerprints the formula ({!Cnf.Fingerprint}) and then:

    + {b cache hit} — an earlier decisive answer for the same
      canonical formula exists: the cached model is re-verified
      against the submitted formula ([Cnf.Formula.eval], so a
      fingerprint collision is detected, never served) and the ticket
      is already resolved;
    + {b dedup join} — a job with the same fingerprint is queued or
      running: the ticket attaches to that job's future, no new work
      is created;
    + {b admission} — otherwise the request becomes a job in the
      bounded priority queue.  A full queue {e rejects} the request
      with a reason (backpressure at the edge);
    + a persistent pool of worker domains pops jobs (highest priority
      first) and dispatches each to the configured solve {!mode};
    + the job's {b deadline} is enforced twice: as an absolute
      {!Sat.Solver.limits.deadline} probed on the solver's budget
      tick, and by a monitor domain that interrupts a running job
      ({!Sat.Solver.Interrupt}) and fails a still-queued one the
      moment its deadline passes — a deadline answers [Timeout], never
      a hang;
    + decisive answers (a verified model, or [Unsat]) enter the LRU
      cache; [await] wakes every ticket attached to the job.

    {2 Warm starts}

    In [Direct] mode the engine also keeps a bounded LRU of
    {!Sat.Solver.seed} snapshots ({!Cache.Warm}), keyed by the same
    canonical fingerprint as the verdict cache.  Every finished solve
    — including one that timed out — snapshots its low-LBD learnt
    clauses, saved phases and activity order; a later submit of the
    same canonical formula that misses the verdict cache {e resumes}
    from the snapshot instead of restarting ([warm_hits] in
    {!Metrics}).  Soundness is by construction: equal fingerprints
    mean equal model sets, so the snapshot's learnt clauses are
    implied by the resubmitted formula; and a warm answer is never
    trusted blind — models are re-verified and UNSAT proofs (when
    requested via the direct pipeline) remain checkable because the
    seeding path RUP-filters the injected clauses.

    {2 Incremental sessions}

    [open_session] allocates a persistent {!Session.t} wrapping one
    {!Sat.Solver.Incremental.session}.  Session operations
    ([session_add] / [session_assume] / [session_push] /
    [session_pop] / [solve_session] / [close_session]) queue on the
    session's private FIFO and execute {e in submission order} on the
    same worker pool as one-shot jobs, one op per scheduling token —
    so sessions round-robin with each other and with one-shot solves
    instead of monopolizing a worker.  The session table is bounded
    ([session_capacity]): opening past the bound evicts the
    least-recently-used {e idle} session (its pending ops answer
    [Evicted]); if every session is busy the open is rejected.
    Sessions idle past [session_ttl] are evicted by the monitor
    domain, which also interrupts session solves that run past their
    deadline.  Operations addressed to a closed or evicted session id
    answer [Failed "session closed"] / [Evicted] rather than erroring.

    All entry points may be called from any domain. *)

type verdict =
  | Sat of bool array
      (** a model over the submitted formula's variables, verified
          with [Cnf.Formula.eval] before being reported — including
          when it came from the cache *)
  | Unsat
  | Timeout  (** deadline or configured resource limit hit *)
  | Failed of string
      (** the solve raised, the server was shut down mid-job, or a
          model failed verification *)

type source =
  | Solved      (** a fresh solve ran for this request *)
  | Cache_hit   (** answered at submit time from the result cache *)
  | Dedup_join  (** attached to a concurrently in-flight identical job *)

type answer = {
  verdict : verdict;
  source : source;
  wall : float;
      (** this request's latency, submit to answer, in seconds *)
  solve_wall : float;
      (** wall seconds of the underlying solve (the {e original} cold
          solve for cache hits — compare with [wall] for the saving) *)
  stats : Sat.Solver.stats;  (** the underlying solve's statistics *)
  fingerprint : Cnf.Fingerprint.t;
}

(** How a worker solves a job.  Every mode reports models over the
    {e input} formula's variables (the service never serves a model of
    a transformed formula). *)
type mode =
  | Direct  (** {!Sat.Solver.solve} on the submitted formula *)
  | Simplify
      (** proof-carrying CNF simplification, then solve, models
          reconstructed ({!Eda4sat.Pipeline.solve_direct}
          [~simplify:true]) *)
  | Portfolio of { jobs : int; share_lbd : int }
      (** each worker owns a persistent {!Portfolio.Runner.pool} of
          [jobs] domains and races the direct strategy pool with
          clause sharing ({!Portfolio.Strategy.default_pool}) *)

(** Hardness-triggered cube-and-conquer, [Direct] mode only.  A job
    whose first solve slice hits [cube_trigger] conflicts without an
    answer escalates to {!Portfolio.Cuber} on the worker's private
    cube pool ([cube_jobs] domains, idle otherwise): the formula is
    split into up to [cube_count] cubes by propagation lookahead
    ([cube_probe_limit] probes per split node) and conquered with work
    stealing.  Small jobs answer inside the slice and take exactly the
    path they would without cubing.

    Soundness guards on the escalated path (see DESIGN.md):
    an [Unsat] is published — and verdict-cached — only when the
    conquest refuted {e every} cube; a cube race that dies mid-way
    resolves [Failed], never [Unsat]; and an escalated job stores no
    warm snapshot (cube solves bake assumption-local phases and
    activity into their state). *)
type cube_config = {
  cube_trigger : int;     (** conflicts before a job escalates *)
  cube_count : int;       (** max cubes per escalated job *)
  cube_jobs : int;        (** cube pool domains per worker *)
  cube_probe_limit : int; (** lookahead probes per split node *)
}

val default_cube_config : cube_config
(** [{ cube_trigger = 10_000; cube_count = 8; cube_jobs = 4;
      cube_probe_limit = 32 }] *)

(** Learned dispatch.  With a [policy], every one-shot submit that
    misses the verdict cache has {!Dispatch.Features} extracted off
    its clause store and a {!Dispatch.Policy} decision taken — all
    outside the engine locks, before the job enters the queue:

    - [lanes > 1] races that many diversified portfolio lanes on the
      worker's auxiliary pool;
    - otherwise [simplify] routes through the proof-carrying simplify
      pipeline;
    - otherwise the plain direct lane runs, with the decision's
      [cube_trigger] (if any) overriding the static cube config.

    A policy requires [Direct] mode ({!create} raises otherwise);
    without one, behavior is identical to a dispatch-less engine.
    With [admission] (default off), a job whose predicted latency
    exceeds 4x its effective deadline answers
    [Error "predicted-timeout"] ([REJECTED predicted-timeout] at the
    wire) without consuming a queue slot; the prediction of an
    untrained model is [nan], which never rejects.

    A [trace] (usable in every mode, with or without a policy) logs
    one {!Dispatch.Tracelog} entry per one-shot completion — features,
    decisions actually in force (the model's, or the engine's static
    configuration), outcome, conflicts and latency — the training data
    for [eda4sat dispatch train].  Decisions land on the
    [dispatch_*] counters of {!Metrics} at submit time, one leg per
    decision, so the ledger reconciles exactly. *)
type dispatch_config = {
  policy : Dispatch.Policy.t option;
  trace : Dispatch.Tracelog.t option;
  admission : bool;
}

type config = {
  workers : int;         (** worker domains (default 4) *)
  queue_capacity : int;  (** admission bound (default 64) *)
  cache_capacity : int;  (** LRU entries (default 512) *)
  warm_capacity : int;
      (** warm-start snapshot LRU entries (default 256); [0] disables
          warm starts.  Only effective in [Direct] mode — the other
          modes neither seed nor snapshot. *)
  mode : mode;           (** default [Direct] *)
  limits : Sat.Solver.limits;
      (** base per-job limits (the job deadline is layered on top) *)
  default_deadline : float option;
      (** seconds; applied when [submit] gives no deadline *)
  session_capacity : int;
      (** max live sessions (default 64); opening past the bound
          LRU-evicts an idle session or rejects *)
  session_ttl : float option;
      (** idle seconds before the monitor evicts a session
          (default 600); [None] disables TTL eviction *)
  cube : cube_config option;
      (** hardness-triggered cube-and-conquer (default [None]:
          disabled) *)
  dispatch : dispatch_config option;
      (** learned dispatch (default [None]: static behavior, byte
          identical to a build without the subsystem) *)
}

val default_config : config

type t
type ticket

(** A submitted formula: the array-of-arrays view, or the flat CSR
    store the zero-copy DIMACS parser emits
    ({!Cnf.Dimacs.read_flat_file}).  Flat submissions solve through
    {!Sat.Solver.solve_flat} in [Direct] mode — clause bytes go
    straight into the solver arena with no intermediate per-clause
    arrays. *)
type input =
  | Formula of Cnf.Formula.t
  | Flat of Cnf.Flat.t

val input_num_vars : input -> int
(** The submitted formula's declared variable count (either view). *)

val create : ?config:config -> unit -> t
(** Start the service: spawns the worker domains and the deadline
    monitor. *)

val submit :
  t -> ?deadline:float -> ?priority:int -> Cnf.Formula.t ->
  (ticket, string) result
(** Submit a formula.  [deadline] is in seconds from now — a negative
    or non-finite value answers [Error "bad-deadline"] (a NaN deadline
    would otherwise compose into an absolute instant that never
    passes, i.e. an unkillable job); [priority] (default 0, higher
    pops first) orders the admission queue.  [Error reason] is the
    backpressure path: the queue is full or the server is shutting
    down — nothing was enqueued. *)

val submit_flat :
  t -> ?deadline:float -> ?priority:int -> Cnf.Flat.t ->
  (ticket, string) result
(** [submit] for a flat CSR formula.  Same semantics (fingerprinting,
    caching, dedup, warm starts); in [Direct] mode the solve loads the
    CSR store into the arena directly. *)

val submit_input :
  t -> ?deadline:float -> ?priority:int -> input -> (ticket, string) result
(** The general form both wrappers above delegate to. *)

val await : t -> ticket -> answer
(** Block until the ticket's job resolves.  Any number of domains may
    await (the same or different) tickets concurrently. *)

val poll : t -> ticket -> answer option
(** Non-blocking [await]. *)

val on_answer : t -> ticket -> (answer -> unit) -> unit
(** Asynchronous [await]: run the callback once, when (or if already)
    the ticket's job resolves.  An unresolved ticket's callback runs
    on the resolving domain (a worker, the deadline monitor, or the
    shutdown path) with {e no} engine lock held, so it may re-enter
    the engine — but it must return quickly: it runs on the solve hot
    path.  A resolved ticket's callback runs synchronously on the
    calling domain before [on_answer] returns.  This is the completion
    hook the network front-end ({!Net.Event_loop}) uses to stream
    answers back without parking a domain per request. *)

val solve :
  t -> ?deadline:float -> ?priority:int -> Cnf.Formula.t ->
  (answer, string) result
(** [submit] then [await]. *)

val solve_flat :
  t -> ?deadline:float -> ?priority:int -> Cnf.Flat.t ->
  (answer, string) result
(** [submit_flat] then [await]. *)

val forget_verdict : t -> Cnf.Fingerprint.t -> unit
(** Drop the fingerprint's verdict-cache entry (if any) while keeping
    its warm snapshot: the next identical submit re-solves, seeded.
    For clients that want a fresh solve of a known formula — and for
    benchmarking resume-vs-restart without the verdict cache
    short-circuiting the resubmit. *)

(** {2 Session API} *)

val open_session : t -> (int, string) result
(** Allocate a fresh live session and answer its id.  [Error] when
    the table is at capacity with no idle session to LRU-evict, or the
    server is shutting down. *)

val session_submit : t -> int -> Session.op -> (Session.ticket, string) result
(** Queue one operation on a session's FIFO.  For a retired
    (closed/evicted) id the ticket comes back already resolved with
    the lifecycle outcome.  [Error] on an unknown id, a full session
    FIFO, or a shutting-down server.  A [Session.Solve] op's deadline
    must already be an absolute instant — prefer [solve_session],
    which validates and composes it. *)

val session_await : t -> Session.ticket -> Session.answer
val session_poll : t -> Session.ticket -> Session.answer option

val session_add :
  t -> int -> int array list -> (Session.answer, string) result
(** Append clauses (client DIMACS literals).  Under a pushed frame the
    clauses retire with the frame's [session_pop]. *)

val session_assume : t -> int -> int array -> (Session.answer, string) result
(** Set the assumption literals for the next [solve_session] on this
    session (IPASIR convention: cleared once that solve answers). *)

val session_push : t -> int -> (Session.answer, string) result
val session_pop : t -> int -> (Session.answer, string) result

val submit_session_solve :
  t -> ?deadline:float -> int -> (Session.ticket, string) result
(** Non-blocking [solve_session]: validates [deadline] (seconds from
    now, [Error "bad-deadline"] like {!submit}), composes the absolute
    instant and queues the [Solve] op. *)

val solve_session :
  t -> ?deadline:float -> ?assumptions:int array -> int ->
  (Session.answer, string) result
(** Solve the session's accumulated clauses under the pending (or
    given) assumptions.  [deadline] is in seconds from now, validated
    like {!submit} ([Error "bad-deadline"]).  Blocks until the solve
    answers; earlier queued ops of the same session run first (FIFO). *)

val close_session : t -> int -> (Session.answer, string) result
(** Mark the session closed and retire it once its FIFO drains.
    Later ops on the id answer [Failed "session closed"]. *)

val sessions_live : t -> int

val stats : t -> Metrics.snapshot
val stats_json : t -> string

val metrics : t -> Metrics.t
(** The engine's live metrics accumulator.  Exposed so transport
    front-ends (the socket server) can record per-client counters into
    the same snapshot that [stats]/[stats_json] serve — one source of
    truth for reconciliation. *)

val shutdown : t -> unit
(** Stop accepting work, cancel running jobs (their awaiters receive
    [Failed "server shutdown"] — or their real answer if it won the
    race with the cancellation), fail the still-queued jobs, join
    every domain.  Idempotent; [submit] afterwards answers [Error]. *)
