let default_load path =
  if Filename.check_suffix path ".aag" then
    Eda4sat.Instance.direct_formula
      (Eda4sat.Instance.of_circuit ~name:(Filename.basename path)
         (Aig.Aiger_io.read_file path))
  else Cnf.Dimacs.read_file path

(* Answers print in request order while the engine solves out of
   order: the reader pushes one item per request into this FIFO and a
   printer domain resolves them head-first.  [Stats] and [Sync] are
   barriers by construction — the printer only reaches them after
   every earlier answer is out. *)
type item =
  | Answer of { seq : int; file : string; ticket : Engine.ticket }
  | Lines of string list
  | Stats
  | Sync of { m : Mutex.t; c : Condition.t; mutable released : bool }
  | Stop

type fifo = {
  q : item Queue.t;
  m : Mutex.t;
  c : Condition.t;
}

let fifo_push f item =
  Mutex.lock f.m;
  Queue.push item f.q;
  Condition.signal f.c;
  Mutex.unlock f.m

let fifo_pop f =
  Mutex.lock f.m;
  while Queue.is_empty f.q do
    Condition.wait f.c f.m
  done;
  let item = Queue.pop f.q in
  Mutex.unlock f.m;
  item

let model_line m =
  let buf = Buffer.create (4 * Array.length m) in
  Buffer.add_char buf 'v';
  Array.iteri
    (fun i b ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (if b then i + 1 else -(i + 1))))
    m;
  Buffer.add_string buf " 0";
  Buffer.contents buf

let source_name = function
  | Engine.Solved -> "solved"
  | Engine.Cache_hit -> "cache"
  | Engine.Dedup_join -> "join"

let print_answer oc ~seq ~file (a : Engine.answer) =
  Printf.fprintf oc
    "c job %d file=%s source=%s wall_ms=%.1f solve_ms=%.1f fingerprint=%s\n"
    seq file (source_name a.Engine.source)
    (1000.0 *. a.Engine.wall)
    (1000.0 *. a.Engine.solve_wall)
    (Cnf.Fingerprint.to_hex a.Engine.fingerprint);
  (match a.Engine.verdict with
   | Engine.Sat m ->
     output_string oc "SAT\n";
     output_string oc (model_line m);
     output_char oc '\n'
   | Engine.Unsat -> output_string oc "UNSAT\n"
   | Engine.Timeout -> output_string oc "TIMEOUT\n"
   | Engine.Failed msg -> Printf.fprintf oc "FAILED %s\n" msg);
  flush oc

let printer_loop engine oc fifo () =
  let rec loop () =
    match fifo_pop fifo with
    | Stop -> ()
    | Lines ls ->
      List.iter (fun l -> output_string oc (l ^ "\n")) ls;
      flush oc;
      loop ()
    | Stats ->
      output_string oc (Engine.stats_json engine ^ "\n");
      flush oc;
      loop ()
    | Sync s ->
      output_string oc "c sync\n";
      flush oc;
      Mutex.lock s.m;
      s.released <- true;
      Condition.broadcast s.c;
      Mutex.unlock s.m;
      loop ()
    | Answer { seq; file; ticket } ->
      print_answer oc ~seq ~file (Engine.await engine ticket);
      loop ()
  in
  loop ()

let serve ?(load = default_load) engine ic oc =
  let fifo = { q = Queue.create (); m = Mutex.create (); c = Condition.create () } in
  let printer = Domain.spawn (printer_loop engine oc fifo) in
  let seq = ref 0 in
  let handle_solve args =
    incr seq;
    let n = !seq in
    match args with
    | file :: rest -> (
      let deadline, priority =
        match rest with
        | [] -> (None, None)
        | [ d ] -> (Some (float_of_string d /. 1000.0), None)
        | [ d; p ] ->
          (Some (float_of_string d /. 1000.0), Some (int_of_string p))
        | _ -> failwith "SOLVE takes at most 3 operands"
      in
      match load file with
      | exception e ->
        fifo_push fifo
          (Lines
             [ Printf.sprintf "c job %d file=%s" n file;
               Printf.sprintf "ERROR cannot load %s: %s" file
                 (Printexc.to_string e) ])
      | formula -> (
        match Engine.submit engine ?deadline ?priority formula with
        | Ok ticket -> fifo_push fifo (Answer { seq = n; file; ticket })
        | Error reason ->
          fifo_push fifo
            (Lines
               [ Printf.sprintf "c job %d file=%s" n file;
                 "REJECTED " ^ reason ])))
    | [] -> fifo_push fifo (Lines [ "ERROR SOLVE needs a file operand" ])
  in
  let rec read_loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> read_loop ()
      | cmd :: args -> (
        match (String.uppercase_ascii cmd, args) with
        | "QUIT", _ -> ()
        | ("C" | "#"), _ -> read_loop ()
        | "SOLVE", args ->
          (try handle_solve args
           with e ->
             fifo_push fifo
               (Lines [ "ERROR bad SOLVE request: " ^ Printexc.to_string e ]));
          read_loop ()
        | "STATS", _ ->
          fifo_push fifo Stats;
          read_loop ()
        | "SYNC", _ ->
          let s =
            Sync { m = Mutex.create (); c = Condition.create ();
                   released = false }
          in
          fifo_push fifo s;
          (match s with
           | Sync sr ->
             Mutex.lock sr.m;
             while not sr.released do
               Condition.wait sr.c sr.m
             done;
             Mutex.unlock sr.m
           | _ -> assert false);
          read_loop ()
        | _ ->
          fifo_push fifo (Lines [ "ERROR unknown command: " ^ cmd ]);
          read_loop ()))
  in
  (* Lines starting with a lowercase 'c' comment marker parse as the
     command "C" above; '#' likewise — both are accepted silently so
     scripted sessions can annotate themselves. *)
  read_loop ();
  fifo_push fifo Stop;
  Domain.join printer
