let default_load path =
  if Filename.check_suffix path ".aag" then
    Eda4sat.Instance.direct_formula
      (Eda4sat.Instance.of_circuit ~name:(Filename.basename path)
         (Aig.Aiger_io.read_file path))
  else Cnf.Dimacs.read_file path

(* The wire takes milliseconds; engine deadlines are seconds from now.
   This is the only ms→s conversion in the stack — the engine then
   validates the value and composes the absolute instant, so a NaN or
   negative wire deadline answers [REJECTED bad-deadline] instead of
   poisoning the instant arithmetic. *)
let deadline_of_ms_string d = float_of_string d /. 1000.0

(* Answers print in request order while the engine solves out of
   order: the reader pushes one item per request into this FIFO and a
   printer domain resolves them head-first.  [Stats] and [Sync] are
   barriers by construction — the printer only reaches them after
   every earlier answer is out. *)
type item =
  | Answer of {
      seq : int;
      file : string;
      num_vars : int;
      ticket : Engine.ticket;
    }
  | S_answer of {
      seq : int;
      sid : int;
      verb : string;
      ticket : Session.ticket;
    }
  | Lines of string list
  | Stats
  | Sync of { m : Mutex.t; c : Condition.t; mutable released : bool }
  | Stop

type fifo = {
  q : item Queue.t;
  m : Mutex.t;
  c : Condition.t;
}

let fifo_push f item =
  Mutex.lock f.m;
  Queue.push item f.q;
  Condition.signal f.c;
  Mutex.unlock f.m

let fifo_pop f =
  Mutex.lock f.m;
  while Queue.is_empty f.q do
    Condition.wait f.c f.m
  done;
  let item = Queue.pop f.q in
  Mutex.unlock f.m;
  item

(* Exactly [num_vars] literals, whatever the model array's length:
   reconstruction paths may answer with auxiliary variables appended
   (clamp), and a model shorter than the declared variable count pads
   with the negative phase — a "v" line is only well-formed when it
   assigns the declared variables, all of them, and nothing else. *)
let model_line ~num_vars m =
  let buf = Buffer.create (4 * num_vars) in
  Buffer.add_char buf 'v';
  for i = 0 to num_vars - 1 do
    let b = i < Array.length m && m.(i) in
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int (if b then i + 1 else -(i + 1)))
  done;
  Buffer.add_string buf " 0";
  Buffer.contents buf

let source_name = function
  | Engine.Solved -> "solved"
  | Engine.Cache_hit -> "cache"
  | Engine.Dedup_join -> "join"

let print_answer oc ~seq ~file ~num_vars (a : Engine.answer) =
  Printf.fprintf oc
    "c job %d file=%s source=%s wall_ms=%.1f solve_ms=%.1f fingerprint=%s\n"
    seq file (source_name a.Engine.source)
    (1000.0 *. a.Engine.wall)
    (1000.0 *. a.Engine.solve_wall)
    (Cnf.Fingerprint.to_hex a.Engine.fingerprint);
  (match a.Engine.verdict with
   | Engine.Sat m ->
     output_string oc "SAT\n";
     output_string oc (model_line ~num_vars m);
     output_char oc '\n'
   | Engine.Unsat -> output_string oc "UNSAT\n"
   | Engine.Timeout -> output_string oc "TIMEOUT\n"
   | Engine.Failed msg -> Printf.fprintf oc "FAILED %s\n" msg);
  flush oc

let print_session_answer oc ~seq ~sid ~verb (a : Session.answer) =
  Printf.fprintf oc "c session %d job %d op=%s wall_ms=%.1f solve_ms=%.1f\n"
    sid seq verb
    (1000.0 *. a.Session.wall)
    (1000.0 *. a.Session.solve_wall);
  (match a.Session.outcome with
   | Session.Ok_done -> output_string oc "OK\n"
   | Session.Sat m ->
     output_string oc "SAT\n";
     output_string oc (model_line ~num_vars:(Array.length m) m);
     output_char oc '\n'
   | Session.Unsat core ->
     output_string oc "UNSAT\n";
     let buf = Buffer.create 32 in
     Buffer.add_string buf "c core";
     Array.iter
       (fun l ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf (string_of_int l))
       core;
     Buffer.add_string buf " 0\n";
     output_string oc (Buffer.contents buf)
   | Session.Timeout -> output_string oc "TIMEOUT\n"
   | Session.Evicted -> output_string oc "EVICTED\n"
   | Session.Failed msg -> Printf.fprintf oc "FAILED %s\n" msg);
  flush oc

let printer_loop engine oc fifo () =
  let rec loop () =
    match fifo_pop fifo with
    | Stop -> ()
    | Lines ls ->
      List.iter (fun l -> output_string oc (l ^ "\n")) ls;
      flush oc;
      loop ()
    | Stats ->
      output_string oc (Engine.stats_json engine ^ "\n");
      flush oc;
      loop ()
    | Sync s ->
      output_string oc "c sync\n";
      flush oc;
      Mutex.lock s.m;
      s.released <- true;
      Condition.broadcast s.c;
      Mutex.unlock s.m;
      loop ()
    | Answer { seq; file; num_vars; ticket } ->
      print_answer oc ~seq ~file ~num_vars (Engine.await engine ticket);
      loop ()
    | S_answer { seq; sid; verb; ticket } ->
      print_session_answer oc ~seq ~sid ~verb
        (Engine.session_await engine ticket);
      loop ()
  in
  loop ()

(* --- request parsing helpers ----------------------------------------- *)

let is_int_string s =
  s <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') s

(* 0-terminated clause groups, DIMACS style: "1 2 0 -1 3 0". *)
let parse_clauses words =
  let cur = ref [] and out = ref [] in
  List.iter
    (fun w ->
      let l = int_of_string w in
      if l = 0 then begin
        out := Array.of_list (List.rev !cur) :: !out;
        cur := []
      end
      else cur := l :: !cur)
    words;
  if !cur <> [] then failwith "clause not 0-terminated";
  if !out = [] then failwith "no clauses";
  List.rev !out

(* Assumption literals; one trailing 0 tolerated, embedded 0 is not. *)
let parse_lits words =
  let lits = List.map int_of_string words in
  let lits =
    match List.rev lits with 0 :: rest -> List.rev rest | _ -> lits
  in
  if List.exists (fun l -> l = 0) lits then failwith "literal 0";
  Array.of_list lits

let serve ?(load = default_load) engine ic oc =
  let fifo = { q = Queue.create (); m = Mutex.create (); c = Condition.create () } in
  let printer = Domain.spawn (printer_loop engine oc fifo) in
  let seq = ref 0 in
  let handle_solve args =
    incr seq;
    let n = !seq in
    match args with
    | file :: rest -> (
      let deadline, priority =
        match rest with
        | [] -> (None, None)
        | [ d ] -> (Some (deadline_of_ms_string d), None)
        | [ d; p ] ->
          (Some (deadline_of_ms_string d), Some (int_of_string p))
        | _ -> failwith "SOLVE takes at most 3 operands"
      in
      match load file with
      | exception e ->
        fifo_push fifo
          (Lines
             [ Printf.sprintf "c job %d file=%s" n file;
               Printf.sprintf "ERROR cannot load %s: %s" file
                 (Printexc.to_string e) ])
      | formula -> (
        match Engine.submit engine ?deadline ?priority formula with
        | Ok ticket ->
          fifo_push fifo
            (Answer
               { seq = n; file;
                 num_vars = formula.Cnf.Formula.num_vars; ticket })
        | Error reason ->
          fifo_push fifo
            (Lines
               [ Printf.sprintf "c job %d file=%s" n file;
                 "REJECTED " ^ reason ])))
    | [] -> fifo_push fifo (Lines [ "ERROR SOLVE needs a file operand" ])
  in
  let session_header sid n verb =
    Printf.sprintf "c session %d job %d op=%s" sid n verb
  in
  let push_session_result sid verb = function
    | Ok ticket ->
      fifo_push fifo (S_answer { seq = !seq; sid; verb; ticket })
    | Error reason ->
      fifo_push fifo
        (Lines [ session_header sid !seq verb; "REJECTED " ^ reason ])
  in
  let handle_session_op sid verb op =
    incr seq;
    push_session_result sid verb (Engine.session_submit engine sid op)
  in
  let handle_session_solve sid rest =
    incr seq;
    let deadline =
      match rest with
      | [] -> None
      | [ d ] -> Some (deadline_of_ms_string d)
      | _ -> failwith "session SOLVE takes at most one deadline operand"
    in
    push_session_result sid "solve"
      (Engine.submit_session_solve engine ?deadline sid)
  in
  let handle_open () =
    incr seq;
    let n = !seq in
    match Engine.open_session engine with
    | Ok sid ->
      fifo_push fifo
        (Lines
           [ Printf.sprintf "c job %d op=open" n;
             Printf.sprintf "OPENED %d" sid ])
    | Error reason ->
      fifo_push fifo
        (Lines
           [ Printf.sprintf "c job %d op=open" n; "REJECTED " ^ reason ])
  in
  let protected name f =
    try f ()
    with e ->
      fifo_push fifo
        (Lines
           [ Printf.sprintf "ERROR bad %s request: %s" name
               (Printexc.to_string e) ])
  in
  let rec read_loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> read_loop ()
      | cmd :: args -> (
        match (String.uppercase_ascii cmd, args) with
        | "QUIT", _ -> ()
        | ("C" | "#"), _ -> read_loop ()
        (* A first SOLVE operand that is all digits addresses a
           session; a file named like a bare integer needs a path
           prefix ("./42"). *)
        | "SOLVE", sid :: rest when is_int_string sid ->
          protected "SOLVE" (fun () ->
              handle_session_solve (int_of_string sid) rest);
          read_loop ()
        | "SOLVE", args ->
          protected "SOLVE" (fun () -> handle_solve args);
          read_loop ()
        | "OPEN", _ ->
          handle_open ();
          read_loop ()
        | "ADD", sid :: lits when is_int_string sid ->
          protected "ADD" (fun () ->
              handle_session_op (int_of_string sid) "add"
                (Session.Add (parse_clauses lits)));
          read_loop ()
        | "ASSUME", sid :: lits when is_int_string sid ->
          protected "ASSUME" (fun () ->
              handle_session_op (int_of_string sid) "assume"
                (Session.Assume (parse_lits lits)));
          read_loop ()
        | "PUSH", [ sid ] when is_int_string sid ->
          handle_session_op (int_of_string sid) "push" Session.Push;
          read_loop ()
        | "POP", [ sid ] when is_int_string sid ->
          handle_session_op (int_of_string sid) "pop" Session.Pop;
          read_loop ()
        | "CLOSE", [ sid ] when is_int_string sid ->
          handle_session_op (int_of_string sid) "close" Session.Close;
          read_loop ()
        | ("ADD" | "ASSUME" | "PUSH" | "POP" | "CLOSE"), _ ->
          fifo_push fifo
            (Lines [ "ERROR " ^ cmd ^ " needs a session id operand" ]);
          read_loop ()
        | "STATS", _ ->
          fifo_push fifo Stats;
          read_loop ()
        | "SYNC", _ ->
          let s =
            Sync { m = Mutex.create (); c = Condition.create ();
                   released = false }
          in
          fifo_push fifo s;
          (match s with
           | Sync sr ->
             Mutex.lock sr.m;
             while not sr.released do
               Condition.wait sr.c sr.m
             done;
             Mutex.unlock sr.m
           | _ -> assert false);
          read_loop ()
        | _ ->
          fifo_push fifo (Lines [ "ERROR unknown command: " ^ cmd ]);
          read_loop ()))
  in
  (* Lines starting with a lowercase 'c' comment marker parse as the
     command "C" above; '#' likewise — both are accepted silently so
     scripted sessions can annotate themselves. *)
  read_loop ();
  (* EOF (and QUIT) is an implicit SYNC-and-drain: [Stop] enters the
     FIFO after every pending answer item, so the printer resolves and
     prints them all before the join — including the answer to a final
     command that arrived without a trailing newline, which
     [input_line] still delivers as a line.  The final flush covers a
     caller that closes [oc] immediately after [serve] returns. *)
  fifo_push fifo Stop;
  Domain.join printer;
  flush oc
