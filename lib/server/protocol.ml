let default_load path =
  if Filename.check_suffix path ".aag" then
    Eda4sat.Instance.direct_formula
      (Eda4sat.Instance.of_circuit ~name:(Filename.basename path)
         (Aig.Aiger_io.read_file path))
  else Cnf.Dimacs.read_file path

(* The transport-default loader: AIGER still goes through the circuit
   pipeline (it needs Tseitin encoding anyway), but DIMACS files take
   the zero-copy path — mmap the bytes, parse into a flat CSR store,
   and let the engine load that store straight into the solver arena. *)
let default_load_input path =
  if Filename.check_suffix path ".aag" then
    Engine.Formula (default_load path)
  else Engine.Flat (Cnf.Dimacs.read_flat_file path)

(* The wire takes milliseconds; engine deadlines are seconds from now.
   This is the only ms→s conversion in the stack — the engine then
   validates the value and composes the absolute instant, so a NaN or
   negative wire deadline answers [REJECTED bad-deadline] instead of
   poisoning the instant arithmetic. *)
let deadline_of_ms_string d = float_of_string d /. 1000.0

(* --- request parsing --------------------------------------------------

   One grammar for every transport: the stdin/channel loop below and
   the socket front-end (lib/net) both parse lines with
   [parse_request], so a command means the same thing over a pipe, a
   TCP connection and a Unix socket. *)

let is_int_string s =
  s <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') s

(* 0-terminated clause groups, DIMACS style: "1 2 0 -1 3 0". *)
let parse_clauses words =
  let cur = ref [] and out = ref [] in
  List.iter
    (fun w ->
      let l = int_of_string w in
      if l = 0 then begin
        out := Array.of_list (List.rev !cur) :: !out;
        cur := []
      end
      else cur := l :: !cur)
    words;
  if !cur <> [] then failwith "clause not 0-terminated";
  if !out = [] then failwith "no clauses";
  List.rev !out

(* Assumption literals; one trailing 0 tolerated, embedded 0 is not. *)
let parse_lits words =
  let lits = List.map int_of_string words in
  let lits =
    match List.rev lits with 0 :: rest -> List.rev rest | _ -> lits
  in
  if List.exists (fun l -> l = 0) lits then failwith "literal 0";
  Array.of_list lits

type request =
  | Solve_file of {
      file : string;
      deadline : float option;  (* seconds from now, may be non-finite *)
      priority : int option;
    }
  | Session_solve of { sid : int; deadline : float option }
  | Session_op of { sid : int; verb : string; op : Session.op }
  | Open_session
  | Client of string  (* declare this connection's client (tenant) id *)
  | Stats
  | Metrics_now
  | Sync
  | Ping
  | Quit
  | Comment
  | Bad of string  (* the ERROR line to answer *)

(* Client ids end up as JSON keys in METRICS/STATS output and in log
   lines; keep them to a tame identifier alphabet. *)
let valid_client_name name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (fun ch ->
         match ch with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' ->
           true
         | _ -> false)
       name

let parse_request line =
  let guarded name f =
    try f ()
    with e ->
      Bad
        (Printf.sprintf "ERROR bad %s request: %s" name
           (Printexc.to_string e))
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Comment
  | cmd :: args -> (
    match (String.uppercase_ascii cmd, args) with
    | "QUIT", _ -> Quit
    (* Lines starting with a lowercase 'c' comment marker parse as the
       command "C"; '#' likewise — both are accepted silently so
       scripted sessions can annotate themselves. *)
    | ("C" | "#"), _ -> Comment
    | "PING", _ -> Ping
    | "METRICS", _ -> Metrics_now
    | "STATS", _ -> Stats
    | "SYNC", _ -> Sync
    | "OPEN", _ -> Open_session
    | "CLIENT", [ name ] when valid_client_name name -> Client name
    | "CLIENT", _ ->
      Bad
        "ERROR CLIENT needs one identifier operand \
         ([A-Za-z0-9._:-], at most 64 chars)"
    (* A first SOLVE operand that is all digits addresses a session; a
       file named like a bare integer needs a path prefix ("./42"). *)
    | "SOLVE", sid :: rest when is_int_string sid ->
      guarded "SOLVE" (fun () ->
          let deadline =
            match rest with
            | [] -> None
            | [ d ] -> Some (deadline_of_ms_string d)
            | _ -> failwith "session SOLVE takes at most one deadline operand"
          in
          Session_solve { sid = int_of_string sid; deadline })
    | "SOLVE", file :: rest ->
      guarded "SOLVE" (fun () ->
          let deadline, priority =
            match rest with
            | [] -> (None, None)
            | [ d ] -> (Some (deadline_of_ms_string d), None)
            | [ d; p ] ->
              (Some (deadline_of_ms_string d), Some (int_of_string p))
            | _ -> failwith "SOLVE takes at most 3 operands"
          in
          Solve_file { file; deadline; priority })
    | "SOLVE", [] -> Bad "ERROR SOLVE needs a file operand"
    | "ADD", sid :: lits when is_int_string sid ->
      guarded "ADD" (fun () ->
          Session_op
            { sid = int_of_string sid; verb = "add";
              op = Session.Add (parse_clauses lits) })
    | "ASSUME", sid :: lits when is_int_string sid ->
      guarded "ASSUME" (fun () ->
          Session_op
            { sid = int_of_string sid; verb = "assume";
              op = Session.Assume (parse_lits lits) })
    | "PUSH", [ sid ] when is_int_string sid ->
      Session_op { sid = int_of_string sid; verb = "push"; op = Session.Push }
    | "POP", [ sid ] when is_int_string sid ->
      Session_op { sid = int_of_string sid; verb = "pop"; op = Session.Pop }
    | "CLOSE", [ sid ] when is_int_string sid ->
      Session_op
        { sid = int_of_string sid; verb = "close"; op = Session.Close }
    | ("ADD" | "ASSUME" | "PUSH" | "POP" | "CLOSE"), _ ->
      Bad ("ERROR " ^ cmd ^ " needs a session id operand")
    | _ -> Bad ("ERROR unknown command: " ^ cmd))

(* --- answer rendering -------------------------------------------------

   Shared by both transports so a scripted client sees byte-identical
   answers whether it spoke over stdin or a socket. *)

(* Exactly [num_vars] literals, whatever the model array's length:
   reconstruction paths may answer with auxiliary variables appended
   (clamp), and a model shorter than the declared variable count pads
   with the negative phase — a "v" line is only well-formed when it
   assigns the declared variables, all of them, and nothing else. *)
let model_line ~num_vars m =
  let buf = Buffer.create (4 * num_vars) in
  Buffer.add_char buf 'v';
  for i = 0 to num_vars - 1 do
    let b = i < Array.length m && m.(i) in
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int (if b then i + 1 else -(i + 1)))
  done;
  Buffer.add_string buf " 0";
  Buffer.contents buf

let source_name = function
  | Engine.Solved -> "solved"
  | Engine.Cache_hit -> "cache"
  | Engine.Dedup_join -> "join"

let job_header ~seq ~file = Printf.sprintf "c job %d file=%s" seq file
let open_header ~seq = Printf.sprintf "c job %d op=open" seq

let session_header ~sid ~seq ~verb =
  Printf.sprintf "c session %d job %d op=%s" sid seq verb

let answer_lines ~seq ~file ~num_vars (a : Engine.answer) =
  let header =
    Printf.sprintf
      "c job %d file=%s source=%s wall_ms=%.1f solve_ms=%.1f fingerprint=%s"
      seq file (source_name a.Engine.source)
      (1000.0 *. a.Engine.wall)
      (1000.0 *. a.Engine.solve_wall)
      (Cnf.Fingerprint.to_hex a.Engine.fingerprint)
  in
  header
  ::
  (match a.Engine.verdict with
   | Engine.Sat m -> [ "SAT"; model_line ~num_vars m ]
   | Engine.Unsat -> [ "UNSAT" ]
   | Engine.Timeout -> [ "TIMEOUT" ]
   | Engine.Failed msg -> [ "FAILED " ^ msg ])

let session_answer_lines ~seq ~sid ~verb (a : Session.answer) =
  let header =
    Printf.sprintf "c session %d job %d op=%s wall_ms=%.1f solve_ms=%.1f"
      sid seq verb
      (1000.0 *. a.Session.wall)
      (1000.0 *. a.Session.solve_wall)
  in
  header
  ::
  (match a.Session.outcome with
   | Session.Ok_done -> [ "OK" ]
   | Session.Sat m -> [ "SAT"; model_line ~num_vars:(Array.length m) m ]
   | Session.Unsat core ->
     let buf = Buffer.create 32 in
     Buffer.add_string buf "c core";
     Array.iter
       (fun l ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf (string_of_int l))
       core;
     Buffer.add_string buf " 0";
     [ "UNSAT"; Buffer.contents buf ]
   | Session.Timeout -> [ "TIMEOUT" ]
   | Session.Evicted -> [ "EVICTED" ]
   | Session.Failed msg -> [ "FAILED " ^ msg ])

(* --- the channel transport --------------------------------------------

   Answers print in request order while the engine solves out of
   order: the reader pushes one item per request into this FIFO and a
   printer domain resolves them head-first.  [Stats] and [Sync] are
   barriers by construction — the printer only reaches them after
   every earlier answer is out.  The socket transport (lib/net)
   implements the same ordering with per-connection queues inside one
   event loop instead of a printer domain. *)

type sync_point = {
  sm : Mutex.t;
  sc : Condition.t;
  mutable released : bool;
}

type item =
  | Answer of {
      seq : int;
      file : string;
      num_vars : int;
      ticket : Engine.ticket;
    }
  | S_answer of {
      seq : int;
      sid : int;
      verb : string;
      ticket : Session.ticket;
    }
  | Lines of string list
  | Stats_item
  | Sync_item of sync_point
  | Stop

type fifo = {
  q : item Queue.t;
  m : Mutex.t;
  c : Condition.t;
}

let fifo_push f item =
  Mutex.lock f.m;
  Queue.push item f.q;
  Condition.signal f.c;
  Mutex.unlock f.m

let fifo_pop f =
  Mutex.lock f.m;
  while Queue.is_empty f.q do
    Condition.wait f.c f.m
  done;
  let item = Queue.pop f.q in
  Mutex.unlock f.m;
  item

let print_lines oc lines =
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  flush oc

let printer_loop engine oc fifo () =
  let rec loop () =
    match fifo_pop fifo with
    | Stop -> ()
    | Lines ls ->
      print_lines oc ls;
      loop ()
    | Stats_item ->
      print_lines oc [ Engine.stats_json engine ];
      loop ()
    | Sync_item s ->
      print_lines oc [ "c sync" ];
      Mutex.lock s.sm;
      s.released <- true;
      Condition.broadcast s.sc;
      Mutex.unlock s.sm;
      loop ()
    | Answer { seq; file; num_vars; ticket } ->
      print_lines oc
        (answer_lines ~seq ~file ~num_vars (Engine.await engine ticket));
      loop ()
    | S_answer { seq; sid; verb; ticket } ->
      print_lines oc
        (session_answer_lines ~seq ~sid ~verb
           (Engine.session_await engine ticket));
      loop ()
  in
  loop ()

let serve ?(load = default_load_input) engine ic oc =
  let fifo =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create () }
  in
  let printer = Domain.spawn (printer_loop engine oc fifo) in
  let seq = ref 0 in
  let handle_solve ~file ~deadline ~priority =
    incr seq;
    let n = !seq in
    let t0 = Sat.Wall.now () in
    match load file with
    | exception e ->
      fifo_push fifo
        (Lines
           [ job_header ~seq:n ~file;
             Printf.sprintf "ERROR cannot load %s: %s" file
               (Printexc.to_string e) ])
    | input -> (
      Metrics.record_parse (Engine.metrics engine)
        ~latency_s:(Sat.Wall.now () -. t0);
      match Engine.submit_input engine ?deadline ?priority input with
      | Ok ticket ->
        fifo_push fifo
          (Answer
             { seq = n; file;
               num_vars = Engine.input_num_vars input; ticket })
      | Error reason ->
        fifo_push fifo
          (Lines [ job_header ~seq:n ~file; "REJECTED " ^ reason ]))
  in
  let push_session_result sid verb = function
    | Ok ticket ->
      fifo_push fifo (S_answer { seq = !seq; sid; verb; ticket })
    | Error reason ->
      fifo_push fifo
        (Lines
           [ session_header ~sid ~seq:!seq ~verb; "REJECTED " ^ reason ])
  in
  let handle_open () =
    incr seq;
    let n = !seq in
    match Engine.open_session engine with
    | Ok sid ->
      fifo_push fifo
        (Lines [ open_header ~seq:n; Printf.sprintf "OPENED %d" sid ])
    | Error reason ->
      fifo_push fifo (Lines [ open_header ~seq:n; "REJECTED " ^ reason ])
  in
  let rec read_loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      match parse_request line with
      | Quit -> ()
      | Comment -> read_loop ()
      | Bad msg ->
        fifo_push fifo (Lines [ msg ]);
        read_loop ()
      | Ping ->
        (* Ordered on this transport (one writer: the printer domain);
           the socket transport answers PONG out of band instead. *)
        fifo_push fifo (Lines [ "PONG" ]);
        read_loop ()
      | Client name ->
        (* The channel transport is single-client; the declaration is
           acknowledged for script compatibility but has no quota
           attached (quotas live in the socket front-end). *)
        fifo_push fifo (Lines [ "HELLO " ^ name ]);
        read_loop ()
      | Solve_file { file; deadline; priority } ->
        handle_solve ~file ~deadline ~priority;
        read_loop ()
      | Session_solve { sid; deadline } ->
        incr seq;
        push_session_result sid "solve"
          (Engine.submit_session_solve engine ?deadline sid);
        read_loop ()
      | Session_op { sid; verb; op } ->
        incr seq;
        push_session_result sid verb (Engine.session_submit engine sid op);
        read_loop ()
      | Open_session ->
        handle_open ();
        read_loop ()
      | Stats | Metrics_now ->
        fifo_push fifo Stats_item;
        read_loop ()
      | Sync ->
        let s =
          { sm = Mutex.create (); sc = Condition.create ();
            released = false }
        in
        fifo_push fifo (Sync_item s);
        Mutex.lock s.sm;
        while not s.released do
          Condition.wait s.sc s.sm
        done;
        Mutex.unlock s.sm;
        read_loop ())
  in
  read_loop ();
  (* EOF (and QUIT) is an implicit SYNC-and-drain: [Stop] enters the
     FIFO after every pending answer item, so the printer resolves and
     prints them all before the join — including the answer to a final
     command that arrived without a trailing newline, which
     [input_line] still delivers as a line.  The final flush covers a
     caller that closes [oc] immediately after [serve] returns. *)
  fifo_push fifo Stop;
  Domain.join printer;
  flush oc
