(** The concurrent solve service (see {!Engine} for the full
    contract).  [Server.submit]/[Server.await]/[Server.stats] are the
    typed OCaml API; {!Protocol.serve} speaks the `eda4sat serve`
    line protocol on channels; {!Job_queue}, {!Cache} and {!Metrics}
    are the building blocks, exposed for tests and reuse. *)

include Engine
module Job_queue = Job_queue
module Cache = Cache
module Metrics = Metrics
module Session = Session
module Protocol = Protocol
