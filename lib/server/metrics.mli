(** Service counters and latency percentiles.

    One mutex-guarded accumulator per server.  Counters are grouped so
    they {e reconcile}: every request that enters [submit] ends up in
    exactly one of

    - [rejected]        (queue full / bad deadline / server stopping —
                         never ran),
    - [cache_hits]      (answered at submit time from the cache),
    - [warm_hits]       (cache miss, but a warm-start snapshot for the
                         fingerprint was found: the job solves, seeded),
    - [dedup_joins]     (attached to an in-flight job's future),
    - [session_ops]     (accepted onto a session's op FIFO),
    - [submitted]       (became a new cold one-shot solve job);

    so [requests = submitted + cache_hits + warm_hits + dedup_joins +
    rejected + session_ops] holds exactly, and every submitted job eventually
    lands in exactly one of
    [solved_sat], [solved_unsat], [timeouts] or [failures], whose sum
    is [completed].  Latencies are request-level (submit to answer),
    kept in a bounded ring of the most recent {!ring_capacity}
    observations; [p50_ms]/[p95_ms] are computed over that window. *)

type t

type client_counts = {
  requests : int;  (** commands this client handed to the engine *)
  answered : int;  (** answers delivered back to this client *)
  rejected : int;  (** quota, overload or engine rejections *)
}

type snapshot = {
  submitted : int;
  completed : int;
  solved_sat : int;
  solved_unsat : int;
  timeouts : int;
  failures : int;
  rejected : int;
  cache_hits : int;
  warm_hits : int;
      (** submits that found a warm-start snapshot (counted instead of
          [submitted]) *)
  warm_seeded : int;
      (** solves that actually started from a snapshot — at most
          [warm_hits]; a warm job cancelled before it ran never
          seeds *)
  cubed : int;
      (** jobs that crossed the hardness trigger and escalated to
          cube-and-conquer (orthogonal to the request ledger: a cubed
          job still completes exactly once) *)
  cubes_solved : int;  (** cubes refuted or satisfied across those jobs *)
  cube_steals : int;
      (** cube claims by a non-owner pool worker (work stealing) *)
  dispatch_decided : int;
      (** submits a dispatch policy decided — always the exact sum
          [dispatch_direct + dispatch_simplify + dispatch_raced +
          dispatch_rejected]; each decision is counted on exactly one
          leg at submit time *)
  dispatch_direct : int;   (** decisions routed to the plain direct lane *)
  dispatch_simplify : int; (** decisions routed through simplify *)
  dispatch_raced : int;    (** decisions racing > 1 portfolio lanes *)
  dispatch_rejected : int;
      (** deadline-aware admission refusals ([REJECTED
          predicted-timeout]); these are also counted in [rejected] *)
  dispatch_infer_max_ms : float;
      (** worst per-job feature-extraction + inference cost observed *)
  dedup_joins : int;
  session_ops : int;      (** session operations accepted *)
  sessions_opened : int;
  sessions_closed : int;
  sessions_evicted : int; (** LRU or idle-TTL evictions *)
  session_solves : int;   (** [Solve] ops that reached the solver *)
  sessions_live : int;    (** sampled at snapshot time *)
  queue_depth : int;   (** sampled at snapshot time *)
  inflight : int;      (** jobs submitted but not yet completed *)
  cache_entries : int; (** sampled at snapshot time *)
  latency_count : int; (** latency observations ever recorded *)
  p50_ms : float;      (** 0 when no observations *)
  p95_ms : float;
  max_ms : float;
  parse_count : int;   (** formula-load observations ever recorded *)
  parse_p50_ms : float;
      (** over its own bounded ring of the most recent
          {!ring_capacity} loads; 0 when no observations *)
  parse_p95_ms : float;
  parse_max_ms : float;
  clients : (string * client_counts) list;
      (** per-client (tenant) counters recorded by transport
          front-ends, sorted by client id *)
}

val ring_capacity : int

val create : unit -> t

val record_rejected : t -> unit
val record_cache_hit : t -> latency_s:float -> unit
val record_dedup_join : t -> unit
val record_submitted : t -> unit

val record_warm_hit : t -> unit
(** A submit that found a warm-start snapshot for its fingerprint;
    counted {e instead of} [record_submitted] so the request
    reconciliation stays exact.  The job's completion and latency are
    recorded by {!record_completed} as usual. *)

val record_warm_seeded : t -> unit
(** A solve that actually started from a snapshot. *)

val record_cubed : t -> cubes_solved:int -> steals:int -> unit
(** One job escalated to cube-and-conquer, with its conquest's solved
    cube and steal counts. *)

val record_dispatch :
  t ->
  leg:[ `Direct | `Simplify | `Raced | `Rejected ] ->
  infer_s:float ->
  unit
(** One dispatch-policy decision, attributed to the route it chose,
    with the feature-extraction + inference wall cost. *)

val record_parse : t -> latency_s:float -> unit
(** One formula load (file read + parse) at a transport front-end;
    feeds the [parse_*] ring, not the request-latency window. *)

val record_session_op : t -> unit
(** One session operation accepted onto a session FIFO (or answered
    immediately for a retired session id). *)

val record_session_opened : t -> unit
val record_session_closed : t -> unit
val record_session_evicted : t -> unit

val record_session_solve : t -> latency_s:float -> unit
(** A session [Solve] op that reached the solver; its latency joins
    the percentile window. *)

val record_completed :
  t -> outcome:[ `Sat | `Unsat | `Timeout | `Failed ] -> latency_s:float ->
  unit
(** Completion of one submitted job; call once per job. *)

val record_join_latency : t -> latency_s:float -> unit
(** A dedup joiner's own request latency (counted in the percentile
    window, not in [completed]). *)

(** {2 Per-client counters}

    Recorded by transport front-ends (the socket server's connection
    layer) against the client id a connection declared.  They live in
    the same accumulator as the engine counters so one [snapshot]
    reconciles both views. *)

val record_client_request : t -> client:string -> unit
val record_client_answered : t -> client:string -> unit
val record_client_rejected : t -> client:string -> unit

val snapshot :
  t ->
  queue_depth:int ->
  inflight:int ->
  cache_entries:int ->
  sessions_live:int ->
  snapshot

val to_json : snapshot -> string
(** Single-line JSON object; keys match the snapshot field names. *)

val pp : Format.formatter -> snapshot -> unit
