(** Bounded, mutex-guarded priority queue — the admission-control edge
    of the solve service.

    [push] never blocks: when the queue is at capacity it answers
    [false] and the caller rejects the request with a reason
    (backpressure by refusal, not by unbounded buffering — a server
    under heavy multi-user traffic must shed load at the edge rather
    than queue without bound).  [pop] blocks the calling worker until
    an item or {!close}.

    Ordering is highest priority first, FIFO within a priority (a
    monotone sequence number breaks ties), implemented as a binary
    heap over [(priority, seq)]. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth (racy by nature — a snapshot for metrics). *)

val push : 'a t -> priority:int -> 'a -> bool
(** Enqueue; [false] when the queue is full or closed. *)

val push_force : 'a t -> priority:int -> 'a -> bool
(** Enqueue past the admission bound (the backing heap grows);
    [false] only when the queue is closed.  Reserved for items whose
    population is bounded elsewhere — the engine's session scheduling
    tokens (at most one per live session) — so client-facing
    backpressure semantics of {!push} are unaffected. *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed
    {e and} drained ([None]).  Items still queued at {!close} time are
    delivered — close is a graceful drain, not an abandon. *)

val close : 'a t -> unit
(** Stop accepting pushes and wake every blocked popper. *)

val is_closed : 'a t -> bool
