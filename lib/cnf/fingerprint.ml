type t = {
  h1 : int64;
  h2 : int64;
  num_vars : int;
  num_clauses : int;
}

(* FNV-1a, 64-bit.  Two instances with independent offset bases (the
   second is FNV's offset with its halves swapped) give ~128 bits of
   discrimination; both run over the same literal stream. *)
let fnv_prime = 0x100000001b3L
let offset1 = 0xcbf29ce484222325L
let offset2 = 0x84222325cbf29ceL

let mix h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

(* Feed a literal (any int) byte by byte, low byte first.  Literals
   are small, but feeding all 8 bytes keeps the stream unambiguous
   without a variable-length encoding. *)
let feed h lit =
  let v = Int64.of_int lit in
  let h = ref h in
  for shift = 0 to 7 do
    h := mix !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

(* Clause separator: literal 0 never occurs in a clause, so feeding it
   between clauses keeps [[1];[2]] distinct from [[1;2]]. *)
let feed_sep h = feed h 0

(* The normal form — per-clause sorted distinct literals with
   tautologies dropped, then the clause multiset deduplicated and
   sorted lexicographically — is computed in two flat scratch arrays
   (a literal stream and a clause-offset index) instead of a list of
   per-clause arrays: two allocations total regardless of clause
   count, and the same arrays serve both [of_formula] and the CSR
   store's [of_flat]. *)

let of_csr ~num_vars ~offsets ~(lits : int array) =
  let nc = Array.length offsets - 1 in
  (* Normalize every clause into [norm] (sorted, deduplicated,
     tautologies skipped); [offs.(i)]..[offs.(i+1)] delimits kept
     clause [i]. *)
  let norm = Array.make (Array.length lits) 0 in
  let offs = Array.make (nc + 1) 0 in
  let kept = ref 0 in
  let w = ref 0 in
  for i = 0 to nc - 1 do
    let cst = !w in
    for k = offsets.(i) to offsets.(i + 1) - 1 do
      let l = Array.unsafe_get lits k in
      (* Insertion into the sorted slice [cst .. !w-1], skipping
         duplicates: clauses are short, so this is the cheap sort. *)
      let j = ref !w in
      while !j > cst && Array.unsafe_get norm (!j - 1) > l do
        Array.unsafe_set norm !j (Array.unsafe_get norm (!j - 1));
        decr j
      done;
      if !j > cst && Array.unsafe_get norm (!j - 1) = l then begin
        (* duplicate: undo the shift *)
        let k' = ref !j in
        while !k' < !w do
          Array.unsafe_set norm !k' (Array.unsafe_get norm (!k' + 1));
          incr k'
        done
      end
      else begin
        Array.unsafe_set norm !j l;
        incr w
      end
    done;
    let taut = ref false in
    let j = ref cst in
    while (not !taut) && !j < !w do
      let a = norm.(!j) in
      let k = ref (!j + 1) in
      while (not !taut) && !k < !w do
        if norm.(!k) = -a then taut := true;
        incr k
      done;
      incr j
    done;
    if !taut then w := cst
    else begin
      incr kept;
      offs.(!kept) <- !w
    end
  done;
  let nkept = !kept in
  (* Lexicographic order (elementwise, ties by length) over the kept
     clauses, then adjacent-dedup while hashing. *)
  let cmp_slice i j =
    let sa = offs.(i) and ea = offs.(i + 1) in
    let sb = offs.(j) and eb = offs.(j + 1) in
    let la = ea - sa and lb = eb - sb in
    let rec go k =
      if k >= la || k >= lb then compare la lb
      else
        let c = compare norm.(sa + k) norm.(sb + k) in
        if c <> 0 then c else go (k + 1)
    in
    go 0
  in
  let idx = Array.init nkept (fun i -> i) in
  Array.sort cmp_slice idx;
  let h1 = ref (feed offset1 num_vars) and h2 = ref (feed offset2 num_vars) in
  let distinct = ref 0 in
  for r = 0 to nkept - 1 do
    let i = idx.(r) in
    if r = 0 || cmp_slice idx.(r - 1) i <> 0 then begin
      incr distinct;
      for k = offs.(i) to offs.(i + 1) - 1 do
        h1 := feed !h1 norm.(k);
        h2 := feed !h2 norm.(k)
      done;
      h1 := feed_sep !h1;
      h2 := feed_sep !h2
    end
  done;
  { h1 = !h1; h2 = !h2; num_vars; num_clauses = !distinct }

let of_flat (t : Flat.t) =
  of_csr ~num_vars:t.Flat.num_vars ~offsets:t.Flat.offsets ~lits:t.Flat.lits

let of_formula (f : Formula.t) = of_flat (Flat.of_formula f)

let equal a b =
  Int64.equal a.h1 b.h1 && Int64.equal a.h2 b.h2 && a.num_vars = b.num_vars
  && a.num_clauses = b.num_clauses

let compare a b =
  match Int64.compare a.h1 b.h1 with
  | 0 -> (
    match Int64.compare a.h2 b.h2 with
    | 0 -> (
      match Stdlib.compare a.num_vars b.num_vars with
      | 0 -> Stdlib.compare a.num_clauses b.num_clauses
      | c -> c)
    | c -> c)
  | c -> c

let hash t = Int64.to_int t.h1 land max_int

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.h1 t.h2

let pp ppf t =
  Format.fprintf ppf "%s (%d vars, %d clauses)" (to_hex t) t.num_vars
    t.num_clauses
