type t = {
  h1 : int64;
  h2 : int64;
  num_vars : int;
  num_clauses : int;
}

(* FNV-1a, 64-bit.  Two instances with independent offset bases (the
   second is FNV's offset with its halves swapped) give ~128 bits of
   discrimination; both run over the same literal stream. *)
let fnv_prime = 0x100000001b3L
let offset1 = 0xcbf29ce484222325L
let offset2 = 0x84222325cbf29ceL

let mix h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

(* Feed a literal (any int) byte by byte, low byte first.  Literals
   are small, but feeding all 8 bytes keeps the stream unambiguous
   without a variable-length encoding. *)
let feed h lit =
  let v = Int64.of_int lit in
  let h = ref h in
  for shift = 0 to 7 do
    h := mix !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

(* Clause separator: literal 0 never occurs in a clause, so feeding it
   between clauses keeps [[1];[2]] distinct from [[1;2]]. *)
let feed_sep h = feed h 0

(* Normal form of one clause: sorted distinct literals, or [None] for
   a tautology (x and -x both present — satisfied by every
   assignment, so dropping it preserves the model set). *)
let normal_clause c =
  let lits = List.sort_uniq compare (Array.to_list c) in
  let rec tautological = function
    | a :: rest -> List.mem (-a) rest || tautological rest
    | [] -> false
  in
  if tautological lits then None else Some (Array.of_list lits)

let compare_clauses a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let of_formula (f : Formula.t) =
  let clauses =
    Array.to_list f.Formula.clauses
    |> List.filter_map normal_clause
    |> List.sort_uniq compare_clauses
  in
  let h1 = ref (feed offset1 f.Formula.num_vars)
  and h2 = ref (feed offset2 f.Formula.num_vars) in
  List.iter
    (fun c ->
      Array.iter
        (fun lit ->
          h1 := feed !h1 lit;
          h2 := feed !h2 lit)
        c;
      h1 := feed_sep !h1;
      h2 := feed_sep !h2)
    clauses;
  {
    h1 = !h1;
    h2 = !h2;
    num_vars = f.Formula.num_vars;
    num_clauses = List.length clauses;
  }

let equal a b =
  Int64.equal a.h1 b.h1 && Int64.equal a.h2 b.h2 && a.num_vars = b.num_vars
  && a.num_clauses = b.num_clauses

let compare a b =
  match Int64.compare a.h1 b.h1 with
  | 0 -> (
    match Int64.compare a.h2 b.h2 with
    | 0 -> (
      match Stdlib.compare a.num_vars b.num_vars with
      | 0 -> Stdlib.compare a.num_clauses b.num_clauses
      | c -> c)
    | c -> c)
  | c -> c

let hash t = Int64.to_int t.h1 land max_int

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.h1 t.h2

let pp ppf t =
  Format.fprintf ppf "%s (%d vars, %d clauses)" (to_hex t) t.num_vars
    t.num_clauses
