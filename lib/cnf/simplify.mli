(** CNF-level preprocessing (SatELite-style, after Eén & Biere 2005 —
    the paper's reference [14]).

    The paper's framework is "not mutually exclusive with the existing
    CNF-based preprocessing strategy" and keeps Kissat's default
    preprocessing enabled; this module provides that layer for our
    solver: unit propagation to fixpoint, pure-literal elimination,
    duplicate/subsumed-clause removal, self-subsuming resolution
    (clause strengthening) and bounded variable elimination.

    Simplification is equisatisfiability-preserving; a {!reconstruct}
    function lifts a model of the simplified formula back to the
    original variables.

    With [?proof], every technique logs DRAT steps into the recorder:
    derived clauses (shrunk by unit assignment, strengthened by
    self-subsuming resolution, BVE resolvents) are [Add]ed while the
    clauses justifying them by unit propagation are still present, and
    removed clauses (satisfied, subsumed, tautological, BVE pivots,
    replaced originals) are [Delete]d afterwards, so the stream stays
    RUP-checkable.  A {!Proved_unsat} outcome seals the recorder with
    the empty clause.  Passing the same recorder on to
    [Sat.Solver.solve] over [formula s] yields one end-to-end DRAT
    proof that {!Proof.check} validates against the
    {e pre-simplification} formula. *)

type outcome =
  | Simplified of t
  | Proved_unsat
(** Preprocessing can already refute the formula. *)

and t

val formula : t -> Formula.t
(** The simplified clauses over the original variable numbering
    (eliminated/fixed variables simply no longer occur). *)

type config = {
  max_bve_clauses : int;
      (** eliminate a variable only if the resolvent count does not
          exceed its occurrence count by more than this margin *)
  max_clause_size : int;  (** skip resolvents longer than this *)
  rounds : int;           (** fixpoint iterations over all techniques *)
}

val default_config : config

val run : ?config:config -> ?proof:Proof.t -> Formula.t -> outcome
(** [?proof] receives one DRAT step per clause the simplifier derives
    or removes (see the module documentation for the ordering
    guarantees).  [Sat.Proof.t] is the same type, so the solver can
    keep appending to the same recorder. *)

val reconstruct : t -> bool array -> bool array
(** [reconstruct s model] extends a model of [formula s] to a model of
    the original formula (fixed units, pure literals and eliminated
    variables are filled in). *)

val stats : t -> string
(** One-line summary: units, pures, subsumed, strengthened,
    eliminated. *)
