exception Parse_error of string

let write_string f =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" f.Formula.num_vars
       (Formula.num_clauses f));
  Array.iter
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l);
                   Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    f.Formula.clauses;
  Buffer.contents buf

let write_file f path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string f))

(* Single-pass cursor parser: one scan over the input, no line
   splitting, no token lists — literals are decoded directly from the
   buffer (the only per-token allocation is the substring built for an
   error message).  Comment lines are those whose first
   non-(horizontal-)whitespace character is 'c' or '%', as before; the
   [bol] flag distinguishes them from the 'cnf' keyword mid-line. *)
let read_string s =
  let len = String.length s in
  let pos = ref 0 in
  let bol = ref true in
  let rec skip_ws () =
    if !pos < len then begin
      let c = String.unsafe_get s !pos in
      if c = '\n' then begin
        bol := true;
        incr pos;
        skip_ws ()
      end
      else if c = ' ' || c = '\t' || c = '\r' then begin
        incr pos;
        skip_ws ()
      end
      else if !bol && (c = 'c' || c = '%') then begin
        while !pos < len && String.unsafe_get s !pos <> '\n' do
          incr pos
        done;
        skip_ws ()
      end
      else bol := false
    end
  in
  let token_end () =
    let e = ref !pos in
    while
      !e < len
      &&
      let c = String.unsafe_get s !e in
      c <> ' ' && c <> '\t' && c <> '\r' && c <> '\n'
    do
      incr e
    done;
    !e
  in
  (* Decode the token at the cursor as a decimal int (optional sign);
     anything else — including overflow — calls [err]. *)
  let parse_int err =
    let e = token_end () in
    let i = ref !pos in
    if !i < e && (s.[!i] = '-' || s.[!i] = '+') then incr i;
    if !i >= e then err ();
    let acc = ref 0 in
    for k = !i to e - 1 do
      let c = String.unsafe_get s k in
      if c < '0' || c > '9' then err ();
      let d = Char.code c - Char.code '0' in
      if !acc > (max_int - d) / 10 then err ();
      acc := (!acc * 10) + d
    done;
    let v = if s.[!pos] = '-' then - !acc else !acc in
    pos := e;
    v
  in
  let expect_word w err =
    let e = token_end () in
    if e - !pos <> String.length w || String.sub s !pos (e - !pos) <> w then
      err ();
    pos := e
  in
  let bad_header () = raise (Parse_error "missing 'p cnf' header") in
  let bad_pline () = raise (Parse_error "bad p-line") in
  let bad_token () =
    raise (Parse_error ("bad token: " ^ String.sub s !pos (token_end () - !pos)))
  in
  skip_ws ();
  expect_word "p" bad_header;
  skip_ws ();
  expect_word "cnf" bad_header;
  skip_ws ();
  if !pos >= len then bad_header ();
  let num_vars = parse_int bad_pline in
  skip_ws ();
  if !pos >= len then bad_header ();
  let num_clauses = parse_int bad_pline in
  let clauses = ref [] in
  let nclauses = ref 0 in
  let cur = ref (Array.make 16 0) in
  let ncur = ref 0 in
  let eof = ref false in
  while not !eof do
    skip_ws ();
    if !pos >= len then eof := true
    else begin
      let l = parse_int bad_token in
      if l = 0 then begin
        clauses := Array.sub !cur 0 !ncur :: !clauses;
        incr nclauses;
        ncur := 0
      end
      else begin
        if !ncur >= Array.length !cur then begin
          let d = Array.make (2 * !ncur) 0 in
          Array.blit !cur 0 d 0 !ncur;
          cur := d
        end;
        !cur.(!ncur) <- l;
        incr ncur
      end
    end
  done;
  if !ncur <> 0 then raise (Parse_error "trailing unterminated clause");
  if !nclauses <> num_clauses then
    raise
      (Parse_error
         (Printf.sprintf "clause count mismatch: header %d, found %d"
            num_clauses !nclauses));
  try Formula.create ~num_vars (List.rev !clauses)
  with Invalid_argument m -> raise (Parse_error m)

(* ------------------------------------------------------------------ *)
(* Zero-copy ingest: the same cursor grammar over an mmapped Bigarray,
   emitting a flat CSR store ([Flat.t]) — no per-clause arrays, no
   clause list, no final [List.rev]/[Array.of_list].  Error messages
   and their precedence are byte-for-byte those of [read_string] +
   [Formula.create]: parse errors first, then "trailing unterminated
   clause", then the clause-count mismatch, then negative [num_vars],
   then the first out-of-range literal in clause order. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let buf_of_string s : buf =
  let n = String.length s in
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (String.unsafe_get s i)
  done;
  b

let parse_flat (b : buf) =
  let len = Bigarray.Array1.dim b in
  let sub_string st e =
    String.init (e - st) (fun i -> Bigarray.Array1.get b (st + i))
  in
  let pos = ref 0 in
  let bol = ref true in
  let rec skip_ws () =
    if !pos < len then begin
      let c = Bigarray.Array1.unsafe_get b !pos in
      if c = '\n' then begin
        bol := true;
        incr pos;
        skip_ws ()
      end
      else if c = ' ' || c = '\t' || c = '\r' then begin
        incr pos;
        skip_ws ()
      end
      else if !bol && (c = 'c' || c = '%') then begin
        while !pos < len && Bigarray.Array1.unsafe_get b !pos <> '\n' do
          incr pos
        done;
        skip_ws ()
      end
      else bol := false
    end
  in
  let token_end () =
    let e = ref !pos in
    while
      !e < len
      &&
      let c = Bigarray.Array1.unsafe_get b !e in
      c <> ' ' && c <> '\t' && c <> '\r' && c <> '\n'
    do
      incr e
    done;
    !e
  in
  (* Single-scan decimal decode: each byte is classified once, and the
     overflow guard is the division-free form of
     [acc * 10 + d > max_int].  [err] fires on the same inputs as the
     two-scan reference ([read_string]'s parse_int): a sign with no
     digits, any non-digit inside the token, overflow — with [pos]
     still at the token start so the error substring is identical. *)
  let max_div10 = max_int / 10 in
  let max_mod10 = max_int mod 10 in
  let parse_int err =
    let start = !pos in
    let i = ref start in
    (let c = Bigarray.Array1.unsafe_get b !i in
     if c = '-' || c = '+' then incr i);
    let first_digit = !i in
    let acc = ref 0 in
    let stop = ref false in
    let bad = ref false in
    while (not !stop) && !i < len do
      let c = Bigarray.Array1.unsafe_get b !i in
      if c >= '0' && c <= '9' then begin
        let d = Char.code c - Char.code '0' in
        if !acc > max_div10 || (!acc = max_div10 && d > max_mod10) then begin
          bad := true;
          stop := true
        end
        else begin
          acc := (!acc * 10) + d;
          incr i
        end
      end
      else begin
        stop := true;
        if c <> ' ' && c <> '\t' && c <> '\r' && c <> '\n' then bad := true
      end
    done;
    if !bad || !i = first_digit then err ();
    let v = if Bigarray.Array1.unsafe_get b start = '-' then - !acc else !acc in
    pos := !i;
    v
  in
  let expect_word w err =
    let e = token_end () in
    if e - !pos <> String.length w || sub_string !pos e <> w then err ();
    pos := e
  in
  let bad_header () = raise (Parse_error "missing 'p cnf' header") in
  let bad_pline () = raise (Parse_error "bad p-line") in
  let bad_token () =
    raise (Parse_error ("bad token: " ^ sub_string !pos (token_end ())))
  in
  skip_ws ();
  expect_word "p" bad_header;
  skip_ws ();
  expect_word "cnf" bad_header;
  skip_ws ();
  if !pos >= len then bad_header ();
  let num_vars = parse_int bad_pline in
  skip_ws ();
  if !pos >= len then bad_header ();
  let num_clauses = parse_int bad_pline in
  (* CSR accumulators: clause-end offsets (offs.(0) = 0 sentinel) and
     the literal stream, both grown by doubling — amortized O(1) per
     literal, no per-clause allocation. *)
  (* A literal token occupies at least 4 input bytes in realistic
     instances ("±dd "), so [len / 4] estimates the literal count —
     seeding capacity there skips nearly all the doubling copies
     without overshooting big inputs by more than ~2x. *)
  let lits = ref (Array.make (max 1024 (min (len / 4) (1 lsl 24))) 0) in
  let nlits = ref 0 in
  let cap = if num_clauses > 0 then min num_clauses (1 lsl 20) + 1 else 64 in
  let offs = ref (Array.make cap 0) in
  let noffs = ref 1 in
  let push_lit l =
    if !nlits >= Array.length !lits then begin
      let d = Array.make (2 * !nlits) 0 in
      Array.blit !lits 0 d 0 !nlits;
      lits := d
    end;
    !lits.(!nlits) <- l;
    incr nlits
  in
  let push_off o =
    if !noffs >= Array.length !offs then begin
      let d = Array.make (2 * !noffs) 0 in
      Array.blit !offs 0 d 0 !noffs;
      offs := d
    end;
    !offs.(!noffs) <- o;
    incr noffs
  in
  (* Clause body: a fused scanner written as mutually tail-recursive
     functions so the cursor, accumulator and sign live in parameters
     (registers), not refs — without flambda a ref is a heap cell and
     a per-byte load/store, which caps a while-loop scanner well below
     memory speed.  The grammar and every error are exactly those of
     the generic [skip_ws]/[parse_int] pair above: when the inline
     decode sees a malformed token it rewinds [pos] and replays it
     through [parse_int bad_token], which raises the reference
     message. *)
  let fail start =
    pos := start;
    ignore (parse_int bad_token);
    assert false
  in
  (* A token longer than 18 digits may overflow the [acc * 10 + d]
     fast path (10^18 < max_int on 64-bit), so it is replayed through
     [parse_int], whose per-digit guard either errors exactly like the
     reference or yields the in-range value (leading zeros).  The refs
     are synced before this is called. *)
  let slow_emit start =
    pos := start;
    let v = parse_int bad_token in
    if v = 0 then push_off !nlits else push_lit v
  in
  (* The byte before a token's first digit recovers what the loop
     would otherwise have to carry: a digit-start token is always
     preceded by whitespace (the p-line count ends in whitespace/EOF
     and [scan] only enters [num] from a delimiter), a signed token by
     its sign — so [num] carries just cursor, first-digit index and
     accumulator, and the digit loop is as lean as a bare tokenizer.
     The array cursors [k] (= [!nlits]) and [no] (= [!noffs]) ride
     along as parameters too: without flambda a ref is a heap cell,
     and per-token loads/stores there cost as much as the decode — the
     refs are only synced at EOF and around the rare slow paths. *)
  let tok_start fd =
    let c = Bigarray.Array1.unsafe_get b (fd - 1) in
    if c = '-' || c = '+' then fd - 1 else fd
  in
  let rec scan i boln k no =
    if i >= len then begin
      nlits := k;
      noffs := no;
      pos := i
    end
    else
      let c = Bigarray.Array1.unsafe_get b i in
      if c = ' ' || c = '\t' || c = '\r' then scan (i + 1) boln k no
      else if c = '\n' then scan (i + 1) true k no
      else if boln && (c = 'c' || c = '%') then comment (i + 1) k no
      else if c >= '0' && c <= '9' then
        num (i + 1) i (Char.code c - Char.code '0') k no
      else if c = '-' || c = '+' then begin
        let j = i + 1 in
        if j >= len then fail i
        else
          let c1 = Bigarray.Array1.unsafe_get b j in
          if c1 >= '0' && c1 <= '9' then
            num (j + 1) j (Char.code c1 - Char.code '0') k no
          else fail i
      end
      else fail i
  and comment i k no =
    if i >= len then begin
      nlits := k;
      noffs := no;
      pos := i
    end
    else if Bigarray.Array1.unsafe_get b i <> '\n' then comment (i + 1) k no
    else scan (i + 1) true k no
  and num i fd acc k no =
    (* invariant: [b.(fd)] is a digit, [acc] holds the digits up to
       [i]; no per-digit overflow guard — [emit_then] replays any
       suspiciously long token *)
    if i >= len then emit_then i fd acc k no false
    else
      let c = Bigarray.Array1.unsafe_get b i in
      if c >= '0' && c <= '9' then
        num (i + 1) fd ((acc * 10) + Char.code c - 48) k no
      else if c = ' ' || c = '\t' || c = '\r' then emit_then i fd acc k no false
      else if c = '\n' then emit_then i fd acc k no true
      else fail (tok_start fd)
  and emit_then i fd acc k no nl =
    (* emit the token, then continue past its (already classified)
       delimiter; at EOF the continuation lands in [scan]'s first
       branch, which syncs the refs *)
    if i - fd <= 18 then
      if acc = 0 then begin
        let offs_arr = !offs in
        if no < Array.length offs_arr then begin
          Array.unsafe_set offs_arr no k;
          scan (i + 1) nl k (no + 1)
        end
        else begin
          nlits := k;
          noffs := no;
          push_off k;
          scan (i + 1) nl k !noffs
        end
      end
      else begin
        let v =
          if Bigarray.Array1.unsafe_get b (fd - 1) = '-' then -acc else acc
        in
        let arr = !lits in
        if k < Array.length arr then begin
          Array.unsafe_set arr k v;
          scan (i + 1) nl (k + 1) no
        end
        else begin
          nlits := k;
          noffs := no;
          push_lit v;
          scan (i + 1) nl !nlits no
        end
      end
    else begin
      nlits := k;
      noffs := no;
      slow_emit (tok_start fd);
      scan (i + 1) nl !nlits !noffs
    end
  in
  scan !pos !bol !nlits !noffs;
  let nclauses = !noffs - 1 in
  if !nlits <> !offs.(nclauses) then
    raise (Parse_error "trailing unterminated clause");
  if nclauses <> num_clauses then
    raise
      (Parse_error
         (Printf.sprintf "clause count mismatch: header %d, found %d"
            num_clauses nclauses));
  if num_vars < 0 then raise (Parse_error "Formula.create: negative num_vars");
  let arr = !lits in
  for k = 0 to !nlits - 1 do
    let l = Array.unsafe_get arr k in
    if l > num_vars || l < -num_vars then
      raise
        (Parse_error
           (Printf.sprintf "Formula: literal %d out of range (1..%d)" l
              num_vars))
  done;
  {
    Flat.num_vars;
    offsets = Array.sub !offs 0 (nclauses + 1);
    lits = Array.sub !lits 0 !nlits;
  }

let read_flat_string s = parse_flat (buf_of_string s)

(* Map the file when it is a plain non-empty regular file; fall back
   to a channel slurp otherwise (pipes, /proc files, empty files — a
   zero-length mapping is an error on some systems) so error behaviour
   for odd paths matches the old reader.  The channel is opened with
   [open_in] first so missing-file errors stay the familiar
   [Sys_error]. *)
let read_flat_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fd = Unix.descr_of_in_channel ic in
      let st = Unix.fstat fd in
      let slurp () =
        buf_of_string (really_input_string ic (in_channel_length ic))
      in
      let b =
        if st.Unix.st_kind = Unix.S_REG && st.Unix.st_size > 0 then
          try
            Bigarray.array1_of_genarray
              (Unix.map_file fd Bigarray.char Bigarray.c_layout false
                 [| st.Unix.st_size |])
          with Unix.Unix_error _ | Sys_error _ -> slurp ()
        else slurp ()
      in
      parse_flat b)

let read_file path = Flat.to_formula (read_flat_file path)
