exception Parse_error of string

let write_string f =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" f.Formula.num_vars
       (Formula.num_clauses f));
  Array.iter
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l);
                   Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    f.Formula.clauses;
  Buffer.contents buf

let write_file f path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string f))

(* Single-pass cursor parser: one scan over the input, no line
   splitting, no token lists — literals are decoded directly from the
   buffer (the only per-token allocation is the substring built for an
   error message).  Comment lines are those whose first
   non-(horizontal-)whitespace character is 'c' or '%', as before; the
   [bol] flag distinguishes them from the 'cnf' keyword mid-line. *)
let read_string s =
  let len = String.length s in
  let pos = ref 0 in
  let bol = ref true in
  let rec skip_ws () =
    if !pos < len then begin
      let c = String.unsafe_get s !pos in
      if c = '\n' then begin
        bol := true;
        incr pos;
        skip_ws ()
      end
      else if c = ' ' || c = '\t' || c = '\r' then begin
        incr pos;
        skip_ws ()
      end
      else if !bol && (c = 'c' || c = '%') then begin
        while !pos < len && String.unsafe_get s !pos <> '\n' do
          incr pos
        done;
        skip_ws ()
      end
      else bol := false
    end
  in
  let token_end () =
    let e = ref !pos in
    while
      !e < len
      &&
      let c = String.unsafe_get s !e in
      c <> ' ' && c <> '\t' && c <> '\r' && c <> '\n'
    do
      incr e
    done;
    !e
  in
  (* Decode the token at the cursor as a decimal int (optional sign);
     anything else — including overflow — calls [err]. *)
  let parse_int err =
    let e = token_end () in
    let i = ref !pos in
    if !i < e && (s.[!i] = '-' || s.[!i] = '+') then incr i;
    if !i >= e then err ();
    let acc = ref 0 in
    for k = !i to e - 1 do
      let c = String.unsafe_get s k in
      if c < '0' || c > '9' then err ();
      let d = Char.code c - Char.code '0' in
      if !acc > (max_int - d) / 10 then err ();
      acc := (!acc * 10) + d
    done;
    let v = if s.[!pos] = '-' then - !acc else !acc in
    pos := e;
    v
  in
  let expect_word w err =
    let e = token_end () in
    if e - !pos <> String.length w || String.sub s !pos (e - !pos) <> w then
      err ();
    pos := e
  in
  let bad_header () = raise (Parse_error "missing 'p cnf' header") in
  let bad_pline () = raise (Parse_error "bad p-line") in
  let bad_token () =
    raise (Parse_error ("bad token: " ^ String.sub s !pos (token_end () - !pos)))
  in
  skip_ws ();
  expect_word "p" bad_header;
  skip_ws ();
  expect_word "cnf" bad_header;
  skip_ws ();
  if !pos >= len then bad_header ();
  let num_vars = parse_int bad_pline in
  skip_ws ();
  if !pos >= len then bad_header ();
  let num_clauses = parse_int bad_pline in
  let clauses = ref [] in
  let nclauses = ref 0 in
  let cur = ref (Array.make 16 0) in
  let ncur = ref 0 in
  let eof = ref false in
  while not !eof do
    skip_ws ();
    if !pos >= len then eof := true
    else begin
      let l = parse_int bad_token in
      if l = 0 then begin
        clauses := Array.sub !cur 0 !ncur :: !clauses;
        incr nclauses;
        ncur := 0
      end
      else begin
        if !ncur >= Array.length !cur then begin
          let d = Array.make (2 * !ncur) 0 in
          Array.blit !cur 0 d 0 !ncur;
          cur := d
        end;
        !cur.(!ncur) <- l;
        incr ncur
      end
    end
  done;
  if !ncur <> 0 then raise (Parse_error "trailing unterminated clause");
  if !nclauses <> num_clauses then
    raise
      (Parse_error
         (Printf.sprintf "clause count mismatch: header %d, found %d"
            num_clauses !nclauses));
  try Formula.create ~num_vars (List.rev !clauses)
  with Invalid_argument m -> raise (Parse_error m)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      read_string (really_input_string ic len))
