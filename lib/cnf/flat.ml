type t = {
  num_vars : int;
  offsets : int array;
  lits : int array;
}

let num_clauses t = Array.length t.offsets - 1
let num_literals t = t.offsets.(num_clauses t)
let clause_size t i = t.offsets.(i + 1) - t.offsets.(i)

let validate t =
  let n = Array.length t.offsets in
  if n < 1 || t.offsets.(0) <> 0 then invalid_arg "Flat: bad offsets";
  for i = 1 to n - 1 do
    if t.offsets.(i) < t.offsets.(i - 1) then invalid_arg "Flat: bad offsets"
  done;
  if t.offsets.(n - 1) <> Array.length t.lits then
    invalid_arg "Flat: bad offsets";
  if t.num_vars < 0 then invalid_arg "Formula.create: negative num_vars";
  Array.iter
    (fun l ->
      if l = 0 || abs l > t.num_vars then
        invalid_arg
          (Printf.sprintf "Formula: literal %d out of range (1..%d)" l
             t.num_vars))
    t.lits

let of_formula (f : Formula.t) =
  let nc = Array.length f.Formula.clauses in
  let offsets = Array.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length f.Formula.clauses.(i)
  done;
  let lits = Array.make offsets.(nc) 0 in
  for i = 0 to nc - 1 do
    Array.blit f.Formula.clauses.(i) 0 lits offsets.(i)
      (Array.length f.Formula.clauses.(i))
  done;
  { num_vars = f.Formula.num_vars; offsets; lits }

let to_formula t =
  let nc = num_clauses t in
  let clauses =
    Array.init nc (fun i ->
        Array.sub t.lits t.offsets.(i) (clause_size t i))
  in
  { Formula.num_vars = t.num_vars; clauses }

let eval t assignment =
  if Array.length assignment <> t.num_vars then
    invalid_arg "Formula.eval: assignment size mismatch";
  let nc = num_clauses t in
  let sat_clause i =
    let stop = t.offsets.(i + 1) in
    let rec go k =
      if k >= stop then false
      else
        let l = Array.unsafe_get t.lits k in
        let v = Array.unsafe_get assignment (abs l - 1) in
        if (if l > 0 then v else not v) then true else go (k + 1)
    in
    go t.offsets.(i)
  in
  let rec all i = if i >= nc then true else sat_clause i && all (i + 1) in
  all 0

let pp ppf t =
  Format.fprintf ppf "p cnf %d %d@." t.num_vars (num_clauses t);
  for i = 0 to num_clauses t - 1 do
    for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
      Format.fprintf ppf "%d " t.lits.(k)
    done;
    Format.fprintf ppf "0@."
  done
