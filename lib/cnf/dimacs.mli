(** DIMACS CNF reading and writing. *)

exception Parse_error of string

val write_string : Formula.t -> string
val write_file : Formula.t -> string -> unit

val read_string : string -> Formula.t
(** Accepts comment lines, a ["p cnf"] header and zero-terminated
    clauses possibly spanning lines.  @raise Parse_error otherwise. *)

val read_flat_string : string -> Flat.t
(** Same grammar and error messages as {!read_string}, but emits the
    flat CSR store directly — no per-clause arrays or clause lists. *)

val read_flat_file : string -> Flat.t
(** {!read_flat_string} over an [Unix.map_file]-mapped view of the
    file: bytes go straight from the page cache into the CSR arrays.
    Falls back to a channel read for non-regular or empty files.
    Missing files raise [Sys_error] as before. *)

val read_file : string -> Formula.t
(** [read_flat_file] followed by {!Flat.to_formula}; errors are
    byte-for-byte those of the string reader. *)
