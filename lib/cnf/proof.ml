type step = Add of int array | Delete of int array

type t = {
  mutable rev_steps : step list;
  mutable count : int;
  mutable sealed : bool;
  record_deletions : bool;
  lock : Mutex.t;
}

let create ?(record_deletions = true) () =
  { rev_steps = []; count = 0; sealed = false; record_deletions;
    lock = Mutex.create () }

let locked p f =
  Mutex.lock p.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.lock) f

let add p c =
  locked p (fun () ->
      if not p.sealed then begin
        p.rev_steps <- Add (Array.copy c) :: p.rev_steps;
        p.count <- p.count + 1;
        if Array.length c = 0 then p.sealed <- true
      end)

let delete p c =
  locked p (fun () ->
      if p.record_deletions && not p.sealed then begin
        p.rev_steps <- Delete (Array.copy c) :: p.rev_steps;
        p.count <- p.count + 1
      end)

let steps p = locked p (fun () -> List.rev p.rev_steps)
let num_steps p = locked p (fun () -> p.count)
let sealed p = locked p (fun () -> p.sealed)

let replay ~into p =
  List.iter
    (function Add c -> add into c | Delete c -> delete into c)
    (steps p)

let to_string p =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      let lits =
        match s with
        | Add c -> c
        | Delete c ->
          Buffer.add_string buf "d ";
          c
      in
      Array.iter
        (fun l ->
          Buffer.add_string buf (string_of_int l);
          Buffer.add_char buf ' ')
        lits;
      Buffer.add_string buf "0\n")
    (steps p);
  Buffer.contents buf

(* Single-pass cursor parser (same approach as {!Cnf.Dimacs}): literals
   are decoded straight out of the buffer, one growable scratch array
   holds the clause being read, and the only transient allocations are
   the clause arrays themselves. *)
let of_string s =
  let p = create () in
  let len = String.length s in
  let pos = ref 0 in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let buf = ref (Array.make 16 0) in
  while !pos < len do
    let start = !pos in
    let eol = ref start in
    while !eol < len && String.unsafe_get s !eol <> '\n' do
      incr eol
    done;
    pos := !eol + 1;
    let a = ref start and b = ref !eol in
    while !a < !b && is_ws s.[!a] do
      incr a
    done;
    while !b > !a && is_ws s.[!b - 1] do
      decr b
    done;
    if !a < !b then begin
      let deletion = s.[!a] = 'd' && !b - !a > 1 in
      if deletion then incr a;
      let n = ref 0 in
      let i = ref !a in
      while !i < !b do
        while !i < !b && is_ws s.[!i] do
          incr i
        done;
        if !i < !b then begin
          let t0 = !i in
          let sign =
            if s.[!i] = '-' then begin
              incr i;
              -1
            end
            else begin
              if s.[!i] = '+' then incr i;
              1
            end
          in
          let acc = ref 0 in
          let ok = ref (!i < !b && not (is_ws s.[!i])) in
          while !ok && !i < !b && not (is_ws s.[!i]) do
            let c = s.[!i] in
            if c < '0' || c > '9' then ok := false
            else begin
              acc := (!acc * 10) + (Char.code c - Char.code '0');
              incr i
            end
          done;
          if not !ok then begin
            let te = ref t0 in
            while !te < !b && not (is_ws s.[!te]) do
              incr te
            done;
            failwith ("Proof.of_string: " ^ String.sub s t0 (!te - t0))
          end;
          if !n >= Array.length !buf then begin
            let d = Array.make (2 * !n) 0 in
            Array.blit !buf 0 d 0 !n;
            buf := d
          end;
          (!buf).(!n) <- sign * !acc;
          incr n
        end
      done;
      if !n = 0 || (!buf).(!n - 1) <> 0 then
        failwith "Proof.of_string: missing terminating 0";
      let c = Array.sub !buf 0 (!n - 1) in
      if deletion then delete p c else add p c
    end
  done;
  p

(* --- RUP checking ---------------------------------------------------- *)

(* Assignment: 0 unassigned, 1 true, -1 false (indexed by variable). *)
let lit_value assignment l =
  let v = assignment.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

let assign assignment l = assignment.(abs l) <- (if l > 0 then 1 else -1)

(* Does unit propagation over [clauses] starting from the negation of
   [c] derive a conflict? *)
let rup clauses num_vars c =
  let assignment = Array.make (num_vars + 1) 0 in
  let conflict = ref false in
  Array.iter
    (fun l ->
      match lit_value assignment (-l) with
      | -1 -> conflict := true (* c contains complementary literals *)
      | _ -> assign assignment (-l))
    c;
  let progress = ref true in
  while !progress && not !conflict do
    progress := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] and satisfied = ref false in
          Array.iter
            (fun l ->
              match lit_value assignment l with
              | 1 -> satisfied := true
              | 0 -> unassigned := l :: !unassigned
              | _ -> ())
            clause;
          if not !satisfied then
            (* Duplicate literals within a clause must not hide a unit. *)
            match List.sort_uniq compare !unassigned with
            | [] -> conflict := true
            | [ l ] ->
              assign assignment l;
              progress := true
            | _ -> ()
        end)
      clauses
  done;
  !conflict

let clause_key c =
  let c = Array.copy c in
  Array.sort compare c;
  c

let check f p =
  let num_vars =
    List.fold_left
      (fun acc s ->
        let c = match s with Add c | Delete c -> c in
        Array.fold_left (fun acc l -> max acc (abs l)) acc c)
      f.Formula.num_vars (steps p)
  in
  let db : (int array, int array) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter (fun c -> Hashtbl.add db (clause_key c) c) f.Formula.clauses;
  let live () = Hashtbl.fold (fun _ c acc -> c :: acc) db [] in
  let derived_empty = ref (Formula.is_trivially_unsat f) in
  let ok = ref true in
  List.iter
    (fun s ->
      if !ok then
        match s with
        | Add c ->
          if rup (live ()) num_vars c then begin
            Hashtbl.add db (clause_key c) c;
            if Array.length c = 0 then derived_empty := true
          end
          else ok := false
        | Delete c ->
          let k = clause_key c in
          if Hashtbl.mem db k then Hashtbl.remove db k else ok := false)
    (steps p);
  !ok && !derived_empty
