(** Canonical CNF fingerprints for result caching.

    The solve service ({!Server} in [lib/server]) keys its result
    cache by formula {e content}, so a resubmitted instance — or the
    same instance under a different file name, with its clauses in a
    different order, or with duplicated literals — hits the cache
    instead of re-solving.  Two formulas receive equal fingerprints
    exactly when they have the same {e sorted-clause normal form}:

    - within each clause, duplicate literals are removed and the
      remaining literals sorted;
    - tautological clauses (containing both [l] and [-l]) are dropped;
    - the clause multiset is deduplicated and sorted lexicographically;
    - [num_vars] is part of the normal form.

    Equal normal forms have {e identical model sets} over their
    (equal) variable ranges: every transformation above preserves the
    formula's models, not merely satisfiability.  A cached [Sat] model
    for one formula therefore satisfies any other formula with the
    same fingerprint — the cache re-checks this with
    {!Formula.eval} before serving a hit, making a hash collision
    detectable rather than silently wrong.

    The fingerprint itself is two independent 64-bit FNV-1a hashes of
    the normal form (plus the variable/clause counts, compared
    exactly), so an accidental collision needs ~128 matching bits;
    the normal form is hashed streaming and never retained. *)

type t = {
  h1 : int64;  (** FNV-1a over the normal-form literal stream *)
  h2 : int64;  (** same stream, independent offset/prime *)
  num_vars : int;
  num_clauses : int;  (** clauses in the {e normal form} (after
                          dropping tautologies and duplicates) *)
}

val of_formula : Formula.t -> t
(** Fingerprint a formula.  Cost is one sort of the clause index plus
    a sort per clause — linearithmic in the literal count; the normal
    form is built in two flat scratch arrays, not a clause list. *)

val of_flat : Flat.t -> t
(** Fingerprint a flat CSR store, streaming over its arrays.
    Guaranteed equal to [of_formula (Flat.to_formula t)] — the solve
    service relies on this so flat-ingested and formula-ingested
    submissions of the same CNF share cache entries. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** A [Hashtbl]-compatible hash (folds [h1]). *)

val to_hex : t -> string
(** 32 hex digits: [h1] then [h2] — stable across runs, suitable for
    logs and the serve protocol's [c fingerprint=...] comments. *)

val pp : Format.formatter -> t -> unit
