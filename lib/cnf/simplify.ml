(* SatELite-style preprocessing.  The working state is a mutable clause
   store (None = deleted) plus an extension stack recording enough
   information to lift models back to the original variables. *)

type extension =
  | Fixed of int * bool (* variable, value (units and pure literals) *)
  | Eliminated of int * int array list
    (* variable, the original clauses containing +v: the witness rule
       sets v true iff one of them has all other literals false. *)

type t = {
  num_vars : int;
  mutable store : int array option array;
  mutable extensions : extension list; (* LIFO *)
  proof : Proof.t option;
  (* statistics *)
  mutable n_units : int;
  mutable n_pures : int;
  mutable n_subsumed : int;
  mutable n_strengthened : int;
  mutable n_eliminated : int;
}

(* Every technique below keeps the DRAT stream RUP-checkable by
   ordering its steps: a derived clause is [Add]ed while the clauses
   that justify it by unit propagation are still in the checker's
   database, and only then are the originals [Delete]d.  Deletions are
   unconditional in DRAT, so removing satisfied, subsumed or
   tautological clauses needs no justification. *)
let log_add s c = match s.proof with Some p -> Proof.add p c | None -> ()

let log_delete s c =
  match s.proof with Some p -> Proof.delete p c | None -> ()

type outcome = Simplified of t | Proved_unsat

type config = {
  max_bve_clauses : int;
  max_clause_size : int;
  rounds : int;
}

let default_config = { max_bve_clauses = 0; max_clause_size = 12; rounds = 3 }

exception Unsat_found

let live_clauses s =
  Array.to_list s.store |> List.filter_map Fun.id

let formula s =
  { Formula.num_vars = s.num_vars; clauses = Array.of_list (live_clauses s) }

(* --- assignment of a literal throughout the store ------------------- *)

(* Set lit true: delete satisfied clauses, shrink clauses containing
   the negation.  Detects emptied clauses.

   Proof order: collect first, log the shrunk replacements while their
   RUP justification (the unit clause [lit] and the unshrunk
   originals) is still in the database, then apply the deletions.
   Pure-literal assignments never shrink anything (the negation does
   not occur), so they only produce unconditional deletions. *)
let assign_literal s lit =
  let shrinks = ref [] (* (index, original, shrunk), reverse order *)
  and satisfied = ref [] in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some clause ->
        if Array.exists (( = ) lit) clause then
          satisfied := (i, clause) :: !satisfied
        else if Array.exists (( = ) (-lit)) clause then
          let shrunk =
            Array.of_list
              (List.filter (( <> ) (-lit)) (Array.to_list clause))
          in
          shrinks := (i, clause, shrunk) :: !shrinks)
    s.store;
  List.iter (fun (_, _, shrunk) -> log_add s shrunk) (List.rev !shrinks);
  if List.exists (fun (_, _, shrunk) -> Array.length shrunk = 0) !shrinks
  then raise Unsat_found;
  List.iter
    (fun (i, clause) ->
      log_delete s clause;
      s.store.(i) <- None)
    !satisfied;
  List.iter
    (fun (i, clause, shrunk) ->
      log_delete s clause;
      s.store.(i) <- Some shrunk)
    !shrinks

(* --- techniques ------------------------------------------------------ *)

let propagate_units s =
  let changed = ref false in
  let continue = ref true in
  while !continue do
    continue := false;
    Array.iter
      (function
        | Some [| l |] ->
          s.n_units <- s.n_units + 1;
          s.extensions <- Fixed (abs l, l > 0) :: s.extensions;
          assign_literal s l;
          changed := true;
          continue := true
        | Some _ | None -> ())
      s.store
  done;
  !changed

let pure_literals s =
  let pos = Array.make (s.num_vars + 1) false in
  let neg = Array.make (s.num_vars + 1) false in
  Array.iter
    (function
      | None -> ()
      | Some c ->
        Array.iter
          (fun l -> if l > 0 then pos.(l) <- true else neg.(-l) <- true)
          c)
    s.store;
  let changed = ref false in
  for v = 1 to s.num_vars do
    if pos.(v) && not neg.(v) then begin
      s.n_pures <- s.n_pures + 1;
      s.extensions <- Fixed (v, true) :: s.extensions;
      assign_literal s v;
      changed := true
    end
    else if neg.(v) && not pos.(v) then begin
      s.n_pures <- s.n_pures + 1;
      s.extensions <- Fixed (v, false) :: s.extensions;
      assign_literal s (-v);
      changed := true
    end
  done;
  !changed

(* Sorted-array subset test. *)
let subset small big =
  let ls = Array.length small and lb = Array.length big in
  let rec go i j =
    if i >= ls then true
    else if j >= lb then false
    else if small.(i) = big.(j) then go (i + 1) (j + 1)
    else if small.(i) > big.(j) then go i (j + 1)
    else false
  in
  ls <= lb && go 0 0

let sorted c =
  let c = Array.copy c in
  Array.sort compare c;
  c

(* Occurrence lists: literal -> indices of live clauses containing it. *)
let occurrences s =
  let occ : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some clause ->
        Array.iter
          (fun l ->
            Hashtbl.replace occ l
              (i :: Option.value (Hashtbl.find_opt occ l) ~default:[]))
          clause)
    s.store;
  occ

let least_occurring occ clause =
  Array.fold_left
    (fun (best, n) l ->
      let k = List.length (Option.value (Hashtbl.find_opt occ l) ~default:[]) in
      if k < n then (l, k) else (best, n))
    (clause.(0), max_int)
    clause
  |> fst

let subsumption s =
  let occ = occurrences s in
  let changed = ref false in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some clause ->
        if Array.length clause >= 1 then begin
          let cs = sorted clause in
          (* Candidates: clauses sharing the rarest literal. *)
          let pivot = least_occurring occ clause in
          List.iter
            (fun j ->
              if j <> i then
                match s.store.(j) with
                | None -> ()
                | Some other ->
                  if
                    Array.length clause <= Array.length other
                    && subset cs (sorted other)
                  then begin
                    log_delete s other;
                    s.store.(j) <- None;
                    s.n_subsumed <- s.n_subsumed + 1;
                    changed := true
                  end)
            (Option.value (Hashtbl.find_opt occ pivot) ~default:[])
        end)
    s.store;
  !changed

(* Self-subsuming resolution: if C = (l, rest) and D with (-l) satisfies
   D \ {-l} subset-of rest, then C can drop l. *)
let strengthen s =
  let occ = occurrences s in
  let changed = ref false in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some clause ->
        let n = Array.length clause in
        if n >= 2 then
          Array.iter
            (fun l ->
              match s.store.(i) with
              | None -> ()
              | Some current when Array.exists (( = ) l) current ->
                let rest =
                  sorted
                    (Array.of_list
                       (List.filter (( <> ) l) (Array.to_list current)))
                in
                let ds =
                  Option.value (Hashtbl.find_opt occ (-l)) ~default:[]
                in
                List.iter
                  (fun j ->
                    if j <> i then
                      match (s.store.(i), s.store.(j)) with
                      | Some cur, Some d when Array.exists (( = ) l) cur ->
                        let d_rest =
                          sorted
                            (Array.of_list
                               (List.filter (( <> ) (-l)) (Array.to_list d)))
                        in
                        if subset d_rest rest then begin
                          let shrunk =
                            Array.of_list
                              (List.filter (( <> ) l) (Array.to_list cur))
                          in
                          (* RUP while both [cur] and [d] are present:
                             negating [shrunk] makes [d] propagate
                             [-l] and then falsifies [cur]. *)
                          log_add s shrunk;
                          log_delete s cur;
                          s.store.(i) <- Some shrunk;
                          s.n_strengthened <- s.n_strengthened + 1;
                          changed := true;
                          if Array.length shrunk = 0 then
                            raise Unsat_found
                        end
                      | _ -> ())
                  ds
              | Some _ -> ())
            clause)
    s.store;
  !changed

let resolve_on v a b =
  (* Resolvent of a (contains +v) and b (contains -v); None if
     tautological. *)
  let lits = Hashtbl.create 8 in
  let taut = ref false in
  let add l =
    if l <> v && l <> -v then begin
      if Hashtbl.mem lits (-l) then taut := true;
      Hashtbl.replace lits l ()
    end
  in
  Array.iter add a;
  Array.iter add b;
  if !taut then None
  else Some (Array.of_list (Hashtbl.fold (fun l () acc -> l :: acc) lits []))

let eliminate_variables cfg s =
  let changed = ref false in
  for v = 1 to s.num_vars do
    let occ = ref [] and nocc = ref [] in
    Array.iteri
      (fun i c ->
        match c with
        | None -> ()
        | Some clause ->
          let has_pos = Array.exists (( = ) v) clause
          and has_neg = Array.exists (( = ) (-v)) clause in
          (* Both polarities = tautology w.r.t. v; never resolve on it. *)
          if has_pos && not has_neg then occ := i :: !occ
          else if has_neg && not has_pos then nocc := i :: !nocc)
      s.store;
    let np = List.length !occ and nn = List.length !nocc in
    if (np > 0 || nn > 0) && np * nn <= 64 then begin
      (* Build non-tautological resolvents; abort if too many/large. *)
      let resolvents = ref [] and ok = ref true in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if !ok then
                match (s.store.(i), s.store.(j)) with
                | Some a, Some b -> (
                  match resolve_on v a b with
                  | None -> ()
                  | Some r ->
                    if Array.length r > cfg.max_clause_size then ok := false
                    else resolvents := r :: !resolvents)
                | _ -> ())
            !nocc)
        !occ;
      if
        !ok
        && List.length !resolvents <= np + nn + cfg.max_bve_clauses
        && np + nn > 0
      then begin
        (* Record the +v clauses for the reconstruction witness. *)
        let pos_clauses =
          List.filter_map (fun i -> s.store.(i)) !occ
        in
        (* Each resolvent is RUP against its two parents (negating it
           unit-propagates v from one and -v from the other), so log
           all additions before deleting any pivot clause. *)
        List.iter (fun r -> log_add s r) !resolvents;
        List.iter
          (fun i ->
            match s.store.(i) with
            | Some c -> log_delete s c
            | None -> ())
          (!occ @ !nocc);
        List.iter (fun i -> s.store.(i) <- None) (!occ @ !nocc);
        let fresh = Array.of_list (List.map Option.some !resolvents) in
        s.store <- Array.append s.store fresh;
        s.extensions <- Eliminated (v, pos_clauses) :: s.extensions;
        s.n_eliminated <- s.n_eliminated + 1;
        changed := true
      end
    end
  done;
  !changed

(* Clauses containing a literal and its negation are always true. *)
let remove_tautologies s =
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some clause ->
        let taut =
          Array.exists
            (fun l -> Array.exists (( = ) (-l)) clause)
            clause
        in
        if taut then begin
          log_delete s clause;
          s.store.(i) <- None
        end)
    s.store

let run ?(config = default_config) ?proof f =
  let s =
    {
      num_vars = f.Formula.num_vars;
      store = Array.map Option.some f.Formula.clauses;
      extensions = [];
      proof;
      n_units = 0;
      n_pures = 0;
      n_subsumed = 0;
      n_strengthened = 0;
      n_eliminated = 0;
    }
  in
  try
    if Array.exists (fun c -> c = Some [||]) s.store then begin
      (* The input already contains the empty clause; adding it seals
         the recorder so [Proved_unsat] carries a complete proof. *)
      log_add s [||];
      raise Unsat_found
    end;
    remove_tautologies s;
    let continue = ref true and round = ref 0 in
    while !continue && !round < config.rounds do
      incr round;
      let c1 = propagate_units s in
      let c2 = pure_literals s in
      let c3 = subsumption s in
      let c4 = strengthen s in
      let c5 = propagate_units s in
      let c6 = eliminate_variables config s in
      continue := c1 || c2 || c3 || c4 || c5 || c6
    done;
    Simplified s
  with Unsat_found -> Proved_unsat

let reconstruct s model =
  let values = Array.make (s.num_vars + 1) false in
  Array.iteri (fun i v -> if i < s.num_vars then values.(i + 1) <- v) model;
  let lit_true l = if l > 0 then values.(l) else not values.(-l) in
  List.iter
    (fun ext ->
      match ext with
      | Fixed (v, value) -> values.(v) <- value
      | Eliminated (v, pos_clauses) ->
        let forced =
          List.exists
            (fun clause ->
              Array.for_all
                (fun l -> l = v || not (lit_true l))
                clause)
            pos_clauses
        in
        values.(v) <- forced)
    s.extensions;
  Array.init s.num_vars (fun i -> values.(i + 1))

let stats s =
  Printf.sprintf
    "simplify: %d units, %d pures, %d subsumed, %d strengthened, %d eliminated"
    s.n_units s.n_pures s.n_subsumed s.n_strengthened s.n_eliminated
