(** Flat CSR clause store: the zero-copy ingest target.

    A CNF as two int arrays — [offsets] (one entry per clause plus a
    final end-sentinel) and [lits] (all DIMACS literals concatenated
    in clause order) — instead of {!Formula.t}'s array-of-arrays.
    Clause [i] occupies [lits.(offsets.(i)) .. lits.(offsets.(i+1)-1)].

    This is the shape the mmap DIMACS parser
    ({!Dimacs.read_flat_file}) emits without building any intermediate
    lists, the shape {!Fingerprint.of_flat} hashes streaming, and the
    shape [Sat.Solver.solve_flat] loads straight into its clause arena
    with zero per-clause allocation.  The representation is exposed
    (like {!Formula.t}) so those consumers can walk the arrays
    directly. *)

type t = {
  num_vars : int;
  offsets : int array;
      (** length [num_clauses + 1]; [offsets.(0) = 0], ascending;
          final entry is [Array.length lits] *)
  lits : int array;  (** DIMACS literals (non-zero), clause-major *)
}

val num_clauses : t -> int
val num_literals : t -> int
val clause_size : t -> int -> int

val validate : t -> unit
(** Check the CSR invariants and literal ranges.
    @raise Invalid_argument with the same messages as
    {!Formula.create} on out-of-range literals.  Parser output is
    already validated; use this for hand-built stores. *)

val of_formula : Formula.t -> t
val to_formula : t -> Formula.t

val eval : t -> bool array -> bool
(** Same contract as {!Formula.eval}: [assignment] has exactly
    [num_vars] entries, result is whether every clause is satisfied. *)

val pp : Format.formatter -> t -> unit
