(** DRAT proof logging and checking.

    When given a recorder, the solver logs every learned clause
    (addition) and every removed learned clause (deletion) in DIMACS
    literals; an unsatisfiability result ends with the empty clause.
    {!check} replays the proof against the original formula with a
    reverse-unit-propagation (RUP) test per addition — CDCL learned
    clauses are always RUP, so this validates our solver's refutations
    end-to-end.

    Recorders are safe to share across domains: [add] and [delete] are
    serialized by an internal mutex, so the {e portfolio} can let every
    racing worker append into one recorder.  Such a merged log stays
    RUP-checkable because RUP is monotone in the clause database (an
    addition that unit-propagates to conflict against a subset of the
    accumulated clauses still does against the whole set), every worker
    logs its own learned clauses in learn order, and a clause is always
    logged before it is exported to — and hence imported by — another
    worker.  Two provisions make the merged log well-formed:

    - the recorder {e seals} itself when the empty clause is added:
      later additions and deletions are dropped, so losing workers that
      keep racing for a few more ticks cannot log past the refutation;
    - a recorder created with [~record_deletions:false] ignores
      deletions, because worker A may delete a clause that worker B
      imported and still depends on. *)

type step = Add of int array | Delete of int array

type t

val create : ?record_deletions:bool -> unit -> t
(** A fresh recorder.  [record_deletions] defaults to [true]; pass
    [false] for a portfolio-shared recorder (see above). *)

val add : t -> int array -> unit
val delete : t -> int array -> unit

val sealed : t -> bool
(** The empty clause has been added: the refutation is complete and
    the recorder drops any further steps. *)

val replay : into:t -> t -> unit
(** Append every step of a recorder into another (subject to the
    destination's own deletion-recording and sealing rules). *)

val steps : t -> step list
(** In emission order. *)

val num_steps : t -> int

val to_string : t -> string
(** Standard DRAT text ("d" prefix for deletions, 0-terminated). *)

val of_string : string -> t
(** @raise Failure on malformed input. *)

val check : Formula.t -> t -> bool
(** [check f proof] replays the proof: every added clause must be RUP
    with respect to the current clause database, deletions must refer
    to present clauses, and the proof must end having derived (or
    added) the empty clause.  Intended for validation at test sizes —
    the propagation is simple and unoptimized. *)
