exception Parse_error of string

let write_buffer g buf =
  let npis = Graph.num_pis g
  and nands = Graph.num_ands g
  and npos = Graph.num_pos g in
  let m = npis + nands in
  Buffer.add_string buf (Printf.sprintf "aag %d %d 0 %d %d\n" m npis npos nands);
  for i = 0 to npis - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * (i + 1)))
  done;
  for i = 0 to npos - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Graph.po g i))
  done;
  Graph.iter_ands g (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * id) (Graph.fanin0 g id)
           (Graph.fanin1 g id)))

let write_string g =
  let buf = Buffer.create 4096 in
  write_buffer g buf;
  Buffer.contents buf

let write_channel g oc = output_string oc (write_string g)

let write_file g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel g oc)


(* --- binary ("aig") format ------------------------------------------ *)

let write_varint buf x =
  let x = ref x in
  while !x >= 0x80 do
    Buffer.add_char buf (Char.chr ((!x land 0x7F) lor 0x80));
    x := !x lsr 7
  done;
  Buffer.add_char buf (Char.chr !x)

let write_binary_string g =
  let npis = Graph.num_pis g
  and nands = Graph.num_ands g
  and npos = Graph.num_pos g in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d 0 %d %d\n" (npis + nands) npis npos nands);
  for i = 0 to npos - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Graph.po g i))
  done;
  Graph.iter_ands g (fun id ->
      let lhs = 2 * id in
      let a = Graph.fanin0 g id and b = Graph.fanin1 g id in
      let rhs0 = max a b and rhs1 = min a b in
      assert (lhs > rhs0 && rhs0 >= rhs1);
      write_varint buf (lhs - rhs0);
      write_varint buf (rhs0 - rhs1));
  Buffer.contents buf

let write_binary_file g path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_binary_string g))

let read_binary_string s =
  (* Header and output lines are newline-terminated ASCII; the AND
     section is raw bytes. *)
  let pos = ref 0 in
  let len = String.length s in
  let next_line () =
    let start = !pos in
    while !pos < len && s.[!pos] <> '\n' do
      incr pos
    done;
    if !pos >= len then raise (Parse_error "truncated binary file");
    let line = String.sub s start (!pos - start) in
    incr pos;
    line
  in
  let header = next_line () in
  let m, i, l, o, a =
    match String.split_on_char ' ' header with
    | [ "aig"; m; i; l; o; a ] -> (
      try
        ( int_of_string m, int_of_string i, int_of_string l,
          int_of_string o, int_of_string a )
      with Failure _ -> raise (Parse_error "bad binary header"))
    | _ -> raise (Parse_error "expected 'aig M I L O A' header")
  in
  if l <> 0 then raise (Parse_error "latches not supported");
  if m <> i + a then raise (Parse_error "binary aig requires M = I + A");
  let output_lits =
    List.init o (fun _ ->
        try int_of_string (String.trim (next_line ()))
        with Failure _ -> raise (Parse_error "bad output line"))
  in
  let read_varint () =
    let x = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !pos >= len then raise (Parse_error "truncated AND section");
      let byte = Char.code s.[!pos] in
      incr pos;
      x := !x lor ((byte land 0x7F) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then continue := false
    done;
    !x
  in
  let g = Graph.create ~num_pis:i in
  (* Map original literal -> graph literal (identity numbering modulo
     strashing). *)
  let map = Array.make (2 * (m + 1)) Graph.const_false in
  map.(0) <- Graph.const_false;
  map.(1) <- Graph.const_true;
  for k = 0 to i - 1 do
    map.((2 * (k + 1))) <- Graph.pi g k;
    map.((2 * (k + 1)) + 1) <- Graph.lit_not (Graph.pi g k)
  done;
  for k = 0 to a - 1 do
    let lhs = 2 * (i + 1 + k) in
    let d0 = read_varint () in
    let d1 = read_varint () in
    let rhs0 = lhs - d0 in
    let rhs1 = rhs0 - d1 in
    if rhs0 < 0 || rhs1 < 0 || rhs0 >= lhs then
      raise (Parse_error "bad AND deltas");
    let lit = Graph.and_ g map.(rhs0) map.(rhs1) in
    map.(lhs) <- lit;
    map.(lhs + 1) <- Graph.lit_not lit
  done;
  List.iter
    (fun x ->
      if x < 0 || x >= Array.length map then
        raise (Parse_error "output literal out of range");
      Graph.add_po g map.(x))
    output_lits;
  g

exception Bad_int

(* Single-pass cursor parser over the ASCII ("aag") format: lines are
   located and their integers decoded directly from the input buffer —
   no line list, no token lists; substrings are built only for error
   messages. *)
let read_ascii_string s =
  let len = String.length s in
  let pos = ref 0 in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  (* Bounds (trimmed) of the next significant line: blank lines and
     'c' comment lines are skipped anywhere in the file. *)
  let rec next_line () =
    if !pos >= len then None
    else begin
      let start = !pos in
      let eol = ref start in
      while !eol < len && String.unsafe_get s !eol <> '\n' do
        incr eol
      done;
      pos := !eol + 1;
      let a = ref start and b = ref !eol in
      while !a < !b && is_ws s.[!a] do
        incr a
      done;
      while !b > !a && is_ws s.[!b - 1] do
        decr b
      done;
      if !a = !b || s.[!a] = 'c' then next_line () else Some (!a, !b)
    end
  in
  let line_str a b = String.sub s a (b - a) in
  (* Decode the whitespace-separated decimal ints in s.[a..b); the
     first [Array.length dst] land in [dst], the count is returned. *)
  let scan_ints a b dst =
    let n = ref 0 in
    let i = ref a in
    while !i < b do
      while !i < b && is_ws s.[!i] do
        incr i
      done;
      if !i < b then begin
        let sign =
          if s.[!i] = '-' then begin
            incr i;
            -1
          end
          else begin
            if s.[!i] = '+' then incr i;
            1
          end
        in
        if !i >= b || s.[!i] < '0' || s.[!i] > '9' then raise Bad_int;
        let acc = ref 0 in
        while !i < b && not (is_ws s.[!i]) do
          let c = s.[!i] in
          if c < '0' || c > '9' then raise Bad_int;
          acc := (!acc * 10) + (Char.code c - Char.code '0');
          incr i
        done;
        if !n < Array.length dst then dst.(!n) <- sign * !acc;
        incr n
      end
    done;
    !n
  in
  let buf3 = Array.make 3 0 in
  let ha, hb =
    match next_line () with
    | None -> raise (Parse_error "empty input")
    | Some (a, b) -> (a, b)
  in
  let bad_hdr () = raise (Parse_error "expected 'aag M I L O A' header") in
  if hb - ha < 4 || String.sub s ha 3 <> "aag" || not (is_ws s.[ha + 3]) then
    bad_hdr ();
  let h5 = Array.make 5 0 in
  let hn =
    try scan_ints (ha + 4) hb h5
    with Bad_int -> raise (Parse_error "bad header")
  in
  if hn <> 5 then bad_hdr ();
  let m = h5.(0) and i = h5.(1) and l = h5.(2) and o = h5.(3) and a = h5.(4) in
  if l <> 0 then raise (Parse_error "latches not supported");
  let section_line () =
    match next_line () with
    | None -> raise (Parse_error "truncated file")
    | Some (a, b) -> (a, b)
  in
  let line_ints a b =
    try scan_ints a b buf3
    with Bad_int -> raise (Parse_error ("bad line: " ^ line_str a b))
  in
  let input_lits = Array.make i 0 in
  for k = 0 to i - 1 do
    let a, b = section_line () in
    if line_ints a b = 1 && buf3.(0) land 1 = 0 && buf3.(0) > 0 then
      input_lits.(k) <- buf3.(0)
    else raise (Parse_error ("bad input line: " ^ line_str a b))
  done;
  let output_lits = Array.make o 0 in
  for k = 0 to o - 1 do
    let a, b = section_line () in
    if line_ints a b = 1 then output_lits.(k) <- buf3.(0)
    else raise (Parse_error ("bad output line: " ^ line_str a b))
  done;
  let and_defs = Hashtbl.create (2 * a) in
  for _ = 1 to a do
    let a, b = section_line () in
    if line_ints a b = 3 && buf3.(0) land 1 = 0 && buf3.(0) > 0 then begin
      if Hashtbl.mem and_defs (buf3.(0) / 2) then
        raise (Parse_error "duplicate AND definition");
      Hashtbl.add and_defs (buf3.(0) / 2) (buf3.(1), buf3.(2))
    end
    else raise (Parse_error ("bad AND line: " ^ line_str a b))
  done;
  (* Anything left is the symbol table / comment section: ignored. *)
  let g = Graph.create ~num_pis:i in
  (* Map original variable index -> new literal. *)
  let map = Hashtbl.create (2 * (m + 1)) in
  Hashtbl.add map 0 Graph.const_false;
  Array.iteri (fun idx x -> Hashtbl.add map (x / 2) (Graph.pi g idx)) input_lits;
    let building = Hashtbl.create 16 in
    let rec lit_value x =
      let v = x / 2 in
      let base =
        match Hashtbl.find_opt map v with
        | Some nl -> nl
        | None -> (
          if Hashtbl.mem building v then
            raise (Parse_error "cyclic AND definitions");
          Hashtbl.add building v ();
          match Hashtbl.find_opt and_defs v with
          | None ->
            raise (Parse_error (Printf.sprintf "undefined variable %d" v))
          | Some (r0, r1) ->
            let nl = Graph.and_ g (lit_value r0) (lit_value r1) in
            Hashtbl.remove building v;
            Hashtbl.add map v nl;
            nl)
      in
      Graph.lit_not_cond base (x land 1 = 1)
    in
    (* Materialize every defined AND (even ones unreachable from the
       outputs) so size statistics match the file.  Ascending variable
       order keeps recursion shallow for topologically sorted files. *)
    let vars = Hashtbl.fold (fun v _ acc -> v :: acc) and_defs [] in
    List.iter
      (fun v -> ignore (lit_value (2 * v)))
      (List.sort compare vars);
    Array.iter (fun x -> Graph.add_po g (lit_value x)) output_lits;
    g

let read_string s =
  if String.length s >= 4 && String.sub s 0 4 = "aig " then
    read_binary_string s
  else read_ascii_string s

let read_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  read_string (Buffer.contents buf)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
