type expr =
  | Const_true
  | Var of int
  | And of expr * bool * expr * bool

let rec size = function
  | Const_true | Var _ -> 0
  | And (a, _, b, _) -> 1 + size a + size b

(* The table maps each 8-bit truth table (3 variables, minterm order)
   to a minimal tree.  Output complementation is free, so the DP works
   on complement classes: table.(f) and table.(f lxor 0xFF) always hold
   the same size. *)

let full = 0xFF

(* Evaluate an expr as an 8-bit truth table. *)
let rec eval = function
  | Const_true -> full
  | Var i -> [| 0xAA; 0xCC; 0xF0 |].(i)
  | And (a, ca, b, cb) ->
    let ta = eval a and tb = eval b in
    let ta = if ca then ta lxor full else ta in
    let tb = if cb then tb lxor full else tb in
    ta land tb

let table =
  lazy
    (let best : (int * expr) option array = Array.make 256 None in
     let put f sz e =
       match best.(f) with
       | Some (old, _) when old <= sz -> false
       | Some _ | None ->
         best.(f) <- Some (sz, e);
         true
     in
     (* Size 0: constants and variables. *)
     ignore (put full 0 Const_true);
     ignore (put 0x00 0 Const_true);
     (* 0x00 realized as complement of Const_true *)
     let vars = [| 0xAA; 0xCC; 0xF0 |] in
     Array.iteri
       (fun i tt ->
         ignore (put tt 0 (Var i));
         ignore (put (tt lxor full) 0 (Var i)))
       vars;
     (* The stored expr realizes either f or ~f; which one is decided at
        lookup time by re-evaluating the expr.  During the DP we only
        need one representative per complement pair, so normalize to the
        smaller table value. *)
     let changed = ref true in
     while !changed do
       changed := false;
       (* Snapshot to iterate deterministically. *)
       (* A stored expr may realize the complement of its index, so
          recompute its true function before combining. *)
       let snapshot =
         Array.to_list best
         |> List.filter_map (function
                | Some (sz, e) -> Some (eval e, sz, e)
                | None -> None)
         |> List.sort_uniq compare
       in
       List.iter
         (fun (fa, sa, ea) ->
           List.iter
             (fun (fb, sb, eb) ->
               (* Four complementation combinations of the AND. *)
               List.iter
                 (fun (ca, cb) ->
                   let ta = if ca then fa lxor full else fa in
                   let tb = if cb then fb lxor full else fb in
                   let h = ta land tb in
                   let e = And (ea, ca, eb, cb) in
                   let sz = 1 + sa + sb in
                   if put h sz e then changed := true;
                   if put (h lxor full) sz e then changed := true)
                 [ (false, false); (false, true); (true, false); (true, true) ])
             snapshot)
         snapshot
     done;
     Array.map
       (function
         | Some (_, e) -> e
         | None -> assert false (* every function is reachable *))
       best)

let to_bits f =
  let n = Tt.num_vars f in
  if n > 3 then invalid_arg "Exact: arity above 3";
  (* Expand to 3 variables by repetition. *)
  let bits = Tt.to_int f in
  match n with
  | 3 -> bits
  | 2 -> bits lor (bits lsl 4)
  | 1 -> let b = bits lor (bits lsl 2) in b lor (b lsl 4)
  | _ -> if bits land 1 = 1 then full else 0

(* Forcing a lazy from two domains at once raises Lazy.Undefined (and
   [Lazy.is_val] is no safer: it can answer while the force is still
   in flight), so the forced table is published through an [Atomic]
   with the classic double-checked lock.  Afterwards the array is
   immutable and reads are contention-free. *)
let table_lock = Mutex.create ()
let forced = Atomic.make None

let force_table () =
  match Atomic.get forced with
  | Some t -> t
  | None ->
    Mutex.lock table_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock table_lock)
      (fun () ->
        match Atomic.get forced with
        | Some t -> t
        | None ->
          let t = Lazy.force table in
          Atomic.set forced (Some t);
          t)

let lookup f =
  let bits = to_bits f in
  let e = (force_table ()).(bits) in
  let realized = eval e in
  if realized = bits then (e, false)
  else begin
    assert (realized = bits lxor full);
    (e, true)
  end

let optimal_size f = size (fst (lookup f))

let build g ~leaves f =
  let e, compl_ = lookup f in
  let rec go = function
    | Const_true -> Graph.const_true
    | Var i ->
      if i >= Array.length leaves then
        invalid_arg "Exact.build: not enough leaves"
      else leaves.(i)
    | And (a, ca, b, cb) ->
      Graph.and_ g
        (Graph.lit_not_cond (go a) ca)
        (Graph.lit_not_cond (go b) cb)
  in
  Graph.lit_not_cond (go e) compl_
