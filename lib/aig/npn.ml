type transform = { perm : int array; input_neg : int; output_neg : bool }

let identity n =
  { perm = Array.init n (fun i -> i); input_neg = 0; output_neg = false }

let apply f tr =
  let n = Tt.num_vars f in
  let t = ref f in
  for i = 0 to n - 1 do
    if tr.input_neg land (1 lsl i) <> 0 then t := Tt.flip !t i
  done;
  let t = Tt.permute !t tr.perm in
  if tr.output_neg then Tt.not_ t else t

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let all_transforms n =
  let perms =
    permutations (List.init n (fun i -> i)) |> List.map Array.of_list
  in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun output_neg ->
          List.init (1 lsl n) (fun input_neg -> { perm; input_neg; output_neg }))
        [ false; true ])
    perms

(* Fast path for n <= 4: truth tables fit in an int; precompute, for
   every (perm, input_neg) pair, the minterm remapping, so canonical
   search is a table walk instead of repeated Tt surgery. *)

type compiled = { tr : transform; minterm_map : int array }

let compile n tr =
  let size = 1 lsl n in
  let minterm_map =
    Array.init size (fun m ->
        let m = m lxor tr.input_neg in
        let m' = ref 0 in
        for i = 0 to n - 1 do
          if m land (1 lsl i) <> 0 then m' := !m' lor (1 lsl tr.perm.(i))
        done;
        !m')
  in
  { tr; minterm_map }

(* Both memo tables below are shared across portfolio worker domains;
   each has its own lock ([classes] calls [compiled_transforms], so a
   single lock would self-deadlock).  The compiled array is immutable
   once published, so returning it outside the lock is safe. *)
let compiled_table = Hashtbl.create 7
let compiled_lock = Mutex.create ()

let compiled_transforms n =
  Mutex.lock compiled_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock compiled_lock)
    (fun () ->
      match Hashtbl.find_opt compiled_table n with
      | Some c -> c
      | None ->
        let c = List.map (compile n) (all_transforms n) |> Array.of_list in
        Hashtbl.add compiled_table n c;
        c)

let apply_compiled n bits c out_neg =
  let size = 1 lsl n in
  let r = ref 0 in
  for m = 0 to size - 1 do
    if bits land (1 lsl m) <> 0 then r := !r lor (1 lsl c.minterm_map.(m))
  done;
  if out_neg then !r lxor ((1 lsl size) - 1) else !r

let canonicalize f =
  let n = Tt.num_vars f in
  if n > 4 then invalid_arg "Npn.canonicalize: arity above 4";
  let bits = Tt.to_int f in
  let best = ref max_int and best_tr = ref (identity n) in
  let cs = compiled_transforms n in
  Array.iter
    (fun c ->
      if not c.tr.output_neg then begin
        let pos = apply_compiled n bits c false in
        let neg = pos lxor ((1 lsl (1 lsl n)) - 1) in
        if pos < !best then begin
          best := pos;
          best_tr := c.tr
        end;
        if neg < !best then begin
          best := neg;
          best_tr := { c.tr with output_neg = true }
        end
      end)
    cs;
  (Tt.of_int n !best, !best_tr)

let class_table = Hashtbl.create 7
let class_lock = Mutex.create ()

let classes_locked n =
  match Hashtbl.find_opt class_table n with
  | Some reps -> reps
  | None ->
    if n > 4 then invalid_arg "Npn.classes: arity above 4";
    let size = 1 lsl n in
    let canon_of = Array.make (1 lsl size) (-1) in
    let cs = compiled_transforms n in
    for bits = 0 to (1 lsl size) - 1 do
      if canon_of.(bits) < 0 then begin
        (* bits is the smallest member of a fresh class: mark the orbit. *)
        Array.iter
          (fun c ->
            if not c.tr.output_neg then begin
              let pos = apply_compiled n bits c false in
              if canon_of.(pos) < 0 then canon_of.(pos) <- bits;
              let neg = pos lxor ((1 lsl size) - 1) in
              if canon_of.(neg) < 0 then canon_of.(neg) <- bits
            end)
          cs
      end
    done;
    let reps = ref [] in
    for bits = (1 lsl size) - 1 downto 0 do
      if canon_of.(bits) = bits then reps := Tt.of_int n bits :: !reps
    done;
    Hashtbl.add class_table n !reps;
    !reps

let classes n =
  Mutex.lock class_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock class_lock)
    (fun () -> classes_locked n)

let num_classes n = List.length (classes n)
let all_class_representatives n = classes n
