let fmt_f = Table.fmt_f

let miter seed =
  Workloads.Lec.generate ~seed ~num_pis:20 ~num_ands:500 ()

let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Monotonic wall clock, as everywhere else timing is reported: CPU
   time ([Sys.time]) over-counts once domains run in parallel. *)
let timed f =
  let t0 = Sat.Wall.now () in
  let x = f () in
  (x, Sat.Wall.now () -. t0)

let rewrite_mffc ~seeds =
  let measure use_mffc =
    let sizes, times =
      List.split
        (List.map
           (fun seed ->
             let g = miter seed in
             let g', t = timed (fun () -> Synth.Rewrite.run ~use_mffc g) in
             (float_of_int (Aig.Graph.num_ands g'), t))
           seeds)
    in
    (avg sizes, avg times)
  in
  let with_size, with_time = measure true in
  let without_size, without_time = measure false in
  let orig =
    avg (List.map (fun s -> float_of_int (Aig.Graph.num_ands (miter s))) seeds)
  in
  {
    Table.title = "Ablation: rewrite MFFC credit";
    header = [ "Setting"; "avg ANDs after"; "avg time (s)" ];
    rows =
      [
        [ "original"; fmt_f orig; "-" ];
        [ "rewrite w/ MFFC credit"; fmt_f with_size; fmt_f with_time ];
        [ "rewrite, local gain only"; fmt_f without_size; fmt_f without_time ];
      ];
    notes =
      [ "MFFC credit lets a cut replacement pay for the whole cone it \
         frees; without it only strictly-local savings are visible" ];
  }

let resub_budget ~seeds =
  let measure conflict_limit =
    let stats =
      List.map
        (fun seed ->
          let g = miter seed in
          let config =
            { Synth.Resub.default_config with
              Synth.Resub.conflict_limit }
          in
          let g', t = timed (fun () -> Synth.Resub.run ~config g) in
          let _, proven, _ = Synth.Resub.stats_last_run () in
          (float_of_int (Aig.Graph.num_ands g'), float_of_int proven, t))
        seeds
    in
    let sizes = List.map (fun (s, _, _) -> s) stats in
    let proofs = List.map (fun (_, p, _) -> p) stats in
    let times = List.map (fun (_, _, t) -> t) stats in
    (avg sizes, avg proofs, avg times)
  in
  let rows =
    List.map
      (fun budget ->
        let size, proofs, time = measure budget in
        [ string_of_int budget; fmt_f size; fmt_f proofs; fmt_f time ])
      [ 1; 10; 100; 1000 ]
  in
  {
    Table.title = "Ablation: resub (FRAIG) SAT conflict budget";
    header = [ "Conflict limit"; "avg ANDs after"; "avg merges proven";
               "avg time (s)" ];
    rows;
    notes =
      [ "a tiny budget misses equivalences (fewer merges, larger \
         result); the default 1000 saturates on these miters" ];
  }

let mapper_passes ~seeds =
  let measure area_passes =
    let stats =
      List.map
        (fun seed ->
          let g = Synth.Rewrite.run (miter seed) in
          let config =
            { Lutmap.Mapper.cost_customized_config with
              Lutmap.Mapper.area_passes }
          in
          let nl, t = timed (fun () -> Lutmap.Mapper.run ~config g) in
          ( float_of_int (Lutmap.Netlist.num_luts nl),
            float_of_int
              (Lutmap.Mapper.total_cost Lutmap.Cost.branching nl),
            float_of_int (Lutmap.Netlist.depth nl),
            t ))
        seeds
    in
    ( avg (List.map (fun (a, _, _, _) -> a) stats),
      avg (List.map (fun (_, b, _, _) -> b) stats),
      avg (List.map (fun (_, _, c, _) -> c) stats),
      avg (List.map (fun (_, _, _, d) -> d) stats) )
  in
  let rows =
    List.map
      (fun passes ->
        let luts, cost, depth, time = measure passes in
        [ string_of_int passes; fmt_f luts; fmt_f cost; fmt_f depth;
          fmt_f time ])
      [ 0; 1; 2; 3 ]
  in
  {
    Table.title = "Ablation: mapper area-recovery passes";
    header = [ "Area passes"; "avg LUTs"; "avg branching cost"; "avg depth";
               "avg time (s)" ];
    rows;
    notes =
      [ "pass 0 is the delay-only mapping; recovery passes trade \
         nothing in depth for lower branching cost" ];
  }

let cut_width ~seeds =
  let rows =
    List.map
      (fun k ->
        let stats =
          List.map
            (fun seed ->
              let g = miter seed in
              let g', t = timed (fun () -> Synth.Rewrite.run ~k g) in
              (float_of_int (Aig.Graph.num_ands g'), t))
            seeds
        in
        [ string_of_int k;
          fmt_f (avg (List.map fst stats));
          fmt_f (avg (List.map snd stats)) ])
      [ 3; 4; 5; 6 ]
  in
  {
    Table.title = "Ablation: rewrite cut width k";
    header = [ "k"; "avg ANDs after"; "avg time (s)" ];
    rows;
    notes = [ "wider cuts see more restructurings but cost more per node" ];
  }

let windowed_resub ~seeds =
  let measure pass =
    let stats =
      List.map
        (fun seed ->
          let g = miter seed in
          let g', t = timed (fun () -> pass g) in
          (float_of_int (Aig.Graph.num_ands g'), t))
        seeds
    in
    (avg (List.map fst stats), avg (List.map snd stats))
  in
  let fraig_size, fraig_time = measure Synth.Resub.run in
  let both_size, both_time =
    measure (fun g -> Synth.Resub_window.run (Synth.Resub.run g))
  in
  {
    Table.title = "Ablation: FRAIG (0-resub) vs + windowed 1-resub";
    header = [ "Setting"; "avg ANDs after"; "avg time (s)" ];
    rows =
      [
        [ "resub (FRAIG only)"; fmt_f fraig_size; fmt_f fraig_time ];
        [ "resub + windowed 1-resub"; fmt_f both_size; fmt_f both_time ];
      ];
    notes =
      [ "1-resubstitution re-expresses nodes through divisor pairs; \
         gains beyond equivalence merging cost extra SAT calls" ];
  }

let branching_heuristic () =
  let cases =
    [
      ("php(8,7)", Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
      ( "r3sat(150,675)",
        Workloads.Satcomp.random_ksat ~seed:5 ~num_vars:150 ~num_clauses:675
          ~k:3 );
      ("miter-cnf(500)", Workloads.Suites.miter_cnf ~seed:9301 ~num_ands:500);
    ]
  in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some 60.0 }
  in
  let row (name, f) =
    let run heuristic =
      let _, st = Sat.Solver.solve ~limits ~heuristic f in
      st
    in
    let e = run `Evsids and l = run `Lrb in
    [ name;
      string_of_int e.Sat.Solver.decisions; fmt_f e.Sat.Solver.time;
      string_of_int l.Sat.Solver.decisions; fmt_f l.Sat.Solver.time ]
  in
  {
    Table.title = "Ablation: EVSIDS vs learning-rate branching (LRB, [23])";
    header = [ "Case"; "EVSIDS dec"; "EVSIDS s"; "LRB dec"; "LRB s" ];
    rows = List.map row cases;
    notes =
      [ "both heuristics share the rest of the CDCL machinery; the \
         decision counter is the paper's branching-complexity proxy" ];
  }

let run_all () =
  let seeds = [ 301; 302; 303 ] in
  String.concat "\n"
    [
      Table.render (rewrite_mffc ~seeds);
      Table.render (resub_budget ~seeds);
      Table.render (mapper_passes ~seeds);
      Table.render (cut_width ~seeds);
      Table.render (windowed_resub ~seeds);
      Table.render (branching_heuristic ());
    ]
