(** The learned dispatch policy: one {!Rl.Mlp} with a
    hardness-regression head and three decision heads, trained offline
    from {!Tracelog} entries.

    Output layout (10 coordinates):
    - [0] — predicted hardness, as log2(1 + solve_ms);
    - [1..2] — expected reward of simplify off / on;
    - [3..5] — expected reward of racing 1 / 2 / 4 portfolio lanes;
    - [6..9] — expected reward of a cube-escalation conflict budget of
      off / 2k / 10k / 50k.

    Rewards are [-log2(1 + solve_ms)], minus a constant penalty for
    timeouts and failures, so "larger is better" uniformly.  At
    serving time each decision head takes the argmax over its classes
    — restricted to classes actually visited in training, so a head
    that never saw (say) a 4-lane race can never recommend it — and a
    head with no visited class at all falls back to the static
    default (1 lane, no simplify, no cube override).

    [decide]/[predict] only read the model and are safe to call
    concurrently from worker domains; [train] mutates it and must be
    exclusive (the engine never trains — training is the offline
    [eda4sat dispatch train]). *)

type decision = {
  lanes : int;  (** portfolio lanes to race; 1 = plain direct lane *)
  simplify : bool;
  cube_trigger : int option;
      (** conflict budget that triggers cube-and-conquer escalation;
          [None] leaves the engine's configured cube setting alone *)
  predicted_ms : float;
      (** predicted solve latency; [nan] when the hardness head is
          untrained *)
}

val static_default : decision
(** 1 lane, no simplify, no cube override, [nan] prediction — what an
    engine without a model does. *)

val lane_classes : int array
val cube_classes : int array
(** Class values of the lane and cube heads ([0] meaning no cubing). *)

val max_lanes : int
(** Largest lane count a decision can request (last lane class). *)

type t

val create : ?hidden:int array -> ?seed:int -> unit -> t
(** Fresh untrained policy ([hidden] defaults to [[|32; 32|]]); until
    [train] runs, [decide] returns {!static_default}. *)

val decide : t -> float array -> decision
(** [decide t features] — [features] must have {!Features.dim}
    coordinates. *)

val predict : t -> float array -> float array
(** Raw head outputs on the normalized features (for inspection). *)

val visits : t -> int array
(** Training samples seen per output coordinate. *)

val train :
  ?epochs:int -> ?lr:float -> ?seed:int -> t -> Tracelog.entry list -> float
(** Fit feature normalization, then minibatch-Adam over the entries'
    (hardness, decision-reward) samples; [epochs] defaults to 200,
    [lr] to 1e-3.  Returns the final epoch's mean loss.
    @raise Invalid_argument on an empty entry list. *)

val save_string : t -> string
(** Text serialization; floats as hex literals, so load/save
    round-trips bit-for-bit. *)

val load_string : string -> t
(** @raise Failure on malformed input. *)
