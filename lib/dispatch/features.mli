(** Cheap per-job feature extraction for learned dispatch.

    One O(|F|) pass over the clause store computes the base features:
    size/ratio, clause-length histogram, variable-degree statistics,
    positive/negative literal balance, horn fraction.  Both entry
    points accumulate the same integer statistics and share one
    float-finishing step, so [of_flat (Cnf.Flat.of_formula f)] and
    [of_formula f] are equal bit-for-bit — the engine can extract
    straight off the zero-copy CSR arrays without a formula
    materialization.

    The vector has a fixed total dimension: [base_dim] base features
    followed by [embedding_dim] slots for a {!Deepgate}-style netlist
    embedding, zero-filled when no circuit view exists (the common
    case for raw DIMACS traffic).  Keeping the layout fixed means one
    policy shape serves both kinds of traffic. *)

val base_dim : int
(** Number of base (formula-statistics) features: 16. *)

val embedding_dim : int
(** Slots reserved for an optional netlist embedding: 16. *)

val dim : int
(** [base_dim + embedding_dim]: the policy input dimension. *)

val of_flat : Cnf.Flat.t -> float array
(** Length-[dim] feature vector; embedding slots are zero. *)

val of_formula : Cnf.Formula.t -> float array
(** Same features as [of_flat] on the equivalent store, bit-for-bit. *)

val with_embedding : float array -> float array -> float array
(** [with_embedding base emb] returns a fresh copy of [base] with the
    first [embedding_dim] entries of [emb] written into the embedding
    slots (shorter embeddings leave the tail zero). *)

val names : string array
(** Human-readable name per coordinate, for [dispatch predict]. *)
