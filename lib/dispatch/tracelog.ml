type entry = {
  fingerprint : string;
  features : float array;
  lanes : int;
  simplify : bool;
  cube_trigger : int;
  outcome : string;
  conflicts : int;
  solve_ms : float;
  wall_ms : float;
  decided : bool;
}

type t = {
  path : string;
  max_bytes : int;
  m : Mutex.t;
  mutable oc : out_channel option;
  mutable bytes : int;
  mutable written : int;
  mutable dropped : int;
}

(* %.17g round-trips every finite double through float_of_string; the
   non-finite values JSON cannot carry are clamped to 0 (they never
   arise from the engine's measurements). *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "0"

let entry_to_line e =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"fp\":\"";
  Buffer.add_string buf e.fingerprint;
  Buffer.add_string buf "\",\"lanes\":";
  Buffer.add_string buf (string_of_int e.lanes);
  Buffer.add_string buf ",\"simplify\":";
  Buffer.add_string buf (if e.simplify then "true" else "false");
  Buffer.add_string buf ",\"cube\":";
  Buffer.add_string buf (string_of_int e.cube_trigger);
  Buffer.add_string buf ",\"outcome\":\"";
  Buffer.add_string buf e.outcome;
  Buffer.add_string buf "\",\"conflicts\":";
  Buffer.add_string buf (string_of_int e.conflicts);
  Buffer.add_string buf ",\"solve_ms\":";
  Buffer.add_string buf (json_float e.solve_ms);
  Buffer.add_string buf ",\"wall_ms\":";
  Buffer.add_string buf (json_float e.wall_ms);
  Buffer.add_string buf ",\"decided\":";
  Buffer.add_string buf (if e.decided then "true" else "false");
  Buffer.add_string buf ",\"feat\":[";
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_float x))
    e.features;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Minimal parser for exactly the shape entry_to_line writes (flat
   object, known keys, no escapes in strings). *)
let field line key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length line and pn = String.length pat in
  let rec find i =
    if i + pn > n then
      failwith (Printf.sprintf "Tracelog: missing field %S" key)
    else if String.sub line i pn = pat then i + pn
    else find (i + 1)
  in
  find 0

let string_field line key =
  let i = field line key in
  if i >= String.length line || line.[i] <> '"' then
    failwith (Printf.sprintf "Tracelog: field %S is not a string" key);
  let j = try String.index_from line (i + 1) '"' with Not_found ->
    failwith "Tracelog: unterminated string"
  in
  String.sub line (i + 1) (j - i - 1)

let scalar_field line key =
  let i = field line key in
  let n = String.length line in
  let j = ref i in
  while
    !j < n && (match line.[!j] with ',' | '}' | ']' -> false | _ -> true)
  do
    incr j
  done;
  String.sub line i (!j - i)

let int_field line key =
  try int_of_string (scalar_field line key)
  with Failure _ -> failwith (Printf.sprintf "Tracelog: bad int %S" key)

let float_field line key =
  try float_of_string (scalar_field line key)
  with Failure _ -> failwith (Printf.sprintf "Tracelog: bad float %S" key)

let bool_field line key =
  match scalar_field line key with
  | "true" -> true
  | "false" -> false
  | _ -> failwith (Printf.sprintf "Tracelog: bad bool %S" key)

let float_array_field line key =
  let i = field line key in
  let n = String.length line in
  if i >= n || line.[i] <> '[' then
    failwith (Printf.sprintf "Tracelog: field %S is not an array" key);
  let j = try String.index_from line i ']' with Not_found ->
    failwith "Tracelog: unterminated array"
  in
  let body = String.sub line (i + 1) (j - i - 1) in
  if String.trim body = "" then [||]
  else
    String.split_on_char ',' body
    |> List.map (fun s ->
           try float_of_string (String.trim s)
           with Failure _ -> failwith "Tracelog: bad array element")
    |> Array.of_list

let entry_of_line line =
  {
    fingerprint = string_field line "fp";
    features = float_array_field line "feat";
    lanes = int_field line "lanes";
    simplify = bool_field line "simplify";
    cube_trigger = int_field line "cube";
    outcome = string_field line "outcome";
    conflicts = int_field line "conflicts";
    solve_ms = float_field line "solve_ms";
    wall_ms = float_field line "wall_ms";
    decided = bool_field line "decided";
  }

let open_channel path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  (oc, out_channel_length oc)

let open_file ?(max_bytes = 64 * 1024 * 1024) path =
  let oc, len = open_channel path in
  {
    path;
    max_bytes = max max_bytes 4096;
    m = Mutex.create ();
    oc = Some oc;
    bytes = len;
    written = 0;
    dropped = 0;
  }

let rotate t =
  match t.oc with
  | None -> ()
  | Some oc ->
    close_out_noerr oc;
    t.oc <- None;
    let old = t.path ^ ".1" in
    (try if Sys.file_exists old then Sys.remove old with Sys_error _ -> ());
    (try Sys.rename t.path old with Sys_error _ -> ());
    let oc, len = open_channel t.path in
    t.oc <- Some oc;
    t.bytes <- len

let append t e =
  let line = entry_to_line e in
  Mutex.lock t.m;
  (try
     (match t.oc with
     | None -> t.dropped <- t.dropped + 1
     | Some _ ->
       if t.bytes > 0 && t.bytes + String.length line + 1 > t.max_bytes then
         rotate t;
       (match t.oc with
       | None -> t.dropped <- t.dropped + 1
       | Some oc ->
         output_string oc line;
         output_char oc '\n';
         flush oc;
         t.bytes <- t.bytes + String.length line + 1;
         t.written <- t.written + 1))
   with Sys_error _ -> t.dropped <- t.dropped + 1);
  Mutex.unlock t.m

let entries_written t =
  Mutex.lock t.m;
  let n = t.written in
  Mutex.unlock t.m;
  n

let dropped t =
  Mutex.lock t.m;
  let n = t.dropped in
  Mutex.unlock t.m;
  n

let path t = t.path

let close t =
  Mutex.lock t.m;
  (match t.oc with
  | Some oc ->
    close_out_noerr oc;
    t.oc <- None
  | None -> ());
  Mutex.unlock t.m

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line ->
          if String.trim line = "" then loop acc
          else loop (entry_of_line line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])
