type decision = {
  lanes : int;
  simplify : bool;
  cube_trigger : int option;
  predicted_ms : float;
}

let static_default =
  { lanes = 1; simplify = false; cube_trigger = None; predicted_ms = Float.nan }

let lane_classes = [| 1; 2; 4 |]
let cube_classes = [| 0; 2_000; 10_000; 50_000 |]
let max_lanes = lane_classes.(Array.length lane_classes - 1)

(* Output layout. *)
let o_hard = 0
let o_simplify = 1
let o_lanes = o_simplify + 2
let o_cube = o_lanes + Array.length lane_classes
let out_dim = o_cube + Array.length cube_classes

type t = {
  net : Rl.Mlp.t;
  mean : float array; (* feature normalization, fitted at train time *)
  std : float array;
  visits : int array; (* training samples per output coordinate *)
}

let create ?(hidden = [| 32; 32 |]) ?(seed = 12345) () =
  let sizes = Array.concat [ [| Features.dim |]; hidden; [| out_dim |] ] in
  {
    net = Rl.Mlp.create ~sizes ~seed;
    mean = Array.make Features.dim 0.0;
    std = Array.make Features.dim 1.0;
    visits = Array.make out_dim 0;
  }

let normalize t x =
  Array.init Features.dim (fun i ->
      (x.(i) -. t.mean.(i)) /. Float.max t.std.(i) 1e-9)

let predict t x =
  if Array.length x <> Features.dim then
    invalid_arg "Policy.predict: bad feature dimension";
  Rl.Mlp.forward t.net (normalize t x)

(* Argmax over a head's classes, restricted to classes seen in
   training; None when the whole head is unvisited. *)
let head_argmax t out ~offset ~count =
  let best = ref (-1) in
  for i = 0 to count - 1 do
    if t.visits.(offset + i) > 0 then
      if !best < 0 || out.(offset + i) > out.(offset + !best) then best := i
  done;
  if !best < 0 then None else Some !best

let decide t x =
  let out = predict t x in
  let predicted_ms =
    if t.visits.(o_hard) > 0 then
      Float.min (Float.exp2 (Float.max 0.0 out.(o_hard)) -. 1.0) 1e12
    else Float.nan
  in
  let simplify =
    match head_argmax t out ~offset:o_simplify ~count:2 with
    | Some 1 -> true
    | _ -> false
  in
  let lanes =
    match head_argmax t out ~offset:o_lanes ~count:(Array.length lane_classes)
    with
    | Some i -> lane_classes.(i)
    | None -> 1
  in
  let cube_trigger =
    match head_argmax t out ~offset:o_cube ~count:(Array.length cube_classes)
    with
    | Some 0 | None -> None
    | Some i -> Some cube_classes.(i)
  in
  { lanes; simplify; cube_trigger; predicted_ms }

let visits t = Array.copy t.visits

(* Nearest class index for a recorded decision value. *)
let class_index classes v =
  let best = ref 0 in
  Array.iteri
    (fun i c -> if abs (c - v) < abs (classes.(!best) - v) then best := i)
    classes;
  !best

let entry_reward (e : Tracelog.entry) =
  let base = -.Float.log2 (1.0 +. Float.max 0.0 e.solve_ms) in
  match e.outcome with
  | "sat" | "unsat" -> base
  | _ -> base -. 10.0

let entry_hardness (e : Tracelog.entry) =
  Float.log2 (1.0 +. Float.max 0.0 e.solve_ms)

let fit_normalization t entries =
  let n = float_of_int (List.length entries) in
  Array.fill t.mean 0 Features.dim 0.0;
  List.iter
    (fun (e : Tracelog.entry) ->
      Array.iteri
        (fun i x -> if i < Features.dim then t.mean.(i) <- t.mean.(i) +. x)
        e.features)
    entries;
  Array.iteri (fun i s -> t.mean.(i) <- s /. n) t.mean;
  let var = Array.make Features.dim 0.0 in
  List.iter
    (fun (e : Tracelog.entry) ->
      Array.iteri
        (fun i x ->
          if i < Features.dim then begin
            let d = x -. t.mean.(i) in
            var.(i) <- var.(i) +. (d *. d)
          end)
        e.features)
    entries;
  Array.iteri
    (fun i v ->
      let s = sqrt (v /. n) in
      t.std.(i) <- (if s > 1e-9 then s else 1.0))
    var

let train ?(epochs = 200) ?(lr = 1e-3) ?(seed = 1) t entries =
  if entries = [] then invalid_arg "Policy.train: no entries";
  List.iter
    (fun (e : Tracelog.entry) ->
      if Array.length e.features <> Features.dim then
        invalid_arg "Policy.train: bad feature dimension in trace")
    entries;
  fit_normalization t entries;
  let samples =
    List.concat_map
      (fun (e : Tracelog.entry) ->
        let x = normalize t e.features in
        let r = entry_reward e in
        [
          (x, o_hard, entry_hardness e);
          (x, o_simplify + (if e.simplify then 1 else 0), r);
          (x, o_lanes + class_index lane_classes e.lanes, r);
          (x, o_cube + class_index cube_classes e.cube_trigger, r);
        ])
      entries
    |> Array.of_list
  in
  Array.iter (fun (_, o, _) -> t.visits.(o) <- t.visits.(o) + 1) samples;
  let rng = Aig.Rng.create seed in
  let batch = 32 in
  let last = ref 0.0 in
  for _epoch = 1 to epochs do
    Aig.Rng.shuffle rng samples;
    let total = ref 0.0 and nb = ref 0 in
    let i = ref 0 in
    while !i < Array.length samples do
      let len = min batch (Array.length samples - !i) in
      let b = Array.sub samples !i len in
      total := !total +. Rl.Mlp.train_batch t.net ~lr b;
      incr nb;
      i := !i + len
    done;
    last := !total /. float_of_int (max 1 !nb)
  done;
  !last

(* Serialization: a small header (visits + normalization, floats as
   hex literals) followed by the Mlp's own text format. *)
let magic = "eda4sat-dispatch-policy 1"

let save_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "dims %d %d\n" Features.dim out_dim);
  Buffer.add_string buf "visits";
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) t.visits;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "mean";
  Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %h" x)) t.mean;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "std";
  Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %h" x)) t.std;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Rl.Mlp.save_string t.net);
  Buffer.contents buf

let load_string s =
  let fail msg = failwith ("Policy.load_string: " ^ msg) in
  match String.split_on_char '\n' s with
  | m :: dims :: visits :: mean :: std :: net_lines ->
    if String.trim m <> magic then fail "bad magic";
    (match
       String.split_on_char ' ' (String.trim dims)
       |> List.filter (fun t -> t <> "")
     with
    | [ "dims"; fd; od ] -> (
      match (int_of_string_opt fd, int_of_string_opt od) with
      | Some fd, Some od ->
        if fd <> Features.dim || od <> out_dim then
          fail "dimension mismatch (model built for another layout)"
      | _ -> fail "bad dims line")
    | _ -> fail "bad dims line");
    let tagged_row tag line conv =
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      with
      | tg :: rest when tg = tag -> (
        try Array.of_list (List.map conv rest)
        with Failure _ -> fail ("bad " ^ tag ^ " line"))
      | _ -> fail ("bad " ^ tag ^ " line")
    in
    let visits = tagged_row "visits" visits int_of_string in
    let mean = tagged_row "mean" mean float_of_string in
    let std = tagged_row "std" std float_of_string in
    if Array.length visits <> out_dim then fail "bad visits length";
    if Array.length mean <> Features.dim then fail "bad mean length";
    if Array.length std <> Features.dim then fail "bad std length";
    let net = Rl.Mlp.load_string (String.concat "\n" net_lines) in
    if
      Rl.Mlp.input_dim net <> Features.dim
      || Rl.Mlp.output_dim net <> out_dim
    then fail "network shape mismatch";
    { net; mean; std; visits }
  | _ -> fail "truncated"
