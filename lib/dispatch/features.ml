(* Integer statistics accumulated in one pass over the clause store.
   The two drivers (CSR walk, array-of-arrays walk) fill the same
   record and hand it to the same float-finishing step, which is what
   makes of_flat and of_formula bitwise-equal. *)

let base_dim = 16
let embedding_dim = 16
let dim = base_dim + embedding_dim

type acc = {
  mutable clauses : int;
  mutable lits : int;
  mutable unit_c : int;
  mutable binary_c : int;
  mutable ternary_c : int;
  mutable max_len : int;
  mutable horn : int; (* clauses with <= 1 positive literal *)
  mutable pos_lits : int;
  pos : int array; (* per-variable positive occurrences, 0-indexed *)
  neg : int array;
}

let make_acc num_vars =
  {
    clauses = 0;
    lits = 0;
    unit_c = 0;
    binary_c = 0;
    ternary_c = 0;
    max_len = 0;
    horn = 0;
    pos_lits = 0;
    pos = Array.make num_vars 0;
    neg = Array.make num_vars 0;
  }

(* Register one clause given its length and positive-literal count
   (per-literal counters are bumped by the drivers). *)
let add_clause acc ~len ~npos =
  acc.clauses <- acc.clauses + 1;
  acc.lits <- acc.lits + len;
  (match len with
  | 1 -> acc.unit_c <- acc.unit_c + 1
  | 2 -> acc.binary_c <- acc.binary_c + 1
  | 3 -> acc.ternary_c <- acc.ternary_c + 1
  | _ -> ());
  if len > acc.max_len then acc.max_len <- len;
  if npos <= 1 then acc.horn <- acc.horn + 1;
  acc.pos_lits <- acc.pos_lits + npos

let log2p1 x = Float.log2 (1.0 +. x)

let finish num_vars acc =
  let f = Array.make dim 0.0 in
  let nv = float_of_int num_vars in
  let nc = float_of_int acc.clauses in
  let nl = float_of_int acc.lits in
  let frac_c n = if acc.clauses > 0 then float_of_int n /. nc else 0.0 in
  (* Degree statistics over the declared variable range; unused
     variables are a feature of their own, not noise. *)
  let max_deg = ref 0 in
  let unused = ref 0 in
  let used = ref 0 in
  let imbalance = ref 0.0 in
  let sq_deg = ref 0.0 in
  for v = 0 to num_vars - 1 do
    let p = acc.pos.(v) and n = acc.neg.(v) in
    let d = p + n in
    if d > !max_deg then max_deg := d;
    if d = 0 then incr unused
    else begin
      incr used;
      imbalance :=
        !imbalance +. (float_of_int (abs (p - n)) /. float_of_int d)
    end;
    sq_deg := !sq_deg +. (float_of_int d *. float_of_int d)
  done;
  let mean_deg = if num_vars > 0 then nl /. nv else 0.0 in
  let var_deg =
    if num_vars > 0 then
      let m = !sq_deg /. nv in
      Float.max 0.0 (m -. (mean_deg *. mean_deg))
    else 0.0
  in
  let long_c = acc.clauses - acc.unit_c - acc.binary_c - acc.ternary_c in
  f.(0) <- log2p1 nv;
  f.(1) <- log2p1 nc;
  f.(2) <- (if num_vars > 0 then nc /. nv else 0.0);
  f.(3) <- (if acc.clauses > 0 then nl /. nc else 0.0);
  f.(4) <- frac_c acc.unit_c;
  f.(5) <- frac_c acc.binary_c;
  f.(6) <- frac_c acc.ternary_c;
  f.(7) <- frac_c long_c;
  f.(8) <- log2p1 (float_of_int acc.max_len);
  f.(9) <- frac_c acc.horn;
  f.(10) <- (if acc.lits > 0 then float_of_int acc.pos_lits /. nl else 0.0);
  f.(11) <- mean_deg;
  f.(12) <- log2p1 (float_of_int !max_deg);
  f.(13) <- (if mean_deg > 0.0 then sqrt var_deg /. mean_deg else 0.0);
  f.(14) <- (if num_vars > 0 then float_of_int !unused /. nv else 0.0);
  f.(15) <-
    (if !used > 0 then !imbalance /. float_of_int !used else 0.0);
  f

let of_flat (fl : Cnf.Flat.t) =
  let acc = make_acc fl.num_vars in
  let nc = Cnf.Flat.num_clauses fl in
  for c = 0 to nc - 1 do
    let lo = fl.offsets.(c) and hi = fl.offsets.(c + 1) in
    let npos = ref 0 in
    for k = lo to hi - 1 do
      let lit = fl.lits.(k) in
      if lit > 0 then begin
        incr npos;
        acc.pos.(lit - 1) <- acc.pos.(lit - 1) + 1
      end
      else acc.neg.(-lit - 1) <- acc.neg.(-lit - 1) + 1
    done;
    add_clause acc ~len:(hi - lo) ~npos:!npos
  done;
  finish fl.num_vars acc

let of_formula (f : Cnf.Formula.t) =
  let acc = make_acc f.num_vars in
  Array.iter
    (fun clause ->
      let npos = ref 0 in
      Array.iter
        (fun lit ->
          if lit > 0 then begin
            incr npos;
            acc.pos.(lit - 1) <- acc.pos.(lit - 1) + 1
          end
          else acc.neg.(-lit - 1) <- acc.neg.(-lit - 1) + 1)
        clause;
      add_clause acc ~len:(Array.length clause) ~npos:!npos)
    f.clauses;
  finish f.num_vars acc

let with_embedding base emb =
  if Array.length base <> dim then
    invalid_arg "Features.with_embedding: bad base dimension";
  let out = Array.copy base in
  let n = min embedding_dim (Array.length emb) in
  Array.blit emb 0 out base_dim n;
  out

let names =
  Array.init dim (fun i ->
      match i with
      | 0 -> "log2_vars"
      | 1 -> "log2_clauses"
      | 2 -> "clause_var_ratio"
      | 3 -> "mean_clause_len"
      | 4 -> "frac_unit"
      | 5 -> "frac_binary"
      | 6 -> "frac_ternary"
      | 7 -> "frac_long"
      | 8 -> "log2_max_clause_len"
      | 9 -> "frac_horn"
      | 10 -> "frac_pos_lits"
      | 11 -> "mean_var_degree"
      | 12 -> "log2_max_var_degree"
      | 13 -> "degree_cv"
      | 14 -> "frac_unused_vars"
      | 15 -> "mean_polarity_imbalance"
      | _ -> Printf.sprintf "embedding_%d" (i - base_dim))
