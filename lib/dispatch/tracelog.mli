(** Append-only JSONL training log for learned dispatch.

    The engine appends one entry per completed one-shot job: the
    feature vector it extracted, the decisions it took (lanes raced,
    simplify, cube budget), and the outcome (verdict, conflicts, solve
    and wall latency), keyed by the canonical fingerprint.  The offline
    trainer ([eda4sat dispatch train]) reads these files back.

    Writes are serialized on an internal mutex, flushed per line, and
    rotated at a size bound: when the next entry would push the file
    past [max_bytes], the current file is renamed to [path ^ ".1"]
    (replacing any previous rotation) and a fresh file is started.
    Write errors are swallowed after incrementing {!dropped} — tracing
    must never take the serving path down. *)

type entry = {
  fingerprint : string;  (** canonical fingerprint, hex *)
  features : float array;  (** {!Features.dim} coordinates *)
  lanes : int;  (** portfolio lanes raced (1 = single direct lane) *)
  simplify : bool;  (** simplify-then-solve leg taken *)
  cube_trigger : int;  (** cube-escalation conflict budget, 0 = off *)
  outcome : string;  (** ["sat"], ["unsat"], ["timeout"], ["failed"] *)
  conflicts : int;
  solve_ms : float;  (** solver wall time *)
  wall_ms : float;  (** submit-to-completion wall time *)
  decided : bool;  (** true when a model picked the decisions *)
}

type t

val open_file : ?max_bytes:int -> string -> t
(** Open [path] for appending (created if missing); [max_bytes]
    defaults to 64 MiB. @raise Sys_error when the path is unwritable. *)

val append : t -> entry -> unit
val entries_written : t -> int
val dropped : t -> int
val path : t -> string

val close : t -> unit

val entry_to_line : entry -> string
(** One JSON object, no trailing newline. *)

val entry_of_line : string -> entry
(** @raise Failure on lines not produced by [entry_to_line]. *)

val read_file : string -> entry list
(** All entries of a trace file, in order; blank lines are skipped.
    @raise Failure on a malformed line, [Sys_error] on a missing
    file. *)
