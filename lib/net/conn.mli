(** Per-connection state of the socket front-end.

    A connection is a passive record driven entirely by
    {!Event_loop}: the loop thread reads, parses, dispatches and
    writes; worker domains only ever touch one field — a {!pending}
    item's [lines], under the loop's completion mutex.

    {2 Ordered answers}

    [items] is the connection's answer FIFO: dispatch pushes one item
    per command in submission order, and the loop renders items
    head-first into [out] — a later answer that resolves early waits
    in its [Pending] slot until everything before it is rendered, so
    each client observes its own answers in the order it asked,
    whatever the engine's completion order.  [Stats_here] and
    [Sync_here] are barriers by construction: they render only once
    every earlier item has.

    {2 Backpressure}

    [out] is bounded by [max_out] (0 = unbounded, used for stdio).
    Past [max_out/2] the connection is {e overloaded}: new commands
    answer [REJECTED overloaded] instead of reaching the engine.  Past
    [max_out] the peer has stopped reading for good and the loop
    disconnects it — the event loop never blocks on a slow client. *)

type pending = { mutable lines : string list option }
(** An answer slot filled asynchronously by an engine completion
    callback.  Written and read under the event loop's completion
    mutex. *)

type item =
  | Lines of string list  (** renderable immediately *)
  | Pending of pending    (** waits for its callback at the head *)
  | Stats_here            (** render the stats snapshot at the head *)
  | Sync_here             (** emit [c sync], unblock command intake *)

type t = {
  id : int;
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;   (** = [fd_in] for sockets *)
  owns_fds : bool;            (** close on disconnect (false for stdio) *)
  peer : string;              (** human-readable peer, for log lines *)
  framing : Framing.t;
  items : item Queue.t;       (** the per-connection answer FIFO *)
  mutable lines_pending : string list;
      (** parsed commands not yet dispatched (held back by [blocked]) *)
  mutable blocked : bool;     (** a [Sync_here] gates command intake *)
  mutable eof : bool;         (** stop reading (EOF, QUIT or drain) *)
  mutable closed : bool;      (** fully disconnected; skip everywhere *)
  out : Buffer.t;             (** bytes owed to the peer *)
  mutable out_off : int;      (** already-written prefix of [out] *)
  max_out : int;              (** write-buffer bound; 0 = unbounded *)
  mutable tenant : Tenant.tenant;
  mutable seq : int;          (** per-connection command sequence *)
}

val create :
  id:int ->
  fd_in:Unix.file_descr ->
  fd_out:Unix.file_descr ->
  owns_fds:bool ->
  peer:string ->
  max_out:int ->
  max_line:int ->
  tenant:Tenant.tenant ->
  t

val pending_out : t -> int
(** Bytes buffered and not yet written to the peer. *)

val append_lines : t -> string list -> unit
(** Append newline-terminated lines to the out buffer. *)

val try_write : t -> [ `Ok | `Peer_gone ]
(** Flush as much of [out] as the kernel accepts without blocking.
    [`Peer_gone] (EPIPE/ECONNRESET) means the caller must drop the
    connection. *)

val overloaded : t -> bool
(** Past the soft watermark ([max_out/2]): reject new commands. *)

val over_hard_limit : t -> bool
(** Past [max_out]: disconnect the slow reader. *)
