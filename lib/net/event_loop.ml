type config = {
  max_clients : int;
  conn_buffer : int;
  max_line : int;
  default_limits : Tenant.limits;
  tenant_limits : (string * Tenant.limits) list;
  load : string -> Server.input;
}

let default_config =
  {
    max_clients = 256;
    conn_buffer = 4 * 1024 * 1024;
    max_line = 1 lsl 20;
    default_limits = Tenant.unlimited;
    tenant_limits = [];
    load = Server.Protocol.default_load_input;
  }

let anon_client = "anon"

(* [Unix.select] only handles file descriptors numbered below
   FD_SETSIZE (1024 on Linux).  An accepted socket at or past that
   number would make every subsequent select fail with EINVAL and take
   the whole loop down, so the connection budget is validated against
   the fd space up front and every accepted fd is checked numerically
   before it joins the select sets. *)
let fd_setsize = 1024

(* Head room kept under FD_SETSIZE for the wake pipe, the listeners,
   stdio and whatever descriptors the rest of the process holds open
   (instance files being loaded, the engine's own plumbing). *)
let fd_reserve = 32

(* On Unix a [Unix.file_descr] is the plain fd number. *)
let fd_int (fd : Unix.file_descr) : int = Obj.magic fd

type listener = {
  lfd : Unix.file_descr;
  l_desc : string;
  l_path : string option;  (* unix socket path, unlinked on close *)
}

type t = {
  engine : Server.t;
  cfg : config;
  max_clients : int;
      (* [cfg.max_clients] clamped to the select fd budget
         ([fd_setsize - fd_reserve]) at create time *)
  mutable spare_fd : Unix.file_descr option;
      (* sacrificial descriptor: on EMFILE/ENFILE it is closed to free
         one slot so the pending connection can still be accepted,
         refused and closed, instead of leaving the listener readable
         forever *)
  tenants : Tenant.t;
  mutable listeners : listener list;
  conns : (int, Conn.t) Hashtbl.t;  (* loop thread only *)
  (* [cm] guards the cross-domain completion state: every [Conn.pending]'s
     [lines] field and the [dirty] work list.  Engine completion
     callbacks run with no engine lock held, take [cm] briefly, and
     wake the loop; the loop never calls into the engine while holding
     [cm] except for metrics/stats snapshots, which use their own leaf
     mutex. *)
  cm : Mutex.t;
  mutable dirty : Conn.t list;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  draining : bool Atomic.t;
  (* Session ownership: sid -> client id of the tenant that opened it.
     Loop thread only.  Ownership is per client id, not per
     connection — a tenant may drive its session from any of its
     connections; other tenants get [REJECTED not-owner]. *)
  session_owner : (int, string) Hashtbl.t;
  mutable next_id : int;
}

let create ?(config = default_config) engine =
  let tenants = Tenant.create ~default:config.default_limits () in
  List.iter (fun (name, l) -> Tenant.set_limits tenants name l)
    config.tenant_limits;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let max_clients = min config.max_clients (fd_setsize - fd_reserve) in
  let spare_fd =
    try Some (Unix.openfile "/dev/null" [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0)
    with _ -> None
  in
  {
    engine;
    cfg = config;
    max_clients;
    spare_fd;
    tenants;
    listeners = [];
    conns = Hashtbl.create 32;
    cm = Mutex.create ();
    dirty = [];
    wake_r;
    wake_w;
    draining = Atomic.make false;
    session_owner = Hashtbl.create 32;
    next_id = 0;
  }

let wake t =
  try ignore (Unix.write_substring t.wake_w "w" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
  -> ()

let drain_wake t =
  let scratch = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r scratch 0 256 with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | 0 -> ()
    | _ -> go ()
  in
  go ()

let request_drain t =
  Atomic.set t.draining true;
  wake t

let draining t = Atomic.get t.draining
let connections t = Hashtbl.length t.conns
let effective_max_clients t = t.max_clients

(* --- listeners -------------------------------------------------------- *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      failwith (Printf.sprintf "cannot resolve host %s" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
      failwith (Printf.sprintf "cannot resolve host %s" host))

let add_tcp t ~host ~port =
  let addr = resolve_host host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let desc =
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) bound_port
  in
  t.listeners <- { lfd = fd; l_desc = desc; l_path = None } :: t.listeners;
  (Unix.string_of_inet_addr addr, bound_port)

let add_unix t path =
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with _ -> ())
   | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  t.listeners <-
    { lfd = fd; l_desc = "unix:" ^ path; l_path = Some path } :: t.listeners

let close_listeners t =
  List.iter
    (fun l ->
      (try Unix.close l.lfd with _ -> ());
      match l.l_path with
      | Some path -> ( try Unix.unlink path with _ -> ())
      | None -> ())
    t.listeners;
  t.listeners <- []

let new_conn t ~fd_in ~fd_out ~owns_fds ~peer ~max_out =
  t.next_id <- t.next_id + 1;
  let conn =
    Conn.create ~id:t.next_id ~fd_in ~fd_out ~owns_fds ~peer ~max_out
      ~max_line:t.cfg.max_line
      ~tenant:(Tenant.find t.tenants anon_client)
  in
  Hashtbl.replace t.conns conn.Conn.id conn;
  conn

let add_stdio t =
  ignore
    (new_conn t ~fd_in:Unix.stdin ~fd_out:Unix.stdout ~owns_fds:false
       ~peer:"stdio" ~max_out:0)

(* --- completion plumbing ---------------------------------------------- *)

let mark_dirty_locked t conn =
  if not (List.memq conn t.dirty) then t.dirty <- conn :: t.dirty

(* Engine completion callbacks land here, from worker domains (or
   synchronously from the loop thread on a cache hit). *)
let complete t conn (p : Conn.pending) lines =
  Mutex.lock t.cm;
  p.lines <- Some lines;
  mark_dirty_locked t conn;
  Mutex.unlock t.cm;
  wake t

let push_item t conn item =
  Mutex.lock t.cm;
  Queue.push item conn.Conn.items;
  mark_dirty_locked t conn;
  Mutex.unlock t.cm

let push_lines t conn lines = push_item t conn (Conn.Lines lines)

(* Out-of-band: jumps the answer FIFO straight into the out buffer.
   Only PING/METRICS use this — they are health probes and must not
   queue behind a long solve. *)
let push_oob _t conn lines = Conn.append_lines conn lines

let force_close t conn =
  if not conn.Conn.closed then begin
    conn.Conn.closed <- true;
    conn.Conn.eof <- true;
    conn.Conn.lines_pending <- [];
    Hashtbl.remove t.conns conn.Conn.id;
    if conn.Conn.owns_fds then begin
      (try Unix.close conn.Conn.fd_in with _ -> ());
      if conn.Conn.fd_out != conn.Conn.fd_in then
        try Unix.close conn.Conn.fd_out with _ -> ()
    end
  end

(* Render every head-of-queue item that is ready.  Called with [cm]
   held; collects connections whose SYNC barrier released so the
   caller can resume their command intake outside the lock. *)
let flush_ready t conn unblocked =
  let rec go () =
    match Queue.peek_opt conn.Conn.items with
    | None -> ()
    | Some (Conn.Lines ls) ->
      ignore (Queue.pop conn.Conn.items);
      Conn.append_lines conn ls;
      go ()
    | Some (Conn.Pending p) -> (
      match p.Conn.lines with
      | None -> ()
      | Some ls ->
        ignore (Queue.pop conn.Conn.items);
        Conn.append_lines conn ls;
        go ())
    | Some Conn.Stats_here ->
      ignore (Queue.pop conn.Conn.items);
      Conn.append_lines conn [ Server.stats_json t.engine ];
      go ()
    | Some Conn.Sync_here ->
      ignore (Queue.pop conn.Conn.items);
      Conn.append_lines conn [ "c sync" ];
      conn.Conn.blocked <- false;
      if not (List.memq conn !unblocked) then unblocked := conn :: !unblocked;
      go ()
  in
  if not conn.Conn.closed then go ()

(* --- metrics helpers -------------------------------------------------- *)

let m_request t client =
  Server.Metrics.record_client_request (Server.metrics t.engine) ~client

let m_answered t client =
  Server.Metrics.record_client_answered (Server.metrics t.engine) ~client

let m_rejected t client =
  Server.Metrics.record_client_rejected (Server.metrics t.engine) ~client

(* --- command dispatch ------------------------------------------------- *)

let handle_solve_file t conn ~file ~deadline ~priority =
  conn.Conn.seq <- conn.Conn.seq + 1;
  let n = conn.Conn.seq in
  let ten = conn.Conn.tenant in
  let client = Tenant.name ten in
  m_request t client;
  let header = Server.Protocol.job_header ~seq:n ~file in
  if Conn.overloaded conn then begin
    m_rejected t client;
    push_lines t conn [ header; "REJECTED overloaded" ]
  end
  else if not (Tenant.try_acquire t.tenants ten) then begin
    m_rejected t client;
    push_lines t conn [ header; "REJECTED quota" ]
  end
  else begin
    let t0 = Sat.Wall.now () in
    match t.cfg.load file with
    | exception e ->
      Tenant.release t.tenants ten;
      m_rejected t client;
      push_lines t conn
        [ header;
          Printf.sprintf "ERROR cannot load %s: %s" file
            (Printexc.to_string e) ]
    | input -> (
      Server.Metrics.record_parse (Server.metrics t.engine)
        ~latency_s:(Sat.Wall.now () -. t0);
      let priority = Tenant.effective_priority ten priority in
      match Server.submit_input t.engine ?deadline ~priority input with
      | Error reason ->
        Tenant.release t.tenants ten;
        m_rejected t client;
        push_lines t conn [ header; "REJECTED " ^ reason ]
      | Ok ticket ->
        let p = { Conn.lines = None } in
        push_item t conn (Conn.Pending p);
        let num_vars = Server.input_num_vars input in
        Server.on_answer t.engine ticket (fun a ->
            Tenant.release t.tenants ten;
            m_answered t client;
            complete t conn p
              (Server.Protocol.answer_lines ~seq:n ~file ~num_vars a)))
  end

let handle_session t conn ~sid ~verb submit =
  conn.Conn.seq <- conn.Conn.seq + 1;
  let n = conn.Conn.seq in
  let ten = conn.Conn.tenant in
  let client = Tenant.name ten in
  m_request t client;
  let header = Server.Protocol.session_header ~sid ~seq:n ~verb in
  let foreign =
    match Hashtbl.find_opt t.session_owner sid with
    | Some owner -> owner <> client
    | None -> false  (* unknown sids fall through to the engine's answer *)
  in
  if foreign then begin
    m_rejected t client;
    push_lines t conn [ header; "REJECTED not-owner" ]
  end
  else if Conn.overloaded conn then begin
    m_rejected t client;
    push_lines t conn [ header; "REJECTED overloaded" ]
  end
  else if not (Tenant.try_acquire t.tenants ten) then begin
    m_rejected t client;
    push_lines t conn [ header; "REJECTED quota" ]
  end
  else
    match submit () with
    | Error reason ->
      Tenant.release t.tenants ten;
      m_rejected t client;
      push_lines t conn [ header; "REJECTED " ^ reason ]
    | Ok ticket ->
      let p = { Conn.lines = None } in
      push_item t conn (Conn.Pending p);
      Server.Session.on_answer ticket (fun a ->
          Tenant.release t.tenants ten;
          m_answered t client;
          complete t conn p
            (Server.Protocol.session_answer_lines ~seq:n ~sid ~verb a))

let handle_open t conn =
  conn.Conn.seq <- conn.Conn.seq + 1;
  let n = conn.Conn.seq in
  let client = Tenant.name conn.Conn.tenant in
  m_request t client;
  match Server.open_session t.engine with
  | Ok sid ->
    Hashtbl.replace t.session_owner sid client;
    m_answered t client;
    push_lines t conn
      [ Server.Protocol.open_header ~seq:n; Printf.sprintf "OPENED %d" sid ]
  | Error reason ->
    m_rejected t client;
    push_lines t conn
      [ Server.Protocol.open_header ~seq:n; "REJECTED " ^ reason ]

let process_line t conn line =
  match Server.Protocol.parse_request line with
  | Server.Protocol.Comment -> ()
  | Server.Protocol.Quit ->
    conn.Conn.eof <- true;
    conn.Conn.lines_pending <- []
  | Server.Protocol.Ping -> push_oob t conn [ "PONG" ]
  | Server.Protocol.Metrics_now ->
    push_oob t conn [ Server.stats_json t.engine ]
  | Server.Protocol.Client name ->
    conn.Conn.tenant <- Tenant.find t.tenants name;
    push_lines t conn [ "HELLO " ^ name ]
  | Server.Protocol.Bad msg -> push_lines t conn [ msg ]
  | Server.Protocol.Stats -> push_item t conn Conn.Stats_here
  | Server.Protocol.Sync ->
    conn.Conn.blocked <- true;
    push_item t conn Conn.Sync_here
  | Server.Protocol.Open_session -> handle_open t conn
  | Server.Protocol.Solve_file { file; deadline; priority } ->
    handle_solve_file t conn ~file ~deadline ~priority
  | Server.Protocol.Session_solve { sid; deadline } ->
    handle_session t conn ~sid ~verb:"solve" (fun () ->
        Server.submit_session_solve t.engine ?deadline sid)
  | Server.Protocol.Session_op { sid; verb; op } ->
    handle_session t conn ~sid ~verb (fun () ->
        Server.session_submit t.engine sid op)

let rec process_lines t conn =
  if (not conn.Conn.closed) && not conn.Conn.blocked then
    match conn.Conn.lines_pending with
    | [] -> ()
    | line :: rest ->
      conn.Conn.lines_pending <- rest;
      (* QUIT clears [lines_pending] itself, so a command that arrived
         in the same chunk after QUIT is dropped — and the final
         unterminated line delivered at EOF still dispatches. *)
      process_line t conn line;
      process_lines t conn

(* Render completed answers into out buffers until no connection has
   renderable progress left.  A SYNC release re-opens command intake,
   which may push new items, so loop to a fixed point. *)
let rec drain_dirty t =
  Mutex.lock t.cm;
  let dirty = t.dirty in
  t.dirty <- [];
  let unblocked = ref [] in
  List.iter (fun conn -> flush_ready t conn unblocked) dirty;
  let more = t.dirty <> [] in
  Mutex.unlock t.cm;
  List.iter (fun conn -> process_lines t conn) !unblocked;
  let more =
    more
    ||
    (Mutex.lock t.cm;
     let d = t.dirty <> [] in
     Mutex.unlock t.cm;
     d)
  in
  if more then drain_dirty t

(* --- reading ---------------------------------------------------------- *)

let handle_read t conn scratch =
  match Unix.read conn.Conn.fd_in scratch 0 (Bytes.length scratch) with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (_, _, _) -> force_close t conn
  | 0 ->
    conn.Conn.eof <- true;
    (* A final command without a trailing newline still counts — same
       contract as the channel transport's [input_line]. *)
    (match Framing.finish conn.Conn.framing with
     | Some line ->
       conn.Conn.lines_pending <- conn.Conn.lines_pending @ [ line ]
     | None -> ());
    process_lines t conn
  | n -> (
    match Framing.feed conn.Conn.framing scratch n with
    | Error `Line_too_long ->
      conn.Conn.eof <- true;
      conn.Conn.lines_pending <- [];
      push_lines t conn [ "ERROR line too long" ]
    | Ok lines ->
      conn.Conn.lines_pending <- conn.Conn.lines_pending @ lines;
      process_lines t conn)

(* Refuse an accepted connection: answer, count, close.  Used for the
   connection-count bound, for fds select could not handle, and for
   the EMFILE shed path. *)
let refuse_accept t fd =
  m_rejected t anon_client;
  let msg = "REJECTED overloaded\n" in
  (try ignore (Unix.write_substring fd msg 0 (String.length msg))
   with _ -> ());
  try Unix.close fd with _ -> ()

let handle_accept t l =
  match Unix.accept ~cloexec:true l.lfd with
  | exception
      Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
          | Unix.ECONNABORTED ),
          _, _ ) -> ()
  | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) -> (
    (* The process is out of descriptors.  Sacrifice the spare fd so
       the waiting connection can be accepted and told why it is being
       turned away; otherwise the listener stays readable and the loop
       spins on a connection it can never service. *)
    match t.spare_fd with
    | None -> ()
    | Some spare ->
      t.spare_fd <- None;
      (try Unix.close spare with _ -> ());
      (match Unix.accept ~cloexec:true l.lfd with
       | exception _ -> ()
       | fd, _ -> refuse_accept t fd);
      (try
         t.spare_fd <-
           Some
             (Unix.openfile "/dev/null"
                [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0)
       with _ -> ()))
  | fd, peer_addr ->
    if Hashtbl.length t.conns >= t.max_clients || fd_int fd >= fd_setsize
    then refuse_accept t fd
    else begin
      Unix.set_nonblock fd;
      let peer =
        match peer_addr with
        | Unix.ADDR_INET (a, p) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX _ -> l.l_desc
      in
      ignore
        (new_conn t ~fd_in:fd ~fd_out:fd ~owns_fds:true ~peer
           ~max_out:t.cfg.conn_buffer)
    end

(* --- the loop --------------------------------------------------------- *)

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let sweep t =
  List.iter
    (fun conn ->
      if Conn.over_hard_limit conn then
        (* The peer has stopped reading: cut it loose rather than
           buffer without bound.  In-flight engine work still resolves
           (and releases its quota slot); the rendered bytes are
           dropped with the connection. *)
        force_close t conn
      else if
        conn.Conn.eof
        && conn.Conn.lines_pending = []
        && Queue.is_empty conn.Conn.items
        && Conn.pending_out conn = 0
      then force_close t conn)
    (conn_list t)

let run t =
  let scratch = Bytes.create 65536 in
  let drained = ref false in
  let stop = ref false in
  while not !stop do
    if Atomic.get t.draining && not !drained then begin
      drained := true;
      close_listeners t;
      (* Drain contract: stop accepting, stop reading, drop commands
         that were buffered but never dispatched, finish and flush
         everything already in flight. *)
      Hashtbl.iter
        (fun _ c ->
          c.Conn.eof <- true;
          c.Conn.lines_pending <- [])
        t.conns
    end;
    drain_dirty t;
    List.iter
      (fun conn ->
        if (not conn.Conn.closed) && Conn.pending_out conn > 0 then
          match Conn.try_write conn with
          | `Ok -> ()
          | `Peer_gone -> force_close t conn)
      (conn_list t);
    sweep t;
    if Hashtbl.length t.conns = 0 && t.listeners = [] then stop := true
    else begin
      let reads = ref [ t.wake_r ] in
      (* Listeners stay selectable at capacity: the accept path itself
         refuses the surplus connection with an answer, which beats
         letting it sit unanswered in the backlog. *)
      List.iter (fun l -> reads := l.lfd :: !reads) t.listeners;
      Hashtbl.iter
        (fun _ c ->
          if (not c.Conn.eof) && not c.Conn.blocked then
            reads := c.Conn.fd_in :: !reads)
        t.conns;
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
            if Conn.pending_out c > 0 then c.Conn.fd_out :: acc else acc)
          t.conns []
      in
      match Unix.select !reads writes [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | r, w, _ ->
        if List.memq t.wake_r r then drain_wake t;
        List.iter
          (fun l -> if List.memq l.lfd r then handle_accept t l)
          t.listeners;
        List.iter
          (fun conn ->
            if (not conn.Conn.closed) && List.memq conn.Conn.fd_in r then
              handle_read t conn scratch)
          (conn_list t);
        List.iter
          (fun conn ->
            if
              (not conn.Conn.closed)
              && List.memq conn.Conn.fd_out w
              && Conn.pending_out conn > 0
            then
              match Conn.try_write conn with
              | `Ok -> ()
              | `Peer_gone -> force_close t conn)
          (conn_list t)
    end
  done;
  (* Loop exit is the fully-drained state; leave the wake pipe to the
     process (create/run may not be paired with a destructor), but
     make sure listener sockets and paths are gone. *)
  close_listeners t
