(** Incremental newline framing for non-blocking transports.

    A [Framing.t] accumulates raw chunks as they arrive from a socket
    and yields complete lines.  The contract matches the stdin
    protocol reader: lines end at ['\n'], an optional trailing ['\r']
    is stripped (telnet/nc on Windows), and a final unterminated line
    is delivered at EOF via {!finish}.

    The accumulator is bounded: a peer that streams more than
    [max_line] bytes without a newline gets [`Line_too_long], which the
    connection layer turns into a protocol error and disconnect —
    framing is the first backpressure edge against hostile input. *)

type t

val create : ?max_line:int -> unit -> t
(** [max_line] (default 1 MiB) bounds the partial-line buffer. *)

val feed : t -> bytes -> int -> (string list, [ `Line_too_long ]) result
(** [feed t bytes len] consumes [len] bytes from the front of [bytes]
    and returns the complete lines they finish, in arrival order.
    Partial trailing input is buffered for the next call. *)

val finish : t -> string option
(** The buffered unterminated line at EOF, if any.  Resets the
    buffer. *)

val buffered : t -> int
(** Bytes currently buffered awaiting a newline. *)
