(** The socket front-end: one single-threaded [Unix.select] event
    loop multiplexing many concurrent TCP / Unix-domain / stdio
    connections over one shared {!Server} engine.

    {2 Architecture}

    The loop owns every connection ({!Conn.t}): it accepts, reads,
    frames ({!Framing}), parses ({!Server.Protocol.parse_request}),
    dispatches to the engine, renders answers and writes — all on one
    thread, so no per-connection state needs locking.  Solves
    themselves run on the engine's worker domains; completion flows
    back through {!Server.on_answer} / {!Server.Session.on_answer}
    callbacks that fill the connection's pending answer slot under the
    loop's completion mutex and wake the loop through a self-pipe.
    The loop never blocks on the engine and never blocks on a client:
    reads and writes are non-blocking, answers buffer per connection
    (bounded), and a slow client is first refused new work
    ([REJECTED overloaded] past half its buffer bound) and then
    disconnected (past the full bound).

    Each client observes its own answers in submission order —
    {!Conn.item} FIFOs make an early-resolving answer wait for the
    ones submitted before it — while different connections proceed
    independently.

    {2 Multi-tenancy}

    Connections start as the ["anon"] tenant and may declare a client
    id with [CLIENT <name>] (answered [HELLO <name>]).  A tenant's
    {!Tenant.limits} cap its in-flight engine commands across all of
    its connections ([REJECTED quota]) and floor its job priorities.
    Sessions are owned by the tenant that [OPEN]ed them; other tenants
    get [REJECTED not-owner].  Per-tenant request/answered/rejected
    counters land in {!Server.Metrics} and come back in STATS/METRICS
    JSON under ["clients"].

    [PING] ([PONG]) and [METRICS] answer {e out of band} — ahead of
    queued answers — so health probes work on a connection that is
    waiting on a long solve.

    {2 Drain}

    {!request_drain} (the SIGINT/SIGTERM path) closes the listeners,
    stops reading, drops commands that were buffered but never
    dispatched, finishes every dispatched command, flushes every
    buffer and lets {!run} return — zero in-flight answers are
    lost. *)

type config = {
  max_clients : int;
      (** accepted connections at once (default 256).  [Unix.select]
          cannot watch descriptors numbered past FD_SETSIZE (1024), so
          the effective bound is clamped at {!create} to the fd budget
          — FD_SETSIZE minus head room for the wake pipe, listeners,
          stdio and the process's other descriptors; see
          {!effective_max_clients}.  Surplus connections are answered
          [REJECTED overloaded] and closed. *)
  conn_buffer : int;
      (** per-connection write-buffer bound in bytes (default 4 MiB);
          half of it is the overload watermark *)
  max_line : int;      (** per-line input bound (default 1 MiB) *)
  default_limits : Tenant.limits;  (** limits of undeclared tenants *)
  tenant_limits : (string * Tenant.limits) list;
      (** per-tenant overrides, applied at startup *)
  load : string -> Server.input;
      (** SOLVE operand loader (default
          {!Server.Protocol.default_load_input}: zero-copy mmap DIMACS,
          circuit pipeline for [.aag]).  Each successful load is timed
          into {!Server.Metrics.record_parse}. *)
}

val default_config : config

type t

val create : ?config:config -> Server.t -> t
(** A loop bound to an engine.  Does not own the engine's lifecycle:
    the caller shuts it down after {!run} returns. *)

val add_tcp : t -> host:string -> port:int -> string * int
(** Bind and listen on [host:port]; [port = 0] picks a free port.
    Returns the bound address and port. *)

val add_unix : t -> string -> unit
(** Bind and listen on a Unix-domain socket path.  A stale socket
    file left by a dead server is replaced; any other existing file is
    an error.  The path is unlinked when the listener closes. *)

val add_stdio : t -> unit
(** Attach stdin/stdout as one more connection — the [serve] pipe
    mode runs through the same loop, framing and dispatch as socket
    clients (unbounded out-buffer, fds not closed). *)

val request_drain : t -> unit
(** Begin graceful shutdown (async-signal safe: a flag and a self-pipe
    byte).  {!run} returns once every connection has drained. *)

val draining : t -> bool
val connections : t -> int

val effective_max_clients : t -> int
(** The connection bound actually enforced: [config.max_clients]
    clamped to the select fd budget (FD_SETSIZE = 1024 minus reserved
    head room).  A [--max-clients 100000] server therefore refuses its
    993rd concurrent connection instead of crashing the event loop the
    first time an accepted fd reaches 1024.  Independently of the
    count, any accepted descriptor numbered ≥ FD_SETSIZE is refused,
    and an accept failing with EMFILE/ENFILE sheds the pending
    connection gracefully through a sacrificial spare descriptor. *)

val run : t -> unit
(** Drive the loop until done: no listeners left (never added, or
    closed by drain) and no connections left.  With only stdio
    attached this returns at EOF/QUIT, like the channel transport. *)
