type limits = {
  quota : int;
  priority_floor : int;
}

let unlimited = { quota = 0; priority_floor = 0 }

type tenant = {
  name : string;
  mutable limits : limits;
  mutable inflight : int;
}

type t = {
  m : Mutex.t;
  default : limits;
  overrides : (string, limits) Hashtbl.t;
  tenants : (string, tenant) Hashtbl.t;
}

let create ?(default = unlimited) () =
  {
    m = Mutex.create ();
    default;
    overrides = Hashtbl.create 8;
    tenants = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let set_limits t name limits =
  locked t (fun () ->
      Hashtbl.replace t.overrides name limits;
      match Hashtbl.find_opt t.tenants name with
      | Some cell -> cell.limits <- limits
      | None -> ())

let find t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | Some cell -> cell
      | None ->
        let limits =
          match Hashtbl.find_opt t.overrides name with
          | Some l -> l
          | None -> t.default
        in
        let cell = { name; limits; inflight = 0 } in
        Hashtbl.replace t.tenants name cell;
        cell)

let name cell = cell.name
let limits cell = cell.limits
let inflight t cell = locked t (fun () -> cell.inflight)

let try_acquire t cell =
  locked t (fun () ->
      if cell.limits.quota > 0 && cell.inflight >= cell.limits.quota then false
      else begin
        cell.inflight <- cell.inflight + 1;
        true
      end)

let release t cell =
  locked t (fun () -> if cell.inflight > 0 then cell.inflight <- cell.inflight - 1)

let effective_priority cell requested =
  let p = match requested with Some p -> p | None -> 0 in
  if p < cell.limits.priority_floor then cell.limits.priority_floor else p

(* "name=QUOTA" or "name=QUOTA:FLOOR" *)
let parse_spec spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "bad tenant spec %S: expected name=QUOTA[:FLOOR]" spec)
  | Some eq ->
    let name = String.sub spec 0 eq in
    let rest = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    if name = "" then Error (Printf.sprintf "bad tenant spec %S: empty name" spec)
    else
      let quota_s, floor_s =
        match String.index_opt rest ':' with
        | None -> (rest, "0")
        | Some c ->
          ( String.sub rest 0 c,
            String.sub rest (c + 1) (String.length rest - c - 1) )
      in
      (match (int_of_string_opt quota_s, int_of_string_opt floor_s) with
       | Some q, Some f when q >= 0 ->
         Ok (name, { quota = q; priority_floor = f })
       | _ ->
         Error
           (Printf.sprintf "bad tenant spec %S: expected name=QUOTA[:FLOOR]"
              spec))
