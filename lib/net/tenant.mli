(** Multi-tenant admission state for the socket front-end.

    Each connection runs on behalf of a {e tenant} (client id),
    declared with the [CLIENT] verb; connections that never declare
    one share the ["anon"] tenant.  A tenant carries two limits:

    - [quota]: maximum engine commands in flight at once across all of
      the tenant's connections (0 = unlimited).  Admission is
      [try_acquire]/[release] around each engine submission; a failed
      acquire answers [REJECTED quota] without touching the engine.
    - [priority_floor]: every job the tenant submits is raised to at
      least this priority, so an operator can keep an interactive
      tenant responsive under batch load.

    The registry resolves a tenant's limits once, at first sight:
    startup [set_limits] overrides win over the default. *)

type limits = {
  quota : int;          (** max in-flight engine commands; 0 = unlimited *)
  priority_floor : int; (** minimum effective job priority *)
}

val unlimited : limits

type tenant
type t

val create : ?default:limits -> unit -> t
val set_limits : t -> string -> limits -> unit

val find : t -> string -> tenant
(** Get-or-create the tenant record for a client id. *)

val name : tenant -> string
val limits : tenant -> limits
val inflight : t -> tenant -> int

val try_acquire : t -> tenant -> bool
(** Reserve one in-flight slot; [false] means the quota is exhausted
    and the command must be rejected. *)

val release : t -> tenant -> unit
(** Return a slot reserved by [try_acquire].  Call exactly once per
    successful acquire, when the command's answer resolves or its
    submission fails. *)

val effective_priority : tenant -> int option -> int
(** The requested priority (default 0) raised to the tenant's
    floor. *)

val parse_spec : string -> (string * limits, string) result
(** Parse a [--tenant NAME=QUOTA[:FLOOR]] command-line spec. *)
