type pending = { mutable lines : string list option }

type item =
  | Lines of string list
  | Pending of pending
  | Stats_here
  | Sync_here

type t = {
  id : int;
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  owns_fds : bool;
  peer : string;
  framing : Framing.t;
  items : item Queue.t;
  mutable lines_pending : string list;
  mutable blocked : bool;
  mutable eof : bool;
  mutable closed : bool;
  out : Buffer.t;
  mutable out_off : int;
  max_out : int;
  mutable tenant : Tenant.tenant;
  mutable seq : int;
}

let create ~id ~fd_in ~fd_out ~owns_fds ~peer ~max_out ~max_line ~tenant =
  {
    id;
    fd_in;
    fd_out;
    owns_fds;
    peer;
    framing = Framing.create ~max_line ();
    items = Queue.create ();
    lines_pending = [];
    blocked = false;
    eof = false;
    closed = false;
    out = Buffer.create 4096;
    out_off = 0;
    max_out;
    tenant;
    seq = 0;
  }

let pending_out t = Buffer.length t.out - t.out_off

let compact t =
  if t.out_off >= Buffer.length t.out then begin
    Buffer.clear t.out;
    t.out_off <- 0
  end

let append_lines t lines =
  List.iter
    (fun l ->
      Buffer.add_string t.out l;
      Buffer.add_char t.out '\n')
    lines

(* Write as much of the out buffer as the kernel will take without
   blocking.  [`Peer_gone] covers EPIPE/ECONNRESET — the caller must
   drop the connection; EAGAIN just leaves the rest for the next
   writable event. *)
let rec try_write t =
  let len = pending_out t in
  if len <= 0 then begin
    compact t;
    `Ok
  end
  else
    let chunk = min len 65536 in
    let s = Buffer.sub t.out t.out_off chunk in
    match Unix.write_substring t.fd_out s 0 chunk with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Ok
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_write t
    | exception Unix.Unix_error (_, _, _) -> `Peer_gone
    | n ->
      t.out_off <- t.out_off + n;
      if n < chunk then `Ok else try_write t

let overloaded t = t.max_out > 0 && pending_out t > t.max_out / 2
let over_hard_limit t = t.max_out > 0 && pending_out t > t.max_out
