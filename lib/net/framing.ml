type t = {
  max_line : int;
  buf : Buffer.t;  (* the current partial line (no newline seen yet) *)
}

let create ?(max_line = 1 lsl 20) () =
  if max_line < 1 then invalid_arg "Framing.create: max_line < 1";
  { max_line; buf = Buffer.create 256 }

let buffered t = Buffer.length t.buf

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let take_line t =
  let line = strip_cr (Buffer.contents t.buf) in
  Buffer.clear t.buf;
  line

let feed t bytes len =
  let lines = ref [] in
  let start = ref 0 in
  for i = 0 to len - 1 do
    if Bytes.get bytes i = '\n' then begin
      Buffer.add_subbytes t.buf bytes !start (i - !start);
      lines := take_line t :: !lines;
      start := i + 1
    end
  done;
  Buffer.add_subbytes t.buf bytes !start (len - !start);
  (* The partial-line bound is the anti-flooding edge: a peer that
     streams without ever sending a newline must not grow our memory
     without bound. *)
  if Buffer.length t.buf > t.max_line then Error `Line_too_long
  else Ok (List.rev !lines)

let finish t = if Buffer.length t.buf = 0 then None else Some (take_line t)
