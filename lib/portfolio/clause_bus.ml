type inbox = {
  lock : Mutex.t;
  q : (int array * int) Queue.t;
}

type t = {
  groups : int option array;
  inboxes : inbox array;
  published : int Atomic.t;
  delivered : int Atomic.t;
  dropped : int Atomic.t;
}

let capacity = 4096

let create ~groups =
  {
    groups = Array.copy groups;
    inboxes =
      Array.init (Array.length groups) (fun _ ->
          { lock = Mutex.create (); q = Queue.create () });
    published = Atomic.make 0;
    delivered = Atomic.make 0;
    dropped = Atomic.make 0;
  }

let locked inbox f =
  Mutex.lock inbox.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock inbox.lock) f

let publish t ~worker clause lbd =
  match t.groups.(worker) with
  | None -> ()
  | Some g ->
    Atomic.incr t.published;
    Array.iteri
      (fun i group ->
        if i <> worker && group = Some g then begin
          let inbox = t.inboxes.(i) in
          let accepted =
            locked inbox (fun () ->
                if Queue.length inbox.q < capacity then begin
                  (* Fresh copy per receiver: neither the publisher's
                     later mutations (e.g. a buffer reused across
                     exports) nor one importer's can reach another. *)
                  Queue.add (Array.copy clause, lbd) inbox.q;
                  true
                end
                else false)
          in
          if accepted then Atomic.incr t.delivered
          else Atomic.incr t.dropped
        end)
      t.groups

let drain t ~worker =
  let inbox = t.inboxes.(worker) in
  locked inbox (fun () ->
      let acc = ref [] in
      Queue.iter (fun c -> acc := c :: !acc) inbox.q;
      Queue.clear inbox.q;
      List.rev !acc)

let published t = Atomic.get t.published
let delivered t = Atomic.get t.delivered
let dropped t = Atomic.get t.dropped
