type worker_outcome =
  | Answered of Sat.Solver.result * Sat.Solver.stats
  | Cancelled
  | Limit of Sat.Solver.stats
  | Failed of string

type worker_report = {
  strategy : Strategy.t;
  outcome : worker_outcome;
}

type outcome = {
  result : Sat.Solver.result;
  winner : int option;
  stats : Sat.Solver.stats;
  wall : float;
  workers : worker_report array;
  shared_published : int;
  shared_delivered : int;
  shared_dropped : int;
}

let empty_stats =
  {
    Sat.Solver.decisions = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    reduces = 0;
    probed = 0;
    vivified = 0;
    inproc_subsumed = 0;
    max_decision_level = 0;
    time = 0.0;
    cpu_time = 0.0;
    minor_words = 0.0;
    major_collections = 0;
  }

let result_name = function
  | Sat.Solver.Sat _ -> "SAT"
  | Sat.Solver.Unsat -> "UNSAT"
  | Sat.Solver.Unknown -> "UNKNOWN"

let take n l = List.filteri (fun i _ -> i < n) l

(* A prepared lane's optional model lift: report [Sat] answers over the
   input formula's variables when the lane knows how. *)
let apply_lift lift result =
  match (result, lift) with
  | Sat.Solver.Sat m, Some g -> Sat.Solver.Sat (g m)
  | _ -> result

(* --- sequential race (jobs = 1) ------------------------------------- *)

(* Deterministic: strategies run one after the other under the full
   limits, no domains, no sharing, no interrupts.  The caller's proof
   is threaded directly into the direct lanes, so the first lane is
   bit-identical to a plain [Sat.Solver.solve]. *)
let run_sequential ~limits ~proof ~interrupt ~log strategies formula =
  let t0 = Sat.Wall.now () in
  let interrupted () =
    match interrupt with
    | Some i -> Sat.Solver.Interrupt.is_set i
    | None -> false
  in
  let strategies = Array.of_list strategies in
  let reports =
    Array.map (fun strategy -> { strategy; outcome = Cancelled }) strategies
  in
  let winner = ref None in
  let i = ref 0 in
  while !winner = None && !i < Array.length strategies && not (interrupted ())
  do
    let st = strategies.(!i) in
    let outcome =
      try
        let f, lift = match st.Strategy.prepare with
          | None -> (formula, None)
          | Some prep -> prep ~stop:interrupted
        in
        let wproof =
          if st.Strategy.share_group = Some 0 then proof else None
        in
        let result, stats =
          Sat.Solver.solve ~limits ?proof:wproof ?interrupt
            ~heuristic:st.Strategy.heuristic ~restarts:st.Strategy.restarts f
        in
        let result = apply_lift lift result in
        match result with
        | Sat.Solver.Sat _ | Sat.Solver.Unsat ->
          winner := Some !i;
          Answered (result, stats)
        | Sat.Solver.Unknown -> Limit stats
      with
      | _ when interrupted () ->
        (* A preparation abandoned because the caller cancelled raises
           out of its [stop] poll; not a failure. *)
        Cancelled
      | e -> Failed (Printexc.to_string e)
    in
    (match outcome with
     | Answered (r, st') ->
       log (Printf.sprintf "lane %d (%s): %s in %.3fs" !i st.Strategy.name
              (result_name r) st'.Sat.Solver.time)
     | Limit _ ->
       log (Printf.sprintf "lane %d (%s): limit" !i st.Strategy.name)
     | Failed msg ->
       log (Printf.sprintf "lane %d (%s) failed: %s" !i st.Strategy.name msg)
     | Cancelled -> ());
    reports.(!i) <- { strategy = st; outcome };
    incr i
  done;
  let result, stats =
    match !winner with
    | Some w -> (
      match reports.(w).outcome with
      | Answered (r, s) -> (r, s)
      | _ -> assert false)
    | None -> (Sat.Solver.Unknown, empty_stats)
  in
  {
    result;
    winner = !winner;
    stats;
    wall = Sat.Wall.now () -. t0;
    workers = reports;
    shared_published = 0;
    shared_delivered = 0;
    shared_dropped = 0;
  }

(* --- reusable worker pool -------------------------------------------- *)

(* A persistent set of worker domains consuming race tasks from one
   queue.  Spawning a domain costs a thread plus a GC registration;
   under the solve service every job runs a race, so the domains are
   created once per server (or once per [run] call on the one-shot
   path) instead of once per race. *)
type pool = {
  size : int;
  tasks : (unit -> unit) Queue.t;
  pm : Mutex.t;
  pc : Condition.t;
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
}

let create_pool ~jobs () =
  let size = max 1 jobs in
  let pool =
    {
      size;
      tasks = Queue.create ();
      pm = Mutex.create ();
      pc = Condition.create ();
      stopped = false;
      domains = [||];
    }
  in
  let rec worker () =
    Mutex.lock pool.pm;
    while Queue.is_empty pool.tasks && not pool.stopped do
      Condition.wait pool.pc pool.pm
    done;
    if Queue.is_empty pool.tasks then Mutex.unlock pool.pm (* stopped *)
    else begin
      let task = Queue.pop pool.tasks in
      Mutex.unlock pool.pm;
      (* Tasks are latch-wrapped race lanes that catch their own
         exceptions; the guard here only protects the pool itself. *)
      (try task () with _ -> ());
      worker ()
    end
  in
  pool.domains <- Array.init size (fun _ -> Domain.spawn worker);
  pool

let pool_size pool = pool.size

let submit_task pool task =
  Mutex.lock pool.pm;
  if pool.stopped then begin
    Mutex.unlock pool.pm;
    invalid_arg "Runner: pool is shut down"
  end;
  Queue.push task pool.tasks;
  Condition.signal pool.pc;
  Mutex.unlock pool.pm

let shutdown_pool pool =
  Mutex.lock pool.pm;
  let first = not pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.pc;
  Mutex.unlock pool.pm;
  if first then Array.iter Domain.join pool.domains

(* Fan a batch of thunks onto the pool and wait for all of them — the
   cube scheduler's dispatch primitive.  Thunk exceptions are swallowed
   (each thunk is expected to record its own outcome); the latch always
   reaches zero. *)
let dispatch pool thunks =
  let n = Array.length thunks in
  if n > 0 then begin
    let remaining = ref n in
    let lm = Mutex.create () in
    let lc = Condition.create () in
    Array.iter
      (fun thunk ->
        submit_task pool (fun () ->
            (try thunk () with _ -> ());
            Mutex.lock lm;
            decr remaining;
            if !remaining = 0 then Condition.broadcast lc;
            Mutex.unlock lm))
      thunks;
    Mutex.lock lm;
    while !remaining > 0 do
      Condition.wait lc lm
    done;
    Mutex.unlock lm
  end

(* --- parallel race --------------------------------------------------- *)

let run_in ?(share_lbd = 4) ?(limits = Sat.Solver.no_limits) ?proof ?interrupt
    ?log pool strategies formula =
  if strategies = [] then invalid_arg "Runner.run_in: no strategies";
  let log_lock = Mutex.create () in
  let log msg =
    match log with
    | None -> ()
    | Some f ->
      Mutex.lock log_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock log_lock) (fun () -> f msg)
  in
  begin
    let t0 = Sat.Wall.now () in
    let c0 = Sys.time () in
    let strategies = Array.of_list (take pool.size strategies) in
    let n = Array.length strategies in
    let bus =
      Clause_bus.create
        ~groups:(Array.map (fun s -> s.Strategy.share_group) strategies)
    in
    (* The race's cancellation flag.  When the caller supplies
       [interrupt], that flag IS the race flag: an external set (a
       job deadline, a server shutdown) cancels every lane, and the
       runner sets it itself once the race is decided. *)
    let cancel =
      match interrupt with
      | Some i -> i
      | None -> Sat.Solver.Interrupt.create ()
    in
    (* First decisive answer wins; the CAS arbitrates photo finishes. *)
    let race_winner = Atomic.make (-1) in
    (* Direct lanes log into one deletion-free shared recorder (see
       Proof's documentation for why the merged log stays checkable);
       it is replayed into the caller's recorder only if the race
       refutes the formula via a direct lane. *)
    let shared_proof =
      match proof with
      | None -> None
      | Some _ -> Some (Sat.Proof.create ~record_deletions:false ())
    in
    let work i =
      let st = strategies.(i) in
      try
        let f, lift = match st.Strategy.prepare with
          | None -> (formula, None)
          | Some prep ->
            prep ~stop:(fun () -> Sat.Solver.Interrupt.is_set cancel)
        in
        if Sat.Solver.Interrupt.is_set cancel then Cancelled
        else begin
          let sharing = share_lbd > 0 && st.Strategy.share_group <> None in
          let export =
            if sharing then
              Some (fun clause lbd -> Clause_bus.publish bus ~worker:i clause lbd)
            else None
          and import =
            if sharing then Some (fun () -> Clause_bus.drain bus ~worker:i)
            else None
          in
          let wproof =
            if st.Strategy.share_group = Some 0 then shared_proof else None
          in
          let result, stats =
            Sat.Solver.solve ~limits ?proof:wproof
              ~heuristic:st.Strategy.heuristic
              ~restarts:st.Strategy.restarts ~interrupt:cancel ?export
              ~export_lbd:(if share_lbd > 0 then share_lbd else max_int)
              ?import f
          in
          let result = apply_lift lift result in
          match result with
          | Sat.Solver.Sat _ | Sat.Solver.Unsat ->
            if Atomic.compare_and_set race_winner (-1) i then begin
              log (Printf.sprintf "worker %d (%s): %s in %.3fs — race won" i
                     st.Strategy.name (result_name result)
                     stats.Sat.Solver.time);
              Sat.Solver.Interrupt.set cancel
            end;
            Answered (result, stats)
          | Sat.Solver.Unknown ->
            if Sat.Solver.Interrupt.is_set cancel then Cancelled
            else Limit stats
        end
      with
      | _ when Sat.Solver.Interrupt.is_set cancel ->
        (* A preparation abandoned because the race is over raises out
           of its [stop] poll; that is a cancellation, not a failure. *)
        Cancelled
      | e ->
        let msg = Printexc.to_string e in
        log (Printf.sprintf "worker %d (%s) failed: %s — racing on" i
               st.Strategy.name msg);
        Failed msg
    in
    (* Fan the lanes out to the pool and wait on a countdown latch.
       With fewer workers than lanes the excess lanes start when a
       worker frees up; a lane that starts after the race is decided
       answers [Cancelled] from its entry interrupt check. *)
    let outcomes = Array.make n Cancelled in
    let remaining = ref n in
    let lm = Mutex.create () in
    let lc = Condition.create () in
    Array.iteri
      (fun i _ ->
        submit_task pool (fun () ->
            let o = work i in
            Mutex.lock lm;
            outcomes.(i) <- o;
            decr remaining;
            if !remaining = 0 then Condition.broadcast lc;
            Mutex.unlock lm))
      strategies;
    Mutex.lock lm;
    while !remaining > 0 do
      Condition.wait lc lm
    done;
    Mutex.unlock lm;
    let winner =
      match Atomic.get race_winner with -1 -> None | i -> Some i
    in
    (* [Sys.time] is process-wide, so each lane's own reading
       over-attributes the other domains' concurrent work to it.  The
       race-level delta measured here is the only meaningful CPU
       figure: it goes into the winner's stats, and the per-lane field
       is zeroed everywhere else (see [Sat.Solver.stats.cpu_time]). *)
    let race_cpu = Sys.time () -. c0 in
    let outcomes =
      Array.mapi
        (fun i o ->
          let cpu = if Some i = winner then race_cpu else 0.0 in
          match o with
          | Answered (r, s) ->
            Answered (r, { s with Sat.Solver.cpu_time = cpu })
          | Limit s -> Limit { s with Sat.Solver.cpu_time = cpu }
          | o -> o)
        outcomes
    in
    let workers =
      Array.init n (fun i ->
          { strategy = strategies.(i); outcome = outcomes.(i) })
    in
    let result, stats =
      match winner with
      | Some w -> (
        match outcomes.(w) with
        | Answered (r, s) -> (r, s)
        | _ -> assert false)
      | None -> (Sat.Solver.Unknown, empty_stats)
    in
    (match (result, proof, shared_proof) with
     | Sat.Solver.Unsat, Some p, Some sp when Sat.Proof.sealed sp ->
       Sat.Proof.replay ~into:p sp
     | _ -> ());
    {
      result;
      winner;
      stats;
      wall = Sat.Wall.now () -. t0;
      workers;
      shared_published = Clause_bus.published bus;
      shared_delivered = Clause_bus.delivered bus;
      shared_dropped = Clause_bus.dropped bus;
    }
  end

(* --- one-shot entry point -------------------------------------------- *)

let run ?(jobs = 4) ?(share_lbd = 4) ?(limits = Sat.Solver.no_limits) ?proof
    ?interrupt ?log strategies formula =
  if strategies = [] then invalid_arg "Runner.run: no strategies";
  let jobs = max 1 jobs in
  if jobs = 1 then begin
    let log_lock = Mutex.create () in
    let log msg =
      match log with
      | None -> ()
      | Some f ->
        Mutex.lock log_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock log_lock) (fun () ->
            f msg)
    in
    run_sequential ~limits ~proof ~interrupt ~log strategies formula
  end
  else begin
    (* Delegate to a transient pool sized to the race: same worker
       closures, same arbitration, so the outcome is identical to the
       historical spawn-per-lane implementation — the domains are just
       recruited from a pool that lives exactly as long as the race. *)
    let pool =
      create_pool ~jobs:(min jobs (List.length strategies)) ()
    in
    Fun.protect
      ~finally:(fun () -> shutdown_pool pool)
      (fun () ->
        run_in ~share_lbd ~limits ?proof ?interrupt ?log pool strategies
          formula)
  end
