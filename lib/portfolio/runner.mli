(** Domain-based portfolio racing with first-wins cancellation.

    [run] races one worker domain per strategy.  Each worker builds
    its lane's CNF ([Strategy.prepare], or the input formula), then
    drives {!Sat.Solver.solve} with the lane's heuristic and restart
    schedule, a shared {!Sat.Solver.Interrupt} flag, and — within its
    clause-sharing group — export/import hooks over a {!Clause_bus}.
    The first worker to answer [Sat]/[Unsat] wins the race atomically
    and interrupts every other worker; losers stop within one budget
    tick of their solver.  A worker that raises is logged and treated
    as a lost lane — the race keeps going (robustness, not a crash).
    All domains are joined before [run] returns: no worker outlives
    the call.

    {2 Proofs}

    With [?proof], the direct lanes (share group 0) append their
    learned clauses into one shared, deletion-free, mutex-guarded DRAT
    recorder ({!Sat.Proof}); clauses imported over the bus are already
    present in it, logged by their exporter, so the merged log is
    RUP-checkable against the input formula.  When the race answers
    [Unsat] {e and} the refutation was derived by a direct lane (the
    shared recorder is sealed by its empty clause), the log is
    replayed into the caller's [proof].  If a preprocessing lane wins
    [Unsat], its refutation concerns a transformed CNF and no DRAT
    trace for the input formula exists — the caller's recorder is left
    open (and unsealed), which the caller can observe via
    {!Sat.Proof.sealed}.

    {2 Sequential fallback}

    [~jobs:1] runs a deterministic sequential race: no domains, no
    sharing, no interrupts — strategies run one after the other, each
    under the full [limits], until one answers.  With the default pool
    this makes the first lane bit-identical to {!Sat.Solver.solve}
    (same decisions, conflicts, proof log and model). *)

type worker_outcome =
  | Answered of Sat.Solver.result * Sat.Solver.stats
      (** reached its own decisive answer (the winner, or a worker
          that crossed the line just after the winner) *)
  | Cancelled
      (** interrupted — or, sequentially, never started — because the
          race was already decided *)
  | Limit of Sat.Solver.stats
      (** hit [limits] on its own: a genuine [Unknown] *)
  | Failed of string  (** raised; the message is [Printexc.to_string] *)

type worker_report = {
  strategy : Strategy.t;
  outcome : worker_outcome;
}

type outcome = {
  result : Sat.Solver.result;
      (** the winner's answer; [Unknown] when every lane was a limit
          or a failure.  A [Sat] model from a prepared lane with a
          model lift ({!Strategy.prepared_lifted}) has been lifted and
          satisfies the input formula; from a lift-less prepared lane
          it satisfies that lane's CNF (equisatisfiable with the
          input), not necessarily the input formula — check
          [winner]. *)
  winner : int option;  (** index into [workers] *)
  stats : Sat.Solver.stats;
      (** the winner's; zeros when no winner.  In a parallel race the
          [cpu_time] field is the {e race-level} process-CPU delta
          (every per-lane reading would over-attribute the other
          domains' concurrent work, so the losing lanes' [cpu_time] is
          zeroed instead — see {!Sat.Solver.stats.cpu_time}). *)
  wall : float;  (** wall-clock seconds for the whole race *)
  workers : worker_report array;  (** one per strategy, in order *)
  shared_published : int;
  shared_delivered : int;
  shared_dropped : int;
}

val run :
  ?jobs:int ->
  ?share_lbd:int ->
  ?limits:Sat.Solver.limits ->
  ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t ->
  ?log:(string -> unit) ->
  Strategy.t list ->
  Cnf.Formula.t ->
  outcome
(** Race the strategies on a formula.  [jobs] (default 4) caps the
    number of worker domains: with [jobs = 1] the race is sequential
    (see above); otherwise the first [jobs] strategies race in
    parallel on a transient {!pool} that lives exactly as long as the
    race.  [share_lbd] (default 4) is the maximum glue value a
    learned clause may have to be exported to the lane's share group;
    [0] disables sharing.  [interrupt] is an {e external}
    cancellation flag: setting it from any domain cancels every lane
    (the race answers [Unknown]) — the solve service wires a per-job
    deadline to it.  When supplied it doubles as the race's internal
    first-wins flag, so the runner sets it itself once a lane answers;
    callers reusing the flag must {!Sat.Solver.Interrupt.clear} it
    between races.  [log] receives human-readable race events
    (serialized — safe to print). *)

(** {2 Reusable worker pools}

    A {!pool} is a persistent set of worker domains that many races
    dispatch onto, amortizing domain spawn/teardown across races — the
    regime a long-lived solve service runs in.  [run] is equivalent to
    creating a pool, racing once in it, and shutting it down. *)

type pool

val create_pool : jobs:int -> unit -> pool
(** Spawn [max 1 jobs] persistent worker domains, idle until a race
    dispatches onto them. *)

val pool_size : pool -> int

val run_in :
  ?share_lbd:int ->
  ?limits:Sat.Solver.limits ->
  ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t ->
  ?log:(string -> unit) ->
  pool ->
  Strategy.t list ->
  Cnf.Formula.t ->
  outcome
(** Race the first [pool_size pool] strategies on the pool's workers,
    with the same semantics as [run] at [jobs = pool_size pool] —
    except that a one-worker pool still runs the {e parallel} protocol
    (interrupts, clause bus) on its single domain rather than the
    deterministic sequential fallback.  Races on one pool are
    serialized by the caller's discipline, not the pool's: concurrent
    [run_in] calls on the same pool are safe but share workers, so
    each race may start with fewer domains than [pool_size].
    @raise Invalid_argument after {!shutdown_pool}. *)

val dispatch : pool -> (unit -> unit) array -> unit
(** Submit every thunk onto the pool and block until all of them have
    run — the cube scheduler's fan-out/join primitive.  A thunk's
    exception is swallowed (each thunk records its own outcome), so
    [dispatch] always returns.  Like {!run_in}, concurrent dispatches
    on one pool are safe but share workers.
    @raise Invalid_argument after {!shutdown_pool}. *)

val shutdown_pool : pool -> unit
(** Drain nothing, wake every idle worker and join the domains.
    Outstanding races must have returned; idempotent otherwise. *)
