type t = {
  name : string;
  heuristic : [ `Evsids | `Lrb ];
  restarts : [ `Luby | `Glucose ];
  share_group : int option;
  prepare :
    (stop:(unit -> bool) ->
     Cnf.Formula.t * (bool array -> bool array) option)
    option;
}

let direct ?(heuristic = `Evsids) ?(restarts = `Luby) name =
  { name; heuristic; restarts; share_group = Some 0; prepare = None }

let check_group = function
  | Some 0 -> invalid_arg "Strategy.prepared: share group 0 is direct-only"
  | _ -> ()

let prepared ?(heuristic = `Evsids) ?(restarts = `Luby) ?share_group name
    prepare =
  check_group share_group;
  { name; heuristic; restarts; share_group;
    prepare = Some (fun ~stop -> (prepare ~stop, None)) }

let prepared_lifted ?(heuristic = `Evsids) ?(restarts = `Luby) ?share_group
    name prepare =
  check_group share_group;
  { name; heuristic; restarts; share_group; prepare = Some prepare }

(* Anchor first, then alternate both axes at once (maximally different
   from the anchor), then the two mixed points. *)
let cycle =
  [| ("evsids/luby", `Evsids, `Luby);
     ("lrb/glucose", `Lrb, `Glucose);
     ("evsids/glucose", `Evsids, `Glucose);
     ("lrb/luby", `Lrb, `Luby) |]

let grid n =
  List.init n (fun i ->
      let name, h, r = cycle.(i mod Array.length cycle) in
      if i < Array.length cycle then (name, h, r)
      else (Printf.sprintf "%s#%d" name (i / Array.length cycle), h, r))

let default_pool ~jobs =
  List.map
    (fun (name, heuristic, restarts) ->
      direct ~heuristic ~restarts ("direct/" ^ name))
    (grid (max 1 jobs))

let pp ppf s =
  Format.fprintf ppf "%s (%s, %s%s%s)" s.name
    (match s.heuristic with `Evsids -> "evsids" | `Lrb -> "lrb")
    (match s.restarts with `Luby -> "luby" | `Glucose -> "glucose")
    (match s.prepare with None -> "" | Some _ -> ", prepared")
    (match s.share_group with
     | None -> ""
     | Some g -> Printf.sprintf ", share:%d" g)
