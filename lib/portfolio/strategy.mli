(** Diversified solver configurations for the portfolio race.

    A strategy names one lane of the race: a branching heuristic and a
    restart schedule for the CDCL core, optionally behind a [prepare]
    step that derives the CNF the lane actually solves (the EDA
    preprocessing pipeline is plugged in this way — preprocessing
    itself races against direct solving, paying its transformation
    time inside its own lane's wall clock).

    Lanes that solve the {e same} formula may exchange learned
    clauses; lanes solving a transformed (equisatisfiable but
    different) CNF must not — a clause learned from φ_out is not in
    general implied by φ_in.  [share_group] encodes this: only
    strategies with equal [Some g] exchange clauses, and only
    share-group-[0] (direct) lanes contribute to a shared DRAT
    recorder. *)

type t = {
  name : string;
  heuristic : [ `Evsids | `Lrb ];
  restarts : [ `Luby | `Glucose ];
  share_group : int option;
      (** clause-sharing partition; [None] never shares.  Group [0] is
          reserved for lanes solving the input formula directly. *)
  prepare :
    (stop:(unit -> bool) ->
     Cnf.Formula.t * (bool array -> bool array) option)
    option;
      (** build this lane's CNF (run inside the lane's own domain);
          [None] solves the input formula.  The second component is an
          optional {e model lift}: when the lane answers [Sat m] on its
          derived formula, the runner reports [Sat (lift m)] — lanes
          whose derivation preserves models (e.g. CNF-level
          simplification with a reconstruction function) use it to
          answer over the {e input} formula's variables.  [stop] polls
          race cancellation — a preparation that honours it (by
          raising) lets a lost lane abandon an expensive transformation
          early.  [prepare <> None] requires [share_group <> Some 0]. *)
}

val direct : ?heuristic:[ `Evsids | `Lrb ] -> ?restarts:[ `Luby | `Glucose ]
  -> string -> t
(** A lane solving the input formula (share group 0).  Defaults:
    EVSIDS, Luby — the exact configuration of {!Sat.Solver.solve},
    which makes [direct "x"] the deterministic anchor lane. *)

val prepared : ?heuristic:[ `Evsids | `Lrb ] -> ?restarts:[ `Luby | `Glucose ]
  -> ?share_group:int -> string -> (stop:(unit -> bool) -> Cnf.Formula.t) -> t
(** A lane that first derives its own CNF (no model lift: a [Sat]
    answer carries the derived formula's model).  [share_group]
    defaults to [None] (no sharing); groups [> 0] may be used for
    several lanes known to solve the identical derived formula. *)

val prepared_lifted : ?heuristic:[ `Evsids | `Lrb ]
  -> ?restarts:[ `Luby | `Glucose ] -> ?share_group:int -> string
  -> (stop:(unit -> bool) -> Cnf.Formula.t * (bool array -> bool array) option)
  -> t
(** As {!prepared}, but the preparation may also return a model lift
    mapping the derived formula's models back to the input formula's
    variables (see {!t.prepare}).  Used by the CNF-simplification
    lanes, whose [Cnf.Simplify.reconstruct] is exactly such a lift. *)

val grid : int -> (string * [ `Evsids | `Lrb ] * [ `Luby | `Glucose ]) list
(** The first [n] points of the deterministic heuristic-by-restart
    diversification cycle: evsids/luby, lrb/glucose, evsids/glucose,
    lrb/luby, then repeating.  The anchor configuration comes first. *)

val default_pool : jobs:int -> t list
(** [jobs] direct lanes over {!grid} — the pure-solver portfolio used
    when no preprocessing lanes are available. *)

val pp : Format.formatter -> t -> unit
