(* Cube-and-conquer: lookahead splitting, work-stealing conquest on
   the domain pool, and RUP proof stitching of the case-split tree.
   See cuber.mli for the contract and DESIGN.md for the discipline. *)

type cube = { lits : int array; dead : bool }

type cube_outcome =
  | Cube_refuted
  | Cube_sat
  | Cube_cancelled
  | Cube_open
  | Cube_failed of string

type report = {
  result : Sat.Solver.result;
  cubes : cube array;
  outcomes : cube_outcome array;
  solved : int;
  steals : int;
  refutation_complete : bool;
  proof_sealed : bool;
  failure : string option;
  wall : float;
  stats : Sat.Solver.stats;
}

let default_cubes = 8
let default_probe_limit = 32

let empty_stats =
  {
    Sat.Solver.decisions = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    reduces = 0;
    probed = 0;
    vivified = 0;
    inproc_subsumed = 0;
    max_decision_level = 0;
    time = 0.0;
    cpu_time = 0.0;
    minor_words = 0.0;
    major_collections = 0;
  }

let add_stats a b =
  {
    Sat.Solver.decisions = a.Sat.Solver.decisions + b.Sat.Solver.decisions;
    conflicts = a.Sat.Solver.conflicts + b.Sat.Solver.conflicts;
    propagations = a.Sat.Solver.propagations + b.Sat.Solver.propagations;
    restarts = a.Sat.Solver.restarts + b.Sat.Solver.restarts;
    learned = a.Sat.Solver.learned + b.Sat.Solver.learned;
    reduces = a.Sat.Solver.reduces + b.Sat.Solver.reduces;
    probed = a.Sat.Solver.probed + b.Sat.Solver.probed;
    vivified = a.Sat.Solver.vivified + b.Sat.Solver.vivified;
    inproc_subsumed =
      a.Sat.Solver.inproc_subsumed + b.Sat.Solver.inproc_subsumed;
    max_decision_level =
      max a.Sat.Solver.max_decision_level b.Sat.Solver.max_decision_level;
    time = a.Sat.Solver.time +. b.Sat.Solver.time;
    cpu_time = a.Sat.Solver.cpu_time +. b.Sat.Solver.cpu_time;
    minor_words = a.Sat.Solver.minor_words +. b.Sat.Solver.minor_words;
    major_collections =
      a.Sat.Solver.major_collections + b.Sat.Solver.major_collections;
  }

let negate lits = Array.map (fun l -> -l) lits

(* --- cube: BFS lookahead splitting ---------------------------------- *)

let split ?(cubes = default_cubes) ?(probe_limit = default_probe_limit) f =
  let target = max 1 cubes in
  match Sat.Solver.prober f with
  | `Unsat -> `Unsat
  | `Prober p -> (
    let exception Sat_found of bool array in
    try
      (* FIFO frontier of live prefixes: popping breadth-first keeps
         the tree balanced; pushing the positive child first makes the
         leaf order deterministic. *)
      let frontier = Queue.create () in
      Queue.push [||] frontier;
      let dead = ref [] (* refuted prefixes, discovery order *) in
      let splits = ref 0 in
      let max_splits = 8 * target in
      while
        Queue.length frontier > 0
        && Queue.length frontier < target
        && !splits < max_splits
      do
        let prefix = Queue.pop frontier in
        match Sat.Solver.probe_split p ~prefix ~limit:probe_limit with
        | `Sat m -> raise (Sat_found m)
        | `Unsat -> dead := prefix :: !dead
        | `Split v ->
          incr splits;
          Queue.push (Array.append prefix [| v |]) frontier;
          Queue.push (Array.append prefix [| -v |]) frontier
      done;
      let live =
        Queue.fold (fun acc prefix -> { lits = prefix; dead = false } :: acc)
          [] frontier
        |> List.rev
      in
      let dead =
        List.rev_map (fun prefix -> { lits = prefix; dead = true }) !dead
      in
      `Cubes (Array.of_list (live @ dead))
    with Sat_found m -> `Sat m)

(* --- stitch: the case-split tree, bottom-up ------------------------- *)

(* Append the refutation tree to [recorder]: first each leaf's clause
   ([¬core] for solver-refuted cubes, [¬cube] for dead ones — already
   logged by the caller into [leaf_clauses]), then every distinct
   proper prefix, longest first.  [¬prefix] at an internal node is RUP
   because the two children's clauses are already in the log: under
   the prefix they are unit on opposite phases of the split variable
   (or outright falsified, when a leaf's core skipped it).  The empty
   prefix is the empty clause and seals the recorder. *)
let stitch recorder cubes leaf_clauses =
  Array.iter (fun clause -> Sat.Proof.add recorder clause) leaf_clauses;
  let seen = Hashtbl.create 16 in
  let prefixes = ref [] in
  Array.iter
    (fun c ->
      for len = Array.length c.lits - 1 downto 0 do
        let prefix = Array.sub c.lits 0 len in
        let key =
          String.concat "," (List.map string_of_int (Array.to_list prefix))
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          prefixes := prefix :: !prefixes
        end
      done)
    cubes;
  let prefixes =
    List.stable_sort
      (fun a b -> compare (Array.length b) (Array.length a))
      (List.rev !prefixes)
  in
  List.iter (fun prefix -> Sat.Proof.add recorder (negate prefix)) prefixes

(* --- conquer: work-stealing conquest -------------------------------- *)

(* [exec] runs an array of worker bodies to completion (inline for the
   sequential path, [Runner.dispatch] for a pool). *)
let conquer ~t0 ~limits ~proof ~interrupt ~log ~on_cube ~nworkers ~exec f
    cubes =
  let n = Array.length cubes in
  let live =
    Array.of_list
      (List.filter (fun i -> not cubes.(i).dead) (List.init n Fun.id))
  in
  let outcomes =
    Array.map
      (fun c -> if c.dead then Cube_refuted else Cube_cancelled)
      cubes
  in
  (* Leaf clause owed to the stitched proof, per refuted cube. *)
  let leaf_clause = Array.make n None in
  Array.iteri
    (fun i c -> if c.dead then leaf_clause.(i) <- Some (negate c.lits))
    cubes;
  let recorder =
    match proof with
    | None -> None
    | Some _ -> Some (Sat.Proof.create ~record_deletions:false ())
  in
  let cancel =
    match interrupt with
    | Some i -> i
    | None -> Sat.Solver.Interrupt.create ()
  in
  let sat_model = Atomic.make None in
  let outright = Atomic.make false in
  let steals = Atomic.make 0 in
  let next = Atomic.make 0 in
  let sm = Mutex.create () in
  let agg = ref empty_stats in
  let log_line msg =
    match log with
    | None -> ()
    | Some emit ->
      Mutex.lock sm;
      (try emit msg with _ -> ());
      Mutex.unlock sm
  in
  (* Worker [w] claims live cubes from the shared deque: the atomic
     cursor is the steal point — cube slot [k] is owned by worker
     [k mod nworkers], so a claim by any other worker is a steal. *)
  let body w () =
    let continue_ = ref true in
    while !continue_ do
      let k = Atomic.fetch_and_add next 1 in
      if k >= Array.length live then continue_ := false
      else begin
        let i = live.(k) in
        if nworkers > 1 && k mod nworkers <> w then Atomic.incr steals;
        let c = cubes.(i) in
        let outcome, clause, stats =
          try
            (match on_cube with Some hook -> hook i | None -> ());
            if Sat.Solver.Interrupt.is_set cancel then
              (Cube_cancelled, None, None)
            else begin
              let result, st, core =
                Sat.Solver.solve_assuming ~limits ?proof:recorder
                  ~interrupt:cancel ~assumptions:c.lits f
              in
              match result with
              | Sat.Solver.Sat m ->
                if Atomic.compare_and_set sat_model None (Some m) then begin
                  log_line
                    (Printf.sprintf "cube %d: SAT — cancelling siblings" i);
                  Sat.Solver.Interrupt.set cancel
                end;
                (Cube_sat, None, Some st)
              | Sat.Solver.Unsat ->
                if Array.length core = 0 then begin
                  (* Unsat with an empty core: the base formula is
                     refuted outright and the solver already sealed
                     the shared recorder with the empty clause — no
                     stitching needed. *)
                  Atomic.set outright true;
                  log_line
                    (Printf.sprintf "cube %d: formula UNSAT outright" i);
                  Sat.Solver.Interrupt.set cancel;
                  (Cube_refuted, None, Some st)
                end
                else begin
                  log_line (Printf.sprintf "cube %d: refuted" i);
                  (Cube_refuted, Some (negate core), Some st)
                end
              | Sat.Solver.Unknown -> (
                if Sat.Solver.Interrupt.is_set cancel then
                  (Cube_cancelled, None, Some st)
                else (Cube_open, None, Some st))
            end
          with e -> (Cube_failed (Printexc.to_string e), None, None)
        in
        Mutex.lock sm;
        outcomes.(i) <- outcome;
        (match clause with
         | Some cl -> leaf_clause.(i) <- Some cl
         | None -> ());
        (match stats with Some st -> agg := add_stats !agg st | None -> ());
        Mutex.unlock sm
      end
    done
  in
  if Array.length live > 0 then
    exec (Array.init nworkers (fun w -> body w));
  let solved =
    Array.fold_left
      (fun acc o ->
        match o with Cube_refuted | Cube_sat -> acc + 1 | _ -> acc)
      0 outcomes
  in
  let failure =
    Array.fold_left
      (fun acc o ->
        match (acc, o) with
        | None, Cube_failed msg -> Some msg
        | acc, _ -> acc)
      None outcomes
  in
  let all_refuted =
    Array.for_all (function Cube_refuted -> true | _ -> false) outcomes
  in
  let result, complete =
    match Atomic.get sat_model with
    | Some m -> (Sat.Solver.Sat m, false)
    | None ->
      if Atomic.get outright || all_refuted then (Sat.Solver.Unsat, true)
      else (Sat.Solver.Unknown, false)
  in
  (match recorder with
   | Some r when complete && not (Sat.Proof.sealed r) ->
     let leaves =
       Array.map
         (function
           | Some clause -> clause
           | None -> assert false (* every refuted cube logged a clause *))
         leaf_clause
     in
     stitch r cubes leaves
   | _ -> ());
  let proof_sealed =
    match recorder with Some r -> Sat.Proof.sealed r | None -> false
  in
  (* The Runner discipline: the caller's recorder absorbs the shared
     log only when it tells the complete story. *)
  (match (proof, recorder) with
   | Some p, Some r when Sat.Proof.sealed r -> Sat.Proof.replay ~into:p r
   | _ -> ());
  {
    result;
    cubes;
    outcomes;
    solved;
    steals = Atomic.get steals;
    refutation_complete = complete;
    proof_sealed;
    failure;
    wall = Sat.Wall.now () -. t0;
    stats = !agg;
  }

(* --- entry points --------------------------------------------------- *)

let trivial_report ~t0 ~result ~proof_sealed ~complete =
  {
    result;
    cubes = [||];
    outcomes = [||];
    solved = 0;
    steals = 0;
    refutation_complete = complete;
    proof_sealed;
    failure = None;
    wall = Sat.Wall.now () -. t0;
    stats = empty_stats;
  }

let solve_common ?(cubes = default_cubes) ?(probe_limit = default_probe_limit)
    ?(limits = Sat.Solver.no_limits) ?proof ?interrupt ?log ?on_cube ~exec_for
    f =
  let t0 = Sat.Wall.now () in
  match split ~cubes ~probe_limit f with
  | `Sat m -> trivial_report ~t0 ~result:(Sat.Solver.Sat m) ~proof_sealed:false
                ~complete:false
  | `Unsat ->
    (* Refuted by normalization or level-0 propagation: the empty
       clause is RUP against the formula on its own. *)
    let sealed =
      match proof with
      | Some p ->
        Sat.Proof.add p [||];
        Sat.Proof.sealed p
      | None -> false
    in
    trivial_report ~t0 ~result:Sat.Solver.Unsat ~proof_sealed:sealed
      ~complete:true
  | `Cubes cube_arr ->
    let nlive =
      Array.fold_left (fun acc c -> if c.dead then acc else acc + 1) 0 cube_arr
    in
    let nworkers, exec = exec_for nlive in
    conquer ~t0 ~limits ~proof ~interrupt ~log ~on_cube ~nworkers ~exec f
      cube_arr

let run_inline bodies = Array.iter (fun body -> body ()) bodies

let solve_in ?cubes ?probe_limit ?limits ?proof ?interrupt ?log ?on_cube pool
    f =
  let exec_for nlive =
    let nworkers = max 1 (min (Runner.pool_size pool) nlive) in
    if nworkers = 1 then (1, run_inline)
    else (nworkers, Runner.dispatch pool)
  in
  solve_common ?cubes ?probe_limit ?limits ?proof ?interrupt ?log ?on_cube
    ~exec_for f

let solve ?cubes ?probe_limit ?(jobs = 4) ?limits ?proof ?interrupt ?log
    ?on_cube f =
  let jobs = max 1 jobs in
  if jobs = 1 then
    solve_common ?cubes ?probe_limit ?limits ?proof ?interrupt ?log ?on_cube
      ~exec_for:(fun _ -> (1, run_inline))
      f
  else begin
    let pool = Runner.create_pool ~jobs () in
    Fun.protect
      ~finally:(fun () -> Runner.shutdown_pool pool)
      (fun () ->
        solve_in ?cubes ?probe_limit ?limits ?proof ?interrupt ?log ?on_cube
          pool f)
  end
