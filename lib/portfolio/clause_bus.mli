(** Learnt-clause exchange between portfolio workers.

    One mutex-guarded inbox per worker.  A worker publishing a clause
    places a {e fresh copy} of it into the inbox of every other worker
    in the same share group — receivers never alias the publisher's
    array (which may be a buffer the publisher reuses) or each other's;
    each worker drains its own inbox at its solver's import points
    (restarts).  Inboxes are bounded: beyond {!capacity}
    pending clauses the newest publication is dropped and counted,
    so a fast exporter cannot make a slow importer's queue grow
    without bound. *)

type t

val capacity : int
(** Maximum pending clauses per inbox (drops are counted, not fatal). *)

val create : groups:int option array -> t
(** One slot per worker; [groups.(i)] is worker [i]'s share group
    ([None] = isolated). *)

val publish : t -> worker:int -> int array -> int -> unit
(** [publish bus ~worker clause lbd] offers [clause] (DIMACS literals,
    with its glue value) to every other worker of [worker]'s group.
    Each receiver gets its own copy, so the caller remains free to
    mutate or reuse [clause] afterwards.  No-op for isolated
    workers. *)

val drain : t -> worker:int -> (int array * int) list
(** Remove and return worker [i]'s pending clauses, oldest first. *)

val published : t -> int
(** Clauses accepted from exporters (before per-inbox fan-out). *)

val delivered : t -> int
(** Clause deliveries into inboxes (once per receiving worker). *)

val dropped : t -> int
(** Deliveries refused because an inbox was full. *)
