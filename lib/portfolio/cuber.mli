(** Cube-and-conquer on the portfolio's worker pool.

    {2 Cube}

    {!split} partitions a formula into up to [cubes] leaves of a binary
    lookahead tree: each internal node picks a split variable with
    {!Sat.Solver.probe_split} (propagation lookahead over a bounded
    probe budget) and branches positive-then-negative.  A leaf whose
    prefix is refuted by unit propagation alone is kept as a {e dead}
    cube — it still owes the stitched proof its [¬cube] clause.

    {2 Conquer}

    {!solve_in} submits the live cubes as assumption jobs
    ({!Sat.Solver.solve_assuming}) onto a {!Runner.pool}.  Scheduling
    is work stealing from a shared deque: cube [i] is owned by worker
    [i mod workers], and any worker that exhausts its own share claims
    the next unclaimed cube (a steal, counted in {!report.steals}).
    The first SAT cube cancels every sibling through the shared
    {!Sat.Solver.Interrupt} flag; an UNSAT instance is refuted
    cube-by-cube.

    {2 Stitch}

    An [Unsat] under assumptions is not DRAT-provable on its own
    ({!Sat.Solver.Incremental.solve}), so with [?proof] the conquer
    phase logs every cube job into one shared recorder and, once all
    cubes are refuted, appends the case-split tree bottom-up: each
    refuted leaf contributes [¬core] (RUP given that cube's learned
    clauses), each internal node [¬prefix] (RUP given its two
    children's clauses — assuming the prefix makes the children's
    clauses unit on opposite phases of the split variable), and the
    root — the empty prefix — {e is} the empty clause, sealing the
    recorder.  The whole [cube → conquer → stitch] stream validates
    under {!Sat.Proof.check} against the original formula. *)

type cube = {
  lits : int array;
      (** the cube's assumption literals (DIMACS), in split order *)
  dead : bool;
      (** refuted during lookahead by unit propagation alone — never
          submitted to a solver, but still stitched into the proof *)
}

type cube_outcome =
  | Cube_refuted  (** UNSAT under the cube's assumptions (or dead) *)
  | Cube_sat      (** this cube produced the winning model *)
  | Cube_cancelled
      (** never finished: a sibling answered first or an external
          interrupt fired *)
  | Cube_open     (** hit a resource limit without an answer *)
  | Cube_failed of string  (** the cube job raised *)

type report = {
  result : Sat.Solver.result;
  cubes : cube array;  (** the partition, in deterministic split order *)
  outcomes : cube_outcome array;  (** one per cube, same order *)
  solved : int;  (** cubes refuted or satisfied (dead ones included) *)
  steals : int;  (** cube claims by a non-owner worker *)
  refutation_complete : bool;
      (** every cube refuted — the only state in which [result = Unsat]
          is sound to publish or cache for the base formula *)
  proof_sealed : bool;
      (** a requested proof was stitched through the empty clause *)
  failure : string option;  (** first cube failure, if any *)
  wall : float;  (** cube+conquer+stitch wall seconds *)
  stats : Sat.Solver.stats;  (** summed over the cube solves *)
}

val split :
  ?cubes:int -> ?probe_limit:int -> Cnf.Formula.t ->
  [ `Cubes of cube array | `Sat of bool array | `Unsat ]
(** Partition the formula into at most [cubes] (default 8) leaves,
    probing at most [probe_limit] (default 32) candidate variables per
    node.  [`Sat m] when lookahead propagation completed a model;
    [`Unsat] when the formula is refuted at level 0 (the empty clause
    is RUP against it outright).  Deterministic. *)

val solve_in :
  ?cubes:int -> ?probe_limit:int ->
  ?limits:Sat.Solver.limits ->
  ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t ->
  ?log:(string -> unit) ->
  ?on_cube:(int -> unit) ->
  Runner.pool -> Cnf.Formula.t -> report
(** Cube, conquer on the pool's workers, stitch.  [limits] apply to
    each cube job separately.  With [proof], the shared recorder is
    replayed into it only when sealed (the {!Runner.run_in}
    discipline), so a partial conquest never leaves a half-told proof
    in the caller's recorder.  [interrupt] cancels the whole conquest
    ([result = Unknown]).  [on_cube i] is a test hook invoked on the
    solving worker just before cube [i]'s job starts; an exception it
    raises fails that cube.  A one-worker pool conquers sequentially
    in cube order — bit-identical across runs. *)

val solve :
  ?cubes:int -> ?probe_limit:int -> ?jobs:int ->
  ?limits:Sat.Solver.limits ->
  ?proof:Sat.Proof.t ->
  ?interrupt:Sat.Solver.Interrupt.t ->
  ?log:(string -> unit) ->
  ?on_cube:(int -> unit) ->
  Cnf.Formula.t -> report
(** [solve_in] on a transient pool of [jobs] (default 4) domains.
    [jobs = 1] runs the sequential deterministic path with no pool at
    all. *)
