test/test_aig.ml: Aig Alcotest Array Int64 List QCheck QCheck_alcotest String
