test/test_sat.ml: Aig Alcotest Array Cnf Fun List Option QCheck QCheck_alcotest Sat
