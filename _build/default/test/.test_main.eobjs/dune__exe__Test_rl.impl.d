test/test_rl.ml: Alcotest Array Option Printf Rl
