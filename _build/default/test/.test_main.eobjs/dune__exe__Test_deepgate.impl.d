test/test_deepgate.ml: Aig Alcotest Array Deepgate Float List
