test/test_lutmap.ml: Aig Alcotest Array Cnf Fun List Lutmap Printf String
