test/test_synth.ml: Aig Alcotest Array Gen List Printf QCheck QCheck_alcotest Synth
