test/test_cnf.ml: Aig Alcotest Array Cnf Fun Hashtbl List Option QCheck QCheck_alcotest Sat
