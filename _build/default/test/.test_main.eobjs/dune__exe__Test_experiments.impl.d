test/test_experiments.ml: Alcotest Experiments List Sat String
