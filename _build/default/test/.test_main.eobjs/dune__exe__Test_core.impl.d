test/test_core.ml: Aig Alcotest Array Cnf Deepgate Eda4sat Float List Printf QCheck QCheck_alcotest Rl Sat Synth Workloads
