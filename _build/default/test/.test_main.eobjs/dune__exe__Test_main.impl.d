test/test_main.ml: Alcotest Test_aig Test_cnf Test_core Test_deepgate Test_experiments Test_lutmap Test_rl Test_sat Test_synth Test_workloads
