test/test_workloads.ml: Aig Alcotest Array Cnf Eda4sat List Printf Sat Workloads
