(* Tests for logic synthesis: every pass must preserve functionality;
   rewrite must not grow the network; balance must not deepen it; resub
   must collapse equivalence miters. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Random AIG generator shared by the synthesis tests. *)
let random_graph ~seed ~num_pis ~num_ands =
  let rng = Aig.Rng.create seed in
  let g = Aig.Graph.create ~num_pis in
  let lits = ref (Array.to_list (Array.init num_pis (Aig.Graph.pi g))) in
  for _ = 1 to num_ands do
    let arr = Array.of_list !lits in
    let pick () =
      Aig.Graph.lit_not_cond
        arr.(Aig.Rng.int rng (Array.length arr))
        (Aig.Rng.bool rng)
    in
    lits := Aig.Graph.and_ g (pick ()) (pick ()) :: !lits
  done;
  (* A couple of outputs over the most recent nodes. *)
  (match !lits with
   | a :: b :: _ ->
     Aig.Graph.add_po g a;
     Aig.Graph.add_po g (Aig.Graph.lit_not b)
   | [ a ] -> Aig.Graph.add_po g a
   | [] -> Aig.Graph.add_po g Aig.Graph.const_true);
  g

(* Exhaustive equivalence for small PI counts. *)
let exhaustive_equal a b =
  let n = Aig.Graph.num_pis a in
  assert (n = Aig.Graph.num_pis b && n <= 12);
  let npos = Aig.Graph.num_pos a in
  assert (npos = Aig.Graph.num_pos b);
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let ins = Array.init n (fun i -> m land (1 lsl i) <> 0) in
    if Aig.Sim.eval a ins <> Aig.Sim.eval b ins then ok := false
  done;
  !ok

let test_rewrite_preserves_and_shrinks () =
  for seed = 1 to 10 do
    let g = random_graph ~seed ~num_pis:6 ~num_ands:40 in
    let g' = Synth.Rewrite.run g in
    check_bool "equivalent" true (exhaustive_equal g g');
    check_bool "not larger" true
      (Aig.Graph.num_ands g' <= Aig.Graph.num_ands (Aig.Graph.cleanup g))
  done

let test_rewrite_finds_sharing () =
  (* Build a redundant structure: (a&b)|(a&c) twice with different
     shapes; rewrite should leave something no larger than the factored
     form. *)
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  let s1 = Aig.Graph.or_ g (Aig.Graph.and_ g a b) (Aig.Graph.and_ g a c) in
  Aig.Graph.add_po g s1;
  let before = Aig.Graph.num_ands g in
  let g' = Synth.Rewrite.run g in
  check_bool "equivalent" true (exhaustive_equal g g');
  check_bool "shrunk" true (Aig.Graph.num_ands g' <= before);
  (* The factored a&(b|c) form needs only 2 ANDs. *)
  check_bool "found factored form" true (Aig.Graph.num_ands g' <= 2)

let test_balance_reduces_depth () =
  (* A left-leaning chain of 16 ANDs has depth 16; balanced is 4. *)
  let g = Aig.Graph.create ~num_pis:16 in
  let acc = ref (Aig.Graph.pi g 0) in
  for i = 1 to 15 do
    acc := Aig.Graph.and_ g !acc (Aig.Graph.pi g i)
  done;
  Aig.Graph.add_po g !acc;
  check "chain depth" 15 (Aig.Graph.depth g);
  let g' = Synth.Balance.run g in
  check_bool "equivalent" true (Aig.Sim.equal_outputs g g' ~words:8 ~seed:3);
  check "balanced depth" 4 (Aig.Graph.depth g')

let test_balance_preserves_random () =
  for seed = 11 to 20 do
    let g = random_graph ~seed ~num_pis:6 ~num_ands:40 in
    let g' = Synth.Balance.run g in
    check_bool "equivalent" true (exhaustive_equal g g');
    check_bool "no deeper" true (Aig.Graph.depth g' <= Aig.Graph.depth g)
  done

let test_refactor_preserves () =
  for seed = 21 to 28 do
    let g = random_graph ~seed ~num_pis:7 ~num_ands:50 in
    let g' = Synth.Refactor.run g in
    check_bool "equivalent" true (exhaustive_equal g g')
  done

let test_resub_merges_duplicates () =
  (* XOR implemented two structurally different ways; resub must merge
     them so the miter output becomes constant false. *)
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  (* Variant 1: (a|b) & ~(a&b). *)
  let x1 = Aig.Graph.and_ g (Aig.Graph.or_ g a b)
             (Aig.Graph.lit_not (Aig.Graph.and_ g a b)) in
  (* Variant 2: (a&~b) | (~a&b). *)
  let x2 =
    Aig.Graph.or_ g
      (Aig.Graph.and_ g a (Aig.Graph.lit_not b))
      (Aig.Graph.and_ g (Aig.Graph.lit_not a) b)
  in
  Aig.Graph.add_po g (Aig.Graph.xor_ g x1 x2);
  let g' = Synth.Resub.run g in
  check_bool "equivalent" true (exhaustive_equal g g');
  (* The miter collapses: output is the constant false literal. *)
  check "miter collapsed" Aig.Graph.const_false (Aig.Graph.po g' 0);
  let _, proven, _ = Synth.Resub.stats_last_run () in
  check_bool "proved merges" true (proven > 0)

let test_resub_collapses_equivalence_miter () =
  (* Miter between a random circuit and its rewritten version: after
     resub the whole thing should collapse to constant false. *)
  let g = random_graph ~seed:77 ~num_pis:6 ~num_ands:30 in
  let g1 = Synth.Rewrite.run g in
  (* Build the miter: shared PIs, XOR of the first outputs. *)
  let m = Aig.Graph.create ~num_pis:6 in
  let pis = Array.init 6 (Aig.Graph.pi m) in
  let copy_into src =
    let mapv = Array.make (Aig.Graph.num_nodes src) Aig.Graph.const_false in
    for i = 0 to 5 do
      mapv.(i + 1) <- pis.(i)
    done;
    let map_lit l =
      Aig.Graph.lit_not_cond
        mapv.(Aig.Graph.node_of_lit l)
        (Aig.Graph.is_compl l)
    in
    Aig.Graph.iter_ands src (fun id ->
        mapv.(id) <-
          Aig.Graph.and_ m
            (map_lit (Aig.Graph.fanin0 src id))
            (map_lit (Aig.Graph.fanin1 src id)));
    map_lit (Aig.Graph.po src 0)
  in
  let o1 = copy_into g and o2 = copy_into g1 in
  Aig.Graph.add_po m (Aig.Graph.xor_ m o1 o2);
  let m' = Synth.Resub.run m in
  check "miter proved" Aig.Graph.const_false (Aig.Graph.po m' 0)

let test_resub_preserves_random () =
  for seed = 31 to 38 do
    let g = random_graph ~seed ~num_pis:6 ~num_ands:40 in
    let g' = Synth.Resub.run g in
    check_bool "equivalent" true (exhaustive_equal g g')
  done

let test_recipe_roundtrip () =
  let r = [ Synth.Recipe.Rewrite; Synth.Recipe.Balance; Synth.Recipe.Resub ] in
  let s = Synth.Recipe.to_string r in
  (match Synth.Recipe.parse s with
   | Ok r' -> check_bool "roundtrip" true (r = r')
   | Error e -> Alcotest.fail e);
  (match Synth.Recipe.parse "rw, b; rf" with
   | Ok r' ->
     check_bool "aliases" true
       (r' = [ Synth.Recipe.Rewrite; Synth.Recipe.Balance; Synth.Recipe.Refactor ])
   | Error e -> Alcotest.fail e);
  match Synth.Recipe.parse "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_recipe_indexing () =
  check "num actions" 5 Synth.Recipe.num_actions;
  List.iteri
    (fun i op ->
      check "roundtrip index" i
        (Synth.Recipe.index_of_op (Synth.Recipe.op_of_index i));
      check_bool "order matches" true (Synth.Recipe.op_of_index i = op))
    Synth.Recipe.all_ops

let test_recipe_end_stops () =
  let g = random_graph ~seed:5 ~num_pis:5 ~num_ands:20 in
  let r1 =
    Synth.Recipe.apply_sequence [ Synth.Recipe.Rewrite; Synth.Recipe.End;
                                  Synth.Recipe.Balance ] g
  in
  let r2 = Synth.Recipe.apply_sequence [ Synth.Recipe.Rewrite ] g in
  check_bool "end truncates" true (Aig.Graph.equal_structure r1 r2)

let prop_recipes_preserve_function =
  QCheck.Test.make ~name:"synth: random recipes preserve function" ~count:30
    QCheck.(pair (int_bound 100000) (list_of_size Gen.(int_range 1 4)
                                        (int_bound 4)))
    (fun (seed, ops) ->
      let g = random_graph ~seed:(seed + 1) ~num_pis:6 ~num_ands:30 in
      let recipe = List.map Synth.Recipe.op_of_index ops in
      let g' = Synth.Recipe.apply_sequence recipe g in
      exhaustive_equal g g')

let test_compress2_shrinks () =
  let g = random_graph ~seed:123 ~num_pis:8 ~num_ands:120 in
  let g' = Synth.Recipe.apply_sequence Synth.Recipe.compress2 g in
  check_bool "equivalent" true
    (Aig.Sim.equal_outputs g g' ~words:16 ~seed:9);
  check_bool "smaller" true
    (Aig.Graph.num_ands g' <= Aig.Graph.num_ands (Aig.Graph.cleanup g))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let suite =
  [
    ("rewrite preserves and shrinks", `Quick, test_rewrite_preserves_and_shrinks);
    ("rewrite finds sharing", `Quick, test_rewrite_finds_sharing);
    ("balance reduces depth", `Quick, test_balance_reduces_depth);
    ("balance preserves (random)", `Quick, test_balance_preserves_random);
    ("refactor preserves (random)", `Quick, test_refactor_preserves);
    ("resub merges duplicates", `Quick, test_resub_merges_duplicates);
    ("resub collapses LEC miter", `Quick, test_resub_collapses_equivalence_miter);
    ("resub preserves (random)", `Quick, test_resub_preserves_random);
    ("recipe parse/print", `Quick, test_recipe_roundtrip);
    ("recipe indexing", `Quick, test_recipe_indexing);
    ("recipe end stops", `Quick, test_recipe_end_stops);
    ("compress2 shrinks", `Quick, test_compress2_shrinks);
  ]
  @ qsuite [ prop_recipes_preserve_function ]

(* ------------------------------------------------------------------ *)
(* CEC and windowed resubstitution *)

let test_cec_equivalent () =
  let g = random_graph ~seed:501 ~num_pis:7 ~num_ands:60 in
  let g' = Synth.Rewrite.run g in
  (match Synth.Cec.check g g' with
   | Synth.Cec.Equivalent -> ()
   | v -> Alcotest.failf "expected equivalent, got %s"
            (Synth.Cec.verdict_to_string v))

let test_cec_different_with_cex () =
  let g1 = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g1 0 and b = Aig.Graph.pi g1 1 in
  Aig.Graph.add_po g1 (Aig.Graph.and_ g1 a b);
  let g2 = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g2 0 and b = Aig.Graph.pi g2 1 in
  Aig.Graph.add_po g2 (Aig.Graph.or_ g2 a b);
  match Synth.Cec.check g1 g2 with
  | Synth.Cec.Different cex ->
    check_bool "cex distinguishes" true
      (Aig.Sim.eval g1 cex <> Aig.Sim.eval g2 cex)
  | v -> Alcotest.failf "expected different, got %s"
           (Synth.Cec.verdict_to_string v)

let test_cec_interface_mismatch () =
  let g1 = Aig.Graph.create ~num_pis:1 in
  Aig.Graph.add_po g1 (Aig.Graph.pi g1 0);
  let g2 = Aig.Graph.create ~num_pis:2 in
  Aig.Graph.add_po g2 (Aig.Graph.pi g2 0);
  try
    ignore (Synth.Cec.check g1 g2);
    Alcotest.fail "expected mismatch error"
  with Invalid_argument _ -> ()

let test_resub_window_crafted () =
  (* n3 = (a&c)&b can be re-expressed as n1&c where n1 = a&b is shared:
     the (a&c) node dies, net gain 1. *)
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  let n1 = Aig.Graph.and_ g a b in
  let n2 = Aig.Graph.and_ g a c in
  let n3 = Aig.Graph.and_ g n2 b in
  Aig.Graph.add_po g n1;
  Aig.Graph.add_po g n3;
  check "before" 3 (Aig.Graph.num_ands g);
  let g' = Synth.Resub_window.run g in
  check_bool "equivalent" true (exhaustive_equal g g');
  check_bool "shrunk" true (Aig.Graph.num_ands g' <= 2);
  let _, proven = Synth.Resub_window.stats_last_run () in
  check_bool "substitution proven" true (proven > 0)

let test_resub_window_preserves_random () =
  for seed = 601 to 608 do
    let g = random_graph ~seed ~num_pis:6 ~num_ands:50 in
    let g' = Synth.Resub_window.run g in
    check_bool "equivalent" true (exhaustive_equal g g');
    check_bool "not larger" true
      (Aig.Graph.num_ands g' <= Aig.Graph.num_ands (Aig.Graph.cleanup g))
  done

let suite =
  suite
  @ [
      ("cec equivalent", `Quick, test_cec_equivalent);
      ("cec different with cex", `Quick, test_cec_different_with_cex);
      ("cec interface mismatch", `Quick, test_cec_interface_mismatch);
      ("windowed resub crafted gain", `Quick, test_resub_window_crafted);
      ("windowed resub preserves (random)", `Quick,
       test_resub_window_preserves_random);
    ]

let test_refactor_wide_cone () =
  (* (x1&c) | (x2&c) | ... | (x8&c) = (x1|...|x8) & c: the whole cone
     has 9 leaves — invisible to 6-input cut rewriting, collapsed by
     the reconvergence-driven refactoring. *)
  let g = Aig.Graph.create ~num_pis:9 in
  let c = Aig.Graph.pi g 8 in
  let products =
    List.init 8 (fun i -> Aig.Graph.and_ g (Aig.Graph.pi g i) c)
  in
  (* A deliberately skewed OR chain. *)
  let root =
    List.fold_left (fun acc p -> Aig.Graph.or_ g acc p)
      Aig.Graph.const_false products
  in
  Aig.Graph.add_po g root;
  let before = Aig.Graph.num_ands g in
  check_bool "redundant structure" true (before >= 15);
  let g' = Synth.Refactor.run g in
  check_bool "equivalent" true (exhaustive_equal g g');
  (* Factored form: 7 ORs + 1 AND = 8 nodes. *)
  check_bool
    (Printf.sprintf "collapsed (%d -> %d)" before (Aig.Graph.num_ands g'))
    true
    (Aig.Graph.num_ands g' <= 8)

let suite = suite @ [ ("refactor wide cone", `Quick, test_refactor_wide_cone) ]

(* Extra coverage while calibration data settles: balance on already
   balanced trees is idempotent in depth, and resub on acyclic
   duplicate-free graphs is a no-op in size. *)

let test_balance_idempotent_depth () =
  (* A second pass can still help (the rebuild changes reference
     counts, exposing new trees) but must never deepen. *)
  for seed = 701 to 705 do
    let g = random_graph ~seed ~num_pis:6 ~num_ands:40 in
    let b1 = Synth.Balance.run g in
    let b2 = Synth.Balance.run b1 in
    check_bool "depth monotone" true
      (Aig.Graph.depth b2 <= Aig.Graph.depth b1);
    check_bool "still equivalent" true (exhaustive_equal g b2)
  done

let test_resub_noop_on_irredundant () =
  (* A balanced AND tree has no equivalent internal nodes: resub keeps
     it intact. *)
  let g = Aig.Graph.create ~num_pis:8 in
  Aig.Graph.add_po g (Aig.Graph.and_list g (List.init 8 (Aig.Graph.pi g)));
  let before = Aig.Graph.num_ands g in
  let g' = Synth.Resub.run g in
  check "size unchanged" before (Aig.Graph.num_ands g');
  let _, proven, _ = Synth.Resub.stats_last_run () in
  check "nothing proven" 0 proven

let suite =
  suite
  @ [
      ("balance depth monotone", `Quick, test_balance_idempotent_depth);
      ("resub no-op on irredundant tree", `Quick,
       test_resub_noop_on_irredundant);
    ]
