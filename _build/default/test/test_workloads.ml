(* Tests for the workload generators: LEC miters and the CNF
   families. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let solve f = fst (Sat.Solver.solve f)

let kind = function
  | Sat.Solver.Sat _ -> `Sat
  | Sat.Solver.Unsat -> `Unsat
  | Sat.Solver.Unknown -> `Unknown

(* ------------------------------------------------------------------ *)
(* LEC *)

let test_random_circuit_shape () =
  let g = Workloads.Lec.random_circuit ~seed:1 ~num_pis:10 ~num_ands:200
      ~num_pos:2 in
  check "pis" 10 (Aig.Graph.num_pis g);
  check "pos" 2 (Aig.Graph.num_pos g);
  check_bool "size near request" true
    (Aig.Graph.num_ands g >= 190 && Aig.Graph.num_ands g <= 210);
  check_bool "multi-level" true (Aig.Graph.depth g > 5)

let test_miter_of_equal_is_unsat () =
  let g = Workloads.Lec.random_circuit ~seed:2 ~num_pis:8 ~num_ands:50
      ~num_pos:2 in
  let p = Workloads.Lec.perturb ~seed:3 g in
  check_bool "perturbation is equivalent" true
    (Aig.Sim.equal_outputs g p ~words:16 ~seed:4);
  check_bool "perturbation changes structure" true
    (not (Aig.Graph.equal_structure g p));
  let m = Workloads.Lec.miter g p in
  check "single po" 1 (Aig.Graph.num_pos m);
  let f = (Cnf.Tseitin.encode m).Cnf.Tseitin.formula in
  check_bool "miter unsat" true (kind (solve f) = `Unsat)

let test_miter_interface_mismatch () =
  let a = Workloads.Lec.random_circuit ~seed:5 ~num_pis:4 ~num_ands:10
      ~num_pos:1 in
  let b = Workloads.Lec.random_circuit ~seed:6 ~num_pis:5 ~num_ands:10
      ~num_pos:1 in
  try
    ignore (Workloads.Lec.miter a b);
    Alcotest.fail "expected mismatch error"
  with Invalid_argument _ -> ()

let test_fault_injection_sat () =
  let g = Workloads.Lec.generate ~buggy:true ~seed:7 ~num_pis:8 ~num_ands:60 () in
  let f = (Cnf.Tseitin.encode g).Cnf.Tseitin.formula in
  check_bool "buggy miter satisfiable" true (kind (solve f) = `Sat)

let test_generate_unsat () =
  let g = Workloads.Lec.generate ~buggy:false ~seed:8 ~num_pis:8 ~num_ands:60 () in
  check "single po" 1 (Aig.Graph.num_pos g);
  let f = (Cnf.Tseitin.encode g).Cnf.Tseitin.formula in
  check_bool "clean miter unsat" true (kind (solve f) = `Unsat)

let test_training_set () =
  let set = Workloads.Lec.training_set ~seed:9 ~count:6 ~min_ands:50
      ~max_ands:120 in
  check "count" 6 (Array.length set);
  Array.iter
    (fun g ->
      check "single po" 1 (Aig.Graph.num_pos g);
      check_bool "nonempty" true (Aig.Graph.num_ands g > 20))
    set

(* ------------------------------------------------------------------ *)
(* CNF families *)

let test_pigeonhole () =
  check_bool "php(5,4) unsat" true
    (kind (solve (Workloads.Satcomp.pigeonhole ~pigeons:5 ~holes:4)) = `Unsat);
  check_bool "php(4,4) sat" true
    (kind (solve (Workloads.Satcomp.pigeonhole ~pigeons:4 ~holes:4)) = `Sat)

let test_random_ksat_shape () =
  let f = Workloads.Satcomp.random_ksat ~seed:1 ~num_vars:30 ~num_clauses:100
      ~k:3 in
  check "vars" 30 f.Cnf.Formula.num_vars;
  check "clauses" 100 (Cnf.Formula.num_clauses f);
  Array.iter
    (fun c ->
      check "clause width" 3 (Array.length c);
      (* Distinct variables within a clause. *)
      let vars = Array.to_list (Array.map abs c) in
      check "distinct vars" 3 (List.length (List.sort_uniq compare vars)))
    f.Cnf.Formula.clauses

let test_xor_cnf () =
  let f = Workloads.Satcomp.xor_cnf ~seed:2 ~num_vars:12 ~num_xors:5 ~width:3 in
  (* Each parity constraint of width 3 expands into 4 clauses. *)
  check "clause count" 20 (Cnf.Formula.num_clauses f);
  Array.iter (fun c -> check "width" 3 (Array.length c)) f.Cnf.Formula.clauses;
  (* A single xor over x1..x3 = 1 has satisfying assignments with odd
     parity only. *)
  let f1 = Workloads.Satcomp.xor_cnf ~seed:5 ~num_vars:3 ~num_xors:1 ~width:3 in
  match solve f1 with
  | Sat.Solver.Sat m ->
    let f1_eval = Cnf.Formula.eval f1 m in
    check_bool "model valid" true f1_eval
  | _ -> Alcotest.fail "single xor is satisfiable"

let test_coloring () =
  (* A triangle is not 2-colorable but is 3-colorable. *)
  let tri colors =
    Workloads.Satcomp.coloring ~seed:3 ~vertices:3 ~edges:3 ~colors
  in
  check_bool "triangle 2-coloring unsat" true (kind (solve (tri 2)) = `Unsat);
  check_bool "triangle 3-coloring sat" true (kind (solve (tri 3)) = `Sat)

let test_round_robin () =
  let f = Workloads.Satcomp.round_robin ~teams:4 () in
  (* 6 pairs x 3 weeks. *)
  check "vars" 18 f.Cnf.Formula.num_vars;
  (match solve f with
   | Sat.Solver.Sat m -> check_bool "schedule valid" true (Cnf.Formula.eval f m)
   | _ -> Alcotest.fail "4-team round robin is satisfiable");
  Alcotest.check_raises "odd team count"
    (Invalid_argument "Satcomp.round_robin: need an even team count >= 2")
    (fun () -> ignore (Workloads.Satcomp.round_robin ~teams:5 ()));
  (* Overconstrained schedules are unsatisfiable by counting. *)
  check_bool "rr(4,2) unsat" true
    (kind (solve (Workloads.Satcomp.round_robin ~weeks:2 ~teams:4 ())) = `Unsat)

let test_c_suite_shape () =
  let suite = Workloads.Suites.c_suite ~scale:0.4 () in
  check "eight instances" 8 (List.length suite);
  List.iter
    (fun (name, inst) ->
      check_bool (name ^ " nonempty") true
        (Eda4sat.Instance.num_clauses inst > 0))
    suite

let test_suites_wrappers () =
  let is = Workloads.Suites.i_suite ~scale:0.1 () in
  check "five I cases" 5 (List.length is);
  List.iter
    (fun (name, inst) ->
      check_bool (name ^ " is circuit") true
        (Eda4sat.Instance.num_gates inst <> None))
    is;
  let cs = Workloads.Suites.c_suite ~scale:0.5 () in
  check "eight C cases" 8 (List.length cs);
  List.iter
    (fun (name, inst) ->
      check_bool (name ^ " is cnf") true
        (Eda4sat.Instance.num_gates inst = None))
    cs;
  let ts = Workloads.Suites.training_set ~scale:0.2 ~count:4 () in
  check "training count" 4 (Array.length ts)

let suite =
  [
    ("random circuit shape", `Quick, test_random_circuit_shape);
    ("miter of equivalent circuits", `Quick, test_miter_of_equal_is_unsat);
    ("miter interface mismatch", `Quick, test_miter_interface_mismatch);
    ("fault injection gives SAT", `Quick, test_fault_injection_sat);
    ("clean miter gives UNSAT", `Quick, test_generate_unsat);
    ("training set", `Quick, test_training_set);
    ("pigeonhole", `Quick, test_pigeonhole);
    ("random ksat shape", `Quick, test_random_ksat_shape);
    ("xor cnf", `Quick, test_xor_cnf);
    ("coloring", `Quick, test_coloring);
    ("round robin", `Quick, test_round_robin);
    ("c suite shape", `Quick, test_c_suite_shape);
    ("suites wrappers", `Quick, test_suites_wrappers);
  ]

(* ------------------------------------------------------------------ *)
(* Arithmetic circuits *)

let eval_vector g inputs =
  (* Interpret PO bits little-endian as an integer. *)
  let outs = Aig.Sim.eval g inputs in
  Array.to_list outs
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let bits_of n width = Array.init width (fun i -> n land (1 lsl i) <> 0)

let test_adders_add () =
  List.iter
    (fun variant ->
      let g = Workloads.Arith.adder_circuit ~bits:4 ~variant in
      for x = 0 to 15 do
        for y = 0 to 15 do
          let inputs = Array.append (bits_of x 4) (bits_of y 4) in
          check
            (Printf.sprintf "%d+%d" x y)
            (x + y) (eval_vector g inputs)
        done
      done)
    [ `Ripple; `Carry_select ]

let test_multiplier_multiplies () =
  List.iter
    (fun reverse ->
      let g = Workloads.Arith.multiplier_circuit ~bits:4 ~reverse in
      for x = 0 to 15 do
        for y = 0 to 15 do
          let inputs = Array.append (bits_of x 4) (bits_of y 4) in
          check
            (Printf.sprintf "%d*%d" x y)
            (x * y) (eval_vector g inputs)
        done
      done)
    [ false; true ]

let test_arith_miters_unsat () =
  let am = Workloads.Arith.adder_miter ~bits:6 in
  check_bool "adder miter unsat" true
    (kind (solve (Cnf.Tseitin.encode am).Cnf.Tseitin.formula) = `Unsat);
  let mm = Workloads.Arith.multiplier_miter ~bits:4 in
  check_bool "multiplier miter unsat" true
    (kind (solve (Cnf.Tseitin.encode mm).Cnf.Tseitin.formula) = `Unsat)

let test_arith_structural_difference () =
  let r = Workloads.Arith.adder_circuit ~bits:8 ~variant:`Ripple in
  let c = Workloads.Arith.adder_circuit ~bits:8 ~variant:`Carry_select in
  check_bool "different structures" true
    (not (Aig.Graph.equal_structure r c));
  (* Carry-select trades area for depth. *)
  check_bool "carry-select shallower" true
    (Aig.Graph.depth c < Aig.Graph.depth r)

let suite =
  suite
  @ [
      ("adders add", `Quick, test_adders_add);
      ("multiplier multiplies", `Quick, test_multiplier_multiplies);
      ("arith miters unsat", `Quick, test_arith_miters_unsat);
      ("adder variants differ structurally", `Quick,
       test_arith_structural_difference);
    ]
