(* Tests for the AIG substrate: graph construction, truth tables, ISOP,
   NPN, cuts, simulation, factoring, AIGER I/O. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_literals () =
  check "pack" 7 (Aig.Graph.lit_of_node 3 true);
  check "node" 3 (Aig.Graph.node_of_lit 7);
  check_bool "compl" true (Aig.Graph.is_compl 7);
  check "not" 6 (Aig.Graph.lit_not 7);
  check "not-cond" 7 (Aig.Graph.lit_not_cond 7 false);
  check "const" 0 Aig.Graph.const_false;
  check "const-true" 1 Aig.Graph.const_true

let test_and_simplification () =
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  check "a*0" Aig.Graph.const_false (Aig.Graph.and_ g a Aig.Graph.const_false);
  check "a*1" a (Aig.Graph.and_ g a Aig.Graph.const_true);
  check "a*a" a (Aig.Graph.and_ g a a);
  check "a*~a" Aig.Graph.const_false (Aig.Graph.and_ g a (Aig.Graph.lit_not a));
  check "no nodes yet" 0 (Aig.Graph.num_ands g);
  let ab = Aig.Graph.and_ g a b in
  let ba = Aig.Graph.and_ g b a in
  check "strash commutes" ab ba;
  check "one node" 1 (Aig.Graph.num_ands g)

let test_xor_mux () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and s = Aig.Graph.pi g 2 in
  Aig.Graph.add_po g (Aig.Graph.xor_ g a b);
  Aig.Graph.add_po g (Aig.Graph.mux_ g s a b);
  let eval va vb vs =
    Aig.Sim.eval g [| va; vb; vs |]
  in
  List.iter
    (fun (va, vb, vs) ->
      let out = eval va vb vs in
      check_bool "xor" (va <> vb) out.(0);
      check_bool "mux" (if vs then va else vb) out.(1))
    [ (false, false, false); (false, true, true); (true, false, false);
      (true, true, true); (true, false, true); (false, true, false) ]

let test_and_or_list () =
  let g = Aig.Graph.create ~num_pis:5 in
  let pis = List.init 5 (Aig.Graph.pi g) in
  Aig.Graph.add_po g (Aig.Graph.and_list g pis);
  Aig.Graph.add_po g (Aig.Graph.or_list g pis);
  check "empty and" Aig.Graph.const_true
    (Aig.Graph.and_list g []);
  check "empty or" Aig.Graph.const_false (Aig.Graph.or_list g []);
  let out = Aig.Sim.eval g [| true; true; true; true; true |] in
  check_bool "all true" true out.(0);
  let out = Aig.Sim.eval g [| true; true; false; true; true |] in
  check_bool "one false" false out.(0);
  check_bool "or true" true out.(1);
  let out = Aig.Sim.eval g [| false; false; false; false; false |] in
  check_bool "or false" false out.(1);
  (* Balanced tree of 5 inputs has depth 3. *)
  check "depth" 3 (Aig.Graph.depth g)

let test_levels_depth () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  let ab = Aig.Graph.and_ g a b in
  let abc = Aig.Graph.and_ g ab c in
  Aig.Graph.add_po g abc;
  check "depth chain" 2 (Aig.Graph.depth g);
  let lv = Aig.Graph.levels g in
  check "pi level" 0 lv.(Aig.Graph.node_of_lit a);
  check "ab level" 1 lv.(Aig.Graph.node_of_lit ab);
  check "abc level" 2 lv.(Aig.Graph.node_of_lit abc)

let test_rollback () =
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  let _ab = Aig.Graph.and_ g a b in
  let m = Aig.Graph.mark g in
  let x = Aig.Graph.and_ g (Aig.Graph.lit_not a) b in
  check "one new" 1 (Aig.Graph.nodes_since g m);
  Aig.Graph.rollback g m;
  check "rolled back" 1 (Aig.Graph.num_ands g);
  (* The strash entry must be gone: rebuilding creates a fresh node. *)
  let x' = Aig.Graph.and_ g (Aig.Graph.lit_not a) b in
  check "recreated at same id" x x'

let test_cleanup () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  let ab = Aig.Graph.and_ g a b in
  let _dead = Aig.Graph.and_ g ab c in
  let _dead2 = Aig.Graph.and_ g (Aig.Graph.lit_not ab) c in
  Aig.Graph.add_po g ab;
  check "before" 3 (Aig.Graph.num_ands g);
  let g' = Aig.Graph.cleanup g in
  check "after" 1 (Aig.Graph.num_ands g');
  check "pis preserved" 3 (Aig.Graph.num_pis g');
  check_bool "function preserved" true
    (Aig.Sim.equal_outputs g g' ~words:4 ~seed:11)

let test_ref_counts () =
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  let ab = Aig.Graph.and_ g a b in
  let x = Aig.Graph.and_ g ab (Aig.Graph.lit_not b) in
  Aig.Graph.add_po g x;
  Aig.Graph.add_po g ab;
  let rc = Aig.Graph.ref_counts g in
  check "ab refs" 2 rc.(Aig.Graph.node_of_lit ab);
  check "b refs" 2 rc.(Aig.Graph.node_of_lit b)

(* ------------------------------------------------------------------ *)
(* Truth tables *)

let tt_testable = Alcotest.testable Aig.Tt.pp Aig.Tt.equal

let test_tt_basics () =
  let x0 = Aig.Tt.var 2 0 and x1 = Aig.Tt.var 2 1 in
  check "var0" 0b1010 (Aig.Tt.to_int x0);
  check "var1" 0b1100 (Aig.Tt.to_int x1);
  check "and" 0b1000 (Aig.Tt.to_int (Aig.Tt.and_ x0 x1));
  check "or" 0b1110 (Aig.Tt.to_int (Aig.Tt.or_ x0 x1));
  check "xor" 0b0110 (Aig.Tt.to_int (Aig.Tt.xor_ x0 x1));
  check "not" 0b0101 (Aig.Tt.to_int (Aig.Tt.not_ x0));
  check_bool "const0" true (Aig.Tt.is_const_false (Aig.Tt.create_const 2 false));
  check_bool "const1" true (Aig.Tt.is_const_true (Aig.Tt.create_const 2 true));
  check "count" 3 (Aig.Tt.count_ones (Aig.Tt.or_ x0 x1))

let test_tt_cofactor_small () =
  let x0 = Aig.Tt.var 3 0 and x1 = Aig.Tt.var 3 1 and x2 = Aig.Tt.var 3 2 in
  let f = Aig.Tt.or_ (Aig.Tt.and_ x0 x1) x2 in
  Alcotest.check tt_testable "cof x0=1" (Aig.Tt.or_ x1 x2)
    (Aig.Tt.cofactor f 0 true);
  Alcotest.check tt_testable "cof x0=0" x2 (Aig.Tt.cofactor f 0 false);
  Alcotest.check tt_testable "cof x2=1"
    (Aig.Tt.create_const 3 true)
    (Aig.Tt.cofactor f 2 true);
  check_bool "depends x0" true (Aig.Tt.depends_on f 0);
  check_bool "cof indep" false (Aig.Tt.depends_on (Aig.Tt.cofactor f 0 true) 0)

let test_tt_cofactor_large () =
  (* 8 variables: two words exercise the multi-word cofactor path. *)
  let n = 8 in
  let f = ref (Aig.Tt.create_const n false) in
  for i = 0 to n - 1 do
    f := Aig.Tt.xor_ !f (Aig.Tt.var n i)
  done;
  (* Parity: cofactor on any var gives complementary halves. *)
  let c0 = Aig.Tt.cofactor !f 7 false and c1 = Aig.Tt.cofactor !f 7 true in
  Alcotest.check tt_testable "parity cofs" (Aig.Tt.not_ c0) c1;
  check "support size" n (List.length (Aig.Tt.support !f));
  check "ones" 128 (Aig.Tt.count_ones !f)

let test_tt_bits_roundtrip () =
  let f = Aig.Tt.of_int 4 0xCAFE in
  check "to_int" 0xCAFE (Aig.Tt.to_int f);
  check_bool "bit0" false (Aig.Tt.get_bit f 0);
  check_bool "bit1" true (Aig.Tt.get_bit f 1);
  let f' = Aig.Tt.set_bit f 0 true in
  check "set" 0xCAFF (Aig.Tt.to_int f');
  let f'' = Aig.Tt.set_bit f' 0 false in
  check "clear" 0xCAFE (Aig.Tt.to_int f'')

let test_tt_permute_flip () =
  let x0 = Aig.Tt.var 3 0 and x1 = Aig.Tt.var 3 1 in
  let f = Aig.Tt.and_ x0 (Aig.Tt.not_ x1) in
  (* Swap variables 0 and 1. *)
  let g = Aig.Tt.permute f [| 1; 0; 2 |] in
  Alcotest.check tt_testable "permute" (Aig.Tt.and_ x1 (Aig.Tt.not_ x0)) g;
  let h = Aig.Tt.flip f 1 in
  Alcotest.check tt_testable "flip" (Aig.Tt.and_ x0 x1) h;
  let s = Aig.Tt.swap_adjacent f 0 in
  Alcotest.check tt_testable "swap" (Aig.Tt.and_ x1 (Aig.Tt.not_ x0)) s

let prop_tt_cofactor_shannon =
  QCheck.Test.make ~name:"tt: shannon expansion" ~count:200
    (QCheck.pair (QCheck.int_bound 65535) (QCheck.int_bound 3))
    (fun (bits, i) ->
      let f = Aig.Tt.of_int 4 bits in
      let c0 = Aig.Tt.cofactor f i false and c1 = Aig.Tt.cofactor f i true in
      let xi = Aig.Tt.var 4 i in
      let rebuilt =
        Aig.Tt.or_ (Aig.Tt.and_ xi c1) (Aig.Tt.and_ (Aig.Tt.not_ xi) c0)
      in
      Aig.Tt.equal f rebuilt)

let prop_tt_expand_preserves =
  QCheck.Test.make ~name:"tt: expand keeps function on embedded vars"
    ~count:100 (QCheck.int_bound 255) (fun bits ->
      let f = Aig.Tt.of_int 3 bits in
      let g = Aig.Tt.expand f 5 [| 1; 3; 4 |] in
      (* Check all minterms agree through the embedding. *)
      let ok = ref true in
      for m = 0 to 31 do
        let proj =
          ((m lsr 1) land 1) lor (((m lsr 3) land 1) lsl 1)
          lor (((m lsr 4) land 1) lsl 2)
        in
        if Aig.Tt.get_bit g m <> Aig.Tt.get_bit f proj then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* ISOP *)

let test_isop_basic () =
  let x0 = Aig.Tt.var 2 0 and x1 = Aig.Tt.var 2 1 in
  let and2 = Aig.Tt.and_ x0 x1 in
  let xor2 = Aig.Tt.xor_ x0 x1 in
  check "and cubes" 1 (List.length (Aig.Isop.compute and2));
  check "nand cubes" 2 (List.length (Aig.Isop.compute (Aig.Tt.not_ and2)));
  check "xor cubes" 2 (List.length (Aig.Isop.compute xor2));
  check "const0 cubes" 0
    (List.length (Aig.Isop.compute (Aig.Tt.create_const 3 false)));
  check "const1 cubes" 1
    (List.length (Aig.Isop.compute (Aig.Tt.create_const 3 true)))

let test_isop_branching_fig4 () =
  (* Figure 4 of the paper: C(AND) = 3, C(XOR) = 4 under the
     primes-of-onset-plus-offset reading. *)
  let x0 = Aig.Tt.var 2 0 and x1 = Aig.Tt.var 2 1 in
  let cost f = Aig.Isop.num_cubes f + Aig.Isop.num_cubes (Aig.Tt.not_ f) in
  check "C(and)=3" 3 (cost (Aig.Tt.and_ x0 x1));
  check "C(xor)=4" 4 (cost (Aig.Tt.xor_ x0 x1));
  check "C(or)=3" 3 (cost (Aig.Tt.or_ x0 x1))

let prop_isop_exact =
  QCheck.Test.make ~name:"isop: cover equals function" ~count:500
    (QCheck.int_bound 65535) (fun bits ->
      let f = Aig.Tt.of_int 4 bits in
      Aig.Isop.verify f (Aig.Isop.compute f))

let prop_isop_irredundant =
  QCheck.Test.make ~name:"isop: cover is irredundant" ~count:200
    (QCheck.int_bound 65535) (fun bits ->
      let f = Aig.Tt.of_int 4 bits in
      let cubes = Aig.Isop.compute f in
      (* Dropping any single cube must break the cover. *)
      List.for_all
        (fun c ->
          let rest = List.filter (fun c' -> c' <> c) cubes in
          not (Aig.Isop.verify f rest))
        cubes)

(* ------------------------------------------------------------------ *)
(* NPN *)

let test_npn_classes () =
  check "n=2 classes" 4 (Aig.Npn.num_classes 2);
  check "n=3 classes" 14 (Aig.Npn.num_classes 3)

let test_npn_classes_4 () = check "n=4 classes" 222 (Aig.Npn.num_classes 4)

let prop_npn_canonical_invariant =
  QCheck.Test.make ~name:"npn: canonical form is class invariant" ~count:100
    (QCheck.pair (QCheck.int_bound 65535) (QCheck.int_bound 1023))
    (fun (bits, tr_seed) ->
      let f = Aig.Tt.of_int 4 bits in
      let canon_f, tr_f = Aig.Npn.canonicalize f in
      (* Apply a pseudo-random transform and re-canonicalize. *)
      let perm =
        match tr_seed mod 4 with
        | 0 -> [| 0; 1; 2; 3 |]
        | 1 -> [| 1; 0; 3; 2 |]
        | 2 -> [| 3; 2; 1; 0 |]
        | _ -> [| 2; 3; 0; 1 |]
      in
      let tr =
        { Aig.Npn.perm; input_neg = (tr_seed lsr 2) land 15;
          output_neg = tr_seed land 64 <> 0 }
      in
      let g = Aig.Npn.apply f tr in
      let canon_g, _ = Aig.Npn.canonicalize g in
      Aig.Tt.equal canon_f canon_g
      && Aig.Tt.equal (Aig.Npn.apply f tr_f) canon_f)

(* ------------------------------------------------------------------ *)
(* Cuts *)

let test_cut_trivial () =
  let c = Aig.Cut.trivial 5 in
  Alcotest.(check (array int)) "leaves" [| 5 |] c.Aig.Cut.leaves;
  Alcotest.check tt_testable "tt" (Aig.Tt.var 1 0) (Aig.Cut.cut_tt c)

let test_cut_enumerate_xor () =
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  let x = Aig.Graph.xor_ g a b in
  Aig.Graph.add_po g x;
  let sets = Aig.Cut.enumerate g ~k:4 ~limit:8 in
  let root = Aig.Graph.node_of_lit x in
  let cs = Aig.Cut.cuts sets root in
  (* The cut {a, b} must exist and its function must be XOR. *)
  let found =
    List.exists
      (fun c ->
        c.Aig.Cut.leaves = [| 1; 2 |]
        && Aig.Tt.equal (Aig.Cut.cut_tt c)
             (Aig.Tt.xor_ (Aig.Tt.var 2 0) (Aig.Tt.var 2 1)))
      cs
  in
  check_bool "xor cut found" true found

let test_cut_functions_match_simulation () =
  (* On a random circuit every enumerated cut function must agree with
     direct evaluation of the cone. *)
  let rng = Aig.Rng.create 42 in
  let g = Aig.Graph.create ~num_pis:6 in
  let lits = ref (Array.to_list (Array.init 6 (Aig.Graph.pi g))) in
  for _ = 1 to 30 do
    let arr = Array.of_list !lits in
    let a = arr.(Aig.Rng.int rng (Array.length arr))
    and b = arr.(Aig.Rng.int rng (Array.length arr)) in
    let a = Aig.Graph.lit_not_cond a (Aig.Rng.bool rng) in
    let b = Aig.Graph.lit_not_cond b (Aig.Rng.bool rng) in
    lits := Aig.Graph.and_ g a b :: !lits
  done;
  (match !lits with l :: _ -> Aig.Graph.add_po g l | [] -> assert false);
  let sets = Aig.Cut.enumerate g ~k:4 ~limit:8 in
  (* Evaluate each node under all 64 PI patterns. *)
  let inputs =
    Array.init 6 (fun i ->
        [| Int64.logand (Aig.Tt.to_int (Aig.Tt.var 6 i) |> Int64.of_int) (-1L) |])
  in
  let sigs = Aig.Sim.run g ~inputs in
  Aig.Graph.iter_ands g (fun id ->
      List.iter
        (fun c ->
          let tt = Aig.Cut.cut_tt c in
          (* Check agreement on every one of the 64 patterns. *)
          for p = 0 to 63 do
            let leaf_vals =
              Array.map
                (fun leaf ->
                  Int64.logand (Int64.shift_right_logical sigs.(leaf).(0) p) 1L
                  = 1L)
                c.Aig.Cut.leaves
            in
            let m = ref 0 in
            Array.iteri (fun i v -> if v then m := !m lor (1 lsl i)) leaf_vals;
            let expected =
              Int64.logand (Int64.shift_right_logical sigs.(id).(0) p) 1L = 1L
            in
            if Aig.Tt.get_bit tt !m <> expected then
              Alcotest.failf "cut function mismatch at node %d" id
          done)
        (Aig.Cut.cuts sets id))

(* ------------------------------------------------------------------ *)
(* Factor *)

let prop_factor_correct =
  QCheck.Test.make ~name:"factor: tt_to_aig realizes the function"
    ~count:300 (QCheck.int_bound 65535) (fun bits ->
      let f = Aig.Tt.of_int 4 bits in
      let g = Aig.Graph.create ~num_pis:4 in
      let leaves = Array.init 4 (Aig.Graph.pi g) in
      let root = Aig.Factor.tt_to_aig g ~leaves f in
      Aig.Graph.add_po g root;
      let ok = ref true in
      for m = 0 to 15 do
        let ins = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
        let out = (Aig.Sim.eval g ins).(0) in
        if out <> Aig.Tt.get_bit f m then ok := false
      done;
      !ok)

let test_factor_shares_literals () =
  (* ab + ac should factor as a(b + c): 2 ANDs rather than 3. *)
  let g = Aig.Graph.create ~num_pis:3 in
  let leaves = Array.init 3 (Aig.Graph.pi g) in
  let cube l1 l2 =
    Aig.Cube.add_pos (Aig.Cube.add_pos Aig.Cube.full l1) l2
  in
  let root = Aig.Factor.sop_to_aig g ~leaves [ cube 0 1; cube 0 2 ] in
  Aig.Graph.add_po g root;
  check "factored size" 2 (Aig.Graph.num_ands g)

(* ------------------------------------------------------------------ *)
(* Simulation *)

let test_sim_prob () =
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  Aig.Graph.add_po g (Aig.Graph.and_ g a b);
  let sigs = Aig.Sim.random g ~words:64 ~seed:7 in
  let p = Aig.Sim.prob_one (Aig.Sim.output_rows g sigs).(0) in
  check_bool "p(and) near 0.25" true (abs_float (p -. 0.25) < 0.05)

let test_sim_equal_outputs_negative () =
  let g1 = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g1 0 and b = Aig.Graph.pi g1 1 in
  Aig.Graph.add_po g1 (Aig.Graph.and_ g1 a b);
  let g2 = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g2 0 and b = Aig.Graph.pi g2 1 in
  Aig.Graph.add_po g2 (Aig.Graph.or_ g2 a b);
  check_bool "and <> or" false (Aig.Sim.equal_outputs g1 g2 ~words:2 ~seed:3)

(* ------------------------------------------------------------------ *)
(* AIGER *)

let test_aiger_roundtrip () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  Aig.Graph.add_po g (Aig.Graph.xor_ g (Aig.Graph.and_ g a b) c);
  Aig.Graph.add_po g (Aig.Graph.lit_not (Aig.Graph.or_ g a c));
  let s = Aig.Aiger_io.write_string g in
  let g' = Aig.Aiger_io.read_string s in
  check "pis" 3 (Aig.Graph.num_pis g');
  check "pos" 2 (Aig.Graph.num_pos g');
  check "ands" (Aig.Graph.num_ands g) (Aig.Graph.num_ands g');
  check_bool "function" true (Aig.Sim.equal_outputs g g' ~words:8 ~seed:1)

let test_aiger_const_output () =
  let g = Aig.Graph.create ~num_pis:1 in
  Aig.Graph.add_po g Aig.Graph.const_true;
  let g' = Aig.Aiger_io.read_string (Aig.Aiger_io.write_string g) in
  check "const po" Aig.Graph.const_true (Aig.Graph.po g' 0)

let test_aiger_rejects_garbage () =
  Alcotest.check_raises "no header" (Aig.Aiger_io.Parse_error "empty input")
    (fun () -> ignore (Aig.Aiger_io.read_string ""));
  (try
     ignore (Aig.Aiger_io.read_string "aag 1 1 0 1 1\n2\n2\n");
     Alcotest.fail "expected parse error"
   with Aig.Aiger_io.Parse_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  let ab = Aig.Graph.and_ g a b in
  Aig.Graph.add_po g (Aig.Graph.and_ g ab (Aig.Graph.lit_not c));
  let s = Aig.Stats.snapshot g in
  check "area" 2 s.Aig.Stats.area;
  check "depth" 2 s.Aig.Stats.depth;
  check "nots" 1 s.Aig.Stats.nots;
  let f = Aig.Stats.features ~initial:s g in
  check "feature len" 6 (Array.length f);
  Alcotest.(check (float 1e-9)) "area ratio" 1.0 f.(0);
  (* Unbalanced node: |1-0|/1 = 1 for the second AND, 0 for first. *)
  Alcotest.(check (float 1e-9)) "balance" 0.5 s.Aig.Stats.balance

let test_rng_determinism () =
  let a = Aig.Rng.create 99 and b = Aig.Rng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Aig.Rng.next64 a) (Aig.Rng.next64 b)
  done;
  let r = Aig.Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Aig.Rng.int r 10 in
    check_bool "bounded" true (x >= 0 && x < 10)
  done

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let suite =
  [
    ("literals", `Quick, test_literals);
    ("and simplification", `Quick, test_and_simplification);
    ("xor and mux", `Quick, test_xor_mux);
    ("and/or lists", `Quick, test_and_or_list);
    ("levels and depth", `Quick, test_levels_depth);
    ("rollback", `Quick, test_rollback);
    ("cleanup", `Quick, test_cleanup);
    ("ref counts", `Quick, test_ref_counts);
    ("tt basics", `Quick, test_tt_basics);
    ("tt cofactor small", `Quick, test_tt_cofactor_small);
    ("tt cofactor large", `Quick, test_tt_cofactor_large);
    ("tt bits roundtrip", `Quick, test_tt_bits_roundtrip);
    ("tt permute flip", `Quick, test_tt_permute_flip);
    ("isop basics", `Quick, test_isop_basic);
    ("isop fig4 branching", `Quick, test_isop_branching_fig4);
    ("npn classes 2,3", `Quick, test_npn_classes);
    ("npn classes 4", `Slow, test_npn_classes_4);
    ("cut trivial", `Quick, test_cut_trivial);
    ("cut xor", `Quick, test_cut_enumerate_xor);
    ("cut functions vs simulation", `Quick, test_cut_functions_match_simulation);
    ("factor shares literals", `Quick, test_factor_shares_literals);
    ("sim probability", `Quick, test_sim_prob);
    ("sim inequality detected", `Quick, test_sim_equal_outputs_negative);
    ("aiger roundtrip", `Quick, test_aiger_roundtrip);
    ("aiger const output", `Quick, test_aiger_const_output);
    ("aiger rejects garbage", `Quick, test_aiger_rejects_garbage);
    ("stats and features", `Quick, test_stats);
    ("rng determinism", `Quick, test_rng_determinism);
  ]
  @ qsuite
      [
        prop_tt_cofactor_shannon;
        prop_tt_expand_preserves;
        prop_isop_exact;
        prop_isop_irredundant;
        prop_npn_canonical_invariant;
        prop_factor_correct;
      ]

(* ------------------------------------------------------------------ *)
(* Additional structural properties *)

let random_graph_for_props seed =
  let rng = Aig.Rng.create seed in
  let g = Aig.Graph.create ~num_pis:5 in
  let lits = ref (Array.to_list (Array.init 5 (Aig.Graph.pi g))) in
  for _ = 1 to 25 do
    let arr = Array.of_list !lits in
    let pick () =
      Aig.Graph.lit_not_cond
        arr.(Aig.Rng.int rng (Array.length arr))
        (Aig.Rng.bool rng)
    in
    lits := Aig.Graph.and_ g (pick ()) (pick ()) :: !lits
  done;
  (match !lits with l :: _ -> Aig.Graph.add_po g l | [] -> assert false);
  g

let prop_cleanup_idempotent =
  QCheck.Test.make ~name:"graph: cleanup is idempotent" ~count:50
    (QCheck.int_bound 100000) (fun seed ->
      let g = random_graph_for_props seed in
      let c1 = Aig.Graph.cleanup g in
      let c2 = Aig.Graph.cleanup c1 in
      Aig.Graph.equal_structure c1 c2)

let prop_compose_identity =
  QCheck.Test.make ~name:"graph: identity compose preserves function"
    ~count:50 (QCheck.int_bound 100000) (fun seed ->
      let g = random_graph_for_props seed in
      let g' =
        Aig.Graph.compose g (fun dst pis ->
            let map = Array.make (Aig.Graph.num_nodes g) 0 in
            Array.iteri (fun i l -> map.(i + 1) <- l) pis;
            let ml l =
              Aig.Graph.lit_not_cond
                map.(Aig.Graph.node_of_lit l)
                (Aig.Graph.is_compl l)
            in
            Aig.Graph.iter_ands g (fun id ->
                map.(id) <-
                  Aig.Graph.and_ dst
                    (ml (Aig.Graph.fanin0 g id))
                    (ml (Aig.Graph.fanin1 g id)));
            Array.map ml (Aig.Graph.pos g))
      in
      Aig.Sim.equal_outputs g g' ~words:4 ~seed:(seed + 1))

let prop_cut_dominance =
  QCheck.Test.make ~name:"cut: no cut dominates another in a node's set"
    ~count:30 (QCheck.int_bound 100000) (fun seed ->
      let g = random_graph_for_props seed in
      let sets = Aig.Cut.enumerate g ~k:4 ~limit:8 in
      let ok = ref true in
      Aig.Graph.iter_ands g (fun id ->
          let cs = Array.of_list (Aig.Cut.cuts sets id) in
          Array.iteri
            (fun i a ->
              Array.iteri
                (fun j b ->
                  if i <> j && Aig.Cut.dominates a b
                     && a.Aig.Cut.leaves <> b.Aig.Cut.leaves then ok := false)
                cs)
            cs);
      !ok)

let prop_tt_swap_involution =
  QCheck.Test.make ~name:"tt: swap_adjacent is an involution" ~count:200
    (QCheck.pair (QCheck.int_bound 65535) (QCheck.int_bound 2))
    (fun (bits, i) ->
      let f = Aig.Tt.of_int 4 bits in
      Aig.Tt.equal f (Aig.Tt.swap_adjacent (Aig.Tt.swap_adjacent f i) i))

let test_aiger_unreachable_nodes_kept () =
  (* The reader materializes AND definitions even when no output uses
     them, so file statistics survive a round trip. *)
  let s = "aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n8 3 5\n" in
  let g = Aig.Aiger_io.read_string s in
  check "both ands kept" 2 (Aig.Graph.num_ands g)

let suite =
  suite
  @ [ ("aiger keeps unreachable nodes", `Quick,
       test_aiger_unreachable_nodes_kept) ]
  @ qsuite
      [
        prop_cleanup_idempotent;
        prop_compose_identity;
        prop_cut_dominance;
        prop_tt_swap_involution;
      ]

(* ------------------------------------------------------------------ *)
(* Exact small-function synthesis *)

let test_exact_known_sizes () =
  let x0 = Aig.Tt.var 2 0 and x1 = Aig.Tt.var 2 1 in
  check "and2 = 1 node" 1 (Aig.Exact.optimal_size (Aig.Tt.and_ x0 x1));
  check "or2 = 1 node" 1 (Aig.Exact.optimal_size (Aig.Tt.or_ x0 x1));
  check "xor2 = 3 nodes" 3 (Aig.Exact.optimal_size (Aig.Tt.xor_ x0 x1));
  check "var = 0 nodes" 0 (Aig.Exact.optimal_size (Aig.Tt.var 3 1));
  check "const = 0 nodes" 0
    (Aig.Exact.optimal_size (Aig.Tt.create_const 3 true));
  (* MUX(s,a,b) needs 3 AND nodes. *)
  let s = Aig.Tt.var 3 2 and a = Aig.Tt.var 3 0 and b = Aig.Tt.var 3 1 in
  let mux = Aig.Tt.or_ (Aig.Tt.and_ s a) (Aig.Tt.and_ (Aig.Tt.not_ s) b) in
  check "mux3 = 3 nodes" 3 (Aig.Exact.optimal_size mux)

let test_exact_all_functions_correct () =
  (* Every 3-variable function must be realized exactly. *)
  for bits = 0 to 255 do
    let f = Aig.Tt.of_int 3 bits in
    let g = Aig.Graph.create ~num_pis:3 in
    let leaves = Array.init 3 (Aig.Graph.pi g) in
    let root = Aig.Exact.build g ~leaves f in
    Aig.Graph.add_po g root;
    for m = 0 to 7 do
      let ins = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
      if (Aig.Sim.eval g ins).(0) <> Aig.Tt.get_bit f m then
        Alcotest.failf "function %02x wrong at minterm %d" bits m
    done
  done

let test_exact_never_beaten_by_factoring () =
  (* The exact table must never be worse than what a fresh build via
     the generic path produces for 3-input functions. *)
  for bits = 0 to 255 do
    let f = Aig.Tt.of_int 3 bits in
    let g = Aig.Graph.create ~num_pis:3 in
    let leaves = Array.init 3 (Aig.Graph.pi g) in
    ignore (Aig.Exact.build g ~leaves f);
    check_bool "exact within its own bound" true
      (Aig.Graph.num_ands g <= Aig.Exact.optimal_size f)
  done

let suite =
  suite
  @ [
      ("exact known sizes", `Quick, test_exact_known_sizes);
      ("exact realizes all 3-var functions", `Quick,
       test_exact_all_functions_correct);
      ("exact within bound", `Quick, test_exact_never_beaten_by_factoring);
    ]

(* ------------------------------------------------------------------ *)
(* Binary AIGER *)

let test_binary_aiger_roundtrip () =
  let g = random_graph_for_props 99 in
  let s = Aig.Aiger_io.write_binary_string g in
  check_bool "binary magic" true (String.sub s 0 4 = "aig ");
  let g' = Aig.Aiger_io.read_string s in
  check "pis" (Aig.Graph.num_pis g) (Aig.Graph.num_pis g');
  check "pos" (Aig.Graph.num_pos g) (Aig.Graph.num_pos g');
  check_bool "function preserved" true
    (Aig.Sim.equal_outputs g g' ~words:8 ~seed:5)

let test_binary_smaller_than_ascii () =
  let g = random_graph_for_props 123 in
  check_bool "binary more compact" true
    (String.length (Aig.Aiger_io.write_binary_string g)
     < String.length (Aig.Aiger_io.write_string g))

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"aiger: binary write/read preserves function"
    ~count:50 (QCheck.int_bound 1000000) (fun seed ->
      let g = random_graph_for_props seed in
      let g' = Aig.Aiger_io.read_string (Aig.Aiger_io.write_binary_string g) in
      Aig.Sim.equal_outputs g g' ~words:4 ~seed:(seed + 1))

let test_binary_rejects_garbage () =
  (try
     ignore (Aig.Aiger_io.read_string "aig 2 1 0 1 1\n2\n");
     Alcotest.fail "expected truncation error"
   with Aig.Aiger_io.Parse_error _ -> ());
  try
    ignore (Aig.Aiger_io.read_string "aig 5 1 0 1 1\n2\n\xff");
    Alcotest.fail "expected header mismatch error"
  with Aig.Aiger_io.Parse_error _ -> ()

let suite =
  suite
  @ [
      ("binary aiger roundtrip", `Quick, test_binary_aiger_roundtrip);
      ("binary aiger compact", `Quick, test_binary_smaller_than_ascii);
      ("binary aiger rejects garbage", `Quick, test_binary_rejects_garbage);
    ]
  @ qsuite [ prop_binary_roundtrip ]

let test_dot_export () =
  let g = Aig.Graph.create ~num_pis:2 in
  Aig.Graph.add_po g
    (Aig.Graph.lit_not (Aig.Graph.and_ g (Aig.Graph.pi g 0) (Aig.Graph.pi g 1)));
  let s = Aig.Dot.of_graph g in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "digraph" true (contains "digraph");
  check_bool "pi node" true (contains "n1 [shape=triangle");
  check_bool "dashed complement" true (contains "style=dashed");
  check_bool "output node" true (contains "o0")

let suite = suite @ [ ("dot export", `Quick, test_dot_export) ]
