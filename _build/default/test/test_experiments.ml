(* Tests for the experiment harness: table rendering, figure content,
   paper reference data consistency, and a fast end-to-end table run. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_render () =
  let t =
    {
      Experiments.Table.title = "T";
      header = [ "a"; "bb" ];
      rows = [ [ "1"; "2" ]; [ "333"; "4" ] ];
      notes = [ "n" ];
    }
  in
  let s = Experiments.Table.render t in
  check_bool "has title" true
    (String.length s > 0 && String.sub s 0 6 = "== T =");
  check_bool "has note" true
    (String.length s >= 7
     && String.exists (fun _ -> true) s
     &&
     let rec contains i =
       i + 7 <= String.length s
       && (String.sub s i 7 = "note: n" || contains (i + 1))
     in
     contains 0)

let test_fmt () =
  Alcotest.(check string) "float" "3.14" (Experiments.Table.fmt_f 3.14159);
  Alcotest.(check string) "pct" "52.42%" (Experiments.Table.fmt_pct 52.42)

let test_paper_data_consistency () =
  (* The stored rows must reproduce the paper's published averages. *)
  let lec = Experiments.Paper.table3 in
  check "6 rows with avg" 6 (List.length lec);
  let avg_row = List.nth lec 5 in
  Alcotest.(check (float 0.01)) "avg ours reduction"
    Experiments.Paper.avg_reduction_lec_ours
    avg_row.Experiments.Paper.ours_reduction;
  Alcotest.(check (float 0.01)) "avg een reduction"
    Experiments.Paper.avg_reduction_lec_een
    avg_row.Experiments.Paper.een_reduction;
  (* Ours beats [15] on every LEC case in the paper. *)
  List.iter
    (fun (r : Experiments.Paper.lec_row) ->
      check_bool (r.case ^ ": ours <= een") true
        (r.ours_t_all <= r.een_t_all))
    lec;
  (* Table 7 shape: I cases get flatter, C cases get much flatter. *)
  List.iter
    (fun (r : Experiments.Paper.size_row) ->
      if String.length r.case > 0 && r.case.[0] = 'C' then
        check_bool (r.case ^ ": flattened") true
          (r.luts_per_level_after > r.gates_per_level_before))
    Experiments.Paper.table7

let test_figure4 () =
  let t = Experiments.Tables.figure4 () in
  (* Row 1 is AND2 with measured = paper = 3; row 2 XOR2 = 4. *)
  (match t.Experiments.Table.rows with
   | [ _; m; p ] :: [ _; m2; p2 ] :: _ ->
     Alcotest.(check string) "and measured=paper" m p;
     Alcotest.(check string) "xor measured=paper" m2 p2;
     Alcotest.(check string) "and=3" "3" m;
     Alcotest.(check string) "xor=4" "4" m2
   | _ -> Alcotest.fail "unexpected figure 4 shape")

let test_figure2 () =
  let t = Experiments.Tables.figure2 () in
  match t.Experiments.Table.rows with
  | [ [ _; _; b1; a1 ]; [ _; _; b2; a2 ] ] ->
    check_bool "rewrite shrinks" true (int_of_string a1 < int_of_string b1);
    check_bool "balance flattens" true (int_of_string a2 < int_of_string b2)
  | _ -> Alcotest.fail "unexpected figure 2 shape"

let fast_ctx =
  {
    Experiments.Tables.default_ctx with
    Experiments.Tables.scale = 0.08;
    training_count = 4;
    limits =
      {
        Sat.Solver.no_limits with
        Sat.Solver.max_seconds = Some 20.0;
        max_conflicts = Some 50_000;
      };
  }

let test_table1_fast () =
  let t = Experiments.Tables.table1 fast_ctx in
  check "five stat rows" 5 (List.length t.Experiments.Table.rows);
  List.iter
    (fun row -> check "five columns" 5 (List.length row))
    t.Experiments.Table.rows

let test_table2_fast () =
  let t = Experiments.Tables.table2 fast_ctx in
  check "thirteen cases" 13 (List.length t.Experiments.Table.rows);
  (* I cases have a gate count, C cases print N/A. *)
  List.iter
    (fun row ->
      match row with
      | name :: gates :: _ ->
        if name.[0] = 'I' then
          check_bool (name ^ " has gates") true (gates <> "N/A")
        else check_bool (name ^ " N/A") true (gates = "N/A")
      | _ -> Alcotest.fail "short row")
    t.Experiments.Table.rows

let test_table3_fast () =
  let t = Experiments.Tables.table3 fast_ctx in
  (* 5 cases + the average row. *)
  check "rows" 6 (List.length t.Experiments.Table.rows);
  check "columns" 15 (List.length t.Experiments.Table.header)

let suite =
  [
    ("table rendering", `Quick, test_render);
    ("formatters", `Quick, test_fmt);
    ("paper data consistency", `Quick, test_paper_data_consistency);
    ("figure 4 values", `Quick, test_figure4);
    ("figure 2 values", `Quick, test_figure2);
    ("table 1 fast run", `Slow, test_table1_fast);
    ("table 2 fast run", `Slow, test_table2_fast);
    ("table 3 fast run", `Slow, test_table3_fast);
  ]

let test_csv_export () =
  let t =
    {
      Experiments.Table.title = "T";
      header = [ "a"; "b,c" ];
      rows = [ [ "1"; "x\"y" ] ];
      notes = [];
    }
  in
  Alcotest.(check string) "csv" "a,\"b,c\"\n1,\"x\"\"y\"\n"
    (Experiments.Table.to_csv t)

let suite = suite @ [ ("csv export", `Quick, test_csv_export) ]
