(* Tests for LUT mapping: cost metrics (Fig. 4), functional
   preservation of mapping, netlist structure, and lut2cnf. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let random_graph ~seed ~num_pis ~num_ands =
  let rng = Aig.Rng.create seed in
  let g = Aig.Graph.create ~num_pis in
  let lits = ref (Array.to_list (Array.init num_pis (Aig.Graph.pi g))) in
  for _ = 1 to num_ands do
    let arr = Array.of_list !lits in
    let pick () =
      Aig.Graph.lit_not_cond
        arr.(Aig.Rng.int rng (Array.length arr))
        (Aig.Rng.bool rng)
    in
    lits := Aig.Graph.and_ g (pick ()) (pick ()) :: !lits
  done;
  (match !lits with
   | a :: b :: _ ->
     Aig.Graph.add_po g a;
     Aig.Graph.add_po g (Aig.Graph.lit_not b)
   | [ a ] -> Aig.Graph.add_po g a
   | [] -> Aig.Graph.add_po g Aig.Graph.const_true);
  g

let test_cost_fig4 () =
  let x0 = Aig.Tt.var 2 0 and x1 = Aig.Tt.var 2 1 in
  check "C(and2)=3" 3 (Lutmap.Cost.branching (Aig.Tt.and_ x0 x1));
  check "C(xor2)=4" 4 (Lutmap.Cost.branching (Aig.Tt.xor_ x0 x1));
  check "C(or2)=3" 3 (Lutmap.Cost.branching (Aig.Tt.or_ x0 x1));
  check "C(buffer)=2" 2 (Lutmap.Cost.branching (Aig.Tt.var 1 0));
  check "C(const)=1" 1 (Lutmap.Cost.branching (Aig.Tt.create_const 2 true));
  (* XOR is the most expensive 2-input function. *)
  let worst = ref 0 in
  for bits = 0 to 15 do
    worst := max !worst (Lutmap.Cost.branching (Aig.Tt.of_int 2 bits))
  done;
  check "xor2 is worst" 4 !worst;
  check "conventional is flat" 1
    (Lutmap.Cost.conventional (Aig.Tt.xor_ x0 x1))

let test_cost_int64_and_table () =
  (* xor2 packed: 0b0110. *)
  check "packed xor" 4 (Lutmap.Cost.branching_of_int64 ~nvars:2 0b0110L);
  let table = Lutmap.Cost.table_for_arity 3 in
  check "14 classes at n=3" 14 (List.length table);
  List.iter (fun (_f, c) -> check_bool "cost positive" true (c >= 1)) table;
  (* 3-input parity: worst 3-input branching complexity (8 primes). *)
  let parity3 =
    Aig.Tt.xor_ (Aig.Tt.var 3 0) (Aig.Tt.xor_ (Aig.Tt.var 3 1) (Aig.Tt.var 3 2))
  in
  check "C(xor3)=8" 8 (Lutmap.Cost.branching parity3);
  let worst = List.fold_left (fun acc (_, c) -> max acc c) 0 table in
  check "parity is the 3-input maximum" 8 worst

let exhaustive_matches g nl =
  let n = Aig.Graph.num_pis g in
  assert (n <= 12);
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let ins = Array.init n (fun i -> m land (1 lsl i) <> 0) in
    if Aig.Sim.eval g ins <> Lutmap.Netlist.eval nl ins then ok := false
  done;
  !ok

let test_mapper_preserves_function () =
  for seed = 41 to 50 do
    let g = random_graph ~seed ~num_pis:7 ~num_ands:60 in
    let nl = Lutmap.Mapper.run g in
    check_bool "functions match" true (exhaustive_matches g nl);
    check_bool "fanin bound" true (Lutmap.Netlist.max_fanin nl <= 4);
    check_bool "fewer luts than ands" true
      (Lutmap.Netlist.num_luts nl <= Aig.Graph.num_ands g)
  done

let test_mapper_cost_customized_preserves () =
  for seed = 51 to 58 do
    let g = random_graph ~seed ~num_pis:7 ~num_ands:60 in
    let nl = Lutmap.Mapper.run ~config:Lutmap.Mapper.cost_customized_config g in
    check_bool "functions match" true (exhaustive_matches g nl)
  done

let test_mapper_reduces_depth () =
  (* A 15-node AND chain maps into 4-LUTs of depth ceil(15/2)... at
     most; delay-oriented mapping must cut the depth well below 15. *)
  let g = Aig.Graph.create ~num_pis:16 in
  let acc = ref (Aig.Graph.pi g 0) in
  for i = 1 to 15 do
    acc := Aig.Graph.and_ g !acc (Aig.Graph.pi g i)
  done;
  Aig.Graph.add_po g !acc;
  let nl = Lutmap.Mapper.run g in
  check_bool "depth reduced" true (Lutmap.Netlist.depth nl <= 7);
  (* 16 PIs: check on random patterns instead of exhaustively. *)
  let rng = Aig.Rng.create 17 in
  for _ = 1 to 200 do
    let ins = Array.init 16 (fun _ -> Aig.Rng.bool rng) in
    check_bool "functions match" true
      (Aig.Sim.eval g ins = Lutmap.Netlist.eval nl ins)
  done

let test_cost_customized_lowers_branching_cost () =
  (* Aggregate over seeds: the branching-aware mapper must not produce
     higher total branching complexity than the conventional one. *)
  let conv = ref 0 and custom = ref 0 in
  for seed = 61 to 75 do
    let g = random_graph ~seed ~num_pis:8 ~num_ands:120 in
    let nl_conv = Lutmap.Mapper.run g in
    let nl_cust =
      Lutmap.Mapper.run ~config:Lutmap.Mapper.cost_customized_config g
    in
    conv := !conv + Lutmap.Mapper.total_cost Lutmap.Cost.branching nl_conv;
    custom := !custom + Lutmap.Mapper.total_cost Lutmap.Cost.branching nl_cust
  done;
  check_bool
    (Printf.sprintf "custom (%d) <= conventional (%d)" !custom !conv)
    true (!custom <= !conv)

let test_netlist_validate () =
  let bad =
    {
      Lutmap.Netlist.num_inputs = 1;
      luts =
        [|
          {
            Lutmap.Netlist.tt = Aig.Tt.var 2 0;
            fanins = [| Lutmap.Netlist.Input 0 |];
          };
        |];
      outputs = [| (Lutmap.Netlist.Lut_out 0, false) |];
    }
  in
  (try
     Lutmap.Netlist.validate bad;
     Alcotest.fail "expected arity mismatch"
   with Invalid_argument _ -> ());
  let cyclic =
    {
      Lutmap.Netlist.num_inputs = 1;
      luts =
        [|
          {
            Lutmap.Netlist.tt = Aig.Tt.var 1 0;
            fanins = [| Lutmap.Netlist.Lut_out 0 |];
          };
        |];
      outputs = [| (Lutmap.Netlist.Lut_out 0, false) |];
    }
  in
  try
    Lutmap.Netlist.validate cyclic;
    Alcotest.fail "expected topological violation"
  with Invalid_argument _ -> ()

let test_netlist_stats () =
  (* Two LUTs in a chain: depth 2, 1.0 luts/level. *)
  let nl =
    {
      Lutmap.Netlist.num_inputs = 2;
      luts =
        [|
          {
            Lutmap.Netlist.tt =
              Aig.Tt.and_ (Aig.Tt.var 2 0) (Aig.Tt.var 2 1);
            fanins = [| Lutmap.Netlist.Input 0; Lutmap.Netlist.Input 1 |];
          };
          {
            Lutmap.Netlist.tt = Aig.Tt.not_ (Aig.Tt.var 1 0);
            fanins = [| Lutmap.Netlist.Lut_out 0 |];
          };
        |];
      outputs = [| (Lutmap.Netlist.Lut_out 1, false) |];
    }
  in
  Lutmap.Netlist.validate nl;
  check "depth" 2 (Lutmap.Netlist.depth nl);
  Alcotest.(check (float 1e-9)) "luts/level" 1.0
    (Lutmap.Netlist.luts_per_level nl);
  let out = Lutmap.Netlist.eval nl [| true; true |] in
  check_bool "nand chain" false out.(0)

let brute_force f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 20);
  let rec go m =
    if m >= 1 lsl n then None
    else
      let a = Array.init n (fun i -> m land (1 lsl i) <> 0) in
      if Cnf.Formula.eval f a then Some a else go (m + 1)
  in
  go 0

let test_encode_agrees_with_eval () =
  for seed = 81 to 88 do
    let g = random_graph ~seed ~num_pis:4 ~num_ands:20 in
    let nl = Lutmap.Mapper.run ~config:Lutmap.Mapper.cost_customized_config g in
    let enc = Lutmap.Encode.encode nl in
    (* Satisfiable iff some input drives all outputs to 1; models must
       project onto inputs that do. *)
    let expected =
      let found = ref false in
      for m = 0 to 15 do
        let ins = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
        if Array.for_all Fun.id (Lutmap.Netlist.eval nl ins) then found := true
      done;
      !found
    in
    match brute_force enc.Lutmap.Encode.formula with
    | Some model ->
      check_bool "expected satisfiable" true expected;
      let ins = Array.init 4 (fun i -> model.(i)) in
      check_bool "model drives outputs" true
        (Array.for_all Fun.id (Lutmap.Netlist.eval nl ins))
    | None -> check_bool "expected unsatisfiable" false expected
  done

let test_encode_clause_count_is_branching_complexity () =
  (* One XOR LUT: exactly 4 clauses plus the output unit. *)
  let nl =
    {
      Lutmap.Netlist.num_inputs = 2;
      luts =
        [|
          {
            Lutmap.Netlist.tt = Aig.Tt.xor_ (Aig.Tt.var 2 0) (Aig.Tt.var 2 1);
            fanins = [| Lutmap.Netlist.Input 0; Lutmap.Netlist.Input 1 |];
          };
        |];
      outputs = [| (Lutmap.Netlist.Lut_out 0, false) |];
    }
  in
  let enc = Lutmap.Encode.encode nl in
  check "4 + 1 clauses" 5 (Cnf.Formula.num_clauses enc.Lutmap.Encode.formula)

let test_encode_const_output () =
  let nl =
    {
      Lutmap.Netlist.num_inputs = 0;
      luts = [||];
      outputs = [| (Lutmap.Netlist.Const false, false) |];
    }
  in
  let enc = Lutmap.Encode.encode nl in
  check_bool "const false output unsat" true
    (Cnf.Formula.is_trivially_unsat enc.Lutmap.Encode.formula)

let suite =
  [
    ("branching cost matches Fig.4", `Quick, test_cost_fig4);
    ("packed cost and class table", `Quick, test_cost_int64_and_table);
    ("mapper preserves function", `Quick, test_mapper_preserves_function);
    ("cost-customized mapper preserves", `Quick,
     test_mapper_cost_customized_preserves);
    ("mapper reduces depth", `Quick, test_mapper_reduces_depth);
    ("cost-customized lowers branching cost", `Quick,
     test_cost_customized_lowers_branching_cost);
    ("netlist validation", `Quick, test_netlist_validate);
    ("netlist stats", `Quick, test_netlist_stats);
    ("lut2cnf agrees with eval", `Quick, test_encode_agrees_with_eval);
    ("lut2cnf clause count", `Quick, test_encode_clause_count_is_branching_complexity);
    ("lut2cnf const output", `Quick, test_encode_const_output);
  ]

(* ------------------------------------------------------------------ *)
(* BLIF *)

let test_blif_roundtrip () =
  for seed = 91 to 96 do
    let g = random_graph ~seed ~num_pis:5 ~num_ands:30 in
    let nl = Lutmap.Mapper.run g in
    let s = Lutmap.Blif.write_string nl in
    let nl' = Lutmap.Blif.read_string s in
    check "inputs" nl.Lutmap.Netlist.num_inputs nl'.Lutmap.Netlist.num_inputs;
    check "outputs"
      (Array.length nl.Lutmap.Netlist.outputs)
      (Array.length nl'.Lutmap.Netlist.outputs);
    for m = 0 to 31 do
      let ins = Array.init 5 (fun i -> m land (1 lsl i) <> 0) in
      check_bool "function preserved" true
        (Lutmap.Netlist.eval nl ins = Lutmap.Netlist.eval nl' ins)
    done
  done

let test_blif_reads_offset_cover_and_comments () =
  let s =
    "# a NAND via an off-set cover\n\
     .model t\n\
     .inputs a b\n\
     .outputs y\n\
     .names a b y\n\
     11 0\n\
     .end\n"
  in
  let nl = Lutmap.Blif.read_string s in
  check_bool "nand(1,1)=0" true
    (Lutmap.Netlist.eval nl [| true; true |] = [| false |]);
  check_bool "nand(1,0)=1" true
    (Lutmap.Netlist.eval nl [| true; false |] = [| true |])

let test_blif_continuation_lines () =
  let s =
    ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
  in
  let nl = Lutmap.Blif.read_string s in
  check "two inputs" 2 nl.Lutmap.Netlist.num_inputs

let test_blif_errors () =
  let expect s =
    try
      ignore (Lutmap.Blif.read_string s);
      Alcotest.failf "expected parse error on %S" s
    with Lutmap.Blif.Parse_error _ -> ()
  in
  expect ".model t\n.inputs a\n.outputs y\n.names z y\n1 1\n.end\n";
  (* undefined signal *)
  expect ".model t\n.inputs a\n.outputs y\n.names y y\n1 1\n.end\n";
  (* loop *)
  expect
    ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n";
  (* mixed polarity *)
  expect ".model a\n.model b\n.end\n" (* two models *)

let test_blif_constants () =
  let nl =
    {
      Lutmap.Netlist.num_inputs = 1;
      luts = [||];
      outputs = [| (Lutmap.Netlist.Const true, false) |];
    }
  in
  let s = Lutmap.Blif.write_string nl in
  let nl' = Lutmap.Blif.read_string s in
  check_bool "const output" true
    (Lutmap.Netlist.eval nl' [| false |] = [| true |])

let suite =
  suite
  @ [
      ("blif roundtrip", `Quick, test_blif_roundtrip);
      ("blif off-set cover", `Quick, test_blif_reads_offset_cover_and_comments);
      ("blif continuation lines", `Quick, test_blif_continuation_lines);
      ("blif errors", `Quick, test_blif_errors);
      ("blif constants", `Quick, test_blif_constants);
    ]

let test_verilog_writer () =
  let g = random_graph ~seed:140 ~num_pis:4 ~num_ands:15 in
  let nl = Lutmap.Mapper.run g in
  let v = Lutmap.Blif.write_string nl in
  ignore v;
  let s = Lutmap.Verilog.write_string ~module_name:"m" nl in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "module header" true (contains "module m(");
  check_bool "endmodule" true (contains "endmodule");
  check_bool "inputs declared" true (contains "input i0");
  check_bool "assigns present" true (contains "assign");
  (* Every LUT and output appears exactly once as an assign target. *)
  let count_assigns =
    List.length
      (String.split_on_char '\n' s
      |> List.filter (fun l ->
             let l = String.trim l in
             String.length l > 7 && String.sub l 0 7 = "assign "))
  in
  check "assign count" (Lutmap.Netlist.num_luts nl
                        + Array.length nl.Lutmap.Netlist.outputs)
    count_assigns

let suite = suite @ [ ("verilog writer", `Quick, test_verilog_writer) ]
