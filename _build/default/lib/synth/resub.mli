(** Functional resubstitution by SAT sweeping (the [resub] operation).

    Replaces every node that is functionally equivalent (up to
    complement) to an already-built node with that existing "divisor" —
    0-resubstitution over the whole input space.  Candidates are found
    by random-simulation signatures and proven with the CDCL solver on
    a cone miter; disproved candidates contribute counterexample
    patterns that refine the signatures.  This is the FRAIG construction
    of Mishchenko et al., and the workhorse that collapses equivalence-
    checking miters. *)

type config = {
  words : int;           (** 64-bit simulation words per node *)
  seed : int;
  conflict_limit : int;  (** SAT budget per equivalence proof *)
  max_cone : int;        (** skip proofs whose miter cone is larger *)
}

val default_config : config

val run : ?config:config -> Aig.Graph.t -> Aig.Graph.t

val stats_last_run : unit -> int * int * int
(** (candidates tried, proven equivalent, disproved) of the most recent
    {!run} — observability for tests and logs. *)
