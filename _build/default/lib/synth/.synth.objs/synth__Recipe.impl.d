lib/synth/recipe.ml: Balance List Printf Refactor Resub Rewrite String
