lib/synth/mffc.mli: Aig
