lib/synth/resub_window.ml: Aig Array Hashtbl Int64 List Mffc Sat
