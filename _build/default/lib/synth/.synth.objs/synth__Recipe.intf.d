lib/synth/recipe.mli: Aig Stdlib
