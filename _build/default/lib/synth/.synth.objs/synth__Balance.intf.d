lib/synth/balance.mli: Aig
