lib/synth/resub_window.mli: Aig
