lib/synth/rewrite.ml: Aig Array List Mffc
