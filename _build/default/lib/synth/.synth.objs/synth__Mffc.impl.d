lib/synth/mffc.ml: Aig Array Hashtbl Option
