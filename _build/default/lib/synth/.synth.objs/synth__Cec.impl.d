lib/synth/cec.ml: Aig Array Cnf Int64 Resub Sat
