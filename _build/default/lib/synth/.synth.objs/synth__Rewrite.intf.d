lib/synth/rewrite.mli: Aig
