lib/synth/balance.ml: Aig Array List
