lib/synth/refactor.mli: Aig
