lib/synth/resub.ml: Aig Array Hashtbl Int64 List Sat
