lib/synth/resub.mli: Aig
