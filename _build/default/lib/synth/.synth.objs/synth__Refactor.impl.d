lib/synth/refactor.ml: Aig Array Hashtbl List Mffc
