lib/synth/cec.mli: Aig Sat
