(* Reconvergence-driven cut growth + cone collapse + refactoring.

   For each node the cut starts at its fanins and repeatedly expands
   the leaf whose replacement by its own fanins increases the leaf
   count the least (the classic reconvergence heuristic: a leaf both of
   whose fanins are already leaves is free).  The cone above the final
   cut is evaluated into a truth table and rebuilt from a factored
   cover; the replacement is kept when it adds fewer nodes than the
   MFFC it frees. *)

let grow_cut g ~max_leaves ~max_cone id =
  let leaves = Hashtbl.create 16 in
  let cone = Hashtbl.create 32 in
  Hashtbl.replace cone id ();
  let add_leaf n = Hashtbl.replace leaves n () in
  add_leaf (Aig.Graph.node_of_lit (Aig.Graph.fanin0 g id));
  add_leaf (Aig.Graph.node_of_lit (Aig.Graph.fanin1 g id));
  let expansion_cost n =
    (* New leaves created if leaf n is replaced by its fanins. *)
    if not (Aig.Graph.is_and g n) then None
    else begin
      let f0 = Aig.Graph.node_of_lit (Aig.Graph.fanin0 g n)
      and f1 = Aig.Graph.node_of_lit (Aig.Graph.fanin1 g n) in
      let cost =
        (if Hashtbl.mem leaves f0 then 0 else 1)
        + (if Hashtbl.mem leaves f1 then 0 else 1)
        - 1
      in
      Some (cost, f0, f1)
    end
  in
  let continue = ref true in
  while !continue && Hashtbl.length cone < max_cone do
    (* Pick the cheapest expandable leaf. *)
    let best = ref None in
    Hashtbl.iter
      (fun n () ->
        match expansion_cost n with
        | Some (c, f0, f1) -> (
          match !best with
          | Some (bc, _, _, _) when bc <= c -> ()
          | _ -> best := Some (c, n, f0, f1))
        | None -> ())
      leaves;
    match !best with
    | Some (c, n, f0, f1) when Hashtbl.length leaves - 1 + c + 1 <= max_leaves
      ->
      (* leaves - n + (new leaves); c = new - 1. *)
      Hashtbl.remove leaves n;
      Hashtbl.replace cone n ();
      Hashtbl.replace leaves f0 ();
      Hashtbl.replace leaves f1 ()
    | Some _ | None -> continue := false
  done;
  Hashtbl.fold (fun n () acc -> n :: acc) leaves []
  |> List.sort compare |> Array.of_list

(* Truth table of [id] as a function of [leaves] (ascending ids). *)
let cone_tt g id leaves =
  let n = Array.length leaves in
  let memo = Hashtbl.create 64 in
  Array.iteri (fun i leaf -> Hashtbl.replace memo leaf (Aig.Tt.var n i)) leaves;
  let rec eval nid =
    match Hashtbl.find_opt memo nid with
    | Some t -> t
    | None ->
      let value l =
        let t = eval (Aig.Graph.node_of_lit l) in
        if Aig.Graph.is_compl l then Aig.Tt.not_ t else t
      in
      let t =
        Aig.Tt.and_ (value (Aig.Graph.fanin0 g nid))
          (value (Aig.Graph.fanin1 g nid))
      in
      Hashtbl.replace memo nid t;
      t
  in
  eval id

let run ?(max_leaves = 10) ?(max_cone = 60) g =
  if max_leaves > 16 then invalid_arg "Refactor.run: max_leaves above 16";
  let refs = Aig.Graph.ref_counts g in
  let reachable = Array.make (Aig.Graph.num_nodes g) false in
  let rec visit id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if Aig.Graph.is_and g id then begin
        visit (Aig.Graph.node_of_lit (Aig.Graph.fanin0 g id));
        visit (Aig.Graph.node_of_lit (Aig.Graph.fanin1 g id))
      end
    end
  in
  Array.iter
    (fun l ->
      let id = Aig.Graph.node_of_lit l in
      if id <> 0 then visit id)
    (Aig.Graph.pos g);
  let result =
    Aig.Graph.compose g (fun g' new_pis ->
        let map = Array.make (Aig.Graph.num_nodes g) Aig.Graph.const_false in
        for i = 0 to Aig.Graph.num_pis g - 1 do
          map.(i + 1) <- new_pis.(i)
        done;
        let map_lit l =
          Aig.Graph.lit_not_cond
            map.(Aig.Graph.node_of_lit l)
            (Aig.Graph.is_compl l)
        in
        Aig.Graph.iter_ands g (fun id ->
            if reachable.(id) then begin
              let default () =
                Aig.Graph.and_ g'
                  (map_lit (Aig.Graph.fanin0 g id))
                  (map_lit (Aig.Graph.fanin1 g id))
              in
              let leaves = grow_cut g ~max_leaves ~max_cone id in
              let lit =
                if Array.length leaves < 3 || Array.mem id leaves then
                  default ()
                else begin
                  let saved = Mffc.size_above_cut g refs id leaves in
                  if saved < 2 then default ()
                  else begin
                    let tt = cone_tt g id leaves in
                    let mapped = Array.map (fun n -> map.(n)) leaves in
                    let m = Aig.Graph.mark g' in
                    let _cand = Aig.Factor.tt_to_aig g' ~leaves:mapped tt in
                    let added = Aig.Graph.nodes_since g' m in
                    Aig.Graph.rollback g' m;
                    if added < saved then
                      Aig.Factor.tt_to_aig g' ~leaves:mapped tt
                    else default ()
                  end
                end
              in
              map.(id) <- lit
            end);
        Array.map map_lit (Aig.Graph.pos g))
  in
  Aig.Graph.cleanup result
