(* Simulated dereferencing on a scratch delta of the reference counts. *)

let walk g refs id ~stop ~visit =
  let delta = Hashtbl.create 16 in
  let remaining nid =
    refs.(nid) - Option.value (Hashtbl.find_opt delta nid) ~default:0
  in
  let rec deref nid =
    visit nid;
    let fanin l =
      let fid = Aig.Graph.node_of_lit l in
      if Aig.Graph.is_and g fid && not (stop fid) then begin
        Hashtbl.replace delta fid
          (1 + Option.value (Hashtbl.find_opt delta fid) ~default:0);
        if remaining fid = 0 then deref fid
      end
    in
    fanin (Aig.Graph.fanin0 g nid);
    fanin (Aig.Graph.fanin1 g nid)
  in
  deref id

let size_above_cut g refs id leaves =
  let leaf_set = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace leaf_set l ()) leaves;
  let count = ref 0 in
  walk g refs id ~stop:(Hashtbl.mem leaf_set) ~visit:(fun _ -> incr count);
  !count

let size g refs id =
  let count = ref 0 in
  walk g refs id ~stop:(fun _ -> false) ~visit:(fun _ -> incr count);
  !count

let members g refs id =
  let acc = ref [] in
  walk g refs id ~stop:(fun _ -> false) ~visit:(fun nid -> acc := nid :: !acc);
  !acc
