(* 1-resubstitution.  The rebuild mirrors Resub: new-graph nodes carry
   simulation rows; for every rebuilt node whose (old-graph) MFFC is at
   least two nodes, we scan a window of recently created divisors for a
   pair d1, d2 and polarities such that node = d1' AND d2' on the
   simulated patterns, then ask the SAT solver to confirm it on the
   whole input space. *)

type config = {
  words : int;
  seed : int;
  window : int;
  conflict_limit : int;
  max_cone : int;
}

let default_config =
  { words = 4; seed = 0x135B; window = 48; conflict_limit = 500;
    max_cone = 3000 }

let last_stats = ref (0, 0)
let stats_last_run () = !last_stats

let run ?(config = default_config) g =
  let tried = ref 0 and proven = ref 0 in
  let rng = Aig.Rng.create config.seed in
  let refs = Aig.Graph.ref_counts g in
  let n_old = Aig.Graph.num_nodes g in
  let result =
    Aig.Graph.compose g (fun g' new_pis ->
        let npis = Array.length new_pis in
        let rows = ref (Array.make (max 16 (2 * npis)) [||]) in
        let set_row id r =
          if id >= Array.length !rows then begin
            let d = Array.make (max (2 * Array.length !rows) (id + 1)) [||] in
            Array.blit !rows 0 d 0 (Array.length !rows);
            rows := d
          end;
          !rows.(id) <- r
        in
        set_row 0 (Array.make config.words 0L);
        Array.iter
          (fun l ->
            set_row (Aig.Graph.node_of_lit l)
              (Array.init config.words (fun _ -> Aig.Rng.next64 rng)))
          new_pis;
        let node_row id = !rows.(id) in
        let lit_row l =
          let r = node_row (Aig.Graph.node_of_lit l) in
          if Aig.Graph.is_compl l then Array.map Int64.lognot r else r
        in
        (* Shared incremental SAT session: every node is encoded once,
           equivalence queries are assumption probes. *)
        let session = Sat.Solver.Incremental.create () in
        let cnf_var = ref (Array.make (max 16 (2 * npis)) 0) in
        let set_var id v =
          if id >= Array.length !cnf_var then begin
            let d = Array.make (max (2 * Array.length !cnf_var) (id + 1)) 0 in
            Array.blit !cnf_var 0 d 0 (Array.length !cnf_var);
            cnf_var := d
          end;
          !cnf_var.(id) <- v
        in
        Array.iter
          (fun l ->
            set_var (Aig.Graph.node_of_lit l)
              (Sat.Solver.Incremental.new_var session))
          new_pis;
        let dimacs_of l =
          let v = !cnf_var.(Aig.Graph.node_of_lit l) in
          assert (v > 0);
          if Aig.Graph.is_compl l then -v else v
        in
        let and_tracked a b =
          let l = Aig.Graph.and_ g' a b in
          let id = Aig.Graph.node_of_lit l in
          if
            Aig.Graph.is_and g' id
            && (id >= Array.length !rows || !rows.(id) = [||])
          then begin
            let ra = lit_row (Aig.Graph.fanin0 g' id)
            and rb = lit_row (Aig.Graph.fanin1 g' id) in
            set_row id (Array.init config.words (fun w -> Int64.logand ra.(w) rb.(w)));
            let o = Sat.Solver.Incremental.new_var session in
            set_var id o;
            let da = dimacs_of (Aig.Graph.fanin0 g' id)
            and db = dimacs_of (Aig.Graph.fanin1 g' id) in
            Sat.Solver.Incremental.add_clause session [| -o; da |];
            Sat.Solver.Incremental.add_clause session [| -o; db |];
            Sat.Solver.Incremental.add_clause session [| o; -da; -db |]
          end;
          l
        in
        (* Divisor window: node ids, most recent first. *)
        let divisors = ref [] and ndivisors = ref 0 in
        let push_divisor id =
          divisors := id :: !divisors;
          incr ndivisors;
          if !ndivisors > config.window then begin
            (* Drop the oldest (cheap approximation: truncate). *)
            divisors := List.filteri (fun i _ -> i < config.window) !divisors;
            ndivisors := config.window
          end
        in
        Array.iter (fun l -> push_divisor (Aig.Graph.node_of_lit l)) new_pis;
        (* SAT proof that target literal equals candidate literal:
           an activation variable implies they differ; UNSAT under that
           assumption proves equality. *)
        let prove_equal la lb =
          let da = dimacs_of la and db = dimacs_of lb in
          let x = Sat.Solver.Incremental.new_var session in
          Sat.Solver.Incremental.add_clause session [| -x; da; db |];
          Sat.Solver.Incremental.add_clause session [| -x; -da; -db |];
          let limits =
            { Sat.Solver.no_limits with
              Sat.Solver.max_conflicts = Some config.conflict_limit }
          in
          match
            fst
              (Sat.Solver.Incremental.solve ~limits ~assumptions:[| x |]
                 session)
          with
          | Sat.Solver.Unsat ->
            Sat.Solver.Incremental.add_clause session [| -x |];
            true
          | Sat.Solver.Sat _ | Sat.Solver.Unknown -> false
        in
        (* Find (d1', d2') with target = d1' AND d2' on the samples.
           Divisors inside the node's own fanout-free cone are excluded:
           a substitution through them keeps the cone alive and frees
           nothing. *)
        let find_candidate target_row nid ~excluded =
          let rows_equal a b =
            let ok = ref true in
            Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
            !ok
          in
          let lits_of id = [ Aig.Graph.lit_of_node id false;
                             Aig.Graph.lit_of_node id true ] in
          let covers l =
            (* target => l on the samples (necessary for an AND). *)
            let r = lit_row l in
            let ok = ref true in
            Array.iteri
              (fun i x ->
                if Int64.logand target_row.(i) (Int64.lognot x) <> 0L then
                  ok := false)
              r;
            !ok
          in
          let cands =
            List.concat_map
              (fun d ->
                if d = nid || Hashtbl.mem excluded d then [] else lits_of d)
              !divisors
            |> List.filter covers
          in
          (* All signature-matching pairs (bounded); the caller skips
             those that reproduce the node's own decomposition. *)
          let acc = ref [] in
          let rec pairs = function
            | [] -> ()
            | l1 :: rest ->
              let r1 = lit_row l1 in
              List.iter
                (fun l2 ->
                  if List.length !acc < 8 then begin
                    let r2 = lit_row l2 in
                    if
                      rows_equal target_row
                        (Array.mapi (fun i x -> Int64.logand x r2.(i)) r1)
                    then acc := (l1, l2) :: !acc
                  end)
                rest;
              if List.length !acc < 8 then pairs rest
          in
          pairs cands;
          List.rev !acc
        in
        let map = Array.make n_old Aig.Graph.const_false in
        for i = 0 to npis - 1 do
          map.(i + 1) <- new_pis.(i)
        done;
        let map_lit l =
          Aig.Graph.lit_not_cond
            map.(Aig.Graph.node_of_lit l)
            (Aig.Graph.is_compl l)
        in
        Aig.Graph.iter_ands g (fun id ->
            let nl =
              and_tracked
                (map_lit (Aig.Graph.fanin0 g id))
                (map_lit (Aig.Graph.fanin1 g id))
            in
            let nid = Aig.Graph.node_of_lit nl in
            let members =
              if Aig.Graph.is_and g' nid && not (Aig.Graph.is_compl nl) then
                Mffc.members g refs id
              else []
            in
            let chosen =
              if List.length members >= 2 then begin
                (* New-graph images of the MFFC members. *)
                let excluded = Hashtbl.create 8 in
                List.iter
                  (fun m ->
                    if m < n_old && map.(m) <> Aig.Graph.const_false then
                      Hashtbl.replace excluded
                        (Aig.Graph.node_of_lit map.(m)) ())
                  members;
                Hashtbl.replace excluded nid ();
                let rec try_pairs = function
                  | [] -> nl
                  | (l1, l2) :: rest ->
                    let cand = and_tracked l1 l2 in
                    (* Skip the node's own decomposition and degenerate
                       constant results. *)
                    if cand = nl || Aig.Graph.node_of_lit cand = 0 then
                      try_pairs rest
                    else begin
                      incr tried;
                      if prove_equal (Aig.Graph.lit_of_node nid false) cand
                      then begin
                        incr proven;
                        cand
                      end
                      else try_pairs rest
                    end
                in
                try_pairs (find_candidate (node_row nid) nid ~excluded)
              end
              else nl
            in
            (if Aig.Graph.is_and g' nid then push_divisor nid);
            map.(id) <- chosen);
        Array.map map_lit (Aig.Graph.pos g))
  in
  last_stats := (!tried, !proven);
  let cleaned = Aig.Graph.cleanup result in
  (* The old-graph MFFC is only an estimate of the new-graph gain
     (structural hashing can keep "freed" members alive through other
     references), so guard against a net size increase. *)
  let original = Aig.Graph.cleanup g in
  if Aig.Graph.num_ands cleaned <= Aig.Graph.num_ands original then cleaned
  else original
