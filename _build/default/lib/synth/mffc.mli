(** Maximum fanout-free cones — the logic a node "owns": everything
    reachable from it whose every fanout stays inside the cone.  The
    MFFC is the budget a replacement candidate competes against in
    rewriting and refactoring. *)

val size_above_cut : Aig.Graph.t -> int array -> int -> int array -> int
(** [size_above_cut g refs id leaves]: MFFC node count of [id] bounded
    below by the cut [leaves] (ascending node ids); [refs] are the
    graph's reference counts. *)

val size : Aig.Graph.t -> int array -> int -> int
(** Unbounded MFFC size (recursion stops at PIs and shared nodes). *)

val members : Aig.Graph.t -> int array -> int -> int list
(** Unbounded MFFC member ids, the node included. *)
