(** Logic-synthesis operations and recipes (sequences of operations).

    These are the actions of the RL agent (§3.2.3): [rewrite],
    [refactor], [balance], [resub] and the terminating [end]. *)

type op = Rewrite | Refactor | Balance | Resub | End

val all_ops : op list
(** In the fixed order used as the RL action space. *)

val num_actions : int

val op_of_index : int -> op
val index_of_op : op -> int
val op_to_string : op -> string
val op_of_string : string -> op option

val apply : op -> Aig.Graph.t -> Aig.Graph.t
(** Applies one operation ([End] is the identity). *)

val apply_sequence : op list -> Aig.Graph.t -> Aig.Graph.t
(** Applies operations left to right, stopping at the first [End]. *)

val parse : string -> (op list, string) Stdlib.result
(** Parses a semicolon- or comma-separated recipe, e.g.
    ["rewrite; balance; resub"]. *)

val to_string : op list -> string

val compress2 : op list
(** A fixed size-oriented script in the spirit of ABC's [compress2]:
    the baseline "synthesis for size" recipe used by the Eén 2007
    comparison. *)
