(** DAG-aware cut rewriting (the [rewrite] operation, after Mishchenko,
    Chatterjee & Brayton, DAC'06).

    Rebuilds the AIG bottom-up; for every AND node it enumerates
    k-feasible cuts, synthesizes a factored-form candidate for each cut
    function (via ISOP + literal factoring) and keeps the candidate that
    materializes the fewest new nodes given everything already built —
    structural hashing supplies the sharing that makes replacements
    profitable.  Functionality is preserved by construction. *)

val run :
  ?k:int -> ?cut_limit:int -> ?use_mffc:bool -> Aig.Graph.t -> Aig.Graph.t
(** [run g] returns a functionally equivalent AIG, usually smaller.
    [k] (default 4) is the cut width, 2..6; [cut_limit] (default 8) the
    number of cuts kept per node.  [use_mffc] (default true) credits a
    replacement with the maximum fanout-free cone it frees; disabling
    it reduces the pass to purely local (per-node) gain — the ablation
    of DESIGN.md. *)
