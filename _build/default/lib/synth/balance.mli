(** AND-tree balancing (the [balance] operation).

    Collects maximal multi-input conjunctions — chains of AND nodes used
    once and without complementation — and rebuilds each as a
    depth-minimal tree, combining the two shallowest operands first
    (Huffman order).  Reduces logic depth without changing
    functionality; node count can only shrink (sharing) or stay. *)

val run : Aig.Graph.t -> Aig.Graph.t
