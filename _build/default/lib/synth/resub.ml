(* FRAIG-style functional reduction.  The new graph is built in
   topological order; every created AND node carries a simulation row
   and is encoded once into a persistent incremental SAT session.
   Nodes whose rows match an existing representative (up to complement)
   are candidate merges, decided by an assumption query on the shared
   session (a fresh activation variable implies the two literals
   differ; UNSAT under that assumption proves equivalence).
   Counterexamples from failed proofs are batched and folded back into
   the simulation as an extra word, which rebuilds the signature
   table. *)

type config = {
  words : int;
  seed : int;
  conflict_limit : int;
  max_cone : int; (* retained for compatibility; the incremental
                     encoding covers the whole graph *)
}

let default_config =
  { words = 4; seed = 0x5EED; conflict_limit = 1000; max_cone = 4000 }

let last_stats = ref (0, 0, 0)
let stats_last_run () = !last_stats

(* Lexicographic canonicalization of a row w.r.t. complement: returns
   (canonical_row, complemented). *)
let canonical_row row =
  let rec cmp i =
    if i >= Array.length row then 0
    else
      let a = row.(i) and b = Int64.lognot row.(i) in
      let c = Int64.unsigned_compare a b in
      if c <> 0 then c else cmp (i + 1)
  in
  if cmp 0 <= 0 then (row, false) else (Array.map Int64.lognot row, true)

let run ?(config = default_config) g =
  let tried = ref 0 and proven = ref 0 and disproved = ref 0 in
  let rng = Aig.Rng.create config.seed in
  let n_old = Aig.Graph.num_nodes g in
  let result =
    Aig.Graph.compose g (fun g' new_pis ->
        let npis = Array.length new_pis in
        (* --- simulation rows for the new graph ---------------------- *)
        let rows = ref (Array.make (max 16 (2 * npis)) [||]) in
        let set_row id r =
          if id >= Array.length !rows then begin
            let d = Array.make (max (2 * Array.length !rows) (id + 1)) [||] in
            Array.blit !rows 0 d 0 (Array.length !rows);
            rows := d
          end;
          !rows.(id) <- r
        in
        let width = ref config.words in
        set_row 0 (Array.make !width 0L);
        Array.iter
          (fun l ->
            set_row (Aig.Graph.node_of_lit l)
              (Array.init !width (fun _ -> Aig.Rng.next64 rng)))
          new_pis;
        let node_row id = !rows.(id) in
        let lit_row l =
          let r = node_row (Aig.Graph.node_of_lit l) in
          if Aig.Graph.is_compl l then Array.map Int64.lognot r else r
        in
        (* --- one shared incremental SAT session --------------------- *)
        let session = Sat.Solver.Incremental.create () in
        (* node id -> CNF variable (0 = not encoded). *)
        let cnf_var = ref (Array.make (max 16 (2 * npis)) 0) in
        let set_var id v =
          if id >= Array.length !cnf_var then begin
            let d =
              Array.make (max (2 * Array.length !cnf_var) (id + 1)) 0
            in
            Array.blit !cnf_var 0 d 0 (Array.length !cnf_var);
            cnf_var := d
          end;
          !cnf_var.(id) <- v
        in
        Array.iter
          (fun l ->
            set_var (Aig.Graph.node_of_lit l)
              (Sat.Solver.Incremental.new_var session))
          new_pis;
        let dimacs_of l =
          let v = !cnf_var.(Aig.Graph.node_of_lit l) in
          assert (v > 0);
          if Aig.Graph.is_compl l then -v else v
        in
        let and_tracked a b =
          let l = Aig.Graph.and_ g' a b in
          let id = Aig.Graph.node_of_lit l in
          if
            Aig.Graph.is_and g' id
            && (id >= Array.length !rows || !rows.(id) = [||])
          then begin
            let ra = lit_row (Aig.Graph.fanin0 g' id)
            and rb = lit_row (Aig.Graph.fanin1 g' id) in
            set_row id
              (Array.init !width (fun w -> Int64.logand ra.(w) rb.(w)));
            (* Encode the node once into the shared session. *)
            let o = Sat.Solver.Incremental.new_var session in
            set_var id o;
            let da = dimacs_of (Aig.Graph.fanin0 g' id)
            and db = dimacs_of (Aig.Graph.fanin1 g' id) in
            Sat.Solver.Incremental.add_clause session [| -o; da |];
            Sat.Solver.Incremental.add_clause session [| -o; db |];
            Sat.Solver.Incremental.add_clause session [| o; -da; -db |]
          end;
          l
        in
        (* --- representative table ----------------------------------- *)
        let reps : (int64 array, int) Hashtbl.t = Hashtbl.create 1024 in
        let rep_nodes = ref [] in
        let add_rep id =
          let key, _ = canonical_row (node_row id) in
          Hashtbl.replace reps (Array.copy key) id;
          rep_nodes := id :: !rep_nodes
        in
        let find_candidate id =
          let key, my_compl = canonical_row (node_row id) in
          match Hashtbl.find_opt reps key with
          | None -> None
          | Some rep when rep = id -> None
          | Some rep ->
            let _, rep_compl = canonical_row (node_row rep) in
            (* id's function = rep's function xor (my_compl xor rep_compl). *)
            Some (Aig.Graph.lit_of_node rep (my_compl <> rep_compl))
        in
        (* --- counterexample refinement ------------------------------ *)
        let cex_buffer = ref [] in
        let refine () =
          let cexes = Array.of_list !cex_buffer in
          cex_buffer := [];
          let extra_of_pi i =
            let w = ref 0L in
            Array.iteri
              (fun j assignment ->
                if i < Array.length assignment && assignment.(i) then
                  w := Int64.logor !w (Int64.shift_left 1L j))
              cexes;
            !w
          in
          let append id w = set_row id (Array.append (node_row id) [| w |]) in
          append 0 0L;
          Array.iteri
            (fun i l -> append (Aig.Graph.node_of_lit l) (extra_of_pi i))
            new_pis;
          Aig.Graph.iter_ands g' (fun id ->
              if !rows.(id) <> [||] && Array.length !rows.(id) = !width then begin
                let v l =
                  let r = node_row (Aig.Graph.node_of_lit l) in
                  let w = r.(!width) in
                  if Aig.Graph.is_compl l then Int64.lognot w else w
                in
                append id
                  (Int64.logand
                     (v (Aig.Graph.fanin0 g' id))
                     (v (Aig.Graph.fanin1 g' id)))
              end);
          incr width;
          Hashtbl.reset reps;
          List.iter
            (fun id ->
              let key, _ = canonical_row (node_row id) in
              if not (Hashtbl.mem reps key) then
                Hashtbl.replace reps (Array.copy key) id)
            (List.rev !rep_nodes)
        in
        (* --- SAT equivalence proof via an assumption query ----------- *)
        let prove_equal la lb =
          let da = dimacs_of la and db = dimacs_of lb in
          (* Activation variable: x -> (la <> lb). *)
          let x = Sat.Solver.Incremental.new_var session in
          Sat.Solver.Incremental.add_clause session [| -x; da; db |];
          Sat.Solver.Incremental.add_clause session [| -x; -da; -db |];
          let limits =
            {
              Sat.Solver.no_limits with
              Sat.Solver.max_conflicts = Some config.conflict_limit;
            }
          in
          match
            fst
              (Sat.Solver.Incremental.solve ~limits ~assumptions:[| x |]
                 session)
          with
          | Sat.Solver.Unsat ->
            (* Deactivate permanently so the clauses become vacuous. *)
            Sat.Solver.Incremental.add_clause session [| -x |];
            `Equal
          | Sat.Solver.Unknown -> `Unknown
          | Sat.Solver.Sat model ->
            let assignment =
              Array.init npis (fun i ->
                  let v = !cnf_var.(Aig.Graph.node_of_lit new_pis.(i)) in
                  v - 1 < Array.length model && model.(v - 1))
            in
            `Different assignment
        in
        (* --- main sweep ---------------------------------------------- *)
        let map = Array.make n_old Aig.Graph.const_false in
        for i = 0 to npis - 1 do
          map.(i + 1) <- new_pis.(i)
        done;
        let map_lit l =
          Aig.Graph.lit_not_cond
            map.(Aig.Graph.node_of_lit l)
            (Aig.Graph.is_compl l)
        in
        let rep_set = Hashtbl.create 1024 in
        Aig.Graph.iter_ands g (fun id ->
            let nl =
              and_tracked
                (map_lit (Aig.Graph.fanin0 g id))
                (map_lit (Aig.Graph.fanin1 g id))
            in
            let nid = Aig.Graph.node_of_lit nl in
            if not (Aig.Graph.is_and g' nid) then map.(id) <- nl
            else if Hashtbl.mem rep_set nid then map.(id) <- nl
            else begin
              match find_candidate nid with
              | None ->
                add_rep nid;
                Hashtbl.replace rep_set nid ();
                map.(id) <- nl
              | Some cand_lit ->
                incr tried;
                let target = Aig.Graph.lit_of_node nid false in
                (match prove_equal target cand_lit with
                 | `Equal ->
                   incr proven;
                   map.(id) <-
                     Aig.Graph.lit_not_cond cand_lit (Aig.Graph.is_compl nl)
                 | `Different assignment ->
                   incr disproved;
                   cex_buffer := assignment :: !cex_buffer;
                   if List.length !cex_buffer >= 64 then refine ();
                   add_rep nid;
                   Hashtbl.replace rep_set nid ();
                   map.(id) <- nl
                 | `Unknown ->
                   add_rep nid;
                   Hashtbl.replace rep_set nid ();
                   map.(id) <- nl)
            end);
        Array.map map_lit (Aig.Graph.pos g))
  in
  last_stats := (!tried, !proven, !disproved);
  Aig.Graph.cleanup result
