(* A min-heap of (level, literal) pairs drives the Huffman-style
   combine.  The implementation keeps per-node levels of the graph
   under construction in a growable array. *)

module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 16 (0, 0); size = 0 }

  let push h x =
    if h.size >= Array.length h.data then begin
      let d = Array.make (2 * Array.length h.data) (0, 0) in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0
      && fst h.data.((!i - 1) / 2) > fst h.data.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- tmp;
      i := p
    done

  let pop h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < h.size && fst h.data.(l) < fst h.data.(!best) then best := l;
      if r < h.size && fst h.data.(r) < fst h.data.(!best) then best := r;
      if !best = !i then continue := false
      else begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(!best);
        h.data.(!best) <- tmp;
        i := !best
      end
    done;
    top
end

let run g =
  let n = Aig.Graph.num_nodes g in
  let refs = Aig.Graph.ref_counts g in
  (* A node is expandable (tree-interior) when it is an AND referenced
     exactly once and that single reference is non-complemented; such
     nodes dissolve into their parent's operand list. *)
  let complemented_use = Array.make n false in
  Aig.Graph.iter_ands g (fun id ->
      let note l =
        if Aig.Graph.is_compl l then
          complemented_use.(Aig.Graph.node_of_lit l) <- true
      in
      note (Aig.Graph.fanin0 g id);
      note (Aig.Graph.fanin1 g id));
  Array.iter
    (fun l ->
      if Aig.Graph.is_compl l then
        complemented_use.(Aig.Graph.node_of_lit l) <- true)
    (Aig.Graph.pos g);
  let po_root = Array.make n false in
  Array.iter
    (fun l -> po_root.(Aig.Graph.node_of_lit l) <- true)
    (Aig.Graph.pos g);
  let interior id =
    Aig.Graph.is_and g id && refs.(id) = 1
    && (not complemented_use.(id))
    && not po_root.(id)
  in
  let result =
    Aig.Graph.compose g (fun g' new_pis ->
        let map = Array.make n Aig.Graph.const_false in
        for i = 0 to Aig.Graph.num_pis g - 1 do
          map.(i + 1) <- new_pis.(i)
        done;
        (* Levels in the new graph. *)
        let levels = ref (Array.make 1024 0) in
        let level_of l =
          let id = Aig.Graph.node_of_lit l in
          if id < Array.length !levels then !levels.(id) else 0
        in
        let set_level id v =
          if id >= Array.length !levels then begin
            let d = Array.make (max (2 * Array.length !levels) (id + 1)) 0 in
            Array.blit !levels 0 d 0 (Array.length !levels);
            levels := d
          end;
          !levels.(id) <- v
        in
        let and_tracked a b =
          let l = Aig.Graph.and_ g' a b in
          let id = Aig.Graph.node_of_lit l in
          if Aig.Graph.is_and g' id then
            set_level id (1 + max (level_of a) (level_of b));
          l
        in
        let map_lit l =
          Aig.Graph.lit_not_cond
            map.(Aig.Graph.node_of_lit l)
            (Aig.Graph.is_compl l)
        in
        (* Operands of the maximal AND tree rooted at id (old graph). *)
        let operands id =
          let acc = ref [] in
          let rec gather l =
            let child = Aig.Graph.node_of_lit l in
            if (not (Aig.Graph.is_compl l)) && interior child then begin
              gather (Aig.Graph.fanin0 g child);
              gather (Aig.Graph.fanin1 g child)
            end
            else acc := l :: !acc
          in
          gather (Aig.Graph.fanin0 g id);
          gather (Aig.Graph.fanin1 g id);
          !acc
        in
        Aig.Graph.iter_ands g (fun id ->
            if not (interior id) then begin
              let ops = List.map map_lit (operands id) in
              (* Dedup; a complementary pair collapses to constant 0. *)
              let ops = List.sort_uniq compare ops in
              let contradictory =
                let rec chk = function
                  | a :: (b :: _ as rest) ->
                    (a lxor b) = 1 || chk rest
                  | _ -> false
                in
                chk ops
              in
              let value =
                if contradictory then Aig.Graph.const_false
                else begin
                  let h = Heap.create () in
                  List.iter (fun l -> Heap.push h (level_of l, l)) ops;
                  let rec combine () =
                    if h.Heap.size = 1 then snd (Heap.pop h)
                    else begin
                      let _, a = Heap.pop h in
                      let _, b = Heap.pop h in
                      let l = and_tracked a b in
                      Heap.push h (level_of l, l);
                      combine ()
                    end
                  in
                  if h.Heap.size = 0 then Aig.Graph.const_true else combine ()
                end
              in
              map.(id) <- value
            end);
        Array.map map_lit (Aig.Graph.pos g))
  in
  Aig.Graph.cleanup result
