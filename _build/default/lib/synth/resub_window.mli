(** Windowed k-resubstitution (ABC's [resub], k = 1).

    Where {!Resub} merges nodes that are equal to an existing divisor
    (0-resubstitution), this pass re-expresses a node as a {e two-input
    function of two existing divisors} when that frees more logic than
    the one new node it costs.  Candidates are found by matching
    bit-parallel simulation signatures over a sliding divisor window
    and proven with a SAT call on the cone miter, so functionality is
    preserved unconditionally. *)

type config = {
  words : int;            (** simulation words per node *)
  seed : int;
  window : int;           (** divisors considered per node *)
  conflict_limit : int;   (** SAT budget per proof *)
  max_cone : int;
}

val default_config : config

val run : ?config:config -> Aig.Graph.t -> Aig.Graph.t

val stats_last_run : unit -> int * int
(** (candidates tried, substitutions proven) of the last {!run}. *)
