(** Cone refactoring (the [refactor] operation, after Brayton's
    decomposition/factorization and ABC's [refactor]).

    Where {!Rewrite} works on enumerated k-feasible cuts (k <= 6), this
    pass grows a {e reconvergence-driven} cut of up to [max_leaves]
    inputs around each node, collapses the cone into its truth table
    and re-synthesizes it as an ISOP-factored form, accepting the
    replacement when it costs fewer nodes than the fanout-free cone it
    frees.  Catches restructurings across wider windows than the
    rewriter can see. *)

val run :
  ?max_leaves:int -> ?max_cone:int -> Aig.Graph.t -> Aig.Graph.t
(** Defaults: [max_leaves = 10], [max_cone = 60] (nodes collapsed per
    attempt).  Functionality is preserved by construction. *)
