(* Rebuild-style rewriting.  Every reachable old node is mapped to a new
   literal; an AND node's mapping is chosen among its cut
   implementations by comparing the nodes a candidate would materialize
   (structural hashing makes reuse free — tentative builds are rolled
   back) against the size of the node's maximum fanout-free cone above
   the cut: the old nodes that die when every consumer switches to the
   candidate.  Implementations that end up unreferenced are swept at
   the end, so the MFFC credit is realized physically. *)

let run ?(k = 4) ?(cut_limit = 8) ?(use_mffc = true) g =
  let sets = Aig.Cut.enumerate g ~k ~limit:cut_limit in
  let refs = Aig.Graph.ref_counts g in
  let reachable = Array.make (Aig.Graph.num_nodes g) false in
  let rec visit id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if Aig.Graph.is_and g id then begin
        visit (Aig.Graph.node_of_lit (Aig.Graph.fanin0 g id));
        visit (Aig.Graph.node_of_lit (Aig.Graph.fanin1 g id))
      end
    end
  in
  Array.iter
    (fun l ->
      let id = Aig.Graph.node_of_lit l in
      if id <> 0 then visit id)
    (Aig.Graph.pos g);
  let result =
    Aig.Graph.compose g (fun g' new_pis ->
        let map = Array.make (Aig.Graph.num_nodes g) Aig.Graph.const_false in
        for i = 0 to Aig.Graph.num_pis g - 1 do
          map.(i + 1) <- new_pis.(i)
        done;
        let map_lit l =
          Aig.Graph.lit_not_cond
            map.(Aig.Graph.node_of_lit l)
            (Aig.Graph.is_compl l)
        in
        Aig.Graph.iter_ands g (fun id ->
            if reachable.(id) then begin
              let default () =
                Aig.Graph.and_ g'
                  (map_lit (Aig.Graph.fanin0 g id))
                  (map_lit (Aig.Graph.fanin1 g id))
              in
              (* Candidate cuts: nontrivial, not rooted at id itself. *)
              let candidates =
                List.filter
                  (fun c ->
                    Array.length c.Aig.Cut.leaves >= 2
                    && not (Array.mem id c.Aig.Cut.leaves))
                  (Aig.Cut.cuts sets id)
              in
              (* A candidate built from cut [c] replaces the whole MFFC
                 above the cut; its budget is that cone size. *)
              let best = ref None and best_gain = ref 0 in
              List.iter
                (fun c ->
                  let saved =
                    if use_mffc then Mffc.size_above_cut g refs id c.Aig.Cut.leaves
                    else 1
                  in
                  let leaves = Array.map (fun n -> map.(n)) c.Aig.Cut.leaves in
                  let tt = Aig.Cut.cut_tt c in
                  let m = Aig.Graph.mark g' in
                  let _lit = Aig.Factor.tt_to_aig g' ~leaves tt in
                  let added = Aig.Graph.nodes_since g' m in
                  Aig.Graph.rollback g' m;
                  let gain = saved - added in
                  if gain > !best_gain then begin
                    best_gain := gain;
                    best := Some c
                  end)
                candidates;
              let lit =
                match !best with
                | None -> default ()
                | Some c ->
                  let leaves = Array.map (fun n -> map.(n)) c.Aig.Cut.leaves in
                  Aig.Factor.tt_to_aig g' ~leaves (Aig.Cut.cut_tt c)
              in
              map.(id) <- lit
            end);
        Array.map map_lit (Aig.Graph.pos g))
  in
  Aig.Graph.cleanup result
