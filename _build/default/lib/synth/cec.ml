type verdict = Equivalent | Different of bool array | Unknown

type config = {
  sim_words : int;
  seed : int;
  use_fraig : bool;
  solver_limits : Sat.Solver.limits;
}

let default_config =
  {
    sim_words = 16;
    seed = 0xCEC;
    use_fraig = true;
    solver_limits =
      { Sat.Solver.no_limits with Sat.Solver.max_conflicts = Some 200_000 };
  }

(* Single-output miter of two circuits over shared PIs. *)
let build_miter a b =
  if
    Aig.Graph.num_pis a <> Aig.Graph.num_pis b
    || Aig.Graph.num_pos a <> Aig.Graph.num_pos b
  then invalid_arg "Cec.check: interface mismatch";
  let g = Aig.Graph.create ~num_pis:(Aig.Graph.num_pis a) in
  let pis = Array.init (Aig.Graph.num_pis a) (Aig.Graph.pi g) in
  let copy src =
    let map = Array.make (Aig.Graph.num_nodes src) Aig.Graph.const_false in
    Array.iteri (fun i l -> map.(i + 1) <- l) pis;
    let ml l =
      Aig.Graph.lit_not_cond
        map.(Aig.Graph.node_of_lit l)
        (Aig.Graph.is_compl l)
    in
    Aig.Graph.iter_ands src (fun id ->
        map.(id) <-
          Aig.Graph.and_ g
            (ml (Aig.Graph.fanin0 src id))
            (ml (Aig.Graph.fanin1 src id)));
    Array.map ml (Aig.Graph.pos src)
  in
  let oa = copy a and ob = copy b in
  let diffs =
    Array.to_list (Array.mapi (fun i la -> Aig.Graph.xor_ g la ob.(i)) oa)
  in
  Aig.Graph.add_po g (Aig.Graph.or_list g diffs);
  g

let find_cex_by_simulation cfg m =
  let inputs = Aig.Sim.random_inputs m ~words:cfg.sim_words ~seed:cfg.seed in
  let sigs = Aig.Sim.run m ~inputs in
  let row = (Aig.Sim.output_rows m sigs).(0) in
  let npis = Aig.Graph.num_pis m in
  let found = ref None in
  Array.iteri
    (fun w word ->
      if !found = None && word <> 0L then begin
        (* Find a set bit and read the corresponding input column. *)
        let rec bit i =
          if Int64.logand (Int64.shift_right_logical word i) 1L = 1L then i
          else bit (i + 1)
        in
        let b = bit 0 in
        found :=
          Some
            (Array.init npis (fun p ->
                 Int64.logand (Int64.shift_right_logical inputs.(p).(w) b) 1L
                 = 1L))
      end)
    row;
  !found

let check ?(config = default_config) a b =
  let m = build_miter a b in
  match find_cex_by_simulation config m with
  | Some cex -> Different cex
  | None ->
    let m = if config.use_fraig then Resub.run m else m in
    if Aig.Graph.po m 0 = Aig.Graph.const_false then Equivalent
    else begin
      let enc = Cnf.Tseitin.encode ~assert_outputs:true m in
      match
        Sat.Solver.solve ~limits:config.solver_limits enc.Cnf.Tseitin.formula
      with
      | Sat.Solver.Unsat, _ -> Equivalent
      | Sat.Solver.Sat model, _ ->
        Different (Array.init (Aig.Graph.num_pis m) (fun i -> model.(i)))
      | Sat.Solver.Unknown, _ -> Unknown
    end

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Different _ -> "different"
  | Unknown -> "unknown"
