(** Combinational equivalence checking.

    The staged industrial flow: random simulation to find cheap
    counterexamples, FRAIG sweeping to collapse internal equivalences,
    and a final SAT call on the remaining miter.  This is both a user
    feature (the [lec_pipeline] example and CLI use it) and the
    ground-truth oracle the test-suite leans on. *)

type verdict =
  | Equivalent
  | Different of bool array  (** distinguishing input assignment *)
  | Unknown                  (** resource limit exceeded *)

type config = {
  sim_words : int;
  seed : int;
  use_fraig : bool;
  solver_limits : Sat.Solver.limits;
}

val default_config : config

val check : ?config:config -> Aig.Graph.t -> Aig.Graph.t -> verdict
(** [check a b] compares two circuits with identical PI/PO counts.
    @raise Invalid_argument on an interface mismatch. *)

val verdict_to_string : verdict -> string
