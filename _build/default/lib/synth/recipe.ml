type op = Rewrite | Refactor | Balance | Resub | End

let all_ops = [ Rewrite; Refactor; Balance; Resub; End ]
let num_actions = List.length all_ops

let index_of_op = function
  | Rewrite -> 0
  | Refactor -> 1
  | Balance -> 2
  | Resub -> 3
  | End -> 4

let op_of_index = function
  | 0 -> Rewrite
  | 1 -> Refactor
  | 2 -> Balance
  | 3 -> Resub
  | 4 -> End
  | i -> invalid_arg (Printf.sprintf "Recipe.op_of_index: %d" i)

let op_to_string = function
  | Rewrite -> "rewrite"
  | Refactor -> "refactor"
  | Balance -> "balance"
  | Resub -> "resub"
  | End -> "end"

let op_of_string = function
  | "rewrite" | "rw" -> Some Rewrite
  | "refactor" | "rf" -> Some Refactor
  | "balance" | "b" -> Some Balance
  | "resub" | "rs" -> Some Resub
  | "end" -> Some End
  | _ -> None

let apply op g =
  match op with
  | Rewrite -> Rewrite.run g
  | Refactor -> Refactor.run g
  | Balance -> Balance.run g
  | Resub -> Resub.run g
  | End -> g

let apply_sequence ops g =
  let rec go g = function
    | [] -> g
    | End :: _ -> g
    | op :: rest -> go (apply op g) rest
  in
  go g ops

let parse s =
  let tokens =
    String.split_on_char ';' s
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
      match op_of_string t with
      | Some op -> go (op :: acc) rest
      | None -> Error (Printf.sprintf "unknown operation %S" t))
  in
  go [] tokens

let to_string ops = String.concat "; " (List.map op_to_string ops)

let compress2 =
  [ Balance; Rewrite; Refactor; Balance; Rewrite; Rewrite; Balance; Refactor;
    Rewrite; Balance ]
