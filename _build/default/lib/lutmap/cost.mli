(** LUT cost metrics (§3.3.1).

    The paper defines the {e branching complexity} of a LUT by example:
    a 2-input AND has C = 3 and a 2-input XOR has C = 4 — the number of
    distinct branch choices a SAT solver faces across both output
    values.  The reading consistent with both examples is the number of
    prime implicants of the on-set plus the off-set, which is what
    {!branching} computes (via ISOP covers).  The conventional mapper
    charges every LUT the same area. *)

type t = Aig.Tt.t -> int

val conventional : t
(** Constant 1 per LUT: minimizes LUT count (area). *)

val branching : t
(** [|ISOP(f)| + |ISOP(not f)|], memoized.  AND2 costs 3, XOR2 costs
    4, matching Figure 4 of the paper. *)

val branching_of_int64 : nvars:int -> int64 -> int
(** Branching complexity of a packed cut function. *)

val table_for_arity : int -> (int * int) list
(** [(function, cost)] for every function of the given arity (<= 4,
    NPN representatives only) — the precomputed "costs of all 4-input
    LUTs" of §3.3. *)
