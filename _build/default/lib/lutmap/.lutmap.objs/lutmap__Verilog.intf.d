lib/lutmap/verilog.mli: Netlist
