lib/lutmap/cost.ml: Aig Array Hashtbl List
