lib/lutmap/mapper.mli: Aig Cost Netlist
