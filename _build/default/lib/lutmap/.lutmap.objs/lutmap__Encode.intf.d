lib/lutmap/encode.mli: Cnf Netlist
