lib/lutmap/mapper.ml: Aig Array Cost List Netlist
