lib/lutmap/blif.mli: Netlist
