lib/lutmap/cost.mli: Aig
