lib/lutmap/netlist.mli: Aig Format
