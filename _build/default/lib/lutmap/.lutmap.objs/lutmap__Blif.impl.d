lib/lutmap/blif.ml: Aig Array Buffer Fun Hashtbl List Netlist Printf String
