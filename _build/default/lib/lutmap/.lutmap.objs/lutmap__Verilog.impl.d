lib/lutmap/verilog.ml: Aig Array Buffer Fun List Netlist Printf String
