lib/lutmap/netlist.ml: Aig Array Format Printf
