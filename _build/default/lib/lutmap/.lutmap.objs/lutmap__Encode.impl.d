lib/lutmap/encode.ml: Aig Array Cnf List Netlist
