(** Priority-cut k-LUT technology mapping.

    Classic two-phase mapper: a delay-optimal pass assigns every node
    its minimum-depth cut, a backward pass derives required times, and
    area-recovery passes re-select cuts minimizing {e area flow} under
    the delay constraint — where "area" of a cut is supplied by a
    {!Cost.t}, so the same engine yields the conventional
    (LUT-count-minimizing) mapper and the paper's cost-customized
    (branching-complexity-minimizing) mapper. *)

type config = {
  k : int;              (** LUT input count, 2..6 (paper uses 4) *)
  cut_limit : int;      (** priority cuts kept per node *)
  area_passes : int;    (** area-flow recovery iterations *)
  cost : Cost.t;
}

val default_config : config
(** k = 4, 8 cuts, 2 area passes, conventional cost. *)

val cost_customized_config : config
(** Same shape but with the branching-complexity cost. *)

val run : ?config:config -> Aig.Graph.t -> Netlist.t
(** Maps the AIG into a LUT netlist computing the same outputs. *)

val total_cost : Cost.t -> Netlist.t -> int
(** Sum of the cost metric over all LUTs of a netlist. *)
