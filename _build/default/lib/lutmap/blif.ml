exception Parse_error of string

(* --- writing --------------------------------------------------------- *)

let source_name = function
  | Netlist.Input i -> Printf.sprintf "i%d" i
  | Netlist.Lut_out j -> Printf.sprintf "n%d" j
  | Netlist.Const b -> if b then "const1" else "const0"

let write_string ?(model_name = "eda4sat") nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" model_name);
  Buffer.add_string buf ".inputs";
  for i = 0 to nl.Netlist.num_inputs - 1 do
    Buffer.add_string buf (Printf.sprintf " i%d" i)
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ".outputs";
  Array.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf " o%d" i))
    nl.Netlist.outputs;
  Buffer.add_char buf '\n';
  (* Constants, if referenced. *)
  let uses_const b =
    let check = function Netlist.Const c -> c = b | _ -> false in
    Array.exists (fun l -> Array.exists check l.Netlist.fanins) nl.Netlist.luts
    || Array.exists (fun (src, _) -> check src) nl.Netlist.outputs
  in
  if uses_const true then Buffer.add_string buf ".names const1\n1\n";
  if uses_const false then Buffer.add_string buf ".names const0\n";
  (* One .names block per LUT: the ISOP on-set cover. *)
  Array.iteri
    (fun j lut ->
      Buffer.add_string buf ".names";
      Array.iter
        (fun src -> Buffer.add_string buf (" " ^ source_name src))
        lut.Netlist.fanins;
      Buffer.add_string buf (Printf.sprintf " n%d\n" j);
      let n = Array.length lut.Netlist.fanins in
      List.iter
        (fun cube ->
          let plane =
            String.init n (fun v ->
                if Aig.Cube.mem_pos cube v then '1'
                else if Aig.Cube.mem_neg cube v then '0'
                else '-')
          in
          Buffer.add_string buf (plane ^ " 1\n"))
        (Aig.Isop.compute lut.Netlist.tt))
    nl.Netlist.luts;
  (* Output buffers / inverters. *)
  Array.iteri
    (fun i (src, compl_) ->
      Buffer.add_string buf
        (Printf.sprintf ".names %s o%d\n%s 1\n" (source_name src) i
           (if compl_ then "0" else "1")))
    nl.Netlist.outputs;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model_name nl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string ?model_name nl))

(* --- reading --------------------------------------------------------- *)

type raw_names = {
  inputs : string list;
  output : string;
  cubes : (string * char) list; (* plane, output bit *)
}

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* Join lines continued with a trailing backslash; strip comments. *)
let logical_lines s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line)
  |> List.fold_left
       (fun (acc, pending) line ->
         let line = pending ^ line in
         let line = String.trim line in
         if String.length line > 0 && line.[String.length line - 1] = '\\'
         then (acc, String.sub line 0 (String.length line - 1) ^ " ")
         else (line :: acc, ""))
       ([], "")
  |> fun (acc, pending) ->
  List.rev (if pending = "" then acc else pending :: acc)
  |> List.filter (fun l -> l <> "")

let read_string s =
  let lines = logical_lines s in
  let inputs = ref [] and outputs = ref [] in
  let blocks = ref [] in
  let current : raw_names option ref = ref None in
  let models_seen = ref 0 in
  let finish () =
    match !current with
    | Some b ->
      blocks := { b with cubes = List.rev b.cubes } :: !blocks;
      current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      match tokenize line with
      | ".model" :: _ ->
        incr models_seen;
        if !models_seen > 1 then
          raise (Parse_error "multiple models not supported")
      | ".inputs" :: names ->
        finish ();
        inputs := !inputs @ names
      | ".outputs" :: names ->
        finish ();
        outputs := !outputs @ names
      | ".names" :: rest -> (
        finish ();
        match List.rev rest with
        | out :: ins_rev ->
          current :=
            Some { inputs = List.rev ins_rev; output = out; cubes = [] }
        | [] -> raise (Parse_error ".names without a signal"))
      | [ ".end" ] -> finish ()
      | (".latch" | ".subckt") :: _ ->
        raise (Parse_error "sequential/hierarchical BLIF not supported")
      | tokens -> (
        match (!current, tokens) with
        | Some b, [ plane; bit ] when String.length bit = 1 ->
          current := Some { b with cubes = (plane, bit.[0]) :: b.cubes }
        | Some b, [ bit ] when String.length bit = 1 && b.inputs = [] ->
          current := Some { b with cubes = ("", bit.[0]) :: b.cubes }
        | _ -> raise (Parse_error ("unexpected line: " ^ line)))
      )
    lines;
  finish ();
  let blocks = List.rev !blocks in
  (* Resolve signal names. *)
  let input_index = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.replace input_index name i) !inputs;
  let block_of = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem block_of b.output || Hashtbl.mem input_index b.output
      then raise (Parse_error ("signal defined twice: " ^ b.output));
      Hashtbl.replace block_of b.output b)
    blocks;
  (* Topological order over blocks. *)
  let order = ref [] in
  let state = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> ()
    | Some `Active -> raise (Parse_error "combinational loop")
    | None ->
      Hashtbl.replace state name `Active;
      (match Hashtbl.find_opt block_of name with
       | None ->
         if not (Hashtbl.mem input_index name) then
           raise (Parse_error ("undefined signal: " ^ name))
       | Some b ->
         List.iter visit b.inputs;
         order := b :: !order);
      Hashtbl.replace state name `Done
  in
  List.iter (fun b -> visit b.output) blocks;
  let order = List.rev !order in
  (* Build the netlist. *)
  let lut_index = Hashtbl.create 16 in
  let luts = ref [] and count = ref 0 in
  let source_of name =
    match Hashtbl.find_opt input_index name with
    | Some i -> Netlist.Input i
    | None -> (
      match Hashtbl.find_opt lut_index name with
      | Some j -> Netlist.Lut_out j
      | None -> raise (Parse_error ("undefined signal: " ^ name)))
  in
  List.iter
    (fun b ->
      let n = List.length b.inputs in
      if n > 16 then raise (Parse_error "cover wider than 16 inputs");
      let tt = ref (Aig.Tt.create_const n false) in
      let polarity = ref None in
      List.iter
        (fun (plane, bit) ->
          if String.length plane <> n then
            raise (Parse_error "cube width mismatch");
          (match (bit, !polarity) with
           | ('0' | '1'), None -> polarity := Some bit
           | b', Some p when b' = p -> ()
           | _ -> raise (Parse_error "mixed-polarity cover"));
          (* Expand the cube into the table. *)
          let cube = ref (Aig.Tt.create_const n true) in
          String.iteri
            (fun v ch ->
              let var = Aig.Tt.var n v in
              match ch with
              | '1' -> cube := Aig.Tt.and_ !cube var
              | '0' -> cube := Aig.Tt.and_ !cube (Aig.Tt.not_ var)
              | '-' -> ()
              | _ -> raise (Parse_error "bad cube character"))
            plane;
          tt := Aig.Tt.or_ !tt !cube)
        b.cubes;
      let tt =
        match !polarity with
        | Some '0' -> Aig.Tt.not_ !tt (* off-set cover *)
        | Some '1' | None -> !tt
        | Some _ -> assert false
      in
      let fanins = Array.of_list (List.map source_of b.inputs) in
      luts := { Netlist.tt; fanins } :: !luts;
      Hashtbl.replace lut_index b.output !count;
      incr count)
    order;
  let outputs =
    Array.of_list (List.map (fun name -> (source_of name, false)) !outputs)
  in
  let nl =
    {
      Netlist.num_inputs = List.length !inputs;
      luts = Array.of_list (List.rev !luts);
      outputs;
    }
  in
  Netlist.validate nl;
  nl

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      read_string (really_input_string ic len))
