type config = {
  k : int;
  cut_limit : int;
  area_passes : int;
  cost : Cost.t;
}

let default_config =
  { k = 4; cut_limit = 8; area_passes = 2; cost = Cost.conventional }

let cost_customized_config = { default_config with cost = Cost.branching }

let cut_cost cfg c = cfg.cost (Aig.Cut.cut_tt c)

let run ?(config = default_config) g =
  let cfg = config in
  let n = Aig.Graph.num_nodes g in
  let sets = Aig.Cut.enumerate g ~k:cfg.k ~limit:cfg.cut_limit in
  let refs = Aig.Graph.ref_counts g in
  let reachable = Array.make n false in
  let rec visit id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if Aig.Graph.is_and g id then begin
        visit (Aig.Graph.node_of_lit (Aig.Graph.fanin0 g id));
        visit (Aig.Graph.node_of_lit (Aig.Graph.fanin1 g id))
      end
    end
  in
  Array.iter
    (fun l ->
      let id = Aig.Graph.node_of_lit l in
      if id <> 0 then visit id)
    (Aig.Graph.pos g);
  let arrival = Array.make n 0 in
  let flow = Array.make n 0.0 in
  let best : Aig.Cut.cut option array = Array.make n None in
  let nontrivial id =
    List.filter
      (fun c -> not (Array.mem id c.Aig.Cut.leaves))
      (Aig.Cut.cuts sets id)
  in
  let cut_arrival c =
    Array.fold_left (fun acc leaf -> max acc arrival.(leaf)) 0 c.Aig.Cut.leaves
    + 1
  in
  let cut_flow c =
    float_of_int (cut_cost cfg c)
    +. Array.fold_left
         (fun acc leaf -> acc +. flow.(leaf))
         0.0 c.Aig.Cut.leaves
  in
  (* Delay-optimal pass. *)
  Aig.Graph.iter_ands g (fun id ->
      if reachable.(id) then begin
        let choose (ba, bf, bc) c =
          let a = cut_arrival c and f = cut_flow c in
          if a < ba || (a = ba && f < bf) then (a, f, Some c) else (ba, bf, bc)
        in
        let a, f, c =
          List.fold_left choose (max_int, infinity, None) (nontrivial id)
        in
        (match c with
         | Some _ ->
           arrival.(id) <- a;
           flow.(id) <- f /. float_of_int (max 1 refs.(id));
           best.(id) <- c
         | None -> assert false)
      end);
  (* Area-recovery passes under the delay constraint. *)
  let required = Array.make n max_int in
  for _pass = 1 to cfg.area_passes do
    (* Backward required times over the current mapping. *)
    Array.fill required 0 n max_int;
    let target =
      Array.fold_left
        (fun acc l ->
          let id = Aig.Graph.node_of_lit l in
          if Aig.Graph.is_and g id then max acc arrival.(id) else acc)
        0 (Aig.Graph.pos g)
    in
    Array.iter
      (fun l ->
        let id = Aig.Graph.node_of_lit l in
        if Aig.Graph.is_and g id then required.(id) <- target)
      (Aig.Graph.pos g);
    for id = n - 1 downto 0 do
      if reachable.(id) && Aig.Graph.is_and g id && required.(id) < max_int
      then
        match best.(id) with
        | None -> ()
        | Some c ->
          Array.iter
            (fun leaf ->
              if Aig.Graph.is_and g leaf then
                required.(leaf) <- min required.(leaf) (required.(id) - 1))
            c.Aig.Cut.leaves
    done;
    (* Re-select cuts minimizing flow within the slack. *)
    Aig.Graph.iter_ands g (fun id ->
        if reachable.(id) then begin
          let req = if required.(id) = max_int then target else required.(id) in
          let feasible, infeasible =
            List.partition (fun c -> cut_arrival c <= req) (nontrivial id)
          in
          let pick cuts ~by =
            List.fold_left
              (fun acc c ->
                match acc with
                | None -> Some c
                | Some b -> if by c < by b then Some c else acc)
              None cuts
          in
          let chosen =
            match
              pick feasible ~by:(fun c -> (cut_flow c, cut_arrival c))
            with
            | Some c -> Some c
            | None ->
              pick infeasible ~by:(fun c -> (cut_arrival c, cut_flow c))
          in
          match chosen with
          | Some c ->
            arrival.(id) <- cut_arrival c;
            flow.(id) <- cut_flow c /. float_of_int (max 1 refs.(id));
            best.(id) <- Some c
          | None -> assert false
        end)
  done;
  (* Derivation: collect the nodes actually used by the mapping. *)
  let used = Array.make n false in
  let rec need id =
    if Aig.Graph.is_and g id && not used.(id) then begin
      used.(id) <- true;
      match best.(id) with
      | None -> assert false
      | Some c -> Array.iter need c.Aig.Cut.leaves
    end
  in
  Array.iter
    (fun l ->
      let id = Aig.Graph.node_of_lit l in
      if id <> 0 then need id)
    (Aig.Graph.pos g);
  let lut_index = Array.make n (-1) in
  let luts = ref [] in
  let count = ref 0 in
  let source_of_node id =
    if Aig.Graph.is_pi g id then Netlist.Input (id - 1)
    else Netlist.Lut_out lut_index.(id)
  in
  Aig.Graph.iter_ands g (fun id ->
      if used.(id) then begin
        match best.(id) with
        | None -> assert false
        | Some c ->
          let fanins = Array.map source_of_node c.Aig.Cut.leaves in
          luts := { Netlist.tt = Aig.Cut.cut_tt c; fanins } :: !luts;
          lut_index.(id) <- !count;
          incr count
      end);
  let outputs =
    Array.map
      (fun l ->
        let id = Aig.Graph.node_of_lit l in
        let compl_ = Aig.Graph.is_compl l in
        if id = 0 then (Netlist.Const compl_, false)
        else (source_of_node id, compl_))
      (Aig.Graph.pos g)
  in
  let nl =
    {
      Netlist.num_inputs = Aig.Graph.num_pis g;
      luts = Array.of_list (List.rev !luts);
      outputs;
    }
  in
  Netlist.validate nl;
  nl

let total_cost cost nl =
  Array.fold_left (fun acc l -> acc + cost l.Netlist.tt) 0 nl.Netlist.luts
