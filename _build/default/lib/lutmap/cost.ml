type t = Aig.Tt.t -> int

let conventional _ = 1

let memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096

let branching_raw f =
  List.length (Aig.Isop.compute f)
  + List.length (Aig.Isop.compute (Aig.Tt.not_ f))

let branching f =
  let n = Aig.Tt.num_vars f in
  if n <= 6 then begin
    let key = (n, Aig.Tt.to_int f) in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
      let c = branching_raw f in
      Hashtbl.add memo key c;
      c
  end
  else branching_raw f

let branching_of_int64 ~nvars bits =
  branching (Aig.Cut.cut_tt { Aig.Cut.leaves = Array.make nvars 0; tt = bits })

let table_for_arity n =
  if n > 4 then invalid_arg "Cost.table_for_arity: arity above 4";
  List.map
    (fun f -> (Aig.Tt.to_int f, branching f))
    (Aig.Npn.all_class_representatives n)
