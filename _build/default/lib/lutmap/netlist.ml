type source = Input of int | Lut_out of int | Const of bool

type lut = { tt : Aig.Tt.t; fanins : source array }

type t = {
  num_inputs : int;
  luts : lut array;
  outputs : (source * bool) array;
}

let validate nl =
  Array.iteri
    (fun i l ->
      if Aig.Tt.num_vars l.tt <> Array.length l.fanins then
        invalid_arg
          (Printf.sprintf "Netlist: lut %d arity mismatch (%d vars, %d fanins)"
             i (Aig.Tt.num_vars l.tt) (Array.length l.fanins));
      Array.iter
        (function
          | Input j ->
            if j < 0 || j >= nl.num_inputs then
              invalid_arg (Printf.sprintf "Netlist: lut %d bad input %d" i j)
          | Lut_out j ->
            if j < 0 || j >= i then
              invalid_arg
                (Printf.sprintf "Netlist: lut %d not topological (ref %d)" i j)
          | Const _ -> ())
        l.fanins)
    nl.luts;
  Array.iter
    (fun (src, _) ->
      match src with
      | Input j ->
        if j < 0 || j >= nl.num_inputs then
          invalid_arg "Netlist: output references bad input"
      | Lut_out j ->
        if j < 0 || j >= Array.length nl.luts then
          invalid_arg "Netlist: output references bad LUT"
      | Const _ -> ())
    nl.outputs

let num_luts nl = Array.length nl.luts

let levels nl =
  let lv = Array.make (Array.length nl.luts) 0 in
  Array.iteri
    (fun i l ->
      let m = ref 0 in
      Array.iter
        (function
          | Input _ | Const _ -> ()
          | Lut_out j -> m := max !m lv.(j))
        l.fanins;
      lv.(i) <- 1 + !m)
    nl.luts;
  lv

let depth nl =
  let lv = levels nl in
  Array.fold_left
    (fun acc (src, _) ->
      match src with
      | Lut_out j -> max acc lv.(j)
      | Input _ | Const _ -> acc)
    0 nl.outputs

let luts_per_level nl =
  let d = depth nl in
  if d = 0 then 0.0 else float_of_int (num_luts nl) /. float_of_int d

let eval nl inputs =
  if Array.length inputs <> nl.num_inputs then
    invalid_arg "Netlist.eval: wrong input count";
  let values = Array.make (Array.length nl.luts) false in
  let source_value = function
    | Input j -> inputs.(j)
    | Lut_out j -> values.(j)
    | Const b -> b
  in
  Array.iteri
    (fun i l ->
      let m = ref 0 in
      Array.iteri
        (fun k src -> if source_value src then m := !m lor (1 lsl k))
        l.fanins;
      values.(i) <- Aig.Tt.get_bit l.tt !m)
    nl.luts;
  Array.map
    (fun (src, compl_) ->
      let v = source_value src in
      if compl_ then not v else v)
    nl.outputs

let max_fanin nl =
  Array.fold_left (fun acc l -> max acc (Array.length l.fanins)) 0 nl.luts

let pp_stats ppf nl =
  Format.fprintf ppf "inputs=%d luts=%d depth=%d luts/level=%.2f"
    nl.num_inputs (num_luts nl) (depth nl) (luts_per_level nl)
