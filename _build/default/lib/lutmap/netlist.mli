(** k-LUT netlists — the output of technology mapping.

    LUTs are stored in topological order; every fanin refers to a
    primary input or an earlier LUT.  Output polarities are explicit so
    the netlist covers complemented AIG outputs without extra LUTs. *)

type source = Input of int | Lut_out of int | Const of bool

type lut = {
  tt : Aig.Tt.t;           (** function of the fanins, arity = fanin count *)
  fanins : source array;
}

type t = {
  num_inputs : int;
  luts : lut array;
  outputs : (source * bool) array;  (** (driver, complemented) *)
}

val validate : t -> unit
(** Checks topological order, fanin ranges and truth-table arities.
    @raise Invalid_argument on a malformed netlist. *)

val num_luts : t -> int

val levels : t -> int array
(** Per-LUT logic level (inputs are level 0). *)

val depth : t -> int

val luts_per_level : t -> float
(** [num_luts / depth]; the flatness measure of Table 7. *)

val eval : t -> bool array -> bool array
(** Input values in, output values out. *)

val max_fanin : t -> int

val pp_stats : Format.formatter -> t -> unit
