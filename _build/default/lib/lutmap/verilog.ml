let source_name = function
  | Netlist.Input i -> Printf.sprintf "i%d" i
  | Netlist.Lut_out j -> Printf.sprintf "n%d" j
  | Netlist.Const b -> if b then "1'b1" else "1'b0"

let expr_of_lut lut =
  let cubes = Aig.Isop.compute lut.Netlist.tt in
  match cubes with
  | [] -> "1'b0"
  | _ ->
    let cube_expr c =
      match Aig.Cube.literals c with
      | [] -> "1'b1"
      | lits ->
        String.concat " & "
          (List.map
             (fun (v, positive) ->
               let name = source_name lut.Netlist.fanins.(v) in
               if positive then name else "~" ^ name)
             lits)
    in
    String.concat " | "
      (List.map (fun c -> "(" ^ cube_expr c ^ ")") cubes)

let write_string ?(module_name = "eda4sat") nl =
  let buf = Buffer.create 4096 in
  let inputs = List.init nl.Netlist.num_inputs (Printf.sprintf "i%d") in
  let outputs =
    List.init (Array.length nl.Netlist.outputs) (Printf.sprintf "o%d")
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" module_name
       (String.concat ", " (inputs @ outputs)));
  if inputs <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  input %s;\n" (String.concat ", " inputs));
  if outputs <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  output %s;\n" (String.concat ", " outputs));
  Array.iteri
    (fun j _ -> Buffer.add_string buf (Printf.sprintf "  wire n%d;\n" j))
    nl.Netlist.luts;
  Array.iteri
    (fun j lut ->
      Buffer.add_string buf
        (Printf.sprintf "  assign n%d = %s;\n" j (expr_of_lut lut)))
    nl.Netlist.luts;
  Array.iteri
    (fun i (src, compl_) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign o%d = %s%s;\n" i
           (if compl_ then "~" else "")
           (source_name src)))
    nl.Netlist.outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file ?module_name nl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string ?module_name nl))
