type encoding = {
  formula : Cnf.Formula.t;
  input_var : int array;
  lut_var : int array;
}

let encode ?(assert_outputs = true) nl =
  let ni = nl.Netlist.num_inputs in
  let nluts = Array.length nl.Netlist.luts in
  let input_var = Array.init ni (fun i -> i + 1) in
  let lut_var = Array.init nluts (fun j -> ni + j + 1) in
  (* Constants get one shared variable fixed by a unit clause when
     actually referenced. *)
  let const_var = ref 0 in
  let next_var = ref (ni + nluts) in
  let clauses = ref [] in
  let var_of_source = function
    | Netlist.Input i -> input_var.(i)
    | Netlist.Lut_out j -> lut_var.(j)
    | Netlist.Const b ->
      if !const_var = 0 then begin
        incr next_var;
        const_var := !next_var;
        clauses := [| !const_var |] :: !clauses
        (* const_var is fixed true; Const false is its negation. *)
      end;
      if b then !const_var else - !const_var
  in
  Array.iteri
    (fun j lut ->
      let o = lut_var.(j) in
      let fanin_lit (v, positive) =
        let base = var_of_source lut.Netlist.fanins.(v) in
        if positive then base else -base
      in
      let cube_clause extra c =
        let lits =
          List.map (fun l -> -fanin_lit l) (Aig.Cube.literals c) @ [ extra ]
        in
        Array.of_list lits
      in
      List.iter
        (fun c -> clauses := cube_clause o c :: !clauses)
        (Aig.Isop.compute lut.Netlist.tt);
      List.iter
        (fun c -> clauses := cube_clause (-o) c :: !clauses)
        (Aig.Isop.compute (Aig.Tt.not_ lut.Netlist.tt)))
    nl.Netlist.luts;
  if assert_outputs then
    Array.iter
      (fun (src, compl_) ->
        match src with
        | Netlist.Const b ->
          if b = compl_ then clauses := [||] :: !clauses
        | Netlist.Input _ | Netlist.Lut_out _ ->
          let v = var_of_source src in
          clauses := [| (if compl_ then -v else v) |] :: !clauses)
      nl.Netlist.outputs;
  {
    formula = Cnf.Formula.create ~num_vars:!next_var (List.rev !clauses);
    input_var;
    lut_var;
  }
