(** BLIF reading and writing for LUT netlists.

    Berkeley Logic Interchange Format is what ABC, mockturtle, VPR and
    FPGA flows exchange mapped netlists in; each [.names] block is one
    LUT given as a single-output cube cover.  Writing emits the ISOP
    cover of each LUT; complemented outputs get an explicit inverter
    block (BLIF has no complement edges).  Reading accepts blocks in
    any order and topologically sorts them. *)

exception Parse_error of string

val write_string : ?model_name:string -> Netlist.t -> string
val write_file : ?model_name:string -> Netlist.t -> string -> unit

val read_string : string -> Netlist.t
(** @raise Parse_error on malformed input, combinational loops,
    multi-model files or covers wider than 16 inputs. *)

val read_file : string -> Netlist.t
