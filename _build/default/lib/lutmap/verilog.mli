(** Structural Verilog emission of LUT netlists.

    Each LUT becomes an [assign] of a sum-of-products expression (the
    ISOP cover of its function), so the output is plain synthesizable
    Verilog-2001 with no cell library — convenient for waveform-level
    debugging and for feeding the mapped netlist to external tools. *)

val write_string : ?module_name:string -> Netlist.t -> string
val write_file : ?module_name:string -> Netlist.t -> string -> unit
