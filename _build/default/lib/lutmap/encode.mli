(** LUT netlist to CNF (the [lut2cnf] step).

    Each LUT contributes the clauses of the irredundant prime covers of
    its function and complement: a cube [c] of ISOP(f) yields
    [(not c) or out], a cube of ISOP(not f) yields [(not c) or not out].
    This is the standard FPGA-mapping CNF encoding and makes the clause
    count per LUT exactly its branching complexity. *)

type encoding = {
  formula : Cnf.Formula.t;
  input_var : int array;   (** input i -> CNF variable *)
  lut_var : int array;     (** lut j -> CNF variable *)
}

val encode : ?assert_outputs:bool -> Netlist.t -> encoding
(** When [assert_outputs] (default true), every output is forced to 1
    (a constant-false output yields an empty clause). *)
