(** The EDA-driven preprocessing pipeline (Algorithm 1) and the
    experiment presets built on it.

    Every run produces a {!report} carrying the timing decomposition of
    the paper's tables: T_agent (embedding + Q-network inference),
    T_trans (CNF-to-circuit recovery, logic synthesis, LUT mapping and
    CNF re-encoding) and T_solve, with T_all their sum. *)

type recipe_source =
  | No_preprocessing
      (** Solve the instance's direct formula — the Baseline columns. *)
  | Fixed of Synth.Recipe.op list
  | Random_policy of { seed : int; steps : int }
      (** The "w/o RL" ablation of §4.3. *)
  | Agent of Rl.Dqn.t * int
      (** Trained agent and maximum step count T. *)

type config = {
  recipe : recipe_source;
  mapper : Lutmap.Mapper.config;
  embed : Deepgate.Embedding.config;
  advanced_recovery : bool;
      (** use the order-independent cnf2aig when the input is CNF *)
}

type report = {
  instance : string;
  recipe_used : Synth.Recipe.op list;
  vars : int;
  clauses : int;
  t_agent : float;
  t_trans : float;
  t_solve : float;
  result : Sat.Solver.result;
  solver_stats : Sat.Solver.stats;
  aig_before : Aig.Stats.snapshot option;
  aig_after : Aig.Stats.snapshot option;
  netlist_luts : int;
  netlist_levels : int;
}

val t_all : report -> float

val run : ?limits:Sat.Solver.limits -> config -> Instance.t -> report
(** Full Algorithm 1 (or a direct solve for [No_preprocessing]). *)

val transform : config -> Instance.t -> Cnf.Formula.t * report
(** Algorithm 1 without the final solve: returns the simplified CNF
    \phi_out for an external solver.  The report's solver fields are
    zeroed and [result] is [Unknown].  With [No_preprocessing] the
    instance's direct formula is returned unchanged. *)

val solve_direct : ?limits:Sat.Solver.limits -> Instance.t -> report

(** {1 Experiment presets} *)

val baseline : config
(** Solve directly, no preprocessing. *)

val een2007 : config
(** The comparison approach "[15]" (Eén, Mishchenko & Sörensson 2007):
    synthesis for size (a compress2-style script) followed by
    conventional minimum-area LUT mapping. *)

val ours : ?agent:Rl.Dqn.t -> ?max_steps:int -> unit -> config
(** The full framework: RL-guided recipe (or, without an agent, the
    best fixed recipe) + cost-customized mapping. *)

val ours_without_rl : seed:int -> config
(** Random synthesis policy, cost-customized mapping (§4.3 ablation). *)

val ours_conventional_mapper : ?agent:Rl.Dqn.t -> unit -> config
(** RL recipe with the conventional mapper (§4.4 ablation). *)

val reduction : baseline:report -> report -> float
(** Percentage reduction of T_all versus the baseline ("Red." columns). *)

val pp_report : Format.formatter -> report -> unit
