(** The RL training environment of §3.2: states are netlist features +
    initial embedding, actions are synthesis operations, and the
    terminated reward is the reduction in SAT branching decisions of
    the LUT-mapped instance (Eq. 3).

    Solving happens under configurable limits so easy and hard training
    instances both produce rewards quickly; per-instance initial
    branching counts are cached across episodes. *)

type config = {
  max_steps : int;                    (** T, paper: 10 *)
  mapper : Lutmap.Mapper.config;
  embed : Deepgate.Embedding.config;
  reward_limits : Sat.Solver.limits;  (** caps for the reward solves *)
  normalize_reward : bool;
      (** divide (b0 - bT) by b0; keeps Q-targets in a stable range *)
  seed : int;
}

val default_config : config

val state_dim : config -> int

val make : config -> Aig.Graph.t array -> Rl.Dqn.env
(** An episodic environment over the given training instances; [reset]
    draws an instance uniformly.  @raise Invalid_argument on an empty
    instance array. *)

val branching_of : config -> Aig.Graph.t -> int
(** Decisions needed to solve the cost-customized-mapped encoding of a
    netlist — the quantity the reward differences. *)
