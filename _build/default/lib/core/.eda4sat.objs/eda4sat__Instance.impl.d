lib/core/instance.ml: Aig Cnf
