lib/core/state.ml: Aig Array Deepgate
