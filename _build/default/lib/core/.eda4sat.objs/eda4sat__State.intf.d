lib/core/state.mli: Aig Deepgate
