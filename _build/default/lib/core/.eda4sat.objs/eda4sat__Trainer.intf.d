lib/core/trainer.mli: Aig Env Rl
