lib/core/pipeline.ml: Aig Cnf Deepgate Format Instance List Logs Lutmap Rl Sat State Synth Sys
