lib/core/env.ml: Aig Array Deepgate Lutmap Rl Sat State Synth
