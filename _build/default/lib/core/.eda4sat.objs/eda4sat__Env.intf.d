lib/core/env.mli: Aig Deepgate Lutmap Rl Sat
