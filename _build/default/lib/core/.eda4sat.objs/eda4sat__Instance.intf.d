lib/core/instance.mli: Aig Cnf
