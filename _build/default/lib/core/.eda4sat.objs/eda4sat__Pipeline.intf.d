lib/core/pipeline.mli: Aig Cnf Deepgate Format Instance Lutmap Rl Sat Synth
