lib/core/trainer.ml: Env List Rl Synth
