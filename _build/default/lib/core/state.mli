(** RL state construction (Eq. 2): the six netlist features of §3.2.2
    concatenated with the DeepGate-style PO embedding of the initial
    netlist. *)

type t = {
  initial : Aig.Stats.snapshot;
  d0 : float array;           (** \mathcal{D}(G^0), fixed per episode *)
  embed_config : Deepgate.Embedding.config;
}

val dim : Deepgate.Embedding.config -> int
(** 6 + embedding dim. *)

val of_initial :
  ?embed_config:Deepgate.Embedding.config -> Aig.Graph.t -> t

val observe : t -> Aig.Graph.t -> float array
(** [observe st g_t] is the state vector s^t for the current netlist. *)
