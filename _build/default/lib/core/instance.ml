type payload = Cnf of Cnf.Formula.t | Circuit of Aig.Graph.t

type t = { name : string; payload : payload }

let of_cnf ~name f = { name; payload = Cnf f }
let of_circuit ~name g = { name; payload = Circuit g }

let to_aig ?(advanced = false) inst =
  match inst.payload with
  | Cnf f -> (Cnf.Cnf2aig.run ~advanced f).Cnf.Cnf2aig.graph
  | Circuit g -> Aig.Graph.cleanup g

let direct_formula inst =
  match inst.payload with
  | Cnf f -> f
  | Circuit g -> (Cnf.Tseitin.encode ~assert_outputs:true g).Cnf.Tseitin.formula

let num_vars inst = (direct_formula inst).Cnf.Formula.num_vars
let num_clauses inst = Cnf.Formula.num_clauses (direct_formula inst)

let num_gates inst =
  match inst.payload with
  | Cnf _ -> None
  | Circuit g -> Some (Aig.Graph.num_ands g)
