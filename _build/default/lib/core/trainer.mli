(** Training loop for the logic-synthesis agent (§4.1).

    The paper trains for 10,000 episodes over 200 LEC instances with
    gamma = 0.98, T = 10 and batch size 32; those knobs live in
    {!Rl.Dqn.config} / {!Env.config} and default to a scaled-down but
    shape-identical schedule (see DESIGN.md, Substitutions). *)

type progress = { episode : int; reward : float; loss : float }

val dqn_config_for : Env.config -> Rl.Dqn.config
(** A DQN configuration whose state dimension matches the environment
    (gamma 0.98, batch 32 as in the paper). *)

val train :
  ?dqn_config:Rl.Dqn.config ->
  ?env_config:Env.config ->
  ?on_episode:(progress -> unit) ->
  Aig.Graph.t array ->
  episodes:int ->
  Rl.Dqn.t * progress list
(** Returns the trained agent and the per-episode history (in order). *)

val average_reward : progress list -> int -> float
(** Mean reward over the last [n] episodes. *)
