type config = {
  max_steps : int;
  mapper : Lutmap.Mapper.config;
  embed : Deepgate.Embedding.config;
  reward_limits : Sat.Solver.limits;
  normalize_reward : bool;
  seed : int;
}

let default_config =
  {
    max_steps = 10;
    mapper = Lutmap.Mapper.cost_customized_config;
    embed = Deepgate.Embedding.default_config;
    reward_limits =
      {
        Sat.Solver.no_limits with
        Sat.Solver.max_decisions = Some 200_000;
        max_seconds = Some 10.0;
      };
    normalize_reward = true;
    seed = 99;
  }

let state_dim cfg = State.dim cfg.embed

let branching_of cfg g =
  let nl = Lutmap.Mapper.run ~config:cfg.mapper g in
  let enc = Lutmap.Encode.encode nl in
  Sat.Solver.decisions_or_max ~limits:cfg.reward_limits
    enc.Lutmap.Encode.formula

let make cfg instances =
  if Array.length instances = 0 then
    invalid_arg "Env.make: no training instances";
  let rng = Aig.Rng.create cfg.seed in
  let b0_cache = Array.make (Array.length instances) (-1) in
  (* Mutable episode state. *)
  let current = ref 0 in
  let graph = ref instances.(0) in
  let st = ref (State.of_initial ~embed_config:cfg.embed instances.(0)) in
  let steps = ref 0 in
  let reset () =
    current := Aig.Rng.int rng (Array.length instances);
    graph := instances.(!current);
    st := State.of_initial ~embed_config:cfg.embed !graph;
    steps := 0;
    State.observe !st !graph
  in
  let terminal_reward () =
    if b0_cache.(!current) < 0 then
      b0_cache.(!current) <- branching_of cfg instances.(!current);
    let b0 = b0_cache.(!current) in
    let bt = branching_of cfg !graph in
    let delta = float_of_int (b0 - bt) in
    if cfg.normalize_reward then delta /. float_of_int (max 1 b0) else delta
  in
  let step action =
    incr steps;
    let op = Synth.Recipe.op_of_index action in
    if op = Synth.Recipe.End then
      (State.observe !st !graph, terminal_reward (), true)
    else begin
      graph := Synth.Recipe.apply op !graph;
      let s' = State.observe !st !graph in
      if !steps >= cfg.max_steps then (s', terminal_reward (), true)
      else (s', 0.0, false)
    end
  in
  { Rl.Dqn.reset; step }
