type t = {
  initial : Aig.Stats.snapshot;
  d0 : float array;
  embed_config : Deepgate.Embedding.config;
}

let dim cfg = 6 + cfg.Deepgate.Embedding.dim

let of_initial ?(embed_config = Deepgate.Embedding.default_config) g =
  {
    initial = Aig.Stats.snapshot g;
    d0 = Deepgate.Embedding.po_embedding ~config:embed_config g;
    embed_config;
  }

let observe st g =
  Array.append (Aig.Stats.features ~initial:st.initial g) st.d0
