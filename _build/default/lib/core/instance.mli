(** SAT instances: either a CNF formula or a circuit (Algorithm 1 takes
    both). *)

type payload = Cnf of Cnf.Formula.t | Circuit of Aig.Graph.t

type t = { name : string; payload : payload }

val of_cnf : name:string -> Cnf.Formula.t -> t
val of_circuit : name:string -> Aig.Graph.t -> t

val to_aig : ?advanced:bool -> t -> Aig.Graph.t
(** The G^0 initialization of Algorithm 1 (lines 1-5): [cnf2aig] for
    CNF instances, [aigmap] (a structural-hashing sweep) for circuits.
    [advanced] (default false) selects the order-independent gate
    recovery of {!Cnf.Cnf2aig.run}. *)

val direct_formula : t -> Cnf.Formula.t
(** The formula a solver would receive {e without} preprocessing: the
    CNF itself, or the Tseitin encoding with outputs asserted. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_gates : t -> int option
(** AND-gate count for circuit instances, [None] for CNF (the "N/A"
    column of Table 2). *)
