type progress = { episode : int; reward : float; loss : float }

let dqn_config_for env_cfg =
  {
    Rl.Dqn.default_config with
    Rl.Dqn.state_dim = Env.state_dim env_cfg;
    num_actions = Synth.Recipe.num_actions;
    gamma = 0.98;
    batch_size = 32;
  }

let train ?dqn_config ?(env_config = Env.default_config)
    ?(on_episode = fun _ -> ()) instances ~episodes =
  let dqn_config =
    match dqn_config with
    | Some c -> c
    | None -> dqn_config_for env_config
  in
  if dqn_config.Rl.Dqn.state_dim <> Env.state_dim env_config then
    invalid_arg "Trainer.train: state dimension mismatch";
  let agent = Rl.Dqn.create dqn_config in
  let env = Env.make env_config instances in
  let history = ref [] in
  for episode = 1 to episodes do
    let reward =
      Rl.Dqn.run_episode agent env ~max_steps:env_config.Env.max_steps
        ~learn:true
    in
    let p = { episode; reward; loss = Rl.Dqn.last_loss agent } in
    history := p :: !history;
    on_episode p
  done;
  (agent, List.rev !history)

let average_reward history n =
  let tail =
    let len = List.length history in
    List.filteri (fun i _ -> i >= len - n) history
  in
  match tail with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc p -> acc +. p.reward) 0.0 tail
    /. float_of_int (List.length tail)
