(* CDCL solver.  Literal encoding: variable v (0-based) gives literals
   2v (positive) and 2v+1 (negative); [neg l = l lxor 1].  The
   implementation follows the MiniSat lineage: watch lists are rebuilt
   in place during propagation, conflict analysis walks the trail
   backwards to the first UIP, and learned clauses are minimized by
   checking whether a literal is dominated by the rest of the clause in
   the implication graph. *)

type result = Sat of bool array | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
  max_decision_level : int;
  time : float;
}

type limits = {
  max_conflicts : int option;
  max_decisions : int option;
  max_seconds : float option;
}

let no_limits = { max_conflicts = None; max_decisions = None; max_seconds = None }

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable deleted : bool;
}

(* Growable int-keyed vector of clauses per literal. *)
type 'a vec = { mutable data : 'a array; mutable size : int; dummy : 'a }

let vec_create dummy = { data = Array.make 4 dummy; size = 0; dummy }

let vec_push v x =
  if v.size >= Array.length v.data then begin
    let d = Array.make (2 * Array.length v.data) v.dummy in
    Array.blit v.data 0 d 0 v.size;
    v.data <- d
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1


type t = {
  mutable nvars : int;
  (* Assignment: -1 unassigned, 0 false, 1 true; per variable. *)
  mutable assigns : int array;
  mutable level : int array;
  mutable reason : clause option array;
  (* Trail of assigned literals, with decision-level boundaries. *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;
  mutable ntrail_lim : int;
  mutable qhead : int;
  (* Watches, indexed by literal. *)
  mutable watches : clause vec array;
  (* Decision heuristic. *)
  mutable var_activity : float array;
  mutable var_inc : float;
  mutable heap : int array;       (* binary max-heap of variables *)
  mutable heap_pos : int array;   (* position in heap, -1 if absent *)
  mutable heap_size : int;
  mutable polarity : bool array;  (* saved phases *)
  (* Clause database. *)
  mutable learnts : clause list;
  mutable num_learnts : int;
  (* Conflict analysis scratch. *)
  mutable seen : bool array;
  (* Learning-rate branching (Liang et al. 2016) bookkeeping. *)
  mutable lrb : bool;
  mutable lrb_alpha : float;
  mutable assigned_at : int array;   (* conflict counter at assignment *)
  mutable participated : int array;
  (* Statistics. *)
  mutable st_decisions : int;
  mutable st_conflicts : int;
  mutable st_props : int;
  mutable st_restarts : int;
  mutable st_learned : int;
  mutable st_max_level : int;
}

let dummy_clause =
  { lits = [||]; learnt = false; activity = 0.0; lbd = 0; deleted = true }

let var l = l lsr 1
let neg l = l lxor 1
let lit_of_var v sign = (v lsl 1) lor (if sign then 1 else 0)

(* Value of a literal: -1 unassigned, 0 false, 1 true. *)
let lit_value s l =
  let a = s.assigns.(var l) in
  if a < 0 then -1 else a lxor (l land 1)

let create nvars =
  {
    nvars;
    assigns = Array.make nvars (-1);
    level = Array.make nvars 0;
    reason = Array.make nvars None;
    trail = Array.make (max 1 nvars) 0;
    trail_size = 0;
    trail_lim = Array.make (max 1 nvars) 0;
    ntrail_lim = 0;
    qhead = 0;
    watches = Array.init (2 * max 1 nvars) (fun _ -> vec_create dummy_clause);
    var_activity = Array.make nvars 0.0;
    var_inc = 1.0;
    heap = Array.make (max 1 nvars) 0;
    heap_pos = Array.make nvars (-1);
    heap_size = 0;
    polarity = Array.make nvars false;
    lrb = false;
    lrb_alpha = 0.4;
    assigned_at = Array.make nvars 0;
    participated = Array.make nvars 0;
    learnts = [];
    num_learnts = 0;
    seen = Array.make nvars false;
    st_decisions = 0;
    st_conflicts = 0;
    st_props = 0;
    st_restarts = 0;
    st_learned = 0;
    st_max_level = 0;
  }

(* --- variable heap (max-heap on activity) ------------------------- *)

let heap_less s a b = s.var_activity.(a) > s.var_activity.(b)

let rec heap_sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      let tmp = s.heap.(i) in
      s.heap.(i) <- s.heap.(p);
      s.heap.(p) <- tmp;
      s.heap_pos.(s.heap.(i)) <- i;
      s.heap_pos.(s.heap.(p)) <- p;
      heap_sift_up s p
    end
  end

let rec heap_sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = s.heap.(i) in
    s.heap.(i) <- s.heap.(!best);
    s.heap.(!best) <- tmp;
    s.heap_pos.(s.heap.(i)) <- i;
    s.heap_pos.(s.heap.(!best)) <- !best;
    heap_sift_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_sift_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_sift_down s 0
  end;
  v

let bump_var s v =
  s.var_activity.(v) <- s.var_activity.(v) +. s.var_inc;
  if s.var_activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.var_activity.(i) <- s.var_activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

let decay_activities s =
  if s.lrb then s.lrb_alpha <- max 0.06 (s.lrb_alpha -. 3e-6)
  else s.var_inc <- s.var_inc /. 0.95

(* --- assignment --------------------------------------------------- *)

let decision_level s = s.ntrail_lim

let enqueue s l reason =
  let v = var l in
  if s.lrb then begin
    s.assigned_at.(v) <- s.st_conflicts;
    s.participated.(v) <- 0
  end;
  s.assigns.(v) <- 1 - (l land 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.polarity.(v) <- l land 1 = 0;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = var s.trail.(i) in
      s.assigns.(v) <- -1;
      s.reason.(v) <- None;
      if s.lrb then begin
        let interval = s.st_conflicts - s.assigned_at.(v) in
        if interval > 0 then begin
          let rate = float_of_int s.participated.(v) /. float_of_int interval in
          s.var_activity.(v) <-
            ((1.0 -. s.lrb_alpha) *. s.var_activity.(v))
            +. (s.lrb_alpha *. rate)
        end
      end;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.ntrail_lim <- lvl
  end

(* --- propagation --------------------------------------------------- *)

exception Conflict of clause

let attach_watch s l c = vec_push s.watches.(l) c

let propagate s =
  try
    while s.qhead < s.trail_size do
      let l = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.st_props <- s.st_props + 1;
      (* Clauses watching (neg l) must find a new watch or propagate. *)
      let wl = s.watches.(l) in
      let j = ref 0 in
      (let i = ref 0 in
       try
         while !i < wl.size do
           let c = wl.data.(!i) in
           incr i;
           if c.deleted then () (* drop lazily *)
           else begin
             let lits = c.lits in
             let false_lit = neg l in
             (* Ensure the false literal is at position 1. *)
             if lits.(0) = false_lit then begin
               lits.(0) <- lits.(1);
               lits.(1) <- false_lit
             end;
             let first = lits.(0) in
             if lit_value s first = 1 then begin
               (* Clause satisfied; keep the watch. *)
               wl.data.(!j) <- c;
               incr j
             end
             else begin
               (* Look for a new literal to watch. *)
               let n = Array.length lits in
               let k = ref 2 in
               while !k < n && lit_value s lits.(!k) = 0 do
                 incr k
               done;
               if !k < n then begin
                 lits.(1) <- lits.(!k);
                 lits.(!k) <- false_lit;
                 attach_watch s (neg lits.(1)) c
                 (* watch moved: do not keep in this list *)
               end
               else if lit_value s first = 0 then begin
                 (* Conflict: restore the remaining watches. *)
                 wl.data.(!j) <- c;
                 incr j;
                 while !i < wl.size do
                   wl.data.(!j) <- wl.data.(!i);
                   incr j;
                   incr i
                 done;
                 wl.size <- !j;
                 raise (Conflict c)
               end
               else begin
                 (* Unit: propagate first. *)
                 wl.data.(!j) <- c;
                 incr j;
                 enqueue s first (Some c)
               end
             end
           end
         done;
         wl.size <- !j
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict c -> Some c

(* --- conflict analysis --------------------------------------------- *)

let clause_bump_activity s c =
  c.activity <- c.activity +. 1.0;
  ignore s

let compute_lbd s lits =
  let levels = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace levels s.level.(var l) ()) lits;
  Hashtbl.length levels

(* Is l redundant given the current learned clause (seen marks)?  A
   literal is redundant when its reason literals are all seen or
   themselves redundant (bounded recursive minimization). *)
let rec lit_redundant s depth l =
  depth < 32
  &&
  match s.reason.(var l) with
  | None -> false
  | Some c ->
    Array.for_all
      (fun l' ->
        var l' = var l
        || s.level.(var l') = 0
        || s.seen.(var l')
        || lit_redundant s (depth + 1) l')
      c.lits

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_size - 1) in
  let confl = ref (Some confl) in
  let continue = ref true in
  while !continue do
    (match !confl with
     | None -> assert false
     | Some c ->
       if c.learnt then clause_bump_activity s c;
       Array.iter
         (fun q ->
           let v = var q in
           if (!p < 0 || q <> !p) && not s.seen.(v) && s.level.(v) > 0 then begin
             s.seen.(v) <- true;
             if s.lrb then
               s.participated.(v) <- s.participated.(v) + 1
             else bump_var s v;
             if s.level.(v) >= decision_level s then incr path
             else learnt := q :: !learnt
           end)
         c.lits);
    (* Find the next seen literal on the trail. *)
    while not s.seen.(var s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    s.seen.(var q) <- false;
    decr path;
    if !path = 0 then begin
      p := q;
      continue := false
    end
    else begin
      p := q;
      confl := s.reason.(var q)
    end
  done;
  let uip = neg !p in
  (* Re-mark for minimization. *)
  List.iter (fun l -> s.seen.(var l) <- true) !learnt;
  let minimized =
    List.filter (fun l -> not (lit_redundant s 0 l)) !learnt
  in
  List.iter (fun l -> s.seen.(var l) <- false) !learnt;
  let lits = Array.of_list (uip :: minimized) in
  (* Backtrack level: second highest level in the clause. *)
  let blevel =
    if Array.length lits = 1 then 0
    else begin
      (* Move the literal with the highest level (below the current) to
         position 1. *)
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if s.level.(var lits.(i)) > s.level.(var lits.(!best)) then best := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      s.level.(var lits.(1))
    end
  in
  (lits, blevel)

(* Internal literal -> DIMACS literal. *)
let dimacs_of_lit l =
  let v = (l lsr 1) + 1 in
  if l land 1 = 1 then -v else v

let log_add proof lits =
  match proof with
  | None -> ()
  | Some p -> Proof.add p (Array.map dimacs_of_lit lits)

let log_delete proof lits =
  match proof with
  | None -> ()
  | Some p -> Proof.delete p (Array.map dimacs_of_lit lits)

(* --- clause management --------------------------------------------- *)

let add_clause_internal s lits learnt =
  let c = { lits; learnt; activity = 0.0; lbd = 0; deleted = false } in
  if Array.length lits >= 2 then begin
    attach_watch s (neg lits.(0)) c;
    attach_watch s (neg lits.(1)) c
  end;
  if learnt then begin
    c.lbd <- compute_lbd s lits;
    s.learnts <- c :: s.learnts;
    s.num_learnts <- s.num_learnts + 1;
    s.st_learned <- s.st_learned + 1
  end;
  c

let reduce_db ?proof s =
  (* Keep binary and glue clauses; drop the less active half of the
     rest. *)
  let keep, candidates =
    List.partition
      (fun c -> Array.length c.lits <= 2 || c.lbd <= 2 || c.deleted)
      s.learnts
  in
  let is_reason c =
    (* A clause currently used as a reason must survive. *)
    Array.exists
      (fun l ->
        match s.reason.(var l) with Some r -> r == c | None -> false)
      c.lits
  in
  let sorted =
    List.sort
      (fun a b ->
        let d = compare a.lbd b.lbd in
        if d <> 0 then d else compare b.activity a.activity)
      candidates
  in
  let n = List.length sorted in
  let kept2 =
    List.filteri
      (fun i c ->
        if i < n / 2 || is_reason c then true
        else begin
          c.deleted <- true;
          log_delete proof c.lits;
          false
        end)
      sorted
  in
  s.learnts <- keep @ kept2;
  s.num_learnts <- List.length s.learnts

(* --- top level ------------------------------------------------------ *)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby_simple i =
  let rec find k = if (1 lsl k) - 1 >= i + 1 then k else find (k + 1) in
  let k = find 1 in
  if (1 lsl k) - 1 = i + 1 then 1 lsl (k - 1)
  else luby_simple (i + 1 - (1 lsl (k - 1)))

type prepared = Ready of t * int list (* units *) | Trivially_unsat

let prepare f =
  let nvars = f.Cnf.Formula.num_vars in
  let s = create nvars in
  let units = ref [] in
  let ok = ref true in
  Array.iter
    (fun clause ->
      if !ok then begin
        (* Normalize: dedupe, detect tautology. *)
        let lits =
          Array.to_list clause
          |> List.map (fun l ->
                 let v = abs l - 1 in
                 lit_of_var v (l < 0))
          |> List.sort_uniq compare
        in
        let taut =
          let rec check = function
            | a :: (b :: _ as rest) -> (a lxor b) = 1 || check rest
            | _ -> false
          in
          check lits
        in
        if not taut then
          match lits with
          | [] -> ok := false
          | [ l ] -> units := l :: !units
          | lits -> ignore (add_clause_internal s (Array.of_list lits) false)
      end)
    f.Cnf.Formula.clauses;
  if !ok then Ready (s, !units) else Trivially_unsat

let make_stats s time =
  {
    decisions = s.st_decisions;
    conflicts = s.st_conflicts;
    propagations = s.st_props;
    restarts = s.st_restarts;
    learned = s.st_learned;
    max_decision_level = s.st_max_level;
    time;
  }

let solve ?(limits = no_limits) ?proof ?(heuristic = `Evsids) f =
  let t0 = Sys.time () in
  match prepare f with
  | Trivially_unsat ->
    log_add proof [||];
    (Unsat, make_stats (create 0) (Sys.time () -. t0))
  | Ready (s, units) ->
    s.lrb <- (heuristic = `Lrb);
    let exception Done of result in
    (try
       (* Level-0 units. *)
       List.iter
         (fun l ->
           match lit_value s l with
           | 1 -> ()
           | 0 ->
             log_add proof [||];
             raise (Done Unsat)
           | _ -> enqueue s l None)
         units;
       if propagate s <> None then begin
         log_add proof [||];
         raise (Done Unsat)
       end;
       for v = 0 to s.nvars - 1 do
         if s.assigns.(v) < 0 then heap_insert s v
       done;
       let conflicts_at_restart = ref 0 in
       let restart_num = ref 0 in
       let restart_limit = ref (100 * luby_simple 0) in
       let reduce_limit = ref 2000 in
       let out_of_budget () =
         (match limits.max_conflicts with
          | Some m when s.st_conflicts >= m -> true
          | _ -> false)
         || (match limits.max_decisions with
             | Some m when s.st_decisions >= m -> true
             | _ -> false)
         ||
         match limits.max_seconds with
         | Some m when s.st_conflicts land 255 = 0 -> Sys.time () -. t0 > m
         | _ -> false
       in
       while true do
         match propagate s with
         | Some confl ->
           s.st_conflicts <- s.st_conflicts + 1;
           incr conflicts_at_restart;
           if decision_level s = 0 then begin
             log_add proof [||];
             raise (Done Unsat)
           end;
           let lits, blevel = analyze s confl in
           log_add proof lits;
           cancel_until s blevel;
           if Array.length lits = 1 then enqueue s lits.(0) None
           else begin
             let c = add_clause_internal s lits true in
             enqueue s lits.(0) (Some c)
           end;
           decay_activities s;
           if out_of_budget () then raise (Done Unknown)
         | None ->
           if !conflicts_at_restart >= !restart_limit then begin
             conflicts_at_restart := 0;
             incr restart_num;
             restart_limit := 100 * luby_simple !restart_num;
             s.st_restarts <- s.st_restarts + 1;
             cancel_until s 0
           end
           else begin
             if s.num_learnts >= !reduce_limit then begin
               reduce_db ?proof s;
               reduce_limit := !reduce_limit + 512
             end;
             (* Pick a branching variable. *)
             let v = ref (-1) in
             while !v < 0 && s.heap_size > 0 do
               let cand = heap_pop s in
               if s.assigns.(cand) < 0 then v := cand
             done;
             if !v < 0 then begin
               (* All variables assigned: model found. *)
               let model = Array.init s.nvars (fun v -> s.assigns.(v) = 1) in
               raise (Done (Sat model))
             end;
             s.st_decisions <- s.st_decisions + 1;
             s.trail_lim.(s.ntrail_lim) <- s.trail_size;
             s.ntrail_lim <- s.ntrail_lim + 1;
             s.st_max_level <- max s.st_max_level s.ntrail_lim;
             enqueue s (lit_of_var !v (not s.polarity.(!v))) None;
             if out_of_budget () then raise (Done Unknown)
           end
       done;
       assert false
     with Done r -> (r, make_stats s (Sys.time () -. t0)))

let decisions_or_max ?(limits = no_limits) f =
  let result, st = solve ~limits f in
  match (result, limits.max_decisions) with
  | Unknown, Some m -> max st.decisions m
  | _ -> st.decisions

let pp_stats ppf st =
  Format.fprintf ppf
    "decisions=%d conflicts=%d propagations=%d restarts=%d learned=%d time=%.3fs"
    st.decisions st.conflicts st.propagations st.restarts st.learned st.time

(* ------------------------------------------------------------------ *)
(* Incremental interface *)

module Incremental = struct
  type session = {
    s : t;
    mutable broken : bool;
    mutable core : int array; (* DIMACS assumption core of the last
                                 Unsat-under-assumptions answer *)
  }

  let grow_array a n default =
    let a' = Array.make n default in
    Array.blit a 0 a' 0 (Array.length a);
    a'

  let ensure_capacity session n =
    let s = session.s in
    if n > s.nvars then begin
      let cap = Array.length s.assigns in
      if n > cap then begin
        let cap' = max n (2 * max 1 cap) in
        s.assigns <- grow_array s.assigns cap' (-1);
        s.level <- grow_array s.level cap' 0;
        s.reason <- grow_array s.reason cap' None;
        s.trail <- grow_array s.trail cap' 0;
        s.trail_lim <- grow_array s.trail_lim cap' 0;
        s.var_activity <- grow_array s.var_activity cap' 0.0;
        s.heap <- grow_array s.heap cap' 0;
        s.heap_pos <- grow_array s.heap_pos cap' (-1);
        s.polarity <- grow_array s.polarity cap' false;
        s.seen <- grow_array s.seen cap' false;
        s.assigned_at <- grow_array s.assigned_at cap' 0;
        s.participated <- grow_array s.participated cap' 0;
        let w = Array.init (2 * cap') (fun i ->
            if i < Array.length s.watches then s.watches.(i)
            else vec_create dummy_clause)
        in
        s.watches <- w
      end;
      s.nvars <- n
    end

  let create () = { s = create 0; broken = false; core = [||] }

  let last_core session = session.core

  let num_vars session = session.s.nvars

  let new_var session =
    ensure_capacity session (session.s.nvars + 1);
    session.s.nvars

  (* Add a clause in DIMACS literals at decision level 0. *)
  let add_clause session clause =
    let s = session.s in
    if not session.broken then begin
      assert (s.ntrail_lim = 0);
      Array.iter (fun l -> ensure_capacity session (abs l)) clause;
      let lits =
        Array.to_list clause
        |> List.map (fun l -> lit_of_var (abs l - 1) (l < 0))
        |> List.sort_uniq compare
      in
      let taut =
        let rec chk = function
          | a :: (b :: _ as rest) -> a lxor b = 1 || chk rest
          | _ -> false
        in
        chk lits
      in
      if not taut then begin
        (* Evaluate under the level-0 assignment. *)
        let lits =
          List.filter (fun l -> lit_value s l <> 0) lits
        in
        if List.exists (fun l -> lit_value s l = 1) lits then ()
        else
          match lits with
          | [] -> session.broken <- true
          | [ l ] ->
            enqueue s l None;
            if propagate s <> None then session.broken <- true
          | lits -> ignore (add_clause_internal s (Array.of_list lits) false)
      end
    end

  let add_formula session f =
    Array.iter (add_clause session) f.Cnf.Formula.clauses

  exception Done_incremental of result

  let solve ?(limits = no_limits) ?(assumptions = [||]) session =
    let t0 = Sys.time () in
    let s = session.s in
    let assumption_lits =
      Array.map
        (fun l ->
          ensure_capacity session (abs l);
          lit_of_var (abs l - 1) (l < 0))
        assumptions
    in
    (* Assumption levels can be empty, so decision levels may exceed
       the variable count; give the level stack headroom. *)
    let needed = s.nvars + Array.length assumption_lits + 1 in
    if Array.length s.trail_lim < needed then
      s.trail_lim <- grow_array s.trail_lim needed 0;
    let finish r =
      cancel_until s 0;
      (r, make_stats s (Sys.time () -. t0))
    in
    session.core <- [||];
    if session.broken then finish Unsat
    else begin
      try
        if propagate s <> None then begin
          session.broken <- true;
          raise (Done_incremental Unsat)
        end;
        for v = 0 to s.nvars - 1 do
          if s.assigns.(v) < 0 then heap_insert s v
        done;
        let conflicts_at_restart = ref 0 in
        let restart_num = ref 0 in
        let restart_limit = ref (100 * luby_simple 0) in
        let reduce_limit = ref (2000 + s.num_learnts) in
        let out_of_budget () =
          (match limits.max_conflicts with
           | Some m when s.st_conflicts >= m -> true
           | _ -> false)
          || (match limits.max_decisions with
              | Some m when s.st_decisions >= m -> true
              | _ -> false)
          ||
          match limits.max_seconds with
          | Some m when s.st_conflicts land 255 = 0 ->
            Sys.time () -. t0 > m
          | _ -> false
        in
        while true do
          match propagate s with
          | Some confl ->
            s.st_conflicts <- s.st_conflicts + 1;
            incr conflicts_at_restart;
            if decision_level s = 0 then begin
              session.broken <- true;
              raise (Done_incremental Unsat)
            end;
            let lits, blevel = analyze s confl in
            cancel_until s blevel;
            if Array.length lits = 1 then begin
              (* Asserting unit: if we are above level 0 because of
                 assumptions, it still holds at its computed level. *)
              if decision_level s = 0 then enqueue s lits.(0) None
              else enqueue s lits.(0) None
            end
            else begin
              let c = add_clause_internal s lits true in
              enqueue s lits.(0) (Some c)
            end;
            decay_activities s;
            if out_of_budget () then raise (Done_incremental Unknown)
          | None ->
            if !conflicts_at_restart >= !restart_limit then begin
              conflicts_at_restart := 0;
              incr restart_num;
              restart_limit := 100 * luby_simple !restart_num;
              s.st_restarts <- s.st_restarts + 1;
              cancel_until s 0
            end
            else if decision_level s < Array.length assumption_lits then begin
              (* Place the next assumption as a pseudo-decision. *)
              let p = assumption_lits.(decision_level s) in
              s.trail_lim.(s.ntrail_lim) <- s.trail_size;
              s.ntrail_lim <- s.ntrail_lim + 1;
              (match lit_value s p with
               | 1 -> () (* already true: empty level *)
               | 0 ->
                 (* Conflicting assumption: extract the subset of
                    assumptions that forces (not p) by walking the
                    implication graph back to pseudo-decisions. *)
                 let core = ref [ dimacs_of_lit p ] in
                 let stack = ref [ var p ] in
                 (try
                    while !stack <> [] do
                      match !stack with
                      | [] -> ()
                      | v :: rest ->
                        stack := rest;
                        if not s.seen.(v) && s.level.(v) > 0 then begin
                          s.seen.(v) <- true;
                          match s.reason.(v) with
                          | None ->
                            (* A pseudo-decision: an assumption. *)
                            core :=
                              dimacs_of_lit
                                (lit_of_var v (s.assigns.(v) = 0))
                              :: !core
                          | Some c ->
                            Array.iter
                              (fun l ->
                                if var l <> v then stack := var l :: !stack)
                              c.lits
                        end
                    done
                  with e ->
                    Array.iter (fun l -> s.seen.(var l) <- false)
                      s.trail;
                    raise e);
                 for i = 0 to s.trail_size - 1 do
                   s.seen.(var s.trail.(i)) <- false
                 done;
                 s.seen.(var p) <- false;
                 session.core <- Array.of_list !core;
                 raise (Done_incremental Unsat)
               | _ -> enqueue s p None)
            end
            else begin
              if s.num_learnts >= !reduce_limit then begin
                reduce_db s;
                reduce_limit := !reduce_limit + 512
              end;
              let v = ref (-1) in
              while !v < 0 && s.heap_size > 0 do
                let cand = heap_pop s in
                if s.assigns.(cand) < 0 then v := cand
              done;
              if !v < 0 then begin
                let model =
                  Array.init s.nvars (fun v -> s.assigns.(v) = 1)
                in
                raise (Done_incremental (Sat model))
              end;
              s.st_decisions <- s.st_decisions + 1;
              s.trail_lim.(s.ntrail_lim) <- s.trail_size;
              s.ntrail_lim <- s.ntrail_lim + 1;
              s.st_max_level <- max s.st_max_level s.ntrail_lim;
              enqueue s (lit_of_var !v (not s.polarity.(!v))) None;
              if out_of_budget () then raise (Done_incremental Unknown)
            end
        done;
        assert false
      with Done_incremental r -> finish r
    end
end
