lib/sat/solver.mli: Cnf Format Proof
