lib/sat/proof.ml: Array Buffer Cnf Hashtbl List String
