lib/sat/proof.mli: Cnf
