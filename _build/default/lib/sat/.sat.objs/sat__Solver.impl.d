lib/sat/solver.ml: Array Cnf Format Hashtbl List Proof Sys
