(** CDCL SAT solver (the Kissat stand-in of the reproduction).

    Implements the standard modern architecture: two-watched-literal
    propagation, EVSIDS decision heuristic with phase saving, first-UIP
    clause learning with recursive minimization, Luby restarts and
    LBD-driven learned-clause-database reduction.

    The solver exposes its {e decision count} ("branching times"): the
    paper's RL reward and LUT cost metric both approximate solving
    complexity by the number of variable branching decisions (§3.2.5,
    §3.3.1), so this counter is the central observable. *)

type result =
  | Sat of bool array  (** model, indexed by variable - 1 *)
  | Unsat
  | Unknown            (** a resource limit was hit *)

type stats = {
  decisions : int;     (** branching times *)
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
  max_decision_level : int;
  time : float;        (** CPU seconds *)
}

type limits = {
  max_conflicts : int option;
  max_decisions : int option;
  max_seconds : float option;
}

val no_limits : limits

val solve :
  ?limits:limits -> ?proof:Proof.t -> ?heuristic:[ `Evsids | `Lrb ] ->
  Cnf.Formula.t -> result * stats
(** Solve a formula from scratch.  When the result is [Sat m], [m]
    satisfies the formula (checked cheaply by the caller via
    {!Cnf.Formula.eval} if desired).  With [proof], every learned
    clause and every learned-clause deletion is logged in DRAT; an
    [Unsat] answer ends the log with the empty clause, and the whole
    log validates under {!Proof.check}.  [heuristic] selects the
    branching scheme: exponential VSIDS (default) or the learning-rate
    heuristic of Liang et al. 2016 — the paper's reference [23]. *)

val decisions_or_max : ?limits:limits -> Cnf.Formula.t -> int
(** Convenience for the RL reward: the decision count of a solve, or
    the configured decision cap when the limit was hit. *)

val pp_stats : Format.formatter -> stats -> unit

(** Incremental solving under assumptions: one persistent solver that
    accumulates clauses across queries, so learned clauses are reused —
    the mode SAT sweeping engines drive their solver in. *)
module Incremental : sig
  type session

  val create : unit -> session
  (** An empty session with no variables. *)

  val num_vars : session -> int

  val new_var : session -> int
  (** Allocate the next variable; returns its (1-based) DIMACS index.
      Variables are also allocated implicitly by {!add_clause}. *)

  val add_clause : session -> int array -> unit
  (** Add a clause (DIMACS literals) permanently.  Must not be called
      while a solve is in progress. *)

  val add_formula : session -> Cnf.Formula.t -> unit

  val solve :
    ?limits:limits -> ?assumptions:int array -> session -> result * stats
  (** Solve the accumulated clauses under the given assumption
      literals.  [Unsat] means unsatisfiable {e under the assumptions}
      (permanently unsatisfiable once it occurs with none).  Models
      cover all variables allocated so far.  Statistics are cumulative
      across the session's queries. *)

  val last_core : session -> int array
  (** After an [Unsat] answer under assumptions: a subset of the
      assumption literals sufficient for the contradiction (empty when
      the formula is unsatisfiable outright or the last answer was not
      [Unsat]). *)
end
