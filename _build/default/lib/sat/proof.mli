(** DRAT proof logging and checking.

    When given a recorder, the solver logs every learned clause
    (addition) and every removed learned clause (deletion) in DIMACS
    literals; an unsatisfiability result ends with the empty clause.
    {!check} replays the proof against the original formula with a
    reverse-unit-propagation (RUP) test per addition — CDCL learned
    clauses are always RUP, so this validates our solver's refutations
    end-to-end. *)

type step = Add of int array | Delete of int array

type t

val create : unit -> t
val add : t -> int array -> unit
val delete : t -> int array -> unit
val steps : t -> step list
(** In emission order. *)

val num_steps : t -> int

val to_string : t -> string
(** Standard DRAT text ("d" prefix for deletions, 0-terminated). *)

val of_string : string -> t
(** @raise Failure on malformed input. *)

val check : Cnf.Formula.t -> t -> bool
(** [check f proof] replays the proof: every added clause must be RUP
    with respect to the current clause database, deletions must refer
    to present clauses, and the proof must end having derived (or
    added) the empty clause.  Intended for validation at test sizes —
    the propagation is simple and unoptimized. *)
