(* Minato-Morreale ISOP: recursive decomposition on the top variable of
   the interval [l, u] (l <= f <= u).  For completely specified functions
   the initial call uses l = u = f.  Each recursive step computes the
   cubes that must contain ~x, the cubes that must contain x, and a
   shared remainder cover independent of x. *)

let rec isop l u n =
  if Tt.is_const_false l then ([], Tt.create_const n false)
  else if Tt.is_const_true u then ([ Cube.full ], Tt.create_const n true)
  else begin
    let x =
      match Tt.support u with
      | v :: _ -> v
      | [] -> (match Tt.support l with
          | v :: _ -> v
          | [] ->
            (* l nonconstant is impossible here: no support means const. *)
            assert false)
    in
    let l0 = Tt.cofactor l x false and l1 = Tt.cofactor l x true in
    let u0 = Tt.cofactor u x false and u1 = Tt.cofactor u x true in
    (* Cubes needed specifically on the x=0 side. *)
    let c0, g0 = isop (Tt.and_ l0 (Tt.not_ u1)) u0 n in
    (* Cubes needed specifically on the x=1 side. *)
    let c1, g1 = isop (Tt.and_ l1 (Tt.not_ u0)) u1 n in
    let lnew =
      Tt.or_ (Tt.and_ l0 (Tt.not_ g0)) (Tt.and_ l1 (Tt.not_ g1))
    in
    let cs, gs = isop lnew (Tt.and_ u0 u1) n in
    let vx = Tt.var n x in
    let cover =
      Tt.or_ gs
        (Tt.or_ (Tt.and_ (Tt.not_ vx) g0) (Tt.and_ vx g1))
    in
    let cubes =
      List.map (fun c -> Cube.add_neg c x) c0
      @ List.map (fun c -> Cube.add_pos c x) c1
      @ cs
    in
    (cubes, cover)
  end

let compute f =
  let n = Tt.num_vars f in
  let cubes, cover = isop f f n in
  assert (Tt.equal cover f);
  cubes

let cover_tt n cubes =
  List.fold_left
    (fun acc c -> Tt.or_ acc (Cube.to_tt n c))
    (Tt.create_const n false) cubes

let verify f cubes = Tt.equal f (cover_tt (Tt.num_vars f) cubes)
let num_cubes f = List.length (compute f)
let literal_count cubes =
  List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 cubes
