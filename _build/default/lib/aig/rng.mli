(** Deterministic splitmix64 pseudo-random generator.

    All stochastic components (simulation, workload generation, frozen
    embedding weights, RL exploration) draw from this generator so runs
    are reproducible from a seed. *)

type t

val create : int -> t
val next64 : t -> int64
val int : t -> int -> int
(** [int r bound] is uniform in [0, bound). *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val shuffle : t -> 'a array -> unit
