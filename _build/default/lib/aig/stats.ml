type snapshot = {
  area : int;
  depth : int;
  wires : int;
  ands : int;
  nots : int;
  pis : int;
  balance : float;
}

let balance_ratio g =
  let lv = Graph.levels g in
  let total = ref 0.0 and count = ref 0 in
  Graph.iter_ands g (fun id ->
      let d0 = lv.(Graph.node_of_lit (Graph.fanin0 g id))
      and d1 = lv.(Graph.node_of_lit (Graph.fanin1 g id)) in
      let m = max d0 d1 in
      if m > 0 then
        total := !total +. (float_of_int (abs (d0 - d1)) /. float_of_int m);
      incr count);
  if !count = 0 then 0.0 else !total /. float_of_int !count

let snapshot g =
  {
    area = Graph.num_ands g;
    depth = Graph.depth g;
    wires = (2 * Graph.num_ands g) + Graph.num_pos g;
    ands = Graph.num_ands g;
    nots = Graph.num_inverted_edges g;
    pis = Graph.num_pis g;
    balance = balance_ratio g;
  }

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let features ~initial g =
  let s = snapshot g in
  let total_gates = s.ands + s.nots + s.pis in
  [|
    ratio s.area initial.area;
    ratio s.depth initial.depth;
    ratio s.wires initial.wires;
    ratio s.ands total_gates;
    ratio s.nots total_gates;
    s.balance;
  |]

let pp_snapshot ppf s =
  Format.fprintf ppf "area=%d depth=%d wires=%d nots=%d balance=%.3f" s.area
    s.depth s.wires s.nots s.balance
