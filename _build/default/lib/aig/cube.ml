type t = { mask : int; pol : int }

let full = { mask = 0; pol = 0 }

let num_literals c =
  let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
  count c.mask 0

let mem_pos c i = c.mask land (1 lsl i) <> 0 && c.pol land (1 lsl i) <> 0
let mem_neg c i = c.mask land (1 lsl i) <> 0 && c.pol land (1 lsl i) = 0
let add_pos c i = { mask = c.mask lor (1 lsl i); pol = c.pol lor (1 lsl i) }
let add_neg c i = { mask = c.mask lor (1 lsl i); pol = c.pol land lnot (1 lsl i) }

let to_tt n c =
  let acc = ref (Tt.create_const n true) in
  for i = 0 to n - 1 do
    if c.mask land (1 lsl i) <> 0 then begin
      let v = Tt.var n i in
      acc := Tt.and_ !acc (if c.pol land (1 lsl i) <> 0 then v else Tt.not_ v)
    end
  done;
  !acc

let literals c =
  let rec loop i acc =
    if 1 lsl i > c.mask then List.rev acc
    else if c.mask land (1 lsl i) <> 0 then
      loop (i + 1) ((i, c.pol land (1 lsl i) <> 0) :: acc)
    else loop (i + 1) acc
  in
  loop 0 []

let pp ppf c =
  if c.mask = 0 then Format.pp_print_string ppf "1"
  else
    List.iter
      (fun (v, pos) -> Format.fprintf ppf "%sx%d" (if pos then "" else "~") v)
      (literals c)
