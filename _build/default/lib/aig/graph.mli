(** Structurally hashed And-Inverter Graphs.

    An AIG represents arbitrary combinational logic with two-input AND
    gates and complemented edges.  Nodes are numbered densely: node [0] is
    the constant-false node, nodes [1 .. num_pis] are primary inputs and
    the remaining nodes are AND gates.  A {e literal} packs a node id and
    a complement bit as [2 * id + sign], following the AIGER convention,
    so literal [0] is constant false and literal [1] constant true.

    The builder maintains the invariant that both fanins of an AND node
    have smaller ids than the node itself; iterating nodes by increasing
    id is therefore always a topological order. *)

type lit = int
(** A literal: [2 * node_id + complement]. *)

type t
(** A mutable AIG under construction (and the final representation). *)

(** {1 Literals} *)

val lit_of_node : int -> bool -> lit
(** [lit_of_node id compl] packs a node id and complement flag. *)

val node_of_lit : lit -> int
val is_compl : lit -> bool
val lit_not : lit -> lit
val lit_not_cond : lit -> bool -> lit
(** [lit_not_cond l c] complements [l] iff [c]. *)

val const_false : lit
val const_true : lit

(** {1 Construction} *)

val create : num_pis:int -> t
(** [create ~num_pis] returns an AIG with [num_pis] primary inputs and no
    AND nodes or outputs. *)

val pi : t -> int -> lit
(** [pi g i] is the literal of the [i]-th primary input, [0 <= i <
    num_pis g].  @raise Invalid_argument otherwise. *)

val and_ : t -> lit -> lit -> lit
(** [and_ g a b] returns a literal for the conjunction of [a] and [b],
    applying constant propagation, trivial-case simplification
    ([a = b], [a = not b]) and structural hashing. *)

val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val mux_ : t -> lit -> lit -> lit -> lit
(** [mux_ g sel t e] is [if sel then t else e]. *)

val and_list : t -> lit list -> lit
(** Balanced conjunction of a list of literals ([const_true] if empty). *)

val or_list : t -> lit list -> lit

val add_po : t -> lit -> unit
(** Append a primary output. *)

val set_po : t -> int -> lit -> unit
(** [set_po g i l] replaces the [i]-th output. *)

(** {1 Access} *)

val num_pis : t -> int
val num_pos : t -> int
val num_ands : t -> int
val num_nodes : t -> int
(** Total nodes including the constant node and PIs. *)

val po : t -> int -> lit
val pos : t -> lit array
val fanin0 : t -> int -> lit
(** Fanin literals of an AND node.  @raise Invalid_argument on a PI or
    the constant node. *)

val fanin1 : t -> int -> lit
val is_and : t -> int -> bool
val is_pi : t -> int -> bool

val iter_ands : t -> (int -> unit) -> unit
(** Iterate AND node ids in topological (increasing-id) order. *)

val fold_ands : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** {1 Derived information} *)

val levels : t -> int array
(** Per-node logic level: PIs and the constant node are level 0, an AND
    is one more than the maximum of its fanins. *)

val depth : t -> int
(** Maximum level over the primary outputs (0 for a constant-only AIG). *)

val ref_counts : t -> int array
(** Per-node fanout count, counting PO references. *)

val num_inverted_edges : t -> int
(** Number of complemented AND fanin edges plus complemented POs — the
    AIG analogue of "NOT gate" count. *)

(** {1 Checkpointing}

    Rewriting tentatively builds candidate subgraphs and rolls them back
    when they are not beneficial. *)

type mark

val mark : t -> mark
val nodes_since : t -> mark -> int
(** Number of AND nodes created since the mark. *)

val rollback : t -> mark -> unit
(** Remove every node created since the mark (their strash entries
    included).  Behaviour is undefined if such nodes are referenced by
    later-surviving structure, so callers must roll back before using
    any literal created after the mark. *)

(** {1 Whole-graph operations} *)

val copy : t -> t

val cleanup : t -> t
(** Rebuild the AIG keeping only nodes reachable from the outputs (a
    "sweep"); PIs are preserved, node ids are renumbered compactly. *)

val compose :
  t -> (t -> lit array -> lit array) -> t
(** [compose g f] rebuilds [g] through a fresh builder: [f] receives the
    new builder and the new PI literals and must return the new PO
    literals.  Used by synthesis passes. *)

val equal_structure : t -> t -> bool
(** Structural identity (same nodes, fanins and outputs) — not
    functional equivalence. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: pis/pos/ands/depth. *)
