exception Parse_error of string

let write_buffer g buf =
  let npis = Graph.num_pis g
  and nands = Graph.num_ands g
  and npos = Graph.num_pos g in
  let m = npis + nands in
  Buffer.add_string buf (Printf.sprintf "aag %d %d 0 %d %d\n" m npis npos nands);
  for i = 0 to npis - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * (i + 1)))
  done;
  for i = 0 to npos - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Graph.po g i))
  done;
  Graph.iter_ands g (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * id) (Graph.fanin0 g id)
           (Graph.fanin1 g id)))

let write_string g =
  let buf = Buffer.create 4096 in
  write_buffer g buf;
  Buffer.contents buf

let write_channel g oc = output_string oc (write_string g)

let write_file g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel g oc)


(* --- binary ("aig") format ------------------------------------------ *)

let write_varint buf x =
  let x = ref x in
  while !x >= 0x80 do
    Buffer.add_char buf (Char.chr ((!x land 0x7F) lor 0x80));
    x := !x lsr 7
  done;
  Buffer.add_char buf (Char.chr !x)

let write_binary_string g =
  let npis = Graph.num_pis g
  and nands = Graph.num_ands g
  and npos = Graph.num_pos g in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d 0 %d %d\n" (npis + nands) npis npos nands);
  for i = 0 to npos - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Graph.po g i))
  done;
  Graph.iter_ands g (fun id ->
      let lhs = 2 * id in
      let a = Graph.fanin0 g id and b = Graph.fanin1 g id in
      let rhs0 = max a b and rhs1 = min a b in
      assert (lhs > rhs0 && rhs0 >= rhs1);
      write_varint buf (lhs - rhs0);
      write_varint buf (rhs0 - rhs1));
  Buffer.contents buf

let write_binary_file g path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_binary_string g))

let read_binary_string s =
  (* Header and output lines are newline-terminated ASCII; the AND
     section is raw bytes. *)
  let pos = ref 0 in
  let len = String.length s in
  let next_line () =
    let start = !pos in
    while !pos < len && s.[!pos] <> '\n' do
      incr pos
    done;
    if !pos >= len then raise (Parse_error "truncated binary file");
    let line = String.sub s start (!pos - start) in
    incr pos;
    line
  in
  let header = next_line () in
  let m, i, l, o, a =
    match String.split_on_char ' ' header with
    | [ "aig"; m; i; l; o; a ] -> (
      try
        ( int_of_string m, int_of_string i, int_of_string l,
          int_of_string o, int_of_string a )
      with Failure _ -> raise (Parse_error "bad binary header"))
    | _ -> raise (Parse_error "expected 'aig M I L O A' header")
  in
  if l <> 0 then raise (Parse_error "latches not supported");
  if m <> i + a then raise (Parse_error "binary aig requires M = I + A");
  let output_lits =
    List.init o (fun _ ->
        try int_of_string (String.trim (next_line ()))
        with Failure _ -> raise (Parse_error "bad output line"))
  in
  let read_varint () =
    let x = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !pos >= len then raise (Parse_error "truncated AND section");
      let byte = Char.code s.[!pos] in
      incr pos;
      x := !x lor ((byte land 0x7F) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then continue := false
    done;
    !x
  in
  let g = Graph.create ~num_pis:i in
  (* Map original literal -> graph literal (identity numbering modulo
     strashing). *)
  let map = Array.make (2 * (m + 1)) Graph.const_false in
  map.(0) <- Graph.const_false;
  map.(1) <- Graph.const_true;
  for k = 0 to i - 1 do
    map.((2 * (k + 1))) <- Graph.pi g k;
    map.((2 * (k + 1)) + 1) <- Graph.lit_not (Graph.pi g k)
  done;
  for k = 0 to a - 1 do
    let lhs = 2 * (i + 1 + k) in
    let d0 = read_varint () in
    let d1 = read_varint () in
    let rhs0 = lhs - d0 in
    let rhs1 = rhs0 - d1 in
    if rhs0 < 0 || rhs1 < 0 || rhs0 >= lhs then
      raise (Parse_error "bad AND deltas");
    let lit = Graph.and_ g map.(rhs0) map.(rhs1) in
    map.(lhs) <- lit;
    map.(lhs + 1) <- Graph.lit_not lit
  done;
  List.iter
    (fun x ->
      if x < 0 || x >= Array.length map then
        raise (Parse_error "output literal out of range");
      Graph.add_po g map.(x))
    output_lits;
  g

let read_ascii_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = 'c'))
  in
  let ints line =
    try List.map int_of_string (String.split_on_char ' ' line)
    with Failure _ -> raise (Parse_error ("bad line: " ^ line))
  in
  match lines with
  | [] -> raise (Parse_error "empty input")
  | header :: rest ->
    let m, i, l, o, a =
      match String.split_on_char ' ' header with
      | [ "aag"; m; i; l; o; a ] -> (
        try
          ( int_of_string m,
            int_of_string i,
            int_of_string l,
            int_of_string o,
            int_of_string a )
        with Failure _ -> raise (Parse_error "bad header"))
      | _ -> raise (Parse_error "expected 'aag M I L O A' header")
    in
    if l <> 0 then raise (Parse_error "latches not supported");
    if List.length rest < i + o + a then raise (Parse_error "truncated file");
    let rec split n xs acc =
      if n = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> raise (Parse_error "truncated file")
        | x :: xs -> split (n - 1) xs (x :: acc)
    in
    let input_lines, rest = split i rest [] in
    let output_lines, rest = split o rest [] in
    let and_lines, _symbols = split a rest [] in
    let input_lits =
      List.map
        (fun line ->
          match ints line with
          | [ x ] when x land 1 = 0 && x > 0 -> x
          | _ -> raise (Parse_error ("bad input line: " ^ line)))
        input_lines
    in
    let output_lits =
      List.map
        (fun line ->
          match ints line with
          | [ x ] -> x
          | _ -> raise (Parse_error ("bad output line: " ^ line)))
        output_lines
    in
    let and_defs = Hashtbl.create (2 * a) in
    List.iter
      (fun line ->
        match ints line with
        | [ lhs; rhs0; rhs1 ] when lhs land 1 = 0 && lhs > 0 ->
          if Hashtbl.mem and_defs (lhs / 2) then
            raise (Parse_error "duplicate AND definition");
          Hashtbl.add and_defs (lhs / 2) (rhs0, rhs1)
        | _ -> raise (Parse_error ("bad AND line: " ^ line)))
      and_lines;
    let g = Graph.create ~num_pis:i in
    (* Map original variable index -> new literal. *)
    let map = Hashtbl.create (2 * (m + 1)) in
    Hashtbl.add map 0 Graph.const_false;
    List.iteri (fun idx x -> Hashtbl.add map (x / 2) (Graph.pi g idx)) input_lits;
    let building = Hashtbl.create 16 in
    let rec lit_value x =
      let v = x / 2 in
      let base =
        match Hashtbl.find_opt map v with
        | Some nl -> nl
        | None -> (
          if Hashtbl.mem building v then
            raise (Parse_error "cyclic AND definitions");
          Hashtbl.add building v ();
          match Hashtbl.find_opt and_defs v with
          | None ->
            raise (Parse_error (Printf.sprintf "undefined variable %d" v))
          | Some (r0, r1) ->
            let nl = Graph.and_ g (lit_value r0) (lit_value r1) in
            Hashtbl.remove building v;
            Hashtbl.add map v nl;
            nl)
      in
      Graph.lit_not_cond base (x land 1 = 1)
    in
    (* Materialize every defined AND (even ones unreachable from the
       outputs) so size statistics match the file.  Ascending variable
       order keeps recursion shallow for topologically sorted files. *)
    let vars = Hashtbl.fold (fun v _ acc -> v :: acc) and_defs [] in
    List.iter
      (fun v -> ignore (lit_value (2 * v)))
      (List.sort compare vars);
    List.iter (fun x -> Graph.add_po g (lit_value x)) output_lits;
    g

let read_string s =
  if String.length s >= 4 && String.sub s 0 4 = "aig " then
    read_binary_string s
  else read_ascii_string s

let read_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  read_string (Buffer.contents buf)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
