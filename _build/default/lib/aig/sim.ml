type signatures = int64 array array

let random_inputs g ~words ~seed =
  let r = Rng.create seed in
  Array.init (Graph.num_pis g) (fun _ ->
      Array.init words (fun _ -> Rng.next64 r))

let run g ~inputs =
  let npis = Graph.num_pis g in
  if Array.length inputs <> npis then invalid_arg "Sim.run: wrong PI count";
  let words = if npis = 0 then 1 else Array.length inputs.(0) in
  let sigs = Array.make (Graph.num_nodes g) [||] in
  sigs.(0) <- Array.make words 0L;
  for i = 0 to npis - 1 do
    sigs.(i + 1) <- inputs.(i)
  done;
  let value l =
    let row = sigs.(Graph.node_of_lit l) in
    if Graph.is_compl l then Array.map Int64.lognot row else row
  in
  Graph.iter_ands g (fun id ->
      let a = value (Graph.fanin0 g id) and b = value (Graph.fanin1 g id) in
      sigs.(id) <- Array.init words (fun w -> Int64.logand a.(w) b.(w)));
  sigs

let random g ~words ~seed = run g ~inputs:(random_inputs g ~words ~seed)

let lit_row sigs l =
  let row = sigs.(Graph.node_of_lit l) in
  if Graph.is_compl l then Array.map Int64.lognot row else row

let output_rows g sigs = Array.map (lit_row sigs) (Graph.pos g)

let prob_one row =
  let total = 64 * Array.length row in
  let ones =
    Array.fold_left
      (fun acc x ->
        let rec pop x acc =
          if x = 0L then acc
          else pop (Int64.logand x (Int64.sub x 1L)) (acc + 1)
        in
        pop x acc)
      0 row
  in
  float_of_int ones /. float_of_int total

let equal_outputs a b ~words ~seed =
  if Graph.num_pis a <> Graph.num_pis b || Graph.num_pos a <> Graph.num_pos b
  then false
  else begin
    let inputs = random_inputs a ~words ~seed in
    let sa = run a ~inputs and sb = run b ~inputs in
    let oa = output_rows a sa and ob = output_rows b sb in
    let ok = ref true in
    Array.iteri (fun i ra -> if ra <> ob.(i) then ok := false) oa;
    !ok
  end

let eval g values =
  if Array.length values <> Graph.num_pis g then
    invalid_arg "Sim.eval: wrong PI count";
  let v = Array.make (Graph.num_nodes g) false in
  Array.iteri (fun i x -> v.(i + 1) <- x) values;
  let value l =
    let x = v.(Graph.node_of_lit l) in
    if Graph.is_compl l then not x else x
  in
  Graph.iter_ands g (fun id ->
      v.(id) <- value (Graph.fanin0 g id) && value (Graph.fanin1 g id));
  Array.map value (Graph.pos g)
