(** NPN canonicalization of small Boolean functions.

    Two functions are NPN-equivalent when one can be obtained from the
    other by negating inputs (N), permuting inputs (P) and negating the
    output (N).  Canonicalization maps every function of up to 4
    variables to the lexicographically smallest truth table in its class;
    the rewrite library and the branching-cost tables are indexed by this
    canonical form. *)

type transform = {
  perm : int array;      (** new position of each input variable *)
  input_neg : int;       (** bitmask of negated inputs *)
  output_neg : bool;
}

val identity : int -> transform

val apply : Tt.t -> transform -> Tt.t

val canonicalize : Tt.t -> Tt.t * transform
(** [canonicalize f] returns the canonical representative and a
    transform [tr] such that [apply f tr] equals the representative.
    Exhaustive over all [2^(n+1) * n!] transforms; intended for n <= 4. *)

val num_classes : int -> int
(** Number of distinct NPN classes among all functions of exactly [n]
    variables (n <= 4); 222 for n = 4 counting all 2^16 functions. *)

val all_class_representatives : int -> Tt.t list
(** Canonical representatives of every class of [n]-variable functions
    (including those with smaller true support), n <= 4. *)
