lib/aig/cut.ml: Array Graph Int64 List Tt
