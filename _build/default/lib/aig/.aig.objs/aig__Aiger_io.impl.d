lib/aig/aiger_io.ml: Array Buffer Char Fun Graph Hashtbl List Printf String
