lib/aig/aiger_io.mli: Graph
