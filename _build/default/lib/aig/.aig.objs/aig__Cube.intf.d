lib/aig/cube.mli: Format Tt
