lib/aig/rng.ml: Array Float Int64
