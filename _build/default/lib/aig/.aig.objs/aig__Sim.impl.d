lib/aig/sim.ml: Array Graph Int64 Rng
