lib/aig/rng.mli:
