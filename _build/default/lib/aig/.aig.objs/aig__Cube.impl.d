lib/aig/cube.ml: Format List Tt
