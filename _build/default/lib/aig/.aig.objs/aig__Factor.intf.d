lib/aig/factor.mli: Cube Graph Tt
