lib/aig/dot.ml: Array Buffer Fun Graph Printf
