lib/aig/dot.mli: Graph
