lib/aig/isop.ml: Cube List Tt
