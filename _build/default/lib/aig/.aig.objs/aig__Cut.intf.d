lib/aig/cut.mli: Graph Tt
