lib/aig/exact.mli: Graph Tt
