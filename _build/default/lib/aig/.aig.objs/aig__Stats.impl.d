lib/aig/stats.ml: Array Format Graph
