lib/aig/npn.mli: Tt
