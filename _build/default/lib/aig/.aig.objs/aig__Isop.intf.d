lib/aig/isop.mli: Cube Tt
