lib/aig/sim.mli: Graph
