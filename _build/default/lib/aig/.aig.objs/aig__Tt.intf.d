lib/aig/tt.mli: Format
