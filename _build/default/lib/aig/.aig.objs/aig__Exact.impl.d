lib/aig/exact.ml: Array Graph Lazy List Tt
