lib/aig/tt.ml: Array Format Hashtbl Int64 List Printf Stdlib String
