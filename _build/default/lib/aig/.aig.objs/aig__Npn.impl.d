lib/aig/npn.ml: Array Hashtbl List Tt
