lib/aig/stats.mli: Format Graph
