lib/aig/factor.ml: Array Cube Exact Graph Hashtbl Isop List Option Tt
