(** Graphviz export of AIGs (complemented edges drawn dashed) — handy
    for debugging synthesis passes and for documentation figures. *)

val of_graph : ?name:string -> Graph.t -> string
(** DOT source; render with [dot -Tsvg]. *)

val to_file : ?name:string -> Graph.t -> string -> unit
