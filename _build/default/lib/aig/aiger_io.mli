(** ASCII AIGER ("aag") reading and writing.

    Covers the combinational subset of the format (no latches), which is
    what the preprocessing pipeline exchanges.  Reading tolerates AND
    definitions in any order and renumbers nodes canonically; writing
    emits the canonical numbering of {!Graph}. *)

exception Parse_error of string

val write_string : Graph.t -> string
val write_channel : Graph.t -> out_channel -> unit
val write_file : Graph.t -> string -> unit

val read_string : string -> Graph.t
(** Reads either format, dispatching on the ["aag"]/["aig"] magic.
    @raise Parse_error on malformed input. *)

val read_channel : in_channel -> Graph.t
val read_file : string -> Graph.t

(** {1 Binary format}

    The compact ["aig"] variant: AND gates are delta-compressed
    LEB128-style varints instead of ASCII triples — the format
    industrial AIG collections are distributed in. *)

val write_binary_string : Graph.t -> string
val write_binary_file : Graph.t -> string -> unit
