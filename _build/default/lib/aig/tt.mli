(** Bit-parallel truth tables for functions of up to 16 variables.

    A table over [n] variables stores [2^n] function values packed into
    64-bit words.  Variable [i] toggles with period [2^i] in the usual
    minterm ordering. *)

type t

val num_vars : t -> int

val create_const : int -> bool -> t
(** [create_const n v] is the constant-[v] function of [n] variables. *)

val var : int -> int -> t
(** [var n i] is the projection onto variable [i] among [n] variables. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t

val equal : t -> t -> bool
val is_const_false : t -> bool
val is_const_true : t -> bool

val get_bit : t -> int -> bool
(** [get_bit t m] is the function value on minterm [m]. *)

val set_bit : t -> int -> bool -> t
(** Functional update of one minterm. *)

val count_ones : t -> int

val cofactor : t -> int -> bool -> t
(** [cofactor t i v] fixes variable [i] to [v]; the result still ranges
    over [n] variables but no longer depends on variable [i]. *)

val depends_on : t -> int -> bool
(** Whether the function actually depends on variable [i]. *)

val support : t -> int list
(** Variables the function depends on, ascending. *)

val expand : t -> int -> int array -> t
(** [expand t n' perm] re-expresses [t] over [n'] variables where old
    variable [i] becomes new variable [perm.(i)].  Used to lift cut-local
    functions onto a merged leaf set. *)

val permute : t -> int array -> t
(** [permute t perm] renames variables within the same arity. *)

val flip : t -> int -> t
(** [flip t i] complements variable [i]. *)

val swap_adjacent : t -> int -> t
(** [swap_adjacent t i] exchanges variables [i] and [i+1]. *)

val of_int : int -> int -> t
(** [of_int n bits] builds an [n]-variable table (n <= 6) from the low
    [2^n] bits of [bits]. *)

val to_int : t -> int
(** Inverse of {!of_int} for n <= 6.  @raise Invalid_argument above 6. *)

val to_hex : t -> string

val hash : t -> int

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
