(** Cubes (product terms) over a fixed variable set.

    A cube is a conjunction of literals; variable [i] appears iff bit [i]
    of [mask] is set, with the polarity given by bit [i] of [pol]
    (1 = positive). *)

type t = { mask : int; pol : int }

val full : t
(** The empty product — the constant-true cube. *)

val num_literals : t -> int

val mem_pos : t -> int -> bool
val mem_neg : t -> int -> bool

val add_pos : t -> int -> t
val add_neg : t -> int -> t

val to_tt : int -> t -> Tt.t
(** [to_tt n c] is the characteristic function of [c] over [n] vars. *)

val literals : t -> (int * bool) list
(** [(var, positive)] pairs, ascending by variable. *)

val pp : Format.formatter -> t -> unit
