(** Irredundant sum-of-products covers (Minato–Morreale ISOP).

    Computes a prime, irredundant cover of a completely specified Boolean
    function given as a truth table.  The cover is the basis for both the
    LUT-to-CNF encoding and the branching-complexity cost metric of the
    cost-customized mapper (C(L) = |ISOP(f)| + |ISOP(not f)|). *)

val compute : Tt.t -> Cube.t list
(** [compute f] returns an irredundant prime cover of [f].  The constant
    false function yields the empty cover; constant true yields the
    single full cube. *)

val cover_tt : int -> Cube.t list -> Tt.t
(** [cover_tt n cubes] is the disjunction of the cubes over [n] vars. *)

val verify : Tt.t -> Cube.t list -> bool
(** [verify f cubes] checks that the cover computes exactly [f]. *)

val num_cubes : Tt.t -> int
(** [num_cubes f] = [List.length (compute f)]. *)

val literal_count : Cube.t list -> int
(** Total number of literals in the cover. *)
