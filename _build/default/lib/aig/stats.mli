(** Netlist statistics and the RL state features of the paper (§3.2.2).

    "Gates" follow the paper's AIG accounting: AND gates are the AND
    nodes, NOT gates are the complemented edges. *)

type snapshot = {
  area : int;        (** number of AND nodes *)
  depth : int;       (** logic depth *)
  wires : int;       (** fanin edges plus PO edges *)
  ands : int;
  nots : int;        (** complemented edges *)
  pis : int;
  balance : float;   (** average balance ratio, Eq. (1) *)
}

val snapshot : Graph.t -> snapshot

val balance_ratio : Graph.t -> float
(** Average over AND nodes of |d(p1) - d(p2)| / max(d(p1), d(p2)),
    terms with both predecessors at depth 0 contributing 0. *)

val features : initial:snapshot -> Graph.t -> float array
(** The six-dimensional state feature vector of §3.2.2: area, depth and
    wire ratios w.r.t. the initial snapshot, AND and NOT proportions,
    and the balance ratio. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
