(** k-feasible cut enumeration with local functions.

    A cut of node [n] is a set of "leaf" nodes such that every path from
    a PI to [n] passes through a leaf.  Each cut carries the function of
    [n] in terms of its leaves as a truth table packed into an [int64]
    (so [k <= 6]).  Cuts are the common currency of the rewriter and the
    LUT mapper. *)

type cut = {
  leaves : int array;  (** node ids, strictly ascending *)
  tt : int64;          (** low [2^|leaves|] bits: function of the node *)
}

val trivial : int -> cut
(** The unit cut [{n}] with the identity function. *)

val cut_tt : cut -> Tt.t
(** Local function as a {!Tt.t} over [|leaves|] variables. *)

val expand_tt : int64 -> int array -> int array -> int64
(** [expand_tt tt leaves union] re-expresses [tt] (a function of
    [leaves]) over the superset [union]; both arrays ascending. *)

val merge : k:int -> cut -> bool -> cut -> bool -> cut option
(** [merge ~k ca ca_compl cb cb_compl] is the cut for an AND node whose
    fanins are the cut roots with the given complementations, or [None]
    if the leaf union exceeds [k]. *)

val dominates : cut -> cut -> bool
(** [dominates a b] when [a]'s leaves are a subset of [b]'s. *)

type sets
(** Per-node cut sets for a whole AIG. *)

val enumerate : Graph.t -> k:int -> limit:int -> sets
(** Bottom-up enumeration keeping at most [limit] nontrivial cuts per
    node (smallest first), plus the trivial cut. *)

val cuts : sets -> int -> cut list
(** Cuts of a node (PIs have only the trivial cut). *)
