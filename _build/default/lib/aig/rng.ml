type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: nonpositive bound";
  (* Keep 62 bits so the OCaml int stays nonnegative. *)
  let x = Int64.to_int (Int64.shift_right_logical (next64 r) 2) in
  x mod bound

let float r =
  let x = Int64.to_float (Int64.shift_right_logical (next64 r) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool r = Int64.logand (next64 r) 1L = 1L

let gaussian r =
  let u1 = max 1e-12 (float r) and u2 = float r in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
