type cut = { leaves : int array; tt : int64 }

let trivial n = { leaves = [| n |]; tt = 2L (* f = x0 *) }

let cut_tt c =
  let k = Array.length c.leaves in
  let t = ref (Tt.create_const k false) in
  for m = 0 to (1 lsl k) - 1 do
    if Int64.logand (Int64.shift_right_logical c.tt m) 1L = 1L then
      t := Tt.set_bit !t m true
  done;
  !t

let expand_tt tt leaves union =
  let k = Array.length union in
  (* Position of each leaf variable within the union. *)
  let pos =
    Array.map
      (fun leaf ->
        let rec find i =
          if union.(i) = leaf then i else find (i + 1)
        in
        find 0)
      leaves
  in
  let r = ref 0L in
  for m = 0 to (1 lsl k) - 1 do
    let child_m = ref 0 in
    Array.iteri
      (fun i p -> if m land (1 lsl p) <> 0 then child_m := !child_m lor (1 lsl i))
      pos;
    if Int64.logand (Int64.shift_right_logical tt !child_m) 1L = 1L then
      r := Int64.logor !r (Int64.shift_left 1L m)
  done;
  !r

let union_sorted a b k =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (la + lb) 0 in
  let rec loop i j n =
    if n > k then None
    else if i >= la && j >= lb then Some (Array.sub buf 0 n)
    else if j >= lb || (i < la && a.(i) < b.(j)) then begin
      buf.(n) <- a.(i);
      loop (i + 1) j (n + 1)
    end
    else if i >= la || b.(j) < a.(i) then begin
      buf.(n) <- b.(j);
      loop i (j + 1) (n + 1)
    end
    else begin
      buf.(n) <- a.(i);
      loop (i + 1) (j + 1) (n + 1)
    end
  in
  loop 0 0 0

let full_mask k = Int64.sub (Int64.shift_left 1L (1 lsl k)) 1L

let merge ~k ca ca_compl cb cb_compl =
  match union_sorted ca.leaves cb.leaves k with
  | None -> None
  | Some union ->
    let kk = Array.length union in
    let ta = expand_tt ca.tt ca.leaves union in
    let tb = expand_tt cb.tt cb.leaves union in
    let ta = if ca_compl then Int64.logxor ta (full_mask kk) else ta in
    let tb = if cb_compl then Int64.logxor tb (full_mask kk) else tb in
    Some { leaves = union; tt = Int64.logand ta tb }

let dominates a b =
  let la = Array.length a.leaves and lb = Array.length b.leaves in
  la <= lb
  &&
  let rec subset i j =
    if i >= la then true
    else if j >= lb then false
    else if a.leaves.(i) = b.leaves.(j) then subset (i + 1) (j + 1)
    else if a.leaves.(i) > b.leaves.(j) then subset i (j + 1)
    else false
  in
  subset 0 0

type sets = cut list array

let enumerate g ~k ~limit =
  if k < 2 || k > 6 then invalid_arg "Cut.enumerate: k must be in 2..6";
  let sets = Array.make (Graph.num_nodes g) [] in
  for i = 0 to Graph.num_pis g - 1 do
    sets.(i + 1) <- [ trivial (i + 1) ]
  done;
  Graph.iter_ands g (fun id ->
      let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
      let n0 = Graph.node_of_lit f0 and n1 = Graph.node_of_lit f1 in
      let c0 = Graph.is_compl f0 and c1 = Graph.is_compl f1 in
      let merged = ref [] in
      List.iter
        (fun ca ->
          List.iter
            (fun cb ->
              match merge ~k ca c0 cb c1 with
              | Some c -> merged := c :: !merged
              | None -> ())
            sets.(n1))
        sets.(n0);
      (* Remove duplicates and dominated cuts, keep the smallest. *)
      let cmp a b =
        let d = compare (Array.length a.leaves) (Array.length b.leaves) in
        if d <> 0 then d else compare a.leaves b.leaves
      in
      let cs = List.sort_uniq cmp !merged in
      let kept =
        List.fold_left
          (fun acc c ->
            if List.exists (fun c' -> dominates c' c) acc then acc
            else c :: acc)
          [] cs
        |> List.rev
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      sets.(id) <- take limit kept @ [ trivial id ]);
  sets

let cuts sets id = sets.(id)
