(** Bit-parallel random simulation of AIGs.

    Simulates 64 patterns per word.  Signatures drive the DeepGate-style
    embedding, SAT sweeping candidate detection and the probabilistic
    equivalence checks in the test-suite. *)

type signatures = int64 array array
(** [sigs.(node).(w)] — one row of [words] 64-bit words per node. *)

val random_inputs : Graph.t -> words:int -> seed:int -> int64 array array
(** Fresh random input patterns, one row per PI. *)

val run : Graph.t -> inputs:int64 array array -> signatures
(** Simulate with the given PI patterns; [inputs] has [num_pis] rows. *)

val random : Graph.t -> words:int -> seed:int -> signatures
(** [run] on [random_inputs]. *)

val lit_row : signatures -> Graph.lit -> int64 array
(** Signature of a literal (complementing the node row if needed). *)

val output_rows : Graph.t -> signatures -> int64 array array
(** Signatures of the primary outputs. *)

val prob_one : int64 array -> float
(** Fraction of simulated patterns on which the signature is 1. *)

val equal_outputs : Graph.t -> Graph.t -> words:int -> seed:int -> bool
(** Probabilistic output equivalence of two AIGs with identical PI
    counts under shared random patterns.  [false] is definitive;
    [true] may rarely be a false positive. *)

val eval : Graph.t -> bool array -> bool array
(** Single-pattern evaluation: PI values in, PO values out. *)
