let lit_of g leaves (v, positive) =
  ignore g;
  Graph.lit_not_cond leaves.(v) (not positive)

let cube_to_aig g ~leaves c =
  Graph.and_list g (List.map (lit_of g leaves) (Cube.literals c))

(* Most frequent literal across the cubes (variable, polarity), or None
   when no literal appears in two or more cubes. *)
let best_literal cubes =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun lit ->
          let n = Option.value (Hashtbl.find_opt counts lit) ~default:0 in
          Hashtbl.replace counts lit (n + 1))
        (Cube.literals c))
    cubes;
  Hashtbl.fold
    (fun lit n best ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ when n >= 2 -> Some (lit, n)
      | _ -> best)
    counts None

let remove_literal (v, positive) c =
  let keep = List.filter (fun l -> l <> (v, positive)) (Cube.literals c) in
  List.fold_left
    (fun acc (v, pos) -> if pos then Cube.add_pos acc v else Cube.add_neg acc v)
    Cube.full keep

let has_literal (v, positive) c =
  if positive then Cube.mem_pos c v else Cube.mem_neg c v

let rec sop_to_aig g ~leaves cubes =
  match cubes with
  | [] -> Graph.const_false
  | [ c ] -> cube_to_aig g ~leaves c
  | _ -> (
    match best_literal cubes with
    | None ->
      Graph.or_list g (List.map (cube_to_aig g ~leaves) cubes)
    | Some (lit, _) ->
      let quotient, remainder = List.partition (has_literal lit) cubes in
      let q = sop_to_aig g ~leaves (List.map (remove_literal lit) quotient) in
      let head = Graph.and_ g (lit_of g leaves lit) q in
      if remainder = [] then head
      else Graph.or_ g head (sop_to_aig g ~leaves remainder))

let tt_to_aig g ~leaves f =
  if Tt.num_vars f <> Array.length leaves then
    invalid_arg "Factor.tt_to_aig: arity mismatch";
  if Tt.num_vars f <= 3 then Exact.build g ~leaves f
  else
  let on = Isop.compute f and off = Isop.compute (Tt.not_ f) in
  let cost cs = (2 * Isop.literal_count cs) + List.length cs in
  if cost on <= cost off then sop_to_aig g ~leaves on
  else Graph.lit_not (sop_to_aig g ~leaves off)
