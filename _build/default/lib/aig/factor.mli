(** Building AIG structure from Boolean functions.

    Converts a function (given as a truth table or an SOP cover over a
    set of leaf literals) into AND/INV structure, using literal-division
    factoring to share common subexpressions.  Used by the rewriter and
    the refactoring pass to synthesize candidate replacements. *)

val cube_to_aig : Graph.t -> leaves:Graph.lit array -> Cube.t -> Graph.lit

val sop_to_aig : Graph.t -> leaves:Graph.lit array -> Cube.t list -> Graph.lit
(** Factored realization of a cube cover: recursively divides the cover
    by its most frequent literal, producing [l * quotient + remainder]
    structure instead of a flat two-level network. *)

val tt_to_aig : Graph.t -> leaves:Graph.lit array -> Tt.t -> Graph.lit
(** Builds the function from whichever of ISOP(f) / ISOP(not f) has the
    fewer literals, complementing the root in the latter case; for up
    to 3 variables the exact minimal tree from {!Exact} is used
    instead.  The truth table arity must equal [Array.length leaves]. *)
