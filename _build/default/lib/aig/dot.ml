let of_graph ?(name = "aig") g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=BT;\n";
  Buffer.add_string buf
    "  node [shape=circle, fontsize=10, width=0.4, fixedsize=true];\n";
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [shape=triangle, label=\"x%d\"];\n" (i + 1) i)
  done;
  Graph.iter_ands g (fun id ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"∧\"];\n" id);
      let edge l =
        let src = Graph.node_of_lit l in
        let style = if Graph.is_compl l then " [style=dashed]" else "" in
        if src = 0 then
          Buffer.add_string buf
            (Printf.sprintf "  const [shape=box, label=\"0\"];\n  const -> n%d%s;\n"
               id style)
        else
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" src id style)
      in
      edge (Graph.fanin0 g id);
      edge (Graph.fanin1 g id));
  Array.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [shape=invtriangle, label=\"y%d\"];\n" i i);
      let src = Graph.node_of_lit l in
      let style = if Graph.is_compl l then " [style=dashed]" else "" in
      if src = 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  const [shape=box, label=\"0\"];\n  const -> o%d%s;\n" i style)
      else
        Buffer.add_string buf (Printf.sprintf "  n%d -> o%d%s;\n" src i style))
    (Graph.pos g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_graph ?name g))
