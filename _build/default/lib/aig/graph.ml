type lit = int

let lit_of_node id compl = (id lsl 1) lor (if compl then 1 else 0)
let node_of_lit l = l lsr 1
let is_compl l = l land 1 = 1
let lit_not l = l lxor 1
let lit_not_cond l c = if c then l lxor 1 else l
let const_false = 0
let const_true = 1

type t = {
  mutable fan0 : int array;
  mutable fan1 : int array;
  mutable n : int; (* nodes used, including constant and PIs *)
  npis : int;
  mutable outs : int array;
  mutable nouts : int;
  strash : (int, int) Hashtbl.t; (* key = fan0 * 2^31ish + fan1 packed *)
}

(* Strash key: fanins are each < 2 * n; pack into one int (63-bit ints). *)
let key a b = (a lsl 31) lor b

let create ~num_pis =
  if num_pis < 0 then invalid_arg "Graph.create: negative num_pis";
  let cap = max 16 (2 * (num_pis + 1)) in
  {
    fan0 = Array.make cap 0;
    fan1 = Array.make cap 0;
    n = num_pis + 1;
    npis = num_pis;
    outs = Array.make 4 0;
    nouts = 0;
    strash = Hashtbl.create 1024;
  }

let num_pis g = g.npis
let num_pos g = g.nouts
let num_nodes g = g.n
let num_ands g = g.n - g.npis - 1

let pi g i =
  if i < 0 || i >= g.npis then invalid_arg "Graph.pi: index out of range";
  lit_of_node (i + 1) false

let is_pi g id = id >= 1 && id <= g.npis
let is_and g id = id > g.npis && id < g.n

let fanin0 g id =
  if not (is_and g id) then invalid_arg "Graph.fanin0: not an AND node";
  g.fan0.(id)

let fanin1 g id =
  if not (is_and g id) then invalid_arg "Graph.fanin1: not an AND node";
  g.fan1.(id)

let po g i =
  if i < 0 || i >= g.nouts then invalid_arg "Graph.po: index out of range";
  g.outs.(i)

let pos g = Array.sub g.outs 0 g.nouts

let grow g =
  let cap = Array.length g.fan0 in
  if g.n >= cap then begin
    let cap' = 2 * cap in
    let f0 = Array.make cap' 0 and f1 = Array.make cap' 0 in
    Array.blit g.fan0 0 f0 0 g.n;
    Array.blit g.fan1 0 f1 0 g.n;
    g.fan0 <- f0;
    g.fan1 <- f1
  end

let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  assert (b < 2 * g.n);
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = lit_not b then const_false
  else
    let k = key a b in
    match Hashtbl.find_opt g.strash k with
    | Some id -> lit_of_node id false
    | None ->
      grow g;
      let id = g.n in
      g.fan0.(id) <- a;
      g.fan1.(id) <- b;
      g.n <- id + 1;
      Hashtbl.add g.strash k id;
      lit_of_node id false

let or_ g a b = lit_not (and_ g (lit_not a) (lit_not b))

let xor_ g a b =
  (* a xor b = (a or b) and not (a and b) *)
  and_ g (or_ g a b) (lit_not (and_ g a b))

let mux_ g sel t e = or_ g (and_ g sel t) (and_ g (lit_not sel) e)

(* Balanced reduction keeps depth logarithmic for wide gates. *)
let rec reduce_balanced g op = function
  | [] -> invalid_arg "reduce_balanced: empty"
  | [ x ] -> x
  | xs ->
    let rec pair acc = function
      | [] -> List.rev acc
      | [ x ] -> List.rev (x :: acc)
      | x :: y :: rest -> pair (op g x y :: acc) rest
    in
    reduce_balanced g op (pair [] xs)

let and_list g = function
  | [] -> const_true
  | xs -> reduce_balanced g and_ xs

let or_list g = function
  | [] -> const_false
  | xs -> reduce_balanced g or_ xs

let add_po g l =
  assert (l < 2 * g.n);
  if g.nouts >= Array.length g.outs then begin
    let outs' = Array.make (2 * Array.length g.outs) 0 in
    Array.blit g.outs 0 outs' 0 g.nouts;
    g.outs <- outs'
  end;
  g.outs.(g.nouts) <- l;
  g.nouts <- g.nouts + 1

let set_po g i l =
  if i < 0 || i >= g.nouts then invalid_arg "Graph.set_po: index out of range";
  assert (l < 2 * g.n);
  g.outs.(i) <- l

let iter_ands g f =
  for id = g.npis + 1 to g.n - 1 do
    f id
  done

let fold_ands g ~init ~f =
  let acc = ref init in
  iter_ands g (fun id -> acc := f !acc id);
  !acc

let levels g =
  let lv = Array.make g.n 0 in
  iter_ands g (fun id ->
      let l0 = lv.(node_of_lit g.fan0.(id))
      and l1 = lv.(node_of_lit g.fan1.(id)) in
      lv.(id) <- 1 + max l0 l1);
  lv

let depth g =
  let lv = levels g in
  let d = ref 0 in
  for i = 0 to g.nouts - 1 do
    d := max !d lv.(node_of_lit g.outs.(i))
  done;
  !d

let ref_counts g =
  let rc = Array.make g.n 0 in
  iter_ands g (fun id ->
      rc.(node_of_lit g.fan0.(id)) <- rc.(node_of_lit g.fan0.(id)) + 1;
      rc.(node_of_lit g.fan1.(id)) <- rc.(node_of_lit g.fan1.(id)) + 1);
  for i = 0 to g.nouts - 1 do
    let id = node_of_lit g.outs.(i) in
    rc.(id) <- rc.(id) + 1
  done;
  rc

let num_inverted_edges g =
  let count = ref 0 in
  iter_ands g (fun id ->
      if is_compl g.fan0.(id) then incr count;
      if is_compl g.fan1.(id) then incr count);
  for i = 0 to g.nouts - 1 do
    if is_compl g.outs.(i) then incr count
  done;
  !count

type mark = int

let mark g = g.n
let nodes_since g m = g.n - m

let rollback g m =
  if m < g.npis + 1 || m > g.n then invalid_arg "Graph.rollback: bad mark";
  for id = m to g.n - 1 do
    Hashtbl.remove g.strash (key g.fan0.(id) g.fan1.(id))
  done;
  g.n <- m

let copy g =
  {
    fan0 = Array.copy g.fan0;
    fan1 = Array.copy g.fan1;
    n = g.n;
    npis = g.npis;
    outs = Array.copy g.outs;
    nouts = g.nouts;
    strash = Hashtbl.copy g.strash;
  }

let compose g f =
  let g' = create ~num_pis:g.npis in
  let new_pis = Array.init g.npis (fun i -> pi g' i) in
  let new_pos = f g' new_pis in
  Array.iter (add_po g') new_pos;
  g'

let cleanup g =
  let reachable = Array.make g.n false in
  reachable.(0) <- true;
  (* Explicit stack: constraint chains from CNF recovery can be tens of
     thousands of levels deep. *)
  let stack = ref [] in
  let visit id = stack := id :: !stack;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        if not reachable.(id) then begin
          reachable.(id) <- true;
          if is_and g id then
            stack :=
              node_of_lit g.fan0.(id) :: node_of_lit g.fan1.(id) :: !stack
        end
    done
  in
  for i = 0 to g.nouts - 1 do
    visit (node_of_lit g.outs.(i))
  done;
  compose g (fun g' new_pis ->
      let map = Array.make g.n const_false in
      for i = 0 to g.npis - 1 do
        map.(i + 1) <- new_pis.(i)
      done;
      let map_lit l = lit_not_cond map.(node_of_lit l) (is_compl l) in
      iter_ands g (fun id ->
          if reachable.(id) then
            map.(id) <- and_ g' (map_lit g.fan0.(id)) (map_lit g.fan1.(id)));
      Array.map map_lit (pos g))

let equal_structure a b =
  a.npis = b.npis && a.n = b.n && a.nouts = b.nouts
  && (let ok = ref true in
      iter_ands a (fun id ->
          if a.fan0.(id) <> b.fan0.(id) || a.fan1.(id) <> b.fan1.(id) then
            ok := false);
      !ok)
  &&
  let ok = ref true in
  for i = 0 to a.nouts - 1 do
    if a.outs.(i) <> b.outs.(i) then ok := false
  done;
  !ok

let pp_stats ppf g =
  Format.fprintf ppf "pis=%d pos=%d ands=%d depth=%d" (num_pis g) (num_pos g)
    (num_ands g) (depth g)
