type t = { n : int; w : int64 array }

(* Tables over n <= 6 variables use a single word whose high bits beyond
   2^n are kept zero; larger tables use 2^(n-6) full words. *)

let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

let word_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let num_vars t = t.n

let create_const n v =
  if n < 0 || n > 16 then invalid_arg "Tt.create_const: arity out of range";
  let fill = if v then word_mask n else 0L in
  { n; w = Array.make (nwords n) fill }

(* Repeating bit patterns for variables 0..5 within one word. *)
let var_masks =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

let var n i =
  if i < 0 || i >= n then invalid_arg "Tt.var: index out of range";
  let words = nwords n in
  let w =
    if i < 6 then Array.make words (Int64.logand var_masks.(i) (word_mask n))
    else
      Array.init words (fun k ->
          if k land (1 lsl (i - 6)) <> 0 then -1L else 0L)
  in
  { n; w }

let map2 f a b =
  if a.n <> b.n then invalid_arg "Tt: arity mismatch";
  { n = a.n; w = Array.init (Array.length a.w) (fun i -> f a.w.(i) b.w.(i)) }

let not_ a =
  let m = word_mask a.n in
  { a with w = Array.map (fun x -> Int64.logand (Int64.lognot x) m) a.w }

let and_ = map2 Int64.logand
let or_ = map2 Int64.logor
let xor_ = map2 Int64.logxor
let equal a b = a.n = b.n && a.w = b.w
let is_const_false a = Array.for_all (fun x -> x = 0L) a.w
let is_const_true a = equal a (create_const a.n true)

let get_bit t m =
  let word = m lsr 6 and bit = m land 63 in
  Int64.logand (Int64.shift_right_logical t.w.(word) bit) 1L = 1L

let set_bit t m v =
  let word = m lsr 6 and bit = m land 63 in
  let w = Array.copy t.w in
  let mask = Int64.shift_left 1L bit in
  w.(word) <-
    (if v then Int64.logor w.(word) mask
     else Int64.logand w.(word) (Int64.lognot mask));
  { t with w }

let popcount64 x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let count_ones t = Array.fold_left (fun acc x -> acc + popcount64 x) 0 t.w

let cofactor t i v =
  let vi = var t.n i in
  let mask = if v then vi else not_ vi in
  let proj = and_ t mask in
  (* Mirror the kept half onto the other half so the result is
     independent of variable i. *)
  let shift = 1 lsl i in
  if i < 6 then
    let w =
      Array.map
        (fun x ->
          if v then Int64.logor x (Int64.shift_right_logical x shift)
          else Int64.logor x (Int64.shift_left x shift))
        proj.w
    in
    let m = word_mask t.n in
    { n = t.n; w = Array.map (fun x -> Int64.logand x m) w }
  else
    let stride = 1 lsl (i - 6) in
    let w = Array.copy proj.w in
    let words = Array.length w in
    let k = ref 0 in
    while !k < words do
      for j = 0 to stride - 1 do
        let lo = !k + j and hi = !k + stride + j in
        if v then w.(lo) <- w.(hi) else w.(hi) <- w.(lo)
      done;
      k := !k + (2 * stride)
    done;
    { n = t.n; w }

let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

let support t =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if depends_on t i then i :: acc else acc)
  in
  loop (t.n - 1) []

let expand t n' perm =
  if Array.length perm <> t.n then invalid_arg "Tt.expand: bad permutation";
  let r = ref (create_const n' false) in
  for m = 0 to (1 lsl t.n) - 1 do
    if get_bit t m then begin
      (* Minterm m of t becomes a cube over the new variables: variables
         in perm are fixed, the rest are free. *)
      let cube = ref (create_const n' true) in
      for i = 0 to t.n - 1 do
        let v = var n' perm.(i) in
        cube := and_ !cube (if m land (1 lsl i) <> 0 then v else not_ v)
      done;
      r := or_ !r !cube
    end
  done;
  !r

let permute t perm = expand t t.n perm

let flip t i =
  let c0 = cofactor t i false and c1 = cofactor t i true in
  let vi = var t.n i in
  or_ (and_ vi c0) (and_ (not_ vi) c1)

let swap_adjacent t i =
  if i < 0 || i + 1 >= t.n then invalid_arg "Tt.swap_adjacent";
  let perm = Array.init t.n (fun j ->
      if j = i then i + 1 else if j = i + 1 then i else j)
  in
  permute t perm

let of_int n bits =
  if n > 6 then invalid_arg "Tt.of_int: arity above 6";
  let w = Int64.logand (Int64.of_int bits) (word_mask n) in
  { n; w = [| w |] }

let to_int t =
  if t.n > 6 then invalid_arg "Tt.to_int: arity above 6";
  Int64.to_int t.w.(0)

let to_hex t =
  String.concat ""
    (List.rev_map (Printf.sprintf "%016Lx") (Array.to_list t.w))

let hash t = Hashtbl.hash (t.n, t.w)
let compare a b = Stdlib.compare (a.n, a.w) (b.n, b.w)
let pp ppf t = Format.fprintf ppf "tt%d:%s" t.n (to_hex t)
