(** Exact tree synthesis of functions with up to 3 variables.

    A one-time dynamic program enumerates, for all 256 3-variable
    functions, a minimum-node AND/INV tree implementation (output
    complementation is free in an AIG).  The rewriter consults this
    instead of generic factoring for narrow cut functions — the same
    role ABC's precomputed subgraph library plays for its rewriting. *)

type expr =
  | Const_true
  | Var of int                       (** variable index 0..2 *)
  | And of expr * bool * expr * bool (** children with complement flags *)

val size : expr -> int
(** AND-node count of the tree. *)

val lookup : Tt.t -> expr * bool
(** [lookup f] for [f] of up to 3 variables: a minimum-size tree and
    whether its output must be complemented to realize [f].
    @raise Invalid_argument above 3 variables. *)

val optimal_size : Tt.t -> int
(** Tree-node count of the optimal implementation. *)

val build : Graph.t -> leaves:Graph.lit array -> Tt.t -> Graph.lit
(** Materialize the optimal tree over the given leaf literals
    (structural hashing may share nodes, so the realized cost can be
    even lower). *)
