lib/workloads/suites.ml: Aig Cnf Eda4sat Lec List Printf Satcomp
