lib/workloads/arith.mli: Aig
