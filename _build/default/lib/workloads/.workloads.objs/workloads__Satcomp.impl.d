lib/workloads/satcomp.ml: Aig Array Cnf Fun Hashtbl List Option
