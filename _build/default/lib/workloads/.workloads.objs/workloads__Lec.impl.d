lib/workloads/lec.ml: Aig Array List Synth
