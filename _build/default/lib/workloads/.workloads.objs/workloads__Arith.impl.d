lib/workloads/arith.ml: Aig Array Lec List
