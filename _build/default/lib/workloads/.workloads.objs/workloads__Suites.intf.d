lib/workloads/suites.mli: Aig Cnf Eda4sat
