lib/workloads/lec.mli: Aig
