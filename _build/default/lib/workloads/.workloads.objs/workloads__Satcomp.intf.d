lib/workloads/satcomp.mli: Cnf
