let random_circuit ~seed ~num_pis ~num_ands ~num_pos =
  let rng = Aig.Rng.create seed in
  let g = Aig.Graph.create ~num_pis in
  let lits = Array.make (num_pis + num_ands) Aig.Graph.const_false in
  for i = 0 to num_pis - 1 do
    lits.(i) <- Aig.Graph.pi g i
  done;
  let count = ref num_pis in
  (* Bias fanin choice toward recent literals: depth grows with size,
     as in real multi-level logic, instead of staying logarithmic. *)
  let pick () =
    let n = !count in
    let idx =
      if Aig.Rng.float rng < 0.6 then n - 1 - Aig.Rng.int rng (min n 12)
      else Aig.Rng.int rng n
    in
    Aig.Graph.lit_not_cond lits.(idx) (Aig.Rng.bool rng)
  in
  (* Mixed gate types: pure AND logic degenerates toward constants and
     yields trivial miters; real LEC instances (datapaths, parity
     trees) are XOR/MUX-rich, which is also what makes them hard for
     CDCL (§3.3.2 cites exactly this observation). *)
  let created = ref 0 and attempts = ref 0 in
  while !created < num_ands && !attempts < 50 * num_ands do
    incr attempts;
    let before = Aig.Graph.num_nodes g in
    let l =
      match Aig.Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> Aig.Graph.and_ g (pick ()) (pick ())
      | 4 | 5 | 6 -> Aig.Graph.xor_ g (pick ()) (pick ())
      | 7 | 8 -> Aig.Graph.mux_ g (pick ()) (pick ()) (pick ())
      | _ ->
        (* Majority-of-three: the carry function of a full adder. *)
        let a = pick () and b = pick () and c = pick () in
        Aig.Graph.or_ g
          (Aig.Graph.and_ g a b)
          (Aig.Graph.and_ g c (Aig.Graph.or_ g a b))
    in
    let added = Aig.Graph.num_nodes g - before in
    (* Count fresh nodes so the requested size is met. *)
    if added > 0 then begin
      lits.(!count) <- l;
      incr count;
      created := !created + added
    end
  done;
  (* Outputs from the deepest recent nodes. *)
  for i = 0 to num_pos - 1 do
    let idx = !count - 1 - (i mod max 1 (min 8 !count)) in
    Aig.Graph.add_po g (Aig.Graph.lit_not_cond lits.(idx) (i land 1 = 1))
  done;
  g

let copy_into dst pis src =
  let map = Array.make (Aig.Graph.num_nodes src) Aig.Graph.const_false in
  for i = 0 to Aig.Graph.num_pis src - 1 do
    map.(i + 1) <- pis.(i)
  done;
  let map_lit l =
    Aig.Graph.lit_not_cond map.(Aig.Graph.node_of_lit l) (Aig.Graph.is_compl l)
  in
  Aig.Graph.iter_ands src (fun id ->
      map.(id) <-
        Aig.Graph.and_ dst
          (map_lit (Aig.Graph.fanin0 src id))
          (map_lit (Aig.Graph.fanin1 src id)));
  Array.map map_lit (Aig.Graph.pos src)

let miter a b =
  if
    Aig.Graph.num_pis a <> Aig.Graph.num_pis b
    || Aig.Graph.num_pos a <> Aig.Graph.num_pos b
  then invalid_arg "Lec.miter: interface mismatch";
  let g = Aig.Graph.create ~num_pis:(Aig.Graph.num_pis a) in
  let pis = Array.init (Aig.Graph.num_pis a) (Aig.Graph.pi g) in
  let oa = copy_into g pis a and ob = copy_into g pis b in
  let diffs =
    Array.to_list (Array.mapi (fun i la -> Aig.Graph.xor_ g la ob.(i)) oa)
  in
  Aig.Graph.add_po g (Aig.Graph.or_list g diffs);
  g

let inject_fault ~seed g =
  let rng = Aig.Rng.create seed in
  if Aig.Graph.num_ands g = 0 then Aig.Graph.copy g
  else begin
    let victim =
      Aig.Graph.num_pis g + 1 + Aig.Rng.int rng (Aig.Graph.num_ands g)
    in
    let flip_first = Aig.Rng.bool rng in
    Aig.Graph.compose g (fun g' pis ->
        let map = Array.make (Aig.Graph.num_nodes g) Aig.Graph.const_false in
        Array.iteri (fun i l -> map.(i + 1) <- l) pis;
        let map_lit l =
          Aig.Graph.lit_not_cond
            map.(Aig.Graph.node_of_lit l)
            (Aig.Graph.is_compl l)
        in
        Aig.Graph.iter_ands g (fun id ->
            let f0 = map_lit (Aig.Graph.fanin0 g id)
            and f1 = map_lit (Aig.Graph.fanin1 g id) in
            let f0, f1 =
              if id = victim then
                if flip_first then (Aig.Graph.lit_not f0, f1)
                else (f0, Aig.Graph.lit_not f1)
              else (f0, f1)
            in
            map.(id) <- Aig.Graph.and_ g' f0 f1);
        Array.map map_lit (Aig.Graph.pos g))
  end

(* Function-preserving structural diversification: rebuild the circuit
   re-expressing a fraction of the nodes through a random cut's
   ISOP-factored form, gain or no gain.  Plain resynthesis is not
   enough here — on redundancy-free random logic it converges to the
   same structure, and the miter halves would strash-merge away. *)
let perturb ~seed g =
  let rng = Aig.Rng.create seed in
  let sets = Aig.Cut.enumerate g ~k:4 ~limit:6 in
  Aig.Graph.compose g (fun g' pis ->
      let map = Array.make (Aig.Graph.num_nodes g) Aig.Graph.const_false in
      Array.iteri (fun i l -> map.(i + 1) <- l) pis;
      let map_lit l =
        Aig.Graph.lit_not_cond
          map.(Aig.Graph.node_of_lit l)
          (Aig.Graph.is_compl l)
      in
      Aig.Graph.iter_ands g (fun id ->
          let default () =
            Aig.Graph.and_ g'
              (map_lit (Aig.Graph.fanin0 g id))
              (map_lit (Aig.Graph.fanin1 g id))
          in
          let candidates =
            List.filter
              (fun c ->
                Array.length c.Aig.Cut.leaves >= 3
                && not (Array.mem id c.Aig.Cut.leaves))
              (Aig.Cut.cuts sets id)
          in
          map.(id) <-
            (match candidates with
             | [] -> default ()
             | cs when Aig.Rng.float rng < 0.4 ->
               let c = List.nth cs (Aig.Rng.int rng (List.length cs)) in
               let leaves = Array.map (fun n -> map.(n)) c.Aig.Cut.leaves in
               Aig.Factor.tt_to_aig g' ~leaves (Aig.Cut.cut_tt c)
             | _ -> default ()));
      Array.map map_lit (Aig.Graph.pos g))

let generate ?(buggy = false) ~seed ~num_pis ~num_ands () =
  let golden = random_circuit ~seed ~num_pis ~num_ands ~num_pos:2 in
  let revised =
    if not buggy then golden
    else begin
      (* An injected fault can be functionally masked; retry until the
         fault is observable so the miter is really satisfiable. *)
      let rec try_fault k =
        let faulty = inject_fault ~seed:(seed + 1 + k) golden in
        if
          k < 50
          && Aig.Sim.equal_outputs golden faulty ~words:16 ~seed:(seed + 77)
        then try_fault (k + 1)
        else faulty
      in
      try_fault 0
    end
  in
  (* Structural diversification + resynthesis of the copy, as
     post-synthesis LEC inputs would differ from their golden RTL. *)
  let revised = perturb ~seed:(seed + 2) revised in
  let revised = Synth.Balance.run revised in
  miter golden revised

let training_set ~seed ~count ~min_ands ~max_ands =
  let rng = Aig.Rng.create seed in
  Array.init count (fun i ->
      let num_ands = min_ands + Aig.Rng.int rng (max 1 (max_ands - min_ands)) in
      let num_pis = 8 + Aig.Rng.int rng 24 in
      let buggy = i mod 3 = 0 in
      generate ~buggy ~seed:(seed + (1000 * (i + 1))) ~num_pis ~num_ands ())
