(** Logic-equivalence-checking workload generation.

    The paper's I1-I5 and the 200-instance training set are industrial
    LEC miters (single primary output, tens of thousands of gates).
    Those are proprietary; this module generates the synthetic
    equivalent: a random multi-level circuit, a structurally perturbed
    equivalent copy (resynthesized with our own passes), and the miter
    of the two.  UNSAT miters model true equivalence; optionally a fault
    is injected into the copy first, giving satisfiable miters. *)

val random_circuit :
  seed:int -> num_pis:int -> num_ands:int -> num_pos:int -> Aig.Graph.t
(** Layered random AIG; fanins are biased toward recent nodes so depth
    grows realistically with size. *)

val miter : Aig.Graph.t -> Aig.Graph.t -> Aig.Graph.t
(** Single-output miter over shared PIs: OR of pairwise output XORs.
    @raise Invalid_argument on PI/PO count mismatch. *)

val inject_fault : seed:int -> Aig.Graph.t -> Aig.Graph.t
(** Copy with one random AND fanin complemented. *)

val generate :
  ?buggy:bool -> seed:int -> num_pis:int -> num_ands:int -> unit -> Aig.Graph.t
(** A complete LEC miter: circuit vs. resynthesized (optionally
    faulted) copy.  [buggy] (default false) makes it satisfiable. *)

val training_set :
  seed:int -> count:int -> min_ands:int -> max_ands:int -> Aig.Graph.t array
(** Mixed-size, mixed-satisfiability miters in the spirit of Table 1. *)

val perturb : seed:int -> Aig.Graph.t -> Aig.Graph.t
(** Function-preserving structural diversification: re-expresses a
    random fraction of nodes through their cut functions, so the result
    is equivalent but does not strash-merge with the original. *)
