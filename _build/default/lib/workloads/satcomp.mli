(** SAT-competition-style CNF families (the C1-C8 stand-ins).

    The paper's C1-C8 come from the SAT Competition 2022 benchmark set
    and "exhibit diverse distributions" with no natural circuit
    structure (§4.5-4.6).  These generators produce the classic
    families that dominate such sets: pigeonhole, random k-SAT around
    the phase transition, CNF-XOR, graph coloring and the round-robin
    scheduling encoding the paper's introduction cites. *)

val pigeonhole : pigeons:int -> holes:int -> Cnf.Formula.t
(** Unsatisfiable when [pigeons > holes]. *)

val random_ksat :
  seed:int -> num_vars:int -> num_clauses:int -> k:int -> Cnf.Formula.t
(** Uniform random k-SAT with distinct variables per clause. *)

val xor_cnf :
  seed:int -> num_vars:int -> num_xors:int -> width:int -> Cnf.Formula.t
(** Random parity constraints of the given width, each expanded into
    its [2^(width-1)] odd-polarity clauses (the hard CNF-XOR
    distribution of Dudek et al.). *)

val coloring :
  seed:int -> vertices:int -> edges:int -> colors:int -> Cnf.Formula.t
(** Random-graph k-coloring: at-least-one + at-most-one color per
    vertex, different colors across each edge. *)

val round_robin : ?weeks:int -> teams:int -> unit -> Cnf.Formula.t
(** Single round-robin schedule ([teams] even): every pair meets
    exactly once, no team plays twice in a week — the tournament
    formulation of Bejar & Manya cited in §2.1.  [weeks] defaults to
    [teams - 1] (satisfiable); [teams - 2] or fewer is unsatisfiable
    by a counting argument and resolution-hard, like pigeonhole. *)
