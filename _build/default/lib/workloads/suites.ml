(* Sizes calibrated so the direct (baseline) solve of each miter takes
   seconds with the OCaml CDCL solver — the same relative hardness the
   paper's I1-I5 have for Kissat at 40k gates (see DESIGN.md). *)
let lec_sizes = [ (1, 26, 900); (2, 30, 1050); (3, 28, 980); (4, 24, 850);
                  (5, 20, 700) ]

let i_suite ?(scale = 1.0) () =
  List.map
    (fun (i, num_pis, num_ands) ->
      let num_ands = max 50 (int_of_float (float_of_int num_ands *. scale)) in
      let name = Printf.sprintf "I%d" i in
      ( name,
        Eda4sat.Instance.of_circuit ~name
          (Lec.generate ~buggy:false ~seed:(8000 + i) ~num_pis ~num_ands ()) ))
    lec_sizes

(* A circuit-verification CNF presented as a flat DIMACS instance, as
   hardware-derived SAT-competition benchmarks are. *)
let miter_cnf ~seed ~num_ands =
  let g = Lec.generate ~buggy:false ~seed ~num_pis:22 ~num_ands () in
  (Cnf.Tseitin.encode g).Cnf.Tseitin.formula

(* Two structurally different parity implementations, mitered and
   flattened to CNF: XOR chains are the classic CDCL stress case the
   paper's §3.3.2 cites. *)
let parity_miter_cnf ~num_bits =
  let g = Aig.Graph.create ~num_pis:num_bits in
  let pis = List.init num_bits (Aig.Graph.pi g) in
  let chain =
    List.fold_left
      (fun acc l -> Aig.Graph.xor_ g acc l)
      Aig.Graph.const_false pis
  in
  let rec tree = function
    | [] -> Aig.Graph.const_false
    | [ l ] -> l
    | ls ->
      let half = List.length ls / 2 in
      let left = List.filteri (fun i _ -> i < half) ls
      and right = List.filteri (fun i _ -> i >= half) ls in
      Aig.Graph.xor_ g (tree left) (tree right)
  in
  Aig.Graph.add_po g (Aig.Graph.xor_ g chain (tree pis));
  (Cnf.Tseitin.encode g).Cnf.Tseitin.formula

(* The C1-C8 stand-ins: eight CNF instances from five families with
   diverse distributions, mixing structured (circuit-derived,
   pigeonhole-like) and unstructured (random, parity) hardness.
   Baseline-solver hardness is calibrated per family; scale < 1 shrinks
   everything for quick runs. *)
let c_suite ?(scale = 1.0) () =
  let s x = max 3 (int_of_float (float_of_int x *. scale)) in
  let cases =
    [
      ("C1-miter-cnf", miter_cnf ~seed:9101 ~num_ands:(s 700));
      ( "C2-php-hard",
        Satcomp.pigeonhole ~pigeons:(s 11) ~holes:(s 11 - 1) );
      ( "C3-random3sat",
        Satcomp.random_ksat ~seed:31 ~num_vars:(s 280)
          ~num_clauses:(s 280 * 9 / 2) ~k:3 );
      ( "C4-random3sat",
        Satcomp.random_ksat ~seed:47 ~num_vars:(s 200)
          ~num_clauses:(s 200 * 9 / 2) ~k:3 );
      ( "C5-cnfxor",
        Satcomp.xor_cnf ~seed:53 ~num_vars:(s 170) ~num_xors:(s 160)
          ~width:4 );
      ( "C6-roundrobin-unsat",
        Satcomp.round_robin ~weeks:(s 12 - 2)
          ~teams:(2 * ((s 12 + 1) / 2)) () );
      ("C7-miter-cnf", miter_cnf ~seed:9103 ~num_ands:(s 850));
      ( "C8-php",
        Satcomp.pigeonhole ~pigeons:(s 10) ~holes:(s 10 - 1) );
    ]
  in
  List.map (fun (name, f) -> (name, Eda4sat.Instance.of_cnf ~name f)) cases

let training_set ?(scale = 1.0) ~count () =
  let sz x = max 30 (int_of_float (float_of_int x *. scale)) in
  Lec.training_set ~seed:4242 ~count ~min_ands:(sz 120) ~max_ands:(sz 900)
