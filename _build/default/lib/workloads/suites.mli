(** The canonical benchmark suites of the evaluation (Table 2).

    [scale] multiplies instance sizes; 1.0 is the default laptop-scale
    configuration on which the whole suite runs in minutes with the
    OCaml solver (see DESIGN.md on scaling). *)

val i_suite : ?scale:float -> unit -> (string * Eda4sat.Instance.t) list
(** I1-I5: industrial-style LEC miters (circuit instances, single PO). *)

val c_suite : ?scale:float -> unit -> (string * Eda4sat.Instance.t) list
(** C1-C8: flat CNF instances (circuit-derived, pigeonhole, random
    3-SAT, CNF-XOR, scheduling), per-family hardness calibrated for the
    OCaml solver. *)

val miter_cnf : seed:int -> num_ands:int -> Cnf.Formula.t
(** A hardware-verification CNF: a LEC miter flattened through Tseitin,
    as circuit-derived SAT-competition benchmarks are distributed. *)

val parity_miter_cnf : num_bits:int -> Cnf.Formula.t
(** CNF miter of two structurally different parity networks. *)

val training_set : ?scale:float -> count:int -> unit -> Aig.Graph.t array
(** The RL training population (the paper uses 200 LEC instances). *)
