let pigeonhole ~pigeons ~holes =
  let v p h = (p * holes) + h + 1 in
  let at_least =
    List.init pigeons (fun p -> Array.init holes (fun h -> v p h))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then Some [| -v p1 h; -v p2 h |] else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  Cnf.Formula.create ~num_vars:(pigeons * holes) (at_least @ at_most)

let distinct_vars rng num_vars k =
  let seen = Hashtbl.create 8 in
  let rec draw acc n =
    if n = 0 then acc
    else begin
      let v = 1 + Aig.Rng.int rng num_vars in
      if Hashtbl.mem seen v then draw acc n
      else begin
        Hashtbl.add seen v ();
        draw (v :: acc) (n - 1)
      end
    end
  in
  draw [] k

let random_ksat ~seed ~num_vars ~num_clauses ~k =
  if k > num_vars then invalid_arg "Satcomp.random_ksat: k > num_vars";
  let rng = Aig.Rng.create seed in
  let clauses =
    List.init num_clauses (fun _ ->
        distinct_vars rng num_vars k
        |> List.map (fun v -> if Aig.Rng.bool rng then v else -v)
        |> Array.of_list)
  in
  Cnf.Formula.create ~num_vars clauses

let xor_cnf ~seed ~num_vars ~num_xors ~width =
  if width < 1 || width > 10 then invalid_arg "Satcomp.xor_cnf: bad width";
  let rng = Aig.Rng.create seed in
  let clauses = ref [] in
  for _ = 1 to num_xors do
    let vars = Array.of_list (distinct_vars rng num_vars width) in
    let parity = Aig.Rng.bool rng in
    (* x1 xor ... xor xw = parity expands into clauses over all sign
       patterns with an (even/odd) number of positives. *)
    for m = 0 to (1 lsl width) - 1 do
      let positives = ref 0 in
      for i = 0 to width - 1 do
        if m land (1 lsl i) <> 0 then incr positives
      done;
      (* Forbidden assignments: parity of trues <> target; the clause
         negates the assignment encoded by m. *)
      let assignment_parity = !positives land 1 = 1 in
      if assignment_parity <> parity then begin
        let clause =
          Array.mapi
            (fun i v -> if m land (1 lsl i) <> 0 then -v else v)
            vars
        in
        clauses := clause :: !clauses
      end
    done
  done;
  Cnf.Formula.create ~num_vars (List.rev !clauses)

let coloring ~seed ~vertices ~edges ~colors =
  let rng = Aig.Rng.create seed in
  let v node c = (node * colors) + c + 1 in
  let at_least =
    List.init vertices (fun node -> Array.init colors (fun c -> v node c))
  in
  let at_most =
    List.concat_map
      (fun node ->
        List.concat_map
          (fun c1 ->
            List.filter_map
              (fun c2 ->
                if c2 > c1 then Some [| -v node c1; -v node c2 |] else None)
              (List.init colors Fun.id))
          (List.init colors Fun.id))
      (List.init vertices Fun.id)
  in
  let edge_clauses = ref [] in
  let seen = Hashtbl.create 64 in
  let count = ref 0 and attempts = ref 0 in
  while !count < edges && !attempts < 50 * edges do
    incr attempts;
    let a = Aig.Rng.int rng vertices and b = Aig.Rng.int rng vertices in
    let a, b = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.add seen (a, b) ();
      incr count;
      for c = 0 to colors - 1 do
        edge_clauses := [| -v a c; -v b c |] :: !edge_clauses
      done
    end
  done;
  Cnf.Formula.create ~num_vars:(vertices * colors)
    (at_least @ at_most @ !edge_clauses)

let round_robin ?weeks ~teams () =
  if teams < 2 || teams land 1 = 1 then
    invalid_arg "Satcomp.round_robin: need an even team count >= 2";
  let weeks = Option.value weeks ~default:(teams - 1) in
  (* Variable: pair (i < j) meets in week w. *)
  let pairs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if j > i then Some (i, j) else None)
          (List.init teams Fun.id))
      (List.init teams Fun.id)
  in
  let pair_index = Hashtbl.create 64 in
  List.iteri (fun idx p -> Hashtbl.add pair_index p idx) pairs;
  let v i j w = (Hashtbl.find pair_index (i, j) * weeks) + w + 1 in
  let clauses = ref [] in
  (* Every pair meets at least once... *)
  List.iter
    (fun (i, j) -> clauses := Array.init weeks (fun w -> v i j w) :: !clauses)
    pairs;
  (* ...and at most once. *)
  List.iter
    (fun (i, j) ->
      for w1 = 0 to weeks - 1 do
        for w2 = w1 + 1 to weeks - 1 do
          clauses := [| -v i j w1; -v i j w2 |] :: !clauses
        done
      done)
    pairs;
  (* No team plays two matches in the same week. *)
  for w = 0 to weeks - 1 do
    List.iter
      (fun (i1, j1) ->
        List.iter
          (fun (i2, j2) ->
            let shares_team =
              i1 = i2 || i1 = j2 || j1 = i2 || j1 = j2
            in
            if shares_team && (i1, j1) < (i2, j2) then
              clauses := [| -v i1 j1 w; -v i2 j2 w |] :: !clauses)
          pairs)
      pairs
  done;
  Cnf.Formula.create
    ~num_vars:(List.length pairs * weeks)
    (List.rev !clauses)
