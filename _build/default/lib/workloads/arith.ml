let full_adder g a b c =
  let sum = Aig.Graph.xor_ g (Aig.Graph.xor_ g a b) c in
  let carry =
    Aig.Graph.or_ g (Aig.Graph.and_ g a b)
      (Aig.Graph.and_ g c (Aig.Graph.or_ g a b))
  in
  (sum, carry)

let ripple_adder g xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Arith.ripple_adder: width mismatch";
  let out = Array.make (n + 1) Aig.Graph.const_false in
  let carry = ref Aig.Graph.const_false in
  for i = 0 to n - 1 do
    let s, c = full_adder g xs.(i) ys.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out.(n) <- !carry;
  out

(* Ripple addition with an explicit carry-in; returns (bits, carry). *)
let ripple_with_cin g xs ys cin =
  let n = Array.length xs in
  let out = Array.make n Aig.Graph.const_false in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder g xs.(i) ys.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let carry_select_adder g xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then
    invalid_arg "Arith.carry_select_adder: width mismatch";
  if n <= 1 then ripple_adder g xs ys
  else begin
    let half = n / 2 in
    let lo x = Array.sub x 0 half and hi x = Array.sub x half (n - half) in
    let lo_bits, lo_carry =
      ripple_with_cin g (lo xs) (lo ys) Aig.Graph.const_false
    in
    (* Upper half computed for both carry-in values, then selected. *)
    let hi0, c0 = ripple_with_cin g (hi xs) (hi ys) Aig.Graph.const_false in
    let hi1, c1 = ripple_with_cin g (hi xs) (hi ys) Aig.Graph.const_true in
    let sel = lo_carry in
    let hi_bits = Array.map2 (fun a b -> Aig.Graph.mux_ g sel b a) hi0 hi1 in
    let carry = Aig.Graph.mux_ g sel c1 c0 in
    Array.concat [ lo_bits; hi_bits; [| carry |] ]
  end

let multiplier ?(reverse_accumulation = false) g xs ys =
  let n = Array.length xs and m = Array.length ys in
  let rows =
    List.init n (fun i ->
        Array.append
          (Array.make i Aig.Graph.const_false)
          (Array.map (fun y -> Aig.Graph.and_ g xs.(i) y) ys))
  in
  let rows = if reverse_accumulation then List.rev rows else rows in
  let add_padded acc row =
    let w = max (Array.length acc) (Array.length row) in
    let pad v =
      Array.append v (Array.make (w - Array.length v) Aig.Graph.const_false)
    in
    ripple_adder g (pad acc) (pad row)
  in
  let sum = List.fold_left add_padded [||] rows in
  Array.sub sum 0 (min (Array.length sum) (n + m))

let split_pis g bits =
  let xs = Array.init bits (Aig.Graph.pi g) in
  let ys = Array.init bits (fun i -> Aig.Graph.pi g (bits + i)) in
  (xs, ys)

let adder_circuit ~bits ~variant =
  let g = Aig.Graph.create ~num_pis:(2 * bits) in
  let xs, ys = split_pis g bits in
  let out =
    match variant with
    | `Ripple -> ripple_adder g xs ys
    | `Carry_select -> carry_select_adder g xs ys
  in
  Array.iter (Aig.Graph.add_po g) out;
  g

let multiplier_circuit ~bits ~reverse =
  let g = Aig.Graph.create ~num_pis:(2 * bits) in
  let xs, ys = split_pis g bits in
  Array.iter (Aig.Graph.add_po g)
    (multiplier ~reverse_accumulation:reverse g xs ys);
  g

let adder_miter ~bits =
  Lec.miter
    (adder_circuit ~bits ~variant:`Ripple)
    (adder_circuit ~bits ~variant:`Carry_select)

let multiplier_miter ~bits =
  Lec.miter
    (multiplier_circuit ~bits ~reverse:false)
    (multiplier_circuit ~bits ~reverse:true)
