(** Arithmetic circuit generators — the datapath blocks classic EDA
    benchmark suites are full of, and the classic hard cases for
    equivalence checking.

    All outputs are little-endian bit vectors of AIG literals; the
    builders work inside a caller-provided graph so they compose. *)

val full_adder :
  Aig.Graph.t -> Aig.Graph.lit -> Aig.Graph.lit -> Aig.Graph.lit ->
  Aig.Graph.lit * Aig.Graph.lit
(** [(sum, carry)] of three input bits. *)

val ripple_adder :
  Aig.Graph.t -> Aig.Graph.lit array -> Aig.Graph.lit array ->
  Aig.Graph.lit array
(** [n]-bit ripple-carry addition: result has [n + 1] bits.
    @raise Invalid_argument on width mismatch. *)

val carry_select_adder :
  Aig.Graph.t -> Aig.Graph.lit array -> Aig.Graph.lit array ->
  Aig.Graph.lit array
(** Same function as {!ripple_adder}, structurally different: the upper
    half is computed for both carry values and selected. *)

val multiplier :
  ?reverse_accumulation:bool ->
  Aig.Graph.t -> Aig.Graph.lit array -> Aig.Graph.lit array ->
  Aig.Graph.lit array
(** Array multiplier ([n*m] bits out); [reverse_accumulation] adds the
    partial products in the opposite order, giving an equivalent but
    structurally different netlist. *)

val adder_circuit : bits:int -> variant:[ `Ripple | `Carry_select ] ->
  Aig.Graph.t
(** A standalone circuit: [2*bits] PIs, [bits + 1] POs. *)

val multiplier_circuit : bits:int -> reverse:bool -> Aig.Graph.t
(** A standalone circuit: [2*bits] PIs, [2*bits] POs. *)

val adder_miter : bits:int -> Aig.Graph.t
(** Miter of ripple vs. carry-select adders (unsatisfiable). *)

val multiplier_miter : bits:int -> Aig.Graph.t
(** Miter of the two accumulation orders (unsatisfiable) — the classic
    CDCL-hard equivalence check. *)
