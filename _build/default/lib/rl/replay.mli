(** Experience replay buffer for Deep Q-learning. *)

type transition = {
  state : float array;
  action : int;
  reward : float;
  next_state : float array option;  (** [None] at episode end *)
}

type t

val create : capacity:int -> seed:int -> t
val push : t -> transition -> unit
(** Overwrites the oldest entry when full. *)

val size : t -> int
val capacity : t -> int

val sample : t -> int -> transition array
(** [sample buf n] draws [n] uniform samples with replacement.
    @raise Invalid_argument on an empty buffer. *)
