type transition = {
  state : float array;
  action : int;
  reward : float;
  next_state : float array option;
}

type t = {
  data : transition option array;
  mutable next : int;
  mutable count : int;
  rng : Aig.Rng.t;
}

let create ~capacity ~seed =
  if capacity <= 0 then invalid_arg "Replay.create: capacity must be positive";
  {
    data = Array.make capacity None;
    next = 0;
    count = 0;
    rng = Aig.Rng.create seed;
  }

let capacity buf = Array.length buf.data
let size buf = buf.count

let push buf tr =
  buf.data.(buf.next) <- Some tr;
  buf.next <- (buf.next + 1) mod capacity buf;
  buf.count <- min (buf.count + 1) (capacity buf)

let sample buf n =
  if buf.count = 0 then invalid_arg "Replay.sample: empty buffer";
  Array.init n (fun _ ->
      match buf.data.(Aig.Rng.int buf.rng buf.count) with
      | Some tr -> tr
      | None -> assert false)
