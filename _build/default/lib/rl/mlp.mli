(** Multilayer perceptrons with ReLU hidden layers and a linear output
    layer, trained by Adam — the Q-network of Eq. (4).

    The only loss needed by Deep Q-learning is the squared error on a
    single output coordinate (the taken action), so training takes
    [(input, output index, target)] triples. *)

type t

val create : sizes:int array -> seed:int -> t
(** [create ~sizes] with [sizes = [| in; h1; ...; out |]],
    Xavier-initialized.  @raise Invalid_argument on fewer than two
    sizes. *)

val forward : t -> float array -> float array

val input_dim : t -> int
val output_dim : t -> int

val train_batch : t -> lr:float -> (float array * int * float) array -> float
(** One Adam step on the mean of per-sample losses
    [0.5 (forward x).(a) - target)^2]; returns the mean loss. *)

val copy_weights : src:t -> dst:t -> unit
(** Target-network synchronization.  Shapes must match. *)

val clone : t -> t

val parameter_count : t -> int

val save_string : t -> string
(** Text serialization (sizes + weights). *)

val load_string : string -> t
(** @raise Failure on malformed input. *)
