lib/rl/mlp.ml: Aig Array Buffer List Printf String
