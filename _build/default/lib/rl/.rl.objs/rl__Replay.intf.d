lib/rl/replay.mli:
