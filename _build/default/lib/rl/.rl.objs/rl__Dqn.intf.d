lib/rl/dqn.mli: Replay
