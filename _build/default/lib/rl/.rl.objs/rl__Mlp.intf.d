lib/rl/mlp.mli:
