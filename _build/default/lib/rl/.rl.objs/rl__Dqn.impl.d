lib/rl/dqn.ml: Aig Array Mlp Replay
