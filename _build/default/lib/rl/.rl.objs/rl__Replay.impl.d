lib/rl/replay.ml: Aig Array
