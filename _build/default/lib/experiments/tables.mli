(** Regeneration of every table and data-bearing figure of the paper's
    evaluation (the per-experiment index lives in DESIGN.md).

    Absolute numbers differ from the paper — the substrate is an OCaml
    CDCL solver on scaled-down generated workloads, not Kissat on
    proprietary 40k-gate industrial cases — so every table prints the
    paper's key reference values in its notes; what must match is the
    {e shape}: who wins, by roughly what factor, where the crossovers
    are. *)

type ctx = {
  scale : float;              (** workload size multiplier *)
  limits : Sat.Solver.limits; (** per-solve budget *)
  agent : Rl.Dqn.t option;    (** trained agent for the "ours" columns *)
  training_count : int;       (** Table 1 population size *)
  seed : int;
}

val default_ctx : ctx
(** scale 1.0, 120 s solve cap, no agent (fixed expert recipe),
    40 training instances. *)

val train_agent : ?episodes:int -> ctx -> Rl.Dqn.t
(** Train an agent on the (scaled) training set; plug the result into
    [ctx.agent] for the RL-driven columns. *)

val table1 : ctx -> Table.t
(** Training-set statistics. *)

val table2 : ctx -> Table.t
(** Characteristics of the testing cases I1-I5, C1-C8. *)

val table3 : ctx -> Table.t
(** Solving-time comparison on LEC cases: Baseline / [15] / Ours. *)

val table4 : ctx -> Table.t
(** Ablation: with vs. without the RL agent. *)

val table5 : ctx -> Table.t
(** Ablation: conventional vs. cost-customized mapper. *)

val table6 : ctx -> Table.t
(** Solving-time comparison on SAT-competition-style CNFs. *)

val table7 : ctx -> Table.t
(** Circuit size before and after preprocessing (gates/level vs
    LUTs/level). *)

val figure2 : unit -> Table.t
(** The rewrite and balance illustrative examples (size / depth
    deltas). *)

val figure4 : unit -> Table.t
(** Branching complexity of 2-input LUTs (AND = 3, XOR = 4) and the
    4-input extremes. *)

val run_all : ctx -> string
(** Every table and figure rendered, sharing pipeline runs between
    Tables 3-5 and 7. *)
