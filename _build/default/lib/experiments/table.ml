type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let fmt_f x = Printf.sprintf "%.2f" x
let fmt_pct x = Printf.sprintf "%.2f%%" x

let render t =
  let all = t.header :: t.rows in
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row =
    String.concat "  " (List.mapi pad row) |> String.trim |> fun s ->
    String.concat "  " (List.mapi pad row) |> fun full ->
    ignore s;
    (* Keep trailing alignment but drop rightmost spaces. *)
    let rec rstrip n =
      if n > 0 && full.[n - 1] = ' ' then rstrip (n - 1) else n
    in
    String.sub full 0 (rstrip (String.length full))
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.header :: t.rows)) ^ "\n"
