(** Ablation benches for the design choices DESIGN.md calls out —
    beyond the paper's own two ablations (Tables 4 and 5), these
    isolate the internal knobs of our substrates:

    - rewrite's MFFC credit (global vs. purely local gain),
    - resub's SAT proof budget (what the FRAIG actually proves),
    - the mapper's area-recovery passes,
    - the cut width k of the rewriter. *)

val rewrite_mffc : seeds:int list -> Table.t
val resub_budget : seeds:int list -> Table.t
val mapper_passes : seeds:int list -> Table.t
val cut_width : seeds:int list -> Table.t
val windowed_resub : seeds:int list -> Table.t
val branching_heuristic : unit -> Table.t

val run_all : unit -> string
