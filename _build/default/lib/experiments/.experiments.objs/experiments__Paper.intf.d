lib/experiments/paper.mli:
