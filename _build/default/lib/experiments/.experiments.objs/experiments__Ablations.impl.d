lib/experiments/ablations.ml: Aig List Lutmap Sat String Synth Sys Table Workloads
