lib/experiments/tables.ml: Aig Array Buffer Cnf Eda4sat List Lutmap Option Paper Printf Rl Sat Synth Table Workloads
