lib/experiments/paper.ml:
