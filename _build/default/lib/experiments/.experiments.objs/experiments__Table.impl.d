lib/experiments/table.ml: Array Buffer List Printf String
