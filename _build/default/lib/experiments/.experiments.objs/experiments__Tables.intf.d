lib/experiments/tables.mli: Rl Sat Table
