lib/experiments/ablations.mli: Table
