lib/experiments/table.mli:
