type ctx = {
  scale : float;
  limits : Sat.Solver.limits;
  agent : Rl.Dqn.t option;
  training_count : int;
  seed : int;
}

let default_ctx =
  {
    scale = 1.0;
    limits =
      { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some 120.0 };
    agent = None;
    training_count = 40;
    seed = 2024;
  }

let fmt_f = Table.fmt_f
let fmt_pct = Table.fmt_pct

let result_string = function
  | Sat.Solver.Sat _ -> "SAT"
  | Sat.Solver.Unsat -> "UNSAT"
  | Sat.Solver.Unknown -> "TO"

let solve_cell r =
  match r.Eda4sat.Pipeline.result with
  | Sat.Solver.Unknown -> "TO"
  | Sat.Solver.Sat _ | Sat.Solver.Unsat -> fmt_f r.Eda4sat.Pipeline.t_solve

let train_agent ?(episodes = 40) ctx =
  let instances =
    Workloads.Suites.training_set ~scale:ctx.scale
      ~count:(max 8 (ctx.training_count / 2))
      ()
  in
  let env_config =
    {
      Eda4sat.Env.default_config with
      Eda4sat.Env.seed = ctx.seed;
      reward_limits =
        {
          Sat.Solver.no_limits with
          Sat.Solver.max_decisions = Some 100_000;
          max_seconds = Some 15.0;
        };
    }
  in
  let agent, _history =
    Eda4sat.Trainer.train ~env_config instances ~episodes
  in
  agent

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let stats_row name values =
  let n = float_of_int (Array.length values) in
  let avg = Array.fold_left ( +. ) 0.0 values /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. avg) ** 2.0)) 0.0 values /. n
  in
  let mn = Array.fold_left min infinity values
  and mx = Array.fold_left max neg_infinity values in
  [ name; fmt_f avg; fmt_f (sqrt var); fmt_f mn; fmt_f mx ]

let table1 ctx =
  let instances =
    Workloads.Suites.training_set ~scale:ctx.scale ~count:ctx.training_count ()
  in
  let gates = Array.map (fun g -> float_of_int (Aig.Graph.num_ands g)) instances in
  let pis = Array.map (fun g -> float_of_int (Aig.Graph.num_pis g)) instances in
  let depths = Array.map (fun g -> float_of_int (Aig.Graph.depth g)) instances in
  let formulas =
    Array.map
      (fun g -> (Cnf.Tseitin.encode ~assert_outputs:true g).Cnf.Tseitin.formula)
      instances
  in
  let clauses =
    Array.map (fun f -> float_of_int (Cnf.Formula.num_clauses f)) formulas
  in
  let times =
    Array.map
      (fun f ->
        let _, st = Sat.Solver.solve ~limits:ctx.limits f in
        st.Sat.Solver.time)
      formulas
  in
  {
    Table.title = "Table 1: Statistics of the training dataset";
    header = [ ""; "Avg."; "Std."; "Min."; "Max." ];
    rows =
      [
        stats_row "# Gates" gates;
        stats_row "# PIs" pis;
        stats_row "Depth" depths;
        stats_row "# Clauses" clauses;
        stats_row "Time (s)" times;
      ];
    notes =
      [
        Printf.sprintf "%d generated LEC miters (paper: 200 industrial, \
                        avg 4299 gates / 10687 clauses / 2.01 s)"
          (Array.length instances);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2 ctx =
  let all =
    Workloads.Suites.i_suite ~scale:ctx.scale ()
    @ Workloads.Suites.c_suite ~scale:ctx.scale ()
  in
  let rows =
    List.map
      (fun (name, inst) ->
        let r = Eda4sat.Pipeline.solve_direct ~limits:ctx.limits inst in
        [
          name;
          (match Eda4sat.Instance.num_gates inst with
           | Some g -> string_of_int g
           | None -> "N/A");
          string_of_int r.Eda4sat.Pipeline.vars;
          string_of_int r.Eda4sat.Pipeline.clauses;
          solve_cell r;
          result_string r.Eda4sat.Pipeline.result;
        ])
      all
  in
  {
    Table.title = "Table 2: Characteristics of testing cases";
    header = [ "Case"; "# Gates"; "# Vars"; "# Clas"; "T_solve"; "Result" ];
    rows;
    notes =
      [
        "C cases are CNF instances without natural circuit structure \
         (paper: SAT Competition 2022 picks)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Shared pipeline runs over the LEC suite (Tables 3, 4, 5, 7). *)

type lec_run = {
  name : string;
  inst : Eda4sat.Instance.t;
  baseline : Eda4sat.Pipeline.report;
  een : Eda4sat.Pipeline.report;
  ours : Eda4sat.Pipeline.report;
  ours_norl : Eda4sat.Pipeline.report;
  ours_conv : Eda4sat.Pipeline.report;
}

let lec_runs ctx =
  let ours_cfg = Eda4sat.Pipeline.ours ?agent:ctx.agent () in
  let conv_cfg = Eda4sat.Pipeline.ours_conventional_mapper ?agent:ctx.agent () in
  List.map
    (fun (name, inst) ->
      {
        name;
        inst;
        baseline = Eda4sat.Pipeline.run ~limits:ctx.limits
            Eda4sat.Pipeline.baseline inst;
        een = Eda4sat.Pipeline.run ~limits:ctx.limits Eda4sat.Pipeline.een2007
            inst;
        ours = Eda4sat.Pipeline.run ~limits:ctx.limits ours_cfg inst;
        ours_norl =
          Eda4sat.Pipeline.run ~limits:ctx.limits
            (Eda4sat.Pipeline.ours_without_rl ~seed:(ctx.seed + 17))
            inst;
        ours_conv = Eda4sat.Pipeline.run ~limits:ctx.limits conv_cfg inst;
      })
    (Workloads.Suites.i_suite ~scale:ctx.scale ())

let avg f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs
               /. float_of_int (List.length xs)

let table3_of_runs runs =
  let row r =
    let red rep =
      Eda4sat.Pipeline.reduction ~baseline:r.baseline rep
    in
    [
      r.name;
      solve_cell r.baseline;
      string_of_int r.een.Eda4sat.Pipeline.vars;
      string_of_int r.een.Eda4sat.Pipeline.clauses;
      fmt_f r.een.Eda4sat.Pipeline.t_trans;
      solve_cell r.een;
      fmt_f (Eda4sat.Pipeline.t_all r.een);
      fmt_pct (red r.een);
      string_of_int r.ours.Eda4sat.Pipeline.vars;
      string_of_int r.ours.Eda4sat.Pipeline.clauses;
      fmt_f r.ours.Eda4sat.Pipeline.t_agent;
      fmt_f r.ours.Eda4sat.Pipeline.t_trans;
      solve_cell r.ours;
      fmt_f (Eda4sat.Pipeline.t_all r.ours);
      fmt_pct (red r.ours);
    ]
  in
  let avg_row =
    [
      "Avg.";
      fmt_f (avg (fun r -> r.baseline.Eda4sat.Pipeline.t_solve) runs);
      ""; ""; ""; "";
      fmt_f (avg (fun r -> Eda4sat.Pipeline.t_all r.een) runs);
      fmt_pct
        (avg (fun r -> Eda4sat.Pipeline.reduction ~baseline:r.baseline r.een)
           runs);
      ""; ""; ""; ""; "";
      fmt_f (avg (fun r -> Eda4sat.Pipeline.t_all r.ours) runs);
      fmt_pct
        (avg (fun r -> Eda4sat.Pipeline.reduction ~baseline:r.baseline r.ours)
           runs);
    ]
  in
  {
    Table.title = "Table 3: Solving time comparison on LEC cases";
    header =
      [ "Case"; "Base T_s"; "[15]#V"; "[15]#C"; "[15]T_tr"; "[15]T_s";
        "[15]T_all"; "[15]Red."; "Our#V"; "Our#C"; "T_ag"; "T_tr"; "T_s";
        "T_all"; "Red." ];
    rows = List.map row runs @ [ avg_row ];
    notes =
      [
        Printf.sprintf
          "paper averages: [15] T_all 92.54 s / Red. %.2f%%; Ours T_all \
           15.63 s / Red. %.2f%%"
          Paper.avg_reduction_lec_een Paper.avg_reduction_lec_ours;
      ];
  }

let table3 ctx = table3_of_runs (lec_runs ctx)

let table4_of_runs runs =
  let row r =
    [
      r.name;
      solve_cell r.baseline;
      string_of_int r.ours_norl.Eda4sat.Pipeline.vars;
      string_of_int r.ours_norl.Eda4sat.Pipeline.clauses;
      fmt_f r.ours_norl.Eda4sat.Pipeline.t_trans;
      solve_cell r.ours_norl;
      fmt_f (Eda4sat.Pipeline.t_all r.ours_norl);
      solve_cell r.ours;
      fmt_f (Eda4sat.Pipeline.t_all r.ours);
    ]
  in
  let avg_row =
    [
      "Avg."; ""; ""; ""; ""; "";
      fmt_f (avg (fun r -> Eda4sat.Pipeline.t_all r.ours_norl) runs);
      "";
      fmt_f (avg (fun r -> Eda4sat.Pipeline.t_all r.ours) runs);
    ]
  in
  {
    Table.title = "Table 4: With vs. without the RL agent";
    header =
      [ "Case"; "Base T_s"; "w/o #V"; "w/o #C"; "w/o T_tr"; "w/o T_s";
        "w/o T_all"; "w/ T_s"; "w/ T_all" ];
    rows = List.map row runs @ [ avg_row ];
    notes =
      [
        "paper averages: w/o RL T_all 53.98 s, w/ RL 15.63 s (2.45x)";
        "the w/o-RL agent applies 10 uniformly random synthesis operations";
      ];
  }

let table4 ctx = table4_of_runs (lec_runs ctx)

let table5_of_runs runs =
  let row r =
    [
      r.name;
      solve_cell r.baseline;
      string_of_int r.ours_conv.Eda4sat.Pipeline.vars;
      string_of_int r.ours_conv.Eda4sat.Pipeline.clauses;
      fmt_f r.ours_conv.Eda4sat.Pipeline.t_trans;
      solve_cell r.ours_conv;
      fmt_f r.ours.Eda4sat.Pipeline.t_trans;
      solve_cell r.ours;
    ]
  in
  let avg_row =
    [
      "Avg."; ""; ""; "";
      fmt_f (avg (fun r -> r.ours_conv.Eda4sat.Pipeline.t_trans) runs);
      fmt_f (avg (fun r -> r.ours_conv.Eda4sat.Pipeline.t_solve) runs);
      fmt_f (avg (fun r -> r.ours.Eda4sat.Pipeline.t_trans) runs);
      fmt_f (avg (fun r -> r.ours.Eda4sat.Pipeline.t_solve) runs);
    ]
  in
  {
    Table.title = "Table 5: Conventional vs. cost-customized mapper";
    header =
      [ "Case"; "Base T_s"; "Conv#V"; "Conv#C"; "ConvT_tr"; "ConvT_s";
        "OurT_tr"; "OurT_s" ];
    rows = List.map row runs @ [ avg_row ];
    notes =
      [
        "paper averages: conventional T_solve 3.07 s vs ours 1.91 s \
         (60.73% longer), with near-equal T_trans";
      ];
  }

let table5 ctx = table5_of_runs (lec_runs ctx)

(* ------------------------------------------------------------------ *)
(* Table 6: the CNF suite. *)

type cnf_run = {
  cname : string;
  cbaseline : Eda4sat.Pipeline.report;
  ceen : Eda4sat.Pipeline.report;
  cours : Eda4sat.Pipeline.report;
}

let cnf_runs ctx =
  let ours_cfg = Eda4sat.Pipeline.ours ?agent:ctx.agent () in
  List.map
    (fun (cname, inst) ->
      {
        cname;
        cbaseline =
          Eda4sat.Pipeline.run ~limits:ctx.limits Eda4sat.Pipeline.baseline
            inst;
        ceen =
          Eda4sat.Pipeline.run ~limits:ctx.limits Eda4sat.Pipeline.een2007
            inst;
        cours = Eda4sat.Pipeline.run ~limits:ctx.limits ours_cfg inst;
      })
    (Workloads.Suites.c_suite ~scale:ctx.scale ())

let table6_of_runs ctx runs =
  (* Timeouts are charged the full budget, as the paper charges 1000 s. *)
  let budget =
    Option.value ctx.limits.Sat.Solver.max_seconds ~default:1000.0
  in
  let charged r =
    match r.Eda4sat.Pipeline.result with
    | Sat.Solver.Unknown ->
      r.Eda4sat.Pipeline.t_agent +. r.Eda4sat.Pipeline.t_trans +. budget
    | Sat.Solver.Sat _ | Sat.Solver.Unsat -> Eda4sat.Pipeline.t_all r
  in
  let red base r = 100.0 *. (charged base -. charged r) /. charged base in
  let row r =
    [
      r.cname;
      solve_cell r.cbaseline;
      string_of_int r.ceen.Eda4sat.Pipeline.vars;
      string_of_int r.ceen.Eda4sat.Pipeline.clauses;
      fmt_f r.ceen.Eda4sat.Pipeline.t_trans;
      solve_cell r.ceen;
      fmt_f (charged r.ceen);
      fmt_pct (red r.cbaseline r.ceen);
      string_of_int r.cours.Eda4sat.Pipeline.vars;
      string_of_int r.cours.Eda4sat.Pipeline.clauses;
      fmt_f r.cours.Eda4sat.Pipeline.t_agent;
      fmt_f r.cours.Eda4sat.Pipeline.t_trans;
      solve_cell r.cours;
      fmt_f (charged r.cours);
      fmt_pct (red r.cbaseline r.cours);
    ]
  in
  let avg_row =
    [
      "Avg.";
      fmt_f (avg (fun r -> charged r.cbaseline) runs);
      ""; ""; ""; "";
      fmt_f (avg (fun r -> charged r.ceen) runs);
      fmt_pct (avg (fun r -> red r.cbaseline r.ceen) runs);
      ""; ""; ""; "";
      "";
      fmt_f (avg (fun r -> charged r.cours) runs);
      fmt_pct (avg (fun r -> red r.cbaseline r.cours) runs);
    ]
  in
  {
    Table.title =
      "Table 6: Solving time comparison on SAT-competition-style CNFs";
    header =
      [ "Case"; "Base T_s"; "[15]#V"; "[15]#C"; "[15]T_tr"; "[15]T_s";
        "[15]T_all"; "[15]Red."; "Our#V"; "Our#C"; "T_ag"; "T_tr"; "T_s";
        "T_all"; "Red." ];
    rows = List.map row runs @ [ avg_row ];
    notes =
      [
        Printf.sprintf
          "paper averages: [15] Red. %.2f%% vs Ours Red. %.2f%% (2.19x); \
           transformed instances may have MORE clauses yet solve faster"
          Paper.avg_reduction_cnf_een Paper.avg_reduction_cnf_ours;
      ];
  }

let table6 ctx = table6_of_runs ctx (cnf_runs ctx)

(* ------------------------------------------------------------------ *)
(* Table 7: circuit size before/after. *)

let table7_rows ctx lruns cruns =
  let before_stats inst =
    let g = Eda4sat.Instance.to_aig inst in
    let levs = max 1 (Aig.Graph.depth g) in
    (Aig.Graph.num_ands g, levs,
     float_of_int (Aig.Graph.num_ands g) /. float_of_int levs)
  in
  ignore ctx;
  let row name inst (ours : Eda4sat.Pipeline.report) =
    let gates, levs, gpl = before_stats inst in
    let nluts = ours.Eda4sat.Pipeline.netlist_luts in
    let nlevs = max 1 ours.Eda4sat.Pipeline.netlist_levels in
    [
      name;
      string_of_int gates;
      string_of_int levs;
      fmt_f gpl;
      string_of_int nluts;
      string_of_int ours.Eda4sat.Pipeline.netlist_levels;
      fmt_f (float_of_int nluts /. float_of_int nlevs);
    ]
  in
  List.map (fun r -> row r.name r.inst r.ours) lruns
  @ List.map
      (fun r ->
        let inst =
          List.assoc r.cname (Workloads.Suites.c_suite ~scale:ctx.scale ())
        in
        row r.cname inst r.cours)
      cruns

let table7_of_runs ctx lruns cruns =
  {
    Table.title = "Table 7: Circuit size before and after preprocessing";
    header =
      [ "Case"; "# Gates"; "# Levs"; "Gates/Lev"; "# LUTs"; "# Levs";
        "LUTs/Lev" ];
    rows = table7_rows ctx lruns cruns;
    notes =
      [
        "paper: I cases avg 217.37 gates/lev before vs 79.33 LUTs/lev \
         after; C cases 2.66 (narrow recovered AIGs) vs 482.62 (flat LUT \
         netlists)";
      ];
  }

let table7 ctx = table7_of_runs ctx (lec_runs ctx) (cnf_runs ctx)

(* ------------------------------------------------------------------ *)
(* Figures *)

let figure2 () =
  (* Rewrite example: redundant (a&b)|(a&c) cone shrinks. *)
  let g1 = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g1 0
  and b = Aig.Graph.pi g1 1
  and c = Aig.Graph.pi g1 2 in
  Aig.Graph.add_po g1
    (Aig.Graph.or_ g1 (Aig.Graph.and_ g1 a b) (Aig.Graph.and_ g1 a c));
  let r1 = Synth.Rewrite.run g1 in
  (* Balance example: a 6-input AND chain. *)
  let g2 = Aig.Graph.create ~num_pis:6 in
  let acc = ref (Aig.Graph.pi g2 0) in
  for i = 1 to 5 do
    acc := Aig.Graph.and_ g2 !acc (Aig.Graph.pi g2 i)
  done;
  Aig.Graph.add_po g2 !acc;
  let r2 = Synth.Balance.run g2 in
  {
    Table.title = "Figure 2: rewrite and balance examples";
    header = [ "Example"; "Metric"; "Before"; "After" ];
    rows =
      [
        [ "rewrite (a.b + a.c)"; "AND nodes";
          string_of_int (Aig.Graph.num_ands g1);
          string_of_int (Aig.Graph.num_ands r1) ];
        [ "balance (6-input AND chain)"; "depth";
          string_of_int (Aig.Graph.depth g2);
          string_of_int (Aig.Graph.depth r2) ];
      ];
    notes = [ "both transformations are functionally verified in the tests" ];
  }

let figure4 () =
  let x0 = Aig.Tt.var 2 0 and x1 = Aig.Tt.var 2 1 in
  let c f = Lutmap.Cost.branching f in
  let worst4, best4 =
    List.fold_left
      (fun (w, b) f ->
        let v = Lutmap.Cost.branching f in
        (max w v, min b v))
      (0, max_int)
      (Aig.Npn.all_class_representatives 4)
  in
  {
    Table.title = "Figure 4: branching complexity of LUTs";
    header = [ "LUT"; "C (measured)"; "C (paper)" ];
    rows =
      [
        [ "AND2 (L1)"; string_of_int (c (Aig.Tt.and_ x0 x1));
          string_of_int Paper.branching_and2 ];
        [ "XOR2 (L2)"; string_of_int (c (Aig.Tt.xor_ x0 x1));
          string_of_int Paper.branching_xor2 ];
        [ "OR2"; string_of_int (c (Aig.Tt.or_ x0 x1)); "-" ];
        [ "4-input worst (parity)"; string_of_int worst4; "-" ];
        [ "4-input best (constant)"; string_of_int best4; "-" ];
      ];
    notes =
      [ "C(L) = |ISOP(f)| + |ISOP(~f)|; XOR-heavy logic branches more, \
         which is what the cost-customized mapper penalizes" ];
  }

(* ------------------------------------------------------------------ *)

let run_all ctx =
  let buf = Buffer.create 16384 in
  let add t = Buffer.add_string buf (Table.render t ^ "\n") in
  add (table1 ctx);
  add (table2 ctx);
  let lruns = lec_runs ctx in
  let cruns = cnf_runs ctx in
  add (table3_of_runs lruns);
  add (table4_of_runs lruns);
  add (table5_of_runs lruns);
  add (table6_of_runs ctx cruns);
  add (table7_of_runs ctx lruns cruns);
  add (figure2 ());
  add (figure4 ());
  Buffer.contents buf
