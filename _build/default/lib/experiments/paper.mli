(** Reference numbers from the paper's evaluation section, embedded so
    every regenerated table prints the published values alongside the
    measured ones.  "TO" rows are encoded as [None] (the paper charges
    them 1000 s). *)

type lec_row = {
  case : string;
  baseline_solve : float;
  een_t_all : float;
  een_reduction : float;
  ours_t_all : float;
  ours_reduction : float;
}

val table3 : lec_row list
(** I1-I5 plus the published averages (row "Avg."). *)

type ablation_row = {
  case : string;
  without_rl_t_all : float;
  with_rl_t_all : float;
}

val table4 : ablation_row list

type mapper_row = {
  case : string;
  conventional_solve : float;
  ours_solve : float;
}

val table5 : mapper_row list

type cnf_row = {
  case : string;
  baseline_solve : float option; (** None = timeout (1000 s) *)
  een_t_all : float option;
  een_reduction : float;
  ours_t_all : float;
  ours_reduction : float;
}

val table6 : cnf_row list

type size_row = {
  case : string;
  gates_per_level_before : float;
  luts_per_level_after : float;
}

val table7 : size_row list

(** Published averages: LEC reduction 96.14% (ours) / 77.16% ([15]);
    CNF reduction 52.42% (ours) / 16.45% ([15]); Figure 4 branching
    complexities AND = 3, XOR = 4. *)

val avg_reduction_lec_ours : float
val avg_reduction_lec_een : float
val avg_reduction_cnf_ours : float
val avg_reduction_cnf_een : float
val branching_and2 : int
val branching_xor2 : int
