(** Plain-text table rendering for the experiment harness. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val render : t -> string
(** Column-aligned ASCII rendering with title and trailing notes. *)

val to_csv : t -> string
(** Header + rows as RFC-4180-ish CSV (cells quoted when needed). *)

val fmt_f : float -> string
(** Two-decimal float. *)

val fmt_pct : float -> string
(** Percentage with two decimals and a [%] sign. *)
