type lec_row = {
  case : string;
  baseline_solve : float;
  een_t_all : float;
  een_reduction : float;
  ours_t_all : float;
  ours_reduction : float;
}

let table3 =
  [
    { case = "I1"; baseline_solve = 322.46; een_t_all = 56.80;
      een_reduction = 82.39; ours_t_all = 18.34; ours_reduction = 94.31 };
    { case = "I2"; baseline_solve = 708.97; een_t_all = 153.46;
      een_reduction = 78.35; ours_t_all = 18.70; ours_reduction = 97.36 };
    { case = "I3"; baseline_solve = 531.94; een_t_all = 115.10;
      een_reduction = 78.36; ours_t_all = 16.42; ours_reduction = 96.91 };
    { case = "I4"; baseline_solve = 289.89; een_t_all = 94.66;
      een_reduction = 67.35; ours_t_all = 14.28; ours_reduction = 95.08 };
    { case = "I5"; baseline_solve = 172.79; een_t_all = 42.67;
      een_reduction = 75.30; ours_t_all = 10.39; ours_reduction = 93.99 };
    { case = "Avg."; baseline_solve = 405.21; een_t_all = 92.54;
      een_reduction = 77.16; ours_t_all = 15.63; ours_reduction = 96.14 };
  ]

type ablation_row = {
  case : string;
  without_rl_t_all : float;
  with_rl_t_all : float;
}

let table4 =
  [
    { case = "I1"; without_rl_t_all = 49.79; with_rl_t_all = 18.34 };
    { case = "I2"; without_rl_t_all = 77.04; with_rl_t_all = 18.70 };
    { case = "I3"; without_rl_t_all = 61.41; with_rl_t_all = 16.42 };
    { case = "I4"; without_rl_t_all = 50.19; with_rl_t_all = 14.28 };
    { case = "I5"; without_rl_t_all = 31.46; with_rl_t_all = 10.39 };
    { case = "Avg."; without_rl_t_all = 53.98; with_rl_t_all = 15.63 };
  ]

type mapper_row = {
  case : string;
  conventional_solve : float;
  ours_solve : float;
}

let table5 =
  [
    { case = "I1"; conventional_solve = 4.43; ours_solve = 3.21 };
    { case = "I2"; conventional_solve = 4.41; ours_solve = 2.20 };
    { case = "I3"; conventional_solve = 2.91; ours_solve = 1.46 };
    { case = "I4"; conventional_solve = 2.50; ours_solve = 1.77 };
    { case = "I5"; conventional_solve = 1.10; ours_solve = 0.89 };
    { case = "Avg."; conventional_solve = 3.07; ours_solve = 1.91 };
  ]

type cnf_row = {
  case : string;
  baseline_solve : float option;
  een_t_all : float option;
  een_reduction : float;
  ours_t_all : float;
  ours_reduction : float;
}

let table6 =
  [
    { case = "C1"; baseline_solve = Some 968.73; een_t_all = Some 833.76;
      een_reduction = 13.93; ours_t_all = 270.05; ours_reduction = 72.12 };
    { case = "C2"; baseline_solve = None; een_t_all = None;
      een_reduction = 0.0; ours_t_all = 764.84; ours_reduction = 23.52 };
    { case = "C3"; baseline_solve = Some 153.96; een_t_all = Some 124.91;
      een_reduction = 18.87; ours_t_all = 117.13; ours_reduction = 23.92 };
    { case = "C4"; baseline_solve = Some 190.79; een_t_all = Some 216.16;
      een_reduction = -13.30; ours_t_all = 152.27; ours_reduction = 20.19 };
    { case = "C5"; baseline_solve = Some 50.69; een_t_all = Some 47.29;
      een_reduction = 6.72; ours_t_all = 35.60; ours_reduction = 29.77 };
    { case = "C6"; baseline_solve = None; een_t_all = Some 592.56;
      een_reduction = 40.74; ours_t_all = 386.51; ours_reduction = 61.35 };
    { case = "C7"; baseline_solve = Some 118.47; een_t_all = Some 214.89;
      een_reduction = -81.39; ours_t_all = 40.08; ours_reduction = 66.17 };
    { case = "C8"; baseline_solve = Some 324.97; een_t_all = Some 151.79;
      een_reduction = 53.29; ours_t_all = 45.26; ours_reduction = 86.07 };
    { case = "Avg."; baseline_solve = Some 475.95; een_t_all = Some 397.67;
      een_reduction = 16.45; ours_t_all = 226.47; ours_reduction = 52.42 };
  ]

type size_row = {
  case : string;
  gates_per_level_before : float;
  luts_per_level_after : float;
}

let table7 =
  [
    { case = "I1"; gates_per_level_before = 226.11; luts_per_level_after = 77.09 };
    { case = "I2"; gates_per_level_before = 234.34; luts_per_level_after = 88.00 };
    { case = "I3"; gates_per_level_before = 228.26; luts_per_level_after = 87.83 };
    { case = "I4"; gates_per_level_before = 211.63; luts_per_level_after = 80.66 };
    { case = "I5"; gates_per_level_before = 186.53; luts_per_level_after = 63.07 };
    { case = "C1"; gates_per_level_before = 3.78; luts_per_level_after = 2386.18 };
    { case = "C2"; gates_per_level_before = 3.70; luts_per_level_after = 2513.65 };
    { case = "C3"; gates_per_level_before = 2.08; luts_per_level_after = 508.50 };
    { case = "C4"; gates_per_level_before = 2.48; luts_per_level_after = 622.19 };
    { case = "C5"; gates_per_level_before = 2.85; luts_per_level_after = 129.50 };
    { case = "C6"; gates_per_level_before = 2.85; luts_per_level_after = 150.73 };
    { case = "C7"; gates_per_level_before = 2.33; luts_per_level_after = 786.31 };
    { case = "C8"; gates_per_level_before = 2.80; luts_per_level_after = 724.38 };
  ]

let avg_reduction_lec_ours = 96.14
let avg_reduction_lec_een = 77.16
let avg_reduction_cnf_ours = 52.42
let avg_reduction_cnf_een = 16.45
let branching_and2 = 3
let branching_xor2 = 4
