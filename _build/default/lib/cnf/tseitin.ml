type encoding = {
  formula : Formula.t;
  node_var : int array;
  output_lits : int array;
}

let encode ?(assert_outputs = true) ?(plaisted_greenbaum = false) g =
  let n = Aig.Graph.num_nodes g in
  let npis = Aig.Graph.num_pis g in
  (* Only encode nodes in the transitive fanin of an output. *)
  let reachable = Array.make n false in
  (* Explicit stack: recovered constraint chains can be very deep. *)
  let stack = ref [] in
  let visit id = stack := id :: !stack;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        if not reachable.(id) then begin
          reachable.(id) <- true;
          if Aig.Graph.is_and g id then begin
            stack :=
              Aig.Graph.node_of_lit (Aig.Graph.fanin0 g id)
              :: Aig.Graph.node_of_lit (Aig.Graph.fanin1 g id)
              :: !stack
          end
        end
    done
  in
  Array.iter
    (fun l ->
      let id = Aig.Graph.node_of_lit l in
      if id <> 0 then visit id)
    (Aig.Graph.pos g);
  let node_var = Array.make n 0 in
  (* PIs always get variables 1..npis, reachable or not, so models map
     back to input assignments uniformly. *)
  for i = 1 to npis do
    node_var.(i) <- i
  done;
  let next = ref (npis + 1) in
  Aig.Graph.iter_ands g (fun id ->
      if reachable.(id) then begin
        node_var.(id) <- !next;
        incr next
      end);
  let num_vars = !next - 1 in
  let lit_of l =
    let v = node_var.(Aig.Graph.node_of_lit l) in
    assert (v > 0);
    if Aig.Graph.is_compl l then -v else v
  in
  (* Polarity marking for Plaisted-Greenbaum: 1 = positive use,
     2 = negative use, 3 = both.  Outputs are positive contexts. *)
  let polarity = Array.make n 0 in
  if plaisted_greenbaum then begin
    let mark id p = polarity.(id) <- polarity.(id) lor p in
    Array.iter
      (fun l ->
        let id = Aig.Graph.node_of_lit l in
        if id <> 0 then mark id (if Aig.Graph.is_compl l then 2 else 1))
      (Aig.Graph.pos g);
    (* Descending ids = reverse topological order. *)
    for id = n - 1 downto 1 do
      if reachable.(id) && Aig.Graph.is_and g id && polarity.(id) <> 0 then begin
        let push l =
          let child = Aig.Graph.node_of_lit l in
          if child <> 0 then begin
            let p = polarity.(id) in
            let p = if Aig.Graph.is_compl l then
                ((p land 1) * 2) lor ((p land 2) / 2)
              else p
            in
            mark child p
          end
        in
        push (Aig.Graph.fanin0 g id);
        push (Aig.Graph.fanin1 g id)
      end
    done
  end;
  let clauses = ref [] in
  Aig.Graph.iter_ands g (fun id ->
      if reachable.(id) then begin
        let o = node_var.(id) in
        let a = lit_of (Aig.Graph.fanin0 g id)
        and b = lit_of (Aig.Graph.fanin1 g id) in
        let p = if plaisted_greenbaum then polarity.(id) else 3 in
        if p land 1 <> 0 then
          clauses := [| -o; a |] :: [| -o; b |] :: !clauses;
        if p land 2 <> 0 then clauses := [| o; -a; -b |] :: !clauses
      end);
  let output_lits =
    Array.map
      (fun l ->
        if l = Aig.Graph.const_false then 0
        else if l = Aig.Graph.const_true then 0
        else lit_of l)
      (Aig.Graph.pos g)
  in
  if assert_outputs then
    Array.iter
      (fun l ->
        let lit =
          if l = Aig.Graph.const_true then None
          else if l = Aig.Graph.const_false then Some [||]
          else Some [| lit_of l |]
        in
        match lit with
        | Some c -> clauses := c :: !clauses
        | None -> ())
      (Aig.Graph.pos g);
  {
    formula = Formula.create ~num_vars (List.rev !clauses);
    node_var;
    output_lits;
  }

let input_assignment _enc g model =
  Array.init (Aig.Graph.num_pis g) (fun i -> model.(i))
