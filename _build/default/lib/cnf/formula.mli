(** CNF formulas in DIMACS literal convention.

    A literal is a nonzero integer; positive means the variable, negative
    its complement.  Variables are numbered from 1. *)

type t = {
  num_vars : int;
  clauses : int array array;
}

val create : num_vars:int -> int array list -> t
(** Validates every literal is nonzero with |lit| <= num_vars.
    @raise Invalid_argument otherwise. *)

val num_clauses : t -> int
val num_literals : t -> int

val add_clauses : t -> int array list -> t

val eval : t -> bool array -> bool
(** [eval f assignment] with [assignment.(v - 1)] the value of variable
    [v]. *)

val is_trivially_unsat : t -> bool
(** Contains an empty clause. *)

val map_vars : t -> f:(int -> int) -> num_vars:int -> t
(** Renames variables ([f] acts on variable indices, preserving sign). *)

val pp : Format.formatter -> t -> unit
