(** Tseitin encoding of AIGs into CNF.

    Every reachable node gets a CNF variable; an AND node [o = a * b]
    contributes the three clauses [(~o a) (~o b) (o ~a ~b)].  Primary
    inputs take variables [1 .. num_pis] so models restrict directly to
    input assignments. *)

type encoding = {
  formula : Formula.t;
  node_var : int array;   (** node id -> variable (0 if unreachable) *)
  output_lits : int array; (** DIMACS literal of each PO *)
}

val encode :
  ?assert_outputs:bool -> ?plaisted_greenbaum:bool -> Aig.Graph.t -> encoding
(** [encode ~assert_outputs g]: when [assert_outputs] (default true) a
    unit clause forces every primary output to 1, so the formula is
    satisfiable iff some input assignment sets all outputs.  A
    constant-true PO contributes nothing; a constant-false PO makes the
    formula trivially unsatisfiable (empty clause).

    With [plaisted_greenbaum] (default false) the polarity-aware
    encoding is used: a gate referenced in only one polarity keeps only
    the implication clauses of that direction.  Equisatisfiable with
    the full encoding (and smaller), but gate variables in a model are
    no longer guaranteed to equal the gate's simulated value — only
    input variables are meaningful. *)

val input_assignment : encoding -> Aig.Graph.t -> bool array -> bool array
(** Restrict a model (array of [num_vars] booleans) to PI values. *)
