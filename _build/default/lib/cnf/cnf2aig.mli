(** Circuit recovery from CNF (the [cnf2aig] substrate, after Seltner's
    "Extracting hardware circuits from CNF formulas").

    Scans the clause set for Tseitin-style gate definitions —
    multi-input AND/OR/NAND/NOR patterns and 2-input XOR/XNOR patterns —
    and rebuilds a DAG from them.  In the default mode a definition
    [v = f(inputs)] is accepted only when every input variable is
    numerically smaller than [v], which guarantees acyclicity (and
    recovers everything for CNFs produced by {!Tseitin.encode}).  In
    [advanced] mode — the improved transformation the paper's §4.6
    calls for — candidates are accepted in decreasing-width order with
    an explicit dependency-cycle check, so recovery survives arbitrary
    variable renumbering.

    Variables without an accepted definition become primary inputs;
    clauses not absorbed by a definition become constraint cones,
    chained into the single primary output (so the original formula is
    satisfiable iff the circuit output can be driven to 1). *)

type result = {
  graph : Aig.Graph.t;
  pi_vars : int array;        (** original variable of each PI *)
  gates_recovered : int;
  clauses_absorbed : int;
}

val run : ?advanced:bool -> Formula.t -> result

val stats : result -> string
(** Human-readable one-liner for logs. *)
