(** DIMACS CNF reading and writing. *)

exception Parse_error of string

val write_string : Formula.t -> string
val write_file : Formula.t -> string -> unit

val read_string : string -> Formula.t
(** Accepts comment lines, a ["p cnf"] header and zero-terminated
    clauses possibly spanning lines.  @raise Parse_error otherwise. *)

val read_file : string -> Formula.t
