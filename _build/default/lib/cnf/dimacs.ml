exception Parse_error of string

let write_string f =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" f.Formula.num_vars
       (Formula.num_clauses f));
  Array.iter
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l);
                   Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    f.Formula.clauses;
  Buffer.contents buf

let write_file f path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string f))

let read_string s =
  let tokens =
    String.split_on_char '\n' s
    |> List.filter (fun line ->
           let line = String.trim line in
           line = "" || (line.[0] <> 'c' && line.[0] <> '%'))
    |> String.concat " "
    |> String.split_on_char ' '
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | "p" :: "cnf" :: nv :: nc :: rest ->
    let num_vars, num_clauses =
      try (int_of_string nv, int_of_string nc)
      with Failure _ -> raise (Parse_error "bad p-line")
    in
    let lits =
      List.map
        (fun t ->
          try int_of_string t
          with Failure _ -> raise (Parse_error ("bad token: " ^ t)))
        rest
    in
    let clauses = ref [] and current = ref [] in
    List.iter
      (fun l ->
        if l = 0 then begin
          clauses := Array.of_list (List.rev !current) :: !clauses;
          current := []
        end
        else current := l :: !current)
      lits;
    if !current <> [] then raise (Parse_error "trailing unterminated clause");
    let clauses = List.rev !clauses in
    if List.length clauses <> num_clauses then
      raise
        (Parse_error
           (Printf.sprintf "clause count mismatch: header %d, found %d"
              num_clauses (List.length clauses)));
    (try Formula.create ~num_vars clauses
     with Invalid_argument m -> raise (Parse_error m))
  | _ -> raise (Parse_error "missing 'p cnf' header")

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      read_string (really_input_string ic len))
