lib/cnf/tseitin.mli: Aig Formula
