lib/cnf/dimacs.ml: Array Buffer Formula Fun List Printf String
