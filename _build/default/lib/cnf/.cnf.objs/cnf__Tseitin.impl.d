lib/cnf/tseitin.ml: Aig Array Formula List
