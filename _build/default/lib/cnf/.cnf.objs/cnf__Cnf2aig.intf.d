lib/cnf/cnf2aig.mli: Aig Formula
