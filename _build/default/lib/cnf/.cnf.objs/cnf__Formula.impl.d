lib/cnf/formula.ml: Array Format List Printf
