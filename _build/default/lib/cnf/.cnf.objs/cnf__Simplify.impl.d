lib/cnf/simplify.ml: Array Formula Fun Hashtbl List Option Printf
