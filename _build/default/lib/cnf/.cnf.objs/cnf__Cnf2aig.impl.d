lib/cnf/cnf2aig.ml: Aig Array Formula Hashtbl List Option Printf
