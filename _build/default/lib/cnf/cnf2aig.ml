type result = {
  graph : Aig.Graph.t;
  pi_vars : int array;
  gates_recovered : int;
  clauses_absorbed : int;
}

type gate =
  | And_gate of { out_lit : int; others : int array }
    (* lit(out_lit) = AND over (not m) for m in others. *)
  | Xor_gate of { out_lit : int; a : int; b : int }
    (* lit(out_lit) = a xor b (DIMACS literals a, b). *)

type candidate = {
  out_var : int;
  gate : gate;
  width : int;
  absorbed : int list; (* indices of the clauses the definition implies *)
}

let sorted_key c =
  let c = Array.copy c in
  Array.sort compare c;
  c

(* Scan the clause set for AND and XOR definition patterns.  Every
   (clause, output literal) pair is examined; callers filter and rank
   the returned candidates. *)
let collect_candidates clauses clause_index =
  let mem_clause lits =
    Hashtbl.find_opt clause_index (sorted_key (Array.of_list lits))
  in
  let candidates = ref [] in
  Array.iteri
    (fun ci c ->
      let len = Array.length c in
      if len >= 2 then begin
        let vars = Array.map abs c in
        let k = sorted_key vars in
        let distinct =
          let ok = ref true in
          for i = 1 to len - 1 do
            if k.(i) = k.(i - 1) then ok := false
          done;
          !ok
        in
        if distinct then
          Array.iteri
            (fun j l ->
              let others =
                Array.of_list
                  (List.filteri (fun j' _ -> j' <> j) (Array.to_list c))
              in
              (* AND pattern: binaries (-l, -m) for every other m. *)
              let binaries =
                Array.to_list others
                |> List.map (fun m -> mem_clause [ -l; -m ])
              in
              if List.for_all Option.is_some binaries then begin
                let absorbed =
                  ci
                  :: List.concat_map
                       (function Some idxs -> idxs | None -> [])
                       binaries
                in
                candidates :=
                  {
                    out_var = abs l;
                    gate = And_gate { out_lit = l; others };
                    width = Array.length others;
                    absorbed;
                  }
                  :: !candidates
              end;
              (* XOR pattern on ternary clauses: the three two-flip
                 variants must be present; then (not l) = m1 xor m2. *)
              if len = 3 then begin
                match Array.to_list others with
                | [ m1; m2 ] -> (
                  let v1 = mem_clause [ l; -m1; -m2 ]
                  and v2 = mem_clause [ -l; m1; -m2 ]
                  and v3 = mem_clause [ -l; -m1; m2 ] in
                  match (v1, v2, v3) with
                  | Some i1, Some i2, Some i3 ->
                    candidates :=
                      {
                        out_var = abs l;
                        gate = Xor_gate { out_lit = -l; a = m1; b = m2 };
                        width = 2;
                        absorbed = ci :: (i1 @ i2 @ i3);
                      }
                      :: !candidates
                  | _ -> ())
                | _ -> assert false
              end)
            c
      end)
    clauses;
  !candidates

let gate_input_vars = function
  | And_gate { others; _ } -> Array.to_list (Array.map abs others)
  | Xor_gate { a; b; _ } -> [ abs a; abs b ]

(* Basic mode: accept only definitions whose inputs have smaller
   variable indices — acyclic by construction, one (widest) definition
   per variable. *)
let select_basic candidates =
  let chosen = Hashtbl.create 256 in
  List.iter
    (fun cand ->
      if List.for_all (fun v -> v < cand.out_var) (gate_input_vars cand.gate)
      then
        match Hashtbl.find_opt chosen cand.out_var with
        | Some prev when prev.width >= cand.width -> ()
        | Some _ | None -> Hashtbl.replace chosen cand.out_var cand)
    candidates;
  chosen

(* Advanced mode (§4.6 future work): start from the order-consistent
   choices (so recovery never regresses below basic mode), then rank
   the remaining candidates by width and accept greedily under an
   explicit dependency-cycle check — gate recovery becomes independent
   of variable numbering. *)
let select_advanced candidates =
  let chosen : (int, candidate) Hashtbl.t = select_basic candidates in
  (* depends v = input vars of v's chosen definition. *)
  let creates_cycle out inputs =
    (* Does out appear in the transitive dependencies of any input? *)
    let visited = Hashtbl.create 64 in
    let rec reaches v =
      v = out
      || (not (Hashtbl.mem visited v))
         && begin
           Hashtbl.add visited v ();
           match Hashtbl.find_opt chosen v with
           | None -> false
           | Some c -> List.exists reaches (gate_input_vars c.gate)
         end
    in
    List.exists reaches inputs
  in
  let ranked =
    List.sort
      (fun a b ->
        let d = compare b.width a.width in
        if d <> 0 then d else compare a.out_var b.out_var)
      candidates
  in
  List.iter
    (fun cand ->
      if not (Hashtbl.mem chosen cand.out_var) then begin
        let inputs = gate_input_vars cand.gate in
        if
          (not (List.mem cand.out_var inputs))
          && not (creates_cycle cand.out_var inputs)
        then Hashtbl.replace chosen cand.out_var cand
      end)
    ranked;
  chosen

let run ?(advanced = false) f =
  let clauses = f.Formula.clauses in
  let nclauses = Array.length clauses in
  let clause_index : (int array, int list) Hashtbl.t =
    Hashtbl.create (2 * nclauses)
  in
  Array.iteri
    (fun i c ->
      let k = sorted_key c in
      let prev = Option.value (Hashtbl.find_opt clause_index k) ~default:[] in
      Hashtbl.replace clause_index k (i :: prev))
    clauses;
  let candidates = collect_candidates clauses clause_index in
  let chosen =
    if advanced then select_advanced candidates else select_basic candidates
  in
  let absorbed = Array.make nclauses false in
  Hashtbl.iter
    (fun _v cand -> List.iter (fun i -> absorbed.(i) <- true) cand.absorbed)
    chosen;
  let defined v = Hashtbl.mem chosen v in
  let pi_vars =
    List.init f.Formula.num_vars (fun i -> i + 1)
    |> List.filter (fun v -> not (defined v))
    |> Array.of_list
  in
  let g = Aig.Graph.create ~num_pis:(Array.length pi_vars) in
  let var_lit = Array.make (f.Formula.num_vars + 1) Aig.Graph.const_false in
  let built = Array.make (f.Formula.num_vars + 1) false in
  Array.iteri
    (fun i v ->
      var_lit.(v) <- Aig.Graph.pi g i;
      built.(v) <- true)
    pi_vars;
  (* Materialize gates in dependency order. *)
  let rec build v =
    if not built.(v) then begin
      built.(v) <- true;
      match Hashtbl.find_opt chosen v with
      | None -> assert false (* PIs are pre-built *)
      | Some cand ->
        List.iter build (gate_input_vars cand.gate);
        let lit_of_dimacs l =
          Aig.Graph.lit_not_cond var_lit.(abs l) (l < 0)
        in
        let value =
          match cand.gate with
          | And_gate { out_lit; others } ->
            let conj =
              Aig.Graph.and_list g
                (Array.to_list others |> List.map (fun m -> lit_of_dimacs (-m)))
            in
            Aig.Graph.lit_not_cond conj (out_lit < 0)
          | Xor_gate { out_lit; a; b } ->
            let x = Aig.Graph.xor_ g (lit_of_dimacs a) (lit_of_dimacs b) in
            Aig.Graph.lit_not_cond x (out_lit < 0)
        in
        var_lit.(v) <- value
    end
  in
  Hashtbl.iter (fun v _ -> build v) chosen;
  let lit_of_dimacs l = Aig.Graph.lit_not_cond var_lit.(abs l) (l < 0) in
  (* Remaining clauses: constraint cones conjoined into the single PO.
     The conjunction is chained linearly, matching the behaviour (and
     the narrow, thousands-of-levels AIG shape) of the cnf2aig tool the
     paper discusses in §4.6; the synthesis operations — balance in
     particular — are what reshape it. *)
  let po = ref Aig.Graph.const_true in
  let clauses_absorbed = ref 0 in
  Array.iteri
    (fun i c ->
      if absorbed.(i) then incr clauses_absorbed
      else
        let cone =
          Aig.Graph.or_list g (Array.to_list c |> List.map lit_of_dimacs)
        in
        po := Aig.Graph.and_ g !po cone)
    clauses;
  Aig.Graph.add_po g !po;
  {
    graph = g;
    pi_vars;
    gates_recovered = Hashtbl.length chosen;
    clauses_absorbed = !clauses_absorbed;
  }

let stats r =
  Printf.sprintf
    "cnf2aig: %d gates recovered, %d clauses absorbed, %d PIs, %d ANDs"
    r.gates_recovered r.clauses_absorbed
    (Aig.Graph.num_pis r.graph)
    (Aig.Graph.num_ands r.graph)
