type t = { num_vars : int; clauses : int array array }

let validate num_vars clause =
  Array.iter
    (fun l ->
      if l = 0 || abs l > num_vars then
        invalid_arg
          (Printf.sprintf "Formula: literal %d out of range (1..%d)" l num_vars))
    clause

let create ~num_vars clauses =
  if num_vars < 0 then invalid_arg "Formula.create: negative num_vars";
  List.iter (validate num_vars) clauses;
  { num_vars; clauses = Array.of_list clauses }

let num_clauses f = Array.length f.clauses

let num_literals f =
  Array.fold_left (fun acc c -> acc + Array.length c) 0 f.clauses

let add_clauses f clauses =
  List.iter (validate f.num_vars) clauses;
  { f with clauses = Array.append f.clauses (Array.of_list clauses) }

let eval f assignment =
  if Array.length assignment <> f.num_vars then
    invalid_arg "Formula.eval: assignment size mismatch";
  let lit_true l =
    let v = assignment.(abs l - 1) in
    if l > 0 then v else not v
  in
  Array.for_all (fun c -> Array.exists lit_true c) f.clauses

let is_trivially_unsat f = Array.exists (fun c -> Array.length c = 0) f.clauses

let map_vars f ~f:rename ~num_vars =
  let rename_lit l =
    let v = rename (abs l) in
    if v <= 0 || v > num_vars then invalid_arg "Formula.map_vars: bad target";
    if l > 0 then v else -v
  in
  { num_vars; clauses = Array.map (Array.map rename_lit) f.clauses }

let pp ppf f =
  Format.fprintf ppf "p cnf %d %d@." f.num_vars (num_clauses f);
  Array.iter
    (fun c ->
      Array.iter (fun l -> Format.fprintf ppf "%d " l) c;
      Format.fprintf ppf "0@.")
    f.clauses
