type config = { dim : int; rounds : int; sim_words : int; seed : int }

let default_config = { dim = 16; rounds = 3; sim_words = 4; seed = 0xD33B }

let num_input_features = 5

(* Frozen Xavier-style random matrix. *)
let frozen_matrix rng rows cols =
  let scale = sqrt (2.0 /. float_of_int (rows + cols)) in
  Array.init rows (fun _ ->
      Array.init cols (fun _ -> scale *. Aig.Rng.gaussian rng))

let matvec m v =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun i x -> acc := !acc +. (x *. v.(i))) row;
      !acc)
    m

let add3 a b c = Array.init (Array.length a) (fun i -> a.(i) +. b.(i) +. c.(i))
let scale s v = Array.map (fun x -> s *. x) v

let node_embeddings ?(config = default_config) g =
  let n = Aig.Graph.num_nodes g in
  let rng = Aig.Rng.create config.seed in
  (* Frozen parameters; drawn in a fixed order so they do not depend on
     the circuit. *)
  let w_in = frozen_matrix rng config.dim num_input_features in
  let w_self = frozen_matrix rng config.dim config.dim in
  let w_fanin = frozen_matrix rng config.dim config.dim in
  let sigs = Aig.Sim.random g ~words:config.sim_words ~seed:(config.seed + 1) in
  let levels = Aig.Graph.levels g in
  let refs = Aig.Graph.ref_counts g in
  let max_level = float_of_int (max 1 (Array.fold_left max 0 levels)) in
  let max_refs = float_of_int (max 1 (Array.fold_left max 0 refs)) in
  let input_features id =
    let prob = if id = 0 then 0.0 else Aig.Sim.prob_one sigs.(id) in
    [|
      prob;
      float_of_int levels.(id) /. max_level;
      float_of_int refs.(id) /. max_refs;
      (if Aig.Graph.is_pi g id then 1.0 else 0.0);
      (if Aig.Graph.is_and g id then 1.0 else 0.0);
    |]
  in
  let h = Array.init n (fun id -> matvec w_in (input_features id)) in
  let tanh_inplace v = Array.map tanh v in
  for _round = 1 to config.rounds do
    (* Topological order: fanins already updated this round, mirroring
       DeepGate's directed propagation from PIs to POs. *)
    Aig.Graph.iter_ands g (fun id ->
        let f0 = Aig.Graph.fanin0 g id and f1 = Aig.Graph.fanin1 g id in
        let msg l =
          let v = h.(Aig.Graph.node_of_lit l) in
          if Aig.Graph.is_compl l then scale (-1.0) v else v
        in
        let combined =
          add3 (matvec w_self h.(id))
            (matvec w_fanin (msg f0))
            (matvec w_fanin (msg f1))
        in
        h.(id) <- tanh_inplace combined)
  done;
  h

let po_embedding ?(config = default_config) g =
  let h = node_embeddings ~config g in
  let acc = Array.make config.dim 0.0 in
  let count = ref 0 in
  Array.iter
    (fun l ->
      let id = Aig.Graph.node_of_lit l in
      if id <> 0 then begin
        incr count;
        let v = h.(id) in
        let sign = if Aig.Graph.is_compl l then -1.0 else 1.0 in
        Array.iteri (fun i x -> acc.(i) <- acc.(i) +. (sign *. x)) v
      end)
    (Aig.Graph.pos g);
  if !count = 0 then acc
  else Array.map (fun x -> x /. float_of_int !count) acc

let distance a b =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc
