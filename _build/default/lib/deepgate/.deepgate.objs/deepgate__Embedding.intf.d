lib/deepgate/embedding.mli: Aig
