lib/deepgate/embedding.ml: Aig Array
