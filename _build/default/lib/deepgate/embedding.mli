(** Deterministic gate-level circuit embeddings — the DeepGate2
    stand-in (see DESIGN.md, Substitutions).

    DeepGate2 is a pretrained GNN producing per-gate vectors that mix
    functional and structural information.  Without its weights we keep
    the architecture and freeze the parameters: per-gate input features
    come from bit-parallel random simulation (signature probability),
    topology (level, fanout) and gate polarity; [rounds] of
    topologically ordered message passing with fixed Xavier-initialized
    projections (seeded PRNG) propagate them; the primary-output
    embedding summarizes the instance for the RL state (Eq. 2 of the
    paper).  The encoding is deterministic, differentiable-free and
    sensitive to both structure and function, which is the role the RL
    agent needs it to play. *)

type config = {
  dim : int;        (** embedding width (default 16) *)
  rounds : int;     (** message-passing rounds (default 3) *)
  sim_words : int;  (** 64-bit simulation words (default 4) *)
  seed : int;       (** seed of the frozen weights and patterns *)
}

val default_config : config

val node_embeddings : ?config:config -> Aig.Graph.t -> float array array
(** One vector of length [dim] per node. *)

val po_embedding : ?config:config -> Aig.Graph.t -> float array
(** Mean over primary outputs of the driver embeddings, complement
    encoded by sign flip; the \mathcal{D}(G^0) component of the RL
    state.  All-zero for a circuit with only constant outputs. *)

val distance : float array -> float array -> float
(** Euclidean distance between embeddings. *)
