(* Equivalence checking of arithmetic datapaths — the workload class
   the paper's industrial LEC instances come from.  Two structurally
   different adders (ripple vs. carry-select) and two multiplier
   accumulation orders are checked with the staged CEC flow
   (simulation, FRAIG sweeping, SAT), and the same miters are pushed
   through the preprocessing pipeline to show the solving-time effect.

     dune exec examples/arithmetic_lec.exe -- [--bits N] *)

let arg_int flag default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = flag then int_of_string Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  let bits = arg_int "--bits" 8 in

  Printf.printf "== %d-bit adders: ripple vs carry-select ==\n%!" bits;
  let ripple = Workloads.Arith.adder_circuit ~bits ~variant:`Ripple in
  let csel = Workloads.Arith.adder_circuit ~bits ~variant:`Carry_select in
  Format.printf "ripple:       %a@." Aig.Graph.pp_stats ripple;
  Format.printf "carry-select: %a@." Aig.Graph.pp_stats csel;
  let t0 = Sys.time () in
  let verdict = Synth.Cec.check ripple csel in
  Printf.printf "CEC: %s in %.3fs\n%!"
    (Synth.Cec.verdict_to_string verdict)
    (Sys.time () -. t0);

  (* Inject a bug and watch CEC produce a counterexample. *)
  let buggy = Workloads.Lec.inject_fault ~seed:11 csel in
  (match Synth.Cec.check ripple buggy with
   | Synth.Cec.Different cex ->
     let value half =
       let outs = cex in
       let v = ref 0 in
       Array.iteri
         (fun i b -> if b && i / bits = half then
             v := !v lor (1 lsl (i mod bits)))
         outs;
       !v
     in
     Printf.printf "injected fault found: differs on %d + %d\n%!" (value 0)
       (value 1)
   | v ->
     Printf.printf "unexpected verdict on buggy adder: %s\n%!"
       (Synth.Cec.verdict_to_string v));

  Printf.printf "\n== %d-bit multiplier miter through the pipeline ==\n%!"
    (bits / 2 + 2);
  let m = Workloads.Arith.multiplier_miter ~bits:(bits / 2 + 2) in
  let inst = Eda4sat.Instance.of_circuit ~name:"mult-miter" m in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some 120.0 }
  in
  let rb = Eda4sat.Pipeline.run ~limits Eda4sat.Pipeline.baseline inst in
  Format.printf "baseline %a@." Eda4sat.Pipeline.pp_report rb;
  let ro = Eda4sat.Pipeline.run ~limits (Eda4sat.Pipeline.ours ()) inst in
  Format.printf "ours     %a@." Eda4sat.Pipeline.pp_report ro;
  Printf.printf "reduction: %.1f%%\n"
    (Eda4sat.Pipeline.reduction ~baseline:rb ro)
