(* CNF pipeline example: the §4.5 path.  Takes a DIMACS file (or
   generates a pigeonhole instance), recovers circuit structure with
   cnf2aig, preprocesses and solves.

     dune exec examples/cnf_pipeline.exe -- [file.cnf] *)

let () =
  let f, name =
    if Array.length Sys.argv > 1 then
      (Cnf.Dimacs.read_file Sys.argv.(1), Filename.basename Sys.argv.(1))
    else begin
      print_endline
        "no DIMACS file given; using a pigeonhole instance php(8,7)";
      (Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7, "php(8,7)")
    end
  in
  Printf.printf "%s: %d variables, %d clauses\n%!" name
    f.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f);

  (* Show what circuit recovery finds (§4.6 discusses its limits on
     structure-free CNFs). *)
  let recovery = Cnf.Cnf2aig.run f in
  print_endline (Cnf.Cnf2aig.stats recovery);
  let g = recovery.Cnf.Cnf2aig.graph in
  let levs = max 1 (Aig.Graph.depth g) in
  Printf.printf "recovered AIG: %.2f gates/level (narrow = little structure)\n%!"
    (float_of_int (Aig.Graph.num_ands g) /. float_of_int levs);

  let inst = Eda4sat.Instance.of_cnf ~name f in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some 300.0 }
  in
  let rb = Eda4sat.Pipeline.run ~limits Eda4sat.Pipeline.baseline inst in
  Format.printf "baseline  %a@." Eda4sat.Pipeline.pp_report rb;
  let ro = Eda4sat.Pipeline.run ~limits (Eda4sat.Pipeline.ours ()) inst in
  Format.printf "ours      %a@." Eda4sat.Pipeline.pp_report ro;
  Printf.printf "reduction vs baseline: %.1f%%\n"
    (Eda4sat.Pipeline.reduction ~baseline:rb ro)
