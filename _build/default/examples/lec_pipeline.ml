(* LEC pipeline example: generate an equivalence-checking miter the
   way the paper's industrial I-cases look, and compare the three
   flows — direct solving, the Eén-2007 circuit preprocessor "[15]",
   and the EDA-driven framework.

     dune exec examples/lec_pipeline.exe -- [--buggy] [--ands N] *)

let () =
  let buggy = Array.exists (( = ) "--buggy") Sys.argv in
  let ands =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then 500
      else if Sys.argv.(i) = "--ands" then int_of_string Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  Printf.printf "Generating a %s LEC miter (~%d AND gates)...\n%!"
    (if buggy then "buggy (satisfiable)" else "clean (unsatisfiable)")
    ands;
  let g = Workloads.Lec.generate ~buggy ~seed:777 ~num_pis:24 ~num_ands:ands () in
  Printf.printf "miter: %d PIs, %d ANDs, depth %d, single PO\n%!"
    (Aig.Graph.num_pis g) (Aig.Graph.num_ands g) (Aig.Graph.depth g);
  let inst = Eda4sat.Instance.of_circuit ~name:"lec-example" g in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some 300.0 }
  in
  let run label cfg =
    let r = Eda4sat.Pipeline.run ~limits cfg inst in
    Format.printf "%-10s %a@." label Eda4sat.Pipeline.pp_report r;
    r
  in
  let rb = run "baseline" Eda4sat.Pipeline.baseline in
  let re = run "[15]" Eda4sat.Pipeline.een2007 in
  let ro = run "ours" (Eda4sat.Pipeline.ours ()) in
  Printf.printf "\nreduction vs baseline: [15] %.1f%%, ours %.1f%%\n"
    (Eda4sat.Pipeline.reduction ~baseline:rb re)
    (Eda4sat.Pipeline.reduction ~baseline:rb ro);
  match (ro.Eda4sat.Pipeline.aig_before, ro.Eda4sat.Pipeline.aig_after) with
  | Some b, Some a ->
    Printf.printf
      "circuit: %d -> %d ANDs after synthesis; %d LUTs / %d levels after \
       mapping\n"
      b.Aig.Stats.area a.Aig.Stats.area ro.Eda4sat.Pipeline.netlist_luts
      ro.Eda4sat.Pipeline.netlist_levels
  | _ -> ()
