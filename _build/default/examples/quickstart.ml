(* Quickstart: build a small circuit, run the EDA-driven preprocessing
   pipeline on it, and compare against solving directly.

     dune exec examples/quickstart.exe *)

let () =
  (* A 16-bit odd-parity checker equivalence problem: parity computed
     two ways, mitered.  CDCL dislikes XOR chains; the preprocessor
     collapses them. *)
  let n = 16 in
  let g = Aig.Graph.create ~num_pis:n in
  let pis = List.init n (Aig.Graph.pi g) in
  (* Chain parity. *)
  let chain =
    List.fold_left (fun acc l -> Aig.Graph.xor_ g acc l)
      Aig.Graph.const_false pis
  in
  (* Tree parity. *)
  let rec tree = function
    | [] -> Aig.Graph.const_false
    | [ l ] -> l
    | ls ->
      let rec split acc = function
        | [] -> (List.rev acc, [])
        | x :: rest when List.length acc < List.length ls / 2 ->
          split (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let left, right = split [] ls in
      Aig.Graph.xor_ g (tree left) (tree right)
  in
  Aig.Graph.add_po g (Aig.Graph.xor_ g chain (tree pis));
  Printf.printf "Miter: %d PIs, %d AND nodes, depth %d\n" n
    (Aig.Graph.num_ands g) (Aig.Graph.depth g);

  let inst = Eda4sat.Instance.of_circuit ~name:"parity-lec" g in

  (* 1. Solve directly (the baseline). *)
  let direct = Eda4sat.Pipeline.solve_direct inst in
  Format.printf "baseline: %a@." Eda4sat.Pipeline.pp_report direct;

  (* 2. Preprocess with the full framework, then solve. *)
  let ours = Eda4sat.Pipeline.run (Eda4sat.Pipeline.ours ()) inst in
  Format.printf "ours:     %a@." Eda4sat.Pipeline.pp_report ours;
  Printf.printf "recipe used: %s\n"
    (Synth.Recipe.to_string ours.Eda4sat.Pipeline.recipe_used);
  Printf.printf "decisions: %d (baseline) vs %d (preprocessed)\n"
    direct.Eda4sat.Pipeline.solver_stats.Sat.Solver.decisions
    ours.Eda4sat.Pipeline.solver_stats.Sat.Solver.decisions;

  (* On a toy the preprocessing overhead can exceed the solve time; the
     runtime win appears on instances the solver actually struggles
     with.  Part 2: a realistic LEC miter. *)
  print_endline "\n-- part 2: a realistic equivalence-checking miter --";
  let miter =
    Workloads.Lec.generate ~seed:4242 ~num_pis:24 ~num_ands:800 ()
  in
  Printf.printf "Miter: %d PIs, %d AND nodes, depth %d\n%!"
    (Aig.Graph.num_pis miter) (Aig.Graph.num_ands miter)
    (Aig.Graph.depth miter);
  let inst = Eda4sat.Instance.of_circuit ~name:"lec-miter" miter in
  let direct = Eda4sat.Pipeline.solve_direct inst in
  Format.printf "baseline: %a@." Eda4sat.Pipeline.pp_report direct;
  let ours = Eda4sat.Pipeline.run (Eda4sat.Pipeline.ours ()) inst in
  Format.printf "ours:     %a@." Eda4sat.Pipeline.pp_report ours;
  Printf.printf "overall runtime reduction: %.1f%%\n"
    (Eda4sat.Pipeline.reduction ~baseline:direct ours)
