(* Certified solving: preprocess a pigeonhole instance through the
   EDA-driven pipeline, solve the simplified CNF with DRAT proof
   logging, and independently validate the refutation with the RUP
   checker.

     dune exec examples/certified_unsat.exe -- [pigeons] *)

let () =
  let pigeons =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7
  in
  let f = Workloads.Satcomp.pigeonhole ~pigeons ~holes:(pigeons - 1) in
  Printf.printf "php(%d,%d): %d vars, %d clauses (unsatisfiable)\n%!" pigeons
    (pigeons - 1) f.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f);
  let inst = Eda4sat.Instance.of_cnf ~name:"php" f in

  (* 1. Certify the direct solve. *)
  let proof = Sat.Proof.create () in
  let t0 = Sys.time () in
  (match fst (Sat.Solver.solve ~proof f) with
   | Sat.Solver.Unsat -> ()
   | _ -> failwith "expected UNSAT");
  Printf.printf "direct solve: %.2fs, DRAT proof with %d steps\n%!"
    (Sys.time () -. t0) (Sat.Proof.num_steps proof);
  let t0 = Sys.time () in
  let valid = Sat.Proof.check f proof in
  Printf.printf "proof check: %s in %.2fs\n%!"
    (if valid then "VALID" else "INVALID")
    (Sys.time () -. t0);
  assert valid;

  (* 2. Preprocess first: the simplified CNF gets a much shorter
     refutation, certified the same way. *)
  let simplified, report =
    Eda4sat.Pipeline.transform (Eda4sat.Pipeline.ours ()) inst
  in
  Printf.printf "preprocessed (t_trans %.2fs): %d vars, %d clauses\n%!"
    report.Eda4sat.Pipeline.t_trans simplified.Cnf.Formula.num_vars
    (Cnf.Formula.num_clauses simplified);
  let proof2 = Sat.Proof.create () in
  (match fst (Sat.Solver.solve ~proof:proof2 simplified) with
   | Sat.Solver.Unsat -> ()
   | _ -> failwith "expected UNSAT after preprocessing");
  Printf.printf "preprocessed proof: %d steps (vs %d direct)\n%!"
    (Sat.Proof.num_steps proof2) (Sat.Proof.num_steps proof);
  assert (Sat.Proof.check simplified proof2);
  print_endline "both refutations validated by reverse unit propagation"
