examples/certified_unsat.mli:
