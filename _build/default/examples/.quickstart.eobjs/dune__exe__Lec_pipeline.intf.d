examples/lec_pipeline.mli:
