examples/train_agent.ml: Array Eda4sat Format Printf Rl Sat Synth Sys Workloads
