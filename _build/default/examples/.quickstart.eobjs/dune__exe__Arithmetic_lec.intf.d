examples/arithmetic_lec.mli:
