examples/arithmetic_lec.ml: Aig Array Eda4sat Format Printf Sat Synth Sys Workloads
