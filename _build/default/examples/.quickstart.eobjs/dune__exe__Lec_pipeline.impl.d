examples/lec_pipeline.ml: Aig Array Eda4sat Format Printf Sat Sys Workloads
