examples/cnf_pipeline.mli:
