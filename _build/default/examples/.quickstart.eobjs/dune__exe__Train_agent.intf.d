examples/train_agent.mli:
