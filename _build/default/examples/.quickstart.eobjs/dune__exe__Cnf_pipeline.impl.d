examples/cnf_pipeline.ml: Aig Array Cnf Eda4sat Filename Format Printf Sat Sys Workloads
