examples/quickstart.mli:
