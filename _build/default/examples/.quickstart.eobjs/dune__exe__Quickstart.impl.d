examples/quickstart.ml: Aig Eda4sat Format List Printf Sat Synth Workloads
