examples/certified_unsat.ml: Array Cnf Eda4sat Printf Sat Sys Workloads
