(* Train the logic-synthesis RL agent (§3.2) on generated LEC miters
   and report the learning curve, then exercise the trained agent
   inside the full pipeline.

     dune exec examples/train_agent.exe -- [--episodes N] [--out FILE] *)

let arg_int flag default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = flag then int_of_string Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let arg_str flag default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  let episodes = arg_int "--episodes" 30 in
  let out = arg_str "--out" None in
  Printf.printf "Generating training miters...\n%!";
  let instances = Workloads.Suites.training_set ~scale:0.4 ~count:12 () in
  Printf.printf "Training DQN for %d episodes (T=10, gamma=0.98, batch=32)...\n%!"
    episodes;
  let env_config =
    {
      Eda4sat.Env.default_config with
      Eda4sat.Env.reward_limits =
        {
          Sat.Solver.no_limits with
          Sat.Solver.max_decisions = Some 50_000;
          max_seconds = Some 10.0;
        };
    }
  in
  let agent, history =
    Eda4sat.Trainer.train ~env_config instances ~episodes
      ~on_episode:(fun p ->
        if p.Eda4sat.Trainer.episode mod 5 = 0 then
          Printf.printf "  episode %3d: reward %+.3f, loss %.5f\n%!"
            p.Eda4sat.Trainer.episode p.Eda4sat.Trainer.reward
            p.Eda4sat.Trainer.loss)
  in
  Printf.printf "average reward, last 10 episodes: %+.3f\n"
    (Eda4sat.Trainer.average_reward history 10);
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc (Rl.Dqn.save_string agent);
     close_out oc;
     Printf.printf "agent weights saved to %s\n" path
   | None -> ());
  (* Use the trained agent on a fresh, larger miter. *)
  print_endline "Evaluating the trained agent on an unseen miter...";
  let g = Workloads.Lec.generate ~seed:31337 ~num_pis:22 ~num_ands:700 () in
  let inst = Eda4sat.Instance.of_circuit ~name:"eval-miter" g in
  let rb = Eda4sat.Pipeline.solve_direct inst in
  let ro = Eda4sat.Pipeline.run (Eda4sat.Pipeline.ours ~agent ()) inst in
  Format.printf "baseline %a@." Eda4sat.Pipeline.pp_report rb;
  Format.printf "with RL  %a@." Eda4sat.Pipeline.pp_report ro;
  Printf.printf "agent recipe: %s\n"
    (Synth.Recipe.to_string ro.Eda4sat.Pipeline.recipe_used);
  Printf.printf "reduction: %.1f%%\n"
    (Eda4sat.Pipeline.reduction ~baseline:rb ro)
