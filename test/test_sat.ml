(* Tests for the CDCL solver: correctness against brute force, known
   families, limits and counters. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let brute_force f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 20);
  let rec try_assignment m =
    if m >= 1 lsl n then None
    else
      let a = Array.init n (fun i -> m land (1 lsl i) <> 0) in
      if Cnf.Formula.eval f a then Some a else try_assignment (m + 1)
  in
  try_assignment 0

let solve f = fst (Sat.Solver.solve f)

let test_trivial () =
  let empty = Cnf.Formula.create ~num_vars:0 [] in
  (match solve empty with
   | Sat.Solver.Sat _ -> ()
   | _ -> Alcotest.fail "empty formula is satisfiable");
  let unit_sat = Cnf.Formula.create ~num_vars:1 [ [| 1 |] ] in
  (match solve unit_sat with
   | Sat.Solver.Sat m -> check_bool "x=true" true m.(0)
   | _ -> Alcotest.fail "unit clause satisfiable");
  let contra = Cnf.Formula.create ~num_vars:1 [ [| 1 |]; [| -1 |] ] in
  (match solve contra with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "x & ~x unsatisfiable");
  let empty_clause = Cnf.Formula.create ~num_vars:1 [ [||] ] in
  match solve empty_clause with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "empty clause unsatisfiable"

let test_tautology_and_duplicates () =
  let f =
    Cnf.Formula.create ~num_vars:2 [ [| 1; -1 |]; [| 2; 2 |]; [| -2; -2; 1 |] ]
  in
  match solve f with
  | Sat.Solver.Sat m ->
    check_bool "model satisfies" true (Cnf.Formula.eval f m)
  | _ -> Alcotest.fail "satisfiable"

let pigeonhole ~pigeons ~holes =
  (* Variable p*holes + h + 1: pigeon p sits in hole h. *)
  let v p h = (p * holes) + h + 1 in
  let at_least =
    List.init pigeons (fun p -> Array.init holes (fun h -> v p h))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then Some [| -v p1 h; -v p2 h |] else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  Cnf.Formula.create ~num_vars:(pigeons * holes) (at_least @ at_most)

let test_pigeonhole () =
  (match solve (pigeonhole ~pigeons:4 ~holes:3) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(4,3) is unsatisfiable");
  (match solve (pigeonhole ~pigeons:5 ~holes:4) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(5,4) is unsatisfiable");
  match solve (pigeonhole ~pigeons:3 ~holes:3) with
  | Sat.Solver.Sat m ->
    check_bool "valid assignment" true
      (Cnf.Formula.eval (pigeonhole ~pigeons:3 ~holes:3) m)
  | _ -> Alcotest.fail "php(3,3) is satisfiable"

let test_limits () =
  let hard = pigeonhole ~pigeons:8 ~holes:7 in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_conflicts = Some 10 }
  in
  (match Sat.Solver.solve ~limits hard with
   | Sat.Solver.Unknown, st ->
     check_bool "stopped near limit" true (st.Sat.Solver.conflicts <= 12)
   | (Sat.Solver.Sat _ | Sat.Solver.Unsat), _ ->
     Alcotest.fail "php(8,7) should exceed 10 conflicts");
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_decisions = Some 5 }
  in
  match Sat.Solver.solve ~limits hard with
  | Sat.Solver.Unknown, _ -> ()
  | (Sat.Solver.Sat _ | Sat.Solver.Unsat), _ ->
    Alcotest.fail "php(8,7) should exceed 5 decisions"

let test_decision_counter () =
  (* A chain of implications: one decision should suffice. *)
  let n = 20 in
  let clauses =
    List.init (n - 1) (fun i -> [| -(i + 1); i + 2 |])
  in
  let f = Cnf.Formula.create ~num_vars:n clauses in
  let result, st = Sat.Solver.solve f in
  (match result with
   | Sat.Solver.Sat m -> check_bool "model" true (Cnf.Formula.eval f m)
   | _ -> Alcotest.fail "chain satisfiable");
  check_bool "few decisions" true (st.Sat.Solver.decisions <= n);
  check_bool "propagations happened" true (st.Sat.Solver.propagations > 0)

let random_formula seed nvars nclauses maxlen =
  let rng = Aig.Rng.create seed in
  let clauses =
    List.init nclauses (fun _ ->
        let len = 1 + Aig.Rng.int rng maxlen in
        Array.init len (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v))
  in
  Cnf.Formula.create ~num_vars:nvars clauses

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"solver: agrees with brute force" ~count:300
    QCheck.(
      quad (int_bound 10000000) (int_range 2 10) (int_range 1 40)
        (int_range 1 4))
    (fun (seed, nvars, nclauses, maxlen) ->
      let f = random_formula seed nvars nclauses maxlen in
      let expected = Option.is_some (brute_force f) in
      match solve f with
      | Sat.Solver.Sat m -> expected && Cnf.Formula.eval f m
      | Sat.Solver.Unsat -> not expected
      | Sat.Solver.Unknown -> false)

let prop_models_always_valid =
  QCheck.Test.make ~name:"solver: returned models satisfy the formula"
    ~count:100
    QCheck.(pair (int_bound 10000000) (int_range 10 30))
    (fun (seed, nvars) ->
      (* Larger instances near the 4.26 clause ratio. *)
      let f = random_formula seed nvars (int_of_float (4.2 *. float_of_int nvars)) 3 in
      match solve f with
      | Sat.Solver.Sat m -> Cnf.Formula.eval f m
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> true)

let test_xor_chain_unsat () =
  (* x1 xor x2 = 1, x2 xor x3 = 1, ..., xn xor x1 = 1 with odd n is
     unsatisfiable. *)
  let n = 7 in
  let xor_clauses a b =
    (* a xor b = 1 <=> (a | b) & (~a | ~b) *)
    [ [| a; b |]; [| -a; -b |] ]
  in
  let clauses =
    List.concat
      (List.init n (fun i -> xor_clauses (i + 1) (((i + 1) mod n) + 1)))
  in
  let f = Cnf.Formula.create ~num_vars:n clauses in
  match solve f with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "odd xor cycle is unsatisfiable"

let test_stats_sanity () =
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let _, st = Sat.Solver.solve f in
  check_bool "conflicts counted" true (st.Sat.Solver.conflicts > 0);
  check_bool "decisions counted" true (st.Sat.Solver.decisions > 0);
  check_bool "time sane" true (st.Sat.Solver.time >= 0.0);
  check_bool "learned clauses" true (st.Sat.Solver.learned > 0)

let test_decisions_or_max () =
  let f = pigeonhole ~pigeons:3 ~holes:3 in
  let d = Sat.Solver.decisions_or_max f in
  check_bool "nonnegative" true (d >= 0)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let suite =
  [
    ("trivial cases", `Quick, test_trivial);
    ("tautologies and duplicates", `Quick, test_tautology_and_duplicates);
    ("pigeonhole", `Quick, test_pigeonhole);
    ("limits respected", `Quick, test_limits);
    ("decision counter", `Quick, test_decision_counter);
    ("xor chain unsat", `Quick, test_xor_chain_unsat);
    ("stats sanity", `Quick, test_stats_sanity);
    ("decisions_or_max", `Quick, test_decisions_or_max);
  ]
  @ qsuite [ prop_agrees_with_brute_force; prop_models_always_valid ]

(* ------------------------------------------------------------------ *)
(* Additional robustness cases *)

let test_unused_variables () =
  (* Variables that appear in no clause must still get model entries. *)
  let f = Cnf.Formula.create ~num_vars:10 [ [| 3 |]; [| -7 |] ] in
  match solve f with
  | Sat.Solver.Sat m ->
    check "model covers all vars" 10 (Array.length m);
    check_bool "x3" true m.(2);
    check_bool "x7" false m.(6)
  | _ -> Alcotest.fail "satisfiable"

let test_determinism () =
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let _, st1 = Sat.Solver.solve f in
  let _, st2 = Sat.Solver.solve f in
  check "same decisions" st1.Sat.Solver.decisions st2.Sat.Solver.decisions;
  check "same conflicts" st1.Sat.Solver.conflicts st2.Sat.Solver.conflicts

let test_large_clause () =
  (* One wide clause plus units forcing its last literal. *)
  let n = 50 in
  let wide = Array.init n (fun i -> i + 1) in
  let units = List.init (n - 1) (fun i -> [| -(i + 1) |]) in
  let f = Cnf.Formula.create ~num_vars:n (wide :: units) in
  match solve f with
  | Sat.Solver.Sat m -> check_bool "last var forced" true m.(n - 1)
  | _ -> Alcotest.fail "satisfiable"

let test_all_negative () =
  let f =
    Cnf.Formula.create ~num_vars:4
      [ [| -1; -2 |]; [| -2; -3 |]; [| -3; -4 |]; [| -1; -4 |] ]
  in
  match solve f with
  | Sat.Solver.Sat m -> check_bool "model valid" true (Cnf.Formula.eval f m)
  | _ -> Alcotest.fail "satisfiable (all false works)"

let suite =
  suite
  @ [
      ("unused variables", `Quick, test_unused_variables);
      ("determinism", `Quick, test_determinism);
      ("wide clause propagation", `Quick, test_large_clause);
      ("all-negative clauses", `Quick, test_all_negative);
    ]

(* ------------------------------------------------------------------ *)
(* DRAT proofs *)

let test_proof_validates_on_php () =
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let proof = Sat.Proof.create () in
  (match Sat.Solver.solve ~proof f with
   | Sat.Solver.Unsat, _ -> ()
   | _ -> Alcotest.fail "php(5,4) unsat");
  check_bool "proof has steps" true (Sat.Proof.num_steps proof > 0);
  check_bool "proof validates" true (Sat.Proof.check f proof)

let test_proof_text_roundtrip () =
  let f = pigeonhole ~pigeons:4 ~holes:3 in
  let proof = Sat.Proof.create () in
  (match Sat.Solver.solve ~proof f with
   | Sat.Solver.Unsat, _ -> ()
   | _ -> Alcotest.fail "unsat");
  let text = Sat.Proof.to_string proof in
  let proof' = Sat.Proof.of_string text in
  check "same steps" (Sat.Proof.num_steps proof) (Sat.Proof.num_steps proof');
  check_bool "reparsed proof validates" true (Sat.Proof.check f proof')

let test_proof_rejects_bogus () =
  let f = Cnf.Formula.create ~num_vars:2 [ [| 1; 2 |] ] in
  (* Adding the empty clause out of thin air is not RUP here. *)
  let bogus = Sat.Proof.create () in
  Sat.Proof.add bogus [||];
  check_bool "bogus proof rejected" false (Sat.Proof.check f bogus);
  (* A non-RUP clause addition must be rejected too. *)
  let bogus2 = Sat.Proof.create () in
  Sat.Proof.add bogus2 [| -1 |];
  check_bool "non-rup rejected" false (Sat.Proof.check f bogus2);
  (* Deleting an absent clause is invalid. *)
  let bogus3 = Sat.Proof.create () in
  Sat.Proof.delete bogus3 [| 1 |];
  check_bool "bad delete rejected" false (Sat.Proof.check f bogus3)

let prop_unsat_proofs_validate =
  QCheck.Test.make ~name:"solver: every UNSAT run emits a valid DRAT proof"
    ~count:150
    QCheck.(triple (int_bound 10000000) (int_range 3 8) (int_range 8 35))
    (fun (seed, nvars, nclauses) ->
      let f = random_formula seed nvars nclauses 3 in
      let proof = Sat.Proof.create () in
      match Sat.Solver.solve ~proof f with
      | Sat.Solver.Unsat, _ -> Sat.Proof.check f proof
      | (Sat.Solver.Sat _ | Sat.Solver.Unknown), _ -> true)

let suite =
  suite
  @ [
      ("drat proof on pigeonhole", `Quick, test_proof_validates_on_php);
      ("drat text roundtrip", `Quick, test_proof_text_roundtrip);
      ("drat rejects bogus proofs", `Quick, test_proof_rejects_bogus);
    ]
  @ qsuite [ prop_unsat_proofs_validate ]

(* ------------------------------------------------------------------ *)
(* Incremental solving under assumptions *)

let test_incremental_basic () =
  let s = Sat.Solver.Incremental.create () in
  check "no vars" 0 (Sat.Solver.Incremental.num_vars s);
  let v1 = Sat.Solver.Incremental.new_var s in
  check "first var" 1 v1;
  Sat.Solver.Incremental.add_clause s [| 1; 2 |];
  check "implicit alloc" 2 (Sat.Solver.Incremental.num_vars s);
  (match fst (Sat.Solver.Incremental.solve s) with
   | Sat.Solver.Sat m -> check_bool "model" true (m.(0) || m.(1))
   | _ -> Alcotest.fail "satisfiable");
  (* Make it unsat incrementally. *)
  Sat.Solver.Incremental.add_clause s [| -1 |];
  Sat.Solver.Incremental.add_clause s [| -2 |];
  match fst (Sat.Solver.Incremental.solve s) with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "now unsatisfiable"

let test_incremental_assumptions () =
  let s = Sat.Solver.Incremental.create () in
  (* x1 <-> x2 *)
  Sat.Solver.Incremental.add_clause s [| -1; 2 |];
  Sat.Solver.Incremental.add_clause s [| 1; -2 |];
  (* Contradictory assumptions: x1 & ~x2. *)
  (match fst (Sat.Solver.Incremental.solve ~assumptions:[| 1; -2 |] s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "unsat under assumptions");
  (* Still satisfiable without them — the session is not poisoned. *)
  (match fst (Sat.Solver.Incremental.solve s) with
   | Sat.Solver.Sat _ -> ()
   | _ -> Alcotest.fail "sat without assumptions");
  (* Satisfiable under consistent assumptions, honoring them. *)
  match fst (Sat.Solver.Incremental.solve ~assumptions:[| -1 |] s) with
  | Sat.Solver.Sat m ->
    check_bool "x1 false" false m.(0);
    check_bool "x2 false" false m.(1)
  | _ -> Alcotest.fail "sat under ~x1"

let test_incremental_model_enumeration () =
  (* Enumerate all models of a small formula by blocking clauses; the
     count must match brute force. *)
  let f =
    Cnf.Formula.create ~num_vars:4
      [ [| 1; 2 |]; [| -2; 3 |]; [| -1; -4 |] ]
  in
  let expected = ref 0 in
  for m = 0 to 15 do
    let a = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    if Cnf.Formula.eval f a then incr expected
  done;
  let s = Sat.Solver.Incremental.create () in
  (* Mention all 4 vars so models have full width. *)
  for _ = 1 to 4 do
    ignore (Sat.Solver.Incremental.new_var s)
  done;
  Sat.Solver.Incremental.add_formula s f;
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match fst (Sat.Solver.Incremental.solve s) with
    | Sat.Solver.Sat m ->
      incr count;
      check_bool "model valid" true (Cnf.Formula.eval f m);
      let blocking =
        Array.mapi (fun i v -> if v then -(i + 1) else i + 1) m
      in
      Sat.Solver.Incremental.add_clause s blocking;
      if !count > 20 then Alcotest.fail "runaway enumeration"
    | Sat.Solver.Unsat -> continue := false
    | Sat.Solver.Unknown -> Alcotest.fail "unexpected unknown"
  done;
  check "model count matches brute force" !expected !count

let prop_incremental_agrees_with_batch =
  QCheck.Test.make ~name:"incremental: agrees with batch solver" ~count:150
    QCheck.(triple (int_bound 10000000) (int_range 2 9) (int_range 2 35))
    (fun (seed, nvars, nclauses) ->
      let f = random_formula seed nvars nclauses 3 in
      let batch =
        match solve f with
        | Sat.Solver.Sat _ -> `Sat
        | Sat.Solver.Unsat -> `Unsat
        | Sat.Solver.Unknown -> `Unknown
      in
      let s = Sat.Solver.Incremental.create () in
      Sat.Solver.Incremental.add_formula s f;
      let inc =
        match fst (Sat.Solver.Incremental.solve s) with
        | Sat.Solver.Sat m ->
          if
            Cnf.Formula.eval f
              (Array.init nvars (fun i ->
                   if i < Array.length m then m.(i) else false))
          then `Sat
          else `Invalid
        | Sat.Solver.Unsat -> `Unsat
        | Sat.Solver.Unknown -> `Unknown
      in
      batch = inc)

let prop_incremental_assumptions_sound =
  QCheck.Test.make
    ~name:"incremental: assumption answers match solving with units"
    ~count:100
    QCheck.(
      quad (int_bound 10000000) (int_range 2 7) (int_range 2 25)
        (int_range 1 3))
    (fun (seed, nvars, nclauses, nassum) ->
      (* Shrinking can step outside the declared ranges; clamp. *)
      let nvars = max 2 nvars
      and nclauses = max 1 nclauses
      and nassum = max 1 nassum in
      let f = random_formula seed nvars nclauses 3 in
      let rng = Aig.Rng.create (seed + 1) in
      let assumptions =
        Array.init nassum (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v)
      in
      (* Reference: add the assumptions as unit clauses to a copy. *)
      let f' =
        Cnf.Formula.add_clauses f
          (Array.to_list (Array.map (fun l -> [| l |]) assumptions))
      in
      let expected =
        match solve f' with
        | Sat.Solver.Sat _ -> `Sat
        | Sat.Solver.Unsat -> `Unsat
        | Sat.Solver.Unknown -> `Unknown
      in
      let s = Sat.Solver.Incremental.create () in
      Sat.Solver.Incremental.add_formula s f;
      (* Force allocation of all vars referenced by assumptions. *)
      while Sat.Solver.Incremental.num_vars s < nvars do
        ignore (Sat.Solver.Incremental.new_var s)
      done;
      let got =
        match fst (Sat.Solver.Incremental.solve ~assumptions s) with
        | Sat.Solver.Sat m ->
          if
            Cnf.Formula.eval f' (Array.sub m 0 nvars)
          then `Sat
          else `Invalid
        | Sat.Solver.Unsat -> `Unsat
        | Sat.Solver.Unknown -> `Unknown
      in
      expected = got)

let suite =
  suite
  @ [
      ("incremental basics", `Quick, test_incremental_basic);
      ("incremental assumptions", `Quick, test_incremental_assumptions);
      ("incremental model enumeration", `Quick,
       test_incremental_model_enumeration);
    ]
  @ qsuite
      [ prop_incremental_agrees_with_batch;
        prop_incremental_assumptions_sound ]

(* ------------------------------------------------------------------ *)
(* LRB branching heuristic *)

let prop_lrb_agrees_with_brute_force =
  QCheck.Test.make ~name:"solver(LRB): agrees with brute force" ~count:200
    QCheck.(
      quad (int_bound 10000000) (int_range 2 10) (int_range 1 40)
        (int_range 1 4))
    (fun (seed, nvars, nclauses, maxlen) ->
      let nvars = max 2 nvars
      and nclauses = max 1 nclauses
      and maxlen = max 1 maxlen in
      let f = random_formula seed nvars nclauses maxlen in
      let expected = Option.is_some (brute_force f) in
      match fst (Sat.Solver.solve ~heuristic:`Lrb f) with
      | Sat.Solver.Sat m -> expected && Cnf.Formula.eval f m
      | Sat.Solver.Unsat -> not expected
      | Sat.Solver.Unknown -> false)

let test_lrb_solves_pigeonhole () =
  match fst (Sat.Solver.solve ~heuristic:`Lrb (pigeonhole ~pigeons:6 ~holes:5)) with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "php(6,5) unsat under LRB"

let test_lrb_proofs_still_valid () =
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let proof = Sat.Proof.create () in
  (match fst (Sat.Solver.solve ~proof ~heuristic:`Lrb f) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "unsat");
  check_bool "LRB proof validates" true (Sat.Proof.check f proof)

let suite =
  suite
  @ [
      ("lrb pigeonhole", `Quick, test_lrb_solves_pigeonhole);
      ("lrb drat proof", `Quick, test_lrb_proofs_still_valid);
    ]
  @ qsuite [ prop_lrb_agrees_with_brute_force ]

let test_assumption_core () =
  let s = Sat.Solver.Incremental.create () in
  (* x1 -> x2, x2 -> x3. *)
  Sat.Solver.Incremental.add_clause s [| -1; 2 |];
  Sat.Solver.Incremental.add_clause s [| -2; 3 |];
  (* Assume x1, an irrelevant x4, and ~x3: the core must not mention
     x4. *)
  ignore (Sat.Solver.Incremental.new_var s);
  (match fst (Sat.Solver.Incremental.solve ~assumptions:[| 1; 4; -3 |] s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "unsat under assumptions");
  let core = Sat.Solver.Incremental.last_core s in
  check_bool "core nonempty" true (Array.length core > 0);
  check_bool "core excludes x4" true
    (not (Array.exists (fun l -> abs l = 4) core));
  (* The core itself must be contradictory with the clauses. *)
  (match
     fst
       (Sat.Solver.Incremental.solve
          ~assumptions:(Sat.Solver.Incremental.last_core s) s)
   with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "core must still be contradictory");
  (* A satisfiable query clears the core. *)
  (match fst (Sat.Solver.Incremental.solve ~assumptions:[| 1 |] s) with
   | Sat.Solver.Sat _ -> ()
   | _ -> Alcotest.fail "sat under x1");
  check "core cleared" 0 (Array.length (Sat.Solver.Incremental.last_core s))

let prop_assumption_core_sound =
  QCheck.Test.make ~name:"incremental: extracted cores are contradictory"
    ~count:100
    QCheck.(triple (int_bound 10000000) (int_range 3 7) (int_range 3 25))
    (fun (seed, nvars, nclauses) ->
      let nvars = max 3 nvars and nclauses = max 3 nclauses in
      let f = random_formula seed nvars nclauses 3 in
      let rng = Aig.Rng.create (seed + 7) in
      let assumptions =
        Array.init 3 (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v)
      in
      let s = Sat.Solver.Incremental.create () in
      Sat.Solver.Incremental.add_formula s f;
      while Sat.Solver.Incremental.num_vars s < nvars do
        ignore (Sat.Solver.Incremental.new_var s)
      done;
      match fst (Sat.Solver.Incremental.solve ~assumptions s) with
      | Sat.Solver.Unsat ->
        let core = Sat.Solver.Incremental.last_core s in
        (* Every core literal is one of the assumptions... *)
        Array.for_all
          (fun l -> Array.exists (( = ) l) assumptions)
          core
        &&
        (* ...and assuming only the core stays contradictory. *)
        (match
           fst (Sat.Solver.Incremental.solve ~assumptions:core s)
         with
         | Sat.Solver.Unsat -> true
         | _ -> Array.length core = 0)
      | _ -> true)

let suite =
  suite
  @ [ ("assumption core", `Quick, test_assumption_core) ]
  @ qsuite [ prop_assumption_core_sound ]

(* ------------------------------------------------------------------ *)
(* Regression tests for the hardened engine (ISSUE 1):
   - the wall-clock limit is honored even on decision-heavy runs;
   - assumption cores only ever contain assumptions, also after unit
     learning, and re-assuming a core stays Unsat;
   - learned-clause LBDs are computed at learn time (pre-backjump);
   - the incremental path logs DRAT;
   - Glucose restarts are available and sound. *)

let test_time_limit_honored () =
  let hard = pigeonhole ~pigeons:10 ~holes:9 in
  let max_seconds = 0.2 in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some max_seconds }
  in
  let t0 = Sys.time () in
  (match fst (Sat.Solver.solve ~limits hard) with
   | Sat.Solver.Unknown -> ()
   | _ -> Alcotest.fail "php(10,9) should hit the 0.2s wall-clock limit");
  let elapsed = Sys.time () -. t0 in
  check_bool "stopped within 2x of max_seconds" true
    (elapsed <= 2.0 *. max_seconds)

let test_time_limit_honored_incremental () =
  let hard = pigeonhole ~pigeons:10 ~holes:9 in
  let s = Sat.Solver.Incremental.create () in
  Sat.Solver.Incremental.add_formula s hard;
  let max_seconds = 0.2 in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some max_seconds }
  in
  let t0 = Sys.time () in
  (match fst (Sat.Solver.Incremental.solve ~limits s) with
   | Sat.Solver.Unknown -> ()
   | _ -> Alcotest.fail "incremental php(10,9) should hit the time limit");
  let elapsed = Sys.time () -. t0 in
  check_bool "incremental stopped within 2x of max_seconds" true
    (elapsed <= 2.0 *. max_seconds)

let test_core_subset_and_reassumable () =
  let s = Sat.Solver.Incremental.create () in
  (* Implication chain x1 -> x2 -> ... -> x10. *)
  for i = 1 to 9 do
    Sat.Solver.Incremental.add_clause s [| -i; i + 1 |]
  done;
  let assumptions = [| 5; 1; -10; 7 |] in
  (match fst (Sat.Solver.Incremental.solve ~assumptions s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "chain contradicts the assumptions");
  let core = Sat.Solver.Incremental.last_core s in
  check_bool "core nonempty" true (Array.length core > 0);
  check_bool "core is a subset of the assumptions" true
    (Array.for_all (fun l -> Array.exists (( = ) l) assumptions) core);
  match fst (Sat.Solver.Incremental.solve ~assumptions:core s) with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "re-assuming the core must stay Unsat"

let test_core_after_unit_learning () =
  (* Sessions that learn unit clauses (batch query first) must still
     report cores drawn only from the assumptions of the later
     assumption query — never pseudo-decisions left at level > 0. *)
  for seed = 1 to 40 do
    let nvars = 8 in
    let f = random_formula seed nvars 30 3 in
    let s = Sat.Solver.Incremental.create () in
    Sat.Solver.Incremental.add_formula s f;
    while Sat.Solver.Incremental.num_vars s < nvars do
      ignore (Sat.Solver.Incremental.new_var s)
    done;
    ignore (Sat.Solver.Incremental.solve s);
    let rng = Aig.Rng.create (seed * 31) in
    let assumptions =
      Array.init 4 (fun _ ->
          let v = 1 + Aig.Rng.int rng nvars in
          if Aig.Rng.bool rng then v else -v)
    in
    match fst (Sat.Solver.Incremental.solve ~assumptions s) with
    | Sat.Solver.Unsat ->
      let core = Sat.Solver.Incremental.last_core s in
      if
        not
          (Array.for_all
             (fun l -> Array.exists (( = ) l) assumptions)
             core)
      then
        Alcotest.failf "seed %d: core contains a non-assumption literal"
          seed;
      (match fst (Sat.Solver.Incremental.solve ~assumptions:core s) with
       | Sat.Solver.Unsat -> ()
       | Sat.Solver.Sat _ ->
         Alcotest.failf "seed %d: core is not re-assumable to Unsat" seed
       | Sat.Solver.Unknown -> Alcotest.failf "seed %d: unknown" seed)
    | _ -> ()
  done

let test_lbd_computed_at_learn_time () =
  (* At learn time every literal of the learned clause is assigned: a
     unit clause has glue exactly 1 and any longer clause spans the
     current decision level plus at least one lower level, so its glue
     lies in [2, length].  A post-backjump computation over unwound
     state cannot maintain these bounds. *)
  let f = pigeonhole ~pigeons:6 ~holes:5 in
  let count = ref 0 in
  let bad = ref 0 in
  let on_learnt lits lbd =
    incr count;
    if Array.length lits = 1 then begin
      if lbd <> 1 then incr bad
    end
    else if lbd < 2 || lbd > Array.length lits then incr bad
  in
  (match fst (Sat.Solver.solve ~on_learnt f) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(6,5) unsat");
  check_bool "learnt clauses observed" true (!count > 0);
  check "all glue values in range" 0 !bad

let test_incremental_proof_logged () =
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let s = Sat.Solver.Incremental.create () in
  Sat.Solver.Incremental.add_formula s f;
  let proof = Sat.Proof.create () in
  (match fst (Sat.Solver.Incremental.solve ~proof s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(5,4) unsat");
  check_bool "incremental proof has steps" true
    (Sat.Proof.num_steps proof > 0);
  check_bool "incremental proof validates" true (Sat.Proof.check f proof)

let test_incremental_proof_across_calls () =
  (* The same proof threaded through two calls, with clauses added in
     between, validates against the conjunction of all clauses. *)
  let f = pigeonhole ~pigeons:4 ~holes:3 in
  let all = Array.to_list f.Cnf.Formula.clauses in
  let n1 = List.length all / 2 in
  let batch1 = List.filteri (fun i _ -> i < n1) all in
  let batch2 = List.filteri (fun i _ -> i >= n1) all in
  let s = Sat.Solver.Incremental.create () in
  let proof = Sat.Proof.create () in
  List.iter (Sat.Solver.Incremental.add_clause s) batch1;
  ignore (Sat.Solver.Incremental.solve ~proof s);
  List.iter (Sat.Solver.Incremental.add_clause s) batch2;
  (match fst (Sat.Solver.Incremental.solve ~proof s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(4,3) unsat once complete");
  check_bool "cross-call proof validates" true (Sat.Proof.check f proof)

let test_incremental_sealed_proof_reuse () =
  (* A recorder sealed by a refutation must stay exactly that checkable
     refutation when sessions keep solving with it — reuse must not
     append steps past the seal. *)
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let s = Sat.Solver.Incremental.create () in
  Sat.Solver.Incremental.add_formula s f;
  let proof = Sat.Proof.create () in
  (match fst (Sat.Solver.Incremental.solve ~proof s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(5,4) unsat");
  check_bool "proof sealed by the refutation" true (Sat.Proof.sealed proof);
  check_bool "sealed proof validates" true (Sat.Proof.check f proof);
  let steps = Sat.Proof.num_steps proof in
  (* Solve again on the (now broken) session with the same recorder:
     the re-seal is a no-op. *)
  (match fst (Sat.Solver.Incremental.solve ~proof s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "a broken session answers Unsat forever");
  check "no steps appended on reuse" steps (Sat.Proof.num_steps proof);
  check_bool "still validates after reuse" true (Sat.Proof.check f proof);
  (* A fresh, healthy session handed the already-sealed recorder must
     leave it untouched too: logging is disabled for that call rather
     than silently interleaving a second derivation. *)
  let s2 = Sat.Solver.Incremental.create () in
  List.iter
    (Sat.Solver.Incremental.add_clause s2)
    [ [| 1; 2 |]; [| -1; 2 |]; [| 1; -2 |]; [| -1; -2 |] ];
  (match fst (Sat.Solver.Incremental.solve ~proof s2) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "contradictory binaries unsat");
  check "sealed recorder untouched by a later session" steps
    (Sat.Proof.num_steps proof);
  check_bool "the original refutation still validates" true
    (Sat.Proof.check f proof)

let test_glucose_restarts () =
  (match
     fst (Sat.Solver.solve ~restarts:`Glucose (pigeonhole ~pigeons:7 ~holes:6))
   with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(7,6) unsat under Glucose restarts");
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let proof = Sat.Proof.create () in
  (match fst (Sat.Solver.solve ~proof ~restarts:`Glucose f) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "unsat");
  check_bool "glucose-run proof validates" true (Sat.Proof.check f proof)

(* ------------------------------------------------------------------ *)
(* Regression tests for the arena-allocated clause database (ISSUE 3):
   everything handed out by the solver — models, assumption cores,
   exported clauses — must be a fresh array, never an alias into
   solver-internal storage that compaction (or the caller) could
   corrupt. *)

let test_core_is_fresh_array () =
  let s = Sat.Solver.Incremental.create () in
  Sat.Solver.Incremental.add_clause s [| -1; 2 |];
  Sat.Solver.Incremental.add_clause s [| -2; 3 |];
  (match fst (Sat.Solver.Incremental.solve ~assumptions:[| 1; -3 |] s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "unsat under assumptions");
  let core = Sat.Solver.Incremental.last_core s in
  let saved = Array.copy core in
  (* Clobber the returned array; the session must be unaffected. *)
  Array.fill core 0 (Array.length core) 9999;
  let core' = Sat.Solver.Incremental.last_core s in
  check_bool "core unaffected by caller mutation" true (core' = saved);
  (* Re-solving with the pristine copy still works. *)
  (match fst (Sat.Solver.Incremental.solve ~assumptions:core' s) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "re-assuming the core must stay Unsat");
  check_bool "core stable across re-solve" true
    (Sat.Solver.Incremental.last_core s = saved)

let test_model_is_fresh_array () =
  let f = random_formula 99 8 12 3 in
  match fst (Sat.Solver.solve f) with
  | Sat.Solver.Sat m ->
    check_bool "model satisfies" true (Cnf.Formula.eval f m);
    (* Clobber the model, then re-solve: the fresh answer must not see
       the mutation. *)
    Array.fill m 0 (Array.length m) false;
    (match fst (Sat.Solver.solve f) with
     | Sat.Solver.Sat m' ->
       check_bool "second model satisfies" true (Cnf.Formula.eval f m')
     | _ -> Alcotest.fail "formula became unsat?!")
  | Sat.Solver.Unsat -> () (* seed gave an unsat formula: vacuous *)
  | Sat.Solver.Unknown -> Alcotest.fail "unknown"

let test_exported_clauses_are_fresh () =
  (* The export hook receives freshly mapped arrays: mutating them must
     corrupt neither the solver state nor the proof. *)
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let proof = Sat.Proof.create () in
  let exported = ref 0 in
  let export clause _lbd =
    incr exported;
    Array.fill clause 0 (Array.length clause) 0
  in
  (match fst (Sat.Solver.solve ~proof ~export f) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(5,4) unsat");
  check_bool "clauses were exported" true (!exported > 0);
  check_bool "proof validates despite export mutation" true
    (Sat.Proof.check f proof)

let test_allocation_telemetry () =
  let f = pigeonhole ~pigeons:6 ~holes:5 in
  let _, st = Sat.Solver.solve f in
  check_bool "minor_words measured" true (st.Sat.Solver.minor_words > 0.0);
  check_bool "major_collections sane" true
    (st.Sat.Solver.major_collections >= 0);
  (* A tiny learnt cap must drive reductions (arena compactions). *)
  let _, st' = Sat.Solver.solve ~reduce_base:8 ~reduce_inc:4 f in
  check_bool "reduces counted under low cap" true (st'.Sat.Solver.reduces > 0)

let suite =
  suite
  @ [
      ("core is a fresh array", `Quick, test_core_is_fresh_array);
      ("model is a fresh array", `Quick, test_model_is_fresh_array);
      ("exported clauses are fresh", `Quick,
       test_exported_clauses_are_fresh);
      ("allocation telemetry", `Quick, test_allocation_telemetry);
    ]

let suite =
  suite
  @ [
      ("time limit honored (batch)", `Quick, test_time_limit_honored);
      ("time limit honored (incremental)", `Quick,
       test_time_limit_honored_incremental);
      ("core subset + re-assumable", `Quick, test_core_subset_and_reassumable);
      ("core sound after unit learning", `Quick,
       test_core_after_unit_learning);
      ("lbd computed at learn time", `Quick, test_lbd_computed_at_learn_time);
      ("incremental drat proof", `Quick, test_incremental_proof_logged);
      ("incremental drat proof across calls", `Quick,
       test_incremental_proof_across_calls);
      ("incremental sealed drat proof on reuse", `Quick,
       test_incremental_sealed_proof_reuse);
      ("glucose restarts", `Quick, test_glucose_restarts);
    ]

(* --- restart-boundary inprocessing --------------------------------- *)

let inproc_eager =
  (* Fire on every restart so small test instances hit all three
     passes; shrink the reduce cadence to force arena compactions in
     between, exercising the inprocessing/arena_gc interaction. *)
  { Sat.Solver.default_inprocess with Sat.Solver.inproc_interval = 1 }

let test_inprocess_counters_and_proof () =
  let f = pigeonhole ~pigeons:7 ~holes:6 in
  let proof = Sat.Proof.create () in
  let result, st =
    Sat.Solver.solve ~proof ~inprocess:inproc_eager ~reduce_base:50
      ~reduce_inc:25 f
  in
  (match result with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(7,6) is unsat");
  check_bool "probing fired" true (st.Sat.Solver.probed > 0);
  check_bool "vivification or subsumption fired" true
    (st.Sat.Solver.vivified + st.Sat.Solver.inproc_subsumed > 0);
  check_bool "proof sealed" true (Sat.Proof.sealed proof);
  check_bool "proof checks with inprocessing on" true
    (Sat.Proof.check f proof)

let test_inprocess_off_is_deterministic_and_counts_zero () =
  (* Without [?inprocess] none of the new code runs: the counters stay
     zero and the trajectory is reproducible run to run (the portfolio
     jobs=1 bit-identity guarantee rides on this). *)
  let f = pigeonhole ~pigeons:7 ~holes:6 in
  let _, a = Sat.Solver.solve f in
  let _, b = Sat.Solver.solve f in
  check "probed stays zero" 0 a.Sat.Solver.probed;
  check "vivified stays zero" 0 a.Sat.Solver.vivified;
  check "inproc_subsumed stays zero" 0 a.Sat.Solver.inproc_subsumed;
  check "conflicts reproducible" a.Sat.Solver.conflicts b.Sat.Solver.conflicts;
  check "decisions reproducible" a.Sat.Solver.decisions b.Sat.Solver.decisions;
  check "learned reproducible" a.Sat.Solver.learned b.Sat.Solver.learned

let test_inprocess_sat_models_stay_valid () =
  (* Vivification/subsumption rewrite learnt clauses in place in the
     arena; a model found afterwards must still satisfy the input. *)
  let checked = ref 0 in
  for seed = 1 to 12 do
    let f =
      Workloads.Satcomp.random_ksat ~seed ~num_vars:60 ~num_clauses:240 ~k:3
    in
    match
      fst
        (Sat.Solver.solve ~inprocess:inproc_eager ~reduce_base:30
           ~reduce_inc:15 f)
    with
    | Sat.Solver.Sat m ->
      incr checked;
      check_bool "model satisfies under inprocessing" true
        (Cnf.Formula.eval f m)
    | Sat.Solver.Unsat | Sat.Solver.Unknown -> ()
  done;
  check_bool "some satisfiable seeds exercised" true (!checked > 0)

let test_inprocess_incremental () =
  let s = Sat.Solver.Incremental.create () in
  Sat.Solver.Incremental.add_formula s (pigeonhole ~pigeons:6 ~holes:5);
  match
    fst (Sat.Solver.Incremental.solve ~inprocess:inproc_eager s)
  with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "php(6,5) unsat under incremental inprocessing"

let suite =
  suite
  @ [
      ("inprocessing: counters + combined proof", `Quick,
       test_inprocess_counters_and_proof);
      ("inprocessing off: zero counters, reproducible", `Quick,
       test_inprocess_off_is_deterministic_and_counts_zero);
      ("inprocessing: SAT models stay valid", `Quick,
       test_inprocess_sat_models_stay_valid);
      ("inprocessing: incremental sessions", `Quick,
       test_inprocess_incremental);
    ]

(* --- warm starts: seed/snapshot and the flat solve path -------------- *)

let stats_triple (s : Sat.Solver.stats) =
  (s.Sat.Solver.decisions, s.Sat.Solver.conflicts, s.Sat.Solver.propagations)

let test_solve_flat_bit_identical () =
  (* The flat prepare path must produce the same trajectory as the
     array-of-arrays path: same result, same decision/conflict/
     propagation counts, clause by clause. *)
  List.iter
    (fun f ->
      let fl = Cnf.Flat.of_formula f in
      let r1, s1 = Sat.Solver.solve f in
      let r2, s2 = Sat.Solver.solve_flat fl in
      (match (r1, r2) with
       | Sat.Solver.Sat m1, Sat.Solver.Sat m2 ->
         Alcotest.(check (array bool)) "same model" m1 m2
       | Sat.Solver.Unsat, Sat.Solver.Unsat -> ()
       | _ -> Alcotest.fail "flat/formula verdicts differ");
      Alcotest.(check (triple int int int))
        "same trajectory" (stats_triple s1) (stats_triple s2))
    [
      pigeonhole ~pigeons:7 ~holes:6;
      random_formula 42 12 50 4;
      Cnf.Formula.create ~num_vars:3 [ [| 1; -1 |]; [||]; [| 2 |] ];
      Cnf.Formula.create ~num_vars:2 [ [| 1; 1 |]; [| -1; 2; 2 |] ];
    ]

let test_snapshot_fires_and_seed_resumes () =
  let f = pigeonhole ~pigeons:7 ~holes:6 in
  let snap = ref None in
  let r1, s1 = Sat.Solver.solve ~snapshot:(fun sd -> snap := Some sd) f in
  (match r1 with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(7,6) is unsat");
  let sd = match !snap with
    | Some sd -> sd
    | None -> Alcotest.fail "snapshot callback did not fire"
  in
  check_bool "cold solve had conflicts" true (s1.Sat.Solver.conflicts > 0);
  (* Re-solving seeded with the full snapshot must be decisively
     cheaper: the learnt clauses carry the refutation. *)
  let r2, s2 = Sat.Solver.solve ~seed:sd f in
  (match r2 with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "seeded solve changed the verdict");
  check_bool "seeded solve is cheaper" true
    (s2.Sat.Solver.conflicts < s1.Sat.Solver.conflicts)

let test_seeded_unsat_proof_checks () =
  (* A seeded solve with a proof recorder must still produce a
     checkable DRAT stream: injected clauses are RUP-filtered and
     logged, so the checker never sees an unjustified step. *)
  let f = pigeonhole ~pigeons:6 ~holes:5 in
  let snap = ref None in
  (match fst (Sat.Solver.solve ~snapshot:(fun sd -> snap := Some sd) f) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(6,5) is unsat");
  let sd = Option.get !snap in
  let proof = Sat.Proof.create () in
  (match fst (Sat.Solver.solve ~proof ~seed:sd f) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "seeded+proof solve changed the verdict");
  check_bool "seeded proof sealed" true (Sat.Proof.sealed proof);
  check_bool "seeded proof checks" true (Sat.Proof.check f proof)

let test_no_seed_no_snapshot_bit_identical () =
  (* Passing neither option must leave the trajectory untouched
     relative to the pre-warm-start solver — guarded here by comparing
     a solve against itself with an ignored snapshot. *)
  let f = random_formula 7 14 58 4 in
  let r1, s1 = Sat.Solver.solve f in
  let r2, s2 = Sat.Solver.solve ~snapshot:(fun _ -> ()) f in
  (match (r1, r2) with
   | Sat.Solver.Sat a, Sat.Solver.Sat b ->
     Alcotest.(check (array bool)) "same model" a b
   | Sat.Solver.Unsat, Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "snapshot observation changed the verdict");
  Alcotest.(check (triple int int int))
    "snapshot observation is free" (stats_triple s1) (stats_triple s2)

let prop_warm_start_sound =
  (* Soundness fuzz: capture a snapshot from a full solve, re-solve
     seeded, and demand (a) verdicts agree with brute force, (b) SAT
     models verify, (c) UNSAT solves under a recorder stay
     DRAT-checkable.  Never trust the warm answer blind. *)
  QCheck.Test.make ~name:"warm start: seeded solves stay sound" ~count:120
    QCheck.(
      quad (int_bound 10000000) (int_range 2 9) (int_range 1 38)
        (int_range 1 4))
    (fun (seed, nvars, nclauses, maxlen) ->
      let f = random_formula seed nvars nclauses maxlen in
      let expected = Option.is_some (brute_force f) in
      let snap = ref None in
      let cold = fst (Sat.Solver.solve ~snapshot:(fun s -> snap := Some s) f)
      in
      let cold_ok =
        match cold with
        | Sat.Solver.Sat m -> expected && Cnf.Formula.eval f m
        | Sat.Solver.Unsat -> not expected
        | Sat.Solver.Unknown -> false
      in
      match !snap with
      | None -> false
      | Some sd -> (
        cold_ok
        &&
        let proof = Sat.Proof.create () in
        match fst (Sat.Solver.solve ~proof ~seed:sd f) with
        | Sat.Solver.Sat m -> expected && Cnf.Formula.eval f m
        | Sat.Solver.Unsat ->
          (not expected) && Sat.Proof.sealed proof
          && Sat.Proof.check f proof
        | Sat.Solver.Unknown -> false))

let prop_warm_start_flat_sound =
  (* The same soundness contract through the flat path, with the
     snapshot crossing representations: captured from a Formula solve,
     seeded into a Flat solve of the same canonical instance. *)
  QCheck.Test.make ~name:"warm start: flat-seeded solves stay sound"
    ~count:120
    QCheck.(
      quad (int_bound 10000000) (int_range 2 9) (int_range 1 38)
        (int_range 1 4))
    (fun (seed, nvars, nclauses, maxlen) ->
      let f = random_formula seed nvars nclauses maxlen in
      let expected = Option.is_some (brute_force f) in
      let snap = ref None in
      ignore (Sat.Solver.solve ~snapshot:(fun s -> snap := Some s) f);
      match !snap with
      | None -> false
      | Some sd -> (
        match
          fst (Sat.Solver.solve_flat ~seed:sd (Cnf.Flat.of_formula f))
        with
        | Sat.Solver.Sat m -> expected && Cnf.Formula.eval f m
        | Sat.Solver.Unsat -> not expected
        | Sat.Solver.Unknown -> false))

let test_interrupted_snapshot_resumes () =
  (* A conflict-limited solve answers Unknown but still snapshots;
     resuming from that snapshot must preserve the verdict of a fresh
     unlimited solve. *)
  let f = pigeonhole ~pigeons:7 ~holes:6 in
  let snap = ref None in
  let limits = { Sat.Solver.no_limits with Sat.Solver.max_conflicts = Some 60 } in
  (match
     fst (Sat.Solver.solve ~limits ~snapshot:(fun s -> snap := Some s) f)
   with
   | Sat.Solver.Unknown -> ()
   | _ -> Alcotest.fail "expected the conflict limit to trip");
  let sd = Option.get !snap in
  check_bool "interrupted snapshot captured clauses" true
    (Array.length sd.Sat.Solver.seed_clauses > 0);
  match fst (Sat.Solver.solve ~seed:sd f) with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "resumed solve lost the refutation"

let suite =
  suite
  @ [
      ("solve_flat is bit-identical", `Quick, test_solve_flat_bit_identical);
      ("snapshot fires, seed resumes", `Quick,
       test_snapshot_fires_and_seed_resumes);
      ("seeded UNSAT keeps DRAT checkable", `Quick,
       test_seeded_unsat_proof_checks);
      ("snapshot observation is free", `Quick,
       test_no_seed_no_snapshot_bit_identical);
      ("interrupted snapshot resumes", `Quick,
       test_interrupted_snapshot_resumes);
    ]
  @ qsuite [ prop_warm_start_sound; prop_warm_start_flat_sound ]
