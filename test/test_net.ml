(* The socket front-end, driven in-process: framing and tenant units,
   then a live Event_loop on a loopback TCP port (and a Unix socket)
   with concurrent clients — per-connection answer ordering, quotas,
   session ownership, out-of-band health probes and graceful drain. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- framing --------------------------------------------------------- *)

let feed_str f s =
  match Net.Framing.feed f (Bytes.of_string s) (String.length s) with
  | Ok lines -> lines
  | Error `Line_too_long -> Alcotest.fail "unexpected Line_too_long"

let test_framing_chunks () =
  let f = Net.Framing.create () in
  Alcotest.(check (list string)) "split mid-line" [] (feed_str f "hel");
  Alcotest.(check (list string)) "line completes" [ "hello" ]
    (feed_str f "lo\nwo");
  Alcotest.(check (list string)) "two lines, crlf stripped"
    [ "world"; "again" ]
    (feed_str f "rld\r\nagain\npart");
  check_int "partial buffered" 4 (Net.Framing.buffered f);
  Alcotest.(check (option string)) "finish yields the trailing line"
    (Some "part") (Net.Framing.finish f);
  Alcotest.(check (option string)) "finish is idempotent" None
    (Net.Framing.finish f);
  let f = Net.Framing.create () in
  Alcotest.(check (list string)) "empty lines survive" [ ""; "x"; "" ]
    (feed_str f "\nx\n\r\n")

let test_framing_bound () =
  let f = Net.Framing.create ~max_line:8 () in
  Alcotest.(check (list string)) "short ok" [ "12345678" ]
    (feed_str f "12345678\n");
  (match Net.Framing.feed f (Bytes.of_string "123456789") 9 with
   | Error `Line_too_long -> ()
   | Ok _ -> Alcotest.fail "oversized partial line accepted");
  (* A long *complete* line inside one chunk is fine — the bound is on
     buffered partial input, the anti-flooding edge. *)
  let f = Net.Framing.create ~max_line:8 () in
  Alcotest.(check (list string)) "complete line may exceed the bound"
    [ "123456789abcdef" ]
    (feed_str f "123456789abcdef\nrest\n" |> fun l -> [ List.hd l ])

(* --- tenant ---------------------------------------------------------- *)

let test_tenant_quota () =
  let t = Net.Tenant.create ~default:{ Net.Tenant.quota = 2; priority_floor = 0 } () in
  Net.Tenant.set_limits t "vip" { Net.Tenant.quota = 0; priority_floor = 5 };
  let alice = Net.Tenant.find t "alice" in
  let vip = Net.Tenant.find t "vip" in
  check_bool "1st acquire" true (Net.Tenant.try_acquire t alice);
  check_bool "2nd acquire" true (Net.Tenant.try_acquire t alice);
  check_bool "3rd over quota" false (Net.Tenant.try_acquire t alice);
  Net.Tenant.release t alice;
  check_bool "released slot reusable" true (Net.Tenant.try_acquire t alice);
  check_int "inflight tracked" 2 (Net.Tenant.inflight t alice);
  check_bool "same cell across finds" true (Net.Tenant.find t "alice" == alice);
  for _ = 1 to 10 do
    check_bool "quota 0 is unlimited" true (Net.Tenant.try_acquire t vip)
  done;
  check_int "floor raises default" 5 (Net.Tenant.effective_priority vip None);
  check_int "floor raises low" 5 (Net.Tenant.effective_priority vip (Some 3));
  check_int "high passes through" 9 (Net.Tenant.effective_priority vip (Some 9))

let test_tenant_spec () =
  (match Net.Tenant.parse_spec "bob=3" with
   | Ok ("bob", { Net.Tenant.quota = 3; priority_floor = 0 }) -> ()
   | _ -> Alcotest.fail "bob=3");
  (match Net.Tenant.parse_spec "vip=0:7" with
   | Ok ("vip", { Net.Tenant.quota = 0; priority_floor = 7 }) -> ()
   | _ -> Alcotest.fail "vip=0:7");
  check_bool "missing =" true (Result.is_error (Net.Tenant.parse_spec "bob"));
  check_bool "empty name" true (Result.is_error (Net.Tenant.parse_spec "=3"));
  check_bool "bad quota" true (Result.is_error (Net.Tenant.parse_spec "b=x"));
  check_bool "negative quota" true (Result.is_error (Net.Tenant.parse_spec "b=-1"))

(* --- conn backpressure predicates ------------------------------------ *)

let test_conn_watermarks () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      let tenants = Net.Tenant.create () in
      let conn =
        Net.Conn.create ~id:1 ~fd_in:r ~fd_out:w ~owns_fds:false ~peer:"test"
          ~max_out:100 ~max_line:1024
          ~tenant:(Net.Tenant.find tenants "anon")
      in
      check_bool "fresh conn not overloaded" false (Net.Conn.overloaded conn);
      Net.Conn.append_lines conn [ String.make 60 'x' ];
      check_bool "past half: overloaded" true (Net.Conn.overloaded conn);
      check_bool "not yet hard" false (Net.Conn.over_hard_limit conn);
      Net.Conn.append_lines conn [ String.make 60 'y' ];
      check_bool "past bound: disconnect" true (Net.Conn.over_hard_limit conn);
      check_int "pending counts both lines" 122 (Net.Conn.pending_out conn);
      (match Net.Conn.try_write conn with
       | `Ok -> ()
       | `Peer_gone -> Alcotest.fail "pipe writable");
      check_int "flushed to the pipe" 0 (Net.Conn.pending_out conn);
      check_bool "drained conn recovered" false (Net.Conn.overloaded conn))

(* --- live event loop -------------------------------------------------- *)

let temp_dir = Filename.temp_file "eda4sat_net_test" ""

let () =
  Sys.remove temp_dir;
  Unix.mkdir temp_dir 0o755

let file name = Filename.concat temp_dir name

let write_cnf name f =
  Cnf.Dimacs.write_file f (file name);
  file name

let tiny_sat =
  Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |]; [| -2; 3 |] ]

let tiny_unsat =
  Cnf.Formula.create ~num_vars:2 [ [| 1 |]; [| -1; 2 |]; [| -2 |] ]

let php n = Workloads.Satcomp.pigeonhole ~pigeons:n ~holes:(n - 1)

(* Engine + loop on a loopback port, run on its own domain; [f] drives
   clients from the test domain.  The finally block proves drain: the
   loop domain must join. *)
let with_loop ?(net_config = Net.Event_loop.default_config) f =
  let engine =
    Server.create
      ~config:{ Server.default_config with workers = 2; queue_capacity = 64 }
      ()
  in
  let loop = Net.Event_loop.create ~config:net_config engine in
  let _, port = Net.Event_loop.add_tcp loop ~host:"127.0.0.1" ~port:0 in
  let runner = Domain.spawn (fun () -> Net.Event_loop.run loop) in
  Fun.protect
    ~finally:(fun () ->
      Net.Event_loop.request_drain loop;
      Domain.join runner;
      Server.shutdown engine)
    (fun () -> f engine loop port)

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* A stuck server must fail the test, not hang it. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  (fd, ref "")

let send (fd, _) s = ignore (Unix.write_substring fd s 0 (String.length s))

let next_line (fd, pend) =
  let rec go () =
    match String.index_opt !pend '\n' with
    | Some i ->
      let l = String.sub !pend 0 i in
      pend := String.sub !pend (i + 1) (String.length !pend - i - 1);
      Some l
    | None -> (
      let b = Bytes.create 4096 in
      match Unix.read fd b 0 4096 with
      | 0 -> None
      | n ->
        pend := !pend ^ Bytes.sub_string b 0 n;
        go ())
  in
  go ()

let read_to_eof client =
  let rec go acc =
    match next_line client with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  go []

let close_client (fd, _) = try Unix.close fd with _ -> ()

let expect_line what client pred =
  match next_line client with
  | Some l when pred l -> l
  | Some l -> Alcotest.failf "%s: unexpected line %S" what l
  | None -> Alcotest.failf "%s: unexpected EOF" what

let starts_with p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

let test_loop_concurrent_clients () =
  let sat = write_cnf "net_sat.cnf" tiny_sat in
  let unsat = write_cnf "net_unsat.cnf" tiny_unsat in
  with_loop (fun engine _loop port ->
      let n = 8 in
      let clients = List.init n (fun _ -> connect port) in
      (* All 8 submit before anyone reads: the loop interleaves them. *)
      List.iteri
        (fun i c ->
          send c
            (Printf.sprintf "PING\nCLIENT c%d\nSOLVE %s\nSOLVE %s\nQUIT\n" i
               sat unsat))
        clients;
      List.iteri
        (fun i c ->
          match read_to_eof c with
          | [ pong; hello; h1; "SAT"; v; h2; "UNSAT" ] ->
            check_string "pong first (out of band)" "PONG" pong;
            check_string "hello ack" (Printf.sprintf "HELLO c%d" i) hello;
            check_bool "job 1 header" true (starts_with "c job 1 file=" h1);
            check_bool "job 2 header" true (starts_with "c job 2 file=" h2);
            check_bool "model line" true (starts_with "v " v)
          | ls ->
            Alcotest.failf "client %d: unexpected stream (%d lines):\n%s" i
              (List.length ls) (String.concat "\n" ls))
        clients;
      List.iter close_client clients;
      (* Per-client counters reconcile: everyone got both answers. *)
      let stats = Server.stats engine in
      List.iteri
        (fun i _ ->
          match
            List.assoc_opt (Printf.sprintf "c%d" i)
              stats.Server.Metrics.clients
          with
          | Some c ->
            check_int "client requests" 2 c.Server.Metrics.requests;
            check_int "client answered" 2 c.Server.Metrics.answered;
            check_int "client rejected" 0 c.Server.Metrics.rejected
          | None -> Alcotest.failf "client c%d missing from metrics" i)
        clients;
      let json = Server.stats_json engine in
      let has_sub sub l =
        let m = String.length sub in
        let rec go i =
          i + m <= String.length l && (String.sub l i m = sub || go (i + 1))
        in
        go 0
      in
      check_bool "clients serialized in stats JSON" true
        (has_sub "\"c3\": {\"requests\": 2, \"answered\": 2, \"rejected\": 0}"
           json))

let test_loop_quota_and_oob () =
  let hard = write_cnf "net_php9.cnf" (php 11) in
  let sat = write_cnf "net_quota_sat.cnf" tiny_sat in
  let net_config =
    {
      Net.Event_loop.default_config with
      tenant_limits = [ ("bob", { Net.Tenant.quota = 1; priority_floor = 0 }) ];
    }
  in
  with_loop ~net_config (fun _engine _loop port ->
      let c = connect port in
      (* One slow in-flight solve fills bob's quota; the next two are
         rejected at admission.  METRICS and PING answer out of band,
         ahead of the still-pending job answer. *)
      send c
        (Printf.sprintf "CLIENT bob\nSOLVE %s 400\nSOLVE %s 400\nSOLVE %s \
                         400\nPING\nMETRICS\nQUIT\n"
           hard hard hard);
      let lines = read_to_eof c in
      close_client c;
      (* PONG and the METRICS snapshot are out of band: they must beat
         the still-pending job 1 answer instead of queueing behind
         400 ms of solving. *)
      let index_of what pred =
        let rec go i = function
          | [] -> Alcotest.failf "%s missing in:\n%s" what
                    (String.concat "\n" lines)
          | l :: rest -> if pred l then i else go (i + 1) rest
        in
        go 0 lines
      in
      check_bool "PONG beats the pending answer" true
        (index_of "PONG" (fun l -> l = "PONG")
         < index_of "TIMEOUT" (fun l -> l = "TIMEOUT"));
      check_bool "METRICS beats the pending answer" true
        (index_of "metrics json" (starts_with "{\"submitted\"")
         < index_of "TIMEOUT" (fun l -> l = "TIMEOUT"));
      (* The FIFO stream itself is strictly ordered: quota rejections
         for jobs 2 and 3 wait behind job 1's answer. *)
      let fifo =
        List.filter
          (fun l ->
            l <> "PONG" && not (starts_with "{\"submitted\"" l))
          lines
      in
      (match fifo with
       | [ hello; h1; "TIMEOUT"; h2; "REJECTED quota"; h3;
           "REJECTED quota" ] ->
         check_string "hello ack" "HELLO bob" hello;
         check_bool "job 1 header" true (starts_with "c job 1" h1);
         check_bool "job 2 header" true (starts_with "c job 2" h2);
         check_bool "job 3 header" true (starts_with "c job 3" h3)
       | ls ->
         Alcotest.failf "unexpected fifo stream (%d lines):\n%s"
           (List.length ls) (String.concat "\n" ls));
      (* The timeout released bob's slot: a fresh connection solves. *)
      let c2 = connect port in
      send c2 (Printf.sprintf "CLIENT bob\nSOLVE %s\nQUIT\n" sat);
      let lines = read_to_eof c2 in
      close_client c2;
      check_bool "slot released after answer" true
        (List.exists (fun l -> l = "SAT") lines))

let test_loop_session_ownership () =
  with_loop (fun _engine _loop port ->
      let a = connect port and b = connect port in
      send a "CLIENT alice\nOPEN\n";
      ignore (expect_line "alice hello" a (fun l -> l = "HELLO alice"));
      ignore (expect_line "open header" a (fun l -> starts_with "c job 1" l));
      let opened =
        expect_line "alice opens" a (fun l -> starts_with "OPENED " l)
      in
      let sid = String.sub opened 7 (String.length opened - 7) in
      send b (Printf.sprintf "CLIENT mallory\nCLOSE %s\nQUIT\n" sid);
      ignore (expect_line "mallory hello" b (fun l -> l = "HELLO mallory"));
      ignore
        (expect_line "close header" b (fun l -> starts_with "c session " l));
      ignore
        (expect_line "foreign close refused" b (fun l ->
             l = "REJECTED not-owner"));
      check_bool "mallory stream ends" true (next_line b = None);
      close_client b;
      (* A second connection of the same tenant may drive the session. *)
      let a2 = connect port in
      send a2 (Printf.sprintf "CLIENT alice\nCLOSE %s\nQUIT\n" sid);
      ignore (expect_line "alice2 hello" a2 (fun l -> l = "HELLO alice"));
      ignore
        (expect_line "close header" a2 (fun l -> starts_with "c session " l));
      ignore (expect_line "owner may close" a2 (fun l -> l = "OK"));
      close_client a2;
      send a "QUIT\n";
      ignore (read_to_eof a);
      close_client a)

let test_loop_drain_keeps_inflight () =
  let hard = write_cnf "net_drain_php9.cnf" (php 11) in
  with_loop (fun _engine loop port ->
      let c = connect port in
      send c (Printf.sprintf "SOLVE %s 300\n" hard);
      (* No QUIT: the connection would stay open — drain must both
         deliver the in-flight answer and close it. *)
      Unix.sleepf 0.05;
      Net.Event_loop.request_drain loop;
      let lines = read_to_eof c in
      close_client c;
      check_bool "header delivered" true
        (List.exists (starts_with "c job 1") lines);
      check_bool "in-flight answer not lost by drain" true
        (List.exists (fun l -> l = "TIMEOUT") lines))

let test_loop_unix_socket_and_eof () =
  let sat = write_cnf "net_unix_sat.cnf" tiny_sat in
  let engine =
    Server.create
      ~config:{ Server.default_config with workers = 2; queue_capacity = 16 }
      ()
  in
  let loop = Net.Event_loop.create engine in
  let path = file "net_test.sock" in
  Net.Event_loop.add_unix loop path;
  let runner = Domain.spawn (fun () -> Net.Event_loop.run loop) in
  Fun.protect
    ~finally:(fun () ->
      Net.Event_loop.request_drain loop;
      Domain.join runner;
      Server.shutdown engine)
    (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
      let c = (fd, ref "") in
      (* Final command has no trailing newline: the half-close must
         still dispatch it, like the channel transport's EOF rule. *)
      send c (Printf.sprintf "SOLVE %s" sat);
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let lines = read_to_eof c in
      close_client c;
      check_bool "answer delivered over unix socket" true
        (List.exists (fun l -> l = "SAT") lines));
  check_bool "socket path unlinked after drain" false (Sys.file_exists path)

(* --- fd budget / max-clients ----------------------------------------- *)

(* Unix.select cannot watch fds numbered >= FD_SETSIZE (1024): a
   --max-clients large enough to accept fd 1024 used to crash the loop
   on the next select.  The bound must be clamped to the fd budget at
   create time. *)
let test_fd_budget_clamp () =
  let engine =
    Server.create ~config:{ Server.default_config with workers = 1 } ()
  in
  Fun.protect
    ~finally:(fun () -> Server.shutdown engine)
    (fun () ->
      let big =
        Net.Event_loop.create
          ~config:{ Net.Event_loop.default_config with max_clients = 100_000 }
          engine
      in
      let eff = Net.Event_loop.effective_max_clients big in
      check_bool "clamped below FD_SETSIZE" true (eff < 1024);
      check_bool "budget leaves fd head room" true (eff <= 1024 - 32);
      check_bool "budget is not degenerate" true (eff >= 512);
      let small =
        Net.Event_loop.create
          ~config:{ Net.Event_loop.default_config with max_clients = 2 }
          engine
      in
      check_int "small bound passes through" 2
        (Net.Event_loop.effective_max_clients small))

let test_loop_max_clients_refused () =
  let net_config = { Net.Event_loop.default_config with max_clients = 2 } in
  with_loop ~net_config (fun _engine loop port ->
      check_int "configured bound enforced as-is" 2
        (Net.Event_loop.effective_max_clients loop);
      (* Fill both slots; a PING round-trip proves each connection is
         registered (accept is asynchronous to connect). *)
      let c1 = connect port in
      send c1 "PING\n";
      ignore (expect_line "c1 accepted" c1 (fun l -> l = "PONG"));
      let c2 = connect port in
      send c2 "PING\n";
      ignore (expect_line "c2 accepted" c2 (fun l -> l = "PONG"));
      (* The third connection is refused with an answer, not left
         hanging in the backlog and not crashing the loop. *)
      let c3 = connect port in
      ignore
        (expect_line "third connection refused" c3 (fun l ->
             l = "REJECTED overloaded"));
      check_bool "refused connection closed" true (next_line c3 = None);
      close_client c3;
      (* Closing one held slot frees it for a newcomer. *)
      send c1 "QUIT\n";
      ignore (read_to_eof c1);
      close_client c1;
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait_for_slot () =
        if Net.Event_loop.connections loop < 2 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "slot never freed"
        else (Unix.sleepf 0.01; wait_for_slot ())
      in
      wait_for_slot ();
      let c4 = connect port in
      send c4 "PING\nQUIT\n";
      ignore (expect_line "freed slot reusable" c4 (fun l -> l = "PONG"));
      ignore (read_to_eof c4);
      close_client c4;
      send c2 "QUIT\n";
      ignore (read_to_eof c2);
      close_client c2)

let suite =
  [
    ("framing chunks and crlf", `Quick, test_framing_chunks);
    ("framing partial-line bound", `Quick, test_framing_bound);
    ("tenant quotas and floors", `Quick, test_tenant_quota);
    ("tenant spec parsing", `Quick, test_tenant_spec);
    ("conn backpressure watermarks", `Quick, test_conn_watermarks);
    ("loop: 8 concurrent clients ordered", `Quick, test_loop_concurrent_clients);
    ("loop: quota rejects, oob probes", `Quick, test_loop_quota_and_oob);
    ("loop: session ownership", `Quick, test_loop_session_ownership);
    ("loop: drain keeps in-flight answers", `Quick,
     test_loop_drain_keeps_inflight);
    ("loop: unix socket and eof dispatch", `Quick,
     test_loop_unix_socket_and_eof);
    ("fd budget clamps max-clients", `Quick, test_fd_budget_clamp);
    ("loop: surplus connections refused and slots recycled", `Quick,
     test_loop_max_clients_refused);
  ]
