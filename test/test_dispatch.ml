(* Tests for the learned-dispatch subsystem: feature extraction
   (including the CSR/formula equivalence the engine relies on), the
   JSONL trace log, and the policy's train/decide/serialize cycle. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let feature_index name =
  let idx = ref (-1) in
  Array.iteri
    (fun i n -> if n = name then idx := i)
    Dispatch.Features.names;
  if !idx < 0 then Alcotest.failf "unknown feature %s" name;
  !idx

(* ------------------------------------------------------------------ *)
(* Features *)

let test_feature_layout () =
  check "dim split" Dispatch.Features.dim
    (Dispatch.Features.base_dim + Dispatch.Features.embedding_dim);
  check "one name per coordinate" Dispatch.Features.dim
    (Array.length Dispatch.Features.names)

let test_feature_values () =
  (* Hand-checked statistics of a 3-clause formula. *)
  let f =
    { Cnf.Formula.num_vars = 4;
      clauses = [| [| 1; 2 |]; [| -1; -2 |]; [| 1; -2; 3 |] |] }
  in
  let x = Dispatch.Features.of_formula f in
  let at name = x.(feature_index name) in
  Alcotest.(check (float 1e-12)) "binary fraction" (2.0 /. 3.0)
    (at "frac_binary");
  Alcotest.(check (float 1e-12)) "ternary fraction" (1.0 /. 3.0)
    (at "frac_ternary");
  Alcotest.(check (float 1e-12)) "unit fraction" 0.0 (at "frac_unit");
  Alcotest.(check (float 1e-12)) "mean length" (7.0 /. 3.0)
    (at "mean_clause_len");
  (* 4 positive literals out of 7. *)
  Alcotest.(check (float 1e-12)) "positive balance" (4.0 /. 7.0)
    (at "frac_pos_lits");
  (* Variable 4 never appears. *)
  Alcotest.(check (float 1e-12)) "unused vars" 0.25 (at "frac_unused_vars");
  (* Only [-1;-2] has <= 1 positive literal. *)
  Alcotest.(check (float 1e-12)) "horn fraction" (1.0 /. 3.0) (at "frac_horn");
  (* Embedding slots of a plain CNF are zero. *)
  for i = Dispatch.Features.base_dim to Dispatch.Features.dim - 1 do
    Alcotest.(check (float 0.0)) "embedding slot" 0.0 x.(i)
  done

let test_feature_determinism () =
  let f = Workloads.Satcomp.pigeonhole ~pigeons:5 ~holes:4 in
  check_bool "bitwise deterministic" true
    (Dispatch.Features.of_formula f = Dispatch.Features.of_formula f)

let random_formula rng =
  let nv = 1 + Aig.Rng.int rng 20 in
  let nc = Aig.Rng.int rng 40 in
  let clauses =
    Array.init nc (fun _ ->
        let len = 1 + Aig.Rng.int rng 6 in
        Array.init len (fun _ ->
            let v = 1 + Aig.Rng.int rng nv in
            if Aig.Rng.bool rng then v else -v))
  in
  { Cnf.Formula.num_vars = nv; clauses }

let test_flat_formula_equivalence () =
  (* The engine extracts features straight off the mmap CSR view; the
     trainer and tests go through Formula.t.  The two paths must agree
     bit-for-bit or trace labels drift from serving-time inputs. *)
  let rng = Aig.Rng.create 77 in
  for i = 1 to 300 do
    let f = random_formula rng in
    let from_formula = Dispatch.Features.of_formula f in
    let from_flat = Dispatch.Features.of_flat (Cnf.Flat.of_formula f) in
    if from_formula <> from_flat then
      Alcotest.failf "feature mismatch on fuzz case %d" i
  done

let test_with_embedding () =
  let f = random_formula (Aig.Rng.create 5) in
  let base = Dispatch.Features.of_formula f in
  let emb = Array.init 7 (fun i -> float_of_int (i + 1)) in
  let x = Dispatch.Features.with_embedding base emb in
  check_bool "base untouched" true
    (base.(Dispatch.Features.base_dim) = 0.0);
  for i = 0 to Dispatch.Features.base_dim - 1 do
    Alcotest.(check (float 0.0)) "base copied" base.(i) x.(i)
  done;
  for i = 0 to 6 do
    Alcotest.(check (float 0.0)) "slot written" (float_of_int (i + 1))
      x.(Dispatch.Features.base_dim + i)
  done;
  for i = 7 to Dispatch.Features.embedding_dim - 1 do
    Alcotest.(check (float 0.0)) "tail zero" 0.0
      x.(Dispatch.Features.base_dim + i)
  done

(* ------------------------------------------------------------------ *)
(* Tracelog *)

let sample_entry ?(solve_ms = 12.345678901234567) ?(simplify = false)
    ?(lanes = 1) ?(cube = 0) ?(outcome = "sat") ?(features = [| 0.1; -2.5 |])
    () =
  { Dispatch.Tracelog.fingerprint = "deadbeef00";
    features;
    lanes;
    simplify;
    cube_trigger = cube;
    outcome;
    conflicts = 4242;
    solve_ms;
    wall_ms = solve_ms +. 0.125;
    decided = simplify }

let entry_equal (a : Dispatch.Tracelog.entry) (b : Dispatch.Tracelog.entry) =
  a.fingerprint = b.fingerprint
  && a.features = b.features
  && a.lanes = b.lanes && a.simplify = b.simplify
  && a.cube_trigger = b.cube_trigger
  && a.outcome = b.outcome && a.conflicts = b.conflicts
  && a.solve_ms = b.solve_ms && a.wall_ms = b.wall_ms
  && a.decided = b.decided

let test_trace_line_roundtrip () =
  let cases =
    [
      sample_entry ();
      sample_entry ~solve_ms:0.1 ~simplify:true ~lanes:4 ~cube:2000
        ~outcome:"timeout" ();
      sample_entry ~solve_ms:1e-300 ~outcome:"failed"
        ~features:[| 1.0 /. 3.0; 1e17; -0.0 |] ();
      sample_entry ~solve_ms:987654321.123 ~outcome:"unsat" ~features:[||] ();
    ]
  in
  List.iter
    (fun e ->
      let line = Dispatch.Tracelog.entry_to_line e in
      check_bool "single line" false (String.contains line '\n');
      check_bool "exact round-trip" true
        (entry_equal e (Dispatch.Tracelog.entry_of_line line)))
    cases;
  (* Non-finite floats are written as 0 (documented), not emitted as
     JSON-invalid nan/inf tokens. *)
  let e =
    Dispatch.Tracelog.entry_of_line
      (Dispatch.Tracelog.entry_to_line
         (sample_entry ~solve_ms:Float.nan ~features:[| Float.infinity |] ()))
  in
  Alcotest.(check (float 0.0)) "nan sanitized" 0.0 e.solve_ms;
  Alcotest.(check (float 0.0)) "inf sanitized" 0.0 e.features.(0)

let test_trace_malformed_line () =
  Alcotest.check_raises "garbage rejected"
    (Failure "Tracelog: missing field \"decided\"") (fun () ->
      ignore (Dispatch.Tracelog.entry_of_line "{\"not\": \"a trace\"}"))

let with_tmp_path f =
  let path = Filename.temp_file "eda4sat_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".1") with Sys_error _ -> ())
    (fun () -> f path)

let test_trace_file_roundtrip () =
  with_tmp_path (fun path ->
      let t = Dispatch.Tracelog.open_file path in
      let entries =
        List.init 25 (fun i ->
            sample_entry ~solve_ms:(float_of_int i /. 7.0)
              ~simplify:(i mod 2 = 0) ~lanes:(1 lsl (i mod 3)) ())
      in
      List.iter (Dispatch.Tracelog.append t) entries;
      Dispatch.Tracelog.close t;
      check "entries written" 25 (Dispatch.Tracelog.entries_written t);
      check "none dropped" 0 (Dispatch.Tracelog.dropped t);
      let back = Dispatch.Tracelog.read_file path in
      check "all read back" 25 (List.length back);
      List.iter2
        (fun a b -> check_bool "entry preserved" true (entry_equal a b))
        entries back)

let test_trace_rotation () =
  with_tmp_path (fun path ->
      (* max_bytes clamps to 4096; each entry is ~150 bytes, so 200
         entries force several rotations.  The live file must stay
         within the bound (plus one entry) and the previous generation
         must exist. *)
      let t = Dispatch.Tracelog.open_file ~max_bytes:1 path in
      for i = 1 to 200 do
        Dispatch.Tracelog.append t
          (sample_entry ~solve_ms:(float_of_int i) ())
      done;
      Dispatch.Tracelog.close t;
      check "all accounted" 200 (Dispatch.Tracelog.entries_written t);
      check_bool "rotated generation exists" true
        (Sys.file_exists (path ^ ".1"));
      let live = (Unix.stat path).Unix.st_size in
      check_bool
        (Printf.sprintf "live file bounded (%d bytes)" live)
        true
        (live <= 4096 + 512);
      (* Both generations still parse, and together hold a suffix of
         what was written. *)
      let n =
        List.length (Dispatch.Tracelog.read_file path)
        + List.length (Dispatch.Tracelog.read_file (path ^ ".1"))
      in
      check_bool "suffix retained" true (n > 0 && n <= 200))

(* ------------------------------------------------------------------ *)
(* Policy *)

let random_features rng =
  Array.init Dispatch.Features.dim (fun _ -> Aig.Rng.gaussian rng)

let test_policy_untrained_is_static () =
  let p = Dispatch.Policy.create () in
  let rng = Aig.Rng.create 3 in
  for _ = 1 to 10 do
    let d = Dispatch.Policy.decide p (random_features rng) in
    check "lanes" Dispatch.Policy.static_default.lanes d.lanes;
    check_bool "simplify" Dispatch.Policy.static_default.simplify d.simplify;
    check_bool "cube" true (d.cube_trigger = None);
    check_bool "no hardness claim" true (Float.is_nan d.predicted_ms)
  done

(* Synthetic trace: simplify solves everything in 1 ms, plain direct
   takes 400 ms.  Lanes and cube stay at their static values, so those
   heads only ever see one class. *)
let simplify_wins_entries rng n =
  List.init n (fun i ->
      let simplify = i mod 2 = 0 in
      sample_entry
        ~features:(random_features rng)
        ~simplify
        ~solve_ms:(if simplify then 1.0 else 400.0)
        ())

let test_policy_learns_simplify () =
  let rng = Aig.Rng.create 11 in
  let p = Dispatch.Policy.create ~hidden:[| 16 |] () in
  let loss =
    Dispatch.Policy.train ~epochs:150 p (simplify_wins_entries rng 60)
  in
  check_bool (Printf.sprintf "training converged (loss %.3f)" loss) true
    (Float.is_finite loss);
  for _ = 1 to 10 do
    let d = Dispatch.Policy.decide p (random_features rng) in
    check_bool "prefers simplify" true d.simplify;
    (* Unvisited classes can never be recommended. *)
    check "lanes stay static" 1 d.lanes;
    check_bool "cube stays off" true (d.cube_trigger = None);
    check_bool "hardness is now predicted" true (Float.is_finite d.predicted_ms)
  done

let test_policy_save_load_exact () =
  let rng = Aig.Rng.create 19 in
  let p = Dispatch.Policy.create ~hidden:[| 12 |] () in
  ignore (Dispatch.Policy.train ~epochs:40 p (simplify_wins_entries rng 30));
  let s = Dispatch.Policy.save_string p in
  let q = Dispatch.Policy.load_string s in
  check_bool "re-serialization identical" true
    (Dispatch.Policy.save_string q = s);
  check_bool "visits preserved" true
    (Dispatch.Policy.visits p = Dispatch.Policy.visits q);
  for _ = 1 to 20 do
    let x = random_features rng in
    check_bool "raw heads bitwise equal" true
      (Dispatch.Policy.predict p x = Dispatch.Policy.predict q x);
    let dp = Dispatch.Policy.decide p x and dq = Dispatch.Policy.decide q x in
    check_bool "decisions identical" true
      (dp.lanes = dq.lanes && dp.simplify = dq.simplify
      && dp.cube_trigger = dq.cube_trigger
      && (dp.predicted_ms = dq.predicted_ms
         || (Float.is_nan dp.predicted_ms && Float.is_nan dq.predicted_ms)))
  done

let test_policy_rejects_garbage () =
  check_bool "bad magic" true
    (match Dispatch.Policy.load_string "not a model\n" with
    | exception Failure _ -> true
    | _ -> false);
  check_bool "truncated" true
    (match Dispatch.Policy.load_string "eda4sat-dispatch-policy 1\n" with
    | exception Failure _ -> true
    | _ -> false)

let test_policy_train_validates () =
  let p = Dispatch.Policy.create () in
  check_bool "empty entries rejected" true
    (match Dispatch.Policy.train p [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad feature dimension rejected" true
    (match
       Dispatch.Policy.train p [ sample_entry ~features:[| 1.0 |] () ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    ("feature layout", `Quick, test_feature_layout);
    ("feature values", `Quick, test_feature_values);
    ("feature determinism", `Quick, test_feature_determinism);
    ("of_flat = of_formula (fuzz)", `Quick, test_flat_formula_equivalence);
    ("embedding slots", `Quick, test_with_embedding);
    ("trace line round-trip", `Quick, test_trace_line_roundtrip);
    ("trace malformed line", `Quick, test_trace_malformed_line);
    ("trace file round-trip", `Quick, test_trace_file_roundtrip);
    ("trace rotation bound", `Quick, test_trace_rotation);
    ("untrained policy is static", `Quick, test_policy_untrained_is_static);
    ("policy learns simplify", `Quick, test_policy_learns_simplify);
    ("policy save/load bit-exact", `Quick, test_policy_save_load_exact);
    ("policy rejects garbage", `Quick, test_policy_rejects_garbage);
    ("policy train validation", `Quick, test_policy_train_validates);
  ]
