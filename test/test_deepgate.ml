(* Tests for the deterministic circuit embedding. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let and_graph () =
  let g = Aig.Graph.create ~num_pis:2 in
  Aig.Graph.add_po g (Aig.Graph.and_ g (Aig.Graph.pi g 0) (Aig.Graph.pi g 1));
  g

let xor_graph () =
  let g = Aig.Graph.create ~num_pis:2 in
  Aig.Graph.add_po g (Aig.Graph.xor_ g (Aig.Graph.pi g 0) (Aig.Graph.pi g 1));
  g

let test_shapes () =
  let g = and_graph () in
  let e = Deepgate.Embedding.po_embedding g in
  check "default dim" 16 (Array.length e);
  let cfg = { Deepgate.Embedding.default_config with dim = 8 } in
  check "custom dim" 8 (Array.length (Deepgate.Embedding.po_embedding ~config:cfg g));
  let h = Deepgate.Embedding.node_embeddings g in
  check "per node" (Aig.Graph.num_nodes g) (Array.length h)

let test_deterministic () =
  let e1 = Deepgate.Embedding.po_embedding (and_graph ()) in
  let e2 = Deepgate.Embedding.po_embedding (and_graph ()) in
  Alcotest.(check (float 0.0)) "identical" 0.0 (Deepgate.Embedding.distance e1 e2)

let test_function_sensitive () =
  let ea = Deepgate.Embedding.po_embedding (and_graph ()) in
  let ex = Deepgate.Embedding.po_embedding (xor_graph ()) in
  check_bool "and vs xor differ" true (Deepgate.Embedding.distance ea ex > 1e-6)

let test_structure_sensitive () =
  (* Same function, very different structure: chain vs balanced tree of
     8-input AND. *)
  let chain =
    let g = Aig.Graph.create ~num_pis:8 in
    let acc = ref (Aig.Graph.pi g 0) in
    for i = 1 to 7 do
      acc := Aig.Graph.and_ g !acc (Aig.Graph.pi g i)
    done;
    Aig.Graph.add_po g !acc;
    g
  in
  let tree =
    let g = Aig.Graph.create ~num_pis:8 in
    Aig.Graph.add_po g
      (Aig.Graph.and_list g (List.init 8 (Aig.Graph.pi g)));
    g
  in
  let ec = Deepgate.Embedding.po_embedding chain in
  let et = Deepgate.Embedding.po_embedding tree in
  check_bool "chain vs tree differ" true
    (Deepgate.Embedding.distance ec et > 1e-6)

let test_complement_flips_sign () =
  let g = and_graph () in
  let gneg = Aig.Graph.create ~num_pis:2 in
  Aig.Graph.add_po gneg
    (Aig.Graph.lit_not
       (Aig.Graph.and_ gneg (Aig.Graph.pi gneg 0) (Aig.Graph.pi gneg 1)));
  let e = Deepgate.Embedding.po_embedding g in
  let en = Deepgate.Embedding.po_embedding gneg in
  let flipped = Array.map (fun x -> -.x) en in
  Alcotest.(check (float 1e-9)) "complement = sign flip" 0.0
    (Deepgate.Embedding.distance e flipped)

let test_constant_po () =
  let g = Aig.Graph.create ~num_pis:1 in
  Aig.Graph.add_po g Aig.Graph.const_true;
  let e = Deepgate.Embedding.po_embedding g in
  check_bool "all zero" true (Array.for_all (fun x -> x = 0.0) e)

let test_values_bounded () =
  (* After tanh rounds the coordinates stay in a sane range. *)
  let rng = Aig.Rng.create 3 in
  let g = Aig.Graph.create ~num_pis:10 in
  let lits = ref (Array.to_list (Array.init 10 (Aig.Graph.pi g))) in
  for _ = 1 to 200 do
    let arr = Array.of_list !lits in
    let pick () =
      Aig.Graph.lit_not_cond
        arr.(Aig.Rng.int rng (Array.length arr))
        (Aig.Rng.bool rng)
    in
    lits := Aig.Graph.and_ g (pick ()) (pick ()) :: !lits
  done;
  (match !lits with l :: _ -> Aig.Graph.add_po g l | [] -> assert false);
  let e = Deepgate.Embedding.po_embedding g in
  check_bool "finite and bounded" true
    (Array.for_all (fun x -> Float.is_finite x && abs_float x <= 1.0) e)

let suite =
  [
    ("shapes", `Quick, test_shapes);
    ("deterministic", `Quick, test_deterministic);
    ("function sensitive", `Quick, test_function_sensitive);
    ("structure sensitive", `Quick, test_structure_sensitive);
    ("complement flips sign", `Quick, test_complement_flips_sign);
    ("constant PO", `Quick, test_constant_po);
    ("values bounded", `Quick, test_values_bounded);
  ]

let test_config_sensitivity () =
  (* Different seeds give different frozen weights, hence different
     embeddings — but each remains deterministic. *)
  let g =
    let g = Aig.Graph.create ~num_pis:3 in
    Aig.Graph.add_po g
      (Aig.Graph.and_ g
         (Aig.Graph.xor_ g (Aig.Graph.pi g 0) (Aig.Graph.pi g 1))
         (Aig.Graph.pi g 2));
    g
  in
  let cfg1 = Deepgate.Embedding.default_config in
  let cfg2 = { cfg1 with Deepgate.Embedding.seed = cfg1.seed + 1 } in
  let e1 = Deepgate.Embedding.po_embedding ~config:cfg1 g in
  let e2 = Deepgate.Embedding.po_embedding ~config:cfg2 g in
  check_bool "seeds differ" true (Deepgate.Embedding.distance e1 e2 > 1e-9);
  let e1' = Deepgate.Embedding.po_embedding ~config:cfg1 g in
  Alcotest.(check (float 0.0)) "still deterministic" 0.0
    (Deepgate.Embedding.distance e1 e1')

let test_rounds_effect () =
  (* More message-passing rounds changes the representation (deeper
     structural context). *)
  let g =
    let g = Aig.Graph.create ~num_pis:4 in
    let acc = ref (Aig.Graph.pi g 0) in
    for i = 1 to 3 do
      acc := Aig.Graph.and_ g !acc (Aig.Graph.pi g i)
    done;
    Aig.Graph.add_po g !acc;
    g
  in
  let base = Deepgate.Embedding.default_config in
  let e1 =
    Deepgate.Embedding.po_embedding
      ~config:{ base with Deepgate.Embedding.rounds = 1 } g
  in
  let e3 =
    Deepgate.Embedding.po_embedding
      ~config:{ base with Deepgate.Embedding.rounds = 3 } g
  in
  check_bool "rounds matter" true (Deepgate.Embedding.distance e1 e3 > 1e-9)

let test_concurrent_embeddings () =
  (* The dispatch path may embed circuits from several worker domains
     on a shared graph; the computation only reads the AIG and must
     stay bitwise deterministic under contention. *)
  let g = xor_graph () in
  let expect = Deepgate.Embedding.po_embedding g in
  let mismatches = Atomic.make 0 in
  let worker () =
    for _ = 1 to 100 do
      if Deepgate.Embedding.po_embedding g <> expect then
        Atomic.incr mismatches
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check "deterministic under contention" 0 (Atomic.get mismatches)

let suite =
  suite
  @ [
      ("config sensitivity", `Quick, test_config_sensitivity);
      ("rounds effect", `Quick, test_rounds_effect);
      ("concurrent embeddings agree", `Quick, test_concurrent_embeddings);
    ]
