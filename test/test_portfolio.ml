(* The portfolio race: differential fuzzing against brute force and
   the sequential solver, proof checkability under clause sharing,
   bit-identity of the jobs=1 fallback, and robustness to failing or
   cancelled workers. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let brute_force_sat f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 14);
  let rec try_assignment m =
    m < 1 lsl n
    && (Cnf.Formula.eval f (Array.init n (fun i -> m land (1 lsl i) <> 0))
        || try_assignment (m + 1))
  in
  try_assignment 0

let random_formula rng =
  let nvars = 2 + Aig.Rng.int rng 13 in
  let nclauses = 1 + Aig.Rng.int rng (5 * nvars) in
  let clauses =
    List.init nclauses (fun _ ->
        let len = 1 + Aig.Rng.int rng 5 in
        Array.init len (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v))
  in
  Cnf.Formula.create ~num_vars:nvars clauses

(* Direct-only pools keep the winner's model a model of the input
   formula, so both branches of the differential check apply. *)
let test_fuzz_vs_brute_force () =
  let rng = Aig.Rng.create 424242 in
  for i = 1 to 60 do
    let f = random_formula rng in
    let expected = brute_force_sat f in
    let jobs = 2 + (i mod 3) in
    let proof = Sat.Proof.create () in
    let outcome =
      Portfolio.Runner.run ~jobs ~share_lbd:1000 ~proof
        (Portfolio.Strategy.default_pool ~jobs)
        f
    in
    match outcome.Portfolio.Runner.result with
    | Sat.Solver.Sat m ->
      if not expected then
        Alcotest.failf "case %d: portfolio SAT, brute force UNSAT" i;
      if not (Cnf.Formula.eval f m) then
        Alcotest.failf "case %d: portfolio model does not satisfy" i
    | Sat.Solver.Unsat ->
      if expected then
        Alcotest.failf "case %d: portfolio UNSAT, brute force SAT" i;
      (* With direct-only lanes the winner is always a direct lane, so
         the shared recorder must have been replayed and checkable even
         though clauses crossed lanes mid-race. *)
      if not (Sat.Proof.sealed proof) then
        Alcotest.failf "case %d: UNSAT but proof not sealed" i;
      if not (Sat.Proof.check f proof) then
        Alcotest.failf "case %d: merged shared DRAT proof fails" i
    | Sat.Solver.Unknown -> Alcotest.failf "case %d: unexpected Unknown" i
  done;
  check_bool "portfolio fuzz 60/60" true true

let test_sequential_bit_identity () =
  (* jobs = 1 with the default pool must reproduce Sat.Solver.solve
     exactly: same answer, same model, same search trajectory, same
     proof log. *)
  let rng = Aig.Rng.create 31337 in
  for i = 1 to 40 do
    let f = random_formula rng in
    let proof_solo = Sat.Proof.create () in
    let r_solo, st_solo = Sat.Solver.solve ~proof:proof_solo f in
    let proof_race = Sat.Proof.create () in
    let outcome =
      Portfolio.Runner.run ~jobs:1 ~proof:proof_race
        (Portfolio.Strategy.default_pool ~jobs:1)
        f
    in
    let st_race = outcome.Portfolio.Runner.stats in
    (match (r_solo, outcome.Portfolio.Runner.result) with
     | Sat.Solver.Sat m1, Sat.Solver.Sat m2 ->
       if m1 <> m2 then Alcotest.failf "case %d: models differ" i
     | Sat.Solver.Unsat, Sat.Solver.Unsat -> ()
     | _ -> Alcotest.failf "case %d: results differ" i);
    if
      st_solo.Sat.Solver.decisions <> st_race.Sat.Solver.decisions
      || st_solo.Sat.Solver.conflicts <> st_race.Sat.Solver.conflicts
      || st_solo.Sat.Solver.propagations <> st_race.Sat.Solver.propagations
      || st_solo.Sat.Solver.restarts <> st_race.Sat.Solver.restarts
      || st_solo.Sat.Solver.learned <> st_race.Sat.Solver.learned
    then Alcotest.failf "case %d: search trajectories differ" i;
    if Sat.Proof.num_steps proof_solo <> Sat.Proof.num_steps proof_race then
      Alcotest.failf "case %d: proof logs differ" i
  done;
  check_bool "sequential identity 40/40" true true

let test_failed_worker_does_not_lose_race () =
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let strategies =
    [
      Portfolio.Strategy.prepared "boom" (fun ~stop:_ ->
          failwith "prepare blew up");
      Portfolio.Strategy.direct "direct";
      Portfolio.Strategy.prepared ~heuristic:`Lrb "boom-late" (fun ~stop:_ ->
          raise Not_found);
    ]
  in
  let outcome = Portfolio.Runner.run ~jobs:3 strategies f in
  (match outcome.Portfolio.Runner.result with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "race lost to failing workers");
  check_int "winner is the healthy lane" 1
    (Option.get outcome.Portfolio.Runner.winner);
  (* A sick lane raising before the race is decided reports Failed;
     one raising after counts as Cancelled.  Either way it must not
     claim an answer. *)
  Array.iteri
    (fun i w ->
      if i <> 1 then
        match w.Portfolio.Runner.outcome with
        | Portfolio.Runner.Failed _ | Portfolio.Runner.Cancelled -> ()
        | _ -> Alcotest.failf "sick lane %d produced an answer" i)
    outcome.Portfolio.Runner.workers

let test_cancellation_terminates () =
  (* One lane answers instantly; the others are still deep in php(8,7)
     when the interrupt lands.  run joining all domains *is* the
     termination property; the losers must come back Cancelled, not
     Limit, and well before the budget. *)
  let hard = Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7 in
  let strategies =
    Portfolio.Strategy.prepared "easy" (fun ~stop:_ ->
        Cnf.Formula.create ~num_vars:1 [ [| 1 |] ])
    :: Portfolio.Strategy.default_pool ~jobs:3
  in
  let limits =
    { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some 120.0 }
  in
  let outcome = Portfolio.Runner.run ~jobs:4 ~limits strategies hard in
  (match outcome.Portfolio.Runner.result with
   | Sat.Solver.Sat _ -> ()
   | _ -> Alcotest.fail "easy lane should have won with SAT");
  check_int "easy lane wins" 0 (Option.get outcome.Portfolio.Runner.winner);
  check_bool "race returned promptly" true (outcome.Portfolio.Runner.wall < 60.0);
  Array.iteri
    (fun i w ->
      if i <> 0 then
        match w.Portfolio.Runner.outcome with
        | Portfolio.Runner.Cancelled | Portfolio.Runner.Answered _ -> ()
        | Portfolio.Runner.Limit _ ->
          Alcotest.failf "lane %d ran to its limit despite the interrupt" i
        | Portfolio.Runner.Failed msg -> Alcotest.failf "lane %d: %s" i msg)
    outcome.Portfolio.Runner.workers

let test_interrupt_hook () =
  let hard = Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7 in
  let interrupt = Sat.Solver.Interrupt.create () in
  Sat.Solver.Interrupt.set interrupt;
  let result, _ = Sat.Solver.solve ~interrupt hard in
  (match result with
   | Sat.Solver.Unknown -> ()
   | _ -> Alcotest.fail "pre-set interrupt must yield Unknown");
  Sat.Solver.Interrupt.clear interrupt;
  let result, _ = Sat.Solver.solve ~interrupt hard in
  match result with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "cleared interrupt must let the solve finish"

let test_export_import_hooks () =
  (* Export must only see clauses at or below the LBD cap, and a lane
     importing its peer's units/binaries must still answer correctly. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let exported = ref [] in
  let r, _ =
    Sat.Solver.solve
      ~export:(fun c lbd -> exported := (Array.copy c, lbd) :: !exported)
      ~export_lbd:3 f
  in
  (match r with Sat.Solver.Unsat -> () | _ -> Alcotest.fail "php(6,5)");
  check_bool "something was exported" true (!exported <> []);
  List.iter
    (fun (_, lbd) ->
      if lbd > 3 then Alcotest.failf "exported clause with lbd %d > 3" lbd)
    !exported;
  (* Re-solve importing everything we just exported at once. *)
  let pending = ref !exported in
  let import () =
    let batch = !pending in
    pending := [];
    batch
  in
  let r2, _ = Sat.Solver.solve ~import f in
  (match r2 with Sat.Solver.Unsat -> () | _ -> Alcotest.fail "with imports");
  check_bool "imports consumed" true (!pending = [])

let test_clause_bus_copies_per_receiver () =
  (* Published clauses must be fresh per inbox: a publisher reusing its
     buffer, or one receiver scribbling on a drained clause, must never
     be visible to another receiver. *)
  let bus = Portfolio.Clause_bus.create ~groups:[| Some 0; Some 0; Some 0 |] in
  let clause = [| 1; -2; 3 |] in
  Portfolio.Clause_bus.publish bus ~worker:0 clause 2;
  (* Publisher reuses its buffer immediately. *)
  Array.fill clause 0 3 0;
  (match Portfolio.Clause_bus.drain bus ~worker:1 with
   | [ (c, 2) ] ->
     check_bool "receiver 1 sees the original literals" true
       (c = [| 1; -2; 3 |]);
     (* Receiver 1 scribbles on its copy... *)
     Array.fill c 0 3 7
   | _ -> Alcotest.fail "worker 1 expected exactly one clause");
  (match Portfolio.Clause_bus.drain bus ~worker:2 with
   | [ (c, 2) ] ->
     check_bool "receiver 2 unaffected" true (c = [| 1; -2; 3 |])
   | _ -> Alcotest.fail "worker 2 expected exactly one clause");
  check_bool "nothing echoed to the publisher" true
    (Portfolio.Clause_bus.drain bus ~worker:0 = [])

let test_pipeline_portfolio_lec () =
  (* End-to-end through Core.Pipeline: EDA lanes really transform, and
     the race answer matches the direct solver on a small LEC miter. *)
  let g = Workloads.Lec.generate ~seed:5 ~num_pis:8 ~num_ands:120 () in
  let inst = Eda4sat.Instance.of_circuit ~name:"lec-mini" g in
  let direct = Eda4sat.Instance.direct_formula inst in
  let expect, _ = Sat.Solver.solve direct in
  let cfg = Eda4sat.Pipeline.ours () in
  let report, outcome =
    Eda4sat.Pipeline.run_portfolio ~jobs:4 cfg inst
  in
  (match (expect, report.Eda4sat.Pipeline.result) with
   | Sat.Solver.Unsat, Sat.Solver.Unsat | Sat.Solver.Sat _, Sat.Solver.Sat _ ->
     ()
   | _ -> Alcotest.fail "portfolio disagrees with direct solve on LEC miter");
  check_bool "a winner exists" true (outcome.Portfolio.Runner.winner <> None);
  check_bool "t_solve is the race wall" true
    (report.Eda4sat.Pipeline.t_solve = outcome.Portfolio.Runner.wall)

let test_strategy_pool_shape () =
  let cfg = Eda4sat.Pipeline.ours () in
  let inst =
    Eda4sat.Instance.of_cnf ~name:"tiny"
      (Cnf.Formula.create ~num_vars:2 [ [| 1; 2 |] ])
  in
  let pool = Eda4sat.Pipeline.portfolio_strategies ~jobs:10 cfg inst in
  check_bool "at least jobs strategies" true (List.length pool >= 10);
  (* Anchor lane first, and prepared lanes never claim share group 0. *)
  (match pool with
   | first :: _ ->
     check_bool "anchor is direct" true (first.Portfolio.Strategy.prepare = None)
   | [] -> Alcotest.fail "empty pool");
  List.iter
    (fun s ->
      if
        s.Portfolio.Strategy.prepare <> None
        && s.Portfolio.Strategy.share_group = Some 0
      then Alcotest.fail "prepared lane in the direct share group")
    pool;
  let baseline_pool =
    Eda4sat.Pipeline.portfolio_strategies ~jobs:4 Eda4sat.Pipeline.baseline inst
  in
  check_bool "baseline pool is direct-only" true
    (List.for_all (fun s -> s.Portfolio.Strategy.prepare = None) baseline_pool)

let suite =
  [
    ("fuzz: portfolio vs brute force (with sharing)", `Quick,
     test_fuzz_vs_brute_force);
    ("jobs=1 is bit-identical to Sat.Solver.solve", `Quick,
     test_sequential_bit_identity);
    ("a raising worker does not lose the race", `Quick,
     test_failed_worker_does_not_lose_race);
    ("losers are cancelled promptly", `Quick, test_cancellation_terminates);
    ("solver interrupt hook", `Quick, test_interrupt_hook);
    ("solver export/import hooks", `Quick, test_export_import_hooks);
    ("clause bus copies per receiver", `Quick,
     test_clause_bus_copies_per_receiver);
    ("pipeline portfolio on a LEC miter", `Quick, test_pipeline_portfolio_lec);
    ("strategy pool shape", `Quick, test_strategy_pool_shape);
  ]

(* --- simplify lanes, model lifts, race CPU accounting --------------- *)

let test_lifted_lane_reports_input_model () =
  (* A prepared_lifted lane answers Sat through its model lift, so the
     reported model satisfies the INPUT formula even though the lane
     solved a BVE-rewritten one. *)
  let f =
    Cnf.Formula.create ~num_vars:4
      [ [| 1; 2 |]; [| -1; 3 |]; [| -2; 4 |]; [| -3; -4; 1 |] ]
  in
  let lane name =
    Portfolio.Strategy.prepared_lifted ~share_group:1 name (fun ~stop:_ ->
        match Cnf.Simplify.run f with
        | Cnf.Simplify.Proved_unsat -> Alcotest.fail "satisfiable"
        | Cnf.Simplify.Simplified s ->
          (Cnf.Simplify.formula s, Some (Cnf.Simplify.reconstruct s)))
  in
  (* Sequential (jobs=1) and parallel, simplify lanes only: the winner
     is always lifted. *)
  List.iter
    (fun jobs ->
      let outcome =
        Portfolio.Runner.run ~jobs [ lane "simp/a"; lane "simp/b" ] f
      in
      match outcome.Portfolio.Runner.result with
      | Sat.Solver.Sat m ->
        check_bool "lifted model satisfies the input" true
          (Cnf.Formula.eval f m)
      | _ -> Alcotest.fail "satisfiable")
    [ 1; 2 ]

let test_pool_has_simplify_lanes () =
  let cfg = Eda4sat.Pipeline.ours () in
  let inst =
    Eda4sat.Instance.of_cnf ~name:"tiny"
      (Cnf.Formula.create ~num_vars:2 [ [| 1; 2 |] ])
  in
  let pool = Eda4sat.Pipeline.portfolio_strategies ~jobs:10 cfg inst in
  let simplify =
    List.filter
      (fun s ->
        String.length s.Portfolio.Strategy.name >= 9
        && String.sub s.Portfolio.Strategy.name 0 9 = "simplify/")
      pool
  in
  check_bool "simplify lanes present" true (List.length simplify >= 2);
  List.iter
    (fun s ->
      check_bool "simplify lanes share among themselves only" true
        (s.Portfolio.Strategy.share_group <> None
         && s.Portfolio.Strategy.share_group <> Some 0);
      check_bool "simplify lanes are prepared" true
        (s.Portfolio.Strategy.prepare <> None))
    simplify

let test_race_cpu_reported_once () =
  (* The per-lane Sys.time reading over-attributes concurrent work, so
     the runner reports one race-level CPU figure in the winner's stats
     and zeroes the field in every other lane's. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let outcome =
    Portfolio.Runner.run ~jobs:3 (Portfolio.Strategy.default_pool ~jobs:3) f
  in
  let w = Option.get outcome.Portfolio.Runner.winner in
  check_bool "winner carries the race CPU figure" true
    (outcome.Portfolio.Runner.stats.Sat.Solver.cpu_time >= 0.0);
  Array.iteri
    (fun i r ->
      if i <> w then
        match r.Portfolio.Runner.outcome with
        | Portfolio.Runner.Answered (_, s) | Portfolio.Runner.Limit s ->
          check_bool "losing lane cpu_time zeroed" true
            (s.Sat.Solver.cpu_time = 0.0)
        | _ -> ())
    outcome.Portfolio.Runner.workers

let suite =
  suite
  @ [
      ("lifted lanes report input-variable models", `Quick,
       test_lifted_lane_reports_input_model);
      ("pool contains simplify lanes", `Quick, test_pool_has_simplify_lanes);
      ("race-level cpu reported once", `Quick, test_race_cpu_reported_once);
    ]

(* --- cube-and-conquer ----------------------------------------------- *)

let cube_check_unsat_proof name f =
  let proof = Sat.Proof.create () in
  let report = Portfolio.Cuber.solve ~cubes:4 ~jobs:2 ~proof f in
  check_bool (name ^ ": UNSAT") true
    (report.Portfolio.Cuber.result = Sat.Solver.Unsat);
  check_bool (name ^ ": refutation complete") true
    report.Portfolio.Cuber.refutation_complete;
  check_bool (name ^ ": stitched proof sealed") true (Sat.Proof.sealed proof);
  check_bool (name ^ ": stitched proof checks") true (Sat.Proof.check f proof)

let test_cuber_fuzz_differential () =
  (* Cube-and-conquer verdict must agree with the sequential solver on
     random CNFs; every UNSAT must come with a checkable stitched
     proof; every SAT model must satisfy the input formula. *)
  let rng = Aig.Rng.create 777001 in
  for i = 1 to 40 do
    let f = random_formula rng in
    let expected, _ = Sat.Solver.solve f in
    let proof = Sat.Proof.create () in
    let report =
      Portfolio.Cuber.solve ~cubes:4 ~jobs:(1 + (i mod 3)) ~proof f
    in
    (match (expected, report.Portfolio.Cuber.result) with
     | Sat.Solver.Sat _, Sat.Solver.Sat m ->
       if not (Cnf.Formula.eval f m) then
         Alcotest.failf "case %d: cube model does not satisfy" i
     | Sat.Solver.Unsat, Sat.Solver.Unsat ->
       if not report.Portfolio.Cuber.refutation_complete then
         Alcotest.failf "case %d: UNSAT without complete refutation" i;
       if not (Sat.Proof.sealed proof) then
         Alcotest.failf "case %d: UNSAT but stitched proof not sealed" i;
       if not (Sat.Proof.check f proof) then
         Alcotest.failf "case %d: stitched DRAT proof fails" i
     | e, g ->
       let name = function
         | Sat.Solver.Sat _ -> "SAT"
         | Sat.Solver.Unsat -> "UNSAT"
         | Sat.Solver.Unknown -> "UNKNOWN"
       in
       Alcotest.failf "case %d: solver %s, cuber %s" i (name e) (name g))
  done;
  check_bool "cuber fuzz 40/40" true true

let test_cuber_php_and_lec () =
  cube_check_unsat_proof "php(6,5)"
    (Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5);
  cube_check_unsat_proof "lec miter"
    (Workloads.Suites.miter_cnf ~seed:5 ~num_ands:40)

let test_cuber_jobs1_deterministic () =
  (* jobs = 1 conquers sequentially in cube order: two runs must agree
     bit-for-bit — same cubes, same outcomes, same stitched proof,
     same search trajectory. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let run () =
    let proof = Sat.Proof.create () in
    let report = Portfolio.Cuber.solve ~cubes:8 ~jobs:1 ~proof f in
    (report, Sat.Proof.steps proof)
  in
  let r1, p1 = run () in
  let r2, p2 = run () in
  check_bool "same cube partition" true
    (r1.Portfolio.Cuber.cubes = r2.Portfolio.Cuber.cubes);
  check_bool "same outcomes" true
    (r1.Portfolio.Cuber.outcomes = r2.Portfolio.Cuber.outcomes);
  check_bool "no steals at jobs=1" true (r1.Portfolio.Cuber.steals = 0);
  check_bool "same stitched proof" true (p1 = p2);
  check_int "same decisions"
    r1.Portfolio.Cuber.stats.Sat.Solver.decisions
    r2.Portfolio.Cuber.stats.Sat.Solver.decisions

let test_cuber_first_sat_cancels_siblings () =
  (* An under-constrained satisfiable formula: at jobs = 1 the first
     live cube answers Sat, so every later cube must be observed
     cancelled through the shared interrupt. *)
  let f =
    Cnf.Formula.create ~num_vars:12
      (List.init 6 (fun i -> [| (2 * i) + 1; (2 * i) + 2 |]))
  in
  let report = Portfolio.Cuber.solve ~cubes:8 ~jobs:1 f in
  (match report.Portfolio.Cuber.result with
   | Sat.Solver.Sat m ->
     check_bool "model satisfies" true (Cnf.Formula.eval f m)
   | _ -> Alcotest.fail "expected SAT");
  let cancelled =
    Array.fold_left
      (fun acc o ->
        if o = Portfolio.Cuber.Cube_cancelled then acc + 1 else acc)
      0 report.Portfolio.Cuber.outcomes
  in
  check_bool "sibling cubes observed cancelled" true (cancelled > 0)

let test_cuber_partial_failure_is_not_unsat () =
  (* A cube job that dies mid-race must leave the conquest inconclusive
     — never a published UNSAT — and must not seal (or pollute) the
     caller's proof recorder. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let proof = Sat.Proof.create () in
  let claimed = ref 0 in
  let report =
    Portfolio.Cuber.solve ~cubes:8 ~jobs:1 ~proof
      ~on_cube:(fun _ ->
        incr claimed;
        if !claimed = 2 then failwith "boom")
      f
  in
  check_bool "result is not UNSAT" true
    (report.Portfolio.Cuber.result <> Sat.Solver.Unsat);
  check_bool "refutation not complete" true
    (not report.Portfolio.Cuber.refutation_complete);
  check_bool "failure recorded" true
    (report.Portfolio.Cuber.failure <> None);
  check_bool "caller proof untouched" true
    (not (Sat.Proof.sealed proof) && Sat.Proof.steps proof = []);
  let failed =
    Array.exists
      (function Portfolio.Cuber.Cube_failed _ -> true | _ -> false)
      report.Portfolio.Cuber.outcomes
  in
  check_bool "failed cube outcome recorded" true failed

let test_cuber_external_interrupt () =
  (* A pre-set external interrupt cancels the whole conquest before any
     cube solves: Unknown, nothing refuted, proof left open. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let interrupt = Sat.Solver.Interrupt.create () in
  Sat.Solver.Interrupt.set interrupt;
  let proof = Sat.Proof.create () in
  let report = Portfolio.Cuber.solve ~cubes:4 ~jobs:2 ~proof ~interrupt f in
  check_bool "interrupted conquest is Unknown" true
    (report.Portfolio.Cuber.result = Sat.Solver.Unknown);
  check_bool "proof left open" true (not (Sat.Proof.sealed proof))

let suite =
  suite
  @ [
      ("cuber fuzz: verdict ≡ sequential solver + stitched DRAT", `Quick,
       test_cuber_fuzz_differential);
      ("cuber: php and LEC miters refute with checkable proofs", `Quick,
       test_cuber_php_and_lec);
      ("cuber: jobs=1 is deterministic (bit-identical cubes)", `Quick,
       test_cuber_jobs1_deterministic);
      ("cuber: first SAT cancels sibling cubes", `Quick,
       test_cuber_first_sat_cancels_siblings);
      ("cuber: a dying cube never yields UNSAT", `Quick,
       test_cuber_partial_failure_is_not_unsat);
      ("cuber: external interrupt cancels the conquest", `Quick,
       test_cuber_external_interrupt);
    ]
